// Same-generation: the classic mutually joined Datalog program, showing
// recursion through a non-linear rule (sg appears between two parent
// scans) on a genealogy tree. Two people are of the same generation if
// they share a parent, or if their parents are of the same generation.
package main

import (
	"fmt"
	"log"

	"specbtree"
)

const program = `
.decl parent(p: symbol, c: symbol)
.decl sg(x: symbol, y: symbol)
.output sg

sg(X, Y) :- parent(P, X), parent(P, Y).
sg(X, Y) :- parent(PX, X), sg(PX, PY), parent(PY, Y).

parent("alice", "bob").
parent("alice", "carol").
parent("bob", "dan").
parent("carol", "erin").
parent("dan", "fay").
parent("erin", "gus").
`

func main() {
	prog, err := specbtree.ParseProgram(program)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := specbtree.NewEngine(prog, specbtree.EngineOptions{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Run(); err != nil {
		log.Fatal(err)
	}

	syms := engine.Symbols()
	fmt.Println("same-generation pairs:")
	engine.Scan("sg", func(t specbtree.Tuple) bool {
		fmt.Printf("  %s ~ %s\n", syms.Name(t[0]), syms.Name(t[1]))
		return true
	})

	// dan and erin are cousins (via bob/carol): same generation.
	dan, erin := syms.Intern("dan"), syms.Intern("erin")
	found := false
	engine.Scan("sg", func(t specbtree.Tuple) bool {
		if t[0] == dan && t[1] == erin {
			found = true
			return false
		}
		return true
	})
	fmt.Println("sg(dan, erin):", found)
	if !found {
		log.Fatal("missed the cousin pair")
	}
}
