// Points-to analysis: a field-sensitive Andersen-style var-points-to
// analysis over a small hand-written program, in the style of the Doop
// workload of the paper's Figure 5a. The analysed program:
//
//	a  = new Obj1;      // new(a, o1)
//	b  = new Obj2;      // new(b, o2)
//	c  = a;             // assign(c, a)
//	a.f = b;            // store(a, f, b)
//	d  = c.f;           // load(d, c, f)
//
// The analysis must conclude that d may point to Obj2, through the heap:
// c aliases a, so c.f is a.f, which stores b's object.
package main

import (
	"fmt"
	"log"

	"specbtree"
)

const analysis = `
// Field-sensitive Andersen points-to.
.decl new(v: symbol, o: symbol)
.decl assign(to: symbol, from: symbol)
.decl load(to: symbol, base: symbol, f: symbol)
.decl store(base: symbol, f: symbol, from: symbol)
.decl vpt(v: symbol, o: symbol)
.decl heapPt(o: symbol, f: symbol, p: symbol)
.output vpt

vpt(V, O) :- new(V, O).
vpt(V, O) :- assign(V, W), vpt(W, O).
heapPt(O, F, P) :- store(V, F, W), vpt(V, O), vpt(W, P).
vpt(V, P) :- load(V, W, F), vpt(W, O), heapPt(O, F, P).

// The analysed program, as inline facts.
new("a", "Obj1").
new("b", "Obj2").
assign("c", "a").
store("a", "f", "b").
load("d", "c", "f").
`

func main() {
	prog, err := specbtree.ParseProgram(analysis)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := specbtree.NewEngine(prog, specbtree.EngineOptions{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Run(); err != nil {
		log.Fatal(err)
	}

	syms := engine.Symbols()
	fmt.Println("var-points-to:")
	engine.Scan("vpt", func(t specbtree.Tuple) bool {
		fmt.Printf("  %s -> %s\n", syms.Name(t[0]), syms.Name(t[1]))
		return true
	})

	// The indirect flow the analysis exists to find.
	d, obj2 := syms.Intern("d"), syms.Intern("Obj2")
	found := false
	engine.Scan("vpt", func(t specbtree.Tuple) bool {
		if t[0] == d && t[1] == obj2 {
			found = true
			return false
		}
		return true
	})
	fmt.Println("d may point to Obj2:", found)
	if !found {
		log.Fatal("analysis missed the heap flow")
	}
}
