// Transitive closure: the paper's §2 running example, evaluated in
// parallel by the Datalog engine on top of the specialised B-tree. This is
// exactly the program whose synthesised evaluation loop (Figure 1 of the
// paper) motivates the data structure.
package main

import (
	"fmt"
	"log"

	"specbtree"
	"specbtree/internal/workload"
)

const program = `
.decl edge(x: number, y: number)
.decl path(x: number, y: number)
.input edge
.output path

path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`

func main() {
	prog, err := specbtree.ParseProgram(program)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := specbtree.NewEngine(prog, specbtree.EngineOptions{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}

	// A random graph: 2000 edges over 400 nodes.
	edges := workload.RandomGraph(400, 2000, 7)
	if err := engine.AddFacts("edge", edges); err != nil {
		log.Fatal(err)
	}

	if err := engine.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("edges: %d, paths: %d\n", engine.Count("edge"), engine.Count("path"))

	s := engine.Stats()
	fmt.Printf("fixpoint iterations: %d\n", s.Iterations)
	fmt.Printf("inserts: %d, membership tests: %d, bound calls: %d\n",
		s.Inserts, s.MembershipTests, s.LowerBoundCalls+s.UpperBoundCalls)
	fmt.Printf("hint hit rate: %.1f%%\n", 100*s.HintRate())

	// Spot-check a few paths in lexicographic order.
	fmt.Print("first paths:")
	n := 0
	engine.Scan("path", func(t specbtree.Tuple) bool {
		fmt.Printf(" %v", t)
		n++
		return n < 5
	})
	fmt.Println()
}
