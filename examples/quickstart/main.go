// Quickstart: the specialised concurrent B-tree as a set of 2-column
// tuples — concurrent hinted insertion, membership tests, and ordered
// range queries.
package main

import (
	"fmt"
	"sync"

	"specbtree"
)

func main() {
	// A set of binary tuples (the dominant shape in Datalog relations).
	tree := specbtree.NewBTree(2)

	// Concurrent insertion: each goroutine owns a Hints value, which
	// caches the last leaf it touched per operation class and skips the
	// tree descent whenever consecutive operations land close together.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hints := specbtree.NewHints()
			base := uint64(w * 1000)
			for i := uint64(0); i < 500; i++ {
				// Lexicographically close pairs, like the paper's §3.2
				// example of (7, 10) followed by (7, 4): the second insert
				// reuses the first one's leaf through the hint.
				tree.InsertHint(specbtree.Tuple{base + i, 10}, hints)
				tree.InsertHint(specbtree.Tuple{base + i, 4}, hints)
			}
			fmt.Printf("worker %d: hint hit rate %.0f%%\n", w, 100*hints.Stats.HitRate())
		}(w)
	}
	wg.Wait()

	fmt.Println("size:", tree.Len())
	fmt.Println("contains (42, 4):", tree.Contains(specbtree.Tuple{42, 4}))

	// Ordered range scan: every tuple with first column 7 (a Datalog
	// prefix join probe).
	fmt.Print("tuples with first column 7:")
	tree.Range(specbtree.Tuple{7, 0}, specbtree.Tuple{8, 0}, func(t specbtree.Tuple) bool {
		fmt.Printf(" %v", t)
		return true
	})
	fmt.Println()

	// Cursors give fine-grained control over ranges.
	c := tree.LowerBound(specbtree.Tuple{3999, 0})
	for i := 0; i < 3 && c.Valid(); i++ {
		fmt.Println("next:", c.Tuple())
		c.Next()
	}
}
