// Network security analysis: the EC2-style read-heavy workload of the
// paper's Figure 5b, at example scale. The engine computes which instances
// are reachable from the internet on a vulnerable, unpatched port, and
// which internal machines can in turn be reached from those.
package main

import (
	"fmt"
	"log"

	"specbtree"
	"specbtree/internal/workload"
)

func main() {
	// Generate a synthetic network: instances, subnet links, security
	// groups, ACL rules, vulnerable ports and patch state.
	w := workload.Security(256, 42)
	prog, err := specbtree.ParseProgram(w.Source)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := specbtree.NewEngine(prog, specbtree.EngineOptions{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	for rel, facts := range w.Facts {
		if err := engine.AddFacts(rel, facts); err != nil {
			log.Fatal(err)
		}
	}
	if err := engine.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("instances: %d, links: %d, ACL rules: %d\n",
		engine.Count("instance"), engine.Count("link"), engine.Count("allow"))
	fmt.Printf("reachable pairs: %d\n", engine.Count("reach"))
	fmt.Printf("vulnerable (exposed, unpatched): %d\n", engine.Count("vulnerable"))
	fmt.Printf("at-risk internal pairs: %d\n", engine.Count("atRisk"))

	fmt.Println("sample vulnerable instances (instance, port):")
	n := 0
	engine.Scan("vulnerable", func(t specbtree.Tuple) bool {
		fmt.Printf("  instance %d on port %d\n", t[0], t[1])
		n++
		return n < 5
	})

	s := engine.Stats()
	fmt.Printf("\nevaluation profile (read heavy, as in the paper's Table 2):\n")
	fmt.Printf("  inserts: %d\n", s.Inserts)
	fmt.Printf("  membership tests: %d\n", s.MembershipTests)
	fmt.Printf("  bound calls: %d\n", s.LowerBoundCalls+s.UpperBoundCalls)
	fmt.Printf("  hint hit rate: %.1f%% (the paper reports 77%% for this workload class)\n",
		100*s.HintRate())
}
