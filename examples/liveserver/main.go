// Liveserver runs the transitive-closure workload in a loop while serving
// the live debug endpoints, so the whole observability surface — the
// Prometheus /metrics exposition, the latency histograms, the contention
// flight recorder and the tree-shape walker — can be scraped with curl
// against a process that is actually doing work.
//
// Run it and poke at it from another terminal:
//
//	go run ./examples/liveserver -addr localhost:6060 -duration 60s
//
//	curl http://localhost:6060/metrics
//	curl http://localhost:6060/metrics?format=json
//	curl http://localhost:6060/debug/histograms
//	curl http://localhost:6060/debug/flightrecorder
//	curl http://localhost:6060/debug/treeshape
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=5
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"specbtree"
	"specbtree/internal/workload"
)

const program = `
.decl edge(x: number, y: number)
.decl path(x: number, y: number)
.input edge
.output path

path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`

func main() {
	addr := flag.String("addr", "localhost:6060", "debug server listen address")
	duration := flag.Duration("duration", 60*time.Second, "how long to keep the workload running")
	workers := flag.Int("workers", 4, "evaluation workers per engine run")
	flag.Parse()

	prog, err := specbtree.ParseProgram(program)
	if err != nil {
		log.Fatal(err)
	}

	// The debug handler reads whichever engine is currently evaluating;
	// the atomic pointer hands it from the workload loop to HTTP requests.
	var live atomic.Pointer[specbtree.Engine]
	handler := specbtree.NewDebugHandler(func() map[string]specbtree.TreeShape {
		if e := live.Load(); e != nil {
			return e.TreeShapes()
		}
		return nil
	})
	go func() {
		log.Fatal(http.ListenAndServe(*addr, handler))
	}()
	fmt.Printf("debug server listening on http://%s/\n", *addr)
	fmt.Printf("try:  curl http://%s/metrics\n", *addr)
	fmt.Printf("      curl http://%s/metrics?format=json\n", *addr)
	fmt.Printf("      curl http://%s/debug/histograms\n", *addr)
	fmt.Printf("      curl http://%s/debug/flightrecorder\n", *addr)
	fmt.Printf("      curl http://%s/debug/treeshape\n", *addr)

	// Keep re-running the closure over fresh random graphs until the
	// deadline so scrapes always observe live counters and tree shapes.
	deadline := time.Now().Add(*duration)
	for run := 0; time.Now().Before(deadline); run++ {
		eng, err := specbtree.NewEngine(prog, specbtree.EngineOptions{Workers: *workers})
		if err != nil {
			log.Fatal(err)
		}
		edges := workload.RandomGraph(600, 4000, int64(run+1))
		if err := eng.AddFacts("edge", edges); err != nil {
			log.Fatal(err)
		}
		live.Store(eng)
		if err := eng.Run(); err != nil {
			log.Fatal(err)
		}
		if run%10 == 0 {
			fmt.Printf("run %d: %d edges -> %d paths\n",
				run, eng.Count("edge"), eng.Count("path"))
		}
	}
	fmt.Println("done")
}
