package specbtree

import (
	"testing"

	"specbtree/internal/core"
	"specbtree/internal/datalog"
	"specbtree/internal/obs"
	"specbtree/internal/relation"
	"specbtree/internal/workload"
)

// The metrics-overhead benchmarks quantify the cost of the observability
// layer (DESIGN.md §9) on the paper's hot paths. Run them twice —
//
//	go test -bench MetricsOverhead -count 5 .
//	go test -bench MetricsOverhead -count 5 -tags obsoff .
//
// — and compare: the enabled build must stay within 3% of the obsoff
// build, which compiles the counters out entirely (obs.Enabled reports
// which build is measured). The budget covers the full second-tier
// instrumentation: batched counters, the sampled duration histograms
// (one clock pair per obs.SamplePeriod operations plus batched bucket
// increments) and the contention sampling gates, which fire only on
// already-slow contended paths.

// BenchmarkMetricsOverheadInsertHint measures the most instrumented code
// path: hinted random-order inserts, which touch the descent, validation,
// upgrade, hint and split counters on every operation.
func BenchmarkMetricsOverheadInsertHint(b *testing.B) {
	data := benchData("random")
	b.Logf("obs.Enabled=%v", obs.Enabled)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := core.New(2)
		h := core.NewHints()
		for _, v := range data {
			t.InsertHint(v, h)
		}
		h.FlushObs()
	}
	b.SetBytes(0)
	b.ReportMetric(float64(b.N*len(data))/b.Elapsed().Seconds()/1e6, "Minserts/s")
}

// BenchmarkMetricsOverheadEngine measures end-to-end instrumented
// semi-naïve evaluation on the insertion-heavy points-to workload.
func BenchmarkMetricsOverheadEngine(b *testing.B) {
	w := workload.PointsTo(64, 1)
	prog := datalog.MustParse(w.Source)
	b.Logf("obs.Enabled=%v", obs.Enabled)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := datalog.New(prog, datalog.Options{
			Provider: relation.MustLookup("btree"), Workers: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		for rel, facts := range w.Facts {
			if err := eng.AddFacts(rel, facts); err != nil {
				b.Fatal(err)
			}
		}
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
