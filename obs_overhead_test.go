package specbtree

import (
	"testing"

	"specbtree/internal/core"
	"specbtree/internal/datalog"
	"specbtree/internal/obs"
	"specbtree/internal/relation"
	"specbtree/internal/workload"
)

// The metrics-overhead benchmarks quantify the cost of the observability
// layer (DESIGN.md §9) on the paper's hot paths. Run them twice —
//
//	go test -bench MetricsOverhead -count 5 .
//	go test -bench MetricsOverhead -count 5 -tags obsoff .
//
// — and compare: the enabled build must stay within 3% of the obsoff
// build, which compiles the counters out entirely (obs.Enabled reports
// which build is measured). The budget covers the full second-tier
// instrumentation: batched counters, the sampled duration histograms
// (one clock pair per obs.SamplePeriod operations plus batched bucket
// increments) and the contention sampling gates, which fire only on
// already-slow contended paths.

// BenchmarkMetricsOverheadInsertHint measures the most instrumented code
// path: hinted random-order inserts, which touch the descent, validation,
// upgrade, hint and split counters on every operation.
func BenchmarkMetricsOverheadInsertHint(b *testing.B) {
	data := benchData("random")
	b.Logf("obs.Enabled=%v", obs.Enabled)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := core.New(2)
		h := core.NewHints()
		for _, v := range data {
			t.InsertHint(v, h)
		}
		h.FlushObs()
	}
	b.SetBytes(0)
	b.ReportMetric(float64(b.N*len(data))/b.Elapsed().Seconds()/1e6, "Minserts/s")
}

// BenchmarkMetricsOverheadEngine measures end-to-end instrumented
// semi-naïve evaluation on the insertion-heavy points-to workload.
func BenchmarkMetricsOverheadEngine(b *testing.B) {
	w := workload.PointsTo(64, 1)
	prog := datalog.MustParse(w.Source)
	b.Logf("obs.Enabled=%v", obs.Enabled)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := datalog.New(prog, datalog.Options{
			Provider: relation.MustLookup("btree"), Workers: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		for rel, facts := range w.Facts {
			if err := eng.AddFacts(rel, facts); err != nil {
				b.Fatal(err)
			}
		}
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// The trace-overhead benchmarks quantify the cost of the span tracer
// (DESIGN.md §13) on the engine's hot path, in its two live states.
// Run each twice, with and without -tags obsoff, and compare:
//
//	go test -bench TraceOverheadEngineDormant -count 5 .
//	go test -bench TraceOverheadEngineDormant -count 5 -tags obsoff .
//
// Dormant — sampling off, no trace forced, the production default —
// must stay within 2% of the obsoff build: the entire dormant cost is
// one predictable trace==0 branch per instrumented site, and obsoff
// compiles even that out (0% by construction — RecordSpan and both
// trace issuers are constant-folded no-ops). Traced — every run under
// a forced trace — is the informational upper bound: it prices span
// recording itself (a clock pair and one sharded ring write per scan,
// rule and round), which sampling amortises to near-dormant cost at
// production rates.

// traceOverheadRun is one engine evaluation of the shared workload,
// the measured body of both trace-overhead benchmarks.
func traceOverheadRun(b *testing.B, w workload.DatalogWorkload, prog *datalog.Program, trace obs.TraceID) {
	b.Helper()
	eng, err := datalog.New(prog, datalog.Options{
		Provider: relation.MustLookup("btree"), Workers: 2, TraceID: trace,
	})
	if err != nil {
		b.Fatal(err)
	}
	for rel, facts := range w.Facts {
		if err := eng.AddFacts(rel, facts); err != nil {
			b.Fatal(err)
		}
	}
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTraceOverheadEngineDormant measures evaluation with the
// tracer present but dormant (sampling off, no trace forced) — the
// production default whose ≤2% budget the §13 contract pins.
func BenchmarkTraceOverheadEngineDormant(b *testing.B) {
	w := workload.PointsTo(64, 1)
	prog := datalog.MustParse(w.Source)
	b.Logf("obs.Enabled=%v sample_rate=%d", obs.Enabled, obs.TraceSampleRate())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traceOverheadRun(b, w, prog, 0)
	}
}

// BenchmarkTraceOverheadEngineTraced measures evaluation with every
// run under a forced trace — the worst case, every instrumented site
// recording. Under obsoff ForceTrace returns 0 and this degenerates to
// the dormant shape.
func BenchmarkTraceOverheadEngineTraced(b *testing.B) {
	w := workload.PointsTo(64, 1)
	prog := datalog.MustParse(w.Source)
	b.Logf("obs.Enabled=%v", obs.Enabled)
	b.Cleanup(obs.ResetTrace)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traceOverheadRun(b, w, prog, obs.ForceTrace())
	}
}
