package core

import (
	"math/rand"
	"sync"
	"testing"

	"specbtree/internal/obs"
	"specbtree/internal/tuple"
)

// TestObsCountersConcurrentInvariants hammers one tree from 8 goroutines
// and asserts the cross-counter invariants of the metrics contract
// (DESIGN.md §9): hinted operations are counted exactly once each,
// validation failures never exceed validations, and the split counters
// reconstruct the physical tree shape.
func TestObsCountersConcurrentInvariants(t *testing.T) {
	if !obs.Enabled {
		t.Skip("observability counters compiled out (obsoff)")
	}
	obs.Reset()

	const (
		goroutines = 8
		opsEach    = 20000
	)
	tr := New(2)
	var inserts, contains, lowers, uppers int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			h := NewHints()
			var ins, con, low, up int64
			buf := make(tuple.Tuple, 2)
			for i := 0; i < opsEach; i++ {
				buf[0] = uint64(rng.Intn(opsEach))
				buf[1] = uint64(rng.Intn(64))
				switch i % 4 {
				case 0, 1:
					tr.InsertHint(buf, h)
					ins++
				case 2:
					tr.ContainsHint(buf, h)
					con++
				default:
					if i%8 == 3 {
						tr.LowerBoundHint(buf, h)
						low++
					} else {
						tr.UpperBoundHint(buf, h)
						up++
					}
				}
			}
			// Settle this worker's batched counters so the snapshot below
			// is exact.
			h.FlushObs()
			mu.Lock()
			inserts += ins
			contains += con
			lowers += low
			uppers += up
			mu.Unlock()
		}(g)
	}
	wg.Wait()

	s := obs.Take()
	c := func(name string) uint64 {
		v, ok := s.Counters[name]
		if !ok {
			t.Fatalf("snapshot lacks counter %q", name)
		}
		return v
	}

	// Every hinted operation records exactly one hit or miss.
	if got := c("hint.insert.hits") + c("hint.insert.misses"); got != uint64(inserts) {
		t.Errorf("insert hits+misses = %d, want %d", got, inserts)
	}
	if got := c("hint.find.hits") + c("hint.find.misses"); got != uint64(contains) {
		t.Errorf("find hits+misses = %d, want %d", got, contains)
	}
	if got := c("hint.lower.hits") + c("hint.lower.misses"); got != uint64(lowers) {
		t.Errorf("lower hits+misses = %d, want %d", got, lowers)
	}
	if got := c("hint.upper.hits") + c("hint.upper.misses"); got != uint64(uppers) {
		t.Errorf("upper hits+misses = %d, want %d", got, uppers)
	}

	// A failed validation is itself a validation.
	if c("optlock.read.validation_failures") > c("optlock.read.validations") {
		t.Errorf("validation failures %d exceed validations %d",
			c("optlock.read.validation_failures"), c("optlock.read.validations"))
	}
	if c("optlock.read.validations") == 0 {
		t.Error("no read validations recorded under concurrent load")
	}

	// Descent accounting: every operation either descends from the root at
	// least once or is served entirely from its hint (a hit), and each
	// restart re-descends.
	totalOps := uint64(inserts + contains + lowers + uppers)
	totalHits := c("hint.insert.hits") + c("hint.find.hits") +
		c("hint.lower.hits") + c("hint.upper.hits")
	if d := c("core.descents"); d+totalHits < totalOps {
		t.Errorf("descents %d + hint hits %d below total ops %d", d, totalHits, totalOps)
	}
	if d, r := c("core.descents"), c("core.restarts"); d-r > totalOps {
		t.Errorf("first descents %d exceed total ops %d", d-r, totalOps)
	}

	// The split counters reconstruct the physical shape: the tree starts
	// as a single leaf and every split adds exactly one node (a root
	// split adds the new root on top of the two split halves, whose own
	// split is counted in its level's counter).
	shape := tr.Shape()
	wantNodes := 1 + c("core.split.leaf") + c("core.split.inner") + c("core.split.root")
	if uint64(shape.Nodes) != wantNodes {
		t.Errorf("shape has %d nodes, split counters imply %d (leaf=%d inner=%d root=%d)",
			shape.Nodes, wantNodes, c("core.split.leaf"), c("core.split.inner"), c("core.split.root"))
	}
	// Each root split adds one level to the initially one-level tree.
	if want := 1 + c("core.split.root"); uint64(shape.Depth) != want {
		t.Errorf("shape depth %d, root splits imply %d", shape.Depth, want)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("tree invariants violated: %v", err)
	}
}
