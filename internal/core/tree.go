// Package core implements the paper's contribution: a concurrent
// in-memory B-tree specialised for parallel semi-naïve Datalog evaluation
// (Jordan, Subotić, Zhao, Scholz — PPoPP 2019).
//
// The tree stores fixed-arity tuples of uint64 words in lexicographic
// order. It supports insertion (no deletion — Datalog relations only
// grow), membership tests, lower/upper bound queries and ordered
// iteration. Insertions are synchronised by an optimistic fine-grained
// locking scheme built on the optimistic read-write lock of package
// optlock: descents take validation-only read leases top-down, mutations
// take exclusive write locks bottom-up (Algorithms 1 and 2 of the paper).
// The four hot operations accept operation hints (package-level type
// Hints) that cache the last leaf accessed per operation class and skip
// the descent entirely when the cached leaf still covers the probe.
package core

import (
	"fmt"
	"sync/atomic"

	"specbtree/internal/obs"
	"specbtree/internal/tuple"
)

// DefaultCapacity is the default number of elements per node. For binary
// tuples this makes a node's key area 256 bytes — a few cache lines, the
// sweet spot the paper's "highly tuned" implementation targets: wide
// enough to amortise descent cost and absorb writes lazily, small enough
// to keep scans and shifts cheap.
const DefaultCapacity = 16

// Options configures a Tree.
type Options struct {
	// Capacity is the number of elements per node (minimum 3). Zero means
	// DefaultCapacity.
	Capacity int
}

// Tree is the concurrent optimistic B-tree. All methods are safe for
// concurrent use, with the phase discipline of Datalog evaluation in mind:
// Insert may run concurrently with Insert/Contains/bounds; full iteration
// (Begin/Cursor.Next) is intended for the read phase, where no writers are
// active.
type Tree struct {
	arity    int
	capacity int

	// rootLock protects the root pointer and the (nil) parent pointer of
	// the root node, per the paper's locking rules.
	rootLock rootLockT
	root     atomic.Pointer[node]

	// epoch is the tree's current snapshot epoch. Snapshot advances it;
	// nodes stamped with an older epoch are frozen (immutable, owned by
	// the published snapshots) and are copied on first write (cow).
	epoch atomic.Uint64
}

// rootLockT aliases the optimistic lock so Tree's field list reads like
// the paper's (tree->root_lock).
type rootLockT = lockT

// New creates an empty tree for tuples with the given number of columns.
func New(arity int, opts ...Options) *Tree {
	if arity <= 0 {
		panic(fmt.Sprintf("core: invalid arity %d", arity))
	}
	capacity := DefaultCapacity
	if len(opts) > 0 && opts[0].Capacity != 0 {
		capacity = opts[0].Capacity
	}
	if capacity < 3 {
		panic(fmt.Sprintf("core: node capacity %d too small (minimum 3)", capacity))
	}
	return &Tree{arity: arity, capacity: capacity}
}

// Arity returns the number of columns of the stored tuples.
func (t *Tree) Arity() int { return t.arity }

// Capacity returns the per-node element capacity.
func (t *Tree) Capacity() int { return t.capacity }

// Empty reports whether the tree contains no elements.
func (t *Tree) Empty() bool {
	r := t.root.Load()
	return r == nil || r.count.Load() == 0
}

// Len counts the elements by walking the tree. It is intended for the
// read phase; the tree deliberately maintains no shared size counter,
// which would serialise concurrent inserts on one cache line.
func (t *Tree) Len() int {
	return countSubtree(t.root.Load())
}

// countSubtree counts the elements of the subtree rooted at n (shared by
// Tree.Len and Snapshot.Len).
func countSubtree(n *node) int {
	if n == nil {
		return 0
	}
	total := int(n.count.Load())
	if n.inner {
		for i := 0; i <= int(n.count.Load()); i++ {
			total += countSubtree(n.children[i].Load())
		}
	}
	return total
}

func (t *Tree) newNode(inner bool) *node {
	n := &node{
		inner: inner,
		epoch: t.epoch.Load(),
		keys:  make([]atomic.Uint64, t.capacity*t.arity),
	}
	if inner {
		n.children = make([]atomic.Pointer[node], t.capacity+1)
	}
	return n
}

// frozen reports whether n predates the tree's current epoch and
// therefore belongs to a published snapshot. Frozen nodes are immutable;
// a writer reaching one must clone its path first (cow).
func (t *Tree) frozen(n *node) bool {
	return n.epoch < t.epoch.Load()
}

// valid counts and performs one lease validation: one
// optlock.read.validations event per call, plus a
// optlock.read.validation_failures event when the lease is stale. All
// validations of the tree's hot paths funnel through here so the lock
// protocol stays observable without touching package optlock's fast path.
func valid(l *lockT, ls lease, oc *obs.OpCounts) bool {
	oc.Inc(obs.LockReadValidations)
	if l.Valid(ls) {
		return true
	}
	oc.Inc(obs.LockReadValidationFailures)
	return false
}

// Insert adds v to the set, returning false if it was already present.
// It is the hint-less form of InsertHint.
func (t *Tree) Insert(v tuple.Tuple) bool { return t.InsertHint(v, nil) }

// InsertHint adds v to the set, consulting and updating the caller's
// operation hints. The hint may be nil. v must have the tree's arity.
//
// The implementation follows the paper's Algorithm 1: descend under
// optimistic read leases, validate every lease before trusting what was
// read under it, upgrade the leaf lease to a write lock, and restart from
// the top on any conflict. Split handling (full leaf) is Algorithm 2.
// One in obs.SamplePeriod operations is timed into "hist.op.insert.ns".
func (t *Tree) InsertHint(v tuple.Tuple, h *Hints) bool {
	if h != nil {
		oc := h.obs.Counts()
		var start int64
		if h.obs.SampleOp() {
			start = obs.Clock()
		}
		ok := t.insertHint(v, h, oc)
		if start != 0 {
			oc.Observe(obs.HistInsertNanos, uint64(obs.Clock()-start))
		}
		h.obs.EndOp()
		return ok
	}
	var oc obs.OpCounts
	start := obs.SampleClock()
	ok := t.insertHint(v, nil, &oc)
	if start != 0 {
		oc.Observe(obs.HistInsertNanos, uint64(obs.Clock()-start))
	}
	oc.Flush()
	return ok
}

func (t *Tree) insertHint(v tuple.Tuple, h *Hints, oc *obs.OpCounts) bool {
	if len(v) != t.arity {
		panic(fmt.Sprintf("core: inserting arity-%d tuple into arity-%d tree", len(v), t.arity))
	}

	// Safely initialise the root node pointer (Alg. 1 lines 2-9).
	for t.root.Load() == nil {
		if !t.rootLock.TryStartWrite() {
			continue
		}
		if t.root.Load() == nil {
			t.root.Store(t.newNode(false))
		}
		t.rootLock.EndWrite()
	}

	// Try the insert hint: if the remembered leaf still covers v, enter
	// the tree directly at that leaf, skipping the descent. Correctness of
	// leaf-first entry rests on write locks being acquired bottom-up. A
	// cold hint (no remembered leaf yet) counts as a miss, so hits plus
	// misses always equals the number of hinted operations.
	if h != nil {
		if leaf := h.insertLeaf; leaf != nil {
			lease := leaf.lock.StartRead()
			idx, found, covered := t.probeLeaf(leaf, v)
			if valid(&leaf.lock, lease, oc) && covered {
				h.Stats.InsertHits++
				oc.Inc(obs.HintInsertHits)
				if found {
					if valid(&leaf.lock, lease, oc) {
						return false
					}
					// Torn read; fall through to the full descent.
				} else if done, inserted := t.insertIntoLeaf(leaf, lease, idx, v, h, oc); done {
					return inserted
				}
				// Upgrade or split lost a race: restart via full descent.
			} else {
				h.Stats.InsertMisses++
				oc.Inc(obs.HintInsertMisses)
			}
		} else {
			h.Stats.InsertMisses++
			oc.Inc(obs.HintInsertMisses)
		}
	}

restart:
	for attempt := 0; ; attempt++ {
		oc.Inc(obs.TreeDescents)
		if attempt > 0 {
			oc.Inc(obs.TreeRestarts)
		}
		// Safely obtain the root node and a lease on it (lines 13-17).
		var cur *node
		var curLease lease
		for {
			rootLease := t.rootLock.StartRead()
			cur = t.root.Load()
			if cur == nil {
				continue
			}
			curLease = cur.lock.StartRead()
			if valid(&t.rootLock, rootLease, oc) {
				break
			}
		}

		// Descend into the tree (lines 20-33).
		for {
			idx, found := cur.search(t.arity, v)
			if found {
				if valid(&cur.lock, curLease, oc) {
					oc.Observe(obs.HistRestartsPerOp, uint64(attempt))
					return false
				}
				continue restart
			}

			if cur.inner {
				next := cur.child(idx)
				if !valid(&cur.lock, curLease, oc) {
					continue restart
				}
				nextLease := next.lock.StartRead()
				if !valid(&cur.lock, curLease, oc) {
					continue restart
				}
				cur, curLease = next, nextLease
				continue
			}

			done, inserted := t.insertIntoLeaf(cur, curLease, idx, v, h, oc)
			if !done {
				continue restart
			}
			oc.Observe(obs.HistRestartsPerOp, uint64(attempt))
			return inserted
		}
	}
}

// insertIntoLeaf performs Alg. 1 lines 35-48: upgrade the leaf's read
// lease to a write lock, split if full, otherwise insert. done=false
// requests a restart of the whole insertion.
func (t *Tree) insertIntoLeaf(leaf *node, ls lease, idx int, v tuple.Tuple, h *Hints, oc *obs.OpCounts) (done, inserted bool) {
	if !leaf.lock.TryUpgradeToWrite(ls) {
		oc.Inc(obs.LockUpgradeFailures)
		// A lost upgrade CAS is instantaneous contention: one failed
		// attempt, no wait.
		obs.RecordContention(obs.SiteLeafUpgrade, 0, 1, 0)
		return false, false
	}
	oc.Inc(obs.LockUpgradeSuccesses)
	if leaf.retired.Load() {
		// The leaf was cloned out of the live tree between our lease and
		// the upgrade (a concurrent cow EndWrite left the lock free to
		// acquire). Nothing was modified, so AbortWrite keeps outstanding
		// leases valid; the restarted descent finds the clone.
		leaf.lock.AbortWrite()
		return false, false
	}
	if t.frozen(leaf) {
		// First write of the epoch to reach this leaf: replace the frozen
		// path with current-epoch clones, then restart the descent into
		// the clone. EndWrite (not Abort) — cow retired the leaf, and the
		// version bump invalidates every lease still pointing at it.
		t.cow(leaf, oc)
		leaf.lock.EndWrite()
		return false, false
	}
	if leaf.full(t.arity) {
		t.split(leaf, oc)
		leaf.lock.EndWrite()
		return false, false
	}
	leaf.insertAt(idx, t.arity, v, nil)
	leaf.lock.EndWrite()
	if h != nil {
		h.insertLeaf = leaf
	}
	return true, true
}

// probeLeaf checks whether leaf (a presumed leaf node) covers v — i.e.
// leaf.first <= v <= leaf.last, so v's position in the tree order falls
// inside this very node — and locates v's slot. All reads are atomic and
// must be validated by the caller's lease.
func (t *Tree) probeLeaf(leaf *node, v tuple.Tuple) (idx int, found, covered bool) {
	if leaf.inner || leaf.retired.Load() {
		// A retired leaf's content is frozen at its retirement: its live
		// clone may hold newer inserts, so answering from it would lose
		// them. Treat stale hints into retired nodes as plain misses.
		return 0, false, false
	}
	cnt := int(leaf.count.Load())
	if cnt <= 0 || cnt > t.capacity {
		return 0, false, false
	}
	if leaf.cmpRow(0, t.arity, v) > 0 || leaf.cmpRow(cnt-1, t.arity, v) < 0 {
		return 0, false, false
	}
	idx, found = leaf.search(t.arity, v)
	return idx, found, true
}

// split implements the paper's Algorithm 2. The caller holds the write
// lock on n (which is full). Write locks on the ancestor path are taken
// bottom-up until the first non-full ancestor or the root lock, the split
// is performed, and the path is unlocked top-down. The caller keeps — and
// must release — its own lock on n.
func (t *Tree) split(n *node, oc *obs.OpCounts) {
	// Write-lock the path bottom-up (lines 2-23). path records the locked
	// ancestors; a nil entry denotes the tree's root lock. level tracks
	// how far above the leaf the currently acquired lock sits (the leaf
	// being split is level 0), labelling contention events for the
	// flight recorder — ancestor locks near the root are the contention
	// hot spots the paper's scaling discussion predicts.
	cur := n
	parent := cur.parent.Load()
	var path []*node
	for level := int32(1); ; level++ {
		if parent != nil {
			// The parent pointer of cur is covered by the parent's own
			// lock; re-read until it is stable under that lock (lines 8-13).
			for {
				if spins, wait := parent.lock.StartWriteTimed(); spins > 0 {
					obs.RecordContention(obs.SiteSplitParent, level, spins, wait)
				}
				if parent == cur.parent.Load() {
					break
				}
				parent.lock.AbortWrite()
				parent = cur.parent.Load()
			}
		} else {
			// cur believes it is the root; its (nil) parent pointer is
			// covered by the root lock. Re-check under that lock: a
			// concurrent split may have given cur a parent meanwhile.
			if spins, wait := t.rootLock.StartWriteTimed(); spins > 0 {
				obs.RecordContention(obs.SiteSplitRoot, level, spins, wait)
			}
			if p := cur.parent.Load(); p != nil {
				t.rootLock.AbortWrite()
				parent = p
				level--
				continue
			}
		}
		path = append(path, parent)

		// Stop at the root or at a non-full inner node (line 20).
		if parent == nil || !parent.full(t.arity) {
			break
		}
		cur = parent
		parent = cur.parent.Load()
	}

	// Conduct the actual split (line 26).
	t.doSplit(n, oc)

	// Unlock the path top-down (lines 28-35).
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] != nil {
			path[i].lock.EndWrite()
		} else {
			t.rootLock.EndWrite()
		}
	}
}

// doSplit splits the full node n, propagating splits up the (already
// locked) ancestor path as needed. n and every full ancestor are write
// locked; the first non-full ancestor (or the root lock) is locked too.
func (t *Tree) doSplit(n *node, oc *obs.OpCounts) {
	parent := n.parent.Load()
	if parent != nil && parent.full(t.arity) {
		// Make room above first. Splitting the parent may migrate n into
		// the parent's new sibling, so re-read n's parent afterwards.
		t.doSplit(parent, oc)
		parent = n.parent.Load()
	}
	if n.inner {
		oc.Inc(obs.TreeInnerSplits)
	} else {
		oc.Inc(obs.TreeLeafSplits)
	}

	arity := t.arity
	cnt := int(n.count.Load())
	mid := cnt / 2

	// Half of the elements stay, the median moves up, the rest move to a
	// fresh right sibling. The sibling is unreachable until the locked
	// parent exposes it, so it needs no locking yet.
	median := make([]uint64, arity)
	n.loadRow(mid, arity, median)

	sibling := t.newNode(n.inner)
	moved := cnt - mid - 1
	buf := make([]uint64, arity)
	for i := 0; i < moved; i++ {
		n.loadRow(mid+1+i, arity, buf)
		sibling.storeRow(i, arity, buf)
	}
	if n.inner {
		for i := 0; i <= moved; i++ {
			c := n.children[mid+1+i].Load()
			sibling.children[i].Store(c)
			// The children's parent pointers are covered by n's lock —
			// which we hold — while they still belong to n.
			c.parent.Store(sibling)
			c.pos.Store(int32(i))
		}
	}
	sibling.count.Store(int32(moved))
	n.count.Store(int32(mid))

	if parent == nil {
		// n was the root: grow the tree by one level. The root lock is
		// held, covering both the root pointer and the parents of n and
		// the sibling. Each root split is exactly one height increase, so
		// core.split.root doubles as the height-change counter.
		oc.Inc(obs.TreeRootSplits)
		newRoot := t.newNode(true)
		newRoot.storeRow(0, arity, median)
		newRoot.children[0].Store(n)
		newRoot.children[1].Store(sibling)
		newRoot.count.Store(1)
		n.parent.Store(newRoot)
		n.pos.Store(0)
		sibling.parent.Store(newRoot)
		sibling.pos.Store(1)
		t.root.Store(newRoot)
		return
	}

	// Insert the median and the new sibling into the (locked, non-full)
	// parent, right of n's own slot.
	parent.insertAt(int(n.pos.Load()), arity, median, sibling)
}

// cow replaces the frozen path from leaf up to the first non-frozen
// ancestor with current-epoch clones, retiring the originals. The caller
// holds leaf's write lock (and releases it with EndWrite afterwards);
// cow write-locks the frozen ancestor chain bottom-up exactly like
// split, so the two upward lock protocols compose without deadlock.
//
// The chain of frozen ancestors is contiguous by the epoch invariant:
// a live non-frozen node's parent is non-frozen (clones are created
// under non-frozen parents, and epoch advances freeze the whole tree at
// once). The first non-frozen ancestor — or the root lock — is therefore
// the install point, and everything above it is current-epoch structure
// the published snapshots can no longer reach. Snapshots entered through
// the frozen old root keep reading the retired originals, whose content
// never changes again.
func (t *Tree) cow(leaf *node, oc *obs.OpCounts) {
	epoch := t.epoch.Load()

	// Write-lock the frozen ancestors bottom-up (the split protocol:
	// re-read the parent pointer until it is stable under the parent's
	// own lock, with the root lock covering a nil parent). chain collects
	// the frozen nodes to clone, bottom-up, leaf first; path collects
	// every acquired lock for the top-down release, nil denoting the
	// tree's root lock.
	chain := []*node{leaf}
	var path []*node
	var top *node // first non-frozen ancestor; nil when the root lock is the install point
	cur := leaf
	parent := cur.parent.Load()
	for level := int32(1); ; level++ {
		if parent != nil {
			for {
				if spins, wait := parent.lock.StartWriteTimed(); spins > 0 {
					obs.RecordContention(obs.SiteCowParent, level, spins, wait)
				}
				if parent == cur.parent.Load() {
					break
				}
				// A concurrent cow of the old parent repointed cur to the
				// parent's clone; chase the new pointer.
				parent.lock.AbortWrite()
				parent = cur.parent.Load()
			}
		} else {
			if spins, wait := t.rootLock.StartWriteTimed(); spins > 0 {
				obs.RecordContention(obs.SiteCowRoot, level, spins, wait)
			}
			if p := cur.parent.Load(); p != nil {
				t.rootLock.AbortWrite()
				parent = p
				level--
				continue
			}
		}
		path = append(path, parent)
		if parent == nil || parent.epoch >= epoch {
			top = parent
			break
		}
		chain = append(chain, parent)
		cur = parent
		parent = cur.parent.Load()
	}

	// Clone top-down. Cloning an inner node repoints all its children to
	// the clone (covered by the original's lock, which we hold); the
	// on-path child slot is then overwritten with the child's own clone.
	// The whole new path becomes reachable only through the locked
	// install point, so readers cannot observe it half-built.
	var parentClone *node
	for i := len(chain) - 1; i >= 0; i-- {
		orig := chain[i]
		cl := t.cloneNode(orig)
		oc.Inc(obs.TreeCowClones)
		orig.retired.Store(true)
		pos := int(orig.pos.Load())
		switch {
		case i == len(chain)-1 && top == nil:
			// orig was the root; the root lock (held) covers both the root
			// pointer and the clone's nil parent.
			t.root.Store(cl)
		case i == len(chain)-1:
			top.children[pos].Store(cl)
			cl.parent.Store(top)
			cl.pos.Store(int32(pos))
		default:
			parentClone.children[pos].Store(cl)
			cl.parent.Store(parentClone)
			cl.pos.Store(int32(pos))
		}
		parentClone = cl
	}

	// Unlock top-down. EndWrite throughout: every locked node was either
	// mutated (the install point's child slot) or retired, and the
	// version bump pushes lease holders off the old path.
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] != nil {
			path[i].lock.EndWrite()
		} else {
			t.rootLock.EndWrite()
		}
	}
}

// cloneNode builds a current-epoch copy of n: same elements, same child
// pointers, same position. The children's parent pointers are repointed
// to the clone (covered by n's write lock, held by the caller). The
// clone is unreachable until the caller installs it.
func (t *Tree) cloneNode(n *node) *node {
	cl := t.newNode(n.inner)
	cnt := int(n.count.Load())
	for w := 0; w < cnt*t.arity; w++ {
		cl.keys[w].Store(n.keys[w].Load())
	}
	if n.inner {
		for i := 0; i <= cnt; i++ {
			c := n.children[i].Load()
			cl.children[i].Store(c)
			c.parent.Store(cl)
		}
	}
	cl.count.Store(int32(cnt))
	cl.parent.Store(n.parent.Load())
	cl.pos.Store(n.pos.Load())
	return cl
}
