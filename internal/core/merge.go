package core

import "specbtree/internal/tuple"

// InsertAll merges every element of src into t — the paper's specialised
// merge operation ("a specialized merge operation which leverages the
// structure in one B-tree when merged into another"). Two levels of
// exploitation:
//
//   - src is iterated in order, so a single insert hint shortcuts almost
//     every insertion to the currently-filling leaf of t;
//   - if t is empty, the sorted stream is bulk-loaded into densely packed
//     nodes, skipping per-element descents entirely.
//
// InsertAll is a single-writer operation: it must not run concurrently
// with other mutations of t (the engine merges newPath into path in the
// sequential step between iterations, cf. Figure 1 line 17).
func (t *Tree) InsertAll(src *Tree) {
	if src.Empty() {
		return
	}
	if t.Empty() {
		t.bulkLoad(src)
		return
	}
	h := NewHints()
	buf := make(tuple.Tuple, t.arity)
	for c := src.Begin(); c.Valid(); c.Next() {
		c.CopyTo(buf)
		t.InsertHint(buf, h)
	}
}

// bulkLoad builds t (which must be empty) from the elements of src,
// producing a packed tree: full leaves with single separators between
// them, level by level.
func (t *Tree) bulkLoad(src *Tree) {
	rows := make([][]uint64, 0, 1024)
	for c := src.Begin(); c.Valid(); c.Next() {
		row := make([]uint64, t.arity)
		c.CopyTo(tuple.Tuple(row))
		rows = append(rows, row)
	}
	t.buildPacked(rows)
}

// BuildFromSorted bulk-loads the tree from a strictly increasing sorted
// slice of tuples. The tree must be empty; the input must be duplicate
// free and sorted, which is the caller's responsibility (checked only by
// the test suite's invariant checker).
func (t *Tree) BuildFromSorted(sorted []tuple.Tuple) {
	if !t.Empty() {
		panic("core: BuildFromSorted on non-empty tree")
	}
	rows := make([][]uint64, len(sorted))
	for i, tp := range sorted {
		row := make([]uint64, t.arity)
		copy(row, tp)
		rows[i] = row
	}
	t.buildPacked(rows)
}

// buildPacked constructs a packed B-tree from sorted rows and installs it
// as the tree's root. Single-writer.
func (t *Tree) buildPacked(rows [][]uint64) {
	if len(rows) == 0 {
		return
	}
	c := t.capacity

	// Leaf level: runs of c elements, with the element between two runs
	// promoted as a separator.
	var children []*node
	var seps [][]uint64
	i := 0
	for i < len(rows) {
		remaining := len(rows) - i
		take := remaining
		if take > c {
			take = c
		}
		last := take == remaining
		if !last && remaining == take+1 {
			// A separator after a full leaf would leave no element for the
			// next leaf; shrink this leaf by one so the tail stays valid.
			take--
		}
		leaf := t.newNode(false)
		for j := 0; j < take; j++ {
			leaf.storeRow(j, t.arity, rows[i+j])
		}
		leaf.count.Store(int32(take))
		children = append(children, leaf)
		i += take
		if !last {
			seps = append(seps, rows[i])
			i++
		}
	}

	// Inner levels: each parent consumes s separators and s+1 children;
	// one further separator is promoted between consecutive parents.
	// Invariant per level: len(seps) == len(children)-1.
	for len(children) > 1 {
		var parents []*node
		var upSeps [][]uint64
		ci, si := 0, 0
		for ci < len(children) {
			remainingChildren := len(children) - ci
			s := c
			if s > remainingChildren-1 {
				s = remainingChildren - 1
			}
			// Never leave a single orphan child for the next parent.
			if rem := remainingChildren - (s + 1); rem == 1 {
				s--
			}
			inner := t.newNode(true)
			for j := 0; j < s; j++ {
				inner.storeRow(j, t.arity, seps[si+j])
			}
			for j := 0; j <= s; j++ {
				ch := children[ci+j]
				inner.children[j].Store(ch)
				ch.parent.Store(inner)
				ch.pos.Store(int32(j))
			}
			inner.count.Store(int32(s))
			si += s
			ci += s + 1
			parents = append(parents, inner)
			if ci < len(children) {
				upSeps = append(upSeps, seps[si])
				si++
			}
		}
		children, seps = parents, upSeps
	}
	t.root.Store(children[0])
}
