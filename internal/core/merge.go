package core

import (
	"sync"

	"specbtree/internal/obs"
	"specbtree/internal/tuple"
)

// InsertAll merges every element of src into t — the paper's specialised
// merge operation ("a specialized merge operation which leverages the
// structure in one B-tree when merged into another"). Two levels of
// exploitation:
//
//   - src is iterated in order, so a single insert hint shortcuts almost
//     every insertion to the currently-filling leaf of t;
//   - if t is empty, the sorted stream is bulk-loaded into densely packed
//     nodes, skipping per-element descents entirely.
//
// InsertAll is a single-writer operation: it must not run concurrently
// with other mutations of t (the engine merges newPath into path in the
// sequential step between iterations, cf. Figure 1 line 17).
func (t *Tree) InsertAll(src *Tree) {
	if src.Empty() {
		return
	}
	if t.Empty() {
		obs.Inc(obs.MergeBulkLoads)
		t.bulkLoad(src)
		return
	}
	obs.Inc(obs.MergeHinted)
	t.mergeRange(src, nil, nil)
}

// ParallelInsertAll merges every element of src into t using up to
// workers goroutines. The source is partitioned into contiguous key
// ranges with its own SplitPoints machinery, and each range is merged by
// a dedicated goroutine through a per-worker hint set — exactly the
// tree's native write-phase mode (concurrent hinted inserts under the
// optimistic locking scheme), which is what makes a multi-writer merge
// sound here even though InsertAll is single-writer.
//
// Phase discipline: src must be quiescent (no writers) and t must have
// no other writers or readers that assume single-writer merge; within
// the call, t takes concurrent inserts. The bulk-load fast path for an
// empty destination and the hinted sequential path for small inputs are
// retained; the final contents are the set union either way, so the
// result is independent of the worker count.
func (t *Tree) ParallelInsertAll(src *Tree, workers int) {
	if src.Empty() {
		return
	}
	if t.Empty() {
		obs.Inc(obs.MergeBulkLoads)
		t.bulkLoad(src)
		return
	}
	if workers <= 1 {
		obs.Inc(obs.MergeHinted)
		t.mergeRange(src, nil, nil)
		return
	}

	// Harvest up to workers-1 interior boundaries from src's upper levels;
	// fewer come back when src is small, shrinking the fan-out to match.
	bounds := src.SplitPoints(workers)
	if len(bounds) == 0 {
		obs.Inc(obs.MergeHinted)
		t.mergeRange(src, nil, nil)
		return
	}
	starts := make([]tuple.Tuple, 0, len(bounds)+1)
	ends := make([]tuple.Tuple, 0, len(bounds)+1)
	starts = append(starts, nil)
	for _, b := range bounds {
		ends = append(ends, b)
		starts = append(starts, b)
	}
	ends = append(ends, nil)

	obs.Inc(obs.MergeParallelRuns)
	obs.Add(obs.MergeParallelWorkers, uint64(len(starts)))
	var wg sync.WaitGroup
	for w := range starts {
		wg.Add(1)
		go func(from, to tuple.Tuple) {
			defer wg.Done()
			t.mergeRange(src, from, to)
		}(starts[w], ends[w])
	}
	wg.Wait()
}

// mergeRange inserts src's elements in [from, to) into t through a fresh
// hint set (nil from/to mean the start/end of src). The goroutine owns
// the hint set, so mergeRange may run concurrently with other mergeRange
// calls on the same destination.
func (t *Tree) mergeRange(src *Tree, from, to tuple.Tuple) {
	h := NewHints()
	defer h.FlushObs()
	buf := make(tuple.Tuple, t.arity)
	c := src.Begin()
	if from != nil {
		c = src.LowerBound(from)
	}
	for ; c.Valid(); c.Next() {
		if to != nil && c.Compare(to) >= 0 {
			return
		}
		c.CopyTo(buf)
		t.InsertHint(buf, h)
	}
}

// bulkLoad builds t (which must be empty) from the elements of src,
// producing a packed tree: full leaves with single separators between
// them, level by level. The staging buffer is one flat arena — a single
// backing array for all rows — so the load allocates per node, not per
// row.
func (t *Tree) bulkLoad(src *Tree) {
	flat := make([]uint64, 0, 1024*t.arity)
	buf := make(tuple.Tuple, t.arity)
	for c := src.Begin(); c.Valid(); c.Next() {
		c.CopyTo(buf)
		flat = append(flat, buf...)
	}
	t.buildPacked(flat)
}

// BuildFromSorted bulk-loads the tree from a strictly increasing sorted
// slice of tuples. The tree must be empty; the input must be duplicate
// free and sorted, which is the caller's responsibility (checked only by
// the test suite's invariant checker).
func (t *Tree) BuildFromSorted(sorted []tuple.Tuple) {
	if !t.Empty() {
		panic("core: BuildFromSorted on non-empty tree")
	}
	flat := make([]uint64, 0, len(sorted)*t.arity)
	for _, tp := range sorted {
		flat = append(flat, tp...)
	}
	t.buildPacked(flat)
}

// buildPacked constructs a packed B-tree from sorted rows — row i is
// flat[i*arity : (i+1)*arity] — and installs it as the tree's root.
// Single-writer. Rows are addressed by index into the flat arena
// throughout, so the build performs no per-row allocation.
func (t *Tree) buildPacked(flat []uint64) {
	arity := t.arity
	nRows := len(flat) / arity
	if nRows == 0 {
		return
	}
	row := func(i int) []uint64 { return flat[i*arity : (i+1)*arity] }
	c := t.capacity

	// Leaf level: runs of c elements, with the element between two runs
	// promoted as a separator (recorded as a row index).
	var children []*node
	var seps []int
	i := 0
	for i < nRows {
		remaining := nRows - i
		take := remaining
		if take > c {
			take = c
		}
		last := take == remaining
		if !last && remaining == take+1 {
			// A separator after a full leaf would leave no element for the
			// next leaf; shrink this leaf by one so the tail stays valid.
			take--
		}
		leaf := t.newNode(false)
		for j := 0; j < take; j++ {
			leaf.storeRow(j, arity, row(i+j))
		}
		leaf.count.Store(int32(take))
		children = append(children, leaf)
		i += take
		if !last {
			seps = append(seps, i)
			i++
		}
	}

	// Inner levels: each parent consumes s separators and s+1 children;
	// one further separator is promoted between consecutive parents.
	// Invariant per level: len(seps) == len(children)-1.
	for len(children) > 1 {
		var parents []*node
		var upSeps []int
		ci, si := 0, 0
		for ci < len(children) {
			remainingChildren := len(children) - ci
			s := c
			if s > remainingChildren-1 {
				s = remainingChildren - 1
			}
			// Never leave a single orphan child for the next parent.
			if rem := remainingChildren - (s + 1); rem == 1 {
				s--
			}
			inner := t.newNode(true)
			for j := 0; j < s; j++ {
				inner.storeRow(j, arity, row(seps[si+j]))
			}
			for j := 0; j <= s; j++ {
				ch := children[ci+j]
				inner.children[j].Store(ch)
				ch.parent.Store(inner)
				ch.pos.Store(int32(j))
			}
			inner.count.Store(int32(s))
			si += s
			ci += s + 1
			parents = append(parents, inner)
			if ci < len(children) {
				upSeps = append(upSeps, seps[si])
				si++
			}
		}
		children, seps = parents, upSeps
	}
	t.root.Store(children[0])
}
