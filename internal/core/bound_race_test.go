package core

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"specbtree/internal/tuple"
)

// boundRaceRound is one writer round of TestBoundContractUnderConcurrentInserts:
// a fresh tree receiving the ascending integers 0..watermark.
type boundRaceRound struct {
	tr        *Tree
	watermark atomic.Uint64 // highest k whose insert returned
}

// TestBoundContractUnderConcurrentInserts hammers LowerBound/UpperBound
// against a concurrent insert stream and asserts the bound contract on
// every returned cursor. It is the regression test for the
// load-after-validate race in boundHintCounted: the seed code read the
// leaf count *after* the lease validation, so an insert landing between
// the two could hand back a cursor at a count-shifted index.
//
// The workload is engineered so every contract check is exact even under
// full concurrency, with no false positives:
//
//   - A single writer inserts the ascending integers 0, 1, 2, ... Each
//     insert appends at the end of the rightmost leaf (no element ever
//     shifts), and splits only copy rows into fresh nodes, so every
//     (node, index) slot is written at most once. A cursor's element
//     therefore still holds its linearisation-time value whenever the
//     test reads it.
//   - Probing v = MaxUint64 must always return an invalid cursor — no
//     element >= v ever exists. The racy code returns a *valid* cursor
//     whenever an insert bumps the rightmost leaf's count between the
//     reader's validation and its count load, which is precisely the bug.
//     Readers spend their hot loop exclusively on this probe: the race
//     window is two adjacent loads, so hit probability is proportional to
//     probe frequency.
//   - Every 64 rounds of max-probes, readers also check that probing
//     v <= watermark (the highest value whose insert completed) returns
//     exactly v for LowerBound and v+1 for UpperBound, since every
//     integer up to the watermark is present; the in-leaf predecessor of
//     the result must be < v (<= v for UpperBound). A reader may hold a
//     tree one round behind the writer; that round is then frozen, so its
//     watermark contract still holds.
//
// Two mechanical details keep the failure probability high on a
// single-CPU host, where the bug only fires when a reader thread is
// preempted inside the two-load window:
//
//   - The writer works in rounds, restarting on a fresh tree every
//     roundInserts inserts for a fixed wall-clock budget. Empirically the
//     race fires almost exclusively while the tree is shallow (two
//     levels): descents are short, so bound probes are frequent and the
//     vulnerable window is a fat fraction of each probe. Rounds keep the
//     tree permanently in that regime instead of letting it grow deep.
//   - GOMAXPROCS is raised above the goroutine count and a pack of
//     short-sleep goroutines generates timer wakeups, so the kernel
//     timeslices reader and writer threads against each other at
//     arbitrary instructions.
func TestBoundContractUnderConcurrentInserts(t *testing.T) {
	subruns, budget := 5, 1600*time.Millisecond
	if testing.Short() {
		// Seed-sized smoke for the 1-CPU CI budget: one pack, a fraction of
		// the wall clock. The deterministic reproduction of this race lives
		// in the lockinject harness (internal/check TestRacyBoundDeterministic),
		// so short mode only needs to exercise the machinery, not win the
		// scheduling lottery.
		subruns, budget = 1, 350*time.Millisecond
	}
	if prev := runtime.GOMAXPROCS(0); prev < boundRaceReaders+boundRaceSleepers+2 {
		runtime.GOMAXPROCS(boundRaceReaders + boundRaceSleepers + 2)
		defer runtime.GOMAXPROCS(prev)
	}
	// Scheduling layout (thread creation order, timer phase, GC pacing) is
	// rolled once per goroutine pack and makes time-to-failure heavy-tailed
	// across packs; several short sub-runs with fresh packs de-correlate it.
	for i := 0; i < subruns && !t.Failed(); i++ {
		boundRaceScenario(t, budget)
	}
}

const (
	boundRaceReaders  = 6
	boundRaceSleepers = 3 // timer-wakeup preempters
)

// boundRaceScenario runs one writer/reader pack for the given wall-clock
// budget. Contract violations are reported through t.Errorf.
func boundRaceScenario(t *testing.T, budget time.Duration) {
	const (
		readers      = boundRaceReaders
		sleepers     = boundRaceSleepers
		roundInserts = 90_000 // keeps every round in the shallow-tree regime
	)

	var done atomic.Bool
	for i := 0; i < sleepers; i++ {
		go func() {
			for !done.Load() {
				time.Sleep(50 * time.Microsecond)
			}
		}()
	}
	// Each GC cycle's stop-the-world phases preempt every running thread
	// at an arbitrary instruction (Go's signal-based async preemption) and
	// reshuffle the run order afterwards — by far the highest-frequency
	// source of "reader frozen inside the two-load window while the writer
	// proceeds" schedules available on one CPU.
	go func() {
		for !done.Load() {
			runtime.GC()
		}
	}()

	// fail records a contract violation and releases every goroutine so a
	// failing run ends as soon as the race fires instead of draining the
	// remaining budget.
	fail := func(format string, args ...interface{}) {
		done.Store(true)
		t.Errorf(format, args...)
	}

	var cur atomic.Pointer[boundRaceRound]
	var rounds []*boundRaceRound // owned by the writer, read after Wait
	var counts []int
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		deadline := time.Now().Add(budget)
		for {
			r := &boundRaceRound{tr: New(1, Options{Capacity: 256})}
			rounds = append(rounds, r)
			cur.Store(r)
			h := NewHints()
			n := 0
			expired := false
			for ; n < roundInserts; n++ {
				r.tr.InsertHint(tuple.Tuple{uint64(n)}, h)
				r.watermark.Store(uint64(n))
				if n%512 == 511 && (done.Load() || time.Now().After(deadline)) {
					n++
					expired = true
					break
				}
			}
			counts = append(counts, n)
			if expired {
				return
			}
		}
	}()

	probeMax := tuple.Tuple{math.MaxUint64}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			buf := make(tuple.Tuple, 1)
			pred := make(tuple.Tuple, 1)
			for !done.Load() {
				rd := cur.Load()
				if rd == nil {
					continue
				}
				tr := rd.tr
				// No element >= MaxUint64 is ever inserted, so both bound
				// queries must come back invalid, always. This is the probe
				// that trips the load-after-validate race, so it gets the
				// tightest loop the test can manage.
				for i := 0; i < 64; i++ {
					if c := tr.LowerBound(probeMax); c.Valid() {
						c.CopyTo(buf)
						fail("LowerBound(max) returned a cursor at %d; want end", buf[0])
						return
					}
					if c := tr.UpperBound(probeMax); c.Valid() {
						c.CopyTo(buf)
						fail("UpperBound(max) returned a cursor at %d; want end", buf[0])
						return
					}
				}

				w := rd.watermark.Load()
				if w < 16 {
					continue
				}
				v := rng.Uint64() % w // v < w, so v and v+1 are both present
				probe := tuple.Tuple{v}

				c := tr.LowerBound(probe)
				if !c.Valid() {
					fail("LowerBound(%d) invalid with watermark %d", v, w)
					return
				}
				c.CopyTo(buf)
				if buf[0] != v {
					fail("LowerBound(%d) = %d; want %d (watermark %d)", v, buf[0], v, w)
					return
				}
				if c.idx > 0 {
					c.n.loadRow(c.idx-1, 1, pred)
					if pred[0] >= v {
						fail("LowerBound(%d): in-leaf predecessor %d >= probe", v, pred[0])
						return
					}
				}

				c = tr.UpperBound(probe)
				if !c.Valid() {
					fail("UpperBound(%d) invalid with watermark %d", v, w)
					return
				}
				c.CopyTo(buf)
				if buf[0] != v+1 {
					fail("UpperBound(%d) = %d; want %d (watermark %d)", v, buf[0], v+1, w)
					return
				}
				if c.idx > 0 {
					c.n.loadRow(c.idx-1, 1, pred)
					if pred[0] > v {
						fail("UpperBound(%d): in-leaf predecessor %d > probe", v, pred[0])
						return
					}
				}
			}
		}(int64(r) + 1)
	}
	wg.Wait()

	for i, r := range rounds {
		if err := r.tr.Check(); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if got := r.tr.Len(); got != counts[i] {
			t.Fatalf("round %d: Len = %d, want %d", i, got, counts[i])
		}
	}
}
