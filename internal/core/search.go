package core

import (
	"fmt"

	"specbtree/internal/obs"
	"specbtree/internal/tuple"
)

// Contains reports whether v is in the set. Hint-less form of ContainsHint.
func (t *Tree) Contains(v tuple.Tuple) bool { return t.ContainsHint(v, nil) }

// ContainsHint reports whether v is in the set, consulting and updating
// the caller's find hint. Safe to run concurrently with insertions: the
// descent takes optimistic read leases and restarts on conflict, and —
// like every read path of the optimistic scheme — performs no stores, so
// it causes no cache-line invalidation. One in obs.SamplePeriod
// operations is timed into "hist.op.contains.ns".
func (t *Tree) ContainsHint(v tuple.Tuple, h *Hints) bool {
	if h != nil {
		oc := h.obs.Counts()
		var start int64
		if h.obs.SampleOp() {
			start = obs.Clock()
		}
		found := t.containsHint(v, h, oc)
		if start != 0 {
			oc.Observe(obs.HistContainsNanos, uint64(obs.Clock()-start))
		}
		h.obs.EndOp()
		return found
	}
	var oc obs.OpCounts
	start := obs.SampleClock()
	found := t.containsHint(v, nil, &oc)
	if start != 0 {
		oc.Observe(obs.HistContainsNanos, uint64(obs.Clock()-start))
	}
	oc.Flush()
	return found
}

func (t *Tree) containsHint(v tuple.Tuple, h *Hints, oc *obs.OpCounts) bool {
	if len(v) != t.arity {
		panic(fmt.Sprintf("core: querying arity-%d tuple in arity-%d tree", len(v), t.arity))
	}

	// A cold hint counts as a miss, so hits plus misses always equals the
	// number of hinted operations.
	if h != nil {
		if leaf := h.findLeaf; leaf != nil {
			ls := leaf.lock.StartRead()
			_, found, covered := t.probeLeaf(leaf, v)
			if valid(&leaf.lock, ls, oc) && covered {
				h.Stats.FindHits++
				oc.Inc(obs.HintFindHits)
				return found
			}
			h.Stats.FindMisses++
			oc.Inc(obs.HintFindMisses)
		} else {
			h.Stats.FindMisses++
			oc.Inc(obs.HintFindMisses)
		}
	}

restart:
	for attempt := 0; ; attempt++ {
		oc.Inc(obs.TreeDescents)
		if attempt > 0 {
			oc.Inc(obs.TreeRestarts)
		}
		cur, curLease, ok := t.readRoot(oc)
		if !ok {
			return false
		}
		for {
			idx, found := cur.search(t.arity, v)
			if found {
				if valid(&cur.lock, curLease, oc) {
					if h != nil && !cur.inner {
						h.findLeaf = cur
					}
					oc.Observe(obs.HistRestartsPerOp, uint64(attempt))
					return true
				}
				continue restart
			}
			if !cur.inner {
				if !valid(&cur.lock, curLease, oc) {
					continue restart
				}
				if h != nil {
					h.findLeaf = cur
				}
				oc.Observe(obs.HistRestartsPerOp, uint64(attempt))
				return false
			}
			next := cur.child(idx)
			if !valid(&cur.lock, curLease, oc) {
				continue restart
			}
			nextLease := next.lock.StartRead()
			if !valid(&cur.lock, curLease, oc) {
				continue restart
			}
			cur, curLease = next, nextLease
		}
	}
}

// readRoot obtains the root node and an initial read lease on it, under
// the root-pointer seqlock (Alg. 1 lines 13-17). ok is false if the tree
// has no root yet.
func (t *Tree) readRoot(oc *obs.OpCounts) (*node, lease, bool) {
	for {
		rootLease := t.rootLock.StartRead()
		cur := t.root.Load()
		if cur == nil {
			if valid(&t.rootLock, rootLease, oc) {
				return nil, lease{}, false
			}
			continue
		}
		curLease := cur.lock.StartRead()
		if valid(&t.rootLock, rootLease, oc) {
			return cur, curLease, true
		}
	}
}

// searchBound returns the index of the first element of n that is greater
// than v (strict) or greater-or-equal to v (non-strict). Reads are atomic
// and must be validated by the caller's lease.
func (n *node) searchBound(arity int, v []uint64, strict bool) int {
	cnt := int(n.count.Load())
	if cnt < 0 {
		cnt = 0
	}
	if max := len(n.keys) / arity; cnt > max {
		cnt = max
	}
	want := 0 // first element with cmp >= want is the bound
	if strict {
		want = 1
	}
	if cnt <= linearSearchThreshold {
		for i := 0; i < cnt; i++ {
			if n.cmpRow(i, arity, v) >= want {
				return i
			}
		}
		return cnt
	}
	lo, hi := 0, cnt
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if n.cmpRow(mid, arity, v) >= want {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// LowerBound returns a cursor at the first element >= v, or an invalid
// cursor if no such element exists. Hint-less form of LowerBoundHint.
func (t *Tree) LowerBound(v tuple.Tuple) Cursor { return t.boundHint(v, false, nil) }

// LowerBoundHint is LowerBound with operation hints.
func (t *Tree) LowerBoundHint(v tuple.Tuple, h *Hints) Cursor { return t.boundHint(v, false, h) }

// UpperBound returns a cursor at the first element > v, or an invalid
// cursor if no such element exists. Hint-less form of UpperBoundHint.
func (t *Tree) UpperBound(v tuple.Tuple) Cursor { return t.boundHint(v, true, nil) }

// UpperBoundHint is UpperBound with operation hints.
func (t *Tree) UpperBoundHint(v tuple.Tuple, h *Hints) Cursor { return t.boundHint(v, true, h) }

// boundHint dispatches a bound query through the per-goroutine counter
// batch of h (when non-nil) or a stack batch flushed at operation exit.
// One in obs.SamplePeriod operations is timed into "hist.op.lower_bound
// .ns" or "hist.op.upper_bound.ns" by operation class.
func (t *Tree) boundHint(v tuple.Tuple, strict bool, h *Hints) Cursor {
	hist := obs.HistLowerNanos
	if strict {
		hist = obs.HistUpperNanos
	}
	if h != nil {
		oc := h.obs.Counts()
		var start int64
		if h.obs.SampleOp() {
			start = obs.Clock()
		}
		c := t.boundHintCounted(v, strict, h, oc)
		if start != 0 {
			oc.Observe(hist, uint64(obs.Clock()-start))
		}
		h.obs.EndOp()
		return c
	}
	var oc obs.OpCounts
	start := obs.SampleClock()
	c := t.boundHintCounted(v, strict, nil, &oc)
	if start != 0 {
		oc.Observe(hist, uint64(obs.Clock()-start))
	}
	oc.Flush()
	return c
}

// boundHintCounted locates the first element > v (strict) or >= v
// (non-strict), tracking the best candidate seen on the descent. The
// candidate node's lease is validated at the end; any conflict restarts
// the operation.
func (t *Tree) boundHintCounted(v tuple.Tuple, strict bool, h *Hints, oc *obs.OpCounts) Cursor {
	if len(v) != t.arity {
		panic(fmt.Sprintf("core: querying arity-%d tuple in arity-%d tree", len(v), t.arity))
	}

	// A cold hint counts as a miss, so hits plus misses always equals the
	// number of hinted operations.
	if h != nil {
		leaf := h.lowerLeaf
		hits, misses := &h.Stats.LowerHits, &h.Stats.LowerMisses
		hitC, missC := obs.HintLowerHits, obs.HintLowerMisses
		if strict {
			leaf = h.upperLeaf
			hits, misses = &h.Stats.UpperHits, &h.Stats.UpperMisses
			hitC, missC = obs.HintUpperHits, obs.HintUpperMisses
		}
		if leaf != nil {
			if c, ok := t.boundFromHint(leaf, v, strict, oc); ok {
				*hits++
				oc.Inc(hitC)
				return c
			}
			*misses++
			oc.Inc(missC)
		} else {
			*misses++
			oc.Inc(missC)
		}
	}

restart:
	for attempt := 0; ; attempt++ {
		oc.Inc(obs.TreeDescents)
		if attempt > 0 {
			oc.Inc(obs.TreeRestarts)
		}
		cur, curLease, ok := t.readRoot(oc)
		if !ok {
			return Cursor{}
		}
		candidate := Cursor{}
		var candLease lease
		var candNode *node
		for {
			idx := cur.searchBound(t.arity, v, strict)
			if !cur.inner {
				// Capture the leaf count BEFORE validating the lease
				// (mirroring boundFromHint): every word that contributes to
				// the returned cursor must be covered by the validation. A
				// count loaded after a successful valid() could already
				// reflect a racing insert that shifted elements, yielding a
				// cursor at idx whose element no longer satisfies the bound
				// contract.
				cnt := int(cur.count.Load())
				if !valid(&cur.lock, curLease, oc) {
					continue restart
				}
				var res Cursor
				if idx < cnt {
					res = Cursor{t: t, n: cur, idx: idx}
				} else {
					res = candidate
					if candNode != nil && !valid(&candNode.lock, candLease, oc) {
						continue restart
					}
				}
				if h != nil {
					if strict {
						h.upperLeaf = cur
					} else {
						h.lowerLeaf = cur
					}
				}
				return res
			}
			if idx < int(cur.count.Load()) {
				candidate = Cursor{t: t, n: cur, idx: idx}
				candNode, candLease = cur, curLease
			}
			next := cur.child(idx)
			if !valid(&cur.lock, curLease, oc) {
				continue restart
			}
			nextLease := next.lock.StartRead()
			if !valid(&cur.lock, curLease, oc) {
				continue restart
			}
			cur, curLease = next, nextLease
		}
	}
}

// boundFromHint answers a bound query directly from a hinted leaf if the
// leaf provably contains the answer: first <= v <= last for lower bounds,
// first <= v < last for upper bounds (strict on the right so the answer
// cannot be in a successor node). All under a validated read lease.
func (t *Tree) boundFromHint(leaf *node, v tuple.Tuple, strict bool, oc *obs.OpCounts) (Cursor, bool) {
	ls := leaf.lock.StartRead()
	// A retired leaf keeps validating (its version word never moves again)
	// but its copy-on-write clone may hold newer elements, so a hinted
	// answer from it could miss tuples — treat it as a hint miss.
	if leaf.inner || leaf.retired.Load() {
		return Cursor{}, false
	}
	cnt := int(leaf.count.Load())
	if cnt <= 0 || cnt > t.capacity {
		return Cursor{}, false
	}
	if leaf.cmpRow(0, t.arity, v) > 0 {
		return Cursor{}, false
	}
	lastCmp := leaf.cmpRow(cnt-1, t.arity, v)
	if lastCmp < 0 || (strict && lastCmp == 0) {
		return Cursor{}, false
	}
	idx := leaf.searchBound(t.arity, v, strict)
	if !valid(&leaf.lock, ls, oc) || idx >= cnt {
		return Cursor{}, false
	}
	return Cursor{t: t, n: leaf, idx: idx}, true
}
