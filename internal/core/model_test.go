package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"specbtree/internal/tuple"
)

// model is a reference implementation backed by a sorted slice.
type model struct {
	arity int
	rows  []tuple.Tuple
}

func (m *model) find(v tuple.Tuple) (int, bool) {
	idx := sort.Search(len(m.rows), func(i int) bool { return tuple.Compare(m.rows[i], v) >= 0 })
	return idx, idx < len(m.rows) && tuple.Equal(m.rows[idx], v)
}

func (m *model) insert(v tuple.Tuple) bool {
	idx, found := m.find(v)
	if found {
		return false
	}
	m.rows = append(m.rows, nil)
	copy(m.rows[idx+1:], m.rows[idx:])
	m.rows[idx] = v.Clone()
	return true
}

func (m *model) lower(v tuple.Tuple) tuple.Tuple {
	idx, _ := m.find(v)
	if idx == len(m.rows) {
		return nil
	}
	return m.rows[idx]
}

func (m *model) upper(v tuple.Tuple) tuple.Tuple {
	idx := sort.Search(len(m.rows), func(i int) bool { return tuple.Compare(m.rows[i], v) > 0 })
	if idx == len(m.rows) {
		return nil
	}
	return m.rows[idx]
}

// TestRandomOpSequenceAgainstModel drives the tree and the model with the
// same random operation stream — hinted and unhinted interleaved — and
// requires identical observable behaviour at every step.
func TestRandomOpSequenceAgainstModel(t *testing.T) {
	for _, capacity := range []int{3, 5, 16} {
		rng := rand.New(rand.NewSource(int64(900 + capacity)))
		tr := New(2, Options{Capacity: capacity})
		m := &model{arity: 2}
		h := NewHints()
		steps := 8000
		if testing.Short() {
			steps = 1500
		}
		for step := 0; step < steps; step++ {
			v := tuple.Tuple{uint64(rng.Intn(64)), uint64(rng.Intn(64))}
			switch rng.Intn(6) {
			case 0:
				if got, want := tr.Insert(v), m.insert(v); got != want {
					t.Fatalf("cap %d step %d: Insert(%v) = %v, want %v", capacity, step, v, got, want)
				}
			case 1:
				if got, want := tr.InsertHint(v, h), m.insert(v); got != want {
					t.Fatalf("cap %d step %d: InsertHint(%v) = %v, want %v", capacity, step, v, got, want)
				}
			case 2:
				_, want := m.find(v)
				if got := tr.Contains(v); got != want {
					t.Fatalf("cap %d step %d: Contains(%v) = %v, want %v", capacity, step, v, got, want)
				}
				if got := tr.ContainsHint(v, h); got != want {
					t.Fatalf("cap %d step %d: ContainsHint(%v) = %v, want %v", capacity, step, v, got, want)
				}
			case 3:
				want := m.lower(v)
				for _, c := range []Cursor{tr.LowerBound(v), tr.LowerBoundHint(v, h)} {
					if want == nil {
						if c.Valid() {
							t.Fatalf("cap %d step %d: LowerBound(%v) = %v, want end", capacity, step, v, c.Tuple())
						}
					} else if !c.Valid() || !tuple.Equal(c.Tuple(), want) {
						t.Fatalf("cap %d step %d: LowerBound(%v) wrong", capacity, step, v)
					}
				}
			case 4:
				want := m.upper(v)
				for _, c := range []Cursor{tr.UpperBound(v), tr.UpperBoundHint(v, h)} {
					if want == nil {
						if c.Valid() {
							t.Fatalf("cap %d step %d: UpperBound(%v) = %v, want end", capacity, step, v, c.Tuple())
						}
					} else if !c.Valid() || !tuple.Equal(c.Tuple(), want) {
						t.Fatalf("cap %d step %d: UpperBound(%v) wrong", capacity, step, v)
					}
				}
			case 5:
				// Range scan between v and a second point.
				w := tuple.Tuple{uint64(rng.Intn(64)), uint64(rng.Intn(64))}
				if tuple.Compare(v, w) > 0 {
					v, w = w, v
				}
				var got []tuple.Tuple
				tr.Range(v, w, func(x tuple.Tuple) bool {
					got = append(got, x.Clone())
					return true
				})
				var want []tuple.Tuple
				for _, r := range m.rows {
					if tuple.Compare(r, v) >= 0 && tuple.Compare(r, w) < 0 {
						want = append(want, r)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("cap %d step %d: Range yields %d, want %d", capacity, step, len(got), len(want))
				}
				for i := range want {
					if !tuple.Equal(got[i], want[i]) {
						t.Fatalf("cap %d step %d: Range[%d] mismatch", capacity, step, i)
					}
				}
			}
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("cap %d: %v", capacity, err)
		}
		if tr.Len() != len(m.rows) {
			t.Fatalf("cap %d: Len %d, model %d", capacity, tr.Len(), len(m.rows))
		}
	}
}

// TestQuickInsertSetSemantics: for arbitrary input slices, the tree holds
// exactly the distinct tuples, in sorted order.
func TestQuickInsertSetSemantics(t *testing.T) {
	f := func(raw []uint16) bool {
		tr := New(1, Options{Capacity: 4})
		distinct := map[uint64]bool{}
		for _, r := range raw {
			v := uint64(r % 512)
			tr.Insert(tuple.Tuple{v})
			distinct[v] = true
		}
		if tr.Check() != nil || tr.Len() != len(distinct) {
			return false
		}
		prev := int64(-1)
		ok := true
		tr.All(func(x tuple.Tuple) bool {
			if int64(x[0]) <= prev || !distinct[x[0]] {
				ok = false
				return false
			}
			prev = int64(x[0])
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCursorWalkMatchesSortedModel: walking from every lower bound to
// the end visits exactly the model's suffix.
func TestQuickCursorWalkMatchesSortedModel(t *testing.T) {
	tr := New(1, Options{Capacity: 3})
	var rows []uint64
	rng := rand.New(rand.NewSource(4242))
	for i := 0; i < 500; i++ {
		v := uint64(rng.Intn(2000))
		if tr.Insert(tuple.Tuple{v}) {
			rows = append(rows, v)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	f := func(probe uint16) bool {
		v := uint64(probe % 2100)
		start := sort.Search(len(rows), func(i int) bool { return rows[i] >= v })
		i := start
		for c := tr.LowerBound(tuple.Tuple{v}); c.Valid(); c.Next() {
			if i >= len(rows) || c.Tuple()[0] != rows[i] {
				return false
			}
			i++
		}
		return i == len(rows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCursorSeqEarlyStopAndEnd exercises Cursor.Seq edge cases.
func TestCursorSeqEarlyStopAndEnd(t *testing.T) {
	tr := New(1)
	var end Cursor
	end.Seq(func(tuple.Tuple) bool {
		t.Error("end cursor yielded")
		return true
	})
	for i := 0; i < 100; i++ {
		tr.Insert(tuple.Tuple{uint64(i)})
	}
	n := 0
	tr.Begin().Seq(func(x tuple.Tuple) bool {
		if x[0] != uint64(n) {
			t.Fatalf("Seq[%d] = %v", n, x)
		}
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("Seq visited %d", n)
	}
	// Seq from a bound to the natural end.
	n = 0
	tr.LowerBound(tuple.Tuple{90}).Seq(func(tuple.Tuple) bool {
		n++
		return true
	})
	if n != 10 {
		t.Fatalf("Seq tail visited %d", n)
	}
}

// TestConcurrentSplitStorm hammers a tiny-capacity tree (splits on nearly
// every insert) from many goroutines with adjacent keys, maximising
// bottom-up lock-path contention.
func TestConcurrentSplitStorm(t *testing.T) {
	tr := New(1, Options{Capacity: 3})
	const workers = 10
	per := 2000
	if testing.Short() {
		per = 300
	}
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			h := NewHints()
			for i := 0; i < per; i++ {
				// Interleaved keys: all workers split the same region.
				tr.InsertHint(tuple.Tuple{uint64(i*workers + w)}, h)
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", tr.Len(), workers*per)
	}
}
