package core

import (
	"testing"

	"specbtree/internal/tuple"
)

func TestSplitPointsCoverAndOrder(t *testing.T) {
	tr := New(2, Options{Capacity: 4})
	const n = 5000
	for i := 0; i < n; i++ {
		tr.Insert(tuple.Tuple{uint64(i % 100), uint64(i / 100)})
	}
	for _, parts := range []int{1, 2, 3, 7, 16, 64} {
		points := tr.SplitPoints(parts)
		if parts == 1 && points != nil {
			t.Fatal("1 partition needs no split points")
		}
		if len(points) > parts-1 && parts > 1 {
			t.Fatalf("parts=%d: %d split points", parts, len(points))
		}
		for i := 1; i < len(points); i++ {
			if tuple.Compare(points[i-1], points[i]) >= 0 {
				t.Fatalf("parts=%d: split points not strictly increasing", parts)
			}
		}
		// Scanning the ranges back-to-back reproduces the full scan.
		var starts, ends []tuple.Tuple
		starts = append(starts, nil)
		for _, p := range points {
			ends = append(ends, p)
			starts = append(starts, p)
		}
		ends = append(ends, nil)
		var got []tuple.Tuple
		for ri := range starts {
			c := tr.Begin()
			if starts[ri] != nil {
				c = tr.LowerBound(starts[ri])
			}
			for ; c.Valid(); c.Next() {
				if ends[ri] != nil && c.Compare(ends[ri]) >= 0 {
					break
				}
				got = append(got, c.Tuple())
			}
		}
		want := collect(tr)
		if len(got) != len(want) {
			t.Fatalf("parts=%d: ranges cover %d of %d elements", parts, len(got), len(want))
		}
		for i := range want {
			if !tuple.Equal(got[i], want[i]) {
				t.Fatalf("parts=%d: element %d = %v, want %v", parts, i, got[i], want[i])
			}
		}
	}
}

func TestSplitPointsSmallTrees(t *testing.T) {
	tr := New(1)
	if pts := tr.SplitPoints(8); pts != nil {
		t.Error("empty tree produced split points")
	}
	tr.Insert(tuple.Tuple{5})
	pts := tr.SplitPoints(8)
	if len(pts) > 1 {
		t.Errorf("single-element tree produced %d split points", len(pts))
	}
}

func TestSplitRangeClipping(t *testing.T) {
	tr := New(1, Options{Capacity: 4})
	for i := 0; i < 1000; i++ {
		tr.Insert(tuple.Tuple{uint64(i)})
	}
	from, to := tuple.Tuple{200}, tuple.Tuple{300}
	bounds := tr.SplitRange(from, to, 8)
	for _, b := range bounds {
		if tuple.Compare(b, from) <= 0 || tuple.Compare(b, to) >= 0 {
			t.Fatalf("bound %v outside (%v, %v)", b, from, to)
		}
	}
	// Nil ends clip nothing.
	open := tr.SplitRange(nil, nil, 8)
	if len(open) == 0 {
		t.Error("open range should produce split points on a large tree")
	}
}

func TestSplitPointsBigFanout(t *testing.T) {
	// More requested partitions than elements.
	tr := New(1)
	for i := 0; i < 10; i++ {
		tr.Insert(tuple.Tuple{uint64(i)})
	}
	pts := tr.SplitPoints(100)
	for i := 1; i < len(pts); i++ {
		if tuple.Compare(pts[i-1], pts[i]) >= 0 {
			t.Fatal("split points not strictly increasing")
		}
	}
}
