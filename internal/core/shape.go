package core

// Shape describes the physical structure of a tree at a point in time:
// its depth, and per level the node count, element count and fill
// factor. It is produced by (*Tree).Shape, a read-only walker that — like
// every read path of the tree — takes optimistic leases and writes no
// shared memory, so it can run against live writers without perturbing
// them. Under concurrent insertion the numbers are a best-effort
// snapshot (per-node leases, bounded retries), not a serialisable view;
// with no writers active they are exact.
type Shape struct {
	// Arity is the number of columns of the stored tuples.
	Arity int `json:"arity"`
	// Capacity is the per-node element capacity.
	Capacity int `json:"capacity"`
	// Depth is the number of levels; 0 for an empty tree.
	Depth int `json:"depth"`
	// Nodes is the total node count across all levels.
	Nodes int `json:"nodes"`
	// LeafNodes and InnerNodes split Nodes by kind; the deepest level
	// holds the leaves, every level above it holds inner nodes.
	LeafNodes  int `json:"leaf_nodes"`
	InnerNodes int `json:"inner_nodes"`
	// Elements is the total element count across all levels.
	Elements int `json:"elements"`
	// Fill is Elements divided by total element slots, 0 for an empty
	// tree.
	Fill float64 `json:"fill"`
	// Levels lists the per-level breakdown, root first.
	Levels []LevelShape `json:"levels,omitempty"`
}

// LevelShape is one level of a Shape. Level 0 is the root; the deepest
// level holds the leaves.
type LevelShape struct {
	// Level is the distance from the root.
	Level int `json:"level"`
	// Nodes is the number of nodes on this level.
	Nodes int `json:"nodes"`
	// Elements is the number of elements stored on this level.
	Elements int `json:"elements"`
	// Fill is Elements divided by the level's element slots.
	Fill float64 `json:"fill"`
}

// shapeMaxRetries bounds per-node lease retries in the shape walker.
// A node whose lease keeps failing under heavy write traffic is reported
// from its last (possibly torn, but clamped) reading rather than
// stalling the walk; torn counts cannot fault because every index is
// clamped to the node's slot range.
const shapeMaxRetries = 8

// Shape walks the tree and reports its physical structure. Safe to run
// concurrently with writers: the walk takes per-node optimistic read
// leases, performs only atomic loads, and writes nothing shared. Child
// pointers read under a stale lease are stale but never dangling (nodes
// are never deleted or relocated), so the walk always terminates on a
// node that was part of the tree at some point.
func (t *Tree) Shape() Shape {
	s := Shape{Arity: t.arity, Capacity: t.capacity}
	root := t.root.Load()
	if root == nil {
		return s
	}
	t.shapeWalk(root, 0, &s)
	s.Depth = len(s.Levels)
	for i := range s.Levels {
		lv := &s.Levels[i]
		if slots := lv.Nodes * t.capacity; slots > 0 {
			lv.Fill = float64(lv.Elements) / float64(slots)
		}
		s.Nodes += lv.Nodes
		s.Elements += lv.Elements
	}
	if slots := s.Nodes * t.capacity; slots > 0 {
		s.Fill = float64(s.Elements) / float64(slots)
	}
	if s.Depth > 0 {
		s.LeafNodes = s.Levels[s.Depth-1].Nodes
		s.InnerNodes = s.Nodes - s.LeafNodes
	}
	return s
}

// shapeWalk snapshots one node under a lease and recurses into the
// children captured by that snapshot.
func (t *Tree) shapeWalk(n *node, depth int, s *Shape) {
	var cnt int
	var kids []*node
	for attempt := 0; ; attempt++ {
		ls := n.lock.StartRead()
		cnt = int(n.count.Load())
		if cnt < 0 {
			cnt = 0
		}
		if cnt > t.capacity {
			cnt = t.capacity
		}
		if n.inner {
			kids = kids[:0]
			for i := 0; i <= cnt && i < len(n.children); i++ {
				if c := n.children[i].Load(); c != nil {
					kids = append(kids, c)
				}
			}
		}
		if n.lock.EndRead(ls) || attempt >= shapeMaxRetries {
			break
		}
	}
	for len(s.Levels) <= depth {
		s.Levels = append(s.Levels, LevelShape{Level: len(s.Levels)})
	}
	lv := &s.Levels[depth]
	lv.Nodes++
	lv.Elements += cnt
	for _, c := range kids {
		t.shapeWalk(c, depth+1, s)
	}
}
