package core

import (
	"math/rand"
	"testing"

	"specbtree/internal/tuple"
)

func TestHintedInsertCorrectness(t *testing.T) {
	tr := New(2, Options{Capacity: 4})
	h := NewHints()
	model := map[[2]uint64]bool{}
	rng := rand.New(rand.NewSource(3))
	// Mixture of runs of nearby values (hint-friendly) and jumps.
	cur := [2]uint64{500, 500}
	for i := 0; i < 6000; i++ {
		if rng.Intn(10) == 0 {
			cur = [2]uint64{uint64(rng.Intn(1000)), uint64(rng.Intn(1000))}
		} else {
			cur[1] = uint64(rng.Intn(1000))
		}
		tp := tuple.Tuple{cur[0], cur[1]}
		fresh := tr.InsertHint(tp, h)
		if fresh == model[cur] {
			t.Fatalf("hinted insert %v returned %v, model %v", tp, fresh, model[cur])
		}
		model[cur] = true
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", tr.Len(), len(model))
	}
	if h.Stats.InsertHits == 0 {
		t.Error("expected some insert hint hits on clustered workload")
	}
}

func TestHintedContainsCorrectness(t *testing.T) {
	tr := New(2, Options{Capacity: 8})
	for i := 0; i < 2000; i++ {
		tr.Insert(tuple.Tuple{uint64(i / 40), uint64((i % 40) * 2)})
	}
	h := NewHints()
	for i := 0; i < 2000; i++ {
		tp := tuple.Tuple{uint64(i / 40), uint64((i % 40) * 2)}
		if !tr.ContainsHint(tp, h) {
			t.Fatalf("%v missing under hinted lookup", tp)
		}
		absent := tuple.Tuple{uint64(i / 40), uint64((i%40)*2 + 1)}
		if tr.ContainsHint(absent, h) {
			t.Fatalf("%v present under hinted lookup", absent)
		}
	}
	if h.Stats.FindHits == 0 {
		t.Error("ordered lookups should hit the find hint")
	}
	// The paper reports up to 6x speedups from ~always hitting; on a fully
	// ordered probe sequence the hit rate should be high.
	rate := h.Stats.HitRate()
	if rate < 0.5 {
		t.Errorf("hint hit rate %.2f too low for ordered probes", rate)
	}
}

func TestHintedBoundsMatchUnhinted(t *testing.T) {
	tr := New(2, Options{Capacity: 6})
	ts := randTuples(3000, 2, 80, 17)
	for _, tp := range ts {
		tr.Insert(tp)
	}
	h := NewHints()
	probes := randTuples(2000, 2, 82, 18)
	// Sort probes to make hints effective, then verify against unhinted.
	for _, p := range probes {
		lb := tr.LowerBound(p)
		lbh := tr.LowerBoundHint(p, h)
		if !lb.Equal(lbh) {
			t.Fatalf("LowerBoundHint(%v) diverges from LowerBound", p)
		}
		ub := tr.UpperBound(p)
		ubh := tr.UpperBoundHint(p, h)
		if !ub.Equal(ubh) {
			t.Fatalf("UpperBoundHint(%v) diverges from UpperBound", p)
		}
	}
}

func TestHintHitRateOrderedBounds(t *testing.T) {
	tr := New(1, Options{Capacity: 16})
	for i := 0; i < 10000; i++ {
		tr.Insert(tuple.Tuple{uint64(i)})
	}
	h := NewHints()
	for i := 0; i < 9999; i++ {
		c := tr.LowerBoundHint(tuple.Tuple{uint64(i)}, h)
		if !c.Valid() || c.Tuple()[0] != uint64(i) {
			t.Fatalf("hinted lower bound at %d wrong", i)
		}
	}
	// Probes equal to separator elements (stored in inner nodes) always
	// miss a leaf hint, so the ceiling is below 1 even for ordered probes.
	if h.Stats.HitRate() < 0.7 {
		t.Errorf("ordered bound probes hit rate %.2f, expected high locality", h.Stats.HitRate())
	}
}

func TestHintsSurviveSplits(t *testing.T) {
	// Keep inserting right where the hint points so splits constantly
	// invalidate coverage; results must stay correct.
	tr := New(1, Options{Capacity: 3})
	h := NewHints()
	for i := 0; i < 3000; i++ {
		if !tr.InsertHint(tuple.Tuple{uint64(i)}, h) {
			t.Fatalf("insert %d reported duplicate", i)
		}
		// Every insert also re-probes an older element through the hint.
		if i > 10 && !tr.ContainsHint(tuple.Tuple{uint64(i - 10)}, h) {
			t.Fatalf("element %d lost after splits", i-10)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestHintReset(t *testing.T) {
	tr := New(1)
	h := NewHints()
	tr.InsertHint(tuple.Tuple{1}, h)
	tr.InsertHint(tuple.Tuple{2}, h)
	hits := h.Stats.InsertHits
	h.Reset()
	if h.insertLeaf != nil || h.findLeaf != nil || h.lowerLeaf != nil || h.upperLeaf != nil {
		t.Error("Reset left cached leaves")
	}
	if h.Stats.InsertHits != hits {
		t.Error("Reset cleared statistics")
	}
}

func TestHintStatsAggregate(t *testing.T) {
	a := HintStats{InsertHits: 1, FindMisses: 2, UpperHits: 3}
	b := HintStats{InsertHits: 10, FindMisses: 20, LowerHits: 5}
	a.Add(b)
	if a.InsertHits != 11 || a.FindMisses != 22 || a.LowerHits != 5 || a.UpperHits != 3 {
		t.Errorf("Add produced %+v", a)
	}
	if a.Hits() != 11+5+3 || a.Misses() != 22 {
		t.Error("Hits/Misses totals wrong")
	}
	var empty HintStats
	if empty.HitRate() != 0 {
		t.Error("empty hit rate should be 0")
	}
}

func TestPaperHintExample(t *testing.T) {
	// The paper's §3.2 example: consecutive inserts (7,10) then (7,4) are
	// lexicographically close; the second should reuse the first's leaf.
	tr := New(2)
	h := NewHints()
	// Pre-populate so the tree has more than one leaf.
	for i := uint64(0); i < 200; i++ {
		tr.Insert(tuple.Tuple{i, i})
	}
	tr.InsertHint(tuple.Tuple{7, 10}, h)
	before := h.Stats.InsertHits
	tr.InsertHint(tuple.Tuple{7, 4}, h)
	if h.Stats.InsertHits != before+1 {
		t.Errorf("second insert of the paper example missed the hint (hits %d -> %d)",
			before, h.Stats.InsertHits)
	}
	if !tr.Contains(tuple.Tuple{7, 4}) || !tr.Contains(tuple.Tuple{7, 10}) {
		t.Error("example tuples missing")
	}
}
