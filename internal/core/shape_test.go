package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"specbtree/internal/tuple"
)

// TestShapeEmpty checks the zero-value shape of an empty tree.
func TestShapeEmpty(t *testing.T) {
	tr := New(2)
	s := tr.Shape()
	if s.Depth != 0 || s.Nodes != 0 || s.Elements != 0 || len(s.Levels) != 0 {
		t.Fatalf("empty tree shape = %+v, want all-zero", s)
	}
	if s.Arity != 2 || s.Capacity != DefaultCapacity {
		t.Fatalf("shape arity/capacity = %d/%d, want 2/%d", s.Arity, s.Capacity, DefaultCapacity)
	}
}

// TestShapeSequential builds a quiescent tree and checks that the walker
// reports exact totals and internally consistent levels.
func TestShapeSequential(t *testing.T) {
	tr := New(1, Options{Capacity: 4})
	const n = 10_000
	for i := 0; i < n; i++ {
		tr.Insert(tuple.Tuple{uint64(i)})
	}
	s := tr.Shape()
	if s.Elements != n {
		t.Fatalf("Shape.Elements = %d, want %d", s.Elements, n)
	}
	if s.Elements != tr.Len() {
		t.Fatalf("Shape.Elements = %d, Len = %d", s.Elements, tr.Len())
	}
	if s.Depth != len(s.Levels) || s.Depth < 2 {
		t.Fatalf("Depth = %d, Levels = %d; want matching depth >= 2 for %d elements at capacity 4",
			s.Depth, len(s.Levels), n)
	}
	if s.Levels[0].Nodes != 1 {
		t.Fatalf("root level has %d nodes, want 1", s.Levels[0].Nodes)
	}
	var nodes, elems int
	for i, lv := range s.Levels {
		if lv.Level != i {
			t.Fatalf("Levels[%d].Level = %d", i, lv.Level)
		}
		if lv.Nodes <= 0 {
			t.Fatalf("level %d has %d nodes", i, lv.Nodes)
		}
		if lv.Fill <= 0 || lv.Fill > 1 {
			t.Fatalf("level %d fill = %v, want (0, 1]", i, lv.Fill)
		}
		if i > 0 && lv.Nodes != s.Levels[i-1].Elements+s.Levels[i-1].Nodes {
			// Each inner node with k elements has k+1 children.
			t.Fatalf("level %d has %d nodes, want %d (parents' elements+nodes)",
				i, lv.Nodes, s.Levels[i-1].Elements+s.Levels[i-1].Nodes)
		}
		nodes += lv.Nodes
		elems += lv.Elements
	}
	if nodes != s.Nodes || elems != s.Elements {
		t.Fatalf("level sums %d/%d != totals %d/%d", nodes, elems, s.Nodes, s.Elements)
	}
	if s.Fill <= 0 || s.Fill > 1 {
		t.Fatalf("Fill = %v, want (0, 1]", s.Fill)
	}
}

// TestShapeConcurrentWithWriters runs the shape walker continuously
// against live inserters. The walker must not fault, and every snapshot
// must stay internally sane; the final quiescent snapshot must be exact.
func TestShapeConcurrentWithWriters(t *testing.T) {
	tr := New(2, Options{Capacity: 4})
	const (
		workers = 4
		perW    = 4000
	)
	var stop atomic.Bool
	var writers, walker sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			h := NewHints()
			for i := 0; i < perW; i++ {
				tr.InsertHint(tuple.Tuple{uint64(i), uint64(w)}, h)
			}
		}(w)
	}
	walker.Add(1)
	go func() {
		defer walker.Done()
		for !stop.Load() {
			s := tr.Shape()
			if s.Depth != len(s.Levels) {
				t.Errorf("live shape depth %d != levels %d", s.Depth, len(s.Levels))
				return
			}
			if s.Depth > 0 && s.Levels[0].Nodes != 1 {
				t.Errorf("live shape root level has %d nodes", s.Levels[0].Nodes)
				return
			}
			for _, lv := range s.Levels {
				if lv.Nodes < 0 || lv.Elements < 0 || lv.Elements > lv.Nodes*s.Capacity {
					t.Errorf("live shape level out of range: %+v", lv)
					return
				}
			}
		}
	}()
	writers.Wait()
	stop.Store(true)
	walker.Wait()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	s := tr.Shape()
	if s.Elements != workers*perW {
		t.Fatalf("final Shape.Elements = %d, want %d", s.Elements, workers*perW)
	}
}
