package core

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"specbtree/internal/obs"
	"specbtree/internal/tuple"
)

// TestFlightRecorderUnderContention hammers one small-capacity tree from
// 8 goroutines with overlapping inserts and asserts that the contention
// flight recorder captured sampled events: every event names a known
// site with sane fields, and at least one records a lock acquisition
// that actually spun. Contention needs writers interleaved inside their
// lock-held windows; with GOMAXPROCS=1 a worker's whole loop fits in one
// scheduler quantum and never races, so the test raises GOMAXPROCS to
// the worker count — on a single-core machine that makes the kernel
// timeslice real threads at arbitrary points, which is exactly the
// interleaving needed. The stress loop repeats until the recorder holds
// a non-zero wait duration (bounded by a deadline).
func TestFlightRecorderUnderContention(t *testing.T) {
	if !obs.Enabled {
		t.Skip("observability compiled out (obsoff)")
	}
	prev := obs.SetFlightSampleRate(1) // record every contention event
	defer obs.SetFlightSampleRate(prev)
	defer obs.ResetFlight()
	obs.ResetFlight()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))

	known := map[string]bool{
		obs.SiteLeafUpgrade.Name(): true,
		obs.SiteSplitParent.Name(): true,
		obs.SiteSplitRoot.Name():   true,
	}

	// Geometry matters here. A descent that meets a write-locked inner
	// node blocks on the read lease, so it can never reach that node's
	// write lock — inner-lock write contention arises only from the
	// hinted fast path, which enters at a leaf directly. And a key
	// inserted into empty space always lies outside the hinted leaf's
	// span, so purely ascending workers never hit their hints. The
	// workload therefore pre-fills a lattice of keys and then fills the
	// gaps with one worker per lane of a parent-sized window, all lanes
	// advancing window by window behind a barrier: hints stay hot (the
	// gaps land inside populated leaves), every worker splits its own
	// leaf, and all those leaves sit under one shared parent — so a
	// worker preempted while holding the parent's write lock mid-split
	// strands the others in StartWrite on that parent, which is exactly
	// the contention the recorder must capture.
	const (
		workers  = 8
		capacity = 16
		winSpan  = 2048 // ≈ one parent's key coverage
		subSpan  = winSpan / workers
		windows  = 64
	)
	deadline := time.Now().Add(20 * time.Second)
	var sawSpin, sawWait bool
	rounds := 0
	for !(sawSpin && sawWait) && time.Now().Before(deadline) {
		rounds++
		tr := New(1, Options{Capacity: capacity})
		for k := uint64(0); k < windows*winSpan; k += capacity {
			tr.Insert(tuple.Tuple{k})
		}
		hs := make([]*Hints, workers)
		for w := range hs {
			hs[w] = NewHints()
		}
		for win := uint64(0); win < windows; win++ {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := hs[w] // handed off between windows via wg.Wait
					base := win*winSpan + uint64(w)*subSpan
					for off := uint64(1); off < subSpan; off++ {
						if off%capacity == 0 {
							continue // lattice key, already present
						}
						tr.InsertHint(tuple.Tuple{base + off}, h)
					}
				}(w)
			}
			wg.Wait()
		}
		if err := tr.Check(); err != nil {
			t.Fatal(err)
		}
		for _, ev := range obs.FlightEvents() {
			if !known[ev.Site] {
				t.Fatalf("flight event names unknown site %q: %+v", ev.Site, ev)
			}
			if ev.Spins == 0 && ev.WaitNanos == 0 && ev.Site != obs.SiteLeafUpgrade.Name() {
				t.Fatalf("flight event with no recorded contention: %+v", ev)
			}
			if ev.Level < 0 {
				t.Fatalf("flight event with negative level: %+v", ev)
			}
			if ev.Spins > 0 {
				sawSpin = true
			}
			if ev.WaitNanos > 0 {
				sawWait = true
			}
		}
	}
	if !sawSpin {
		t.Fatalf("no flight event with non-zero spins after %d rounds", rounds)
	}
	if !sawWait {
		t.Fatalf("no flight event with non-zero wait duration after %d rounds", rounds)
	}

	// Events must be globally ordered by sequence number and each
	// sequence number unique.
	events := obs.FlightEvents()
	if len(events) == 0 {
		t.Fatal("flight recorder empty after contended stress")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("flight events out of order: seq %d after %d", events[i].Seq, events[i-1].Seq)
		}
	}
}
