package core

import "specbtree/internal/tuple"

// Cursor is an ordered position within the tree, as returned by Begin,
// LowerBound and UpperBound. The zero Cursor is the end position.
//
// Cursor navigation (Next) walks parent pointers without taking leases:
// like Soufflé's iterators it is intended for the read phase of the
// evaluation, in which no concurrent writer mutates the relation being
// scanned (the semi-naïve phase-concurrency guarantee, paper §2). Creating
// a cursor via the bound operations, by contrast, is fully synchronised.
type Cursor struct {
	t   *Tree
	n   *node
	idx int
}

// Begin returns a cursor at the smallest element of the tree, or an
// invalid cursor if the tree is empty.
func (t *Tree) Begin() Cursor {
	n := t.root.Load()
	if n == nil {
		return Cursor{}
	}
	for n.inner {
		n = n.children[0].Load()
	}
	if n.count.Load() == 0 {
		return Cursor{}
	}
	return Cursor{t: t, n: n, idx: 0}
}

// Valid reports whether the cursor designates an element (false at end).
func (c *Cursor) Valid() bool { return c.n != nil }

// CopyTo copies the current element into dst, which must have the tree's
// arity. Using a caller-provided buffer keeps tight scan loops
// allocation-free.
func (c *Cursor) CopyTo(dst tuple.Tuple) {
	c.n.loadRow(c.idx, c.t.arity, dst)
}

// Tuple returns the current element as a fresh Tuple.
func (c *Cursor) Tuple() tuple.Tuple {
	dst := make(tuple.Tuple, c.t.arity)
	c.CopyTo(dst)
	return dst
}

// Compare three-way-compares the current element against v without
// materialising it.
func (c *Cursor) Compare(v tuple.Tuple) int {
	return c.n.cmpRow(c.idx, c.t.arity, v)
}

// Within reports whether the cursor is valid and its element precedes the
// exclusive bound hi; a nil hi means "end of tree", so any valid position
// is within. It is the loop condition of half-open range scans — the
// bound check every composed iterator performs per step, without
// materialising the element.
func (c *Cursor) Within(hi tuple.Tuple) bool {
	if c.n == nil {
		return false
	}
	return hi == nil || c.Compare(hi) < 0
}

// Equal reports whether two cursors designate the same position. Two end
// cursors are equal.
func (c *Cursor) Equal(o Cursor) bool {
	if c.n == nil || o.n == nil {
		return c.n == o.n
	}
	return c.n == o.n && c.idx == o.idx
}

// Next advances the cursor to the in-order successor, invalidating it at
// the end of the tree.
func (c *Cursor) Next() {
	n := c.n
	if n.inner {
		// Successor of an inner element: leftmost leaf of the subtree to
		// its right.
		x := n.children[c.idx+1].Load()
		for x.inner {
			x = x.children[0].Load()
		}
		c.n, c.idx = x, 0
		return
	}
	// Within the leaf.
	if c.idx+1 < int(n.count.Load()) {
		c.idx++
		return
	}
	// Ascend to the first ancestor entered from a non-rightmost child.
	for {
		p := n.parent.Load()
		if p == nil {
			c.n, c.idx = nil, 0
			return
		}
		i := int(n.pos.Load())
		if i < int(p.count.Load()) {
			c.n, c.idx = p, i
			return
		}
		n = p
	}
}

// Seq iterates from the cursor position to the end of the tree, invoking
// yield with a reused buffer; returning false from yield stops the
// iteration. The buffer must not be retained across calls.
func (c Cursor) Seq(yield func(tuple.Tuple) bool) {
	if c.t == nil {
		return
	}
	buf := make(tuple.Tuple, c.t.arity)
	for c.Valid() {
		c.CopyTo(buf)
		if !yield(buf) {
			return
		}
		c.Next()
	}
}

// Range iterates over all elements t with from <= t < to (to == nil means
// "to the end"), invoking yield with a reused buffer.
func (t *Tree) Range(from, to tuple.Tuple, yield func(tuple.Tuple) bool) {
	c := t.LowerBound(from)
	buf := make(tuple.Tuple, t.arity)
	for c.Valid() {
		if to != nil && c.Compare(to) >= 0 {
			return
		}
		c.CopyTo(buf)
		if !yield(buf) {
			return
		}
		c.Next()
	}
}

// RangeHint is Range with operation hints for the initial bound location.
func (t *Tree) RangeHint(from, to tuple.Tuple, h *Hints, yield func(tuple.Tuple) bool) {
	c := t.LowerBoundHint(from, h)
	buf := make(tuple.Tuple, t.arity)
	for c.Valid() {
		if to != nil && c.Compare(to) >= 0 {
			return
		}
		c.CopyTo(buf)
		if !yield(buf) {
			return
		}
		c.Next()
	}
}

// All iterates over every element in order with a reused buffer.
func (t *Tree) All(yield func(tuple.Tuple) bool) {
	t.Begin().Seq(yield)
}
