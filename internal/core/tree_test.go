package core

import (
	"math/rand"
	"sort"
	"testing"

	"specbtree/internal/tuple"
)

// sortedUnique returns ts sorted with duplicates removed.
func sortedUnique(ts []tuple.Tuple) []tuple.Tuple {
	out := make([]tuple.Tuple, len(ts))
	copy(out, ts)
	sort.Slice(out, func(i, j int) bool { return tuple.Less(out[i], out[j]) })
	uniq := out[:0]
	for i, t := range out {
		if i == 0 || !tuple.Equal(uniq[len(uniq)-1], t) {
			uniq = append(uniq, t)
		}
		_ = i
	}
	return uniq
}

func randTuples(n int, arity int, domain uint64, seed int64) []tuple.Tuple {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]tuple.Tuple, n)
	for i := range ts {
		t := make(tuple.Tuple, arity)
		for j := range t {
			t[j] = uint64(rng.Int63n(int64(domain)))
		}
		ts[i] = t
	}
	return ts
}

func collect(t *Tree) []tuple.Tuple {
	var out []tuple.Tuple
	t.All(func(tp tuple.Tuple) bool {
		out = append(out, tp.Clone())
		return true
	})
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := New(2)
	if !tr.Empty() {
		t.Error("new tree not empty")
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Contains(tuple.Tuple{1, 2}) {
		t.Error("empty tree contains a tuple")
	}
	if c := tr.Begin(); c.Valid() {
		t.Error("Begin on empty tree is valid")
	}
	if c := tr.LowerBound(tuple.Tuple{0, 0}); c.Valid() {
		t.Error("LowerBound on empty tree is valid")
	}
	if err := tr.Check(); err != nil {
		t.Error(err)
	}
}

func TestInsertAndContains(t *testing.T) {
	tr := New(2)
	if !tr.Insert(tuple.Tuple{1, 2}) {
		t.Error("first insert reported duplicate")
	}
	if tr.Insert(tuple.Tuple{1, 2}) {
		t.Error("duplicate insert reported new")
	}
	if !tr.Contains(tuple.Tuple{1, 2}) {
		t.Error("inserted tuple missing")
	}
	if tr.Contains(tuple.Tuple{2, 1}) {
		t.Error("phantom tuple present")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestOrderedInsertMany(t *testing.T) {
	tr := New(2, Options{Capacity: 4}) // small capacity forces deep trees
	const n = 5000
	for i := 0; i < n; i++ {
		if !tr.Insert(tuple.Tuple{uint64(i / 70), uint64(i % 70)}) {
			t.Fatalf("insert %d reported duplicate", i)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		if !tr.Contains(tuple.Tuple{uint64(i / 70), uint64(i % 70)}) {
			t.Fatalf("tuple %d missing after ordered fill", i)
		}
	}
}

func TestRandomInsertMatchesModel(t *testing.T) {
	for _, capacity := range []int{3, 4, 7, 16, 64} {
		tr := New(2, Options{Capacity: capacity})
		model := map[[2]uint64]bool{}
		ts := randTuples(4000, 2, 200, int64(capacity))
		for _, tp := range ts {
			key := [2]uint64{tp[0], tp[1]}
			fresh := tr.Insert(tp)
			if fresh == model[key] {
				t.Fatalf("capacity %d: insert %v returned %v, model knows %v", capacity, tp, fresh, model[key])
			}
			model[key] = true
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("capacity %d: %v", capacity, err)
		}
		if tr.Len() != len(model) {
			t.Fatalf("capacity %d: Len = %d, model %d", capacity, tr.Len(), len(model))
		}
		for key := range model {
			if !tr.Contains(tuple.Tuple{key[0], key[1]}) {
				t.Fatalf("capacity %d: %v missing", capacity, key)
			}
		}
		// Iteration yields exactly the model, in sorted order.
		got := collect(tr)
		want := sortedUnique(ts)
		if len(got) != len(want) {
			t.Fatalf("capacity %d: scan yields %d, want %d", capacity, len(got), len(want))
		}
		for i := range got {
			if !tuple.Equal(got[i], want[i]) {
				t.Fatalf("capacity %d: scan[%d] = %v, want %v", capacity, i, got[i], want[i])
			}
		}
	}
}

func TestDescendingInsert(t *testing.T) {
	tr := New(1, Options{Capacity: 4})
	const n = 2000
	for i := n - 1; i >= 0; i-- {
		tr.Insert(tuple.Tuple{uint64(i)})
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	got := collect(tr)
	if len(got) != n {
		t.Fatalf("got %d elements", len(got))
	}
	for i, tp := range got {
		if tp[0] != uint64(i) {
			t.Fatalf("scan[%d] = %v", i, tp)
		}
	}
}

func TestArityOne(t *testing.T) {
	tr := New(1)
	for i := 0; i < 100; i++ {
		tr.Insert(tuple.Tuple{uint64(i * 3)})
	}
	if !tr.Contains(tuple.Tuple{99}) {
		t.Error("99 missing")
	}
	if tr.Contains(tuple.Tuple{100}) {
		t.Error("100 present")
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestWideArity(t *testing.T) {
	tr := New(5, Options{Capacity: 8})
	ts := randTuples(2000, 5, 10, 7)
	model := map[string]bool{}
	for _, tp := range ts {
		k := tuple.KeyString(tp)
		if tr.Insert(tp) == model[k] {
			t.Fatalf("insert/model disagreement on %v", tp)
		}
		model[k] = true
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(model))
	}
}

func TestArityMismatchPanics(t *testing.T) {
	tr := New(2)
	for name, f := range map[string]func(){
		"insert":   func() { tr.Insert(tuple.Tuple{1}) },
		"contains": func() { tr.Contains(tuple.Tuple{1, 2, 3}) },
		"lower":    func() { tr.LowerBound(tuple.Tuple{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with wrong arity did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestInvalidConstruction(t *testing.T) {
	for name, f := range map[string]func(){
		"zero arity": func() { New(0) },
		"neg arity":  func() { New(-1) },
		"tiny nodes": func() { New(2, Options{Capacity: 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestLowerUpperBound(t *testing.T) {
	tr := New(1, Options{Capacity: 4})
	// Insert even numbers 0..198.
	for i := 0; i < 100; i++ {
		tr.Insert(tuple.Tuple{uint64(2 * i)})
	}
	tests := []struct {
		v     uint64
		lower int64 // expected element at LowerBound, -1 = end
		upper int64
	}{
		{0, 0, 2},
		{1, 2, 2},
		{2, 2, 4},
		{3, 4, 4},
		{197, 198, 198},
		{198, 198, -1},
		{199, -1, -1},
		{1000, -1, -1},
	}
	for _, tc := range tests {
		lb := tr.LowerBound(tuple.Tuple{tc.v})
		if tc.lower == -1 {
			if lb.Valid() {
				t.Errorf("LowerBound(%d) = %v, want end", tc.v, lb.Tuple())
			}
		} else if !lb.Valid() || lb.Tuple()[0] != uint64(tc.lower) {
			t.Errorf("LowerBound(%d) wrong: valid=%v", tc.v, lb.Valid())
		}
		ub := tr.UpperBound(tuple.Tuple{tc.v})
		if tc.upper == -1 {
			if ub.Valid() {
				t.Errorf("UpperBound(%d) = %v, want end", tc.v, ub.Tuple())
			}
		} else if !ub.Valid() || ub.Tuple()[0] != uint64(tc.upper) {
			t.Errorf("UpperBound(%d) wrong", tc.v)
		}
	}
}

func TestBoundsMatchModel(t *testing.T) {
	tr := New(2, Options{Capacity: 5})
	ts := randTuples(3000, 2, 60, 99)
	for _, tp := range ts {
		tr.Insert(tp)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	all := collect(tr)

	probe := randTuples(500, 2, 62, 100)
	for _, p := range probe {
		// Model lower bound by scanning the sorted slice.
		wantIdx := sort.Search(len(all), func(i int) bool { return tuple.Compare(all[i], p) >= 0 })
		lb := tr.LowerBound(p)
		if wantIdx == len(all) {
			if lb.Valid() {
				t.Fatalf("LowerBound(%v) = %v, want end", p, lb.Tuple())
			}
		} else if !lb.Valid() || !tuple.Equal(lb.Tuple(), all[wantIdx]) {
			t.Fatalf("LowerBound(%v) mismatch", p)
		}

		wantIdxU := sort.Search(len(all), func(i int) bool { return tuple.Compare(all[i], p) > 0 })
		ub := tr.UpperBound(p)
		if wantIdxU == len(all) {
			if ub.Valid() {
				t.Fatalf("UpperBound(%v) = %v, want end", p, ub.Tuple())
			}
		} else if !ub.Valid() || !tuple.Equal(ub.Tuple(), all[wantIdxU]) {
			t.Fatalf("UpperBound(%v) mismatch", p)
		}
	}
}

func TestRangeScan(t *testing.T) {
	tr := New(2, Options{Capacity: 4})
	// Edge-style data: (x, y) for x in 0..49, y in 0..9.
	for x := uint64(0); x < 50; x++ {
		for y := uint64(0); y < 10; y++ {
			tr.Insert(tuple.Tuple{x, y * 7})
		}
	}
	// Range query for prefix x=17 must yield exactly its 10 tuples.
	lo := tuple.PrefixLowerBound(tuple.Tuple{17}, 2)
	hi := tuple.PrefixUpperBound(tuple.Tuple{17}, 2)
	var got []tuple.Tuple
	tr.Range(lo, hi, func(tp tuple.Tuple) bool {
		got = append(got, tp.Clone())
		return true
	})
	if len(got) != 10 {
		t.Fatalf("prefix scan yielded %d tuples, want 10", len(got))
	}
	for i, tp := range got {
		if tp[0] != 17 || tp[1] != uint64(i*7) {
			t.Fatalf("scan[%d] = %v", i, tp)
		}
	}
	// Early stop.
	count := 0
	tr.Range(lo, nil, func(tp tuple.Tuple) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early-stopping scan visited %d", count)
	}
}

func TestCursorEqualAndCompare(t *testing.T) {
	tr := New(1)
	tr.Insert(tuple.Tuple{5})
	tr.Insert(tuple.Tuple{9})
	a := tr.LowerBound(tuple.Tuple{5})
	b := tr.LowerBound(tuple.Tuple{4})
	if !a.Equal(b) {
		t.Error("cursors to same element differ")
	}
	if a.Compare(tuple.Tuple{5}) != 0 || a.Compare(tuple.Tuple{6}) >= 0 {
		t.Error("cursor Compare wrong")
	}
	a.Next()
	if a.Equal(b) {
		t.Error("advanced cursor equal to old position")
	}
	a.Next()
	end := tr.UpperBound(tuple.Tuple{9})
	if !a.Equal(end) {
		t.Error("end cursors differ")
	}
}

func TestLenAndShape(t *testing.T) {
	tr := New(2, Options{Capacity: 8})
	const n = 3000
	for i := 0; i < n; i++ {
		tr.Insert(tuple.Tuple{uint64(i), uint64(i)})
	}
	s := tr.Shape()
	if s.Elements != n {
		t.Errorf("Shape.Elements = %d", s.Elements)
	}
	if s.LeafNodes+s.InnerNodes != s.Nodes {
		t.Error("node counts inconsistent")
	}
	if s.Depth < 3 {
		t.Errorf("suspiciously shallow: depth %d", s.Depth)
	}
	if s.Fill <= 0 || s.Fill > 1 {
		t.Errorf("fill grade %f out of range", s.Fill)
	}
}
