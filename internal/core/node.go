package core

import (
	"sync/atomic"

	"specbtree/internal/optlock"
)

// node is a single B-tree node. This is a classic B-tree (not a B+ tree):
// inner nodes carry real elements as separators, exactly as in the paper's
// Algorithm 1, whose descent may find the probe value in an inner node.
//
// Concurrency contract (paper §3.1, "the following rules are obeyed"):
//   - the keys and the child pointers of a node are protected by the
//     node's own lock;
//   - the parent pointer (and the node's position within the parent) are
//     protected by the *parent's* lock — or by the tree's root lock for
//     the root node;
//   - nodes are never deleted or relocated, so a pointer read under a
//     lease that later fails to validate is stale but never dangling.
//
// Every mutable word is accessed through sync/atomic: the optimistic
// protocol deliberately lets readers race with writers and validate
// afterwards, and atomic access is what makes that defined behaviour under
// the Go memory model (the Go analogue of the Boehm seqlock treatment the
// paper adopts for C++).
type node struct {
	lock optlock.Lock

	// inner discriminates inner nodes from leaves. A node never changes
	// kind after construction, so the flag is read without synchronisation.
	inner bool

	// epoch is the tree epoch the node was created in (Tree.epoch at
	// construction time). Immutable after construction and published with
	// the node through an atomic pointer store, so — like inner — it is
	// read without further synchronisation. A node whose epoch is behind
	// the tree's current epoch is *frozen*: it belongs to a published
	// snapshot and must never be mutated again; writers copy-on-write it
	// first (Tree.cow).
	epoch uint64

	// retired marks a frozen node that has been replaced by its
	// current-epoch clone. A retired node keeps its content forever (a
	// snapshot may still be reading it) but is no longer part of the live
	// tree: hinted fast paths must treat it as a miss, and writers that
	// reach it must restart their descent. Set under the node's write
	// lock; read without one (an atomic flag, so late observers see it).
	retired atomic.Bool

	// parent and pos locate this node within its parent. Covered by the
	// parent's lock (root lock for the root).
	parent atomic.Pointer[node]
	pos    atomic.Int32

	// count is the number of elements currently stored.
	count atomic.Int32

	// keys is the flat element area: capacity*arity words; element i
	// occupies keys[i*arity : (i+1)*arity].
	keys []atomic.Uint64

	// children holds count+1 child pointers for inner nodes; nil for leaves.
	children []atomic.Pointer[node]
}

// row returns element i's word slice. The returned words must still be
// loaded atomically by the caller.
func (n *node) row(i int, arity int) []atomic.Uint64 {
	return n.keys[i*arity : (i+1)*arity]
}

// loadRow copies element i into dst under atomic loads.
func (n *node) loadRow(i int, arity int, dst []uint64) {
	base := i * arity
	for w := 0; w < arity; w++ {
		dst[w] = n.keys[base+w].Load()
	}
}

// storeRow writes src into element slot i under atomic stores. Caller must
// hold the node's write lock (or the node must be unreachable).
func (n *node) storeRow(i int, arity int, src []uint64) {
	base := i * arity
	for w := 0; w < arity; w++ {
		n.keys[base+w].Store(src[w])
	}
}

// copyRow copies element slot from into element slot to within the node.
func (n *node) copyRow(to, from int, arity int) {
	tb, fb := to*arity, from*arity
	for w := 0; w < arity; w++ {
		n.keys[tb+w].Store(n.keys[fb+w].Load())
	}
}

// cmpRow three-way-compares element i against v, using atomic loads.
// The result is only meaningful if the enclosing lease validates.
func (n *node) cmpRow(i int, arity int, v []uint64) int {
	base := i * arity
	for w := 0; w < arity; w++ {
		kv := n.keys[base+w].Load()
		switch {
		case kv < v[w]:
			return -1
		case kv > v[w]:
			return 1
		}
	}
	return 0
}

// search locates v within the node: it returns the index of the first
// element >= v and whether that element equals v. The count and the keys
// are read atomically, so a torn concurrent state yields a bogus — but
// bounded — result that the caller's lease validation discards.
//
// Small nodes are scanned linearly with the 3-way comparator (the paper's
// tuning note); large nodes fall back to binary search.
func (n *node) search(arity int, v []uint64) (idx int, found bool) {
	cnt := int(n.count.Load())
	if cnt < 0 {
		cnt = 0
	}
	max := len(n.keys) / arity
	if cnt > max {
		cnt = max
	}
	if cnt <= linearSearchThreshold {
		for i := 0; i < cnt; i++ {
			c := n.cmpRow(i, arity, v)
			if c >= 0 {
				return i, c == 0
			}
		}
		return cnt, false
	}
	lo, hi := 0, cnt
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		c := n.cmpRow(mid, arity, v)
		switch {
		case c < 0:
			lo = mid + 1
		case c > 0:
			hi = mid
		default:
			return mid, true
		}
	}
	return lo, false
}

// linearSearchThreshold is the node size up to which linear scanning beats
// binary search (short, branch-predictable loops over hot cache lines).
const linearSearchThreshold = 32

// child loads child pointer i, clamped so that a torn count can never
// produce an out-of-range access; an in-range but wrong child is caught by
// lease validation.
func (n *node) child(i int) *node {
	if i < 0 {
		i = 0
	}
	if i >= len(n.children) {
		i = len(n.children) - 1
	}
	return n.children[i].Load()
}

// full reports whether the node has no free element slot.
func (n *node) full(arity int) bool {
	return int(n.count.Load()) >= len(n.keys)/arity
}

// insertAt shifts elements (and, for inner nodes, the child pointers to
// the right of the separator) one slot right and writes v at index idx.
// Caller must hold the node's write lock or own the node exclusively.
func (n *node) insertAt(idx int, arity int, v []uint64, rightChild *node) {
	cnt := int(n.count.Load())
	for i := cnt; i > idx; i-- {
		n.copyRow(i, i-1, arity)
	}
	n.storeRow(idx, arity, v)
	if n.inner {
		for i := cnt + 1; i > idx+1; i-- {
			c := n.children[i-1].Load()
			n.children[i].Store(c)
			c.pos.Store(int32(i))
		}
		n.children[idx+1].Store(rightChild)
		rightChild.pos.Store(int32(idx + 1))
		rightChild.parent.Store(n)
	}
	n.count.Store(int32(cnt + 1))
}
