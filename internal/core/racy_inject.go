//go:build lockinject

//checkorder:ignore-file — this file reintroduces the PR 3
// load-after-validate defect on purpose; the checkorder lint must not
// flag it, and it must never be compiled into a default build.

package core

import (
	"specbtree/internal/obs"
	"specbtree/internal/optlock"
	"specbtree/internal/tuple"
)

// LowerBoundRacy is the bound query as it existed before the PR 3 fix:
// the leaf count is loaded *after* the lease validation, so an insert
// landing between the two hands back a cursor at a count-shifted index.
// It exists only under the lockinject build tag, as the known-broken
// reference the correctness harness proves itself against: with an
// injected writer in the validated-to-load window (optlock.SiteValidated)
// this path fails deterministically, while the fixed LowerBound does not.
func (t *Tree) LowerBoundRacy(v tuple.Tuple) Cursor {
	var oc obs.OpCounts
	defer oc.Flush()
restart:
	for {
		cur, curLease, ok := t.readRoot(&oc)
		if !ok {
			return Cursor{}
		}
		candidate := Cursor{}
		var candLease lease
		var candNode *node
		for {
			idx := cur.searchBound(t.arity, v, false)
			if !cur.inner {
				if !valid(&cur.lock, curLease, &oc) {
					continue restart
				}
				// BUG (pre-PR 3): count loaded after the validation. A
				// racing insert that bumps the count right here makes
				// idx < cnt true for an idx computed against the old
				// contents, yielding a cursor whose element violates the
				// bound contract.
				cnt := int(cur.count.Load())
				var res Cursor
				if idx < cnt {
					res = Cursor{t: t, n: cur, idx: idx}
				} else {
					res = candidate
					if candNode != nil && !valid(&candNode.lock, candLease, &oc) {
						continue restart
					}
				}
				return res
			}
			if idx < int(cur.count.Load()) {
				candidate = Cursor{t: t, n: cur, idx: idx}
				candNode, candLease = cur, curLease
			}
			next := cur.child(idx)
			if !valid(&cur.lock, curLease, &oc) {
				continue restart
			}
			nextLease := next.lock.StartRead()
			if !valid(&cur.lock, curLease, &oc) {
				continue restart
			}
			cur, curLease = next, nextLease
		}
	}
}

// LeafLockOf descends, without synchronisation, to the leaf that would
// cover v and returns that leaf's lock, or nil on an empty tree. It lets
// a fault injector recognise probe firings on a specific leaf. Quiescent
// trees only (harness setup code); never sound under concurrent writers.
func (t *Tree) LeafLockOf(v tuple.Tuple) *optlock.Lock {
	n := t.root.Load()
	if n == nil {
		return nil
	}
	for n.inner {
		idx, _ := n.search(t.arity, v)
		n = n.child(idx)
	}
	return &n.lock
}
