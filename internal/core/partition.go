package core

import "specbtree/internal/tuple"

// SplitPoints returns up to n-1 strictly increasing tuples that divide the
// tree's content into roughly equal, contiguous key ranges — the analogue
// of Soufflé's chunk partitioning, which lets parallel rule evaluation
// hand each worker a subrange of a scan without materialising it.
//
// The boundaries are harvested from the upper tree levels, whose
// separators subdivide the key space evenly by construction. Intended for
// the read phase (no concurrent writers).
func (t *Tree) SplitPoints(n int) []tuple.Tuple {
	root := t.root.Load()
	if root == nil || n <= 1 {
		return nil
	}
	// Collect separators level by level until one level yields enough.
	level := []*node{root}
	var out []tuple.Tuple
	for len(level) > 0 {
		var seps []tuple.Tuple
		var next []*node
		for _, nd := range level {
			cnt := int(nd.count.Load())
			for i := 0; i < cnt; i++ {
				sep := make(tuple.Tuple, t.arity)
				nd.loadRow(i, t.arity, sep)
				seps = append(seps, sep)
			}
			if nd.inner {
				for i := 0; i <= cnt; i++ {
					next = append(next, nd.children[i].Load())
				}
			}
		}
		// Separators harvested across one level are already sorted because
		// the nodes were visited left to right.
		out = seps
		if len(seps) >= n-1 || len(next) == 0 {
			break
		}
		level = next
	}
	if len(out) <= n-1 {
		return out
	}
	// Thin out to exactly n-1 evenly spaced boundaries.
	picked := make([]tuple.Tuple, 0, n-1)
	for i := 1; i < n; i++ {
		picked = append(picked, out[i*len(out)/n])
	}
	// Deduplicate (even spacing cannot repeat as long as len(out) >= n-1,
	// but guard against rounding collisions).
	uniq := picked[:0]
	for i, p := range picked {
		if i == 0 || tuple.Compare(uniq[len(uniq)-1], p) < 0 {
			uniq = append(uniq, p)
		}
	}
	return uniq
}

// SplitRange clips the tree's split points to the range [from, to),
// returning interior boundaries usable to partition a range scan. Nil
// from/to mean the start/end of the relation.
func (t *Tree) SplitRange(from, to tuple.Tuple, n int) []tuple.Tuple {
	points := t.SplitPoints(n)
	var out []tuple.Tuple
	for _, p := range points {
		if from != nil && tuple.Compare(p, from) <= 0 {
			continue
		}
		if to != nil && tuple.Compare(p, to) >= 0 {
			continue
		}
		out = append(out, p)
	}
	return out
}
