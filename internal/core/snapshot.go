package core

import (
	"fmt"

	"specbtree/internal/tuple"
)

// This file implements epoch snapshots: immutable point-in-time views of
// the tree (the MVCC-lite scheme of DESIGN.md §14). Taking a snapshot
// captures the current root and advances the tree's epoch; every node
// stamped with an older epoch is thereby frozen. Writers that reach a
// frozen node copy-on-write its path (Tree.cow), so the subtree hanging
// off the captured root never changes again — snapshot reads need no
// leases, no validation and no restarts.
//
// One caveat shapes the cursor below: copy-on-write repoints the *parent*
// pointers of a retired node's children to the clone (they are shared
// between the old and the new path). A snapshot therefore must never
// navigate via parent pointers — SnapCursor keeps an explicit root-to-
// position stack instead, which is also why it is a distinct type from
// the live tree's Cursor.

// Snapshot is an immutable view of the tree's contents at the moment
// Snapshot() was called. All methods are safe for concurrent use by any
// number of goroutines, concurrently with writers mutating the live tree.
// The zero Snapshot is an empty view.
type Snapshot struct {
	arity int
	root  *node
}

// Snapshot captures the tree's current contents and advances the snapshot
// epoch, freezing every existing node. Like Len, it must be called from a
// quiescent point — no insert in flight — which the callers have by
// construction: the relation layer snapshots during the read phase, and
// the serve scheduler snapshots at epoch boundaries while the write gate
// is closed. Reads may run concurrently with Snapshot without harm.
//
// Cost is O(1) at capture time; the price is paid lazily by the first
// writer to touch each frozen path ("core.cow.clones" counts the clones).
// A Snapshot holds its subtree live for the garbage collector; drop the
// last reference to release the retired nodes.
func (t *Tree) Snapshot() Snapshot {
	root := t.root.Load()
	t.epoch.Add(1)
	return Snapshot{arity: t.arity, root: root}
}

// Arity returns the number of columns of the stored tuples.
func (s Snapshot) Arity() int { return s.arity }

// Empty reports whether the snapshot contains no elements.
func (s Snapshot) Empty() bool {
	return s.root == nil || s.root.count.Load() == 0
}

// Len counts the snapshot's elements by walking the frozen subtree.
func (s Snapshot) Len() int { return countSubtree(s.root) }

// Contains reports whether v is in the snapshot. The descent takes no
// leases: frozen nodes are immutable, so every load is final.
func (s Snapshot) Contains(v tuple.Tuple) bool {
	if len(v) != s.arity {
		panic(fmt.Sprintf("core: querying arity-%d tuple in arity-%d snapshot", len(v), s.arity))
	}
	n := s.root
	for n != nil {
		idx, found := n.search(s.arity, v)
		if found {
			return true
		}
		if !n.inner {
			return false
		}
		n = n.child(idx)
	}
	return false
}

// LowerBound returns a cursor at the first element >= v, invalid if no
// such element exists.
func (s Snapshot) LowerBound(v tuple.Tuple) SnapCursor { return s.bound(v, false) }

// UpperBound returns a cursor at the first element > v, invalid if no
// such element exists.
func (s Snapshot) UpperBound(v tuple.Tuple) SnapCursor { return s.bound(v, true) }

func (s Snapshot) bound(v tuple.Tuple, strict bool) SnapCursor {
	if len(v) != s.arity {
		panic(fmt.Sprintf("core: querying arity-%d tuple in arity-%d snapshot", len(v), s.arity))
	}
	c := SnapCursor{arity: s.arity}
	n := s.root
	if n == nil {
		return c
	}
	for {
		idx := n.searchBound(s.arity, v, strict)
		c.stack = append(c.stack, snapFrame{n: n, idx: idx})
		if !n.inner {
			break
		}
		n = n.child(idx)
	}
	// The leaf frame's idx is already the element index. If the leaf ran
	// off its end, the answer is the separator of the first ancestor whose
	// descent slot is not its rightmost: the frame's slot doubles as the
	// element index of the first in-node element >= v (or > v).
	top := len(c.stack) - 1
	if c.stack[top].idx < int(c.stack[top].n.count.Load()) {
		return c
	}
	for top--; top >= 0; top-- {
		if c.stack[top].idx < int(c.stack[top].n.count.Load()) {
			c.stack = c.stack[:top+1]
			return c
		}
	}
	c.stack = nil
	return c
}

// Cursor returns a cursor at the snapshot's smallest element, invalid if
// the snapshot is empty.
func (s Snapshot) Cursor() SnapCursor {
	c := SnapCursor{arity: s.arity}
	n := s.root
	if n == nil || n.count.Load() == 0 {
		return c
	}
	for {
		c.stack = append(c.stack, snapFrame{n: n})
		if !n.inner {
			return c
		}
		n = n.child(0)
	}
}

// Scan iterates over all snapshot elements t with from <= t < to (nil
// from means "from the start", nil to means "to the end"), invoking yield
// with a reused buffer; returning false stops the iteration.
func (s Snapshot) Scan(from, to tuple.Tuple, yield func(tuple.Tuple) bool) {
	var c SnapCursor
	if from == nil {
		c = s.Cursor()
	} else {
		c = s.LowerBound(from)
	}
	buf := make(tuple.Tuple, s.arity)
	for c.Within(to) {
		c.CopyTo(buf)
		if !yield(buf) {
			return
		}
		c.Next()
	}
}

// All iterates over every snapshot element in order with a reused buffer.
func (s Snapshot) All(yield func(tuple.Tuple) bool) {
	s.Scan(nil, nil, yield)
}

// ExportRange materialises every snapshot element t with from <= t < to
// (nil bounds are open) into an owned slice. The result is sorted and
// duplicate-free by construction — exactly the input contract of
// Tree.BuildFromSorted, making the pair the cluster rebalance handoff:
// freeze the range on the source via a snapshot, export it, bulk-load
// it into the destination (DESIGN.md §15).
func (s Snapshot) ExportRange(from, to tuple.Tuple) []tuple.Tuple {
	var out []tuple.Tuple
	s.Scan(from, to, func(t tuple.Tuple) bool {
		out = append(out, t.Clone())
		return true
	})
	return out
}

// snapFrame is one level of a SnapCursor's descent stack. For the top
// frame, idx is the element index within n; for every frame below it, idx
// is the child slot the descent took out of n.
type snapFrame struct {
	n   *node
	idx int
}

// SnapCursor is an ordered position within a Snapshot. Unlike the live
// tree's Cursor it never follows parent pointers (copy-on-write repoints
// those on shared frozen nodes); it carries the full root-to-position
// stack instead. The zero SnapCursor is the end position.
type SnapCursor struct {
	arity int
	stack []snapFrame
}

// Valid reports whether the cursor designates an element (false at end).
func (c *SnapCursor) Valid() bool { return len(c.stack) > 0 }

// top returns the current frame; the cursor must be valid.
func (c *SnapCursor) top() *snapFrame { return &c.stack[len(c.stack)-1] }

// CopyTo copies the current element into dst, which must have the
// snapshot's arity.
func (c *SnapCursor) CopyTo(dst tuple.Tuple) {
	f := c.top()
	f.n.loadRow(f.idx, c.arity, dst)
}

// Tuple returns the current element as a fresh Tuple.
func (c *SnapCursor) Tuple() tuple.Tuple {
	dst := make(tuple.Tuple, c.arity)
	c.CopyTo(dst)
	return dst
}

// Compare three-way-compares the current element against v without
// materialising it.
func (c *SnapCursor) Compare(v tuple.Tuple) int {
	f := c.top()
	return f.n.cmpRow(f.idx, c.arity, v)
}

// Within reports whether the cursor is valid and its element precedes the
// exclusive bound hi; a nil hi means "end of snapshot".
func (c *SnapCursor) Within(hi tuple.Tuple) bool {
	if len(c.stack) == 0 {
		return false
	}
	return hi == nil || c.Compare(hi) < 0
}

// Next advances the cursor to the in-order successor, invalidating it at
// the end of the snapshot.
func (c *SnapCursor) Next() {
	f := c.top()
	if f.n.inner {
		// Successor of an inner element: leftmost leaf of the subtree to
		// its right. The frame's idx becomes the descent slot.
		f.idx++
		n := f.n.child(f.idx)
		for {
			c.stack = append(c.stack, snapFrame{n: n})
			if !n.inner {
				return
			}
			n = n.child(0)
		}
	}
	if f.idx+1 < int(f.n.count.Load()) {
		f.idx++
		return
	}
	// Leaf exhausted: ascend to the first ancestor entered through a
	// non-rightmost slot; its slot index is the successor element's index.
	for top := len(c.stack) - 2; top >= 0; top-- {
		if c.stack[top].idx < int(c.stack[top].n.count.Load()) {
			c.stack = c.stack[:top+1]
			return
		}
	}
	c.stack = nil
}

// Seq iterates from the cursor position to the end of the snapshot,
// invoking yield with a reused buffer; returning false from yield stops
// the iteration. The buffer must not be retained across calls.
func (c SnapCursor) Seq(yield func(tuple.Tuple) bool) {
	if c.arity == 0 {
		return
	}
	buf := make(tuple.Tuple, c.arity)
	for c.Valid() {
		c.CopyTo(buf)
		if !yield(buf) {
			return
		}
		c.Next()
	}
}
