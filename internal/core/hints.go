package core

import (
	"specbtree/internal/obs"
	"specbtree/internal/optlock"
)

// lease and lockT alias the optimistic lock types so the tree code reads
// close to the paper's pseudo-code.
type (
	lease = optlock.Lease
	lockT = optlock.Lock
)

// HintStats counts hint hits and misses per operation class. A hit means
// the remembered leaf still covered the probe value and the tree descent
// was skipped entirely.
type HintStats struct {
	InsertHits   uint64
	InsertMisses uint64
	FindHits     uint64
	FindMisses   uint64
	LowerHits    uint64
	LowerMisses  uint64
	UpperHits    uint64
	UpperMisses  uint64
}

// Add accumulates o into s (used to aggregate per-worker statistics).
func (s *HintStats) Add(o HintStats) {
	s.InsertHits += o.InsertHits
	s.InsertMisses += o.InsertMisses
	s.FindHits += o.FindHits
	s.FindMisses += o.FindMisses
	s.LowerHits += o.LowerHits
	s.LowerMisses += o.LowerMisses
	s.UpperHits += o.UpperHits
	s.UpperMisses += o.UpperMisses
}

// Hits returns the total hits across all operation classes.
func (s HintStats) Hits() uint64 {
	return s.InsertHits + s.FindHits + s.LowerHits + s.UpperHits
}

// Misses returns the total misses across all operation classes.
func (s HintStats) Misses() uint64 {
	return s.InsertMisses + s.FindMisses + s.LowerMisses + s.UpperMisses
}

// HitRate returns the fraction of hinted operations that hit, or 0 if no
// hinted operation was performed.
func (s HintStats) HitRate() float64 {
	total := s.Hits() + s.Misses()
	if total == 0 {
		return 0
	}
	return float64(s.Hits()) / float64(total)
}

// Hints caches, per operation class, the last leaf node an operation
// located (paper §3.2). Each worker thread owns one Hints value and passes
// it to every tree operation; the tree never shares hint state between
// threads, so Hints needs no synchronisation of its own.
//
// Hinted entry at the leaf level is compatible with the tree's locking
// scheme precisely because exclusive write locks are acquired bottom-up:
// a thread that enters at a leaf and walks upward to split can never form
// a cyclic wait with top-down descents, which take only non-blocking read
// leases.
//
// Because tree nodes are never deleted or moved, a stale hint is never a
// dangling pointer — at worst it fails its coverage check and costs one
// leaf probe.
//
// The zero value is an empty, valid hint set (the paper's "factory
// function for initial operation hints").
type Hints struct {
	insertLeaf *node
	findLeaf   *node
	lowerLeaf  *node
	upperLeaf  *node

	// Stats records the hit/miss behaviour of this hint set.
	Stats HintStats

	// obs batches this worker's global observability counters (package
	// obs) so hot-path events cost a plain increment; hinted operations
	// settle it periodically, and FlushObs settles it on demand.
	obs obs.Batch
}

// NewHints returns a fresh, empty hint set. Equivalent to new(Hints);
// provided to mirror the paper's factory function.
func NewHints() *Hints { return &Hints{} }

// Reset forgets all cached leaves but keeps the statistics.
func (h *Hints) Reset() {
	h.insertLeaf = nil
	h.findLeaf = nil
	h.lowerLeaf = nil
	h.upperLeaf = nil
}

// FlushObs settles this hint set's batched observability counters into
// the global registry (package obs). Operations batch counter updates in
// the hint set to keep them off the hot path, so a snapshot taken mid-run
// can trail the truth slightly; call FlushObs at a measurement boundary —
// after the owning worker's last operation, or from a goroutine that
// happens-after it — to make snapshots exact.
func (h *Hints) FlushObs() {
	h.obs.Flush()
}
