package core

import (
	"runtime"
	"sync"
	"testing"

	"specbtree/internal/tuple"
)

// TestConcurrentDisjointInserts partitions an ordered key space across
// goroutines — the paper's NUMA-friendly Figure 4c setup.
func TestConcurrentDisjointInserts(t *testing.T) {
	tr := New(2, Options{Capacity: 4})
	workers := 8
	perW := 3000
	if testing.Short() {
		perW = 500
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := NewHints()
			base := uint64(w * perW)
			for i := 0; i < perW; i++ {
				if !tr.InsertHint(tuple.Tuple{base + uint64(i), 0}, h) {
					t.Errorf("disjoint insert reported duplicate")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Len(); got != workers*perW {
		t.Fatalf("Len = %d, want %d", got, workers*perW)
	}
	for i := 0; i < workers*perW; i++ {
		if !tr.Contains(tuple.Tuple{uint64(i), 0}) {
			t.Fatalf("element %d missing", i)
		}
	}
}

// TestConcurrentOverlappingInserts has every goroutine insert the same
// values, maximising duplicate detection races and split contention.
func TestConcurrentOverlappingInserts(t *testing.T) {
	tr := New(1, Options{Capacity: 3})
	workers := 8
	n := 2000
	if testing.Short() {
		n = 400
	}
	fresh := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := NewHints()
			for i := 0; i < n; i++ {
				if tr.InsertHint(tuple.Tuple{uint64(i)}, h) {
					fresh[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, f := range fresh {
		total += f
	}
	if total != n {
		t.Fatalf("exactly-once insertion violated: %d fresh inserts of %d distinct values", total, n)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
}

// TestConcurrentRandomInserts mixes random tuples from all goroutines —
// the Figure 4b/4d workload — and validates against a merged model.
func TestConcurrentRandomInserts(t *testing.T) {
	tr := New(2, Options{Capacity: 8})
	workers := 8
	perW := 2500
	if testing.Short() {
		perW = 400
	}
	inputs := make([][]tuple.Tuple, workers)
	for w := range inputs {
		inputs[w] = randTuples(perW, 2, 300, int64(1000+w))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := NewHints()
			for _, tp := range inputs[w] {
				tr.InsertHint(tp, h)
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	model := map[[2]uint64]bool{}
	for _, in := range inputs {
		for _, tp := range in {
			model[[2]uint64{tp[0], tp[1]}] = true
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", tr.Len(), len(model))
	}
	for k := range model {
		if !tr.Contains(tuple.Tuple{k[0], k[1]}) {
			t.Fatalf("%v missing", k)
		}
	}
	// And nothing extra.
	count := 0
	tr.All(func(tp tuple.Tuple) bool {
		if !model[[2]uint64{tp[0], tp[1]}] {
			t.Errorf("phantom tuple %v", tp)
			return false
		}
		count++
		return true
	})
	if count != len(model) {
		t.Fatalf("scan visited %d, want %d", count, len(model))
	}
}

// TestConcurrentReadersDuringWrites exercises the read-potential-write
// protocol: reader goroutines issue Contains/bounds on a prefix of the key
// space that is already stable while writers extend the suffix.
func TestConcurrentReadersDuringWrites(t *testing.T) {
	tr := New(1, Options{Capacity: 4})
	const stable = 2000
	for i := 0; i < stable; i++ {
		tr.Insert(tuple.Tuple{uint64(i)})
	}
	extra := 4000
	if testing.Short() {
		extra = 800
	}
	var wg sync.WaitGroup
	// Writers extend beyond the stable prefix.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := NewHints()
			for i := w; i < extra; i += 4 {
				tr.InsertHint(tuple.Tuple{uint64(stable + i)}, h)
			}
		}(w)
	}
	// Readers must always see the stable prefix intact.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			h := NewHints()
			for pass := 0; pass < 4; pass++ {
				for i := r; i < stable; i += 4 {
					if !tr.ContainsHint(tuple.Tuple{uint64(i)}, h) {
						t.Errorf("stable element %d vanished during concurrent writes", i)
						return
					}
					if tr.ContainsHint(tuple.Tuple{uint64(stable + extra + i)}, h) {
						t.Errorf("phantom element appeared")
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != stable+extra {
		t.Fatalf("Len = %d, want %d", tr.Len(), stable+extra)
	}
}

// TestConcurrentBoundsDuringWrites races bound queries over the stable
// prefix against writers in the suffix.
func TestConcurrentBoundsDuringWrites(t *testing.T) {
	tr := New(1, Options{Capacity: 4})
	const stable = 1000
	for i := 0; i < stable; i++ {
		tr.Insert(tuple.Tuple{uint64(2 * i)}) // evens
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				tr.Insert(tuple.Tuple{uint64(2*stable+2*i) + uint64Bit(w)})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 2; pass++ {
				for i := 0; i < stable-1; i++ {
					c := tr.LowerBound(tuple.Tuple{uint64(2*i + 1)})
					if !c.Valid() {
						t.Errorf("lower bound in stable region invalid")
						return
					}
					if got := c.Tuple()[0]; got != uint64(2*i+2) {
						t.Errorf("LowerBound(%d) = %d, want %d", 2*i+1, got, 2*i+2)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func uint64Bit(w int) uint64 {
	if w == 0 {
		return 0
	}
	return 1
}

// TestConcurrentRootRace makes many goroutines race to create the root of
// an empty tree.
func TestConcurrentRootRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		tr := New(1)
		var wg sync.WaitGroup
		workers := runtime.GOMAXPROCS(0) * 2
		if workers < 4 {
			workers = 4
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				tr.Insert(tuple.Tuple{uint64(w)})
			}(w)
		}
		wg.Wait()
		if err := tr.Check(); err != nil {
			t.Fatal(err)
		}
		if tr.Len() != workers {
			t.Fatalf("round %d: Len = %d, want %d", round, tr.Len(), workers)
		}
	}
}

// TestConcurrentMixedHintReuse keeps goroutine-local hints hot across a
// mixed insert/lookup workload with heavy locality.
func TestConcurrentMixedHintReuse(t *testing.T) {
	tr := New(2, Options{Capacity: 4})
	var wg sync.WaitGroup
	iters := 3000
	if testing.Short() {
		iters = 500
	}
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := NewHints()
			base := uint64(w * 1000)
			for i := 0; i < iters; i++ {
				tp := tuple.Tuple{base + uint64(i%97), uint64(i % 13)}
				tr.InsertHint(tp, h)
				if !tr.ContainsHint(tp, h) {
					t.Errorf("just-inserted %v missing", tp)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}
