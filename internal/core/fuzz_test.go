package core

import (
	"testing"

	"specbtree/internal/tuple"
)

// FuzzTreeOps drives the tree with an arbitrary operation/value stream and
// cross-checks every result against a map model, then validates the
// structural invariants. Run with `go test -fuzz FuzzTreeOps`.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(4))
	f.Add([]byte{0, 0, 0, 1, 1, 1, 255, 254, 253}, uint8(16))
	f.Fuzz(func(t *testing.T, stream []byte, capRaw uint8) {
		capacity := 3 + int(capRaw%30)
		tr := New(1, Options{Capacity: capacity})
		model := map[uint64]bool{}
		h := NewHints()
		for i := 0; i+1 < len(stream); i += 2 {
			op := stream[i] % 4
			v := tuple.Tuple{uint64(stream[i+1])}
			switch op {
			case 0:
				if got, want := tr.Insert(v), !model[v[0]]; got != want {
					t.Fatalf("Insert(%v) = %v, want %v", v, got, want)
				}
				model[v[0]] = true
			case 1:
				if got, want := tr.InsertHint(v, h), !model[v[0]]; got != want {
					t.Fatalf("InsertHint(%v) = %v, want %v", v, got, want)
				}
				model[v[0]] = true
			case 2:
				if got := tr.Contains(v); got != model[v[0]] {
					t.Fatalf("Contains(%v) = %v", v, got)
				}
			case 3:
				if got := tr.ContainsHint(v, h); got != model[v[0]] {
					t.Fatalf("ContainsHint(%v) = %v", v, got)
				}
			}
		}
		if err := tr.Check(); err != nil {
			t.Fatal(err)
		}
		if tr.Len() != len(model) {
			t.Fatalf("Len = %d, model %d", tr.Len(), len(model))
		}
	})
}
