package core

import (
	"math/rand"
	"sync"
	"testing"

	"specbtree/internal/tuple"
)

// collectSnap drains a snapshot into a slice via its cursor.
func collectSnap(s Snapshot) []tuple.Tuple {
	var out []tuple.Tuple
	s.All(func(tp tuple.Tuple) bool {
		out = append(out, tp.Clone())
		return true
	})
	return out
}

func tuplesEqual(a, b []tuple.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !tuple.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func TestSnapshotEmpty(t *testing.T) {
	tr := New(2)
	s := tr.Snapshot()
	if !s.Empty() || s.Len() != 0 {
		t.Errorf("empty snapshot: Empty=%v Len=%d", s.Empty(), s.Len())
	}
	if s.Contains(tuple.Tuple{1, 2}) {
		t.Error("empty snapshot contains a tuple")
	}
	if c := s.Cursor(); c.Valid() {
		t.Error("cursor on empty snapshot is valid")
	}
	if c := s.LowerBound(tuple.Tuple{0, 0}); c.Valid() {
		t.Error("lower bound on empty snapshot is valid")
	}
	var zero Snapshot
	if !zero.Empty() || zero.Len() != 0 {
		t.Error("zero Snapshot is not empty")
	}
}

// TestSnapshotIsolation is the core MVCC contract: a snapshot taken
// mid-stream sees exactly the tuples inserted before it, none after.
func TestSnapshotIsolation(t *testing.T) {
	tr := New(2, Options{Capacity: 4}) // small nodes force deep trees
	before := randTuples(2000, 2, 500, 1)
	for _, tp := range before {
		tr.Insert(tp)
	}
	want := sortedUnique(before)

	s := tr.Snapshot()

	after := randTuples(2000, 2, 500, 2)
	for _, tp := range after {
		tr.Insert(tp)
	}

	if got := s.Len(); got != len(want) {
		t.Fatalf("snapshot Len = %d, want %d", got, len(want))
	}
	if got := collectSnap(s); !tuplesEqual(got, want) {
		t.Fatalf("snapshot iteration diverged from frozen reference (%d vs %d tuples)", len(got), len(want))
	}
	for _, tp := range want {
		if !s.Contains(tp) {
			t.Fatalf("snapshot lost pre-epoch tuple %v", tp)
		}
	}
	// No in-flight-epoch tuple may leak in.
	inSnap := make(map[[2]uint64]bool, len(want))
	for _, tp := range want {
		inSnap[[2]uint64{tp[0], tp[1]}] = true
	}
	for _, tp := range after {
		if !inSnap[[2]uint64{tp[0], tp[1]}] && s.Contains(tp) {
			t.Fatalf("snapshot sees current-epoch tuple %v", tp)
		}
	}
	// The live tree still has everything.
	liveWant := sortedUnique(append(append([]tuple.Tuple{}, before...), after...))
	if got := collect(tr); !tuplesEqual(got, liveWant) {
		t.Fatalf("live tree diverged after cow: %d tuples, want %d", len(got), len(liveWant))
	}
}

// TestSnapshotBounds checks snapshot bound cursors against the live
// tree's answers on the identical tuple set.
func TestSnapshotBounds(t *testing.T) {
	tr := New(1, Options{Capacity: 4})
	for i := uint64(0); i < 500; i++ {
		tr.Insert(tuple.Tuple{i * 3}) // 0, 3, 6, ...
	}
	s := tr.Snapshot()
	// Mutate the live tree so any accidental live read would differ.
	for i := uint64(0); i < 500; i++ {
		tr.Insert(tuple.Tuple{i*3 + 1})
	}
	for probe := uint64(0); probe < 1520; probe += 7 {
		v := tuple.Tuple{probe}
		for _, strict := range []bool{false, true} {
			var want uint64
			var wantOK bool
			if strict {
				want, wantOK = (probe/3+1)*3, (probe/3+1)*3 < 1500
			} else {
				want = (probe + 2) / 3 * 3
				wantOK = want < 1500
			}
			c := s.bound(v, strict)
			if c.Valid() != wantOK {
				t.Fatalf("bound(%d, strict=%v): valid=%v, want %v", probe, strict, c.Valid(), wantOK)
			}
			if wantOK {
				if got := c.Tuple()[0]; got != want {
					t.Fatalf("bound(%d, strict=%v) = %d, want %d", probe, strict, got, want)
				}
			}
		}
	}
	// Scan a half-open window and compare against the arithmetic answer.
	var got []uint64
	s.Scan(tuple.Tuple{100}, tuple.Tuple{200}, func(tp tuple.Tuple) bool {
		got = append(got, tp[0])
		return true
	})
	var want []uint64
	for v := uint64(102); v < 200; v += 3 {
		want = append(want, v)
	}
	if len(got) != len(want) {
		t.Fatalf("Scan[100,200) yielded %d tuples, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Scan[100,200)[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestSnapshotStacked takes several snapshots between insert waves and
// verifies each one still answers from its own epoch at the end.
func TestSnapshotStacked(t *testing.T) {
	tr := New(2, Options{Capacity: 4})
	const waves = 5
	var snaps []Snapshot
	var refs [][]tuple.Tuple
	var all []tuple.Tuple
	for w := 0; w < waves; w++ {
		wave := randTuples(400, 2, 300, int64(10+w))
		for _, tp := range wave {
			tr.Insert(tp)
		}
		all = append(all, wave...)
		snaps = append(snaps, tr.Snapshot())
		refs = append(refs, sortedUnique(all))
	}
	for w := range snaps {
		if got := collectSnap(snaps[w]); !tuplesEqual(got, refs[w]) {
			t.Fatalf("snapshot %d diverged from its frozen reference (%d vs %d tuples)", w, len(got), len(refs[w]))
		}
	}
}

// TestSnapshotConcurrentWriters races snapshot readers against live
// writers: the snapshot must keep answering exactly its frozen reference
// while inserts split and copy-on-write the tree underneath it. Run with
// -race to check the no-synchronisation claim of the frozen subtree.
func TestSnapshotConcurrentWriters(t *testing.T) {
	tr := New(2, Options{Capacity: 4})
	before := randTuples(1500, 2, 400, 42)
	for _, tp := range before {
		tr.Insert(tp)
	}
	want := sortedUnique(before)

	s := tr.Snapshot()

	const writers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			h := NewHints()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tr.InsertHint(tuple.Tuple{uint64(rng.Int63n(400)), uint64(rng.Int63n(400))}, h)
			}
		}(int64(100 + w))
	}

	for round := 0; round < 20; round++ {
		if got := collectSnap(s); !tuplesEqual(got, want) {
			close(stop)
			wg.Wait()
			t.Fatalf("round %d: snapshot diverged from frozen reference (%d vs %d tuples)", round, len(got), len(want))
		}
		for _, tp := range want[:50] {
			if !s.Contains(tp) {
				close(stop)
				wg.Wait()
				t.Fatalf("round %d: snapshot lost %v under concurrent writers", round, tp)
			}
		}
	}
	close(stop)
	wg.Wait()

	// After the dust settles the live tree must contain every pre-epoch
	// tuple (cow must not drop elements while cloning paths).
	for _, tp := range want {
		if !tr.Contains(tp) {
			t.Fatalf("live tree lost pre-epoch tuple %v after cow", tp)
		}
	}
}

// TestSnapshotHintAcrossEpoch drives hinted inserts and reads across a
// snapshot boundary: hints cached before the epoch point at nodes that
// get retired by cow, and the hinted fast paths must treat those as
// misses rather than answer from a stale clone source.
func TestSnapshotHintAcrossEpoch(t *testing.T) {
	tr := New(1, Options{Capacity: 4})
	h := NewHints()
	for i := uint64(0); i < 300; i++ {
		tr.InsertHint(tuple.Tuple{i * 2}, h)
	}
	_ = tr.Snapshot()
	// The cached leaves are now frozen; hinted operations must still be
	// correct (miss + full descent, or cow on the write path).
	for i := uint64(0); i < 300; i++ {
		if !tr.ContainsHint(tuple.Tuple{i * 2}, h) {
			t.Fatalf("hinted contains lost %d after epoch", i*2)
		}
		if tr.InsertHint(tuple.Tuple{i * 2}, h) {
			t.Fatalf("hinted insert re-inserted %d after epoch", i*2)
		}
		if !tr.InsertHint(tuple.Tuple{i*2 + 1}, h) {
			t.Fatalf("hinted insert dropped %d after epoch", i*2+1)
		}
		if c := tr.LowerBoundHint(tuple.Tuple{i * 2}, h); !c.Valid() || c.Tuple()[0] != i*2 {
			t.Fatalf("hinted lower bound wrong at %d after epoch", i*2)
		}
	}
	if got, want := tr.Len(), 600; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
}

// TestSnapshotExportRange checks the rebalance-handoff contract:
// ExportRange yields exactly the in-range tuples, sorted and owned,
// and the result bulk-loads via BuildFromSorted into an equal subtree.
func TestSnapshotExportRange(t *testing.T) {
	tr := New(2)
	rng := rand.New(rand.NewSource(7))
	seen := map[[2]uint64]bool{}
	for i := 0; i < 500; i++ {
		tp := tuple.Tuple{uint64(rng.Intn(100)), uint64(rng.Intn(100))}
		tr.Insert(tp)
		seen[[2]uint64{tp[0], tp[1]}] = true
	}
	s := tr.Snapshot()
	lo, hi := tuple.Tuple{25, 0}, tuple.Tuple{75, 0}
	got := s.ExportRange(lo, hi)
	want := 0
	for k := range seen {
		if k[0] >= 25 && k[0] < 75 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("exported %d tuples, want %d", len(got), want)
	}
	for i, tp := range got {
		if tuple.Compare(tp, lo) < 0 || tuple.Compare(tp, hi) >= 0 {
			t.Fatalf("exported out-of-range tuple %v", tp)
		}
		if i > 0 && tuple.Compare(got[i-1], tp) >= 0 {
			t.Fatalf("export not strictly increasing at %d: %v then %v", i, got[i-1], tp)
		}
	}
	// The export is owned, not aliased into a scan buffer.
	if len(got) >= 2 && &got[0][0] == &got[1][0] {
		t.Fatal("exported tuples alias one buffer")
	}
	dst := New(2)
	dst.BuildFromSorted(got)
	if dst.Len() != want {
		t.Fatalf("bulk-loaded tree has %d tuples, want %d", dst.Len(), want)
	}
	for _, tp := range got {
		if !dst.Contains(tp) {
			t.Fatalf("bulk-loaded tree missing %v", tp)
		}
	}
	// Full-range export equals the snapshot contents.
	if all := s.ExportRange(nil, nil); !tuplesEqual(all, collectSnap(s)) {
		t.Fatal("full-range export differs from snapshot contents")
	}
}
