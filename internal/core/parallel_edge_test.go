package core

import (
	"testing"

	"specbtree/internal/tuple"
)

// assertSameContents fails unless got holds exactly the elements of
// want, in order.
func assertSameContents(t *testing.T, label string, got, want []tuple.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d elements, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !tuple.Equal(got[i], want[i]) {
			t.Fatalf("%s: element %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestParallelInsertAllSingleKeySource: a one-element source must merge
// correctly under every worker count — the partitioner has no split
// points at all — both into an empty destination (bulk-load fast path)
// and into a populated one.
func TestParallelInsertAllSingleKeySource(t *testing.T) {
	src := New(1)
	src.Insert(tuple.Tuple{42})

	for _, workers := range []int{1, 2, 3, 8} {
		empty := New(1)
		empty.ParallelInsertAll(src, workers)
		if err := empty.Check(); err != nil {
			t.Fatalf("workers=%d empty dst: %v", workers, err)
		}
		if empty.Len() != 1 || !empty.Contains(tuple.Tuple{42}) {
			t.Fatalf("workers=%d empty dst: Len=%d", workers, empty.Len())
		}

		full := New(1, Options{Capacity: 4})
		for i := 0; i < 100; i++ {
			full.Insert(tuple.Tuple{uint64(i)})
		}
		full.ParallelInsertAll(src, workers)
		if err := full.Check(); err != nil {
			t.Fatalf("workers=%d full dst: %v", workers, err)
		}
		if full.Len() != 100 { // 42 was already present
			t.Fatalf("workers=%d full dst: Len=%d, want 100", workers, full.Len())
		}
	}
}

// TestParallelInsertAllDuplicateHeavy merges a source that overlaps the
// destination almost entirely — the dominant shape in semi-naïve
// evaluation, where each delta re-derives mostly known tuples. The
// result must be the exact set union for every worker count, including
// worker counts that do not divide the source evenly.
func TestParallelInsertAllDuplicateHeavy(t *testing.T) {
	const n = 3000
	src := New(2, Options{Capacity: 8})
	for i := 0; i < n; i++ {
		src.Insert(tuple.Tuple{uint64(i % 60), uint64(i % 50)})
	}

	build := func(workers int) []tuple.Tuple {
		dst := New(2, Options{Capacity: 8})
		// Destination already holds ~everything except a sliver.
		for i := 0; i < n; i++ {
			if i%97 != 0 {
				dst.Insert(tuple.Tuple{uint64(i % 60), uint64(i % 50)})
			}
		}
		dst.ParallelInsertAll(src, workers)
		if err := dst.Check(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return collect(dst)
	}

	want := build(1)
	if len(want) != src.Len() {
		t.Fatalf("union size %d, want %d (source is a superset)", len(want), src.Len())
	}
	for _, workers := range []int{2, 3, 8} {
		assertSameContents(t, "duplicate-heavy", build(workers), want)
	}
}

// TestParallelInsertAllSubsetSource: when every source tuple is already
// in the destination the merge must be a pure no-op on contents, for
// sequential and parallel geometry alike.
func TestParallelInsertAllSubsetSource(t *testing.T) {
	dst := New(1, Options{Capacity: 4})
	for i := 0; i < 400; i++ {
		dst.Insert(tuple.Tuple{uint64(i)})
	}
	src := New(1, Options{Capacity: 4})
	for i := 100; i < 200; i++ {
		src.Insert(tuple.Tuple{uint64(i)})
	}
	want := collect(dst)
	for _, workers := range []int{1, 3, 8} {
		dst.ParallelInsertAll(src, workers)
		if err := dst.Check(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertSameContents(t, "subset source", collect(dst), want)
	}
}

// TestParallelInsertAllNonPositiveWorkers: workers <= 1 must degrade to
// the sequential merge, not panic or drop elements.
func TestParallelInsertAllNonPositiveWorkers(t *testing.T) {
	for _, workers := range []int{0, -1, 1} {
		src := New(1)
		for i := 0; i < 50; i++ {
			src.Insert(tuple.Tuple{uint64(i)})
		}
		dst := New(1)
		dst.Insert(tuple.Tuple{1000})
		dst.ParallelInsertAll(src, workers)
		if err := dst.Check(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if dst.Len() != 51 {
			t.Fatalf("workers=%d: Len=%d, want 51", workers, dst.Len())
		}
	}
}
