package core

import (
	"testing"
	"testing/quick"

	"specbtree/internal/tuple"
)

func TestInsertAllIntoEmpty(t *testing.T) {
	src := New(2, Options{Capacity: 4})
	for i := 0; i < 2500; i++ {
		src.Insert(tuple.Tuple{uint64(i % 50), uint64(i / 50)})
	}
	dst := New(2, Options{Capacity: 4})
	dst.InsertAll(src)
	if err := dst.Check(); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != src.Len() {
		t.Fatalf("Len = %d, want %d", dst.Len(), src.Len())
	}
	// Packed bulk load should produce a denser tree than random inserts.
	if fill := dst.Shape().Fill; fill < 0.8 {
		t.Errorf("bulk-loaded fill grade %.2f, want dense packing", fill)
	}
	got, want := collect(dst), collect(src)
	for i := range want {
		if !tuple.Equal(got[i], want[i]) {
			t.Fatalf("element %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestInsertAllMergesOverlap(t *testing.T) {
	a := New(1, Options{Capacity: 4})
	b := New(1, Options{Capacity: 4})
	for i := 0; i < 1200; i++ {
		a.Insert(tuple.Tuple{uint64(2 * i)}) // evens
		b.Insert(tuple.Tuple{uint64(3 * i)}) // multiples of 3
	}
	a.InsertAll(b)
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	model := map[uint64]bool{}
	for i := 0; i < 1200; i++ {
		model[uint64(2*i)] = true
		model[uint64(3*i)] = true
	}
	if a.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", a.Len(), len(model))
	}
	for k := range model {
		if !a.Contains(tuple.Tuple{k}) {
			t.Fatalf("%d missing after merge", k)
		}
	}
}

func TestInsertAllEmptySources(t *testing.T) {
	dst := New(1)
	src := New(1)
	dst.InsertAll(src) // empty into empty
	if !dst.Empty() {
		t.Error("empty merge produced elements")
	}
	dst.Insert(tuple.Tuple{1})
	dst.InsertAll(src) // empty into non-empty
	if dst.Len() != 1 {
		t.Error("empty merge changed destination")
	}
}

func TestBuildFromSorted(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 15, 16, 17, 100, 1000, 4096} {
		for _, capacity := range []int{3, 4, 16} {
			tr := New(1, Options{Capacity: capacity})
			sorted := make([]tuple.Tuple, n)
			for i := range sorted {
				sorted[i] = tuple.Tuple{uint64(i * 2)}
			}
			tr.BuildFromSorted(sorted)
			if err := tr.Check(); err != nil {
				t.Fatalf("n=%d capacity=%d: %v", n, capacity, err)
			}
			if tr.Len() != n {
				t.Fatalf("n=%d capacity=%d: Len = %d", n, capacity, tr.Len())
			}
			for i := 0; i < n; i++ {
				if !tr.Contains(tuple.Tuple{uint64(i * 2)}) {
					t.Fatalf("n=%d capacity=%d: element %d missing", n, capacity, i)
				}
			}
			// Inserts after a bulk load must keep working.
			tr.Insert(tuple.Tuple{1})
			if err := tr.Check(); err != nil {
				t.Fatalf("n=%d capacity=%d after insert: %v", n, capacity, err)
			}
		}
	}
}

func TestBuildFromSortedPanicsOnNonEmpty(t *testing.T) {
	tr := New(1)
	tr.Insert(tuple.Tuple{1})
	defer func() {
		if recover() == nil {
			t.Error("BuildFromSorted on non-empty tree did not panic")
		}
	}()
	tr.BuildFromSorted([]tuple.Tuple{{2}})
}

// TestBuildPackedProperty: any size and capacity produce a valid tree
// with exactly the input elements.
func TestBuildPackedProperty(t *testing.T) {
	f := func(nRaw uint16, capRaw uint8) bool {
		n := int(nRaw % 2048)
		capacity := 3 + int(capRaw%30)
		tr := New(1, Options{Capacity: capacity})
		sorted := make([]tuple.Tuple, n)
		for i := range sorted {
			sorted[i] = tuple.Tuple{uint64(i)}
		}
		tr.BuildFromSorted(sorted)
		if tr.Check() != nil || tr.Len() != n {
			return false
		}
		i := 0
		ok := true
		tr.All(func(tp tuple.Tuple) bool {
			if tp[0] != uint64(i) {
				ok = false
				return false
			}
			i++
			return true
		})
		return ok && i == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeProperty: merging two random trees equals the set union.
func TestMergeProperty(t *testing.T) {
	f := func(seedA, seedB int64, nA, nB uint16) bool {
		a := New(2, Options{Capacity: 5})
		b := New(2, Options{Capacity: 5})
		model := map[[2]uint64]bool{}
		for _, tp := range randTuples(int(nA%800), 2, 50, seedA) {
			a.Insert(tp)
			model[[2]uint64{tp[0], tp[1]}] = true
		}
		for _, tp := range randTuples(int(nB%800), 2, 50, seedB) {
			b.Insert(tp)
			model[[2]uint64{tp[0], tp[1]}] = true
		}
		a.InsertAll(b)
		if a.Check() != nil || a.Len() != len(model) {
			return false
		}
		for k := range model {
			if !a.Contains(tuple.Tuple{k[0], k[1]}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
