package core_test

import (
	"fmt"

	"specbtree/internal/core"
	"specbtree/internal/tuple"
)

// The basic set interface: insert, membership, ordered range scan.
func Example() {
	tree := core.New(2)
	tree.Insert(tuple.Tuple{1, 2})
	tree.Insert(tuple.Tuple{1, 5})
	tree.Insert(tuple.Tuple{2, 0})
	tree.Insert(tuple.Tuple{1, 2}) // duplicate, ignored

	fmt.Println("size:", tree.Len())
	fmt.Println("has (1,5):", tree.Contains(tuple.Tuple{1, 5}))

	// All tuples with first column 1, in order.
	tree.Range(tuple.Tuple{1, 0}, tuple.Tuple{2, 0}, func(t tuple.Tuple) bool {
		fmt.Println(t)
		return true
	})
	// Output:
	// size: 3
	// has (1,5): true
	// (1, 2)
	// (1, 5)
}

// Operation hints cache the last leaf a worker touched; consecutive
// operations on nearby tuples skip the tree descent (paper §3.2).
func Example_hints() {
	tree := core.New(2)
	for i := uint64(0); i < 1000; i++ {
		tree.Insert(tuple.Tuple{i, 0})
	}

	hints := core.NewHints() // one per goroutine
	tree.InsertHint(tuple.Tuple{7, 10}, hints)
	tree.InsertHint(tuple.Tuple{7, 4}, hints) // same leaf: a hint hit

	fmt.Println("hits:", hints.Stats.InsertHits)
	// Output:
	// hits: 1
}

// Cursors iterate from any bound position.
func Example_cursor() {
	tree := core.New(1)
	for _, v := range []uint64{10, 20, 30, 40} {
		tree.Insert(tuple.Tuple{v})
	}
	for c := tree.LowerBound(tuple.Tuple{15}); c.Valid(); c.Next() {
		fmt.Println(c.Tuple())
	}
	// Output:
	// (20)
	// (30)
	// (40)
}
