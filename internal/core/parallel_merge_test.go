package core

import (
	"testing"

	"specbtree/internal/tuple"
)

// TestParallelInsertAllDeterministic: the merged contents must be
// byte-identical regardless of the worker count — the merge is a set
// union, so partition geometry must not leak into the result.
func TestParallelInsertAllDeterministic(t *testing.T) {
	const (
		srcN  = 30_000
		baseN = 20_000
	)
	src := New(2, Options{Capacity: 16})
	for _, tp := range randTuples(srcN, 2, 400, 7) {
		src.Insert(tp)
	}
	base := randTuples(baseN, 2, 400, 11)

	build := func(workers int) *Tree {
		dst := New(2, Options{Capacity: 16})
		for _, tp := range base {
			dst.Insert(tp)
		}
		dst.ParallelInsertAll(src, workers)
		if err := dst.Check(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return dst
	}

	want := collect(build(1))
	for _, workers := range []int{2, 8} {
		got := collect(build(workers))
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d elements, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if !tuple.Equal(got[i], want[i]) {
				t.Fatalf("workers=%d element %d: %v != %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestParallelInsertAllEdgeCases covers the fast paths: empty source,
// empty destination (bulk load), tiny source (no split points), and
// worker counts exceeding the source size.
func TestParallelInsertAllEdgeCases(t *testing.T) {
	// Empty source: no-op.
	dst := New(1)
	dst.Insert(tuple.Tuple{1})
	dst.ParallelInsertAll(New(1), 8)
	if dst.Len() != 1 {
		t.Fatalf("empty-source merge changed destination: Len = %d", dst.Len())
	}

	// Empty destination: bulk-load fast path, any worker count.
	src := New(1, Options{Capacity: 4})
	for i := 0; i < 500; i++ {
		src.Insert(tuple.Tuple{uint64(i)})
	}
	dst = New(1, Options{Capacity: 4})
	dst.ParallelInsertAll(src, 8)
	if err := dst.Check(); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 500 {
		t.Fatalf("bulk path Len = %d, want 500", dst.Len())
	}

	// Tiny source into a non-empty destination with more workers than
	// elements: falls back to the sequential hinted path.
	tiny := New(1)
	tiny.Insert(tuple.Tuple{1000})
	tiny.Insert(tuple.Tuple{1001})
	dst.ParallelInsertAll(tiny, 64)
	if err := dst.Check(); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 502 {
		t.Fatalf("tiny merge Len = %d, want 502", dst.Len())
	}
}

// TestBuildPackedAllocs pins the allocation profile of the bulk-load
// path: rows live in one flat arena addressed by index, so the build
// allocates per node, not per row. The pre-arena code allocated one
// []uint64 per row (>= n allocations); the budget below is far under n
// and fails if per-row allocation creeps back in.
func TestBuildPackedAllocs(t *testing.T) {
	const n = 4096
	sorted := make([]tuple.Tuple, n)
	for i := range sorted {
		sorted[i] = tuple.Tuple{uint64(i), uint64(i)}
	}
	allocs := testing.AllocsPerRun(5, func() {
		tr := New(2, Options{Capacity: 16})
		tr.BuildFromSorted(sorted)
	})
	// ~2-3 allocations per node (struct + key arena + child array), ~300
	// nodes at capacity 16 — leave headroom, but stay well under one
	// allocation per row.
	if allocs > n/2 {
		t.Fatalf("BuildFromSorted(%d rows) did %.0f allocations; want < %d (no per-row allocation)", n, allocs, n/2)
	}
}
