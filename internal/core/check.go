package core

import (
	"fmt"

	"specbtree/internal/tuple"
)

// Check validates the structural invariants of the tree and returns the
// first violation found, or nil. It is intended for tests and must only
// run while no writer is active (read phase):
//
//   - element counts are within [1, capacity] (root may be empty only in
//     an empty tree);
//   - elements within each node are strictly increasing;
//   - all elements of child i lie strictly between the separators i-1 and
//     i of the parent;
//   - parent pointers and positions are consistent;
//   - all leaves are at the same depth;
//   - no lock is left write-locked.
func (t *Tree) Check() error {
	root := t.root.Load()
	if root == nil {
		return nil
	}
	if t.rootLock.IsWriteLocked() {
		return fmt.Errorf("core: root lock left write-locked")
	}
	if root.parent.Load() != nil {
		return fmt.Errorf("core: root has a parent")
	}
	if root.count.Load() == 0 {
		if root.inner {
			return fmt.Errorf("core: empty inner root")
		}
		return nil
	}
	depth := -1
	return t.checkNode(root, nil, nil, 0, &depth)
}

func (t *Tree) checkNode(n *node, lo, hi tuple.Tuple, level int, leafDepth *int) error {
	cnt := int(n.count.Load())
	if cnt < 1 || cnt > t.capacity {
		return fmt.Errorf("core: node at level %d has count %d (capacity %d)", level, cnt, t.capacity)
	}
	if n.lock.IsWriteLocked() {
		return fmt.Errorf("core: node at level %d left write-locked", level)
	}

	prev := make(tuple.Tuple, t.arity)
	cur := make(tuple.Tuple, t.arity)
	for i := 0; i < cnt; i++ {
		n.loadRow(i, t.arity, cur)
		if i > 0 && tuple.Compare(prev, cur) >= 0 {
			return fmt.Errorf("core: node at level %d not strictly increasing at index %d: %v >= %v", level, i, prev, cur)
		}
		if lo != nil && tuple.Compare(cur, lo) <= 0 {
			return fmt.Errorf("core: element %v at level %d violates lower separator %v", cur, level, lo)
		}
		if hi != nil && tuple.Compare(cur, hi) >= 0 {
			return fmt.Errorf("core: element %v at level %d violates upper separator %v", cur, level, hi)
		}
		prev, cur = cur, prev
	}

	if !n.inner {
		if *leafDepth == -1 {
			*leafDepth = level
		} else if *leafDepth != level {
			return fmt.Errorf("core: leaf at depth %d, expected %d", level, *leafDepth)
		}
		return nil
	}

	for i := 0; i <= cnt; i++ {
		child := n.children[i].Load()
		if child == nil {
			return fmt.Errorf("core: nil child %d at level %d", i, level)
		}
		if child.parent.Load() != n {
			return fmt.Errorf("core: child %d at level %d has wrong parent pointer", i, level)
		}
		if int(child.pos.Load()) != i {
			return fmt.Errorf("core: child %d at level %d has pos %d", i, level, child.pos.Load())
		}
		var clo, chi tuple.Tuple
		if i > 0 {
			clo = make(tuple.Tuple, t.arity)
			n.loadRow(i-1, t.arity, clo)
		} else {
			clo = lo
		}
		if i < cnt {
			chi = make(tuple.Tuple, t.arity)
			n.loadRow(i, t.arity, chi)
		} else {
			chi = hi
		}
		if err := t.checkNode(child, clo, chi, level+1, leafDepth); err != nil {
			return err
		}
	}
	return nil
}
