// Package check is the standing concurrent-correctness harness for the
// relation providers. It has two pillars:
//
//  1. A differential oracle (oracle.go): a seeded, replayable randomized
//     workload driven against every provider in parallel phases that
//     mirror Datalog phase concurrency — a concurrent insert phase, a
//     barrier, then a concurrent contains/lower-bound/upper-bound/scan
//     phase — with every result cross-checked exactly against a
//     sequential reference model (model.go). On a mismatch the history
//     recorder captures the violation and the harness emits a minimized,
//     replayable trace (trace.go).
//
//  2. A fault-injection shim for the optimistic lock (package optlock,
//     "lockinject" build tag): probe points at lease acquisition,
//     validation, upgrade and abort let tests force validation failures,
//     delay version publication and insert scheduler yields at chosen
//     sites, so every retry/abort/restart path of the tree runs under
//     the race detector on demand instead of by scheduling luck. The
//     injection tests in this package (inject_test.go, tag-gated) assert
//     the optimistic protocol's restart machinery through the counters
//     of package obs, and prove the harness catches the PR 3
//     load-after-validate race deterministically when it is
//     reintroduced (core.LowerBoundRacy).
//
// Every future performance PR gets verified against this package: run
// `make check-harness` (short mode, both build flavours) or
// `go test ./internal/check` for the full-size oracle.
package check

import (
	"fmt"
	"strings"
	"sync"

	"specbtree/internal/tuple"
)

// Config sizes one oracle run. The zero value of any field selects the
// default below; Short selects the seed-sized variant wholesale.
type Config struct {
	// Seed is the master seed. Every random choice of the run — insert
	// streams, probe values, worker interleaving-sensitive ordering —
	// derives from it deterministically, so a failure report is replayed
	// by re-running with the printed seed.
	Seed int64
	// Workers is the number of concurrent goroutines per phase.
	Workers int
	// Rounds is the number of insert-phase/read-phase cycles.
	Rounds int
	// Inserts is the number of insertions per worker per round.
	Inserts int
	// Reads is the number of read probes per worker per round.
	Reads int
	// KeySpace is the exclusive upper bound of every generated tuple
	// word. Sized near Workers*Rounds*Inserts/2 the workload is
	// duplicate-heavy, which is what Datalog evaluation produces.
	KeySpace uint64
	// Short selects the seed-sized configuration: same shape, a fraction
	// of the volume, for the 1-CPU CI host's wall-time budget.
	Short bool
}

// withDefaults fills zero fields with the standard or short sizing.
func (c Config) withDefaults() Config {
	def := Config{Workers: 4, Rounds: 2, Inserts: 800, Reads: 150, KeySpace: 1200}
	if c.Short {
		def = Config{Workers: 2, Rounds: 2, Inserts: 220, Reads: 48, KeySpace: 360}
	}
	if c.Workers == 0 {
		c.Workers = def.Workers
	}
	if c.Rounds == 0 {
		c.Rounds = def.Rounds
	}
	if c.Inserts == 0 {
		c.Inserts = def.Inserts
	}
	if c.Reads == 0 {
		c.Reads = def.Reads
	}
	if c.KeySpace == 0 {
		c.KeySpace = def.KeySpace
	}
	return c
}

// Violation is one observed divergence between a provider and the
// reference model.
type Violation struct {
	// Target is the provider name.
	Target string
	// Round and Worker locate the divergence in the phase schedule.
	// Worker is -1 for whole-structure checks (scan, len, freshness).
	Round, Worker int
	// Op names the diverging operation: "contains", "lower_bound",
	// "upper_bound", "scan", "len" or "freshness".
	Op string
	// Arg is the probe argument, nil for whole-structure checks.
	Arg tuple.Tuple
	// Got and Want describe the divergence.
	Got, Want string
}

// String formats the violation for test logs.
func (v Violation) String() string {
	return fmt.Sprintf("%s round %d worker %d: %s(%v) = %s, want %s",
		v.Target, v.Round, v.Worker, v.Op, []uint64(v.Arg), v.Got, v.Want)
}

// maxViolations bounds how many violations one run records; a broken
// provider diverges on nearly every probe and one is enough to debug.
const maxViolations = 16

// recorder is the history recorder: it collects violations from all
// concurrently probing workers and trips the run's early-exit flag.
type recorder struct {
	mu         sync.Mutex
	target     string
	violations []Violation
	stopped    bool
}

// add records one violation; recording saturates at maxViolations, after
// which the run winds down (stop reports true).
func (r *recorder) add(v Violation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v.Target = r.target
	if len(r.violations) < maxViolations {
		r.violations = append(r.violations, v)
	}
	if len(r.violations) >= maxViolations {
		r.stopped = true
	}
}

// stop reports whether the run should wind down early.
func (r *recorder) stop() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stopped
}

// take returns the recorded violations.
func (r *recorder) take() []Violation {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.violations
}

// Report is the outcome of one oracle run against one provider.
type Report struct {
	// Target is the provider name, Arity the tuple width driven.
	Target string
	Arity  int
	// Config is the fully defaulted configuration, including the seed to
	// replay with.
	Config Config
	// FinalLen is the provider's element count after the last round.
	FinalLen int
	// Violations lists every recorded divergence (bounded).
	Violations []Violation
	// Trace is the minimized replayable trace for the first violation,
	// or a replay instruction when the divergence needs the concurrent
	// schedule to reproduce (see trace.go). Empty on a clean run.
	Trace string
}

// Failed reports whether the run observed any divergence.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// Summary renders the report for test logs: the replay seed, every
// violation, and the trace.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "target %s arity %d: %d violations (replay: seed=%d workers=%d rounds=%d inserts=%d reads=%d keyspace=%d)\n",
		r.Target, r.Arity, len(r.Violations), r.Config.Seed, r.Config.Workers,
		r.Config.Rounds, r.Config.Inserts, r.Config.Reads, r.Config.KeySpace)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	if r.Trace != "" {
		b.WriteString("trace:\n")
		b.WriteString(r.Trace)
	}
	return b.String()
}
