package check

// The streaming-vs-materializing differential: the third pillar of the
// harness, added with the streaming evaluator rewrite. Every evaluation
// strategy of the Datalog engine must derive exactly the same relations
// from the same program — the streaming evaluator (composed cursor
// iterators, comparison pushdown) against the materializing reference,
// across worker counts and providers (including the cursor-less
// providers that exercise the fallback iterator). Programs come from
// the seeded workload generators plus a fixed battery of edge programs
// (negation, repeated variables, wildcards, comparison chains, empty
// and contradictory ranges, cross products). A failure report carries
// the seed line to replay it.

import (
	"fmt"
	"sort"
	"strings"

	"specbtree/internal/datalog"
	"specbtree/internal/relation"
	"specbtree/internal/tuple"
	"specbtree/internal/workload"
)

// DatalogConfig sizes one differential run. Zero fields select the
// defaults below; Short selects the seed-sized variant for the 1-CPU CI
// host.
type DatalogConfig struct {
	// Seed drives the workload generators; a failure replays with the
	// printed seed.
	Seed int64
	// Size scales the generated workloads.
	Size int
	// Workers lists the worker counts every strategy runs under.
	Workers []int
	// Short selects the seed-sized configuration.
	Short bool
}

func (c DatalogConfig) withDefaults() DatalogConfig {
	if c.Size == 0 {
		if c.Short {
			c.Size = 48
		} else {
			c.Size = 96
		}
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 4}
	}
	return c
}

// DatalogViolation is one observed divergence of an evaluation arm from
// the materializing reference.
type DatalogViolation struct {
	Program  string
	Provider string
	Strategy string
	Workers  int
	Relation string
	Detail   string
}

func (v DatalogViolation) String() string {
	return fmt.Sprintf("%s [%s/%s/%dw] relation %s: %s",
		v.Program, v.Provider, v.Strategy, v.Workers, v.Relation, v.Detail)
}

// DatalogReport is the outcome of one differential run.
type DatalogReport struct {
	Config     DatalogConfig
	Programs   int
	Arms       int // evaluation arms compared against the reference
	Violations []DatalogViolation
}

// Failed reports whether any arm diverged.
func (r *DatalogReport) Failed() bool { return len(r.Violations) > 0 }

// Summary renders the report with the replay line.
func (r *DatalogReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "datalog differential: %d programs, %d arms, %d violations (replay: seed=%d size=%d workers=%v)\n",
		r.Programs, r.Arms, len(r.Violations), r.Config.Seed, r.Config.Size,
		r.Config.Workers)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return b.String()
}

// diffArm is one evaluation configuration compared against the reference.
type diffArm struct {
	provider string
	strategy datalog.EvalStrategy
	workers  int
}

// RunDatalogDiff evaluates every program under every (provider,
// strategy, workers) arm and cross-checks all declared relations
// against the single-worker materializing reference on the default
// B-tree provider.
func RunDatalogDiff(cfg DatalogConfig) DatalogReport {
	cfg = cfg.withDefaults()
	rep := DatalogReport{Config: cfg}

	programs := []workload.DatalogWorkload{
		workload.PointsTo(cfg.Size, cfg.Seed),
		workload.Security(cfg.Size+cfg.Size/2, cfg.Seed+1),
		workload.Selective(cfg.Size*4, cfg.Seed+2),
	}
	programs = append(programs, edgePrograms()...)
	rep.Programs = len(programs)

	var arms []diffArm
	for _, w := range cfg.Workers {
		for _, s := range []datalog.EvalStrategy{datalog.EvalStream, datalog.EvalStreamNoPushdown, datalog.EvalMaterialize} {
			arms = append(arms, diffArm{provider: "btree", strategy: s, workers: w})
		}
		// The hash provider has no ordered cursor: the streaming arm runs
		// through the fallback iterator and the chunked outer partitioning.
		arms = append(arms, diffArm{provider: "hashset", strategy: datalog.EvalStream, workers: w})
	}

	for _, prog := range programs {
		ref, err := evalDiffArm(prog, diffArm{provider: "btree", strategy: datalog.EvalMaterialize, workers: 1})
		if err != nil {
			rep.Violations = append(rep.Violations, DatalogViolation{
				Program: prog.Name, Provider: "btree", Strategy: "materialize", Workers: 1,
				Relation: "-", Detail: fmt.Sprintf("reference evaluation failed: %v", err),
			})
			continue
		}
		for _, arm := range arms {
			rep.Arms++
			got, err := evalDiffArm(prog, arm)
			if err != nil {
				rep.Violations = append(rep.Violations, DatalogViolation{
					Program: prog.Name, Provider: arm.provider, Strategy: arm.strategy.String(),
					Workers: arm.workers, Relation: "-", Detail: err.Error(),
				})
				continue
			}
			for rel, want := range ref {
				if detail := diffRelation(got[rel], want); detail != "" {
					rep.Violations = append(rep.Violations, DatalogViolation{
						Program: prog.Name, Provider: arm.provider, Strategy: arm.strategy.String(),
						Workers: arm.workers, Relation: rel, Detail: detail,
					})
				}
			}
		}
	}
	return rep
}

// evalDiffArm runs one program under one arm and dumps every declared
// relation as a sorted tuple list.
func evalDiffArm(w workload.DatalogWorkload, arm diffArm) (map[string][]string, error) {
	prog, err := datalog.Parse(w.Source)
	if err != nil {
		return nil, err
	}
	provider, err := relation.Lookup(arm.provider)
	if err != nil {
		return nil, err
	}
	eng, err := datalog.New(prog, datalog.Options{
		Provider: provider,
		Workers:  arm.workers,
		Strategy: arm.strategy,
	})
	if err != nil {
		return nil, err
	}
	for rel, facts := range w.Facts {
		if err := eng.AddFacts(rel, facts); err != nil {
			return nil, err
		}
	}
	if err := eng.Run(); err != nil {
		return nil, err
	}
	out := map[string][]string{}
	for _, d := range prog.Decls {
		var rows []string
		if err := eng.Scan(d.Name, func(t tuple.Tuple) bool {
			rows = append(rows, fmt.Sprint([]uint64(t)))
			return true
		}); err != nil {
			return nil, err
		}
		sort.Strings(rows) // hash providers scan in arbitrary order
		out[d.Name] = rows
	}
	return out, nil
}

// diffRelation compares two sorted dumps, returning "" when identical
// and a bounded description of the divergence otherwise.
func diffRelation(got, want []string) string {
	if len(got) != len(want) {
		return fmt.Sprintf("%d tuples, want %d; %s", len(got), len(want), firstDiff(got, want))
	}
	for i := range got {
		if got[i] != want[i] {
			return firstDiff(got, want)
		}
	}
	return ""
}

// firstDiff reports a few sample tuples present in exactly one side.
func firstDiff(got, want []string) string {
	gs := map[string]bool{}
	for _, t := range got {
		gs[t] = true
	}
	ws := map[string]bool{}
	for _, t := range want {
		ws[t] = true
	}
	var extra, missing []string
	for _, t := range got {
		if !ws[t] && len(extra) < 3 {
			extra = append(extra, t)
		}
	}
	for _, t := range want {
		if !gs[t] && len(missing) < 3 {
			missing = append(missing, t)
		}
	}
	return fmt.Sprintf("extra=%v missing=%v", extra, missing)
}

// edgePrograms is the fixed battery of self-contained programs covering
// the evaluator's corner cases: each carries its facts inline.
func edgePrograms() []workload.DatalogWorkload {
	mk := func(name, src string) workload.DatalogWorkload {
		return workload.DatalogWorkload{Name: name, Source: src, Facts: map[string][]tuple.Tuple{}}
	}
	return []workload.DatalogWorkload{
		mk("edge-negation", `
.decl e(x: number, y: number)
.decl blocked(x: number)
.decl p(x: number, y: number)
.output p
e(1, 2). e(2, 3). e(3, 4). e(2, 5). e(5, 6). e(6, 2).
blocked(3).
p(X, Y) :- e(X, Y), !blocked(Y).
p(X, Z) :- p(X, Y), e(Y, Z), !blocked(Z).
`),
		mk("edge-cmp-chain", `
.decl s(x: number)
.decl r(x: number, y: number)
.decl q(x: number, y: number)
.output q
s(1). s(2). s(3).
r(1, 1). r(1, 4). r(1, 5). r(1, 9). r(2, 2). r(2, 5). r(2, 7).
r(3, 3). r(3, 6). r(3, 8). r(4, 4).
q(X, Y) :- s(X), r(X, Y), Y >= 2, Y < 8, Y != 5.
`),
		mk("edge-cmp-varvar", `
.decl s(x: number)
.decl r(x: number, y: number)
.decl q(x: number, y: number)
.decl w(x: number, y: number)
.output q
.output w
s(1). s(2). s(3).
r(1, 1). r(1, 2). r(1, 3). r(2, 1). r(2, 2). r(2, 4). r(3, 5).
q(X, Y) :- s(X), r(X, Y), Y > X.
w(X, Y) :- s(X), r(X, Y), Y = X.
`),
		mk("edge-empty-window", `
.decl s(x: number)
.decl r(x: number, y: number)
.decl z(x: number, y: number)
.output z
s(1). s(2).
r(1, 1). r(1, 4). r(2, 2).
z(X, Y) :- s(X), r(X, Y), Y > 5, Y < 3.
`),
		mk("edge-repeat-wildcard", `
.decl r(x: number, y: number)
.decl d(x: number)
.decl any(x: number)
.output d
.output any
r(1, 1). r(1, 2). r(2, 2). r(3, 4). r(4, 4).
d(X) :- r(X, X).
any(X) :- r(X, _).
`),
		mk("edge-empty-relation", `
.decl none(x: number)
.decl r(x: number, y: number)
.decl q(x: number, y: number)
.output q
r(1, 2). r(2, 3).
q(X, Y) :- none(X), r(X, Y).
`),
		mk("edge-cross-product", `
.decl s(x: number)
.decl c(x: number, y: number)
.output c
s(1). s(2). s(3).
c(X, Y) :- s(X), s(Y).
`),
		mk("edge-const-bounds", `
.decl r(x: number, y: number)
.decl lo(x: number, y: number)
.decl hi(x: number, y: number)
.decl eq(x: number, y: number)
.output lo
.output hi
.output eq
r(1, 10). r(2, 20). r(3, 30). r(4, 40). r(5, 50).
lo(X, Y) :- r(X, Y), X > 3.
hi(X, Y) :- r(X, Y), X <= 2.
eq(X, Y) :- r(X, Y), X = 4.
`),
	}
}
