package check

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"specbtree/internal/tuple"
)

// Run drives the differential oracle against one provider: cfg.Rounds
// cycles of a concurrent insert phase, a barrier, and a concurrent read
// phase, mirroring the phase discipline of semi-naïve Datalog
// evaluation. Every operation result is checked exactly against the
// sequential reference model. All randomness derives from cfg.Seed, so a
// reported failure is replayed by re-running with the seed printed in
// Report.Summary.
func Run(f Factory, arity int, cfg Config) Report {
	cfg = cfg.withDefaults()
	if f.Arity1Only {
		arity = 1
	}
	inst := f.New(arity)
	m := newModel(arity)
	rec := &recorder{target: f.Name}

	for round := 0; round < cfg.Rounds && !rec.stop(); round++ {
		runInsertPhase(inst, f, m, cfg, arity, round, rec)
		if rec.stop() {
			break
		}
		checkLen(inst, m, round, rec)
		checkScan(inst, m, f.Unordered, round, rec)
		runReadPhase(inst, f, m, cfg, arity, round, rec)
	}

	rep := Report{
		Target:     f.Name,
		Arity:      arity,
		Config:     cfg,
		FinalLen:   inst.Len(),
		Violations: rec.take(),
	}
	// Release held resources (the serve target's listener and sockets)
	// before the minimizer starts building replay instances.
	closeInstance(inst)
	if rep.Failed() {
		rep.Trace = minimize(f, arity, cfg, rep.Violations[0])
	}
	return rep
}

// RunAll runs the oracle against every target at the given arity and
// returns one report per applicable target (arity-restricted targets are
// skipped for wider tuples).
func RunAll(arity int, cfg Config) []Report {
	var reps []Report
	for _, f := range Targets() {
		if f.Arity1Only && arity != 1 {
			continue
		}
		reps = append(reps, Run(f, arity, cfg))
	}
	return reps
}

// splitmix64 is the standard SplitMix64 finalizer; it decorrelates the
// structured (seed, salt, round, worker) inputs into stream seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

const (
	saltInsert = 0x1
	saltRead   = 0x2
)

// streamSeed derives the deterministic per-worker, per-round, per-phase
// RNG seed from the master seed.
func streamSeed(seed int64, salt uint64, round, worker int) int64 {
	x := splitmix64(uint64(seed) ^ splitmix64(salt))
	x = splitmix64(x ^ uint64(round))
	x = splitmix64(x ^ uint64(worker))
	return int64(x)
}

// randTuple draws an arity-width tuple with every word in [0, space).
func randTuple(rng *rand.Rand, arity int, space uint64) tuple.Tuple {
	t := make(tuple.Tuple, arity)
	for i := range t {
		t[i] = rng.Uint64() % space
	}
	return t
}

// insertStream replays worker w's round-r insert stream, calling emit for
// each tuple in order. Both the concurrent phase and the model update run
// exactly this generator, which is what makes the oracle differential.
func insertStream(cfg Config, arity, round, worker int, emit func(tuple.Tuple)) {
	rng := rand.New(rand.NewSource(streamSeed(cfg.Seed, saltInsert, round, worker)))
	for i := 0; i < cfg.Inserts; i++ {
		emit(randTuple(rng, arity, cfg.KeySpace))
	}
}

// runInsertPhase drives the concurrent insert phase, the barrier, the
// model update and the freshness check for one round.
func runInsertPhase(inst Instance, f Factory, m *model, cfg Config, arity, round int, rec *recorder) {
	fresh := make([]int, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wr := inst.NewWriter()
			n := 0
			insertStream(cfg, arity, round, w, func(t tuple.Tuple) {
				if wr.Insert(t) {
					n++
				}
			})
			wr.Flush()
			fresh[w] = n
		}(w)
	}
	wg.Wait()
	inst.Barrier()

	// Identical streams into the model, single-threaded.
	before := m.len()
	for w := 0; w < cfg.Workers; w++ {
		insertStream(cfg, arity, round, w, func(t tuple.Tuple) { m.insert(t) })
	}
	m.rebuild()
	growth := m.len() - before

	sum := 0
	for _, n := range fresh {
		sum += n
	}
	// Exactly-once backends: each distinct new tuple reports fresh exactly
	// once across all workers. Approximate backends (per-worker private
	// trees) over-report cross-worker duplicates, but can never
	// under-report: every distinct new tuple is fresh to the first worker
	// that sees it.
	if f.ApproxFreshness {
		if sum < growth {
			rec.add(Violation{Round: round, Worker: -1, Op: "freshness",
				Got: fmt.Sprintf("%d fresh", sum), Want: fmt.Sprintf(">= %d new tuples", growth)})
		}
	} else if sum != growth {
		rec.add(Violation{Round: round, Worker: -1, Op: "freshness",
			Got: fmt.Sprintf("%d fresh", sum), Want: fmt.Sprintf("%d new tuples", growth)})
	}
}

// checkLen compares the provider's element count against the model.
func checkLen(inst Instance, m *model, round int, rec *recorder) {
	if got, want := inst.Len(), m.len(); got != want {
		rec.add(Violation{Round: round, Worker: -1, Op: "len",
			Got: fmt.Sprint(got), Want: fmt.Sprint(want)})
	}
}

// checkScan compares a full traversal against the model: exact sequence
// equality for ordered backends, set equality for unordered ones.
func checkScan(inst Instance, m *model, unordered bool, round int, rec *recorder) {
	if unordered {
		n, bad := 0, tuple.Tuple(nil)
		inst.Scan(func(t tuple.Tuple) bool {
			n++
			if !m.contains(t) {
				bad = cloneBound(t)
				return false
			}
			return true
		})
		if bad != nil {
			rec.add(Violation{Round: round, Worker: -1, Op: "scan", Arg: bad,
				Got: "yielded", Want: "not in model"})
		} else if n != m.len() {
			rec.add(Violation{Round: round, Worker: -1, Op: "scan",
				Got: fmt.Sprintf("%d tuples", n), Want: fmt.Sprintf("%d tuples", m.len())})
		}
		return
	}
	want := m.all()
	i := 0
	ok := true
	inst.Scan(func(t tuple.Tuple) bool {
		if i >= len(want) || tuple.Compare(t, want[i]) != 0 {
			exp := "end"
			if i < len(want) {
				exp = fmt.Sprint([]uint64(want[i]))
			}
			rec.add(Violation{Round: round, Worker: -1, Op: "scan", Arg: cloneBound(t),
				Got: fmt.Sprintf("position %d: %v", i, []uint64(t)), Want: exp})
			ok = false
			return false
		}
		i++
		return true
	})
	if ok && i != len(want) {
		rec.add(Violation{Round: round, Worker: -1, Op: "scan",
			Got: fmt.Sprintf("%d tuples", i), Want: fmt.Sprintf("%d tuples", len(want))})
	}
}

// formatBound renders a bound result for violation reports.
func formatBound(t tuple.Tuple, ok bool) string {
	if !ok {
		return "(none)"
	}
	return fmt.Sprint([]uint64(t))
}

// probe evaluates one read operation against both the provider reader and
// the immutable model, recording any divergence.
func probe(rd Reader, m *model, op string, arg tuple.Tuple, round, worker int, rec *recorder) {
	switch op {
	case "contains":
		got, want := rd.Contains(arg), m.contains(arg)
		if got != want {
			rec.add(Violation{Round: round, Worker: worker, Op: op, Arg: arg,
				Got: fmt.Sprint(got), Want: fmt.Sprint(want)})
		}
	case "lower_bound", "upper_bound":
		strict := op == "upper_bound"
		gt, gok := rd.Bound(arg, strict)
		wt, wok := m.bound(arg, strict)
		if gok != wok || (gok && tuple.Compare(gt, wt) != 0) {
			rec.add(Violation{Round: round, Worker: worker, Op: op, Arg: arg,
				Got: formatBound(gt, gok), Want: formatBound(wt, wok)})
		}
	}
}

// probeArg draws a probe argument: mostly uniform over the key space
// (duplicate-heavy, so both hits and misses occur), occasionally past its
// upper edge to exercise end-of-structure handling.
func probeArg(rng *rand.Rand, arity int, space uint64) tuple.Tuple {
	t := randTuple(rng, arity, space)
	if rng.Intn(8) == 0 {
		t[rng.Intn(arity)] += space // beyond every inserted word
	}
	return t
}

// maxTuple is the all-ones tuple, the lower-bound probe past the end of
// any possible content. This is the exact probe shape of the PR 3
// load-after-validate race: a racy count load turns "no such element"
// into a bogus valid cursor.
func maxTuple(arity int) tuple.Tuple {
	t := make(tuple.Tuple, arity)
	for i := range t {
		t[i] = math.MaxUint64
	}
	return t
}

// runReadPhase drives the concurrent read phase for one round: every
// worker issues an independent deterministic mix of contains, lower-bound
// and upper-bound probes through its own Reader handle. Worker 0 leads
// with the all-MaxUint64 lower bound.
func runReadPhase(inst Instance, f Factory, m *model, cfg Config, arity, round int, rec *recorder) {
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rd := inst.NewReader()
			rng := rand.New(rand.NewSource(streamSeed(cfg.Seed, saltRead, round, w)))
			if w == 0 && !f.NoBounds {
				probe(rd, m, "lower_bound", maxTuple(arity), round, w, rec)
			}
			for i := 0; i < cfg.Reads; i++ {
				if i%16 == 0 && rec.stop() {
					return
				}
				arg := probeArg(rng, arity, cfg.KeySpace)
				switch op := rng.Intn(3); {
				case op == 0 || f.NoBounds:
					probe(rd, m, "contains", arg, round, w, rec)
				case op == 1:
					probe(rd, m, "lower_bound", arg, round, w, rec)
				default:
					probe(rd, m, "upper_bound", arg, round, w, rec)
				}
			}
		}(w)
	}
	wg.Wait()
}
