package check

import (
	"fmt"
	"os"
	"sync"
	"time"

	"specbtree/internal/cluster"
	"specbtree/internal/tuple"
)

// clusterFactory drives the sharded cluster end to end under the
// differential oracle, with the two cluster-specific hazards injected
// at phase barriers:
//
//   - Crash recovery: at the first barrier one shard is killed
//     abruptly (connections dropped, log abandoned mid-stream) and
//     restarted from its insert log. Every acknowledged insert was
//     durable before its ack (serve.EpochLog), so the oracle's exact
//     length/scan/freshness checks must still hold to the tuple.
//   - Live rebalance: at the second barrier a range move starts in the
//     background and overlaps the whole-structure checks and the read
//     phase — scans and point reads run against the moving overlay
//     (both-sides reads, duplicate elision) and must stay exact.
//
// The factory is NOT part of Targets(): a cluster instance is a
// process-group-shaped resource (N servers, N logs, a temp dir), and
// the restart/rebalance schedule is phase-indexed state that the
// generic sweep must not replay against the minimizer. The dedicated
// harness test drives it through Run directly.
//
// The keySpace parameter aligns the initial shard map with the
// oracle's key range: a uniform map over the full axis would put every
// generated tuple on shard 0.
func clusterFactory(shards int, keySpace uint64) Factory {
	return Factory{
		Name: "cluster",
		New: func(arity int) Instance {
			dir, err := os.MkdirTemp("", "specbtree-clusterdiff-*")
			if err != nil {
				panic(fmt.Sprintf("check: cluster target: %v", err))
			}
			c, err := cluster.StartCluster(cluster.Options{
				Shards:     shards,
				Arity:      arity,
				LogDir:     dir,
				InitialMap: cluster.BandMap(shards, keySpace),
			})
			if err != nil {
				panic(fmt.Sprintf("check: cluster target: %v", err))
			}
			inst := &clusterInstance{c: c, dir: dir, keySpace: keySpace}
			inst.control = inst.dial()
			return inst
		},
	}
}

// clusterInstance adapts a running cluster to the oracle Instance
// surface. Barrier is the hazard-injection point: the oracle calls it
// single-threaded between the insert and read phases of each round.
type clusterInstance struct {
	c        *cluster.Cluster
	dir      string
	keySpace uint64

	clMu    sync.Mutex
	clients []*cluster.Client
	control *cluster.Client

	barriers  int
	restarts  int
	moves     int
	rebalance sync.WaitGroup // in-flight background moves
	moveErr   error
}

func (i *clusterInstance) dial() *cluster.Client {
	cl, err := i.c.Client(cluster.ClientOptions{Timeout: serveClientTimeout})
	if err != nil {
		panic(fmt.Sprintf("check: cluster target dial: %v", err))
	}
	i.clMu.Lock()
	i.clients = append(i.clients, cl)
	i.clMu.Unlock()
	return cl
}

// NewWriter joins any in-flight rebalance first: the insert phase must
// run under a settled map, or the router's mid-flight resend path
// could double-report freshness (exactness is the point of the
// oracle; the resend window is exercised separately).
func (i *clusterInstance) NewWriter() Writer {
	i.rebalance.Wait()
	if i.moveErr != nil {
		panic(fmt.Sprintf("check: cluster target rebalance: %v", i.moveErr))
	}
	return &clusterWriter{cl: i.dial()}
}

// Barrier injects the round's hazard after the insert phase settles:
// round 1 kills and recovers a shard, round 2 starts a live range move
// that overlaps the checks and reads that follow.
func (i *clusterInstance) Barrier() {
	i.barriers++
	switch i.barriers {
	case 1:
		victim := 1 % i.c.Map().Map().Shards()
		if err := i.c.KillShard(victim); err != nil {
			panic(fmt.Sprintf("check: cluster target kill: %v", err))
		}
		if err := i.c.RestartShard(victim); err != nil {
			panic(fmt.Sprintf("check: cluster target restart: %v", err))
		}
		if rec := i.c.Recovered(victim); rec == nil {
			panic("check: cluster target: restart did not replay a log")
		}
		i.restarts++
	case 2:
		m := i.c.Map().Map()
		e := m.Entries[0]
		hi := e.Lo + (i.keySpace/uint64(len(m.Entries)))/2
		if hi > e.Hi {
			hi = e.Hi
		}
		dst := (e.Shard + 1) % m.Shards()
		i.rebalance.Add(1)
		go func() {
			defer i.rebalance.Done()
			// Small chunks and a pace stretch the move across the read
			// phase, keeping the moving overlay live under the probes.
			err := i.c.MoveRange(e.Lo, hi, dst, cluster.MoveOptions{
				ChunkSize: 64, Pace: 200 * time.Microsecond,
			})
			if err != nil {
				i.moveErr = err
				return
			}
			i.moves++
		}()
	}
}

func (i *clusterInstance) NewReader() Reader { return &clusterReader{cl: i.dial()} }

func (i *clusterInstance) Scan(yield func(tuple.Tuple) bool) {
	if err := i.control.ScanAll(nil, nil, yield); err != nil {
		panic(fmt.Sprintf("check: cluster target scan: %v", err))
	}
}

func (i *clusterInstance) Len() int {
	n, err := i.control.Len()
	if err != nil {
		panic(fmt.Sprintf("check: cluster target len: %v", err))
	}
	return n
}

// Restarts and Moves report the injected hazards that actually ran —
// the harness test asserts both are non-zero, so a schedule change
// cannot silently turn this back into a plain serving test.
func (i *clusterInstance) Restarts() int { return i.restarts }
func (i *clusterInstance) Moves() int {
	i.rebalance.Wait()
	return i.moves
}

// Cluster exposes the underlying cluster for extra assertions.
func (i *clusterInstance) Cluster() *cluster.Cluster { return i.c }

// Close joins any in-flight move, then tears down clients, shards and
// the log directory.
func (i *clusterInstance) Close() {
	i.rebalance.Wait()
	i.clMu.Lock()
	clients := i.clients
	i.clients = nil
	i.clMu.Unlock()
	for _, cl := range clients {
		cl.Close()
	}
	i.c.Close()
	os.RemoveAll(i.dir)
	if i.moveErr != nil {
		panic(fmt.Sprintf("check: cluster target rebalance: %v", i.moveErr))
	}
}

type clusterWriter struct {
	cl  *cluster.Client
	buf [1]tuple.Tuple
}

// Insert routes one tuple through the cluster client, which absorbs
// shard RETRY backpressure itself.
func (w *clusterWriter) Insert(t tuple.Tuple) bool {
	w.buf[0] = t
	fresh, err := w.cl.Insert(w.buf[:])
	if err != nil {
		panic(fmt.Sprintf("check: cluster target insert: %v", err))
	}
	return fresh == 1
}

func (w *clusterWriter) Flush() {}

type clusterReader struct{ cl *cluster.Client }

func (r *clusterReader) Contains(t tuple.Tuple) bool {
	ok, err := r.cl.Contains(t)
	if err != nil {
		panic(fmt.Sprintf("check: cluster target contains: %v", err))
	}
	return ok
}

func (r *clusterReader) Bound(v tuple.Tuple, strict bool) (tuple.Tuple, bool) {
	var (
		t   tuple.Tuple
		ok  bool
		err error
	)
	if strict {
		t, ok, err = r.cl.UpperBound(v)
	} else {
		t, ok, err = r.cl.LowerBound(v)
	}
	if err != nil {
		panic(fmt.Sprintf("check: cluster target bound: %v", err))
	}
	return t, ok
}
