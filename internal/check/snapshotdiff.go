package check

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"specbtree/internal/core"
	"specbtree/internal/tuple"
)

// SnapshotConfig sizes one snapshot-differential run. Zero fields take
// the defaults below; Short selects the seed-sized variant wholesale.
type SnapshotConfig struct {
	// Seed is the master seed; every insert stream and probe derives
	// from it deterministically, so runs are replayable.
	Seed int64
	// Writers is the number of concurrent insert goroutines per wave.
	Writers int
	// Readers is the number of concurrent snapshot-checking goroutines
	// per wave.
	Readers int
	// Waves is the number of snapshot/insert cycles.
	Waves int
	// Inserts is the number of insertions per writer per wave.
	Inserts int
	// Probes is the number of point probes per reader per wave, on top
	// of the full-scan equality check every reader performs.
	Probes int
	// KeySpace is the exclusive upper bound of every generated word.
	KeySpace uint64
	// Short selects the seed-sized configuration.
	Short bool
}

func (c SnapshotConfig) withDefaults() SnapshotConfig {
	def := func(v *int, full, short int) {
		if *v == 0 {
			if c.Short {
				*v = short
			} else {
				*v = full
			}
		}
	}
	def(&c.Writers, 4, 2)
	def(&c.Readers, 4, 2)
	def(&c.Waves, 8, 4)
	def(&c.Inserts, 2000, 400)
	def(&c.Probes, 500, 100)
	if c.KeySpace == 0 {
		c.KeySpace = uint64(c.Writers*c.Waves*c.Inserts) / 2
	}
	return c
}

// SnapshotViolation records one divergence between a snapshot and the
// frozen reference set it must equal.
type SnapshotViolation struct {
	Wave int
	Op   string
	Arg  tuple.Tuple
	Got  string
	Want string
}

func (v SnapshotViolation) String() string {
	return fmt.Sprintf("wave %d: %s(%v) = %s, want %s", v.Wave, v.Op, v.Arg, v.Got, v.Want)
}

// SnapshotReport is the outcome of one RunSnapshotDiff.
type SnapshotReport struct {
	Violations []SnapshotViolation
	FinalLen   int
	Waves      int
}

func (r SnapshotReport) Failed() bool { return len(r.Violations) > 0 }

func (r SnapshotReport) Summary() string {
	if !r.Failed() {
		return fmt.Sprintf("ok: %d waves, final length %d", r.Waves, r.FinalLen)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d violations over %d waves:\n", len(r.Violations), r.Waves)
	for i, v := range r.Violations {
		if i == 16 {
			fmt.Fprintf(&b, "  ... %d more\n", len(r.Violations)-i)
			break
		}
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return b.String()
}

// snapshotStream replays writer w's wave insert stream in order. Both
// the concurrent wave and the sequential model update run it, so they
// apply identical tuples.
func snapshotStream(cfg SnapshotConfig, arity, wave, w int, emit func(tuple.Tuple)) {
	rng := rand.New(rand.NewSource(streamSeed(cfg.Seed, saltInsert, wave, w)))
	for i := 0; i < cfg.Inserts; i++ {
		emit(randTuple(rng, arity, cfg.KeySpace))
	}
}

// RunSnapshotDiff is the snapshot differential: the epoch-snapshot
// counterpart of the phased oracle (DESIGN.md §14). Each wave captures a
// core.Tree snapshot at a quiescent barrier — where the reference model
// equals the tree exactly — and then checks the snapshot against that
// frozen reference *while the next wave's writers mutate the live tree
// concurrently*. A snapshot must observe exactly the pre-epoch tuple
// set: every frozen tuple present, nothing from the in-flight wave
// visible, bounds and full-scan order agreeing with the model.
func RunSnapshotDiff(arity int, cfg SnapshotConfig) SnapshotReport {
	cfg = cfg.withDefaults()
	tree := core.New(arity)
	m := newModel(arity)
	var (
		mu  sync.Mutex
		rep = SnapshotReport{Waves: cfg.Waves}
	)
	record := func(v SnapshotViolation) {
		mu.Lock()
		rep.Violations = append(rep.Violations, v)
		mu.Unlock()
	}

	for wave := 0; wave < cfg.Waves; wave++ {
		// Quiescent point: no writer in flight, model == tree. Capture
		// the epoch snapshot here, per Tree.Snapshot's contract.
		snap := tree.Snapshot()

		var wg sync.WaitGroup
		for w := 0; w < cfg.Writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				h := core.NewHints()
				snapshotStream(cfg, arity, wave, w, func(t tuple.Tuple) {
					tree.InsertHint(t, h)
				})
			}(w)
		}
		// The model is immutable during the wave: readers check the
		// snapshot against it exactly while the writers run.
		for r := 0; r < cfg.Readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				checkSnapshot(wave, r, snap, m, cfg, arity, record)
			}(r)
		}
		wg.Wait()

		// Sequential model update: replay the wave's streams in a fixed
		// order (set insert is order-insensitive).
		for w := 0; w < cfg.Writers; w++ {
			snapshotStream(cfg, arity, wave, w, func(t tuple.Tuple) {
				m.insert(t)
			})
		}
		m.rebuild()
	}

	// Final quiescent check: a last snapshot must equal the final model,
	// proving no wave lost live writes to copy-on-write shuffling.
	final := tree.Snapshot()
	checkSnapshot(cfg.Waves, 0, final, m, cfg, arity, record)
	rep.FinalLen = tree.Len()
	if rep.FinalLen != m.len() {
		record(SnapshotViolation{
			Wave: cfg.Waves, Op: "live-len",
			Got: fmt.Sprint(rep.FinalLen), Want: fmt.Sprint(m.len()),
		})
	}
	return rep
}

// checkSnapshot verifies snap against the frozen model exactly: length,
// full ordered scan, and seeded point probes (membership both ways,
// lower and upper bounds).
func checkSnapshot(wave, reader int, snap core.Snapshot, m *model, cfg SnapshotConfig, arity int, record func(SnapshotViolation)) {
	if got, want := snap.Len(), m.len(); got != want {
		record(SnapshotViolation{Wave: wave, Op: "len", Got: fmt.Sprint(got), Want: fmt.Sprint(want)})
	}
	// Full-scan equality against the model's sorted contents.
	ref := m.all()
	i := 0
	snap.All(func(t tuple.Tuple) bool {
		if i >= len(ref) {
			record(SnapshotViolation{Wave: wave, Op: "scan", Arg: t.Clone(), Got: "extra tuple", Want: "end of set"})
			return false
		}
		if tuple.Compare(t, ref[i]) != 0 {
			record(SnapshotViolation{Wave: wave, Op: "scan", Arg: t.Clone(), Got: t.String(), Want: ref[i].String()})
			return false
		}
		i++
		return true
	})
	if i < len(ref) {
		record(SnapshotViolation{Wave: wave, Op: "scan", Arg: ref[i].Clone(), Got: fmt.Sprintf("stopped after %d tuples", i), Want: fmt.Sprintf("%d tuples", len(ref))})
	}
	rng := rand.New(rand.NewSource(streamSeed(cfg.Seed, saltRead, wave, reader)))
	for p := 0; p < cfg.Probes; p++ {
		arg := probeArg(rng, arity, cfg.KeySpace)
		switch rng.Intn(3) {
		case 0:
			if got, want := snap.Contains(arg), m.contains(arg); got != want {
				record(SnapshotViolation{Wave: wave, Op: "contains", Arg: arg, Got: fmt.Sprint(got), Want: fmt.Sprint(want)})
			}
		case 1:
			checkSnapBound(wave, "lowerbound", snap.LowerBound(arg), arg, m, false, record)
		default:
			checkSnapBound(wave, "upperbound", snap.UpperBound(arg), arg, m, true, record)
		}
	}
}

func checkSnapBound(wave int, op string, c core.SnapCursor, arg tuple.Tuple, m *model, strict bool, record func(SnapshotViolation)) {
	want, wantOK := m.bound(arg, strict)
	if c.Valid() != wantOK {
		record(SnapshotViolation{Wave: wave, Op: op, Arg: arg, Got: fmt.Sprintf("valid=%v", c.Valid()), Want: fmt.Sprintf("valid=%v", wantOK)})
		return
	}
	if wantOK {
		if got := c.Tuple(); tuple.Compare(got, want) != 0 {
			record(SnapshotViolation{Wave: wave, Op: op, Arg: arg, Got: got.String(), Want: want.String()})
		}
	}
}
