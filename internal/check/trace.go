package check

import (
	"fmt"
	"strings"

	"specbtree/internal/tuple"
)

// maxReplays bounds the minimizer's work: each replay rebuilds a fresh
// instance and a fresh model, and a stubbornly non-shrinking trace is not
// worth unbounded rebuilds.
const maxReplays = 400

// minimize attempts to turn the first recorded violation into a small,
// deterministic, sequentially replayable trace.
//
// Step 1 reproduces the violation with a single-threaded replay: all
// insert streams up to the violating round applied by one writer, then
// the one diverging operation. If the divergence survives — i.e. it is a
// logic bug, not a concurrency bug — step 2 shrinks the insert sequence
// with a ddmin-style greedy chunk removal until no single chunk can be
// dropped, and the result is rendered as an insert-by-insert trace that
// reproduces the failure in a unit test with no goroutines at all.
//
// If the sequential replay does NOT diverge, the bug needs the concurrent
// schedule, and the trace says so: the replay instruction is the seed
// line of Report.Summary, which regenerates the identical workload.
func minimize(f Factory, arity int, cfg Config, v Violation) string {
	inserts := collectInserts(cfg, arity, v.Round)
	if !replayDiverges(f, arity, inserts, v) {
		return fmt.Sprintf("  violation is schedule-dependent: no divergence under sequential replay\n"+
			"  (reproduce by re-running the oracle with the seed above; %d inserts in scope)\n", len(inserts))
	}
	inserts = shrink(f, arity, inserts, v)
	return renderTrace(f, arity, inserts, v)
}

// collectInserts flattens every worker's insert stream for rounds
// 0..round into one deterministic sequence (round-major, worker-major,
// stream order).
func collectInserts(cfg Config, arity, round int) []tuple.Tuple {
	var out []tuple.Tuple
	for r := 0; r <= round; r++ {
		for w := 0; w < cfg.Workers; w++ {
			insertStream(cfg, arity, r, w, func(t tuple.Tuple) { out = append(out, t) })
		}
	}
	return out
}

// replayDiverges builds a fresh instance, applies the inserts with one
// writer, and re-evaluates the violating operation against a model built
// from the same inserts. It reports whether the provider still diverges.
func replayDiverges(f Factory, arity int, inserts []tuple.Tuple, v Violation) bool {
	inst := f.New(arity)
	defer closeInstance(inst)
	m := newModel(arity)
	wr := inst.NewWriter()
	fresh := 0
	for _, t := range inserts {
		if wr.Insert(t) {
			fresh++
		}
		m.insert(t)
	}
	wr.Flush()
	inst.Barrier()
	m.rebuild()

	switch v.Op {
	case "freshness":
		return fresh != m.len()
	case "len":
		return inst.Len() != m.len()
	case "scan":
		r := &recorder{}
		checkScan(inst, m, f.Unordered, 0, r)
		return len(r.take()) > 0
	default: // contains / lower_bound / upper_bound
		r := &recorder{}
		probe(inst.NewReader(), m, v.Op, v.Arg, 0, 0, r)
		return len(r.take()) > 0
	}
}

// shrink is a greedy ddmin: repeatedly try dropping chunks of the insert
// sequence, keeping any removal that preserves the divergence, halving
// the chunk size until single inserts have been tried or the replay
// budget runs out.
func shrink(f Factory, arity int, inserts []tuple.Tuple, v Violation) []tuple.Tuple {
	replays := 0
	chunk := (len(inserts) + 1) / 2
	for chunk > 0 && replays < maxReplays {
		removed := false
		for lo := 0; lo < len(inserts) && replays < maxReplays; {
			hi := lo + chunk
			if hi > len(inserts) {
				hi = len(inserts)
			}
			trial := make([]tuple.Tuple, 0, len(inserts)-(hi-lo))
			trial = append(trial, inserts[:lo]...)
			trial = append(trial, inserts[hi:]...)
			replays++
			if replayDiverges(f, arity, trial, v) {
				inserts = trial
				removed = true
				// Same lo now addresses the next chunk.
			} else {
				lo = hi
			}
		}
		if !removed || chunk == 1 {
			chunk /= 2
		} else if chunk > len(inserts) {
			chunk = len(inserts)
		}
	}
	return inserts
}

// renderTrace prints the minimized trace as one operation per line,
// re-deriving the final divergence so Got/Want reflect the shrunken
// content rather than the original run.
func renderTrace(f Factory, arity int, inserts []tuple.Tuple, v Violation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  sequentially reproducible with %d inserts:\n", len(inserts))
	const maxShown = 64
	for i, t := range inserts {
		if i == maxShown {
			fmt.Fprintf(&b, "    ... %d more inserts\n", len(inserts)-maxShown)
			break
		}
		fmt.Fprintf(&b, "    insert %v\n", []uint64(t))
	}
	switch v.Op {
	case "freshness", "len", "scan":
		fmt.Fprintf(&b, "    %s check diverges (see violation above)\n", v.Op)
	default:
		inst := f.New(arity)
		defer closeInstance(inst)
		m := newModel(arity)
		wr := inst.NewWriter()
		for _, t := range inserts {
			wr.Insert(t)
			m.insert(t)
		}
		wr.Flush()
		inst.Barrier()
		m.rebuild()
		r := &recorder{target: f.Name}
		probe(inst.NewReader(), m, v.Op, v.Arg, 0, 0, r)
		for _, rv := range r.take() {
			fmt.Fprintf(&b, "    %s %v -> got %s, want %s\n", rv.Op, []uint64(rv.Arg), rv.Got, rv.Want)
		}
	}
	return b.String()
}
