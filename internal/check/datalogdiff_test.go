package check

import (
	"strings"
	"testing"

	"specbtree/internal/datalog"
	"specbtree/internal/workload"
)

// TestDatalogDifferential is the gate of the streaming-evaluator
// rewrite: every strategy, worker count and provider arm must derive
// exactly the relations of the materializing single-worker reference.
func TestDatalogDifferential(t *testing.T) {
	rep := RunDatalogDiff(DatalogConfig{Seed: 0x5eed1, Short: testing.Short()})
	if rep.Failed() {
		t.Errorf("datalog differential failed:\n%s", rep.Summary())
	}
	if rep.Programs < 8 || rep.Arms == 0 {
		t.Errorf("suspicious run: %d programs, %d arms", rep.Programs, rep.Arms)
	}
}

// TestDatalogDifferentialSummary pins the replay line: a report must
// name the seed it can be replayed with.
func TestDatalogDifferentialSummary(t *testing.T) {
	rep := RunDatalogDiff(DatalogConfig{Seed: 7, Size: 16, Workers: []int{1}, Short: true})
	if !strings.Contains(rep.Summary(), "replay: seed=7") {
		t.Errorf("summary lacks replay line:\n%s", rep.Summary())
	}
}

// TestDatalogDiffCatchesDivergence feeds the comparator a fabricated
// divergence to prove the harness reports, not merely runs.
func TestDatalogDiffCatchesDivergence(t *testing.T) {
	if d := diffRelation([]string{"[1 2]"}, []string{"[1 2]", "[3 4]"}); d == "" {
		t.Fatal("missing tuple not reported")
	}
	if d := diffRelation([]string{"[1 2]", "[9 9]"}, []string{"[1 2]", "[3 4]"}); !strings.Contains(d, "[9 9]") {
		t.Fatalf("extra tuple not named: %q", d)
	}
	if d := diffRelation([]string{"[1 2]"}, []string{"[1 2]"}); d != "" {
		t.Fatalf("spurious divergence: %q", d)
	}
}

// TestDatalogDiffExercisesPushdown asserts the streaming arm actually
// takes the pushdown path on the selective workload — guarding against
// the differential silently comparing three identical evaluators.
func TestDatalogDiffExercisesPushdown(t *testing.T) {
	w := workload.Selective(64, 1)
	prog, err := datalog.Parse(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := datalog.New(prog, datalog.Options{Workers: 1, NoPlanCache: true})
	if err != nil {
		t.Fatal(err)
	}
	for rel, facts := range w.Facts {
		if err := eng.AddFacts(rel, facts); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.PushdownScans == 0 {
		t.Errorf("selective workload opened no pushdown-tightened scans: %+v", s)
	}
	if s.StreamScans == 0 || s.StreamRows == 0 {
		t.Errorf("streaming arm pulled nothing through iterators: %+v", s)
	}
	if eng.Count("out") == 0 {
		t.Error("selective probe produced no output")
	}
}
