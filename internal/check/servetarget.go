package check

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"specbtree/internal/serve"
	"specbtree/internal/tuple"
)

// serveFactory drives the network serving subsystem end to end: each
// instance is a real serve.Server on a loopback listener, and every
// oracle writer and reader is a separate pipelined socket client. The
// phase scheduler turns the oracle's concurrent insert phase into write
// epochs, so this target checks the wire protocol, the scheduler and
// the tree together against the sequential model; the counted phase
// invariant is asserted on top of the differential results by
// TestOracleServeSocketEightClients.
//
// Network or protocol failures panic: the harness runs against an
// in-process loopback server, where any transport error is itself a
// serving-subsystem bug, and the Writer/Reader interfaces deliberately
// have no error path for the in-memory targets.
func serveFactory() Factory {
	return Factory{
		Name: "serve-socket",
		New: func(arity int) Instance {
			srv, err := serve.Start("127.0.0.1:0", serve.Options{Arity: arity})
			if err != nil {
				panic(fmt.Sprintf("check: serve target: %v", err))
			}
			return &serveInstance{srv: srv}
		},
	}
}

// serveClientTimeout bounds one oracle request round-trip. Generous: a
// race-instrumented 1-CPU run can stall an epoch well past interactive
// latencies without anything being wrong.
const serveClientTimeout = 30 * time.Second

type serveInstance struct {
	srv *serve.Server

	clMu    sync.Mutex
	clients []*serve.Client
	control *serve.Client // lazily dialed shared client for Scan/Len
}

func (i *serveInstance) dial() *serve.Client {
	c, err := serve.Dial(i.srv.Addr(), serve.ClientOptions{Timeout: serveClientTimeout})
	if err != nil {
		panic(fmt.Sprintf("check: serve target dial: %v", err))
	}
	i.clMu.Lock()
	i.clients = append(i.clients, c)
	i.clMu.Unlock()
	return c
}

// controlClient returns the shared single-threaded client used by the
// whole-structure checks (Scan, Len), which the oracle never calls
// concurrently.
func (i *serveInstance) controlClient() *serve.Client {
	if i.control == nil {
		i.control = i.dial()
	}
	return i.control
}

func (i *serveInstance) NewWriter() Writer { return &serveWriter{c: i.dial()} }
func (i *serveInstance) Barrier()          {}
func (i *serveInstance) NewReader() Reader { return &serveReader{c: i.dial()} }

func (i *serveInstance) Scan(yield func(tuple.Tuple) bool) {
	if err := i.controlClient().ScanAll(nil, nil, yield); err != nil {
		panic(fmt.Sprintf("check: serve target scan: %v", err))
	}
}

func (i *serveInstance) Len() int {
	n, err := i.controlClient().Len()
	if err != nil {
		panic(fmt.Sprintf("check: serve target len: %v", err))
	}
	return n
}

// Server exposes the underlying server for invariant assertions (the
// oracle core only sees the Instance interface).
func (i *serveInstance) Server() *serve.Server { return i.srv }

// Close tears down every client and the server; closeInstance calls it
// after each oracle run and minimizer replay.
func (i *serveInstance) Close() {
	i.clMu.Lock()
	clients := i.clients
	i.clients = nil
	i.clMu.Unlock()
	for _, c := range clients {
		c.Close()
	}
	i.srv.Close()
}

type serveWriter struct {
	c   *serve.Client
	buf [1]tuple.Tuple
}

// Insert sends a one-tuple batch, backing off and resending on server
// backpressure (RETRY) exactly as a well-behaved client must.
func (w *serveWriter) Insert(t tuple.Tuple) bool {
	w.buf[0] = t
	for {
		fresh, err := w.c.Insert(w.buf[:])
		if err == nil {
			return fresh == 1
		}
		if errors.Is(err, serve.ErrRetry) {
			time.Sleep(200 * time.Microsecond)
			continue
		}
		panic(fmt.Sprintf("check: serve target insert: %v", err))
	}
}

func (w *serveWriter) Flush() {}

type serveReader struct{ c *serve.Client }

func (r *serveReader) Contains(t tuple.Tuple) bool {
	ok, err := r.c.Contains(t)
	if err != nil {
		panic(fmt.Sprintf("check: serve target contains: %v", err))
	}
	return ok
}

func (r *serveReader) Bound(v tuple.Tuple, strict bool) (tuple.Tuple, bool) {
	var (
		t   tuple.Tuple
		ok  bool
		err error
	)
	if strict {
		t, ok, err = r.c.UpperBound(v)
	} else {
		t, ok, err = r.c.LowerBound(v)
	}
	if err != nil {
		panic(fmt.Sprintf("check: serve target bound: %v", err))
	}
	return t, ok
}
