package check

import "testing"

// TestOracleClusterRestartRebalance runs the differential oracle
// against the sharded cluster with the phase-barrier hazard schedule:
// an abrupt shard kill + log recovery after round 1's insert phase,
// and a live range rebalance overlapping round 2's whole-structure
// checks and read phase. Every check stays exact — acknowledged
// inserts survive the crash (flush-before-ack durability) and the
// moving overlay never perturbs a scan, bound, or count.
func TestOracleClusterRestartRebalance(t *testing.T) {
	const keySpace = 360 // the Short config's key space
	base := clusterFactory(3, keySpace)
	var inst *clusterInstance
	f := base
	f.New = func(arity int) Instance {
		i := base.New(arity).(*clusterInstance)
		inst = i
		return i
	}
	rep := Run(f, 2, Config{Seed: 0xc105, Workers: 4, Short: true, KeySpace: keySpace})
	if rep.Failed() {
		t.Fatalf("oracle failed:\n%s", rep.Summary())
	}
	if rep.FinalLen == 0 {
		t.Fatal("suspicious run: final length 0")
	}
	if inst.Restarts() == 0 {
		t.Fatal("hazard schedule did not restart a shard")
	}
	if inst.Moves() == 0 {
		t.Fatal("hazard schedule did not complete a rebalance")
	}
}
