package check

import (
	"encoding/binary"
	"sort"

	"specbtree/internal/tuple"
)

// model is the sequential reference implementation the oracle checks
// every provider against: a plain sorted set of tuples with the obvious
// O(log n) membership and bound queries. It is deliberately built on
// different machinery than any provider (a hash map plus a sorted slice,
// no trees, no hashing of its own) so a shared bug is implausible.
//
// The model is updated only between phases, single-threaded; during a
// read phase it is immutable and safe to probe from every worker.
type model struct {
	arity  int
	keys   map[string]struct{}
	sorted []tuple.Tuple
	dirty  bool
}

func newModel(arity int) *model {
	return &model{arity: arity, keys: make(map[string]struct{})}
}

// encode renders t as a map key; big-endian words keep byte order
// consistent with tuple order (useful when debugging, not relied upon).
func encode(t tuple.Tuple) string {
	b := make([]byte, 8*len(t))
	for i, w := range t {
		binary.BigEndian.PutUint64(b[8*i:], w)
	}
	return string(b)
}

// insert adds t, reporting whether it was new. Single-threaded.
func (m *model) insert(t tuple.Tuple) bool {
	k := encode(t)
	if _, dup := m.keys[k]; dup {
		return false
	}
	m.keys[k] = struct{}{}
	m.sorted = append(m.sorted, append(tuple.Tuple(nil), t...))
	m.dirty = true
	return true
}

// rebuild re-sorts after a batch of inserts. Single-threaded.
func (m *model) rebuild() {
	if !m.dirty {
		return
	}
	sort.Slice(m.sorted, func(i, j int) bool {
		return tuple.Compare(m.sorted[i], m.sorted[j]) < 0
	})
	m.dirty = false
}

func (m *model) len() int { return len(m.keys) }

// contains reports membership. Read phase (after rebuild).
func (m *model) contains(t tuple.Tuple) bool {
	_, ok := m.keys[encode(t)]
	return ok
}

// bound returns the first element >= v (strict=false) or > v
// (strict=true), with ok=false when no such element exists. Read phase.
func (m *model) bound(v tuple.Tuple, strict bool) (tuple.Tuple, bool) {
	want := 0
	if strict {
		want = 1
	}
	i := sort.Search(len(m.sorted), func(i int) bool {
		return tuple.Compare(m.sorted[i], v) >= want
	})
	if i == len(m.sorted) {
		return nil, false
	}
	return m.sorted[i], true
}

// all returns the sorted contents. Read phase; callers must not mutate.
func (m *model) all() []tuple.Tuple { return m.sorted }
