package check

import (
	"strings"
	"testing"

	"specbtree/internal/tuple"
)

// oracleConfig sizes a test run: seed-sized in -short mode (the 1-CPU CI
// budget), full-sized otherwise.
func oracleConfig(seed int64) Config {
	return Config{Seed: seed, Short: testing.Short()}
}

// TestOracleAllProviders is the main differential check: every target,
// arity 1 and arity 2, against the sequential model.
func TestOracleAllProviders(t *testing.T) {
	for _, arity := range []int{1, 2} {
		for _, f := range Targets() {
			if f.Arity1Only && arity != 1 {
				continue
			}
			f := f
			t.Run(f.Name+"/arity"+string(rune('0'+arity)), func(t *testing.T) {
				t.Parallel()
				rep := Run(f, arity, oracleConfig(0x5eed0+int64(arity)))
				if rep.Failed() {
					t.Errorf("oracle failed:\n%s", rep.Summary())
				}
				if rep.FinalLen == 0 {
					t.Errorf("suspicious run: final length 0")
				}
			})
		}
	}
}

// TestOracleDeterministic re-runs one target with one seed and expects
// byte-identical outcomes — the property that makes printed seeds
// replayable.
func TestOracleDeterministic(t *testing.T) {
	cfg := oracleConfig(42)
	a := Run(mustTarget(t, "btree"), 2, cfg)
	b := Run(mustTarget(t, "btree"), 2, cfg)
	if a.FinalLen != b.FinalLen || len(a.Violations) != len(b.Violations) {
		t.Fatalf("same seed, different outcome: %+v vs %+v", a, b)
	}
}

func mustTarget(t *testing.T, name string) Factory {
	t.Helper()
	f, ok := Target(name)
	if !ok {
		t.Fatalf("unknown target %q", name)
	}
	return f
}

// lyingFactory wraps the locked baseline with a Contains that lies about
// one specific tuple — a deterministic sequential logic bug the oracle
// must catch and the minimizer must shrink to a tiny trace.
func lyingFactory() (Factory, tuple.Tuple) {
	inner, _ := Target("locked-gbtree")
	poison := tuple.Tuple{7, 7}
	f := Factory{
		Name: "lying",
		New: func(arity int) Instance {
			return &lyingInstance{Instance: inner.New(arity), poison: poison}
		},
	}
	return f, poison
}

type lyingInstance struct {
	Instance
	poison tuple.Tuple
}

func (i *lyingInstance) NewReader() Reader {
	return &lyingReader{Reader: i.Instance.NewReader(), poison: i.poison}
}

type lyingReader struct {
	Reader
	poison tuple.Tuple
}

func (r *lyingReader) Contains(t tuple.Tuple) bool {
	if tuple.Compare(t, r.poison) == 0 {
		return !r.Reader.Contains(t) // lie about exactly this tuple
	}
	return r.Reader.Contains(t)
}

// TestOracleCatchesLogicBug seeds a provider with a deterministic
// membership bug and asserts the harness (a) reports it, (b) reproduces
// it sequentially, and (c) minimizes the insert trace aggressively.
func TestOracleCatchesLogicBug(t *testing.T) {
	f, poison := lyingFactory()
	// Tiny key space so the poison tuple is hit by probes quickly.
	cfg := Config{Seed: 7, Workers: 2, Rounds: 1, Inserts: 64, Reads: 200, KeySpace: 16}
	rep := Run(f, 2, cfg)
	if !rep.Failed() {
		t.Fatalf("oracle missed the lying Contains")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Op == "contains" && tuple.Compare(v.Arg, poison) == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no contains violation for the poison tuple:\n%s", rep.Summary())
	}
	if !strings.Contains(rep.Trace, "sequentially reproducible") {
		t.Fatalf("logic bug not reproduced sequentially:\n%s", rep.Summary())
	}
	// The divergence needs either zero inserts (probe of an absent poison
	// tuple) or exactly one (the poison tuple itself); ddmin must get
	// there from 128.
	if !strings.Contains(rep.Trace, "reproducible with 0 inserts") &&
		!strings.Contains(rep.Trace, "reproducible with 1 inserts") {
		t.Errorf("trace not minimal:\n%s", rep.Trace)
	}
}

// TestModelBound pins the reference model's own bound semantics so the
// oracle is anchored to a verified baseline.
func TestModelBound(t *testing.T) {
	m := newModel(1)
	for _, k := range []uint64{10, 20, 30} {
		m.insert(tuple.Tuple{k})
	}
	m.rebuild()
	cases := []struct {
		v      uint64
		strict bool
		want   uint64
		ok     bool
	}{
		{5, false, 10, true},
		{10, false, 10, true},
		{10, true, 20, true},
		{25, false, 30, true},
		{30, true, 0, false},
		{31, false, 0, false},
	}
	for _, c := range cases {
		got, ok := m.bound(tuple.Tuple{c.v}, c.strict)
		if ok != c.ok || (ok && got[0] != c.want) {
			t.Errorf("bound(%d, strict=%v) = %v,%v want %d,%v", c.v, c.strict, got, ok, c.want, c.ok)
		}
	}
	if !m.contains(tuple.Tuple{20}) || m.contains(tuple.Tuple{21}) {
		t.Errorf("contains misbehaves")
	}
	if m.len() != 3 {
		t.Errorf("len = %d, want 3", m.len())
	}
}
