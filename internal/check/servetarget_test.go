package check

import "testing"

// TestOracleServeSocketEightClients runs the socket-backed target with
// eight concurrent socket clients per phase and asserts, on top of the
// differential results, the serving subsystem's counted phase
// invariant: the server never executed a read concurrently with a write
// epoch (DESIGN.md §11). Config.Short sizing keeps it inside the 1-CPU
// CI budget in every mode; the worker count is what matters here.
func TestOracleServeSocketEightClients(t *testing.T) {
	base, ok := Target("serve-socket")
	if !ok {
		t.Fatal("serve-socket target not registered")
	}
	f := base
	var inst *serveInstance
	f.New = func(arity int) Instance {
		i := base.New(arity).(*serveInstance)
		inst = i
		return i
	}
	rep := Run(f, 2, Config{Seed: 0x5e12e5, Workers: 8, Short: true})
	if rep.Failed() {
		t.Fatalf("oracle failed:\n%s", rep.Summary())
	}
	if rep.FinalLen == 0 {
		t.Fatal("suspicious run: final length 0")
	}

	st := inst.Server().Stats()
	if st.PhaseViolations != 0 {
		t.Fatalf("phase violations = %d, want 0", st.PhaseViolations)
	}
	if st.Epochs == 0 || st.WriteOps == 0 || st.ReadOps == 0 {
		t.Fatalf("implausible serving stats: %+v", st)
	}
}
