package check

import (
	"path/filepath"
	"testing"
	"time"

	"specbtree/internal/cluster"
	"specbtree/internal/obs"
	"specbtree/internal/replica"
	"specbtree/internal/serve"
	"specbtree/internal/tuple"
)

// TestReplicaFailoverGate is the replication subsystem's gate
// (DESIGN.md §16): a shard with two streaming followers takes
// acknowledged writes, is killed abruptly mid-stream — connections
// dropped, log abandoned, followers behind — and fails over to the
// most caught-up follower. The gate asserts the two replication
// contracts to the tuple:
//
//   - No acknowledged write is lost: promotion replays the dead
//     leader's committed log tail, so the promoted leader serves every
//     tuple that was ever acked — including the tail acked after the
//     followers' last applied epoch. The final state is compared
//     against an exact in-memory model, both directions.
//   - No stale read exceeds the bound: a follower read stamped with
//     applied watermark A reflects every write acknowledged at or
//     before epoch A (prefix consistency — the stream applies whole
//     epochs in order), and the routing client only accepts follower
//     answers whose stamp satisfies head - applied <= MaxStaleEpochs.
func TestReplicaFailoverGate(t *testing.T) {
	dir := t.TempDir()
	c, err := cluster.StartCluster(cluster.Options{
		Shards: 1,
		LogDir: dir,
		Serve:  serve.Options{HeartbeatEvery: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer c.Close()

	follower := func(name string) *replica.Follower {
		f, err := replica.Start(replica.Options{
			Leader:         c.Addrs()[0],
			Sharded:        true,
			Shard:          0,
			Arity:          2,
			LogPath:        filepath.Join(dir, name+".log"),
			StaleAfter:     300 * time.Millisecond,
			ReconnectEvery: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("replica.Start(%s): %v", name, err)
		}
		t.Cleanup(func() { f.Close() })
		return f
	}
	f1, f2 := follower("f1"), follower("f2")
	if err := c.AttachFollower(0, f1); err != nil {
		t.Fatalf("AttachFollower: %v", err)
	}
	if err := c.AttachFollower(0, f2); err != nil {
		t.Fatalf("AttachFollower: %v", err)
	}

	const maxStale = 4
	cl, err := c.Client(cluster.ClientOptions{MaxStaleEpochs: maxStale})
	if err != nil {
		t.Fatalf("Client: %v", err)
	}
	defer cl.Close()

	// Direct stamped connections: the leader's stamp dates each ack
	// (its epoch count only moves at commit), the follower's stamped
	// reads carry the watermark the prefix contract is judged against.
	leaderCl, err := serve.Dial(c.Addrs()[0], serve.ClientOptions{Arity: 2, ExpectShard: true, ShardID: 0})
	if err != nil {
		t.Fatalf("Dial leader: %v", err)
	}
	defer leaderCl.Close()
	fCl, err := serve.Dial(f1.Addr(), serve.ClientOptions{Arity: 2, ExpectShard: true, ShardID: 0})
	if err != nil {
		t.Fatalf("Dial follower: %v", err)
	}
	defer fCl.Close()

	// model is the exact acked state; ackedAt[k] the leader epoch whose
	// commit acknowledged key k.
	model := make(map[uint64]tuple.Tuple)
	ackedAt := make(map[uint64]uint64)
	write := func(keys ...uint64) {
		batch := make([]tuple.Tuple, len(keys))
		for i, k := range keys {
			batch[i] = tuple.Tuple{k, k * 3}
		}
		if _, err := cl.Insert(batch); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		st, err := leaderCl.Stamp()
		if err != nil {
			t.Fatalf("leader Stamp: %v", err)
		}
		for _, k := range keys {
			model[k] = tuple.Tuple{k, k * 3}
			ackedAt[k] = st.Applied
		}
	}

	// Pre-crash load: epochs of writes interleaved with stamped reads
	// on the follower. The prefix contract: a read stamped applied=A
	// must contain every key acked at or before A; and when the
	// follower claims freshness within the bound, head-applied must
	// actually be within it (what the routing client admits).
	prefixChecks := 0
	for k := uint64(0); k < 400; k += 8 {
		write(k, k+1, k+2, k+3, k+4, k+5, k+6, k+7)
		for probe := range ackedAt {
			ok, st, err := fCl.ContainsStamped(tuple.Tuple{probe, probe * 3})
			if err != nil {
				t.Fatalf("ContainsStamped: %v", err)
			}
			if st.Applied >= ackedAt[probe] && !ok {
				t.Fatalf("prefix violated: key %d acked at epoch %d invisible at watermark %d",
					probe, ackedAt[probe], st.Applied)
			}
			if st.Healthy && st.Head >= st.Applied && st.Head-st.Applied <= maxStale {
				prefixChecks++
			}
			break // one probe per round keeps the load phase fast
		}
	}
	if prefixChecks == 0 {
		t.Fatal("no follower read ever passed the freshness gate; staleness bound untested")
	}

	// Let the followers approach the head, then ack a tail of writes
	// and kill the leader before the stream can ship them — the
	// promoted follower must recover them from the leader's log alone.
	deadline := time.Now().Add(5 * time.Second)
	for f1.Applied() < 40 && f2.Applied() < 40 {
		if time.Now().After(deadline) {
			t.Fatalf("followers stalled: applied %d/%d", f1.Applied(), f2.Applied())
		}
		time.Sleep(time.Millisecond)
	}
	write(9001, 9002, 9003, 9004)
	write(9005, 9006)
	if err := c.KillShard(0); err != nil {
		t.Fatalf("KillShard: %v", err)
	}

	promotions := obs.Value(obs.ReplicaPromotions)
	newAddr, err := c.Promote(0)
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if obs.Enabled && obs.Value(obs.ReplicaPromotions) != promotions+1 {
		t.Fatal("promotion not counted")
	}

	// Contract 1: nothing acked is lost, and nothing invented — the
	// promoted leader's state equals the model exactly.
	for k, tp := range model {
		ok, err := cl.Contains(tp)
		if err != nil {
			t.Fatalf("Contains(%d) after failover: %v", k, err)
		}
		if !ok {
			t.Fatalf("acked write %d (epoch %d) lost across failover", k, ackedAt[k])
		}
	}
	n, err := cl.Len()
	if err != nil {
		t.Fatalf("Len: %v", err)
	}
	if n != len(model) {
		t.Fatalf("promoted leader serves %d tuples, model has %d", n, len(model))
	}
	extra := 0
	if err := cl.ScanAll(nil, nil, func(tp tuple.Tuple) bool {
		if _, ok := model[tp[0]]; !ok {
			extra++
		}
		return true
	}); err != nil {
		t.Fatalf("ScanAll: %v", err)
	}
	if extra != 0 {
		t.Fatalf("promoted leader serves %d tuples the model never acked", extra)
	}

	// The new leader takes writes; the old one stays fenced out.
	if _, err := cl.Insert([]tuple.Tuple{{77777, 7}}); err != nil {
		t.Fatalf("Insert after failover: %v", err)
	}
	if ok, err := cl.Contains(tuple.Tuple{77777, 7}); err != nil || !ok {
		t.Fatalf("post-failover write not served: %v %v", ok, err)
	}
	if err := c.RestartShard(0); err == nil {
		t.Fatal("old leader restart accepted after failover; split-brain fence missing")
	}
	if c.Directory().Addr(0) != newAddr {
		t.Fatalf("directory points at %s, promotion returned %s", c.Directory().Addr(0), newAddr)
	}
}
