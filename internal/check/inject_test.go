//go:build lockinject

package check

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"specbtree/internal/core"
	"specbtree/internal/obs"
	"specbtree/internal/optlock"
	"specbtree/internal/tuple"
)

// These tests only exist under the lockinject build tag: they install
// fault injectors into the optimistic lock (optlock.SetInjector) to force
// the tree's retry/abort/restart machinery deterministically, and they
// exercise the known-broken pre-PR 3 bound path (core.LowerBoundRacy)
// that only that build flavour compiles. Run them with
//
//	go test -race -tags lockinject ./internal/check ./internal/optlock
//
// (the Makefile's check-harness target does exactly that).

// TestInjectedValidationFailuresDriveRestarts forces every 7th lease
// validation to fail and asserts (a) reads stay correct — the restart
// loop retries until a clean descent — and (b) the restart machinery is
// visible through the obs counters.
func TestInjectedValidationFailuresDriveRestarts(t *testing.T) {
	tr := core.New(1)
	for k := uint64(0); k < 300; k += 2 {
		tr.Insert(tuple.Tuple{k})
	}
	var calls atomic.Uint64
	optlock.SetInjector(func(l *optlock.Lock, s optlock.Site) optlock.Action {
		if s == optlock.SiteValidate && calls.Add(1)%7 == 0 {
			return optlock.ActFail
		}
		return optlock.ActNone
	})
	defer optlock.ClearInjector()

	beforeFail := obs.Value(obs.LockReadValidationFailures)
	beforeRestart := obs.Value(obs.TreeRestarts)
	for k := uint64(0); k < 300; k++ {
		want := k%2 == 0
		if got := tr.Contains(tuple.Tuple{k}); got != want {
			t.Fatalf("Contains(%d) = %v under injected validation failures, want %v", k, got, want)
		}
	}
	if calls.Load() == 0 {
		t.Fatal("injector never fired")
	}
	if obs.Enabled {
		if d := obs.Value(obs.LockReadValidationFailures) - beforeFail; d == 0 {
			t.Errorf("no validation failures recorded despite injection")
		}
		if d := obs.Value(obs.TreeRestarts) - beforeRestart; d == 0 {
			t.Errorf("no restarts recorded despite injected validation failures")
		}
	}
}

// TestInjectedUpgradeFailures forces a fraction of read-lease upgrades to
// lose their CAS, driving the insert path through its upgrade-failure
// fallback, and asserts the inserts land exactly once anyway.
func TestInjectedUpgradeFailures(t *testing.T) {
	tr := core.New(1)
	var calls atomic.Uint64
	optlock.SetInjector(func(l *optlock.Lock, s optlock.Site) optlock.Action {
		if s == optlock.SiteUpgrade && calls.Add(1)%3 == 0 {
			return optlock.ActFail
		}
		return optlock.ActNone
	})
	defer optlock.ClearInjector()

	before := obs.Value(obs.LockUpgradeFailures)
	fresh := 0
	for k := uint64(0); k < 200; k++ {
		if tr.Insert(tuple.Tuple{k % 100}) {
			fresh++
		}
	}
	if fresh != 100 || tr.Len() != 100 {
		t.Fatalf("fresh=%d len=%d under injected upgrade failures, want 100/100", fresh, tr.Len())
	}
	for k := uint64(0); k < 100; k++ {
		if !tr.Contains(tuple.Tuple{k}) {
			t.Fatalf("key %d lost under injected upgrade failures", k)
		}
	}
	if obs.Enabled {
		if d := obs.Value(obs.LockUpgradeFailures) - before; d == 0 {
			t.Errorf("no upgrade failures recorded despite injection")
		}
	}
}

// TestInjectedDelayedPublication stretches every writer's
// version-publication window (SiteEndWrite fires while the lock is still
// odd) with scheduler yields, while concurrent readers probe. Readers
// must never observe keys that were never inserted and must see every
// key once the writer is done.
func TestInjectedDelayedPublication(t *testing.T) {
	tr := core.New(1)
	var endWrites atomic.Uint64
	optlock.SetInjector(func(l *optlock.Lock, s optlock.Site) optlock.Action {
		if s == optlock.SiteEndWrite {
			endWrites.Add(1)
			for i := 0; i < 3; i++ {
				runtime.Gosched()
			}
		}
		return optlock.ActNone
	})
	defer optlock.ClearInjector()

	const n = 200
	var wg sync.WaitGroup
	var done atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := uint64(0); k < n; k++ {
			tr.Insert(tuple.Tuple{k * 2}) // even keys only
		}
		done.Store(true)
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !done.Load(); i++ {
				k := uint64(i*97) % n
				if tr.Contains(tuple.Tuple{2*k + 1}) {
					t.Errorf("phantom odd key %d observed", 2*k+1)
					return
				}
				// Yield every iteration: on a single-CPU host a hot reader
				// loop would otherwise hold the processor for a full
				// preemption slice each time the delayed writer yields.
				runtime.Gosched()
			}
		}(r)
	}
	wg.Wait()
	for k := uint64(0); k < n; k++ {
		if !tr.Contains(tuple.Tuple{k * 2}) {
			t.Fatalf("key %d missing after delayed-publication run", k*2)
		}
	}
	if endWrites.Load() == 0 {
		t.Fatal("SiteEndWrite injector never fired")
	}
}

// TestRacyBoundDeterministic is the acceptance test for the injection
// pillar: a single-threaded rendezvous reproduces the PR 3
// load-after-validate race on demand. The injector waits for the racy
// descent's successful leaf validation (optlock.SiteValidated on exactly
// the covering leaf's lock) and inserts a new maximal key synchronously
// inside that window. The pre-fix path (core.LowerBoundRacy) then loads
// the bumped count and hands back a cursor for a lower_bound(MaxUint64)
// query that must have none — while the fixed path, which captured the
// count before validating, stays correct under the identical injection.
// No goroutines, no timing: the failure is deterministic, three times in
// a row.
func TestRacyBoundDeterministic(t *testing.T) {
	probe := tuple.Tuple{math.MaxUint64}
	for iter := 0; iter < 3; iter++ {
		tr := core.New(1)
		for k := uint64(0); k < 10; k++ {
			tr.Insert(tuple.Tuple{k})
		}
		leaf := tr.LeafLockOf(probe)
		if leaf == nil {
			t.Fatal("no covering leaf")
		}
		var armed, inHook atomic.Bool
		injected := uint64(100 + iter)
		optlock.SetInjector(func(l *optlock.Lock, s optlock.Site) optlock.Action {
			if s == optlock.SiteValidated && l == leaf && armed.Load() &&
				inHook.CompareAndSwap(false, true) {
				armed.Store(false)
				tr.Insert(tuple.Tuple{injected})
				inHook.Store(false)
			}
			return optlock.ActNone
		})

		armed.Store(true)
		c := tr.LowerBoundRacy(probe)
		if !c.Valid() {
			t.Fatalf("iter %d: racy path returned end — the injected insert did not land in the window", iter)
		}
		if got := c.Tuple()[0]; got != injected {
			t.Fatalf("iter %d: racy cursor at %d, expected the injected key %d", iter, got, injected)
		}

		armed.Store(true)
		if c := tr.LowerBound(probe); c.Valid() {
			t.Fatalf("iter %d: fixed path returned %v for lower_bound(MaxUint64) under the same injection",
				iter, []uint64(c.Tuple()))
		}
		optlock.ClearInjector()
	}
}

// racyCurrent lets the oracle injector reach the tree of the instance
// currently under test (factories construct fresh instances during
// minimization too), and racyArmed gates the injector to bound queries:
// the instance arms it around each Bound call. Gating matters — an
// injector firing on every validation would also fire on every cursor
// step of the oracle's scan check, and since each firing appends a key
// larger than all others, the scan would chase a forever-growing tail.
var (
	racyCurrent atomic.Pointer[core.Tree]
	racyArmed   atomic.Bool
)

// racyBoundFactory adapts the core tree for the oracle with a switchable
// lower-bound implementation: the pre-PR 3 racy descent or the fixed one.
func racyBoundFactory(name string, racy bool) Factory {
	return Factory{
		Name:       name,
		Arity1Only: true,
		New: func(arity int) Instance {
			tr := core.New(1)
			racyCurrent.Store(tr)
			return &racyBoundInstance{t: tr, racy: racy}
		},
	}
}

type racyBoundInstance struct {
	t    *core.Tree
	racy bool
}

func (i *racyBoundInstance) NewWriter() Writer { return i }
func (i *racyBoundInstance) Barrier()          {}
func (i *racyBoundInstance) NewReader() Reader { return i }

func (i *racyBoundInstance) Insert(t tuple.Tuple) bool   { return i.t.Insert(t) }
func (i *racyBoundInstance) Flush()                      {}
func (i *racyBoundInstance) Contains(t tuple.Tuple) bool { return i.t.Contains(t) }

func (i *racyBoundInstance) Bound(v tuple.Tuple, strict bool) (tuple.Tuple, bool) {
	racyArmed.Store(true)
	defer racyArmed.Store(false)
	var c core.Cursor
	if strict {
		c = i.t.UpperBound(v)
	} else if i.racy {
		c = i.t.LowerBoundRacy(v)
	} else {
		c = i.t.LowerBound(v)
	}
	if !c.Valid() {
		return nil, false
	}
	return c.Tuple(), true
}

func (i *racyBoundInstance) Scan(yield func(tuple.Tuple) bool) { i.t.All(yield) }
func (i *racyBoundInstance) Len() int                          { return i.t.Len() }

// validatedWriterInjector installs the oracle-level race amplifier: at
// most once per armed bound query (the instance arms racyArmed around
// each Bound call), a successful lease validation of the rightmost
// leaf's lock admits a concurrent writer — an insert of a fresh huge key
// (far above the oracle's key space, so probes for model keys are
// undisturbed) executed synchronously inside the validated-to-next-load
// window. This is the same rendezvous as TestRacyBoundDeterministic,
// re-targeted on every bound probe of the oracle run: the pre-fix bound
// path returns bogus cursors for past-the-end queries, the fixed path
// does not. The hook fires on exactly one validation per query (CAS on
// the armed flag) and only at the leaf — an unconditional
// insert-on-every-validation variant feeds the descent's own restart
// loop, which then never converges.
func validatedWriterInjector() func() {
	var inHook atomic.Bool
	var next atomic.Uint64
	next.Store(1 << 40)
	optlock.SetInjector(func(l *optlock.Lock, s optlock.Site) optlock.Action {
		if s != optlock.SiteValidated || !racyArmed.Load() {
			return optlock.ActNone
		}
		if !inHook.CompareAndSwap(false, true) {
			return optlock.ActNone
		}
		defer inHook.Store(false)
		// Single-worker oracle: the tree is quiescent while the hook runs,
		// so the unsynchronised LeafLockOf is sound here.
		tr := racyCurrent.Load()
		if tr == nil || l != tr.LeafLockOf(tuple.Tuple{math.MaxUint64}) {
			return optlock.ActNone
		}
		if racyArmed.CompareAndSwap(true, false) { // consume: once per query
			tr.Insert(tuple.Tuple{next.Add(1)})
		}
		return optlock.ActNone
	})
	return optlock.ClearInjector
}

// boundViolations filters an oracle report down to the violations that
// are injection-proof evidence of a bound-contract break. The injected
// keys are real tree elements the model cannot see, so they legitimately
// diverge the whole-structure len/scan checks and any bound probe past
// the model's key space (the injected key IS the correct answer there) —
// on both arms. What can never be legitimate is a non-none answer to
// lower_bound(MaxUint64): no inserted key equals MaxUint64, so any valid
// cursor there is a count-race artifact. Contains probes are below the
// injected range and are kept as well.
func boundViolations(rep Report) []Violation {
	var out []Violation
	for _, v := range rep.Violations {
		switch v.Op {
		case "contains":
			out = append(out, v)
		case "lower_bound", "upper_bound":
			if len(v.Arg) == 1 && v.Arg[0] == math.MaxUint64 {
				out = append(out, v)
			}
		}
	}
	return out
}

// racyOracleConfig is single-worker so the rendezvous is deterministic:
// with one goroutine probing, the injector's recursion guard is always
// free when the racy descent validates its leaf, so the leading
// lower_bound(MaxUint64) probe of every round fires the race.
func racyOracleConfig() Config {
	return Config{Seed: 99, Workers: 1, Rounds: 2, Inserts: 120, Reads: 32, KeySpace: 200}
}

// TestOracleFlagsRevertedBoundFix is the PR acceptance criterion: with
// the PR 3 fix effectively reverted (the harness driving LowerBoundRacy),
// the differential oracle fails deterministically under the injected
// validated-window writer.
func TestOracleFlagsRevertedBoundFix(t *testing.T) {
	defer validatedWriterInjector()()
	rep := Run(racyBoundFactory("btree-racy", true), 1, racyOracleConfig())
	bv := boundViolations(rep)
	if len(bv) == 0 {
		t.Fatalf("oracle did not flag the reverted bound fix:\n%s", rep.Summary())
	}
	sawMax := false
	for _, v := range bv {
		if v.Op == "lower_bound" && len(v.Arg) == 1 && v.Arg[0] == math.MaxUint64 {
			sawMax = true
			if v.Want != "(none)" {
				t.Errorf("unexpected want for past-the-end probe: %s", v.Want)
			}
		}
	}
	if !sawMax {
		t.Errorf("expected the lower_bound(MaxUint64) probe to fail, got:\n%s", rep.Summary())
	}
}

// TestOracleCleanOnFixedBoundPath is the control arm: the identical
// workload, seed and injection against the fixed bound path produces no
// read-probe violations at all.
func TestOracleCleanOnFixedBoundPath(t *testing.T) {
	defer validatedWriterInjector()()
	rep := Run(racyBoundFactory("btree-fixed", false), 1, racyOracleConfig())
	if bv := boundViolations(rep); len(bv) != 0 {
		t.Fatalf("fixed bound path diverged under injection:\n%s", rep.Summary())
	}
}
