package check

import (
	"specbtree/internal/core"
	"specbtree/internal/gbtree"
	"specbtree/internal/masstree"
	"specbtree/internal/palm"
	"specbtree/internal/relation"
	"specbtree/internal/syncadapt"
	"specbtree/internal/tuple"
)

// Instance is one provider under test. The oracle's phase discipline
// matches the relation contract: Writer handles are driven concurrently
// during the insert phase; Barrier runs single-threaded between phases;
// Reader handles, Scan and Len are driven concurrently (readers) or
// single-threaded (whole-structure checks) while no writer is active.
type Instance interface {
	// NewWriter returns a per-goroutine insert handle. Safe to call
	// concurrently.
	NewWriter() Writer
	// Barrier is the write-phase/read-phase transition hook (e.g. the
	// reduction set's merge, PALM's batch flush). Single-threaded.
	Barrier()
	// NewReader returns a per-goroutine read handle (carrying hints where
	// the backend supports them). Read phase only.
	NewReader() Reader
	// Scan iterates over all tuples; the yielded view is transient.
	Scan(yield func(tuple.Tuple) bool)
	// Len returns the element count.
	Len() int
}

// Writer is a per-goroutine insert handle.
type Writer interface {
	// Insert adds t, reporting whether it was new.
	Insert(t tuple.Tuple) bool
	// Flush settles any batched per-worker state (hint-set observability
	// batches, queued operations) at the phase barrier.
	Flush()
}

// Reader is a per-goroutine read handle.
type Reader interface {
	// Contains reports membership.
	Contains(t tuple.Tuple) bool
	// Bound returns the first element >= v (strict=false) or > v
	// (strict=true); ok=false when no such element exists. Only called
	// when the factory does not declare NoBounds.
	Bound(v tuple.Tuple, strict bool) (tuple.Tuple, bool)
}

// Factory describes one oracle target and constructs fresh instances —
// both for the main run and for the minimizer's sequential replays.
type Factory struct {
	// Name designates the provider in reports.
	Name string
	// Arity1Only restricts the target to single-column tuples (the
	// uint64-keyed comparison structures).
	Arity1Only bool
	// Unordered relaxes the scan check to set equality (hash backends).
	Unordered bool
	// NoBounds skips bound probes (backends without ordered queries).
	NoBounds bool
	// ApproxFreshness skips the exactly-once insert-freshness check
	// (the reduction set detects duplicates only locally until merge).
	ApproxFreshness bool
	// New constructs an empty instance of the given arity.
	New func(arity int) Instance
}

// Targets returns the full provider fleet the oracle drives: every
// registered relation provider (each through the same relation.Ops
// surface the engine uses), the core tree through its native cursor
// API, and the remaining comparison structures (masstree, palm) and
// externally synchronised baselines (package syncadapt).
func Targets() []Factory {
	var fs []Factory
	for _, name := range relation.Names() {
		fs = append(fs, relFactory(relation.MustLookup(name)))
	}
	fs = append(fs,
		coreCursorFactory(),
		masstreeFactory(),
		palmFactory(),
		lockedFactory(),
		reductionFactory(),
		serveFactory(),
	)
	return fs
}

// closeInstance releases an instance that holds external resources
// (sockets, listeners) by calling its optional Close method; the plain
// in-memory targets implement none and are left to the GC.
func closeInstance(inst Instance) {
	if c, ok := inst.(interface{ Close() }); ok {
		c.Close()
	}
}

// Target returns the factory with the given name, or ok=false.
func Target(name string) (Factory, bool) {
	for _, f := range Targets() {
		if f.Name == name {
			return f, true
		}
	}
	return Factory{}, false
}

// cloneBound copies a transient scan view for return from Bound.
func cloneBound(t tuple.Tuple) tuple.Tuple {
	return append(tuple.Tuple(nil), t...)
}

// scanBound derives a bound query from an ordered scan: the first
// yielded element at or beyond v wins. O(position of v), acceptable at
// oracle sizes, and doubles as a check that the backend's scan order
// agrees with its membership structure.
func scanBound(scan func(func(tuple.Tuple) bool), v tuple.Tuple, strict bool) (tuple.Tuple, bool) {
	want := 0
	if strict {
		want = 1
	}
	var res tuple.Tuple
	scan(func(t tuple.Tuple) bool {
		if tuple.Compare(t, v) >= want {
			res = cloneBound(t)
			return false
		}
		return true
	})
	return res, res != nil
}

// ---- generic adapter over a registered relation provider ----

type relInstance struct {
	rel relation.Relation
}

func relFactory(p relation.Provider) Factory {
	return Factory{
		Name:      p.Name,
		Unordered: !p.Ordered,
		NoBounds:  !p.Ordered,
		New: func(arity int) Instance {
			return &relInstance{rel: p.New(arity)}
		},
	}
}

type relWriter struct{ ops relation.Ops }

func (w *relWriter) Insert(t tuple.Tuple) bool { return w.ops.Insert(t) }
func (w *relWriter) Flush() {
	if f, ok := w.ops.(relation.StatsFlusher); ok {
		f.FlushStats()
	}
}

type relReader struct {
	inst *relInstance
	ops  relation.Ops
}

func (r *relReader) Contains(t tuple.Tuple) bool { return r.ops.Contains(t) }

func (r *relReader) Bound(v tuple.Tuple, strict bool) (tuple.Tuple, bool) {
	// Bound through the engine-facing surface: a range scan when the Ops
	// supports one (the concurrent tree's hinted lower-bound path), an
	// ordered-scan prefix walk otherwise.
	if rs, ok := r.ops.(relation.RangeScanner); ok {
		var res tuple.Tuple
		rs.RangeScan(v, nil, func(t tuple.Tuple) bool {
			if strict && tuple.Compare(t, v) == 0 {
				return true // skip the equal element, keep scanning
			}
			res = cloneBound(t)
			return false
		})
		return res, res != nil
	}
	return scanBound(r.inst.rel.Scan, v, strict)
}

func (i *relInstance) NewWriter() Writer                 { return &relWriter{ops: i.rel.NewOps()} }
func (i *relInstance) Barrier()                          {}
func (i *relInstance) NewReader() Reader                 { return &relReader{inst: i, ops: i.rel.NewOps()} }
func (i *relInstance) Scan(yield func(tuple.Tuple) bool) { i.rel.Scan(yield) }
func (i *relInstance) Len() int                          { return i.rel.Len() }

// ---- core tree through its native cursor API ----

// coreCursorFactory drives the concurrent tree directly: hinted inserts,
// hinted membership, and — unlike the relation adapter, which reaches
// lower bounds through range scans — both LowerBoundHint and
// UpperBoundHint cursor construction, the exact paths of the PR 3 race.
func coreCursorFactory() Factory {
	return Factory{
		Name: "btree-cursor",
		New: func(arity int) Instance {
			return &coreInstance{t: core.New(arity)}
		},
	}
}

type coreInstance struct{ t *core.Tree }

type coreWriter struct {
	t *core.Tree
	h *core.Hints
}

func (w *coreWriter) Insert(t tuple.Tuple) bool { return w.t.InsertHint(t, w.h) }
func (w *coreWriter) Flush()                    { w.h.FlushObs() }

type coreReader struct {
	t *core.Tree
	h *core.Hints
}

func (r *coreReader) Contains(t tuple.Tuple) bool { return r.t.ContainsHint(t, r.h) }

func (r *coreReader) Bound(v tuple.Tuple, strict bool) (tuple.Tuple, bool) {
	var c core.Cursor
	if strict {
		c = r.t.UpperBoundHint(v, r.h)
	} else {
		c = r.t.LowerBoundHint(v, r.h)
	}
	if !c.Valid() {
		return nil, false
	}
	return c.Tuple(), true
}

func (i *coreInstance) NewWriter() Writer                 { return &coreWriter{t: i.t, h: core.NewHints()} }
func (i *coreInstance) Barrier()                          {}
func (i *coreInstance) NewReader() Reader                 { return &coreReader{t: i.t, h: core.NewHints()} }
func (i *coreInstance) Scan(yield func(tuple.Tuple) bool) { i.t.All(yield) }
func (i *coreInstance) Len() int                          { return i.t.Len() }

// ---- masstree (uint64 keys) ----

func masstreeFactory() Factory {
	return Factory{
		Name:       "masstree",
		Arity1Only: true,
		New: func(arity int) Instance {
			return &masstreeInstance{t: masstree.New()}
		},
	}
}

type masstreeInstance struct{ t *masstree.Tree }

func (i *masstreeInstance) NewWriter() Writer { return i }
func (i *masstreeInstance) Barrier()          {}
func (i *masstreeInstance) NewReader() Reader { return i }

func (i *masstreeInstance) Insert(t tuple.Tuple) bool   { return i.t.Insert(t[0]) }
func (i *masstreeInstance) Flush()                      {}
func (i *masstreeInstance) Contains(t tuple.Tuple) bool { return i.t.Contains(t[0]) }

func (i *masstreeInstance) Bound(v tuple.Tuple, strict bool) (tuple.Tuple, bool) {
	return scanBound(i.Scan, v, strict)
}

func (i *masstreeInstance) Scan(yield func(tuple.Tuple) bool) {
	buf := make(tuple.Tuple, 1)
	i.t.Scan(func(k uint64) bool {
		buf[0] = k
		return yield(buf)
	})
}

func (i *masstreeInstance) Len() int { return i.t.Len() }

// ---- PALM (uint64 keys, batch synchronous) ----

func palmFactory() Factory {
	return Factory{
		Name:       "palm",
		Arity1Only: true,
		New: func(arity int) Instance {
			return &palmInstance{t: palm.New()}
		},
	}
}

type palmInstance struct{ t *palm.Tree }

func (i *palmInstance) NewWriter() Writer { return i }
func (i *palmInstance) Barrier()          { i.t.Flush() }
func (i *palmInstance) NewReader() Reader { return i }

func (i *palmInstance) Insert(t tuple.Tuple) bool   { return i.t.Insert(t[0]) }
func (i *palmInstance) Flush()                      {}
func (i *palmInstance) Contains(t tuple.Tuple) bool { return i.t.Contains(t[0]) }

func (i *palmInstance) Bound(v tuple.Tuple, strict bool) (tuple.Tuple, bool) {
	return scanBound(i.Scan, v, strict)
}

func (i *palmInstance) Scan(yield func(tuple.Tuple) bool) {
	buf := make(tuple.Tuple, 1)
	i.t.Scan(func(k uint64) bool {
		buf[0] = k
		return yield(buf)
	})
}

func (i *palmInstance) Len() int { return i.t.Len() }

// ---- globally locked sequential B-tree (syncadapt.Locked) ----

func lockedFactory() Factory {
	return Factory{
		Name: "locked-gbtree",
		New: func(arity int) Instance {
			return &lockedInstance{l: syncadapt.NewLocked(arity)}
		},
	}
}

type lockedInstance struct{ l *syncadapt.Locked }

func (i *lockedInstance) NewWriter() Writer { return i }
func (i *lockedInstance) Barrier()          {}
func (i *lockedInstance) NewReader() Reader { return i }

func (i *lockedInstance) Insert(t tuple.Tuple) bool   { return i.l.Insert(t) }
func (i *lockedInstance) Flush()                      {}
func (i *lockedInstance) Contains(t tuple.Tuple) bool { return i.l.Contains(t) }

func (i *lockedInstance) Bound(v tuple.Tuple, strict bool) (tuple.Tuple, bool) {
	want := 0
	if strict {
		want = 1
	}
	var res tuple.Tuple
	i.l.ScanRange(v, nil, func(t tuple.Tuple) bool {
		if tuple.Compare(t, v) >= want {
			res = cloneBound(t)
			return false
		}
		return true
	})
	return res, res != nil
}

func (i *lockedInstance) Scan(yield func(tuple.Tuple) bool) { i.l.Scan(yield) }
func (i *lockedInstance) Len() int                          { return i.l.Len() }

// ---- parallel-reduction set (syncadapt.Reduction) ----

// reductionFactory wraps the parallel-reduction baseline. Freshness is
// approximate by design: each worker deduplicates only against its
// private tree, so the same tuple inserted by two workers reports fresh
// twice until Merge reconciles — ApproxFreshness documents exactly the
// trade-off the paper's Figure 4 evaluates.
func reductionFactory() Factory {
	return Factory{
		Name:            "reduction-gbtree",
		ApproxFreshness: true,
		New: func(arity int) Instance {
			return &reductionInstance{r: syncadapt.NewReduction(arity)}
		},
	}
}

type reductionInstance struct {
	r *syncadapt.Reduction
}

type reductionWriter struct{ w *syncadapt.Worker }

func (w *reductionWriter) Insert(t tuple.Tuple) bool { return w.w.Insert(t) }
func (w *reductionWriter) Flush()                    {}

func (i *reductionInstance) NewWriter() Writer {
	return &reductionWriter{w: i.r.NewWorker()}
}

func (i *reductionInstance) Barrier() { i.r.Merge() }

func (i *reductionInstance) NewReader() Reader {
	return &reductionReader{t: i.r.Result()}
}

// reductionReader queries the merged tree; readers exist only after
// Barrier ran Merge, so t is never nil.
type reductionReader struct{ t *gbtree.Tree }

func (r *reductionReader) Contains(t tuple.Tuple) bool { return r.t.Contains(t) }

func (r *reductionReader) Bound(v tuple.Tuple, strict bool) (tuple.Tuple, bool) {
	want := 0
	if strict {
		want = 1
	}
	var res tuple.Tuple
	r.t.ScanRange(v, nil, func(t tuple.Tuple) bool {
		if tuple.Compare(t, v) >= want {
			res = cloneBound(t)
			return false
		}
		return true
	})
	return res, res != nil
}

func (i *reductionInstance) Scan(yield func(tuple.Tuple) bool) {
	if t := i.r.Result(); t != nil {
		t.Scan(yield)
	}
}

func (i *reductionInstance) Len() int { return i.r.Len() }
