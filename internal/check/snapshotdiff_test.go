package check

import (
	"testing"

	"specbtree/internal/core"
	"specbtree/internal/tuple"
)

// TestSnapshotDiff is the snapshot differential: per-wave epoch
// snapshots checked exactly against the frozen pre-epoch reference set
// while the next wave's writers mutate the live tree. Untagged, so the
// lockinject flavour of make check-harness runs it with the optimistic
// lock's fault-injection shim compiled in.
func TestSnapshotDiff(t *testing.T) {
	for _, arity := range []int{1, 2} {
		arity := arity
		t.Run("arity"+string(rune('0'+arity)), func(t *testing.T) {
			t.Parallel()
			rep := RunSnapshotDiff(arity, SnapshotConfig{Seed: 0x5a9 + int64(arity), Short: testing.Short()})
			if rep.Failed() {
				t.Errorf("snapshot differential failed:\n%s", rep.Summary())
			}
			if rep.FinalLen == 0 {
				t.Errorf("suspicious run: final length 0")
			}
		})
	}
}

// TestSnapshotDiffDeterministic pins replayability: the same seed must
// produce the same outcome.
func TestSnapshotDiffDeterministic(t *testing.T) {
	cfg := SnapshotConfig{Seed: 99, Short: true}
	a := RunSnapshotDiff(2, cfg)
	b := RunSnapshotDiff(2, cfg)
	if a.FinalLen != b.FinalLen || len(a.Violations) != len(b.Violations) {
		t.Fatalf("same seed, different outcome: %+v vs %+v", a, b)
	}
}

// TestSnapshotDiffCatchesLeak proves the checker would notice a snapshot
// leaking in-flight-epoch writes: checking a pre-epoch snapshot against
// a reference that already includes a post-epoch tuple must record
// violations (the exact failure a broken snapshot would produce with the
// roles reversed).
func TestSnapshotDiffCatchesLeak(t *testing.T) {
	tree := core.New(2)
	tree.Insert(tuple.Tuple{1, 1})
	snap := tree.Snapshot()
	tree.Insert(tuple.Tuple{2, 2}) // post-epoch; invisible to snap

	m := newModel(2)
	m.insert(tuple.Tuple{1, 1})
	m.insert(tuple.Tuple{2, 2})
	m.rebuild()

	var got []SnapshotViolation
	cfg := SnapshotConfig{Seed: 1, Short: true}.withDefaults()
	checkSnapshot(0, 0, snap, m, cfg, 2, func(v SnapshotViolation) { got = append(got, v) })
	if len(got) == 0 {
		t.Fatal("checker accepted a snapshot missing a reference tuple")
	}
}
