// Package rbtree is a red-black tree set of tuples — the paper's
// "STL rbtset" baseline (std::set is a red-black tree in all mainstream
// C++ standard libraries). Insert-only, like every relation structure in
// this repository. Not safe for concurrent mutation.
package rbtree

import (
	"fmt"

	"specbtree/internal/tuple"
)

type color bool

const (
	red   color = false
	black color = true
)

type node struct {
	key                 tuple.Tuple
	left, right, parent *node
	color               color
}

// Tree is a sequential red-black tree set of fixed-arity tuples.
type Tree struct {
	arity int
	root  *node
	size  int
}

// New creates an empty tree for tuples with the given number of columns.
func New(arity int) *Tree {
	if arity <= 0 {
		panic(fmt.Sprintf("rbtree: invalid arity %d", arity))
	}
	return &Tree{arity: arity}
}

// Arity returns the tuple width.
func (t *Tree) Arity() int { return t.arity }

// Len returns the number of elements.
func (t *Tree) Len() int { return t.size }

// Empty reports whether the set has no elements.
func (t *Tree) Empty() bool { return t.size == 0 }

func (t *Tree) checkArity(v tuple.Tuple) {
	if len(v) != t.arity {
		panic(fmt.Sprintf("rbtree: arity-%d tuple in arity-%d tree", len(v), t.arity))
	}
}

// Contains reports whether v is in the set.
func (t *Tree) Contains(v tuple.Tuple) bool {
	t.checkArity(v)
	n := t.root
	for n != nil {
		switch c := tuple.Compare(v, n.key); {
		case c < 0:
			n = n.left
		case c > 0:
			n = n.right
		default:
			return true
		}
	}
	return false
}

// Insert adds v, returning false if already present.
func (t *Tree) Insert(v tuple.Tuple) bool {
	t.checkArity(v)
	var parent *node
	n := t.root
	less := false
	for n != nil {
		parent = n
		switch c := tuple.Compare(v, n.key); {
		case c < 0:
			n, less = n.left, true
		case c > 0:
			n, less = n.right, false
		default:
			return false
		}
	}
	fresh := &node{key: v.Clone(), parent: parent}
	if parent == nil {
		t.root = fresh
	} else if less {
		parent.left = fresh
	} else {
		parent.right = fresh
	}
	t.size++
	t.fixInsert(fresh)
	return true
}

func (t *Tree) rotateLeft(x *node) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *Tree) rotateRight(x *node) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func (t *Tree) fixInsert(z *node) {
	for z.parent != nil && z.parent.color == red {
		g := z.parent.parent
		if z.parent == g.left {
			u := g.right
			if u != nil && u.color == red {
				z.parent.color = black
				u.color = black
				g.color = red
				z = g
				continue
			}
			if z == z.parent.right {
				z = z.parent
				t.rotateLeft(z)
			}
			z.parent.color = black
			g.color = red
			t.rotateRight(g)
		} else {
			u := g.left
			if u != nil && u.color == red {
				z.parent.color = black
				u.color = black
				g.color = red
				z = g
				continue
			}
			if z == z.parent.left {
				z = z.parent
				t.rotateRight(z)
			}
			z.parent.color = black
			g.color = red
			t.rotateLeft(g)
		}
	}
	t.root.color = black
}

// minimum returns the leftmost node of the subtree rooted at n.
func minimum(n *node) *node {
	for n.left != nil {
		n = n.left
	}
	return n
}

// successor returns the in-order successor of n, or nil.
func successor(n *node) *node {
	if n.right != nil {
		return minimum(n.right)
	}
	p := n.parent
	for p != nil && n == p.right {
		n, p = p, p.parent
	}
	return p
}

// Scan iterates over all elements in ascending order.
func (t *Tree) Scan(yield func(tuple.Tuple) bool) {
	if t.root == nil {
		return
	}
	for n := minimum(t.root); n != nil; n = successor(n) {
		if !yield(n.key) {
			return
		}
	}
}

// lowerBoundNode returns the node of the first element >= v (strict=false)
// or > v (strict=true), or nil.
func (t *Tree) lowerBoundNode(v tuple.Tuple, strict bool) *node {
	var best *node
	n := t.root
	for n != nil {
		c := tuple.Compare(n.key, v)
		take := c > 0 || (!strict && c == 0)
		if take {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	return best
}

// ScanRange iterates over elements x with from <= x < to in order
// (to == nil scans to the end).
func (t *Tree) ScanRange(from, to tuple.Tuple, yield func(tuple.Tuple) bool) {
	n := t.lowerBoundNode(from, false)
	for n != nil {
		if to != nil && tuple.Compare(n.key, to) >= 0 {
			return
		}
		if !yield(n.key) {
			return
		}
		n = successor(n)
	}
}

// Check validates red-black invariants for tests: root black, no red
// parent-child pairs, equal black height on all paths, ordering.
func (t *Tree) Check() error {
	if t.root == nil {
		return nil
	}
	if t.root.color != black {
		return fmt.Errorf("rbtree: red root")
	}
	_, count, err := t.checkNode(t.root, nil, nil)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rbtree: size %d but %d nodes", t.size, count)
	}
	return nil
}

func (t *Tree) checkNode(n *node, lo, hi tuple.Tuple) (blackHeight, count int, err error) {
	if n == nil {
		return 1, 0, nil
	}
	if lo != nil && tuple.Compare(n.key, lo) <= 0 {
		return 0, 0, fmt.Errorf("rbtree: ordering violation (low)")
	}
	if hi != nil && tuple.Compare(n.key, hi) >= 0 {
		return 0, 0, fmt.Errorf("rbtree: ordering violation (high)")
	}
	if n.color == red {
		if (n.left != nil && n.left.color == red) || (n.right != nil && n.right.color == red) {
			return 0, 0, fmt.Errorf("rbtree: red node with red child")
		}
	}
	lh, lc, err := t.checkNode(n.left, lo, n.key)
	if err != nil {
		return 0, 0, err
	}
	rh, rc, err := t.checkNode(n.right, n.key, hi)
	if err != nil {
		return 0, 0, err
	}
	if lh != rh {
		return 0, 0, fmt.Errorf("rbtree: black-height mismatch (%d vs %d)", lh, rh)
	}
	h := lh
	if n.color == black {
		h++
	}
	return h, lc + rc + 1, nil
}
