package rbtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"specbtree/internal/tuple"
)

func TestInsertContainsModel(t *testing.T) {
	tr := New(2)
	model := map[[2]uint64]bool{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 6000; i++ {
		tp := tuple.Tuple{uint64(rng.Intn(150)), uint64(rng.Intn(150))}
		k := [2]uint64{tp[0], tp[1]}
		if tr.Insert(tp) == model[k] {
			t.Fatalf("insert disagreement on %v", tp)
		}
		model[k] = true
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", tr.Len(), len(model))
	}
	for k := range model {
		if !tr.Contains(tuple.Tuple{k[0], k[1]}) {
			t.Fatalf("%v missing", k)
		}
	}
	if tr.Contains(tuple.Tuple{999, 999}) {
		t.Error("phantom element")
	}
}

func TestOrderedAndReverseInsertBalance(t *testing.T) {
	// Red-black invariants must hold even under adversarial insertion
	// orders (the Check includes black-height equality).
	asc, desc := New(1), New(1)
	const n = 5000
	for i := 0; i < n; i++ {
		asc.Insert(tuple.Tuple{uint64(i)})
		desc.Insert(tuple.Tuple{uint64(n - i)})
	}
	if err := asc.Check(); err != nil {
		t.Fatalf("ascending: %v", err)
	}
	if err := desc.Check(); err != nil {
		t.Fatalf("descending: %v", err)
	}
}

func TestScanSorted(t *testing.T) {
	tr := New(2)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		tr.Insert(tuple.Tuple{uint64(rng.Intn(100)), uint64(rng.Intn(100))})
	}
	var prev tuple.Tuple
	count := 0
	tr.Scan(func(tp tuple.Tuple) bool {
		if prev != nil && tuple.Compare(prev, tp) >= 0 {
			t.Fatalf("scan out of order: %v then %v", prev, tp)
		}
		prev = tp.Clone()
		count++
		return true
	})
	if count != tr.Len() {
		t.Fatalf("scan visited %d of %d", count, tr.Len())
	}
}

func TestScanRangePrefix(t *testing.T) {
	tr := New(2)
	for x := uint64(0); x < 20; x++ {
		for y := uint64(0); y < 8; y++ {
			tr.Insert(tuple.Tuple{x, y})
		}
	}
	lo := tuple.PrefixLowerBound(tuple.Tuple{5}, 2)
	hi := tuple.PrefixUpperBound(tuple.Tuple{5}, 2)
	count := 0
	tr.ScanRange(lo, hi, func(tp tuple.Tuple) bool {
		if tp[0] != 5 {
			t.Fatalf("out-of-prefix tuple %v", tp)
		}
		count++
		return true
	})
	if count != 8 {
		t.Fatalf("prefix scan yielded %d, want 8", count)
	}
}

func TestScanRangeProperty(t *testing.T) {
	tr := New(1)
	present := map[uint64]bool{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		v := uint64(rng.Intn(300))
		tr.Insert(tuple.Tuple{v})
		present[v] = true
	}
	f := func(a, b uint16) bool {
		from, to := uint64(a%310), uint64(b%310)
		if from > to {
			from, to = to, from
		}
		want := 0
		for v := from; v < to; v++ {
			if present[v] {
				want++
			}
		}
		got := 0
		tr.ScanRange(tuple.Tuple{from}, tuple.Tuple{to}, func(tuple.Tuple) bool {
			got++
			return true
		})
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndEarlyStop(t *testing.T) {
	tr := New(1)
	if !tr.Empty() {
		t.Error("fresh tree not empty")
	}
	tr.Scan(func(tuple.Tuple) bool { t.Error("scan on empty yielded"); return false })
	for i := 0; i < 50; i++ {
		tr.Insert(tuple.Tuple{uint64(i)})
	}
	count := 0
	tr.Scan(func(tuple.Tuple) bool { count++; return count < 7 })
	if count != 7 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestInsertClonesKey(t *testing.T) {
	tr := New(2)
	buf := tuple.Tuple{1, 2}
	tr.Insert(buf)
	buf[0] = 99 // caller reuses its buffer
	if !tr.Contains(tuple.Tuple{1, 2}) {
		t.Error("tree aliased the caller's buffer")
	}
	if tr.Contains(tuple.Tuple{99, 2}) {
		t.Error("mutation leaked into the tree")
	}
}
