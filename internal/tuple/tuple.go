// Package tuple provides fixed-arity integer tuples and the comparators
// used throughout the Datalog relation data structures.
//
// Datalog relations are sets of fixed-size n-ary tuples of unsigned
// integers (symbols are interned to integers before evaluation, exactly as
// in Soufflé). All relation data structures in this repository store rows
// of raw uint64 words; package tuple supplies the shared vocabulary:
// lexicographic ordering, three-way comparison, prefix ranges for range
// queries, and helpers for encoding and generating tuple streams.
package tuple

import (
	"fmt"
	"strings"
)

// Tuple is a single fixed-arity row. The arity is the slice length; all
// tuples stored in one relation share the same arity. Tuples are value-like:
// functions in this repository never retain a caller's Tuple without
// copying it.
type Tuple []uint64

// Clone returns an independent copy of t.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// String renders the tuple as "(a, b, c)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Compare performs a three-way lexicographic comparison of a and b,
// returning a negative value if a < b, zero if equal, positive if a > b.
// This is the custom 3-way comparator the paper's implementation notes
// call out: a single pass decides <, ==, and > at once, rather than the
// two passes a Less-based interface forces.
//
// Both tuples must have the same arity; comparison stops at the shorter
// length if they do not (callers are expected to enforce equal arity).
func Compare(a, b Tuple) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// Less reports whether a precedes b in lexicographic order.
func Less(a, b Tuple) bool { return Compare(a, b) < 0 }

// Equal reports whether a and b contain the same values.
func Equal(a, b Tuple) bool { return len(a) == len(b) && Compare(a, b) == 0 }

// CompareWords is Compare over flat word slices of equal arity, used by the
// B-tree node code paths that read rows out of a node's flat key area.
func CompareWords(a, b []uint64) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// PrefixLowerBound returns the smallest tuple of the given arity whose
// first len(prefix) columns equal prefix. Together with PrefixUpperBound
// it brackets the range scanned by a bound-prefix Datalog join: all tuples
// t with t[:len(prefix)] == prefix satisfy lower <= t < upper.
func PrefixLowerBound(prefix Tuple, arity int) Tuple {
	t := make(Tuple, arity)
	copy(t, prefix)
	return t
}

// PrefixUpperBound returns the exclusive upper bound of the range of
// tuples of the given arity starting with prefix. If the prefix is the
// maximal prefix (all columns at MaxUint64) the returned bound is nil,
// meaning "end of relation".
func PrefixUpperBound(prefix Tuple, arity int) Tuple {
	t := make(Tuple, arity)
	copy(t, prefix)
	for i := len(prefix) - 1; i >= 0; i-- {
		if t[i] != ^uint64(0) {
			t[i]++
			for j := i + 1; j < len(prefix); j++ {
				t[j] = 0
			}
			return t
		}
	}
	return nil
}

// Key2 constructs a binary tuple; binary relations are the dominant case
// in Datalog workloads (cf. the paper's footnote on 2-D data).
func Key2(a, b uint64) Tuple { return Tuple{a, b} }

// KeyString renders a tuple into a compact string key usable as a map key
// in reference models and hash sets.
func KeyString(t Tuple) string {
	var b strings.Builder
	b.Grow(len(t) * 8)
	for _, v := range t {
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (56 - 8*i))
		}
		b.Write(buf[:])
	}
	return b.String()
}

// FromKeyString is the inverse of KeyString.
func FromKeyString(s string) Tuple {
	if len(s)%8 != 0 {
		panic("tuple: malformed key string")
	}
	t := make(Tuple, len(s)/8)
	for i := range t {
		var v uint64
		for j := 0; j < 8; j++ {
			v = v<<8 | uint64(s[i*8+j])
		}
		t[i] = v
	}
	return t
}

// Hash returns a 64-bit hash of the tuple (FNV-1a over the words), used by
// the hash-based set implementations.
func Hash(t Tuple) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range t {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	return h
}

// HashWords is Hash over a flat word slice.
func HashWords(w []uint64) uint64 { return Hash(Tuple(w)) }
