package tuple

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCompareBasics(t *testing.T) {
	tests := []struct {
		a, b Tuple
		want int
	}{
		{Tuple{1, 2}, Tuple{1, 2}, 0},
		{Tuple{1, 2}, Tuple{1, 3}, -1},
		{Tuple{1, 3}, Tuple{1, 2}, 1},
		{Tuple{1, 2}, Tuple{2, 0}, -1},
		{Tuple{2, 0}, Tuple{1, 9}, 1},
		{Tuple{0}, Tuple{0}, 0},
		{Tuple{}, Tuple{}, 0},
		{Tuple{7, 10}, Tuple{7, 4}, 1}, // the paper's hint example pair
	}
	for _, tc := range tests {
		if got := Compare(tc.a, tc.b); sign(got) != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want sign %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b [3]uint64) bool {
		x, y := Tuple(a[:]), Tuple(b[:])
		return sign(Compare(x, y)) == -sign(Compare(y, x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareTransitiveViaSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ts := make([]Tuple, 500)
	for i := range ts {
		ts[i] = Tuple{uint64(rng.Intn(20)), uint64(rng.Intn(20)), uint64(rng.Intn(20))}
	}
	sort.Slice(ts, func(i, j int) bool { return Less(ts[i], ts[j]) })
	for i := 1; i < len(ts); i++ {
		if Compare(ts[i-1], ts[i]) > 0 {
			t.Fatalf("sort produced out-of-order pair at %d: %v > %v", i, ts[i-1], ts[i])
		}
	}
}

func TestEqual(t *testing.T) {
	if !Equal(Tuple{1, 2}, Tuple{1, 2}) {
		t.Error("equal tuples reported unequal")
	}
	if Equal(Tuple{1, 2}, Tuple{1, 2, 3}) {
		t.Error("different-arity tuples reported equal")
	}
	if Equal(Tuple{1, 2}, Tuple{1, 3}) {
		t.Error("different tuples reported equal")
	}
}

func TestClone(t *testing.T) {
	a := Tuple{1, 2, 3}
	b := a.Clone()
	b[0] = 99
	if a[0] != 1 {
		t.Error("Clone shares storage with the original")
	}
	if !Equal(a, Tuple{1, 2, 3}) {
		t.Errorf("original mutated: %v", a)
	}
}

func TestString(t *testing.T) {
	if got := (Tuple{1, 2}).String(); got != "(1, 2)" {
		t.Errorf("String() = %q", got)
	}
	if got := (Tuple{}).String(); got != "()" {
		t.Errorf("String() = %q", got)
	}
}

func TestPrefixBounds(t *testing.T) {
	lo := PrefixLowerBound(Tuple{7}, 2)
	hi := PrefixUpperBound(Tuple{7}, 2)
	if !Equal(lo, Tuple{7, 0}) {
		t.Errorf("lower = %v", lo)
	}
	if !Equal(hi, Tuple{8, 0}) {
		t.Errorf("upper = %v", hi)
	}

	// Everything with first column 7 is inside [lo, hi); 8-rows are not.
	for _, v := range []uint64{0, 1, 1 << 40, ^uint64(0)} {
		tp := Tuple{7, v}
		if Compare(tp, lo) < 0 || Compare(tp, hi) >= 0 {
			t.Errorf("tuple %v outside prefix range [%v, %v)", tp, lo, hi)
		}
	}
	if Compare(Tuple{8, 0}, hi) < 0 {
		t.Error("(8,0) inside the range for prefix (7)")
	}
	if Compare(Tuple{6, ^uint64(0)}, lo) >= 0 {
		t.Error("(6,max) inside the range for prefix (7)")
	}
}

func TestPrefixUpperBoundOverflow(t *testing.T) {
	max := ^uint64(0)
	if got := PrefixUpperBound(Tuple{max}, 2); got != nil {
		t.Errorf("upper bound of maximal prefix should be nil, got %v", got)
	}
	// Carry: (5, max) rolls into (6, 0).
	got := PrefixUpperBound(Tuple{5, max}, 3)
	if !Equal(got, Tuple{6, 0, 0}) {
		t.Errorf("carry upper bound = %v", got)
	}
	if got := PrefixUpperBound(Tuple{max, max}, 2); got != nil {
		t.Errorf("all-max prefix should yield nil, got %v", got)
	}
}

func TestPrefixBoundsProperty(t *testing.T) {
	f := func(p [2]uint64, rest uint64) bool {
		prefix := Tuple(p[:])
		lo := PrefixLowerBound(prefix, 3)
		hi := PrefixUpperBound(prefix, 3)
		inside := Tuple{p[0], p[1], rest}
		if Compare(inside, lo) < 0 {
			return false
		}
		return hi == nil || Compare(inside, hi) < 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyStringRoundTrip(t *testing.T) {
	f := func(a, b, c uint64) bool {
		tp := Tuple{a, b, c}
		return Equal(FromKeyString(KeyString(tp)), tp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyStringOrderPreserving(t *testing.T) {
	// Big-endian packing makes byte-wise string order match tuple order.
	f := func(a, b [2]uint64) bool {
		x, y := Tuple(a[:]), Tuple(b[:])
		return (Compare(x, y) < 0) == (KeyString(x) < KeyString(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashSpreads(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		seen[Hash(Tuple{i, i * 31})] = true
	}
	if len(seen) < 990 {
		t.Errorf("hash collisions too frequent: %d distinct of 1000", len(seen))
	}
}

func TestHashEqualTuplesEqualHash(t *testing.T) {
	f := func(a, b uint64) bool {
		return Hash(Tuple{a, b}) == Hash(Tuple{a, b})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareWordsMatchesCompare(t *testing.T) {
	f := func(a, b [4]uint64) bool {
		return CompareWords(a[:], b[:]) == Compare(Tuple(a[:]), Tuple(b[:]))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKey2(t *testing.T) {
	if !Equal(Key2(3, 4), Tuple{3, 4}) {
		t.Error("Key2 mismatch")
	}
}
