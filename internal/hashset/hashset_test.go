package hashset

import (
	"math/rand"
	"testing"

	"specbtree/internal/tuple"
)

func TestInsertContainsModel(t *testing.T) {
	s := New(2)
	model := map[[2]uint64]bool{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		tp := tuple.Tuple{uint64(rng.Intn(200)), uint64(rng.Intn(200))}
		k := [2]uint64{tp[0], tp[1]}
		if s.Insert(tp) == model[k] {
			t.Fatalf("insert disagreement on %v", tp)
		}
		model[k] = true
	}
	if s.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", s.Len(), len(model))
	}
	for k := range model {
		if !s.Contains(tuple.Tuple{k[0], k[1]}) {
			t.Fatalf("%v missing", k)
		}
	}
	if s.Contains(tuple.Tuple{5000, 0}) {
		t.Error("phantom element")
	}
}

func TestGrowthPreservesElements(t *testing.T) {
	s := New(3)
	const n = 50000 // forces many doublings from the initial 16 slots
	for i := 0; i < n; i++ {
		if !s.Insert(tuple.Tuple{uint64(i), uint64(i * 7), uint64(i % 13)}) {
			t.Fatalf("duplicate at %d", i)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := 0; i < n; i += 97 {
		if !s.Contains(tuple.Tuple{uint64(i), uint64(i * 7), uint64(i % 13)}) {
			t.Fatalf("%d missing after growth", i)
		}
	}
}

func TestScanVisitsAllOnce(t *testing.T) {
	s := New(1)
	for i := 0; i < 1000; i++ {
		s.Insert(tuple.Tuple{uint64(i)})
	}
	seen := map[uint64]int{}
	s.Scan(func(tp tuple.Tuple) bool {
		seen[tp[0]]++
		return true
	})
	if len(seen) != 1000 {
		t.Fatalf("scan saw %d distinct elements", len(seen))
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("element %d visited %d times", v, c)
		}
	}
}

func TestScanRangeFilters(t *testing.T) {
	s := New(2)
	for x := uint64(0); x < 50; x++ {
		s.Insert(tuple.Tuple{x, x * 2})
	}
	count := 0
	s.ScanRange(tuple.Tuple{10, 0}, tuple.Tuple{20, 0}, func(tp tuple.Tuple) bool {
		if tp[0] < 10 || tp[0] >= 20 {
			t.Fatalf("out-of-range %v", tp)
		}
		count++
		return true
	})
	if count != 10 {
		t.Fatalf("range yielded %d, want 10", count)
	}
}

func TestEarlyStop(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		s.Insert(tuple.Tuple{uint64(i)})
	}
	count := 0
	s.Scan(func(tuple.Tuple) bool { count++; return count < 3 })
	if count != 3 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestAdversarialCollisions(t *testing.T) {
	// Sequential keys sharing low bits stress linear probing runs.
	s := New(1)
	for i := 0; i < 2000; i++ {
		s.Insert(tuple.Tuple{uint64(i) << 32})
	}
	for i := 0; i < 2000; i++ {
		if !s.Contains(tuple.Tuple{uint64(i) << 32}) {
			t.Fatalf("%d missing", i)
		}
		if s.Contains(tuple.Tuple{uint64(i)<<32 | 1}) {
			t.Fatalf("phantom near %d", i)
		}
	}
}

func TestInvalidArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}
