// Package hashset is an open-addressing hash set of tuples — the paper's
// "STL hashset" baseline (std::unordered_set). O(1) insert and lookup, no
// efficient range queries: range scans degrade to full scans with a
// filter, which is exactly the deficit the paper's evaluation exposes for
// hash-based relation representations. Not safe for concurrent mutation.
package hashset

import (
	"fmt"

	"specbtree/internal/tuple"
)

// Set is a sequential open-addressing (linear probing) hash set of
// fixed-arity tuples. Slots store rows inline in one flat word array for
// cache-friendly probing.
type Set struct {
	arity int
	rows  []uint64 // slots*arity words
	used  []bool
	size  int
	mask  uint64 // slots-1; slots is a power of two
}

const initialSlots = 16

// maxLoadNum/maxLoadDen is the grow threshold (3/4).
const (
	maxLoadNum = 3
	maxLoadDen = 4
)

// New creates an empty set for tuples with the given number of columns.
func New(arity int) *Set {
	if arity <= 0 {
		panic(fmt.Sprintf("hashset: invalid arity %d", arity))
	}
	return &Set{
		arity: arity,
		rows:  make([]uint64, initialSlots*arity),
		used:  make([]bool, initialSlots),
		mask:  initialSlots - 1,
	}
}

// Arity returns the tuple width.
func (s *Set) Arity() int { return s.arity }

// Len returns the number of elements.
func (s *Set) Len() int { return s.size }

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool { return s.size == 0 }

func (s *Set) checkArity(v tuple.Tuple) {
	if len(v) != s.arity {
		panic(fmt.Sprintf("hashset: arity-%d tuple in arity-%d set", len(v), s.arity))
	}
}

func (s *Set) slotEquals(slot uint64, v tuple.Tuple) bool {
	base := slot * uint64(s.arity)
	for i := 0; i < s.arity; i++ {
		if s.rows[base+uint64(i)] != v[i] {
			return false
		}
	}
	return true
}

// Contains reports whether v is in the set.
func (s *Set) Contains(v tuple.Tuple) bool {
	s.checkArity(v)
	slot := tuple.Hash(v) & s.mask
	for s.used[slot] {
		if s.slotEquals(slot, v) {
			return true
		}
		slot = (slot + 1) & s.mask
	}
	return false
}

// Insert adds v, returning false if already present.
func (s *Set) Insert(v tuple.Tuple) bool {
	s.checkArity(v)
	if uint64(s.size+1)*maxLoadDen > uint64(len(s.used))*maxLoadNum {
		s.grow()
	}
	slot := tuple.Hash(v) & s.mask
	for s.used[slot] {
		if s.slotEquals(slot, v) {
			return false
		}
		slot = (slot + 1) & s.mask
	}
	base := slot * uint64(s.arity)
	copy(s.rows[base:base+uint64(s.arity)], v)
	s.used[slot] = true
	s.size++
	return true
}

func (s *Set) grow() {
	oldRows, oldUsed := s.rows, s.used
	slots := uint64(len(oldUsed)) * 2
	s.rows = make([]uint64, slots*uint64(s.arity))
	s.used = make([]bool, slots)
	s.mask = slots - 1
	arity := uint64(s.arity)
	for i, u := range oldUsed {
		if !u {
			continue
		}
		row := oldRows[uint64(i)*arity : (uint64(i)+1)*arity]
		slot := tuple.HashWords(row) & s.mask
		for s.used[slot] {
			slot = (slot + 1) & s.mask
		}
		copy(s.rows[slot*arity:(slot+1)*arity], row)
		s.used[slot] = true
	}
}

// Scan iterates over all elements in unspecified (storage) order, passing
// a view into internal storage that is only valid during the call.
func (s *Set) Scan(yield func(tuple.Tuple) bool) {
	arity := uint64(s.arity)
	for i, u := range s.used {
		if !u {
			continue
		}
		if !yield(tuple.Tuple(s.rows[uint64(i)*arity : (uint64(i)+1)*arity])) {
			return
		}
	}
}

// ScanRange iterates over elements x with from <= x < to. Hash sets keep
// no order, so this is a full scan with a filter — the structural weakness
// the paper's range-query discussion points at. Results are in storage
// order, not sorted order.
func (s *Set) ScanRange(from, to tuple.Tuple, yield func(tuple.Tuple) bool) {
	s.Scan(func(x tuple.Tuple) bool {
		if from != nil && tuple.Compare(x, from) < 0 {
			return true
		}
		if to != nil && tuple.Compare(x, to) >= 0 {
			return true
		}
		return yield(x)
	})
}
