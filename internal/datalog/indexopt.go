package datalog

import (
	"math/bits"
	"sort"
)

// Index selection, after "Optimal On The Fly Index Selection in Polynomial
// Time" (Jordan, Scholz, Subotić — the paper's citation [29], used by
// Soufflé and highlighted in §5): every prefix search against a relation
// is characterised by its *signature*, the set of columns bound at query
// time. An index (a lexicographic column order) serves a signature iff the
// signature's columns form a prefix of the order — so one index serves a
// whole ⊂-chain of signatures. The minimum number of indexes covering all
// signatures is therefore a minimum chain cover of the signature poset,
// which by Dilworth/Fulkerson reduces to maximum bipartite matching.

// sigSet is a set of column positions, as a bitmask (arity <= 64).
type sigSet uint64

func (s sigSet) contains(c int) bool { return s&(1<<uint(c)) != 0 }

func (s sigSet) count() int { return bits.OnesCount64(uint64(s)) }

// subsetOf reports s ⊆ o.
func (s sigSet) subsetOf(o sigSet) bool { return s&o == s }

// ChainCover partitions the given signatures into a minimum number of
// ⊂-chains. Input signatures may repeat; the result covers the distinct
// non-zero ones, each chain sorted by ascending cardinality.
func ChainCover(sigs []sigSet) [][]sigSet {
	// Deduplicate, drop the empty signature (served by any index).
	seen := map[sigSet]bool{}
	var nodes []sigSet
	for _, s := range sigs {
		if s != 0 && !seen[s] {
			seen[s] = true
			nodes = append(nodes, s)
		}
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].count() != nodes[j].count() {
			return nodes[i].count() < nodes[j].count()
		}
		return nodes[i] < nodes[j]
	})
	n := len(nodes)
	if n == 0 {
		return nil
	}

	// Bipartite graph: left copy u — right copy v when u ⊂ v. A maximum
	// matching links each matched u to its successor in some chain
	// (Fulkerson's reduction of minimum path cover).
	adj := make([][]int, n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && nodes[u].subsetOf(nodes[v]) {
				adj[u] = append(adj[u], v)
			}
		}
	}
	matchL := make([]int, n) // left u -> right v, or -1
	matchR := make([]int, n) // right v -> left u, or -1
	for i := range matchL {
		matchL[i] = -1
		matchR[i] = -1
	}
	var visited []bool
	var augment func(u int) bool
	augment = func(u int) bool {
		for _, v := range adj[u] {
			if visited[v] {
				continue
			}
			visited[v] = true
			if matchR[v] == -1 || augment(matchR[v]) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		return false
	}
	for u := 0; u < n; u++ {
		visited = make([]bool, n)
		augment(u)
	}

	// Chains start at signatures that are nobody's matched successor.
	var chains [][]sigSet
	for v := 0; v < n; v++ {
		if matchR[v] != -1 {
			continue
		}
		var chain []sigSet
		u := v
		for u != -1 {
			chain = append(chain, nodes[u])
			u = matchL[u]
		}
		chains = append(chains, chain)
	}
	return chains
}

// orderFromChain derives the lexicographic column order serving every
// signature of the chain (sorted ascending by cardinality): the columns of
// each signature, minus those already placed, in ascending column order,
// followed by the remaining columns.
func orderFromChain(chain []sigSet, arity int) []int {
	var placed sigSet
	perm := make([]int, 0, arity)
	for _, s := range chain {
		for c := 0; c < arity; c++ {
			if s.contains(c) && !placed.contains(c) {
				perm = append(perm, c)
				placed |= 1 << uint(c)
			}
		}
	}
	for c := 0; c < arity; c++ {
		if !placed.contains(c) {
			perm = append(perm, c)
		}
	}
	return perm
}

// isIdentityPerm reports whether perm is 0,1,2,...
func isIdentityPerm(perm []int) bool {
	for i, c := range perm {
		if i != c {
			return false
		}
	}
	return true
}

// finalizeIndexes computes the relation's index set from the collected
// search signatures: the identity index (index 0, used for facts, scans,
// membership probes and negation) plus one index per chain of the minimum
// chain cover. Chains whose derived order is the identity reuse index 0.
func (r *engRel) finalizeIndexes(sigs []sigSet) {
	r.sigIndex = map[sigSet]int{}
	for _, chain := range ChainCover(sigs) {
		perm := orderFromChain(chain, r.arity)
		var id int
		if isIdentityPerm(perm) {
			id = 0
		} else {
			id = r.ensureIndex(perm)
		}
		for _, s := range chain {
			r.sigIndex[s] = id
		}
	}
}

// indexFor resolves the index and prefix length serving a signature.
// The empty signature scans index 0 in full.
func (r *engRel) indexFor(sig sigSet) (index, prefixLen int) {
	if sig == 0 {
		return 0, 0
	}
	id, ok := r.sigIndex[sig]
	if !ok {
		// Signature collection mirrors rule compilation; a miss is a bug.
		panic("datalog: internal: unregistered search signature")
	}
	return id, sig.count()
}
