package datalog

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokDirective // .decl .input .output
	tokLParen
	tokRParen
	tokComma
	tokPeriod
	tokColonDash // :-
	tokBang
	tokCmp // = != < <= > >=
	tokUnderscore
	tokColon
)

type token struct {
	kind tokenKind
	text string
	num  uint64
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("datalog: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for {
				if l.pos+1 >= len(l.src) {
					return l.errf("unterminated block comment")
				}
				if l.src[l.pos] == '\n' {
					l.line++
				}
				if l.src[l.pos] == '*' && l.src[l.pos+1] == '/' {
					l.pos += 2
					break
				}
				l.pos++
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '?' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next scans the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", line: l.line}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", line: l.line}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", line: l.line}, nil
	case c == '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokCmp, text: "!=", line: l.line}, nil
		}
		l.pos++
		return token{kind: tokBang, text: "!", line: l.line}, nil
	case c == ':':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			l.pos += 2
			return token{kind: tokColonDash, text: ":-", line: l.line}, nil
		}
		l.pos++
		return token{kind: tokColon, text: ":", line: l.line}, nil
	case c == '=':
		l.pos++
		return token{kind: tokCmp, text: "=", line: l.line}, nil
	case c == '<' || c == '>':
		op := string(c)
		l.pos++
		if l.peekByte() == '=' {
			op += "="
			l.pos++
		}
		return token{kind: tokCmp, text: op, line: l.line}, nil
	case c == '.':
		// Directive if followed by a letter, else a period.
		if l.pos+1 < len(l.src) && unicode.IsLetter(rune(l.src[l.pos+1])) {
			l.pos++
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			return token{kind: tokDirective, text: l.src[start:l.pos], line: l.line}, nil
		}
		l.pos++
		return token{kind: tokPeriod, text: ".", line: l.line}, nil
	case c == '"':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf("unterminated string literal")
			}
			ch := l.src[l.pos]
			if ch == '"' {
				l.pos++
				return token{kind: tokString, text: sb.String(), line: l.line}, nil
			}
			if ch == '\n' {
				return token{}, l.errf("newline in string literal")
			}
			if ch == '\\' && l.pos+1 < len(l.src) {
				l.pos++
				ch = l.src[l.pos]
				switch ch {
				case 'n':
					ch = '\n'
				case 't':
					ch = '\t'
				}
			}
			sb.WriteByte(ch)
			l.pos++
		}
	case unicode.IsDigit(rune(c)):
		var v uint64
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			v = v*10 + uint64(l.src[l.pos]-'0')
			l.pos++
		}
		if l.pos < len(l.src) && isIdentStart(l.src[l.pos]) {
			return token{}, l.errf("malformed number")
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], num: v, line: l.line}, nil
	case c == '_' && (l.pos+1 >= len(l.src) || !isIdentPart(l.src[l.pos+1])):
		l.pos++
		return token{kind: tokUnderscore, text: "_", line: l.line}, nil
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}, nil
	}
	return token{}, l.errf("unexpected character %q", string(c))
}
