package datalog

// The keyed plan cache. Compiling a program — safety check,
// stratification, signature collection, minimum-chain-cover index
// selection and per-version rule compilation — is pure in the program
// text: neither the provider, the worker count nor the evaluation
// strategy changes its outcome. Engines that evaluate the same program
// repeatedly (the benchmark drivers, the relation server's per-request
// engines) therefore share compiled plans through a PlanCache keyed by
// the canonical program text. A cached entry holds only immutable
// compile-time artifacts — index layouts, plan skeletons, the symbol
// intern order — never relation instances; binding an entry into a new
// engine clones the mutable shells around the shared read-only slices.
// DESIGN.md §12 documents the key derivation and the invalidation rule.

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"specbtree/internal/obs"
)

// planEntry is one cached compilation: everything New derives from the
// program text before relations are instantiated. All fields are
// treated as read-only once stored.
type planEntry struct {
	// syms is the symbol intern order of the compile, replayed into the
	// binding engine's fresh table so cached plans' interned constants
	// resolve to the same ids.
	syms []string
	// strata is the stratification result (read-only, shared).
	strata []Stratum
	// rels are relation skeletons: index layouts without instances.
	rels map[string]*engRel
	// plans are plan skeletons per stratum, referencing the skeleton rels.
	plans map[int][]*rulePlan
	// sigs records each relation's sorted index signatures at store
	// time; lookup revalidates the skeletons against it and drops the
	// entry on mismatch (an index-set change invalidates the plans).
	sigs map[string][]string
}

// PlanCacheStats is a snapshot of a cache's accounting.
type PlanCacheStats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"`
	Entries       int    `json:"entries"`
}

// HitRate returns the fraction of lookups served from the cache.
func (s PlanCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// PlanCache memoises program compilations, keyed by canonical program
// text. It is safe for concurrent use; entries are evicted in
// least-recently-used order beyond the capacity. The zero value is not
// usable — construct with NewPlanCache.
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*planEntry
	order   []string // LRU order, least recent first
	stats   PlanCacheStats
}

// NewPlanCache creates a cache bounded to capacity entries (minimum 1).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{cap: capacity, entries: map[string]*planEntry{}}
}

// DefaultPlanCache is the process-wide cache engines use unless Options
// selects another (or opts out).
var DefaultPlanCache = NewPlanCache(256)

// Stats returns a snapshot of the cache accounting.
func (c *PlanCache) Stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}

// Invalidate drops every cached entry (the accounting survives).
func (c *PlanCache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*planEntry{}
	c.order = c.order[:0]
}

// touch moves key to the most-recent end of the LRU order.
func (c *PlanCache) touch(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), key)
			return
		}
	}
	c.order = append(c.order, key)
}

// lookup returns the entry for key, or nil on a miss. A present entry
// whose recorded index signatures no longer match its skeletons is
// dropped and counted as an invalidation (and the lookup as a miss):
// the plans were compiled against an index set that no longer holds.
func (c *PlanCache) lookup(key string) *planEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok && !validEntry(e) {
		c.stats.Invalidations++
		obs.Inc(obs.EnginePlanCacheInvalidations)
		delete(c.entries, key)
		for i, k := range c.order {
			if k == key {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
		e, ok = nil, false
	}
	if !ok {
		c.stats.Misses++
		obs.Inc(obs.EnginePlanCacheMisses)
		return nil
	}
	c.stats.Hits++
	obs.Inc(obs.EnginePlanCacheHits)
	c.touch(key)
	return e
}

// store inserts an entry, evicting the least recently used beyond the
// capacity.
func (c *PlanCache) store(key string, e *planEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; !ok && len(c.entries) >= c.cap {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, victim)
	}
	c.entries[key] = e
	c.touch(key)
}

// validEntry checks an entry's skeletons against its recorded index
// signatures.
func validEntry(e *planEntry) bool {
	if len(e.sigs) != len(e.rels) {
		return false
	}
	for name, want := range e.sigs {
		r, ok := e.rels[name]
		if !ok {
			return false
		}
		got := indexSignatures(r)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
	}
	return true
}

// indexSignatures returns the sorted signature strings of a relation's
// index set.
func indexSignatures(r *engRel) []string {
	out := make([]string, len(r.indexes))
	for i, d := range r.indexes {
		out[i] = d.signature()
	}
	sort.Strings(out)
	return out
}

// programKey derives the cache key: the canonical program text.
// Declarations and rules fully determine the compilation; inputs and
// outputs are included for conservatism (they are cheap and make keys
// readable in debugger dumps).
func programKey(p *Program) string {
	var sb strings.Builder
	for _, d := range p.Decls {
		fmt.Fprintf(&sb, ".decl %s/%d\n", d.Name, d.Arity)
	}
	for _, r := range p.Rules {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, ".in %s\n.out %s\n", strings.Join(p.Inputs, ","), strings.Join(p.Outputs, ","))
	return sb.String()
}

// cloneCompiled deep-copies the mutable shells of a compiled program —
// the engRel structs and rulePlan structs — while sharing the read-only
// interior (index definitions, prefix/action/push slices, strata). Used
// in both directions: snapshotting a fresh compile into the cache and
// binding a cached entry into a new engine. Relation instances
// (full/delta/nw) and profiling accumulators are never carried across.
func cloneCompiled(rels map[string]*engRel, plans map[int][]*rulePlan) (map[string]*engRel, map[int][]*rulePlan) {
	relMap := make(map[*engRel]*engRel, len(rels))
	newRels := make(map[string]*engRel, len(rels))
	for name, r := range rels {
		nr := &engRel{
			name:     r.name,
			arity:    r.arity,
			indexes:  r.indexes,
			sig:      r.sig,
			sigIndex: r.sigIndex,
		}
		relMap[r] = nr
		newRels[name] = nr
	}
	newPlans := make(map[int][]*rulePlan, len(plans))
	for si, ps := range plans {
		nps := make([]*rulePlan, len(ps))
		for i, p := range ps {
			np := *p
			np.evalTime, np.evalCount = 0, 0
			np.head = relMap[p.head]
			np.body = make([]litPlan, len(p.body))
			for j, l := range p.body {
				if l.rel != nil {
					l.rel = relMap[l.rel]
				}
				l.actScans, l.actRows, l.actEmitted = 0, 0, 0
				np.body[j] = l
			}
			nps[i] = &np
		}
		newPlans[si] = nps
	}
	return newRels, newPlans
}

// snapshotEntry captures a freshly compiled engine's plans into a cache
// entry. Must be called after compilation and before fact loading, so
// the symbol replay list covers exactly the constants the plans intern.
func snapshotEntry(e *Engine) *planEntry {
	rels, plans := cloneCompiled(e.rels, e.plans)
	sigs := make(map[string][]string, len(rels))
	for name, r := range rels {
		sigs[name] = indexSignatures(r)
	}
	return &planEntry{
		syms:   append([]string(nil), e.syms.names...),
		strata: e.strata,
		rels:   rels,
		plans:  plans,
		sigs:   sigs,
	}
}

// bindEntry installs a cached compilation into a fresh engine: replay
// the symbol interning, clone the skeletons, and share the strata.
func (e *Engine) bindEntry(entry *planEntry) {
	for _, s := range entry.syms {
		e.syms.Intern(s)
	}
	e.strata = entry.strata
	e.rels, e.plans = cloneCompiled(entry.rels, entry.plans)
}
