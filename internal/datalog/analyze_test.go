package datalog

import (
	"strings"
	"sync/atomic"
	"testing"

	"specbtree/internal/obs"
)

// analyzeTestSrc is a deterministic program exercising every scan-node
// flavour EXPLAIN ANALYZE annotates: a recursive rule (delta scans over
// several rounds), a comparison pushed into scan bounds, and a residual
// check that rejects rows after the pull.
const analyzeTestSrc = `
.decl edge(x: number, y: number)
.decl path(x: number, y: number)
.decl far(y: number)
.output path
.output far
edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 5). edge(5, 6).
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
far(Y) :- path(1, Y), Y > 3.
`

// actualTotals sums the per-node EXPLAIN ANALYZE accumulators of every
// compiled scan node.
func actualTotals(e *Engine) (scans, rows, emitted uint64) {
	for _, plans := range e.plans {
		for _, p := range plans {
			for i := range p.body {
				l := &p.body[i]
				if l.kind != LitAtom {
					continue
				}
				scans += atomic.LoadUint64(&l.actScans)
				rows += atomic.LoadUint64(&l.actRows)
				emitted += atomic.LoadUint64(&l.actEmitted)
			}
		}
	}
	return scans, rows, emitted
}

// TestExplainAnalyzeMatchesStats pins the exactness contract: the
// per-node actuals summed across the plan agree exactly with the
// engine's aggregate streaming Stats, for both streaming strategies and
// for single- and multi-worker runs.
func TestExplainAnalyzeMatchesStats(t *testing.T) {
	for _, strat := range []EvalStrategy{EvalStream, EvalStreamNoPushdown} {
		for _, workers := range []int{1, 4} {
			eng, err := New(mustParse(t, analyzeTestSrc), Options{Workers: workers, Strategy: strat, NoPlanCache: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Run(); err != nil {
				t.Fatal(err)
			}
			st := eng.Stats()
			scans, rows, emitted := actualTotals(eng)
			if scans != st.StreamScans || rows != st.StreamRows {
				t.Errorf("%s workers=%d: actuals scans=%d rows=%d, stats scans=%d rows=%d",
					strat, workers, scans, rows, st.StreamScans, st.StreamRows)
			}
			// Every pulled row either passed the residual actions or was
			// counted residual (the splitter partitioning keeps all pulls on
			// the chain path, where the identity is exact).
			if rows != emitted+st.ResidualRows {
				t.Errorf("%s workers=%d: rows=%d != emitted=%d + residual=%d",
					strat, workers, rows, emitted, st.ResidualRows)
			}
			out := eng.ExplainAnalyze()
			if !strings.Contains(out, "actual scans=") {
				t.Fatalf("ExplainAnalyze lacks actuals:\n%s", out)
			}
			if !strings.Contains(out, "evals=") {
				t.Fatalf("ExplainAnalyze lacks per-rule timing:\n%s", out)
			}
		}
	}
}

// TestExplainAnalyzeFreshAfterPlanCacheHit pins that binding a cached
// compilation starts from zero actuals: the second engine's totals
// reflect only its own run.
func TestExplainAnalyzeFreshAfterPlanCacheHit(t *testing.T) {
	cache := NewPlanCache(4)
	var want [2]uint64
	for i := 0; i < 2; i++ {
		eng, err := New(mustParse(t, analyzeTestSrc), Options{Workers: 2, PlanCache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		_, rows, _ := actualTotals(eng)
		if rows != eng.Stats().StreamRows {
			t.Fatalf("run %d: actual rows=%d, stats rows=%d", i, rows, eng.Stats().StreamRows)
		}
		want[i] = rows
	}
	if want[1] != want[0] {
		t.Fatalf("cache-hit run pulled %d rows, first run %d (stale actuals carried across?)", want[1], want[0])
	}
}

// TestEngineRunSpans pins the engine's span emission: a forced trace
// threaded through Options yields engine.round, engine.rule and
// iter.scan spans sharing that trace, with scans parented to rule spans
// and rule spans of fixpoint rounds parented to their round span.
func TestEngineRunSpans(t *testing.T) {
	if !obs.Enabled {
		t.Skip("observability compiled out")
	}
	obs.ResetTrace()
	trace := obs.ForceTrace()
	eng, err := New(mustParse(t, analyzeTestSrc), Options{Workers: 2, TraceID: trace, NoPlanCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	spans := obs.Spans()
	bySite := map[string][]obs.Span{}
	ids := map[obs.SpanID]obs.Span{}
	for _, s := range spans {
		if s.Trace != trace {
			t.Fatalf("span %+v carries trace %d, want %d", s, s.Trace, trace)
		}
		bySite[s.Site] = append(bySite[s.Site], s)
		ids[s.Span] = s
	}
	for _, site := range []string{"engine.round", "engine.rule", "iter.scan", "iter.scan.push"} {
		if len(bySite[site]) == 0 {
			t.Errorf("no %s spans recorded", site)
		}
	}
	// The recursive program iterates at least twice (last round converges).
	if len(bySite["engine.round"]) < 2 {
		t.Errorf("engine.round spans = %d, want >= 2", len(bySite["engine.round"]))
	}
	for _, s := range bySite["iter.scan"] {
		p, ok := ids[s.Parent]
		if !ok || p.Site != "engine.rule" {
			t.Fatalf("iter.scan span parent %d is not a retained engine.rule span", s.Parent)
		}
	}
	sawRoundChild := false
	for _, s := range bySite["engine.rule"] {
		if s.Parent == 0 {
			continue // non-recursive rule: root-parented
		}
		p, ok := ids[s.Parent]
		if !ok || p.Site != "engine.round" {
			t.Fatalf("engine.rule span parent %d is not a retained engine.round span", s.Parent)
		}
		sawRoundChild = true
	}
	if !sawRoundChild {
		t.Error("no engine.rule span parented to an engine.round span")
	}
}
