package datalog

// The streaming evaluator. Each positive body atom becomes a
// cursor-backed iterator over its assigned index; the iterators compose
// into an odometer chain that pulls tuples lazily — no intermediate
// materialisation — and comparisons on the first suffix column of a
// scanned index are pushed down into the cursor's [lo, hi) bounds
// instead of filtering after the scan. DESIGN.md §12 documents the
// contract; the materialising evaluator (evalFrom) is kept as the
// reference arm of the differential harness.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"specbtree/internal/obs"
	"specbtree/internal/relation"
	"specbtree/internal/tuple"
)

// EvalStrategy selects how rule bodies are evaluated.
type EvalStrategy int

const (
	// EvalStream composes cursor-backed iterators per body atom and
	// pulls tuples lazily through the chain, with comparison pushdown
	// tightening the scan bounds (DESIGN.md §12). The default.
	EvalStream EvalStrategy = iota
	// EvalStreamNoPushdown is EvalStream with pushdown disabled: pushed
	// comparisons are evaluated as residual filters after the scan. The
	// ablation arm of cmd/benchdatalog.
	EvalStreamNoPushdown
	// EvalMaterialize is the callback-recursion evaluator the engine
	// used before the streaming rewrite; it is the reference arm of the
	// streaming-vs-materializing differential check.
	EvalMaterialize
)

func (s EvalStrategy) String() string {
	switch s {
	case EvalStream:
		return "stream"
	case EvalStreamNoPushdown:
		return "stream-nopush"
	case EvalMaterialize:
		return "materialize"
	}
	return fmt.Sprintf("EvalStrategy(%d)", int(s))
}

// ParseStrategy resolves a strategy name as accepted by the commands'
// -strategy flags.
func ParseStrategy(name string) (EvalStrategy, error) {
	switch name {
	case "stream":
		return EvalStream, nil
	case "stream-nopush":
		return EvalStreamNoPushdown, nil
	case "materialize":
		return EvalMaterialize, nil
	}
	return 0, fmt.Errorf("datalog: unknown evaluation strategy %q (want stream, stream-nopush or materialize)", name)
}

// Strategies lists the strategy names in their canonical order.
func Strategies() []string { return []string{"stream", "stream-nopush", "materialize"} }

// pushSamplePeriod is the sampling rate of the pushdown-selectivity
// histogram: one in every pushSamplePeriod pushed scans (per worker)
// records its yield. Must be a power of two.
const pushSamplePeriod = 16

// chainStage is the per-worker runtime state of one body literal in a
// streaming chain. Atom stages own a reusable iterator and bound
// buffers; negation stages a probe buffer; comparison and negation
// stages fire exactly once per opening (done).
type chainStage struct {
	lit *litPlan

	// Positive atoms.
	iter    relation.Iterator
	lo, hi  tuple.Tuple // reusable bound buffers
	rows    uint64      // rows pulled from the current scan
	emitted uint64      // rows that passed the residual actions
	sample  bool        // record rows into the selectivity histogram at exhaustion
	empty   bool        // pushed bounds proved the scan empty; nothing to pull
	// pushedScan marks the current scan's bounds as pushdown-tightened;
	// spanStart is the scan's open time when the chain is traced.
	pushedScan bool
	spanStart  int64

	// Negated atoms.
	probe tuple.Tuple

	// Comparisons and negations: set after their single firing.
	done bool
}

// streamChain is a worker-local composed iterator over a rule body: one
// stage per literal, pulled by an odometer walk (run). A chain is
// confined to its worker goroutine — stages hold cursors and the
// worker's Ops handles — and lives for one rule evaluation, during
// which the phase-concurrency contract guarantees the scanned versions
// are not written (DESIGN.md §5.1).
type streamChain struct {
	e       *Engine
	ws      *workerState
	p       *rulePlan
	target  insertTarget
	usePush bool
	env     []uint64
	stages  []chainStage

	// trace/ruleSpan snapshot the engine's current trace context at
	// chain construction (chains never outlive one rule evaluation), so
	// iter.scan spans parent to the enclosing engine.rule span.
	trace    obs.TraceID
	ruleSpan obs.SpanID
}

func newStreamChain(e *Engine, ws *workerState, p *rulePlan, target insertTarget, usePush bool) *streamChain {
	c := &streamChain{e: e, ws: ws, p: p, target: target, usePush: usePush, trace: e.trace, ruleSpan: e.ruleSpan}
	c.env = make([]uint64, p.numVars)
	c.stages = make([]chainStage, len(p.body))
	for i := range p.body {
		l := &p.body[i]
		c.stages[i].lit = l
		switch l.kind {
		case LitAtom:
			arity := l.rel.arity
			c.stages[i].lo = make(tuple.Tuple, 0, arity)
			c.stages[i].hi = make(tuple.Tuple, 0, arity)
		case LitNegAtom:
			c.stages[i].probe = make(tuple.Tuple, len(l.ground))
		}
	}
	return c
}

// scanSource resolves the relation version stage l reads this round.
func scanSource(l *litPlan) relation.Relation {
	if l.useDelta {
		return l.rel.delta[l.index]
	}
	return l.rel.full[l.index]
}

// scanBounds computes the [lo, hi) key range of an atom stage for the
// current bindings, folding the stage's pushed comparisons into the
// bounds when pushdown is enabled. pushed reports whether a comparison
// tightened the range beyond the plain prefix bounds; empty reports a
// range proved unsatisfiable (the scan can be skipped outright). The
// returned slices alias the stage's reusable buffers; hi is nil for a
// scan running to the end of the index.
func (c *streamChain) scanBounds(s *chainStage) (lo, hi tuple.Tuple, pushed, empty bool) {
	l := s.lit
	arity := l.rel.arity
	nPrefix := len(l.prefix)
	lo = s.lo[:0]
	for _, vs := range l.prefix {
		lo = append(lo, vs.value(c.env))
	}

	// Fold the pushed comparisons into bounds on the first suffix column.
	const maxVal = ^uint64(0)
	var loCol, hiCol uint64
	hasLo, hasHi := false, false
	if c.usePush && nPrefix < arity {
		for _, pb := range l.push {
			v := pb.val.value(c.env)
			switch pb.op {
			case CmpGe:
				if !hasLo || v > loCol {
					loCol = v
				}
				hasLo = true
			case CmpGt:
				if v == maxVal {
					return nil, nil, true, true // x > max: no tuple qualifies
				}
				if !hasLo || v+1 > loCol {
					loCol = v + 1
				}
				hasLo = true
			case CmpLt:
				if !hasHi || v < hiCol {
					hiCol = v
				}
				hasHi = true
			case CmpLe:
				if v != maxVal { // x <= max is vacuous; keep the prefix bound
					if !hasHi || v+1 < hiCol {
						hiCol = v + 1
					}
					hasHi = true
				}
			case CmpEq:
				if !hasLo || v > loCol {
					loCol = v
				}
				hasLo = true
				if v != maxVal {
					if !hasHi || v+1 < hiCol {
						hiCol = v + 1
					}
					hasHi = true
				}
			}
		}
	}
	pushed = hasLo || hasHi
	if hasLo && hasHi && loCol >= hiCol {
		return nil, nil, true, true
	}

	if hasLo {
		lo = append(lo, loCol)
	}
	for len(lo) < arity {
		lo = append(lo, 0)
	}
	s.lo = lo

	if hasHi {
		h := s.hi[:0]
		h = append(h, lo[:nPrefix]...)
		h = append(h, hiCol)
		for len(h) < arity {
			h = append(h, 0)
		}
		s.hi = h
		return lo, h, pushed, false
	}
	hi = prefixUpperInto(s.hi[:0], lo[:nPrefix], arity)
	if hi != nil {
		s.hi = hi
	}
	return lo, hi, pushed, false
}

// prefixUpperInto is tuple.PrefixUpperBound into a caller-owned buffer:
// the exclusive upper bound of the range sharing prefix, padded with
// zeros to arity, or nil when the prefix is maximal (scan to the end).
func prefixUpperInto(buf, prefix tuple.Tuple, arity int) tuple.Tuple {
	buf = append(buf, prefix...)
	for i := len(buf) - 1; i >= 0; i-- {
		if buf[i] != ^uint64(0) {
			buf[i]++
			for j := i + 1; j < len(buf); j++ {
				buf[j] = 0
			}
			for len(buf) < arity {
				buf = append(buf, 0)
			}
			return buf
		}
	}
	return nil
}

// openScan seeks an atom stage's iterator to [lo, hi), creating the
// iterator on first use. Backends without an ordered cursor surface get
// the materialising fallback iterator.
func (c *streamChain) openScan(s *chainStage, lo, hi tuple.Tuple, pushed bool) {
	l := s.lit
	if s.iter == nil {
		ops := c.ws.opsFor(scanSource(l))
		if co, ok := ops.(relation.CursorOps); ok {
			s.iter = co.NewIterator()
		} else {
			s.iter = &fallbackIter{ops: ops, nPrefix: len(l.prefix), arity: l.rel.arity}
		}
	}
	c.ws.scans++
	c.ws.iterScans++
	s.rows = 0
	s.emitted = 0
	s.empty = false
	s.sample = false
	s.pushedScan = pushed
	if pushed {
		c.ws.pushScans++
		s.sample = obs.Enabled && c.ws.pushScans&(pushSamplePeriod-1) == 1
	}
	if c.trace != 0 {
		s.spanStart = obs.Clock()
	}
	s.iter.Seek(lo, hi)
}

// closeScan settles an exhausted atom scan: flush its exact actuals
// into the plan node (the EXPLAIN ANALYZE accumulators — atomic because
// workers share the litPlan) and, when the chain is traced, record the
// scan's span. Every opened scan reaches this point exactly once — the
// odometer walk always pulls a stage to exhaustion before reopening it
// — so actScans stays equal to the worker iterScans total.
func (c *streamChain) closeScan(s *chainStage) {
	l := s.lit
	atomic.AddUint64(&l.actScans, 1)
	atomic.AddUint64(&l.actRows, s.rows)
	atomic.AddUint64(&l.actEmitted, s.emitted)
	if c.trace != 0 {
		site := obs.SpanIterScan
		if s.pushedScan {
			site = obs.SpanIterScanPush
		}
		obs.RecordSpan(c.trace, 0, c.ruleSpan, site,
			s.spanStart, obs.Clock()-s.spanStart, s.rows, s.emitted)
	}
}

// open (re)positions stage i for the current bindings of the stages
// before it.
func (c *streamChain) open(i int) {
	s := &c.stages[i]
	if s.lit.kind != LitAtom {
		s.done = false
		return
	}
	lo, hi, pushed, empty := c.scanBounds(s)
	if empty {
		s.empty = true
		return
	}
	c.openScan(s, lo, hi, pushed)
}

// next advances stage i to its next satisfying binding. Atom stages
// pull tuples from their iterator until one passes the residual
// bind/check actions; comparison and negation stages fire at most once
// per opening.
func (c *streamChain) next(i int) bool {
	s := &c.stages[i]
	l := s.lit
	switch l.kind {
	case LitAtom:
		if s.empty {
			return false
		}
		nPrefix := len(l.prefix)
		for s.iter.Next() {
			c.ws.iterRows++
			s.rows++
			if applyActions(l.rest, s.iter.Tuple()[nPrefix:], c.env) {
				s.emitted++
				return true
			}
			c.ws.residualRows++
		}
		if s.sample {
			obs.Observe(obs.HistPushdownSelectivity, s.rows)
			s.sample = false
		}
		c.closeScan(s)
		return false
	case LitCmp:
		if s.done {
			return false
		}
		s.done = true
		if l.pushed && c.usePush {
			return true // absorbed into an earlier stage's scan bounds
		}
		return l.op.Eval(l.l.value(c.env), l.r.value(c.env))
	case LitNegAtom:
		if s.done {
			return false
		}
		s.done = true
		for k, vs := range l.ground {
			s.probe[k] = vs.value(c.env)
		}
		c.ws.contains++
		return !c.ws.opsFor(l.rel.full[l.index]).Contains(s.probe)
	}
	return false
}

// runFrom is the odometer walk: advance the deepest open stage; on
// success descend (or emit at the last stage), on exhaustion backtrack.
// Stage start must already be open; stages before it must have bound
// their variables into env.
func (c *streamChain) runFrom(start int) {
	depth := start
	last := len(c.stages) - 1
	for depth >= start {
		if !c.next(depth) {
			depth--
			continue
		}
		if depth == last {
			c.e.emit(c.ws, c.p, c.env, c.target)
			continue
		}
		depth++
		c.open(depth)
	}
}

// run opens stage start and pulls the chain to exhaustion.
func (c *streamChain) run(start int) {
	if start >= len(c.stages) {
		c.e.emit(c.ws, c.p, c.env, c.target)
		return
	}
	c.open(start)
	c.runFrom(start)
}

// runOuterRange pulls the chain with the outer stage pinned to one
// partition [lo, hi) of the (possibly pushdown-tightened) outer range.
func (c *streamChain) runOuterRange(lo, hi tuple.Tuple, pushed bool) {
	c.openScan(&c.stages[0], lo, hi, pushed)
	c.runFrom(0)
}

// evalPlanStream evaluates one rule version with the streaming
// evaluator, partitioning the outermost scan across the worker pool
// exactly as the materialising path does: splittable backends get
// Soufflé-style key-range partitions, others a materialised outer scan
// chunked across workers.
func (e *Engine) evalPlanStream(p *rulePlan, target insertTarget, usePush bool) {
	if len(p.body) == 0 || p.body[0].kind != LitAtom {
		// Degenerate: no positive outer atom; evaluate inline.
		env := make([]uint64, p.numVars)
		e.evalFrom(e.workerState[0], p, 0, env, target)
		return
	}

	if e.workers <= 1 {
		newStreamChain(e, e.workerState[0], p, target, usePush).run(0)
		return
	}

	// The outer bounds depend only on constants (the planner panics on an
	// unbound variable in the outermost prefix), so compute them once on a
	// scratch chain and clone them out of its buffers.
	outer := &p.body[0]
	arity := outer.rel.arity
	src := scanSource(outer)
	scratch := newStreamChain(e, e.workerState[0], p, target, usePush)
	lo, hi, outerPushed, empty := scratch.scanBounds(&scratch.stages[0])
	if empty {
		return
	}
	lo = append(tuple.Tuple(nil), lo...)
	if hi != nil {
		hi = append(tuple.Tuple(nil), hi...)
	}

	if sp, ok := src.(relation.Splitter); ok {
		bounds := sp.SplitRange(lo, hi, e.workers*4)
		starts := make([]tuple.Tuple, 0, len(bounds)+1)
		ends := make([]tuple.Tuple, 0, len(bounds)+1)
		starts = append(starts, lo)
		for _, b := range bounds {
			ends = append(ends, b)
			starts = append(starts, b)
		}
		ends = append(ends, hi)

		var wg sync.WaitGroup
		workers := e.workers
		if workers > len(starts) {
			workers = len(starts)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int, ws *workerState) {
				defer wg.Done()
				c := newStreamChain(e, ws, p, target, usePush)
				for ri := w; ri < len(starts); ri += workers {
					c.runOuterRange(starts[ri], ends[ri], outerPushed)
				}
			}(w, e.workerState[w])
		}
		wg.Wait()
		return
	}

	// Materialise the outer range and chunk it across the workers. The
	// outer node's actuals mirror the worker counters exactly: actRows
	// counts every pulled row (out-of-bounds rows included, matching
	// iterRows), actEmitted the rows that survived bounds and residual
	// actions in the chunk loops below. The scan's span is recorded here
	// with arg1 = rows within bounds, since the residual pass has not run
	// yet when the scan closes.
	w0 := e.workerState[0]
	var flat []uint64
	w0.scans++
	w0.iterScans++
	if outerPushed {
		w0.pushScans++
	}
	var spanStart int64
	if e.trace != 0 {
		spanStart = obs.Clock()
	}
	pulled := uint64(0)
	w0.opsFor(src).PrefixScan(lo[:len(outer.prefix)], func(t tuple.Tuple) bool {
		w0.iterRows++
		pulled++
		if tuple.Compare(t, lo) < 0 || (hi != nil && tuple.Compare(t, hi) >= 0) {
			return true
		}
		flat = append(flat, t...)
		return true
	})
	n := len(flat) / arity
	atomic.AddUint64(&outer.actScans, 1)
	atomic.AddUint64(&outer.actRows, pulled)
	if e.trace != 0 {
		site := obs.SpanIterScan
		if outerPushed {
			site = obs.SpanIterScanPush
		}
		obs.RecordSpan(e.trace, 0, e.ruleSpan, site,
			spanStart, obs.Clock()-spanStart, pulled, uint64(n))
	}
	if n == 0 {
		return
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	nPrefix := len(outer.prefix)
	for w := 0; w < workers; w++ {
		clo, chi := w*chunk, (w+1)*chunk
		if chi > n {
			chi = n
		}
		if clo >= chi {
			break
		}
		wg.Add(1)
		go func(ws *workerState, part []uint64) {
			defer wg.Done()
			c := newStreamChain(e, ws, p, target, usePush)
			emitted := uint64(0)
			for off := 0; off < len(part); off += arity {
				t := part[off : off+arity]
				if applyActions(outer.rest, t[nPrefix:], c.env) {
					emitted++
					c.run(1)
				}
			}
			atomic.AddUint64(&outer.actEmitted, emitted)
		}(e.workerState[w], flat[clo*arity:chi*arity])
	}
	wg.Wait()
}

// fallbackIter adapts a cursor-less Ops handle (the hash provider, the
// foreign-tree baselines) to the Iterator contract: Seek materialises
// the backend's prefix scan filtered to [lo, hi) and Next replays the
// buffer. The B-tree providers never take this path — their adapters
// implement relation.CursorOps natively.
type fallbackIter struct {
	ops     relation.Ops
	nPrefix int
	arity   int
	rows    []uint64
	pos     int
}

func (it *fallbackIter) Seek(lo, hi tuple.Tuple) {
	it.rows = it.rows[:0]
	it.pos = -1
	it.ops.PrefixScan(lo[:it.nPrefix], func(t tuple.Tuple) bool {
		if tuple.Compare(t, lo) < 0 || (hi != nil && tuple.Compare(t, hi) >= 0) {
			return true
		}
		it.rows = append(it.rows, t...)
		return true
	})
}

func (it *fallbackIter) Next() bool {
	if it.pos < 0 {
		it.pos = 0
	} else {
		it.pos += it.arity
	}
	return it.pos+it.arity <= len(it.rows) && it.arity > 0
}

func (it *fallbackIter) Tuple() tuple.Tuple {
	return it.rows[it.pos : it.pos+it.arity]
}
