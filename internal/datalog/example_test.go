package datalog_test

import (
	"fmt"

	"specbtree/internal/datalog"
	"specbtree/internal/tuple"
)

// The paper's §2 running example: transitive closure, evaluated with the
// parallel semi-naïve strategy over the specialised B-tree.
func Example() {
	prog := datalog.MustParse(`
.decl edge(x: number, y: number)
.decl path(x: number, y: number)
.input edge
.output path
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`)
	engine, _ := datalog.New(prog, datalog.Options{Workers: 2})
	engine.AddFact("edge", tuple.Tuple{1, 2})
	engine.AddFact("edge", tuple.Tuple{2, 3})
	engine.Run()
	engine.Scan("path", func(t tuple.Tuple) bool {
		fmt.Println(t)
		return true
	})
	// Output:
	// (1, 2)
	// (1, 3)
	// (2, 3)
}

// Stratified negation: set difference between strata.
func Example_negation() {
	prog := datalog.MustParse(`
.decl all(x: number)
.decl bad(x: number)
.decl good(x: number)
.output good
all(1). all(2). all(3).
bad(2).
good(X) :- all(X), !bad(X).
`)
	engine, _ := datalog.New(prog, datalog.Options{})
	engine.Run()
	engine.Scan("good", func(t tuple.Tuple) bool {
		fmt.Println(t[0])
		return true
	})
	// Output:
	// 1
	// 3
}
