package datalog

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"specbtree/internal/core"
	"specbtree/internal/obs"
	"specbtree/internal/relation"
	"specbtree/internal/tuple"
)

// Options configures an Engine.
type Options struct {
	// Provider selects the relation representation (default "btree").
	Provider relation.Provider
	// Workers is the evaluation thread count (default GOMAXPROCS).
	Workers int
	// Strategy selects the rule evaluator (default EvalStream).
	Strategy EvalStrategy
	// PlanCache overrides the compilation cache (default
	// DefaultPlanCache). Compilation is pure in the program text, so a
	// cache may be shared freely across providers and strategies.
	PlanCache *PlanCache
	// NoPlanCache compiles from scratch without consulting any cache.
	NoPlanCache bool
	// TraceID attributes the run's spans (engine rounds, rule
	// evaluations, iterator scans) to an existing trace — the relation
	// server threads a request frame's trace here, cmd/datalog -trace a
	// forced one. Zero (the default) lets Run consult the sampling gate
	// itself via obs.StartTrace, so engine-originated traces appear
	// whenever sampling is enabled.
	TraceID obs.TraceID
}

// Stats mirrors the evaluation statistics of the paper's Table 2, plus the
// hint statistics reported in §4.3. The JSON field names are part of the
// metrics contract documented in DESIGN.md §9.
type Stats struct {
	Relations int `json:"relations"`
	Rules     int `json:"rules"`

	Inserts         uint64 `json:"inserts"`           // data-structure insert operations (per index)
	MembershipTests uint64 `json:"membership_tests"`  // contains operations
	LowerBoundCalls uint64 `json:"lower_bound_calls"` // one per range scan
	UpperBoundCalls uint64 `json:"upper_bound_calls"` // one per range scan

	InputTuples    uint64 `json:"input_tuples"`    // facts loaded before evaluation
	ProducedTuples uint64 `json:"produced_tuples"` // distinct derived tuples
	Iterations     uint64 `json:"iterations"`      // fixpoint rounds across all strata

	HintHits   uint64 `json:"hint_hits"`
	HintMisses uint64 `json:"hint_misses"`

	// Streaming-evaluator counters (zero under EvalMaterialize). The
	// fields below were appended for the streaming rewrite; the earlier
	// fields keep their positions and names (append-only contract).
	StreamScans   uint64 `json:"stream_scans"`    // composed-iterator scans opened
	StreamRows    uint64 `json:"stream_rows"`     // tuples pulled through iterators
	PushdownScans uint64 `json:"pushdown_scans"`  // scans with comparison-tightened bounds
	ResidualRows  uint64 `json:"residual_rows"`   // pulled rows rejected by residual checks
	PlanCacheHits uint64 `json:"plan_cache_hits"` // 1 if this engine bound a cached plan
	PlanCacheMiss uint64 `json:"plan_cache_misses"`
}

// HintRate returns the fraction of hinted operations that hit.
func (s Stats) HintRate() float64 {
	total := s.HintHits + s.HintMisses
	if total == 0 {
		return 0
	}
	return float64(s.HintHits) / float64(total)
}

// engRel is the runtime representation of one logical relation: a set of
// indexes (column permutations), each materialised as full/delta/new
// versions for semi-naïve evaluation.
type engRel struct {
	name    string
	arity   int
	indexes []indexDef
	sig     map[string]int
	// sigIndex maps each search signature to the index serving it, as
	// computed by the minimum-chain-cover selection (indexopt.go).
	sigIndex map[sigSet]int

	full  []relation.Relation
	delta []relation.Relation
	nw    []relation.Relation
}

// ensureIndex registers the permutation if new and returns its id. Only
// legal before relation instantiation (compile time).
func (r *engRel) ensureIndex(perm []int) int {
	d := indexDef{Perm: perm}
	s := d.signature()
	if id, ok := r.sig[s]; ok {
		return id
	}
	id := len(r.indexes)
	r.indexes = append(r.indexes, d)
	r.sig[s] = id
	return id
}

// permute writes t permuted by idx into dst.
func (r *engRel) permute(idx int, t, dst tuple.Tuple) {
	for i, c := range r.indexes[idx].Perm {
		dst[i] = t[c]
	}
}

// Engine evaluates a Datalog program bottom-up with parallel semi-naïve
// iteration (paper §2). The relation data structure is pluggable; worker
// goroutines hold per-goroutine Ops handles carrying operation hints.
type Engine struct {
	prog     *Program
	provider relation.Provider
	workers  int
	strategy EvalStrategy
	syms     *SymbolTable
	rels     map[string]*engRel
	strata   []Stratum
	plans    map[int][]*rulePlan // stratum -> plans (recursive versions included)

	inputTuples uint64
	stats       Stats
	rounds      []RoundMetric
	ran         bool

	// trace is the run's trace ID (0 = untraced). ruleSpan is the
	// engine.rule span of the rule version currently under evaluation —
	// the parent the streaming evaluator hangs iter.scan spans off. Both
	// are written only by the sequential driver between parallel
	// sections; worker goroutines read them through the chains they are
	// handed at spawn.
	trace    obs.TraceID
	ruleSpan obs.SpanID

	// workerState[i] is owned by worker i during parallel sections.
	workerState []*workerState
}

// workerState carries per-worker Ops handles (hint storage) and counters.
type workerState struct {
	ops map[relation.Relation]relation.Ops

	inserts, contains, scans, produced uint64

	// Streaming-evaluator counters (iter.go).
	iterScans, iterRows, pushScans, residualRows uint64
}

func (w *workerState) opsFor(r relation.Relation) relation.Ops {
	if o, ok := w.ops[r]; ok {
		return o
	}
	o := r.NewOps()
	w.ops[r] = o
	return o
}

// New compiles prog for evaluation, consulting the plan cache unless
// Options opts out. The program must be safe and stratifiable.
func New(prog *Program, opts Options) (*Engine, error) {
	provider := opts.Provider
	if provider.New == nil {
		provider = relation.MustLookup("btree")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	e := &Engine{
		prog:     prog,
		provider: provider,
		workers:  workers,
		strategy: opts.Strategy,
		trace:    opts.TraceID,
		syms:     NewSymbolTable(),
		rels:     map[string]*engRel{},
		plans:    map[int][]*rulePlan{},
	}

	cache := opts.PlanCache
	if cache == nil {
		cache = DefaultPlanCache
	}
	if opts.NoPlanCache {
		cache = nil
	}
	var key string
	var entry *planEntry
	if cache != nil {
		key = programKey(prog)
		entry = cache.lookup(key)
	}
	if entry != nil {
		// Cache hit: skip the safety check, the stratification, the index
		// selection and the rule compilation — the entry was stored by a
		// successful compile of the identical program text.
		e.bindEntry(entry)
		e.stats.PlanCacheHits = 1
	} else {
		if err := e.compileProgram(); err != nil {
			return nil, err
		}
		if cache != nil {
			e.stats.PlanCacheMiss = 1
			cache.store(key, snapshotEntry(e))
		}
	}

	// Instantiate the relation sets now that the index set is final.
	for _, r := range e.rels {
		r.full = make([]relation.Relation, len(r.indexes))
		r.delta = make([]relation.Relation, len(r.indexes))
		r.nw = make([]relation.Relation, len(r.indexes))
		for i := range r.indexes {
			r.full[i] = provider.New(r.arity)
		}
	}

	e.workerState = make([]*workerState, workers)
	for i := range e.workerState {
		e.workerState[i] = &workerState{ops: map[relation.Relation]relation.Ops{}}
	}

	// Load inline facts. Both scratch buffers are hoisted out of the loop;
	// insertFact itself allocates nothing.
	buf := make(tuple.Tuple, 8)
	perm := make(tuple.Tuple, 8)
	for _, r := range prog.Rules {
		if len(r.Body) != 0 {
			continue
		}
		rel := e.rels[r.Head.Pred]
		t := buf[:0]
		for _, term := range r.Head.Terms {
			switch term.Kind {
			case TermNum:
				t = append(t, term.Num)
			case TermSym:
				t = append(t, e.syms.Intern(term.Sym))
			default:
				return nil, fmt.Errorf("datalog: line %d: non-ground fact %s", r.Line, r.Head)
			}
		}
		for len(perm) < rel.arity {
			perm = append(perm, 0)
		}
		e.insertFact(e.workerState[0], rel, t, perm[:rel.arity])
	}
	return e, nil
}

// compileProgram runs the full compilation pipeline: safety check,
// stratification, semi-naïve version enumeration, signature collection,
// minimum-chain-cover index selection and rule compilation. On return
// e.rels holds finalised index layouts (no instances yet), e.strata the
// stratification and e.plans the compiled versions — exactly the state
// snapshotEntry captures into the plan cache.
func (e *Engine) compileProgram() error {
	prog := e.prog
	if err := CheckSafety(prog); err != nil {
		return err
	}
	strata, err := Stratify(prog)
	if err != nil {
		return err
	}
	e.strata = strata
	for _, d := range prog.Decls {
		if d.Arity > 64 {
			return fmt.Errorf("datalog: relation %q has arity %d; the index selection supports at most 64 columns", d.Name, d.Arity)
		}
		e.rels[d.Name] = &engRel{name: d.Name, arity: d.Arity, sig: map[string]int{}}
	}
	// Every relation gets the identity index so facts, negation probes and
	// duplicate checks always have a home.
	for _, r := range e.rels {
		r.ensureIndex(permFor(r.arity, nil))
	}

	// Enumerate the semi-naïve rule versions per stratum.
	inStratum := make(map[string]int, len(prog.Decls))
	for si, st := range strata {
		for _, p := range st.Preds {
			inStratum[p] = si
		}
	}
	type version struct{ si, ri, deltaPos int }
	var versions []version
	for si, st := range strata {
		for _, ri := range st.Rules {
			r := prog.Rules[ri]
			if len(r.Body) == 0 {
				continue // facts are loaded, not planned
			}
			recursive := false
			for _, l := range r.Body {
				if l.Kind == LitAtom && inStratum[l.Atom.Pred] == si {
					recursive = true
				}
			}
			if !recursive {
				versions = append(versions, version{si, ri, -1})
				continue
			}
			for li, l := range r.Body {
				if l.Kind == LitAtom && inStratum[l.Atom.Pred] == si {
					versions = append(versions, version{si, ri, li})
				}
			}
		}
	}

	// Pass 1: collect the search signatures of every version and run the
	// minimum-chain-cover index selection per relation ([29]).
	sigsByRel := map[*engRel][]sigSet{}
	for _, v := range versions {
		e.collectSignatures(v.ri, v.deltaPos, func(r *engRel, s sigSet) {
			sigsByRel[r] = append(sigsByRel[r], s)
		})
	}
	for _, r := range e.rels {
		r.finalizeIndexes(sigsByRel[r])
	}

	// Pass 2: compile the versions against the final index assignment.
	for _, v := range versions {
		plan, err := e.compileRule(v.ri, v.deltaPos)
		if err != nil {
			return err
		}
		e.plans[v.si] = append(e.plans[v.si], plan)
	}
	return nil
}

// Symbols exposes the engine's symbol table for interning fact constants.
func (e *Engine) Symbols() *SymbolTable { return e.syms }

// Strategy returns the engine's evaluation strategy.
func (e *Engine) Strategy() EvalStrategy { return e.strategy }

// Workers returns the configured worker count.
func (e *Engine) Workers() int { return e.workers }

// insertFact inserts t into all full indexes of rel on the given worker,
// using the caller's scratch buffer (len >= rel.arity) for the permuted
// rows so batch loading allocates nothing per fact.
func (e *Engine) insertFact(w *workerState, rel *engRel, t, perm tuple.Tuple) bool {
	rel.permute(0, t, perm)
	w.inserts++
	fresh := w.opsFor(rel.full[0]).Insert(perm)
	if !fresh {
		return false
	}
	for i := 1; i < len(rel.indexes); i++ {
		rel.permute(i, t, perm)
		w.inserts++
		w.opsFor(rel.full[i]).Insert(perm)
	}
	return true
}

// AddFact loads one input fact before Run. The tuple is in declaration
// column order; symbolic columns must be pre-interned via Symbols.
func (e *Engine) AddFact(name string, t tuple.Tuple) error {
	rel, ok := e.rels[name]
	if !ok {
		return fmt.Errorf("datalog: unknown relation %q", name)
	}
	if len(t) != rel.arity {
		return fmt.Errorf("datalog: relation %q has arity %d, fact has %d", name, rel.arity, len(t))
	}
	if e.ran {
		return fmt.Errorf("datalog: AddFact after Run")
	}
	perm := make(tuple.Tuple, rel.arity)
	if e.insertFact(e.workerState[0], rel, t, perm) {
		e.inputTuples++
	}
	return nil
}

// parallelFactsThreshold is the batch size below which AddFacts stays on
// one goroutine: sharding a few hundred facts costs more in goroutine
// start-up and hint-set cache misses than the inserts themselves.
const parallelFactsThreshold = 2048

// AddFacts loads a batch of input facts. The relation lookup, the
// run-state check and the arity validation happen once per batch, and
// for natively concurrent providers the inserts are sharded across the
// engine's workers, each with its own Ops handle (hint set) — the same
// per-worker discipline the evaluation phase uses. Sequential providers
// keep the single-goroutine path; their adapters would serialise the
// inserts on a global lock anyway.
func (e *Engine) AddFacts(name string, ts []tuple.Tuple) error {
	rel, ok := e.rels[name]
	if !ok {
		return fmt.Errorf("datalog: unknown relation %q", name)
	}
	if e.ran {
		return fmt.Errorf("datalog: AddFact after Run")
	}
	for _, t := range ts {
		if len(t) != rel.arity {
			return fmt.Errorf("datalog: relation %q has arity %d, fact has %d", name, rel.arity, len(t))
		}
	}

	workers := e.workers
	if workers > len(ts)/parallelFactsThreshold+1 {
		workers = len(ts)/parallelFactsThreshold + 1
	}
	if workers <= 1 || !e.provider.ThreadSafe {
		w := e.workerState[0]
		perm := make(tuple.Tuple, rel.arity)
		for _, t := range ts {
			if e.insertFact(w, rel, t, perm) {
				e.inputTuples++
			}
		}
		return nil
	}

	// Sharded load: worker w takes the contiguous chunk [lo, hi). Distinct
	// workers may race on duplicate tuples; the backend's insert reports
	// freshness exactly once per distinct tuple, so summing per-worker
	// fresh counts stays exact.
	fresh := make([]uint64, workers)
	var wg sync.WaitGroup
	chunk := (len(ts) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(ts) {
			hi = len(ts)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w int, part []tuple.Tuple) {
			defer wg.Done()
			ws := e.workerState[w]
			perm := make(tuple.Tuple, rel.arity)
			for _, t := range part {
				if e.insertFact(ws, rel, t, perm) {
					fresh[w]++
				}
			}
		}(w, ts[lo:hi])
	}
	wg.Wait()
	for _, f := range fresh {
		e.inputTuples += f
	}
	return nil
}

// Count returns the number of tuples of a relation (after Run).
func (e *Engine) Count(name string) int {
	rel, ok := e.rels[name]
	if !ok {
		return 0
	}
	return rel.full[0].Len()
}

// Scan iterates over the tuples of a relation in lexicographic order (for
// ordered providers), in declaration column order.
func (e *Engine) Scan(name string, yield func(tuple.Tuple) bool) error {
	rel, ok := e.rels[name]
	if !ok {
		return fmt.Errorf("datalog: unknown relation %q", name)
	}
	rel.full[0].Scan(yield)
	return nil
}

// Run evaluates the program to its least fixpoint. It may be called once.
func (e *Engine) Run() error {
	if e.ran {
		return fmt.Errorf("datalog: Run called twice")
	}
	e.ran = true
	if e.trace == 0 {
		e.trace = obs.StartTrace()
	}
	for si := range e.strata {
		e.runStratum(si)
	}
	e.collectStats()
	return nil
}

// runStratum evaluates one SCC: non-recursive rules once, then semi-naïve
// fixpoint iteration for the recursive rule versions.
func (e *Engine) runStratum(si int) {
	st := &e.strata[si]
	var nonRec, rec []*rulePlan
	for _, p := range e.plans[si] {
		if p.recursiveVersion {
			rec = append(rec, p)
		} else {
			nonRec = append(nonRec, p)
		}
	}

	// Non-recursive rules: insert straight into the full indexes.
	for _, p := range nonRec {
		e.evalPlanSpanned(p, intoFull, si, 0)
	}
	if len(rec) == 0 {
		return
	}

	// Initialise deltas with a snapshot of everything known so far for the
	// stratum's predicates, and fresh "new" versions. The snapshots are
	// independent (one destination per index), so they fan out across the
	// worker pool; each lands on the backend's bulk-load fast path because
	// the fresh delta is empty.
	var jobs []mergeJob
	for _, pred := range st.Preds {
		r := e.rels[pred]
		for i := range r.indexes {
			r.delta[i] = e.provider.New(r.arity)
			r.nw[i] = e.provider.New(r.arity)
			if !r.full[i].Empty() {
				jobs = append(jobs, mergeJob{dst: r.delta[i], src: r.full[i]})
			}
		}
	}
	e.runMergeJobs(jobs)

	// Fixpoint loop (Figure 1's while-loop).
	for round := 1; ; round++ {
		e.stats.Iterations++
		obs.Inc(obs.EngineRounds)
		var roundStart time.Time
		if obs.Enabled {
			roundStart = time.Now()
		}
		// The round span's ID is issued up front so the rule spans inside
		// the round can name it as their parent before its duration (and
		// promoted-tuple count) is known.
		var roundSpan obs.SpanID
		var roundSpanStart int64
		if e.trace != 0 {
			roundSpan = obs.NewSpanID(e.trace)
			roundSpanStart = obs.Clock()
		}
		for _, p := range rec {
			e.evalPlanSpanned(p, intoNew, si, roundSpan)
		}

		// Merge new tuples into full, promote them to delta, and check for
		// the fixpoint. This used to be the engine's sequential step between
		// parallel phases; it is now fanned out across indexes × partitions
		// (runMergeJobs), which is sound because each destination index is a
		// distinct relation and a single merge per destination is in flight.
		progress := false
		var promoted uint64
		jobs = jobs[:0]
		for _, pred := range st.Preds {
			r := e.rels[pred]
			if !r.nw[0].Empty() {
				progress = true
			}
			if obs.Enabled {
				promoted += uint64(r.nw[0].Len())
			}
			for i := range r.indexes {
				nw := r.nw[i]
				if !nw.Empty() {
					jobs = append(jobs, mergeJob{dst: r.full[i], src: nw})
				}
				r.delta[i] = nw
				r.nw[i] = e.provider.New(r.arity)
			}
		}
		e.runMergeJobs(jobs)
		if obs.Enabled {
			obs.Add(obs.EngineDeltaTuples, promoted)
			dur := time.Since(roundStart)
			obs.Observe(obs.HistRoundNanos, uint64(dur))
			e.rounds = append(e.rounds, RoundMetric{
				Stratum:     si,
				Round:       round,
				Duration:    dur,
				DeltaTuples: promoted,
			})
		}
		if e.trace != 0 {
			obs.RecordSpan(e.trace, roundSpan, 0, obs.SpanEngineRound,
				roundSpanStart, obs.Clock()-roundSpanStart, uint64(round), promoted)
		}
		if !progress {
			break
		}
	}

	// Release the per-iteration versions.
	for _, pred := range st.Preds {
		r := e.rels[pred]
		for i := range r.indexes {
			r.delta[i], r.nw[i] = nil, nil
		}
	}
}

// mergeJob is one unit of the engine's bulk data movement: merge the
// tuples of src into dst. Jobs in one batch have pairwise distinct
// destinations, so they may run concurrently under every provider's
// merge contract.
type mergeJob struct {
	dst, src relation.Relation
}

// runMergeJobs executes a batch of merge jobs across the worker pool.
// Two layers of parallelism: independent jobs (one per destination
// index) run concurrently, and when there are fewer jobs than workers
// the surplus is handed to each job as its intra-merge worker budget —
// relation.MergeInto partitions the source for backends that support it
// (indexes × partitions). One HistMergeNanos sample covers the whole
// phase; per-job counts land in EngineMergeJobs.
func (e *Engine) runMergeJobs(jobs []mergeJob) {
	if len(jobs) == 0 {
		return
	}
	var start time.Time
	if obs.Enabled {
		start = time.Now()
	}
	obs.Add(obs.EngineMergeJobs, uint64(len(jobs)))
	if e.workers <= 1 {
		for _, j := range jobs {
			j.dst.MergeFrom(j.src)
		}
		if obs.Enabled {
			obs.Observe(obs.HistMergeNanos, uint64(time.Since(start)))
		}
		return
	}

	obs.Inc(obs.EngineParallelMerges)
	pool := e.workers
	if pool > len(jobs) {
		pool = len(jobs)
	}
	inner := e.workers / pool // per-job worker budget, >= 1
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				relation.MergeInto(jobs[i].dst, jobs[i].src, inner)
			}
		}()
	}
	wg.Wait()
	if obs.Enabled {
		obs.Observe(obs.HistMergeNanos, uint64(time.Since(start)))
	}
}

// insertTarget selects where derived head tuples go.
type insertTarget int

const (
	intoFull insertTarget = iota
	intoNew
)

// evalPlanSpanned evaluates one rule version, accumulating its profile
// timing and — when the run is traced — recording an engine.rule span
// under parent (the surrounding engine.round span in fixpoint rounds, 0
// for non-recursive rules). The rule span's ID is pre-issued into
// e.ruleSpan so the streaming evaluator can hang iter.scan spans off it
// before the rule span itself is recorded.
func (e *Engine) evalPlanSpanned(p *rulePlan, target insertTarget, si int, parent obs.SpanID) {
	var spanStart int64
	if e.trace != 0 {
		e.ruleSpan = obs.NewSpanID(e.trace)
		spanStart = obs.Clock()
	}
	start := time.Now()
	e.evalPlan(p, target)
	d := time.Since(start)
	p.evalTime += d
	p.evalCount++
	obs.Inc(obs.EngineRuleEvals)
	obs.Observe(obs.HistRuleNanos, uint64(d))
	if e.trace != 0 {
		obs.RecordSpan(e.trace, e.ruleSpan, parent, obs.SpanEngineRule,
			spanStart, obs.Clock()-spanStart, uint64(si), uint64(p.rule))
		e.ruleSpan = 0
	}
}

// evalPlan evaluates one rule version under the engine's strategy. The
// streaming evaluator (iter.go) composes cursor-backed iterators; the
// materialising evaluator below is the pre-rewrite callback recursion,
// kept as the reference arm of the differential harness.
func (e *Engine) evalPlan(p *rulePlan, target insertTarget) {
	switch e.strategy {
	case EvalStream:
		e.evalPlanStream(p, target, true)
	case EvalStreamNoPushdown:
		e.evalPlanStream(p, target, false)
	default:
		e.evalPlanMaterialize(p, target)
	}
}

// evalPlanMaterialize evaluates one rule version with nested callback
// recursion, partitioning the outermost scan across the worker pool
// (the paper's parallelisation of the outermost for-loop of Figure 1).
// Three paths, in order of preference:
//
//  1. single worker: evaluate inline during the scan;
//  2. splittable backend (the B-trees): partition the scanned key range
//     Soufflé-style and hand each worker subranges — no materialisation;
//  3. otherwise: materialise the outer scan and chunk it.
func (e *Engine) evalPlanMaterialize(p *rulePlan, target insertTarget) {
	if len(p.body) == 0 || p.body[0].kind != LitAtom {
		// Degenerate: no positive outer atom; evaluate inline.
		env := make([]uint64, p.numVars)
		e.evalFrom(e.workerState[0], p, 0, env, target)
		return
	}

	outer := &p.body[0]
	rel := outer.rel
	arity := rel.arity
	src := rel.full[outer.index]
	if outer.useDelta {
		src = rel.delta[outer.index]
	}
	prefix := make(tuple.Tuple, len(outer.prefix))
	for i, s := range outer.prefix {
		if !s.isConst {
			panic("datalog: unbound variable in outermost prefix")
		}
		prefix[i] = s.c
	}

	if e.workers <= 1 {
		ws := e.workerState[0]
		env := make([]uint64, p.numVars)
		nPrefix := len(prefix)
		ws.scans++
		ws.opsFor(src).PrefixScan(prefix, func(t tuple.Tuple) bool {
			if applyActions(outer.rest, t[nPrefix:], env) {
				e.evalFrom(ws, p, 1, env, target)
			}
			return true
		})
		return
	}

	if sp, ok := src.(relation.Splitter); ok {
		lo := tuple.PrefixLowerBound(prefix, arity)
		hi := tuple.PrefixUpperBound(prefix, arity)
		bounds := sp.SplitRange(lo, hi, e.workers*4)
		starts := make([]tuple.Tuple, 0, len(bounds)+1)
		ends := make([]tuple.Tuple, 0, len(bounds)+1)
		starts = append(starts, lo)
		for _, b := range bounds {
			ends = append(ends, b)
			starts = append(starts, b)
		}
		ends = append(ends, hi)

		var wg sync.WaitGroup
		workers := e.workers
		if workers > len(starts) {
			workers = len(starts)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int, ws *workerState) {
				defer wg.Done()
				env := make([]uint64, p.numVars)
				nPrefix := len(prefix)
				scanner := ws.opsFor(src).(relation.RangeScanner)
				for ri := w; ri < len(starts); ri += workers {
					ws.scans++
					scanner.RangeScan(starts[ri], ends[ri], func(t tuple.Tuple) bool {
						if applyActions(outer.rest, t[nPrefix:], env) {
							e.evalFrom(ws, p, 1, env, target)
						}
						return true
					})
				}
			}(w, e.workerState[w])
		}
		wg.Wait()
		return
	}

	// Materialise the outer scan and chunk it across the workers.
	w0 := e.workerState[0]
	var flat []uint64
	w0.scans++
	w0.opsFor(src).PrefixScan(prefix, func(t tuple.Tuple) bool {
		flat = append(flat, t...)
		return true
	})
	n := len(flat) / arity
	if n == 0 {
		return
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(ws *workerState, part []uint64) {
			defer wg.Done()
			e.runOuterChunk(ws, p, part, target)
		}(e.workerState[w], flat[lo*arity:hi*arity])
	}
	wg.Wait()
}

// runOuterChunk processes a slice of outer-scan tuples on one worker.
func (e *Engine) runOuterChunk(ws *workerState, p *rulePlan, flat []uint64, target insertTarget) {
	outer := &p.body[0]
	arity := outer.rel.arity
	env := make([]uint64, p.numVars)
	nPrefix := len(outer.prefix)
	for off := 0; off < len(flat); off += arity {
		t := flat[off : off+arity]
		if !applyActions(outer.rest, t[nPrefix:], env) {
			continue
		}
		e.evalFrom(ws, p, 1, env, target)
	}
}

// applyActions binds/checks the suffix columns of a scanned tuple.
func applyActions(actions []colAction, suffix []uint64, env []uint64) bool {
	for i, a := range actions {
		switch a.kind {
		case actBind:
			env[a.v] = suffix[i]
		case actCheck:
			if env[a.v] != suffix[i] {
				return false
			}
		case actSkip:
		}
	}
	return true
}

func (s valSrc) value(env []uint64) uint64 {
	if s.isConst {
		return s.c
	}
	return env[s.v]
}

// evalFrom evaluates body literals i.. with the current bindings,
// projecting the head at the end (the inner loops of Figure 1).
func (e *Engine) evalFrom(ws *workerState, p *rulePlan, i int, env []uint64, target insertTarget) {
	if i == len(p.body) {
		e.emit(ws, p, env, target)
		return
	}
	l := &p.body[i]
	switch l.kind {
	case LitCmp:
		if l.op.Eval(l.l.value(env), l.r.value(env)) {
			e.evalFrom(ws, p, i+1, env, target)
		}
	case LitNegAtom:
		probe := make(tuple.Tuple, len(l.ground))
		for c, s := range l.ground {
			probe[c] = s.value(env)
		}
		ws.contains++
		if !ws.opsFor(l.rel.full[l.index]).Contains(probe) {
			e.evalFrom(ws, p, i+1, env, target)
		}
	case LitAtom:
		src := l.rel.full[l.index]
		if l.useDelta {
			src = l.rel.delta[l.index]
		}
		prefix := make(tuple.Tuple, len(l.prefix))
		for c, s := range l.prefix {
			prefix[c] = s.value(env)
		}
		nPrefix := len(prefix)
		ws.scans++
		ws.opsFor(src).PrefixScan(prefix, func(t tuple.Tuple) bool {
			if applyActions(l.rest, t[nPrefix:], env) {
				e.evalFrom(ws, p, i+1, env, target)
			}
			return true
		})
	}
}

// emit projects and inserts the head tuple: duplicate check against the
// full version, insertion into the target version of every index (the
// `if (path.find(t3) == end) newPath.insert(t)` of Figure 1).
func (e *Engine) emit(ws *workerState, p *rulePlan, env []uint64, target insertTarget) {
	rel := p.head
	t := make(tuple.Tuple, rel.arity)
	for c, s := range p.headVals {
		t[c] = s.value(env)
	}

	dst := rel.full
	if target == intoNew {
		// Skip tuples already in the relation.
		ws.contains++
		if ws.opsFor(rel.full[0]).Contains(t) {
			return
		}
		dst = rel.nw
	}

	perm := make(tuple.Tuple, rel.arity)
	rel.permute(0, t, perm)
	ws.inserts++
	if !ws.opsFor(dst[0]).Insert(perm) {
		return // another worker (or iteration) produced it first
	}
	ws.produced++
	for i := 1; i < len(rel.indexes); i++ {
		rel.permute(i, t, perm)
		ws.inserts++
		ws.opsFor(dst[i]).Insert(perm)
	}
}

// collectStats aggregates worker counters and hint statistics, and
// settles every worker's batched observability counters so a snapshot
// taken after Run is exact.
func (e *Engine) collectStats() {
	s := &e.stats
	s.Relations = len(e.prog.Decls)
	s.Rules = len(e.prog.Rules)
	s.InputTuples = e.inputTuples
	for _, ws := range e.workerState {
		s.Inserts += ws.inserts
		s.MembershipTests += ws.contains
		s.LowerBoundCalls += ws.scans
		s.UpperBoundCalls += ws.scans
		s.ProducedTuples += ws.produced
		s.StreamScans += ws.iterScans
		s.StreamRows += ws.iterRows
		s.PushdownScans += ws.pushScans
		s.ResidualRows += ws.residualRows
		for _, ops := range ws.ops {
			if f, ok := ops.(relation.StatsFlusher); ok {
				f.FlushStats()
			}
			if rep, ok := ops.(relation.HintReporter); ok {
				h, m := rep.HintStats()
				s.HintHits += h
				s.HintMisses += m
			}
		}
	}
	obs.Add(obs.EngineIterScans, s.StreamScans)
	obs.Add(obs.EngineIterRows, s.StreamRows)
	obs.Add(obs.EngineIterPushdownScans, s.PushdownScans)
	obs.Add(obs.EngineIterResidualRows, s.ResidualRows)
}

// Stats returns the evaluation statistics (valid after Run).
func (e *Engine) Stats() Stats { return e.stats }

// RuleTiming is the accumulated evaluation time of one semi-naïve rule
// version, for Soufflé-style profiling. The JSON field names are part of
// the metrics contract documented in DESIGN.md §9.
type RuleTiming struct {
	Rule        string        `json:"rule"`
	Evaluations uint64        `json:"evaluations"`
	Total       time.Duration `json:"total_ns"`
}

// Profile returns per-rule-version evaluation timings, most expensive
// first (valid after Run).
func (e *Engine) Profile() []RuleTiming {
	var out []RuleTiming
	for _, plans := range e.plans {
		for _, p := range plans {
			out = append(out, RuleTiming{Rule: p.label, Evaluations: p.evalCount, Total: p.evalTime})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// RoundMetric records one semi-naïve fixpoint round: which stratum it ran
// in, its 1-based position in that stratum's iteration, its wall-clock
// duration and the number of tuples promoted into the delta relations
// afterwards (zero for the final, converged round). Rounds are only
// recorded when the observability layer is compiled in (obs.Enabled). The
// JSON field names are part of the metrics contract in DESIGN.md §9.
type RoundMetric struct {
	Stratum     int           `json:"stratum"`
	Round       int           `json:"round"`
	Duration    time.Duration `json:"duration_ns"`
	DeltaTuples uint64        `json:"delta_tuples"`
}

// Metrics is the engine-level structured metrics document: the aggregate
// Stats, the per-round semi-naïve progress and the per-rule-version
// timing profile, tagged with the provider and worker configuration. It
// forms the "engine"/"engines" sections of the JSON emitted by the
// commands' -metrics flag (DESIGN.md §9). Valid after Run.
type Metrics struct {
	Provider string        `json:"provider"`
	Workers  int           `json:"workers"`
	Strategy string        `json:"strategy"`
	Stats    Stats         `json:"stats"`
	Rounds   []RoundMetric `json:"rounds,omitempty"`
	Rules    []RuleTiming  `json:"rules,omitempty"`
}

// Metrics returns the structured metrics document for this engine run
// (valid after Run).
func (e *Engine) Metrics() Metrics {
	return Metrics{
		Provider: e.provider.Name,
		Workers:  e.workers,
		Strategy: e.strategy.String(),
		Stats:    e.stats,
		Rounds:   e.rounds,
		Rules:    e.Profile(),
	}
}

// TreeShapes reports the physical shape of every full relation index
// whose backend implements relation.Shaper (the specialised B-tree
// does; hash sets and baselines need not). Keys are relation names,
// with "[i]" appended for secondary indexes. Safe against concurrent
// writers — the underlying walkers take optimistic leases — so the
// debug server may call it on a live engine.
func (e *Engine) TreeShapes() map[string]core.Shape {
	shapes := make(map[string]core.Shape)
	for name, r := range e.rels {
		for i, rel := range r.full {
			s, ok := rel.(relation.Shaper)
			if !ok {
				continue
			}
			key := name
			if i > 0 {
				key = fmt.Sprintf("%s[%d]", name, i)
			}
			shapes[key] = s.Shape()
		}
	}
	return shapes
}
