package datalog

import (
	"math/rand"
	"sort"
	"testing"

	"specbtree/internal/relation"
	"specbtree/internal/tuple"
)

// TestAddFactsParallelEquivalence loads the same fact batch — large
// enough to cross the parallel sharding threshold and containing
// duplicates — through engines with 1 and 8 workers and checks the
// loaded relation, the freshness accounting and the evaluation result
// are identical. Covers both a thread-safe provider (parallel shard
// path) and a sequential one (global-lock fallback path).
func TestAddFactsParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 3 * parallelFactsThreshold
	facts := make([]tuple.Tuple, n)
	for i := range facts {
		facts[i] = tuple.Tuple{uint64(rng.Intn(200)), uint64(rng.Intn(200))}
	}
	distinct := map[[2]uint64]bool{}
	for _, f := range facts {
		distinct[[2]uint64{f[0], f[1]}] = true
	}

	for _, provider := range []string{"btree", "gbtree"} {
		var want []tuple.Tuple
		var wantPaths int
		for _, workers := range []int{1, 8} {
			e, err := New(MustParse(tcProgram), Options{
				Provider: relation.MustLookup(provider),
				Workers:  workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := e.AddFacts("edge", facts); err != nil {
				t.Fatal(err)
			}
			if got := e.Count("edge"); got != len(distinct) {
				t.Fatalf("%s workers=%d: Count(edge) = %d, want %d", provider, workers, got, len(distinct))
			}
			var got []tuple.Tuple
			if err := e.Scan("edge", func(tp tuple.Tuple) bool {
				got = append(got, tp.Clone())
				return true
			}); err != nil {
				t.Fatal(err)
			}
			sort.Slice(got, func(i, j int) bool { return tuple.Less(got[i], got[j]) })
			if want == nil {
				want = got
			} else {
				if len(got) != len(want) {
					t.Fatalf("%s workers=%d: scan %d tuples, want %d", provider, workers, len(got), len(want))
				}
				for i := range want {
					if !tuple.Equal(got[i], want[i]) {
						t.Fatalf("%s workers=%d element %d: %v != %v", provider, workers, i, got[i], want[i])
					}
				}
			}

			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			st := e.Stats()
			if st.InputTuples != uint64(len(distinct)) {
				t.Fatalf("%s workers=%d: InputTuples = %d, want %d (duplicates must not double-count)",
					provider, workers, st.InputTuples, len(distinct))
			}
			paths := e.Count("path")
			if wantPaths == 0 {
				wantPaths = paths
			} else if paths != wantPaths {
				t.Fatalf("%s workers=%d: Count(path) = %d, want %d", provider, workers, paths, wantPaths)
			}
		}
	}
}

// TestAddFactsValidation: batch loading must reject unknown relations
// and arity mismatches anywhere in the batch before inserting anything,
// and refuse new facts once evaluation has run.
func TestAddFactsValidation(t *testing.T) {
	e, err := New(MustParse(tcProgram), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddFacts("nonesuch", []tuple.Tuple{{1, 2}}); err == nil {
		t.Error("unknown relation accepted")
	}
	bad := make([]tuple.Tuple, parallelFactsThreshold+10)
	for i := range bad {
		bad[i] = tuple.Tuple{uint64(i), uint64(i)}
	}
	bad[len(bad)-1] = tuple.Tuple{1} // arity mismatch at the tail
	if err := e.AddFacts("edge", bad); err == nil {
		t.Error("arity mismatch accepted")
	}
	if got := e.Count("edge"); got != 0 {
		t.Errorf("failed batch inserted %d tuples; validation must precede insertion", got)
	}

	if err := e.AddFacts("edge", []tuple.Tuple{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := e.AddFacts("edge", []tuple.Tuple{{2, 3}}); err == nil {
		t.Error("AddFacts after Run accepted")
	}
}
