package datalog

import (
	"testing"
	"testing/quick"
)

func sigOf(cols ...int) sigSet {
	var s sigSet
	for _, c := range cols {
		s |= 1 << uint(c)
	}
	return s
}

func TestChainCoverChainOfSubsets(t *testing.T) {
	// {0} ⊂ {0,1} ⊂ {0,1,2} must collapse into a single chain → 1 index.
	chains := ChainCover([]sigSet{sigOf(0), sigOf(0, 1), sigOf(0, 1, 2)})
	if len(chains) != 1 {
		t.Fatalf("got %d chains, want 1", len(chains))
	}
	if len(chains[0]) != 3 {
		t.Fatalf("chain has %d elements", len(chains[0]))
	}
	for i := 1; i < len(chains[0]); i++ {
		if !chains[0][i-1].subsetOf(chains[0][i]) {
			t.Fatal("chain not ordered by inclusion")
		}
	}
}

func TestChainCoverAntichain(t *testing.T) {
	// {0} and {1} are incomparable → 2 chains.
	chains := ChainCover([]sigSet{sigOf(0), sigOf(1)})
	if len(chains) != 2 {
		t.Fatalf("got %d chains, want 2", len(chains))
	}
}

func TestChainCoverDiamond(t *testing.T) {
	// {0}, {1}, {0,1}: minimum cover is 2 chains (one of the singletons
	// chains into {0,1}).
	chains := ChainCover([]sigSet{sigOf(0), sigOf(1), sigOf(0, 1)})
	if len(chains) != 2 {
		t.Fatalf("got %d chains, want 2", len(chains))
	}
	total := 0
	for _, c := range chains {
		total += len(c)
	}
	if total != 3 {
		t.Fatalf("chains cover %d signatures, want 3", total)
	}
}

func TestChainCoverDeduplicatesAndDropsEmpty(t *testing.T) {
	chains := ChainCover([]sigSet{0, sigOf(2), sigOf(2), 0})
	if len(chains) != 1 || len(chains[0]) != 1 {
		t.Fatalf("got %v", chains)
	}
}

func TestChainCoverProperty(t *testing.T) {
	// For random signature sets: every input signature appears in exactly
	// one chain, and chains are ordered by strict inclusion.
	f := func(raw []uint8) bool {
		var sigs []sigSet
		for _, r := range raw {
			sigs = append(sigs, sigSet(r%63)) // signatures over 6 columns
		}
		chains := ChainCover(sigs)
		seen := map[sigSet]int{}
		for _, chain := range chains {
			for i, s := range chain {
				seen[s]++
				if i > 0 && (!chain[i-1].subsetOf(s) || chain[i-1] == s) {
					return false
				}
			}
		}
		distinct := map[sigSet]bool{}
		for _, s := range sigs {
			if s != 0 {
				distinct[s] = true
			}
		}
		if len(seen) != len(distinct) {
			return false
		}
		for s, n := range seen {
			if n != 1 || !distinct[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderFromChain(t *testing.T) {
	chain := []sigSet{sigOf(2), sigOf(1, 2), sigOf(0, 1, 2, 3)}
	perm := orderFromChain(chain, 5)
	want := []int{2, 1, 0, 3, 4}
	if len(perm) != len(want) {
		t.Fatalf("perm = %v", perm)
	}
	for i := range want {
		if perm[i] != want[i] {
			t.Fatalf("perm = %v, want %v", perm, want)
		}
	}
	// Every chain element's columns are a prefix of the order.
	for _, s := range chain {
		pre := perm[:s.count()]
		var got sigSet
		for _, c := range pre {
			got |= 1 << uint(c)
		}
		if got != s {
			t.Fatalf("signature %b not a prefix of %v", s, perm)
		}
	}
}

func TestIsIdentityPerm(t *testing.T) {
	if !isIdentityPerm([]int{0, 1, 2}) || isIdentityPerm([]int{1, 0, 2}) {
		t.Fatal("isIdentityPerm wrong")
	}
}

// TestIndexSharingReducesIndexCount: the transitive-closure program probes
// edge with signature {0} and path never with a non-trivial prefix other
// than {0}; the cover must not create more than 2 indexes per relation.
func TestIndexSharingReducesIndexCount(t *testing.T) {
	e, err := New(MustParse(tcProgram), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range e.rels {
		if len(r.indexes) > 2 {
			t.Errorf("%s has %d indexes, expected at most 2", name, len(r.indexes))
		}
	}
}

// TestChainedSignaturesShareOneIndex: a program probing r with {0} and
// {0,1} must serve both from one non-identity index — or the identity
// index itself, since {0} and {0,1} are prefixes of the identity order.
func TestChainedSignaturesShareOneIndex(t *testing.T) {
	prog := MustParse(`
.decl r(x: number, y: number, z: number)
.decl a(x: number)
.decl p(x: number, y: number)
.decl q(x: number, y: number)
p(X, Z) :- a(X), r(X, Y, Z).
q(X, Y) :- a(X), a(Y), r(X, Y, _).
`)
	e, err := New(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := e.rels["r"]
	// Signatures {0} and {0,1} are both prefixes of the identity order, so
	// the cover should need no extra index at all.
	if len(r.indexes) != 1 {
		t.Errorf("r has %d indexes, want 1 (identity serves both signatures)", len(r.indexes))
	}
}

// TestNonPrefixSignatureGetsOwnIndex: probing on the last column requires
// a permuted index.
func TestNonPrefixSignatureGetsOwnIndex(t *testing.T) {
	prog := MustParse(`
.decl r(x: number, y: number)
.decl a(x: number)
.decl p(x: number)
p(X) :- a(Y), r(X, Y).
`)
	e, err := New(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := e.rels["r"]
	if len(r.indexes) != 2 {
		t.Fatalf("r has %d indexes, want 2 (identity + [1 0])", len(r.indexes))
	}
	perm := r.indexes[1].Perm
	if perm[0] != 1 || perm[1] != 0 {
		t.Errorf("second index perm = %v, want [1 0]", perm)
	}
	// And evaluation through the permuted index stays correct.
	e2, _ := New(prog, Options{})
	e2.AddFact("a", []uint64{5})
	e2.AddFact("r", []uint64{7, 5})
	e2.AddFact("r", []uint64{8, 6})
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if e2.Count("p") != 1 {
		t.Fatalf("p = %d, want 1", e2.Count("p"))
	}
}
