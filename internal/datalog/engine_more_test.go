package datalog

import (
	"fmt"
	"testing"

	"specbtree/internal/relation"
	"specbtree/internal/tuple"
)

// TestDeepRecursionLongChain stresses many fixpoint iterations: a chain of
// n edges needs n iterations of the linear rule.
func TestDeepRecursionLongChain(t *testing.T) {
	n := 600
	if testing.Short() {
		n = 100
	}
	var edges [][2]uint64
	for i := 0; i < n; i++ {
		edges = append(edges, [2]uint64{uint64(i), uint64(i + 1)})
	}
	e := runTC(t, edges, Options{Workers: 2})
	if got := e.Count("path"); got != n*(n+1)/2 {
		t.Fatalf("path = %d, want %d", got, n*(n+1)/2)
	}
	if e.Stats().Iterations < uint64(n) {
		t.Errorf("only %d iterations for a %d-chain", e.Stats().Iterations, n)
	}
}

// TestMultiStratumPipeline chains four strata with negation between them.
func TestMultiStratumPipeline(t *testing.T) {
	prog := MustParse(`
.decl raw(x: number, y: number)
.decl link(x: number, y: number)
.decl reach(x: number, y: number)
.decl node(x: number)
.decl isolated(x: number)
.decl hub(x: number)
.output isolated
.output hub

link(X, Y) :- raw(X, Y), X != Y.      // stratum: filter self-loops
reach(X, Y) :- link(X, Y).             // stratum: recursion
reach(X, Z) :- reach(X, Y), link(Y, Z).
isolated(X) :- node(X), !reach(X, X).  // stratum: negation over reach
hub(X) :- node(X), !isolated(X).       // stratum: negation over isolated
`)
	e, err := New(prog, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		e.AddFact("node", tuple.Tuple{i})
	}
	// Cycle over 0..4; self-loop at 5 (filtered); chain 6->7->8.
	facts := [][2]uint64{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {5, 5}, {6, 7}, {7, 8}}
	for _, f := range facts {
		e.AddFact("raw", tuple.Tuple{f[0], f[1]})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// On a cycle every member reaches itself -> hub; everyone else is
	// isolated (self-loop removed, chains are acyclic).
	if got := e.Count("hub"); got != 5 {
		t.Fatalf("hub = %d, want 5", got)
	}
	if got := e.Count("isolated"); got != 5 {
		t.Fatalf("isolated = %d, want 5", got)
	}
	e.Scan("hub", func(tp tuple.Tuple) bool {
		if tp[0] > 4 {
			t.Errorf("non-cycle node %d is a hub", tp[0])
		}
		return true
	})
}

// TestTernaryJoins exercises arity-3 relations with varied signatures,
// which drives the index selection beyond the identity order.
func TestTernaryJoins(t *testing.T) {
	prog := MustParse(`
.decl t(a: number, b: number, c: number)
.decl byLast(c: number, n: number)
.decl byMid(b: number)
.decl probe(a: number)
.output byLast
.output byMid

probe(1). probe(2).
byLast(C, A) :- probe(C), t(A, _, C).
byMid(B) :- probe(B), t(_, B, _).
`)
	e, err := New(prog, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows := [][3]uint64{{10, 1, 1}, {11, 2, 1}, {12, 1, 2}, {13, 3, 3}}
	for _, r := range rows {
		e.AddFact("t", tuple.Tuple{r[0], r[1], r[2]})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// byLast: c=1 -> a in {10,11}; c=2 -> a=12.
	if got := e.Count("byLast"); got != 3 {
		t.Fatalf("byLast = %d, want 3", got)
	}
	// byMid: b values present among probes: 1, 2.
	if got := e.Count("byMid"); got != 2 {
		t.Fatalf("byMid = %d, want 2", got)
	}
	// The t relation needed permuted indexes for signatures {2} and {1}.
	if len(e.rels["t"].indexes) < 3 {
		t.Errorf("t has %d indexes; expected identity plus two permuted", len(e.rels["t"].indexes))
	}
}

// TestEngineAllProvidersSecurity checks fixpoint equality across providers
// on the stratified-negation workload shape.
func TestEngineAllProvidersSecurity(t *testing.T) {
	prog := MustParse(`
.decl n(x: number)
.decl e(x: number, y: number)
.decl r(x: number, y: number)
.decl un(x: number, y: number)
.output un
r(X, Y) :- e(X, Y).
r(X, Z) :- r(X, Y), e(Y, Z).
un(X, Y) :- n(X), n(Y), !r(X, Y), X < Y.
`)
	counts := map[string]int{}
	for _, name := range relation.Names() {
		e, err := New(prog, Options{Provider: relation.MustLookup(name), Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 30; i++ {
			e.AddFact("n", tuple.Tuple{i})
			if i%3 != 0 {
				e.AddFact("e", tuple.Tuple{i, (i + 1) % 30})
			}
		}
		if err := e.Run(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		counts[name] = e.Count("un")
	}
	want := counts["btree"]
	if want == 0 {
		t.Fatal("degenerate program")
	}
	for name, got := range counts {
		if got != want {
			t.Errorf("%s: un = %d, btree = %d", name, got, want)
		}
	}
}

// TestWorkerSweepFixpointStability: the fixpoint must be identical for
// every worker count (determinism of the parallel evaluation).
func TestWorkerSweepFixpointStability(t *testing.T) {
	prog := MustParse(`
.decl e(x: number, y: number)
.decl p(x: number, y: number)
.output p
p(X, Y) :- e(X, Y).
p(X, Z) :- p(X, Y), e(Y, Z).
`)
	var ref int
	for _, workers := range []int{1, 2, 3, 5, 8, 13} {
		e, err := New(prog, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			e.AddFact("e", tuple.Tuple{uint64(i % 37), uint64((i*7 + 3) % 37)})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		got := e.Count("p")
		if workers == 1 {
			ref = got
		} else if got != ref {
			t.Fatalf("workers=%d: p = %d, want %d", workers, got, ref)
		}
	}
}

// TestSelfJoinWithConstants probes a relation with a constant in a
// non-first column.
func TestSelfJoinWithConstants(t *testing.T) {
	prog := MustParse(`
.decl e(x: number, y: number)
.decl toFive(x: number)
.decl twoHop(x: number, z: number)
.output toFive
.output twoHop
toFive(X) :- e(X, 5).
twoHop(X, Z) :- e(X, 5), e(5, Z), X != Z.
`)
	e, err := New(prog, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range [][2]uint64{{1, 5}, {2, 5}, {5, 9}, {5, 1}, {3, 4}} {
		e.AddFact("e", tuple.Tuple{f[0], f[1]})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Count("toFive"); got != 2 {
		t.Fatalf("toFive = %d, want 2", got)
	}
	// twoHop: x in {1,2} × z in {9,1} minus x==z -> (1,9),(2,9),(2,1).
	if got := e.Count("twoHop"); got != 3 {
		t.Fatalf("twoHop = %d, want 3", got)
	}
}

// TestFactOnlyProgram has no rules at all.
func TestFactOnlyProgram(t *testing.T) {
	prog := MustParse(`
.decl p(x: number, y: number)
.output p
p(1, 2). p(3, 4). p(1, 2).
`)
	e, err := New(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Count("p") != 2 {
		t.Fatalf("p = %d, want 2 (duplicate fact)", e.Count("p"))
	}
}

// TestLargeFanoutParallelOuter ensures the splitter-partitioned outer scan
// (workers > 1, btree provider) agrees with the single-worker result on a
// rule whose outer scan is wide.
func TestLargeFanoutParallelOuter(t *testing.T) {
	prog := MustParse(`
.decl e(x: number, y: number)
.decl sym(x: number, y: number)
.output sym
sym(Y, X) :- e(X, Y).
`)
	build := func(workers int) *Engine {
		e, err := New(prog, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5000; i++ {
			e.AddFact("e", tuple.Tuple{uint64(i), uint64(i * 13 % 997)})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, b := build(1), build(8)
	if a.Count("sym") != b.Count("sym") {
		t.Fatalf("worker sweep diverged: %d vs %d", a.Count("sym"), b.Count("sym"))
	}
	var at, bt []tuple.Tuple
	a.Scan("sym", func(tp tuple.Tuple) bool { at = append(at, tp.Clone()); return true })
	b.Scan("sym", func(tp tuple.Tuple) bool { bt = append(bt, tp.Clone()); return true })
	for i := range at {
		if !tuple.Equal(at[i], bt[i]) {
			t.Fatalf("tuple %d: %v vs %v", i, at[i], bt[i])
		}
	}
}

// TestArityLimit rejects relations beyond the 64-column signature space.
func TestArityLimit(t *testing.T) {
	cols := make([]string, 65)
	for i := range cols {
		cols[i] = fmt.Sprintf("c%d: number", i)
	}
	src := ".decl wide(" + joinComma(cols) + ")\n"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(prog, Options{}); err == nil {
		t.Error("arity-65 relation accepted")
	}
}

func joinComma(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}
