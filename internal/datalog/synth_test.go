package datalog

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"specbtree/internal/tuple"
)

// TestSynthesizeGoCompilesAndAgrees generates the specialised program for
// the paper's running example, builds and runs it with `go run`, and
// compares its output relation with the interpreting engine's.
func TestSynthesizeGoCompilesAndAgrees(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a generated program")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}

	prog := MustParse(tcProgram)
	eng, err := New(prog, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	src, err := eng.SynthesizeGo()
	if err != nil {
		t.Fatal(err)
	}

	// The generated program imports specbtree/internal/...; place it in a
	// scratch package inside the module so `go run` resolves them.
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	repoRoot := filepath.Clean(filepath.Join(wd, "..", ".."))
	genDir, err := os.MkdirTemp(repoRoot, ".synthtest")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(genDir)
	if err := os.WriteFile(filepath.Join(genDir, "main.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}

	// Facts: a random-ish graph.
	var edges [][2]uint64
	for i := 0; i < 120; i++ {
		edges = append(edges, [2]uint64{uint64(i % 25), uint64((i*7 + 3) % 25)})
	}
	var facts bytes.Buffer
	for _, e := range edges {
		fmt.Fprintf(&facts, "%d\t%d\n", e[0], e[1])
	}
	factsDir := filepath.Join(genDir, "facts")
	os.MkdirAll(factsDir, 0o755)
	if err := os.WriteFile(filepath.Join(factsDir, "edge.facts"), facts.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	outDir := filepath.Join(genDir, "out")
	cmd := exec.Command("go", "run", "./"+filepath.Base(genDir), "-jobs", "2",
		"-facts", factsDir, "-out", outDir)
	cmd.Dir = repoRoot
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("generated program failed: %v\n%s\n--- generated source ---\n%s", err, out, src)
	}

	// Reference result from the interpreting engine.
	ref, err := New(prog, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		ref.AddFact("edge", tuple.Tuple{e[0], e[1]})
	}
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	ref.Scan("path", func(tp tuple.Tuple) bool {
		fmt.Fprintf(&want, "%d\t%d\n", tp[0], tp[1])
		return true
	})

	got, err := os.ReadFile(filepath.Join(outDir, "path.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("synthesised program result diverges: %d vs %d bytes",
			len(got), want.Len())
	}
}

// TestSynthesizeGoNegationCompilesAndAgrees covers the harder codegen
// paths end to end: stratified negation, comparisons, permuted indexes
// (probe on the second column) and mutual recursion.
func TestSynthesizeGoNegationCompilesAndAgrees(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a generated program")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	progSrc := `
.decl n(x: number)
.decl e(x: number, y: number)
.decl r(x: number, y: number)
.decl inv(x: number)
.decl iso(x: number)
.input n
.input e
.output iso
.output inv
r(X, Y) :- e(X, Y).
r(X, Z) :- r(X, Y), e(Y, Z).
inv(X) :- n(Y), e(X, Y), X < Y.
iso(X) :- n(X), !r(X, X).
`
	prog := MustParse(progSrc)
	eng, err := New(prog, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	src, err := eng.SynthesizeGo()
	if err != nil {
		t.Fatal(err)
	}

	wd, _ := os.Getwd()
	repoRoot := filepath.Clean(filepath.Join(wd, "..", ".."))
	genDir, err := os.MkdirTemp(repoRoot, ".synthtest")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(genDir)
	if err := os.WriteFile(filepath.Join(genDir, "main.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}

	var nFacts, eFacts bytes.Buffer
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&nFacts, "%d\n", i)
	}
	for i := 0; i < 120; i++ {
		fmt.Fprintf(&eFacts, "%d\t%d\n", i%40, (i*11+5)%40)
	}
	factsDir := filepath.Join(genDir, "facts")
	os.MkdirAll(factsDir, 0o755)
	os.WriteFile(filepath.Join(factsDir, "n.facts"), nFacts.Bytes(), 0o644)
	os.WriteFile(filepath.Join(factsDir, "e.facts"), eFacts.Bytes(), 0o644)

	outDir := filepath.Join(genDir, "out")
	cmd := exec.Command("go", "run", "./"+filepath.Base(genDir), "-jobs", "3",
		"-facts", factsDir, "-out", outDir)
	cmd.Dir = repoRoot
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("generated program failed: %v\n%s", err, out)
	}

	ref, _ := New(prog, Options{Workers: 1})
	for i := 0; i < 40; i++ {
		ref.AddFact("n", tuple.Tuple{uint64(i)})
	}
	for i := 0; i < 120; i++ {
		ref.AddFact("e", tuple.Tuple{uint64(i % 40), uint64((i*11 + 5) % 40)})
	}
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{"iso", "inv"} {
		var want bytes.Buffer
		ref.Scan(rel, func(tp tuple.Tuple) bool {
			for i, v := range tp {
				if i > 0 {
					want.WriteByte('\t')
				}
				fmt.Fprintf(&want, "%d", v)
			}
			want.WriteByte('\n')
			return true
		})
		got, err := os.ReadFile(filepath.Join(outDir, rel+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("%s diverges:\ngenerated:\n%s\nreference:\n%s", rel, got, want.Bytes())
		}
	}
}

// TestSynthesizeGoShape checks structural properties of the generated
// source without compiling it.
func TestSynthesizeGoShape(t *testing.T) {
	prog := MustParse(`
.decl n(x: number)
.decl e(x: number, y: number)
.decl r(x: number, y: number)
.decl iso(x: number)
.input e
.input n
.output iso
r(X, Y) :- e(X, Y).
r(X, Z) :- r(X, Y), e(Y, Z).
iso(X) :- n(X), !r(X, X).
`)
	eng, err := New(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := eng.SynthesizeGo()
	if err != nil {
		t.Fatal(err)
	}
	// gofmt aligns declaration blocks; collapse runs of whitespace so the
	// structural probes are layout-insensitive.
	text := strings.Join(strings.Fields(string(src)), " ")
	for _, want := range []string{
		"package main",
		"rel_r_full_0 = core.New(2)",
		"rel_r_delta_0 *core.Tree",
		"insert_r_new(",
		"ContainsHint(",
		"RangeHint(",
		"parallelFor(workers",
		"InsertAll(",
		`loadFacts(*factsDir, "e"`,
		`writeRelation(*outDir, "iso"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("generated source lacks %q", want)
		}
	}
	// The negation literal must probe the identity index of r's full
	// version with a hint.
	if !strings.Contains(text, "rel_r_full_0.ContainsHint(tuple.Tuple{") {
		t.Error("negation probe not emitted against the identity index")
	}
}

// TestSynthesizeGoInlineFactsAndSymbols covers symbolic constants.
func TestSynthesizeGoInlineFactsAndSymbols(t *testing.T) {
	prog := MustParse(`
.decl call(f: symbol, g: symbol)
.decl reach(f: symbol, g: symbol)
.output reach
call("main", "a").
reach(F, G) :- call(F, G).
reach(F, H) :- reach(F, G), call(G, H).
`)
	eng, err := New(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := eng.SynthesizeGo()
	if err != nil {
		t.Fatal(err)
	}
	text := string(src)
	if !strings.Contains(text, `insert_call_full(tuple.Tuple{intern("main"), intern("a")})`) {
		t.Errorf("inline symbolic fact not emitted:\n%s", grepLines(text, "insert_call_full"))
	}
}

func grepLines(text, needle string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, needle) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
