// Package datalog implements a Datalog engine in the architectural mould
// of Soufflé (paper §2): programs are sets of relations and deductive
// rules, evaluated bottom-up with the parallel semi-naïve strategy whose
// data-structure requirements motivate the specialised B-tree. The engine
// is parameterised over the relation representation (package relation), so
// the paper's §4.3 experiment — swapping the data structure under a fixed
// workload — is a constructor argument.
//
// Supported language: positive Datalog with stratified negation,
// arithmetic comparison constraints, numeric and interned symbolic
// constants, `.decl`, `.input`, `.output` directives, inline facts and
// line comments. No aggregates, no arithmetic functors.
package datalog

import (
	"fmt"
	"strings"
)

// TermKind discriminates rule terms.
type TermKind int

// Term kinds.
const (
	TermVar      TermKind = iota // a variable, e.g. X
	TermNum                      // a numeric constant, e.g. 42
	TermSym                      // a symbolic constant, e.g. "main"
	TermWildcard                 // the anonymous variable _
)

// Term is a variable, constant or wildcard inside an atom.
type Term struct {
	Kind TermKind
	Name string // variable name (TermVar)
	Num  uint64 // numeric value (TermNum) or interned symbol id (TermSym)
	Sym  string // symbol text (TermSym)
}

func (t Term) String() string {
	switch t.Kind {
	case TermVar:
		return t.Name
	case TermNum:
		return fmt.Sprintf("%d", t.Num)
	case TermSym:
		return fmt.Sprintf("%q", t.Sym)
	case TermWildcard:
		return "_"
	}
	return "?"
}

// Atom is a predicate applied to terms: pred(t1, ..., tn).
type Atom struct {
	Pred  string
	Terms []Term
}

func (a Atom) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// CmpOp is a comparison operator in a constraint literal.
type CmpOp int

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

func (o CmpOp) String() string {
	return [...]string{"=", "!=", "<", "<=", ">", ">="}[o]
}

// Eval applies the comparison to two values.
func (o CmpOp) Eval(a, b uint64) bool {
	switch o {
	case CmpEq:
		return a == b
	case CmpNe:
		return a != b
	case CmpLt:
		return a < b
	case CmpLe:
		return a <= b
	case CmpGt:
		return a > b
	case CmpGe:
		return a >= b
	}
	return false
}

// LiteralKind discriminates body literals.
type LiteralKind int

// Literal kinds.
const (
	LitAtom    LiteralKind = iota // positive atom
	LitNegAtom                    // negated atom !p(...)
	LitCmp                        // comparison constraint
)

// Literal is one conjunct of a rule body.
type Literal struct {
	Kind LiteralKind
	Atom Atom  // LitAtom / LitNegAtom
	Op   CmpOp // LitCmp
	L, R Term  // LitCmp operands
}

func (l Literal) String() string {
	switch l.Kind {
	case LitAtom:
		return l.Atom.String()
	case LitNegAtom:
		return "!" + l.Atom.String()
	case LitCmp:
		return fmt.Sprintf("%s %s %s", l.L, l.Op, l.R)
	}
	return "?"
}

// Rule is a deductive rule head :- body. An empty body denotes a fact.
type Rule struct {
	Head Atom
	Body []Literal
	Line int // source line for diagnostics
}

func (r Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Decl declares a relation and its arity.
type Decl struct {
	Name  string
	Arity int
	Line  int
}

// Program is a parsed Datalog program.
type Program struct {
	Decls   []Decl
	Rules   []Rule
	Inputs  []string // relations fed by external facts
	Outputs []string // relations of interest
}

// Decl returns the declaration of name, if any.
func (p *Program) Decl(name string) (Decl, bool) {
	for _, d := range p.Decls {
		if d.Name == name {
			return d, true
		}
	}
	return Decl{}, false
}

// NumRelations returns the number of declared relations.
func (p *Program) NumRelations() int { return len(p.Decls) }

// NumRules returns the number of rules with non-empty bodies plus facts.
func (p *Program) NumRules() int { return len(p.Rules) }
