package datalog

import (
	"strings"
	"testing"
)

// errCase is one malformed program together with the substring its error
// must contain. Unlike TestParseErrors, which only demands *an* error,
// these cases pin the message and the reported line number, so a
// regression that swaps one diagnostic for another (or mislabels the
// line) is caught even though Parse still fails.
type errCase struct {
	name string
	src  string
	want string // substring of the error message
}

// parseErrCases doubles as the seed list for FuzzParse: every input that
// pins a diagnostic here is also a corpus entry there, so the fuzzer
// starts its mutations from each distinct error path.
var parseErrCases = []errCase{
	// Lexer errors.
	{"unterminated block comment", ".decl p(x: number) /* never closed", "line 1: unterminated block comment"},
	{"unterminated block comment multiline", "/*\n\nx", "line 3: unterminated block comment"},
	{"unterminated string", ".decl p(x: symbol)\np(\"abc).", "line 2: unterminated string literal"},
	{"string runs to eof", `p("`, "unterminated string literal"},
	{"newline in string", ".decl p(x: symbol)\np(\"ab\nc\").", "line 2: newline in string literal"},
	{"trailing backslash in string", `p("ab\`, "unterminated string literal"},
	{"malformed number", ".decl p(x: number)\np(12abc).", "line 2: malformed number"},
	{"malformed number underscore", "p(1_000).", "malformed number"},
	{"unexpected character", ".decl p(x: number)\np(1) & p(2).", `unexpected character "&"`},
	{"unexpected character at top level", "@", `unexpected character "@"`},

	// Parser errors: malformed atoms and clause structure.
	{"expected directive or clause", ".decl p(x: number)\n42.", "line 2: expected directive or clause"},
	{"clause starting with paren", "(x).", "expected directive or clause"},
	{"atom missing open paren", ".decl p(x: number)\np 1 .", "expected '('"},
	{"atom missing close paren", ".decl p(x: number)\np(1, 2 .", "expected ')'"},
	{"atom trailing comma", ".decl p(x: number)\np(1, ).", "expected term"},
	{"nullary atom", ".decl p(x: number)\np().", "nullary atoms are not supported"},
	{"missing period", ".decl p(x: number)\np(1)", "expected '.'"},
	{"body cut off at eof", ".decl p(x: number)\np(X) :- ", "expected term"},
	{"negation without atom", ".decl p(x: number)\np(X) :- p(X), !5.", "expected predicate name"},
	{"dangling comparison", ".decl p(x: number)\np(X) :- X.", "expected comparison operator"},
	{"comparison missing operand", ".decl p(x: number)\np(X) :- X < .", "expected term"},

	// Directive errors.
	{"unknown directive", ".frobnicate p", `unknown directive ".frobnicate"`},
	{"decl missing name", ".decl (x: number)", "expected relation name"},
	{"decl missing param", ".decl p(: number)", "expected parameter name"},
	{"decl missing type after colon", ".decl p(x:)", "expected type name"},
	{"input missing name", ".input 7", "expected relation name"},

	// Structural validation errors (post-parse).
	{"undeclared relation", "p(1).", `undeclared relation "p"`},
	{"arity mismatch", ".decl p(x: number)\np(1, 2).", `"p" used with arity 2, declared 1`},
	{"body arity mismatch", ".decl p(x: number)\n.decl q(x: number)\np(X) :- q(X, X).", `"q" used with arity 2, declared 1`},
	{"duplicate decl", ".decl p(x: number)\n.decl p(x: number)", `relation "p" declared twice`},
	{"zero arity decl", ".decl p()", "expected parameter name"},
	{"output undeclared", ".output q", `undeclared relation "q"`},
}

// TestParseErrorMessages checks that each malformed input produces the
// specific diagnostic (with line number where pinned), not merely some
// error.
func TestParseErrorMessages(t *testing.T) {
	for _, c := range parseErrCases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err.Error(), c.want)
			}
			if !strings.HasPrefix(err.Error(), "datalog: ") {
				t.Fatalf("error %q not prefixed with package name", err.Error())
			}
		})
	}
}

// TestLexerErrorLineNumbers drives the lexer directly across newlines and
// comments to pin the line accounting used in every diagnostic.
func TestLexerErrorLineNumbers(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"\n\n\"abc", "line 3: unterminated string literal"},
		{"// c\n// c\n/* open", "line 3: unterminated block comment"},
		{"/* a\nb\nc */ \n9x", "line 4: malformed number"},
		{"\n\n\n\t ~", `line 4: unexpected character "~"`},
	}
	for _, c := range cases {
		l := newLexer(c.src)
		var err error
		for {
			var tok token
			tok, err = l.next()
			if err != nil || tok.kind == tokEOF {
				break
			}
		}
		if err == nil {
			t.Errorf("%q: lexer reported no error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not contain %q", c.src, err.Error(), c.want)
		}
	}
}

// TestLexerRecoversAfterError documents that a fresh lexer (or parser) is
// required after an error: Parse surfaces the first error and stops, and
// the same source always yields the same diagnostic (determinism matters
// because check harness replays rely on exact error matching).
func TestParseErrorsDeterministic(t *testing.T) {
	for _, c := range parseErrCases {
		_, err1 := Parse(c.src)
		_, err2 := Parse(c.src)
		if err1 == nil || err2 == nil {
			t.Fatalf("%s: expected errors, got %v / %v", c.name, err1, err2)
		}
		if err1.Error() != err2.Error() {
			t.Fatalf("%s: nondeterministic diagnostic: %q vs %q", c.name, err1.Error(), err2.Error())
		}
	}
}
