package datalog

import (
	"testing"

	"specbtree/internal/relation"
	"specbtree/internal/tuple"
)

// FuzzParse: the parser must never panic, whatever the input. Run with
// `go test -fuzz FuzzParse ./internal/datalog` for a real fuzzing session;
// as a plain test it exercises the seed corpus.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		".decl p(x: number)\np(1).",
		".decl e(x: number, y: number)\n.decl p(x: number, y: number)\np(X,Y) :- e(X,Y), X < Y.",
		".decl p(x: symbol)\np(\"a\").",
		".input p\n.output q",
		"p(X) :- ",
		".decl p(x: number)\np(X) :- p(X), !p(X).",
		"// comment\n/* block */ .decl p(x:number)",
		".decl p(x: number)\np(_) :- p(_).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	// Every pinned error-path input from parseerr_test.go is also a seed:
	// each exercises a distinct lexer or parser diagnostic, which gives
	// the fuzzer a starting point inside every error branch.
	for _, c := range parseErrCases {
		f.Add(c.src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		// Valid programs must survive the analyses without panicking.
		_ = CheckSafety(prog)
		_, _ = Stratify(prog)
	})
}

// FuzzEvaluate: syntactically valid random mini-programs that pass the
// analyses must evaluate without panicking and deterministically across
// worker counts.
func FuzzEvaluate(f *testing.F) {
	f.Add(uint8(3), uint16(20), int64(1))
	f.Add(uint8(7), uint16(100), int64(2))
	f.Fuzz(func(t *testing.T, domain uint8, nFacts uint16, seed int64) {
		d := uint64(domain%16) + 2
		prog := MustParse(`
.decl e(x: number, y: number)
.decl p(x: number, y: number)
.decl q(x: number)
.output p
.output q
p(X, Y) :- e(X, Y).
p(X, Z) :- p(X, Y), e(Y, Z).
q(X) :- p(X, X).
`)
		counts := map[int]int{}
		for _, workers := range []int{1, 3} {
			eng, err := New(prog, Options{Workers: workers, Provider: relation.MustLookup("btree")})
			if err != nil {
				t.Fatal(err)
			}
			s := seed
			for i := 0; i < int(nFacts%300); i++ {
				s = s*6364136223846793005 + 1442695040888963407
				x := uint64(s>>33) % d
				y := uint64(s>>13) % d
				eng.AddFact("e", tuple.Tuple{x, y})
			}
			if err := eng.Run(); err != nil {
				t.Fatal(err)
			}
			counts[workers] = eng.Count("p")
		}
		if counts[1] != counts[3] {
			t.Fatalf("nondeterministic fixpoint: %v", counts)
		}
	})
}
