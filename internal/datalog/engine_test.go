package datalog

import (
	"math/rand"
	"sort"
	"testing"

	"specbtree/internal/relation"
	"specbtree/internal/tuple"
)

const tcProgram = `
.decl edge(x: number, y: number)
.decl path(x: number, y: number)
.input edge
.output path
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`

// refClosure computes the transitive closure with a plain BFS model.
func refClosure(edges [][2]uint64) map[[2]uint64]bool {
	adj := map[uint64][]uint64{}
	nodes := map[uint64]bool{}
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		nodes[e[0]] = true
		nodes[e[1]] = true
	}
	out := map[[2]uint64]bool{}
	for n := range nodes {
		seen := map[uint64]bool{}
		stack := append([]uint64(nil), adj[n]...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[v] {
				continue
			}
			seen[v] = true
			out[[2]uint64{n, v}] = true
			stack = append(stack, adj[v]...)
		}
	}
	return out
}

func runTC(t *testing.T, edges [][2]uint64, opts Options) *Engine {
	t.Helper()
	e, err := New(MustParse(tcProgram), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, ed := range edges {
		if err := e.AddFact("edge", tuple.Tuple{ed[0], ed[1]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e
}

func checkClosure(t *testing.T, e *Engine, edges [][2]uint64, label string) {
	t.Helper()
	want := refClosure(edges)
	if got := e.Count("path"); got != len(want) {
		t.Fatalf("%s: path has %d tuples, want %d", label, got, len(want))
	}
	e.Scan("path", func(tp tuple.Tuple) bool {
		if !want[[2]uint64{tp[0], tp[1]}] {
			t.Errorf("%s: spurious path %v", label, tp)
			return false
		}
		return true
	})
}

func TestTransitiveClosureChain(t *testing.T) {
	var edges [][2]uint64
	for i := uint64(0); i < 50; i++ {
		edges = append(edges, [2]uint64{i, i + 1})
	}
	e := runTC(t, edges, Options{Workers: 1})
	// Chain of 51 nodes: n*(n+1)/2 paths for n=50 edges.
	if got := e.Count("path"); got != 50*51/2 {
		t.Fatalf("path count = %d, want %d", got, 50*51/2)
	}
	checkClosure(t, e, edges, "chain")
}

func TestTransitiveClosureCycle(t *testing.T) {
	// A cycle: every node reaches every node (including itself).
	const n = 20
	var edges [][2]uint64
	for i := uint64(0); i < n; i++ {
		edges = append(edges, [2]uint64{i, (i + 1) % n})
	}
	e := runTC(t, edges, Options{Workers: 2})
	if got := e.Count("path"); got != n*n {
		t.Fatalf("cycle closure = %d, want %d", got, n*n)
	}
}

func TestTransitiveClosureRandomMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var edges [][2]uint64
	seen := map[[2]uint64]bool{}
	for len(edges) < 300 {
		e := [2]uint64{uint64(rng.Intn(60)), uint64(rng.Intn(60))}
		if !seen[e] {
			seen[e] = true
			edges = append(edges, e)
		}
	}
	e := runTC(t, edges, Options{Workers: 4})
	checkClosure(t, e, edges, "random")
}

func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var edges [][2]uint64
	for i := 0; i < 400; i++ {
		edges = append(edges, [2]uint64{uint64(rng.Intn(80)), uint64(rng.Intn(80))})
	}
	seq := runTC(t, edges, Options{Workers: 1})
	par := runTC(t, edges, Options{Workers: 8})
	if seq.Count("path") != par.Count("path") {
		t.Fatalf("sequential %d vs parallel %d tuples", seq.Count("path"), par.Count("path"))
	}
	var a, b []tuple.Tuple
	seq.Scan("path", func(tp tuple.Tuple) bool { a = append(a, tp.Clone()); return true })
	par.Scan("path", func(tp tuple.Tuple) bool { b = append(b, tp.Clone()); return true })
	for i := range a {
		if !tuple.Equal(a[i], b[i]) {
			t.Fatalf("tuple %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestAllProvidersAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var edges [][2]uint64
	for i := 0; i < 200; i++ {
		edges = append(edges, [2]uint64{uint64(rng.Intn(40)), uint64(rng.Intn(40))})
	}
	want := refClosure(edges)
	for _, name := range relation.Names() {
		e := runTC(t, edges, Options{Provider: relation.MustLookup(name), Workers: 2})
		if got := e.Count("path"); got != len(want) {
			t.Fatalf("%s: %d paths, want %d", name, got, len(want))
		}
	}
}

func TestSameGeneration(t *testing.T) {
	// A classic mutually joined program on a balanced binary tree.
	prog := MustParse(`
.decl parent(x: number, y: number)
.decl sg(x: number, y: number)
.output sg
sg(X, Y) :- parent(P, X), parent(P, Y).
sg(X, Y) :- parent(PX, X), sg(PX, PY), parent(PY, Y).
`)
	e, err := New(prog, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Complete binary tree with 4 levels: node i has children 2i+1, 2i+2.
	depth := map[uint64]int{0: 0}
	for i := uint64(0); i < 15; i++ {
		for _, c := range []uint64{2*i + 1, 2*i + 2} {
			if c < 31 {
				e.AddFact("parent", tuple.Tuple{i, c})
				depth[c] = depth[i] + 1
			}
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Model: sg(x,y) iff same depth >= 1... specifically both reachable
	// from a common ancestor at equal distance; in a complete tree this is
	// exactly equal depth (excluding the root, which has no parent).
	want := 0
	for x, dx := range depth {
		for y, dy := range depth {
			if x != 0 && y != 0 && dx == dy {
				want++
			}
		}
	}
	if got := e.Count("sg"); got != want {
		t.Fatalf("sg = %d tuples, want %d", got, want)
	}
}

func TestStratifiedNegation(t *testing.T) {
	prog := MustParse(`
.decl node(x: number)
.decl edge(x: number, y: number)
.decl reach(x: number, y: number)
.decl unreach(x: number, y: number)
.output unreach
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
unreach(X, Y) :- node(X), node(Y), !reach(X, Y).
`)
	e, err := New(prog, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Two disconnected chains: 0->1->2 and 3->4.
	for i := uint64(0); i < 5; i++ {
		e.AddFact("node", tuple.Tuple{i})
	}
	for _, ed := range [][2]uint64{{0, 1}, {1, 2}, {3, 4}} {
		e.AddFact("edge", tuple.Tuple{ed[0], ed[1]})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	reach := map[[2]uint64]bool{{0, 1}: true, {0, 2}: true, {1, 2}: true, {3, 4}: true}
	want := 25 - len(reach)
	if got := e.Count("unreach"); got != want {
		t.Fatalf("unreach = %d, want %d", got, want)
	}
	e.Scan("unreach", func(tp tuple.Tuple) bool {
		if reach[[2]uint64{tp[0], tp[1]}] {
			t.Errorf("unreach contains reachable pair %v", tp)
		}
		return true
	})
}

func TestComparisonsAndConstants(t *testing.T) {
	prog := MustParse(`
.decl e(x: number, y: number)
.decl up(x: number, y: number)
.decl fromTwo(y: number, z: number)
.output up
.output fromTwo
up(X, Y) :- e(X, Y), X < Y.
fromTwo(Y, 7) :- e(2, Y).
`)
	e, err := New(prog, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, ed := range [][2]uint64{{1, 5}, {5, 1}, {2, 2}, {2, 9}, {3, 4}} {
		e.AddFact("e", tuple.Tuple{ed[0], ed[1]})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Count("up"); got != 3 { // (1,5) (2,9) (3,4)
		t.Fatalf("up = %d, want 3", got)
	}
	var got []tuple.Tuple
	e.Scan("fromTwo", func(tp tuple.Tuple) bool { got = append(got, tp.Clone()); return true })
	want := []tuple.Tuple{{2, 7}, {9, 7}}
	if len(got) != len(want) {
		t.Fatalf("fromTwo = %v", got)
	}
	for i := range got {
		if !tuple.Equal(got[i], want[i]) {
			t.Fatalf("fromTwo[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSymbolsAndInlineFacts(t *testing.T) {
	prog := MustParse(`
.decl call(f: symbol, g: symbol)
.decl reach(f: symbol, g: symbol)
.output reach
call("main", "a").
call("a", "b").
call("b", "c").
reach(F, G) :- call(F, G).
reach(F, H) :- reach(F, G), call(G, H).
`)
	e, err := New(prog, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Count("reach"); got != 6 {
		t.Fatalf("reach = %d, want 6", got)
	}
	main := e.Symbols().Intern("main")
	c := e.Symbols().Intern("c")
	found := false
	e.Scan("reach", func(tp tuple.Tuple) bool {
		if tp[0] == main && tp[1] == c {
			found = true
		}
		return true
	})
	if !found {
		t.Error("reach(main, c) missing")
	}
}

func TestWildcardProjection(t *testing.T) {
	prog := MustParse(`
.decl e(x: number, y: number)
.decl src(x: number)
.output src
src(X) :- e(X, _).
`)
	e, err := New(prog, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, ed := range [][2]uint64{{1, 2}, {1, 3}, {4, 5}} {
		e.AddFact("e", tuple.Tuple{ed[0], ed[1]})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Count("src"); got != 2 {
		t.Fatalf("src = %d, want 2", got)
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	prog := MustParse(`
.decl e(x: number, y: number)
.decl loop(x: number)
.output loop
loop(X) :- e(X, X).
`)
	e, err := New(prog, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, ed := range [][2]uint64{{1, 1}, {1, 2}, {3, 3}} {
		e.AddFact("e", tuple.Tuple{ed[0], ed[1]})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Count("loop"); got != 2 {
		t.Fatalf("loop = %d, want 2", got)
	}
}

func TestMutualRecursionEvenOdd(t *testing.T) {
	prog := MustParse(`
.decl next(x: number, y: number)
.decl even(x: number)
.decl odd(x: number)
.output even
.output odd
even(0).
odd(Y) :- even(X), next(X, Y).
even(Y) :- odd(X), next(X, Y).
`)
	e, err := New(prog, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		e.AddFact("next", tuple.Tuple{i, i + 1})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Count("even"); got != 11 { // 0,2,...,20
		t.Fatalf("even = %d, want 11", got)
	}
	if got := e.Count("odd"); got != 10 {
		t.Fatalf("odd = %d, want 10", got)
	}
	e.Scan("even", func(tp tuple.Tuple) bool {
		if tp[0]%2 != 0 {
			t.Errorf("even contains %d", tp[0])
		}
		return true
	})
}

func TestStatsCollected(t *testing.T) {
	var edges [][2]uint64
	for i := uint64(0); i < 30; i++ {
		edges = append(edges, [2]uint64{i, i + 1})
	}
	e := runTC(t, edges, Options{Workers: 2})
	s := e.Stats()
	if s.Relations != 2 || s.Rules != 2 {
		t.Errorf("relations/rules = %d/%d", s.Relations, s.Rules)
	}
	if s.InputTuples != 30 {
		t.Errorf("input tuples = %d", s.InputTuples)
	}
	if s.ProducedTuples != uint64(30*31/2) {
		t.Errorf("produced = %d, want %d", s.ProducedTuples, 30*31/2)
	}
	if s.Inserts == 0 || s.MembershipTests == 0 || s.LowerBoundCalls == 0 {
		t.Errorf("operation counters empty: %+v", s)
	}
	if s.LowerBoundCalls != s.UpperBoundCalls {
		t.Errorf("bound call counts differ: %d vs %d", s.LowerBoundCalls, s.UpperBoundCalls)
	}
	if s.Iterations == 0 {
		t.Error("no iterations recorded")
	}
	if s.HintHits == 0 {
		t.Error("btree provider recorded no hint hits")
	}
	if rate := s.HintRate(); rate <= 0 || rate > 1 {
		t.Errorf("hint rate %f out of range", rate)
	}
}

func TestRunTwiceErrors(t *testing.T) {
	e, err := New(MustParse(tcProgram), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err == nil {
		t.Error("second Run did not error")
	}
	if err := e.AddFact("edge", tuple.Tuple{1, 2}); err == nil {
		t.Error("AddFact after Run did not error")
	}
}

func TestAddFactErrors(t *testing.T) {
	e, err := New(MustParse(tcProgram), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddFact("nonesuch", tuple.Tuple{1}); err == nil {
		t.Error("unknown relation accepted")
	}
	if err := e.AddFact("edge", tuple.Tuple{1}); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := e.AddFacts("edge", []tuple.Tuple{{1, 2}, {3, 4}}); err != nil {
		t.Error(err)
	}
}

func TestScanOrderedOutput(t *testing.T) {
	e := runTC(t, [][2]uint64{{3, 4}, {1, 2}, {2, 3}}, Options{Workers: 1})
	var got []tuple.Tuple
	e.Scan("path", func(tp tuple.Tuple) bool { got = append(got, tp.Clone()); return true })
	if !sort.SliceIsSorted(got, func(i, j int) bool { return tuple.Less(got[i], got[j]) }) {
		t.Error("btree-backed output not in lexicographic order")
	}
	if err := e.Scan("nonesuch", func(tuple.Tuple) bool { return true }); err == nil {
		t.Error("scan of unknown relation did not error")
	}
}

func TestConstantOnlyRule(t *testing.T) {
	prog := MustParse(`
.decl p(x: number)
.decl q(x: number)
.output q
p(5).
q(1) :- p(5).
`)
	e, err := New(prog, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Count("q") != 1 {
		t.Error("constant-only rule did not fire")
	}
}
