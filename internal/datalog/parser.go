package datalog

import "fmt"

// Parse parses a Datalog program from source text.
//
// Grammar (informal):
//
//	program   := { directive | clause }
//	directive := ".decl" ident "(" params ")" | ".input" ident | ".output" ident
//	params    := param { "," param } ; param := ident [ ":" type ]  (type ignored)
//	clause    := atom [ ":-" literal { "," literal } ] "."
//	literal   := atom | "!" atom | term cmp term
//	atom      := ident "(" term { "," term } ")"
//	term      := variable | number | string | "_"
//
// Variables start with an upper- or lower-case letter; the convention of
// the engine is purely positional, so any identifier inside an atom is a
// variable. Symbolic constants are written as quoted strings.
func Parse(src string) (*Program, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for p.tok.kind != tokEOF {
		switch p.tok.kind {
		case tokDirective:
			if err := p.directive(prog); err != nil {
				return nil, err
			}
		case tokIdent:
			rule, err := p.clause()
			if err != nil {
				return nil, err
			}
			prog.Rules = append(prog.Rules, rule)
		default:
			return nil, p.errf("expected directive or clause, got %s", p.tok)
		}
	}
	if err := validate(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse, panicking on error; for tests and examples.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("datalog: line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.errf("expected %s, got %s", what, p.tok)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) directive(prog *Program) error {
	name := p.tok.text
	line := p.tok.line
	if err := p.advance(); err != nil {
		return err
	}
	switch name {
	case ".decl":
		id, err := p.expect(tokIdent, "relation name")
		if err != nil {
			return err
		}
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return err
		}
		arity := 0
		for {
			if _, err := p.expect(tokIdent, "parameter name"); err != nil {
				return err
			}
			arity++
			// Optional Soufflé-style ": type" annotation, ignored.
			if p.tok.kind == tokColon {
				if err := p.advance(); err != nil {
					return err
				}
				if _, err := p.expect(tokIdent, "type name"); err != nil {
					return err
				}
			}
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return err
				}
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return err
		}
		prog.Decls = append(prog.Decls, Decl{Name: id.text, Arity: arity, Line: line})
	case ".input":
		id, err := p.expect(tokIdent, "relation name")
		if err != nil {
			return err
		}
		prog.Inputs = append(prog.Inputs, id.text)
	case ".output":
		id, err := p.expect(tokIdent, "relation name")
		if err != nil {
			return err
		}
		prog.Outputs = append(prog.Outputs, id.text)
	default:
		return p.errf("unknown directive %q", name)
	}
	return nil
}

func (p *parser) clause() (Rule, error) {
	head, err := p.atom()
	if err != nil {
		return Rule{}, err
	}
	rule := Rule{Head: head, Line: p.tok.line}
	if p.tok.kind == tokColonDash {
		if err := p.advance(); err != nil {
			return Rule{}, err
		}
		for {
			lit, err := p.literal()
			if err != nil {
				return Rule{}, err
			}
			rule.Body = append(rule.Body, lit)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return Rule{}, err
			}
		}
	}
	if _, err := p.expect(tokPeriod, "'.'"); err != nil {
		return Rule{}, err
	}
	return rule, nil
}

func (p *parser) literal() (Literal, error) {
	if p.tok.kind == tokBang {
		if err := p.advance(); err != nil {
			return Literal{}, err
		}
		a, err := p.atom()
		if err != nil {
			return Literal{}, err
		}
		return Literal{Kind: LitNegAtom, Atom: a}, nil
	}
	// Could be an atom (ident followed by '(') or a comparison.
	if p.tok.kind == tokIdent {
		save := p.tok
		if err := p.advance(); err != nil {
			return Literal{}, err
		}
		if p.tok.kind == tokLParen {
			a, err := p.atomArgs(save.text)
			if err != nil {
				return Literal{}, err
			}
			return Literal{Kind: LitAtom, Atom: a}, nil
		}
		// Comparison with a variable left operand.
		return p.cmpRest(Term{Kind: TermVar, Name: save.text})
	}
	// Comparison with a constant left operand.
	l, err := p.term()
	if err != nil {
		return Literal{}, err
	}
	return p.cmpRest(l)
}

func (p *parser) cmpRest(l Term) (Literal, error) {
	if p.tok.kind != tokCmp {
		return Literal{}, p.errf("expected comparison operator, got %s", p.tok)
	}
	var op CmpOp
	switch p.tok.text {
	case "=":
		op = CmpEq
	case "!=":
		op = CmpNe
	case "<":
		op = CmpLt
	case "<=":
		op = CmpLe
	case ">":
		op = CmpGt
	case ">=":
		op = CmpGe
	}
	if err := p.advance(); err != nil {
		return Literal{}, err
	}
	r, err := p.term()
	if err != nil {
		return Literal{}, err
	}
	return Literal{Kind: LitCmp, Op: op, L: l, R: r}, nil
}

func (p *parser) atom() (Atom, error) {
	id, err := p.expect(tokIdent, "predicate name")
	if err != nil {
		return Atom{}, err
	}
	return p.atomArgs(id.text)
}

// atomArgs parses "(" terms ")" with the predicate name already consumed.
func (p *parser) atomArgs(pred string) (Atom, error) {
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return Atom{}, err
	}
	a := Atom{Pred: pred}
	if p.tok.kind == tokRParen {
		return Atom{}, p.errf("nullary atoms are not supported")
	}
	for {
		t, err := p.term()
		if err != nil {
			return Atom{}, err
		}
		a.Terms = append(a.Terms, t)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return Atom{}, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return Atom{}, err
	}
	return a, nil
}

func (p *parser) term() (Term, error) {
	switch p.tok.kind {
	case tokIdent:
		t := Term{Kind: TermVar, Name: p.tok.text}
		return t, p.advance()
	case tokNumber:
		t := Term{Kind: TermNum, Num: p.tok.num}
		return t, p.advance()
	case tokString:
		t := Term{Kind: TermSym, Sym: p.tok.text}
		return t, p.advance()
	case tokUnderscore:
		return Term{Kind: TermWildcard}, p.advance()
	}
	return Term{}, p.errf("expected term, got %s", p.tok)
}

// validate performs basic structural checks: declared predicates, arity
// agreement, declared inputs/outputs.
func validate(prog *Program) error {
	arities := map[string]int{}
	for _, d := range prog.Decls {
		if _, dup := arities[d.Name]; dup {
			return fmt.Errorf("datalog: line %d: relation %q declared twice", d.Line, d.Name)
		}
		if d.Arity == 0 {
			return fmt.Errorf("datalog: line %d: relation %q has arity 0", d.Line, d.Name)
		}
		arities[d.Name] = d.Arity
	}
	checkAtom := func(a Atom, line int) error {
		want, ok := arities[a.Pred]
		if !ok {
			return fmt.Errorf("datalog: line %d: undeclared relation %q", line, a.Pred)
		}
		if len(a.Terms) != want {
			return fmt.Errorf("datalog: line %d: %q used with arity %d, declared %d",
				line, a.Pred, len(a.Terms), want)
		}
		return nil
	}
	for _, r := range prog.Rules {
		if err := checkAtom(r.Head, r.Line); err != nil {
			return err
		}
		for _, l := range r.Body {
			if l.Kind != LitCmp {
				if err := checkAtom(l.Atom, r.Line); err != nil {
					return err
				}
			}
		}
	}
	for _, dir := range [][]string{prog.Inputs, prog.Outputs} {
		for _, n := range dir {
			if _, ok := arities[n]; !ok {
				return fmt.Errorf("datalog: directive references undeclared relation %q", n)
			}
		}
	}
	return nil
}
