package datalog

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// The compiler turns rules into evaluation plans. Mirroring the paper's
// synthesised code (Figure 1), a rule body becomes a nest of prefix scans
// over relation indexes; every positive atom is assigned an index — a
// permutation of the relation's columns placing the atom's bound columns
// first, so the matching tuples form one contiguous lexicographic range
// (the greedy form of the index selection of [29]).

// valSrc produces a value at runtime: a constant or a bound variable.
type valSrc struct {
	isConst bool
	c       uint64
	v       int // variable slot
}

// colAction consumes one scanned (suffix) column: bind a fresh variable,
// check a variable bound earlier in the same atom, or skip a wildcard.
type colAction struct {
	kind colActionKind
	v    int
}

type colActionKind int

const (
	actBind colActionKind = iota
	actCheck
	actSkip
)

// pushBound is one comparison absorbed into an atom's scan bounds by the
// pushdown pass (DESIGN.md §12): at scan-open time the streaming
// evaluator evaluates val against the current bindings and tightens the
// range of the index's first suffix column according to op (one of <,
// <=, >, >=, =). The original comparison literal stays in the body,
// marked pushed, so the non-streaming paths still apply it as a filter.
type pushBound struct {
	op  CmpOp
	val valSrc
}

// litPlan is one compiled body literal.
type litPlan struct {
	kind LiteralKind

	// Positive atoms.
	rel      *engRel
	useDelta bool
	index    int      // index id within rel
	prefix   []valSrc // values of the index's prefix columns, in order
	rest     []colAction
	// push holds the comparisons the pushdown pass absorbed into this
	// atom's scan bounds (streaming evaluation only).
	push []pushBound
	// Negated atoms: ground tuple in original column order.
	ground []valSrc
	// Comparisons.
	op   CmpOp
	l, r valSrc
	// pushed marks a comparison that has been absorbed into an earlier
	// atom's push set; the streaming evaluator (with pushdown enabled)
	// passes it through, every other path evaluates it normally.
	pushed bool

	// Per-node actuals for EXPLAIN ANALYZE (explain.go), maintained by
	// the streaming evaluator: scans opened on this atom, rows pulled
	// through its iterator, and rows that passed its residual actions.
	// They are exact, always-on counts — never derived from the sampled
	// span ring — flushed once per scan exhaustion via atomic adds (the
	// fields stay plain uint64s because litPlans are copied by value in
	// compileRule and cloneCompiled; a sync/atomic typed field would trip
	// vet's copylocks check).
	actScans   uint64
	actRows    uint64
	actEmitted uint64
}

// rulePlan is one semi-naïve version of a rule.
type rulePlan struct {
	rule     int // index into prog.Rules, for diagnostics
	label    string
	head     *engRel
	headVals []valSrc
	body     []litPlan
	numVars  int
	// varNames maps variable slots back to source names, for -explain.
	varNames []string
	// recursiveVersion reports whether this version reads a delta.
	recursiveVersion bool

	// profiling accumulators, touched only by the sequential driver.
	evalTime  time.Duration
	evalCount uint64
}

// indexDef is a column permutation: column i of the stored (permuted)
// tuple is original column Perm[i].
type indexDef struct {
	Perm []int
}

func (d indexDef) signature() string {
	var sb strings.Builder
	for i, p := range d.Perm {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", p)
	}
	return sb.String()
}

// permFor computes the canonical permutation for a set of bound columns:
// bound columns in ascending order, then the rest in ascending order.
func permFor(arity int, bound map[int]bool) []int {
	perm := make([]int, 0, arity)
	for c := 0; c < arity; c++ {
		if bound[c] {
			perm = append(perm, c)
		}
	}
	for c := 0; c < arity; c++ {
		if !bound[c] {
			perm = append(perm, c)
		}
	}
	return perm
}

// orderBody schedules a rule body: the delta literal (if any) first, the
// remaining positive atoms in source order, and each negation or
// comparison as early as its variables allow. Returns the literal indices
// in evaluation order.
func orderBody(body []Literal, deltaPos int) []int {
	type pending struct {
		idx  int
		vars []string
	}
	varsOf := func(l Literal) []string {
		var vs []string
		add := func(t Term) {
			if t.Kind == TermVar {
				vs = append(vs, t.Name)
			}
		}
		if l.Kind == LitCmp {
			add(l.L)
			add(l.R)
		} else {
			for _, t := range l.Atom.Terms {
				add(t)
			}
		}
		return vs
	}

	bound := map[string]bool{}
	var order []int
	var constraints []pending
	scheduledPos := make([]bool, len(body))

	schedulePositive := func(idx int) {
		order = append(order, idx)
		scheduledPos[idx] = true
		for _, v := range varsOf(body[idx]) {
			bound[v] = true
		}
	}
	flushConstraints := func() {
		for {
			progress := false
			for i := 0; i < len(constraints); i++ {
				ready := true
				for _, v := range constraints[i].vars {
					if !bound[v] {
						ready = false
						break
					}
				}
				if ready {
					order = append(order, constraints[i].idx)
					constraints = append(constraints[:i], constraints[i+1:]...)
					i--
					progress = true
				}
			}
			if !progress {
				return
			}
		}
	}

	for i, l := range body {
		if l.Kind != LitAtom {
			constraints = append(constraints, pending{idx: i, vars: varsOf(l)})
		}
	}
	if deltaPos >= 0 {
		schedulePositive(deltaPos)
		flushConstraints()
	}
	for i, l := range body {
		if l.Kind == LitAtom && !scheduledPos[i] {
			schedulePositive(i)
			flushConstraints()
		}
	}
	// Safety guarantees all constraint variables are bound by now.
	sort.Slice(constraints, func(i, j int) bool { return constraints[i].idx < constraints[j].idx })
	for _, c := range constraints {
		order = append(order, c.idx)
	}
	return order
}

// compileRule builds the plan for one semi-naïve version of rule ri.
// deltaPos < 0 compiles the non-recursive (all-full) version; otherwise
// body[deltaPos] reads the delta.
func (e *Engine) compileRule(ri int, deltaPos int) (*rulePlan, error) {
	r := e.prog.Rules[ri]
	label := r.String()
	if deltaPos >= 0 {
		label = fmt.Sprintf("%s [delta @%d]", label, deltaPos)
	}
	plan := &rulePlan{rule: ri, label: label, recursiveVersion: deltaPos >= 0}

	slots := map[string]int{}
	slotOf := func(name string) int {
		if s, ok := slots[name]; ok {
			return s
		}
		s := len(slots)
		slots[name] = s
		return s
	}
	// src compiles a term that must produce a value (consts and bound
	// vars); the caller guarantees boundness.
	src := func(t Term) valSrc {
		switch t.Kind {
		case TermNum:
			return valSrc{isConst: true, c: t.Num}
		case TermSym:
			return valSrc{isConst: true, c: e.syms.Intern(t.Sym)}
		case TermVar:
			return valSrc{v: slotOf(t.Name)}
		}
		panic("datalog: wildcard where a value is required")
	}

	order := orderBody(r.Body, deltaPos)
	bound := map[string]bool{}
	for _, li := range order {
		l := r.Body[li]
		switch l.Kind {
		case LitAtom:
			rel := e.rels[l.Atom.Pred]
			lp := litPlan{kind: LitAtom, rel: rel, useDelta: li == deltaPos}
			// The search signature: columns bound by constants or by
			// variables of earlier literals. The minimum-chain-cover index
			// selection (indexopt.go) has already assigned an index whose
			// order starts with exactly these columns.
			var sig sigSet
			for c, t := range l.Atom.Terms {
				switch t.Kind {
				case TermNum, TermSym:
					sig |= 1 << uint(c)
				case TermVar:
					if bound[t.Name] {
						sig |= 1 << uint(c)
					}
				}
			}
			var nPrefix int
			lp.index, nPrefix = rel.indexFor(sig)
			perm := rel.indexes[lp.index].Perm
			for i := 0; i < nPrefix; i++ {
				lp.prefix = append(lp.prefix, src(l.Atom.Terms[perm[i]]))
			}
			// Suffix actions; a variable may repeat within the suffix.
			seen := map[string]bool{}
			for i := nPrefix; i < rel.arity; i++ {
				t := l.Atom.Terms[perm[i]]
				switch t.Kind {
				case TermWildcard:
					lp.rest = append(lp.rest, colAction{kind: actSkip})
				case TermVar:
					if seen[t.Name] {
						lp.rest = append(lp.rest, colAction{kind: actCheck, v: slotOf(t.Name)})
					} else {
						seen[t.Name] = true
						lp.rest = append(lp.rest, colAction{kind: actBind, v: slotOf(t.Name)})
					}
				default:
					// A constant in the suffix cannot happen: constants are
					// always bound columns.
					return nil, fmt.Errorf("datalog: internal: constant in scan suffix")
				}
			}
			plan.body = append(plan.body, lp)
			for _, t := range l.Atom.Terms {
				if t.Kind == TermVar {
					bound[t.Name] = true
				}
			}
		case LitNegAtom:
			// Ground membership probe against the identity index (index 0).
			rel := e.rels[l.Atom.Pred]
			lp := litPlan{kind: LitNegAtom, rel: rel, index: 0}
			for _, t := range l.Atom.Terms {
				lp.ground = append(lp.ground, src(t))
			}
			plan.body = append(plan.body, lp)
		case LitCmp:
			plan.body = append(plan.body, litPlan{kind: LitCmp, op: l.Op, l: src(l.L), r: src(l.R)})
		}
	}

	plan.head = e.rels[r.Head.Pred]
	for _, t := range r.Head.Terms {
		plan.headVals = append(plan.headVals, src(t))
	}
	plan.numVars = len(slots)
	plan.varNames = make([]string, len(slots))
	for name, s := range slots {
		plan.varNames[s] = name
	}
	absorbPushdown(plan)
	return plan, nil
}

// flip mirrors the operator across the comparison: a OP b == b flip(OP) a.
func (o CmpOp) flip() CmpOp {
	switch o {
	case CmpLt:
		return CmpGt
	case CmpLe:
		return CmpGe
	case CmpGt:
		return CmpLt
	case CmpGe:
		return CmpLe
	}
	return o
}

// absorbPushdown runs the predicate-pushdown pass over a compiled plan
// (DESIGN.md §12): a comparison between the variable bound by the first
// suffix column of an atom's index and a value known before that atom is
// scanned (a constant, or a variable bound by an earlier literal) is
// absorbed into the atom's scan bounds. Only the first suffix column is
// eligible — bounds on it keep the matching tuples one contiguous
// lexicographic range, which deeper columns would not. The comparison
// literal stays in the body marked pushed, so the materialising path and
// the no-pushdown ablation still evaluate it as a filter; results are
// identical either way, which the differential harness checks.
func absorbPushdown(p *rulePlan) {
	bound := make([]bool, p.numVars) // bound strictly before the literal under examination
	for i := range p.body {
		l := &p.body[i]
		if l.kind != LitAtom {
			continue
		}
		if len(l.rest) > 0 && l.rest[0].kind == actBind {
			v := l.rest[0].v
			for j := i + 1; j < len(p.body); j++ {
				c := &p.body[j]
				if c.kind != LitCmp || c.pushed {
					continue
				}
				var op CmpOp
				var other valSrc
				switch {
				case !c.l.isConst && c.l.v == v:
					op, other = c.op, c.r
				case !c.r.isConst && c.r.v == v:
					op, other = c.op.flip(), c.l
				default:
					continue
				}
				if !other.isConst && (other.v == v || !bound[other.v]) {
					continue
				}
				switch op {
				case CmpLt, CmpLe, CmpGt, CmpGe, CmpEq:
				default:
					continue // != does not describe a contiguous range
				}
				l.push = append(l.push, pushBound{op: op, val: other})
				c.pushed = true
			}
		}
		for _, a := range l.rest {
			if a.kind == actBind {
				bound[a.v] = true
			}
		}
	}
}

// collectSignatures mirrors compileRule's literal ordering and boundness
// analysis, reporting the search signature of every positive atom of one
// rule version to the sink. It must stay in lock-step with compileRule:
// the signatures registered here are exactly the ones compileRule resolves.
func (e *Engine) collectSignatures(ri int, deltaPos int, sink func(rel *engRel, sig sigSet)) {
	r := e.prog.Rules[ri]
	order := orderBody(r.Body, deltaPos)
	bound := map[string]bool{}
	for _, li := range order {
		l := r.Body[li]
		if l.Kind != LitAtom {
			continue
		}
		var sig sigSet
		for c, t := range l.Atom.Terms {
			switch t.Kind {
			case TermNum, TermSym:
				sig |= 1 << uint(c)
			case TermVar:
				if bound[t.Name] {
					sig |= 1 << uint(c)
				}
			}
		}
		sink(e.rels[l.Atom.Pred], sig)
		for _, t := range l.Atom.Terms {
			if t.Kind == TermVar {
				bound[t.Name] = true
			}
		}
	}
}
