package datalog

import (
	"fmt"
	"sort"
)

// SymbolTable interns symbolic constants to dense uint64 ids, exactly as
// Soufflé does before evaluation: all tuples inside the engine are vectors
// of machine words.
type SymbolTable struct {
	ids   map[string]uint64
	names []string
}

// NewSymbolTable creates an empty table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{ids: map[string]uint64{}}
}

// Intern returns the id of s, assigning a fresh one on first sight.
func (st *SymbolTable) Intern(s string) uint64 {
	if id, ok := st.ids[s]; ok {
		return id
	}
	id := uint64(len(st.names))
	st.ids[s] = id
	st.names = append(st.names, s)
	return id
}

// Name returns the symbol text for id, or a numeric rendering if unknown.
func (st *SymbolTable) Name(id uint64) string {
	if id < uint64(len(st.names)) {
		return st.names[id]
	}
	return fmt.Sprintf("#%d", id)
}

// Len returns the number of interned symbols.
func (st *SymbolTable) Len() int { return len(st.names) }

// CheckSafety verifies every rule is range-restricted:
//   - every head variable occurs in a positive body atom;
//   - every variable of a negated atom occurs in a positive body atom;
//   - every variable of a comparison occurs in a positive body atom;
//   - wildcards do not occur in heads.
func CheckSafety(prog *Program) error {
	for _, r := range prog.Rules {
		bound := map[string]bool{}
		for _, l := range r.Body {
			if l.Kind == LitAtom {
				for _, t := range l.Atom.Terms {
					if t.Kind == TermVar {
						bound[t.Name] = true
					}
				}
			}
		}
		for _, t := range r.Head.Terms {
			switch t.Kind {
			case TermWildcard:
				return fmt.Errorf("datalog: line %d: wildcard in rule head", r.Line)
			case TermVar:
				if !bound[t.Name] {
					return fmt.Errorf("datalog: line %d: head variable %q not bound by a positive body atom", r.Line, t.Name)
				}
			}
		}
		for _, l := range r.Body {
			switch l.Kind {
			case LitNegAtom:
				for _, t := range l.Atom.Terms {
					if t.Kind == TermVar && !bound[t.Name] {
						return fmt.Errorf("datalog: line %d: variable %q of negated atom not bound", r.Line, t.Name)
					}
				}
			case LitCmp:
				for _, t := range []Term{l.L, l.R} {
					if t.Kind == TermVar && !bound[t.Name] {
						return fmt.Errorf("datalog: line %d: variable %q of comparison not bound", r.Line, t.Name)
					}
					if t.Kind == TermWildcard {
						return fmt.Errorf("datalog: line %d: wildcard in comparison", r.Line)
					}
				}
			}
		}
	}
	return nil
}

// Stratum is one strongly connected component of the predicate dependency
// graph, evaluated as a unit. Predicates within one stratum may be
// mutually recursive.
type Stratum struct {
	// Preds lists the predicates of this stratum (sorted).
	Preds []string
	// Rules indexes prog.Rules whose head is in this stratum.
	Rules []int
	// Recursive reports whether any rule's body references a predicate of
	// this same stratum (i.e. the stratum needs fixpoint iteration).
	Recursive bool
}

// Stratify computes the evaluation order: strongly connected components of
// the dependency graph in topological order, rejecting programs where a
// predicate depends negatively on its own stratum (unstratifiable
// negation).
func Stratify(prog *Program) ([]Stratum, error) {
	// Dependency edges: head -> body predicate.
	type edge struct {
		to  string
		neg bool
	}
	deps := map[string][]edge{}
	preds := map[string]bool{}
	for _, d := range prog.Decls {
		preds[d.Name] = true
		deps[d.Name] = nil
	}
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if l.Kind == LitCmp {
				continue
			}
			deps[r.Head.Pred] = append(deps[r.Head.Pred], edge{to: l.Atom.Pred, neg: l.Kind == LitNegAtom})
		}
	}

	// Tarjan's SCC over the predicate graph.
	names := make([]string, 0, len(preds))
	for n := range preds {
		names = append(names, n)
	}
	sort.Strings(names)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	counter := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range deps[v] {
			w := e.to
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			sccs = append(sccs, comp)
		}
	}
	for _, n := range names {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	// Tarjan emits components in reverse topological order of the
	// dependency graph (head -> body); since bodies must be evaluated
	// first, Tarjan's order is already the evaluation order.
	sccOf := map[string]int{}
	for i, comp := range sccs {
		for _, p := range comp {
			sccOf[p] = i
		}
	}

	// Reject negative edges within one SCC.
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if l.Kind == LitNegAtom && sccOf[r.Head.Pred] == sccOf[l.Atom.Pred] {
				return nil, fmt.Errorf("datalog: line %d: unstratifiable negation of %q", r.Line, l.Atom.Pred)
			}
		}
	}

	strata := make([]Stratum, len(sccs))
	for i, comp := range sccs {
		strata[i].Preds = comp
	}
	for ri, r := range prog.Rules {
		si := sccOf[r.Head.Pred]
		strata[si].Rules = append(strata[si].Rules, ri)
		for _, l := range r.Body {
			if l.Kind == LitAtom && sccOf[l.Atom.Pred] == si {
				strata[si].Recursive = true
			}
		}
	}
	return strata, nil
}
