package datalog

import (
	"fmt"
	"testing"

	"specbtree/internal/tuple"
)

// cacheTestSrc uses symbolic constants so a cache hit exercises the
// symbol-replay machinery: the interned ids baked into the cached plans
// must resolve identically in the binding engine's fresh table.
const cacheTestSrc = `
.decl edge(x: number, y: number)
.decl label(x: number, l: symbol)
.decl path(x: number, y: number)
.decl tagged(x: number, y: number)
.output path
.output tagged
edge(1, 2). edge(2, 3). edge(3, 4).
label(2, "keep"). label(3, "drop"). label(4, "keep").
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
tagged(X, Y) :- path(X, Y), label(Y, "keep").
`

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func runEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	eng, err := New(mustParse(t, cacheTestSrc), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return eng
}

func dumpRel(t *testing.T, eng *Engine, name string) []string {
	t.Helper()
	var rows []string
	if err := eng.Scan(name, func(tp tuple.Tuple) bool {
		rows = append(rows, fmt.Sprint([]uint64(tp)))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestPlanCacheHitMissAccounting pins the accounting: first compile
// misses and stores, the second identical program hits, and both
// engines report their side of it in Stats.
func TestPlanCacheHitMissAccounting(t *testing.T) {
	cache := NewPlanCache(8)
	e1 := runEngine(t, Options{Workers: 1, PlanCache: cache})
	if s := cache.Stats(); s.Misses != 1 || s.Hits != 0 || s.Entries != 1 {
		t.Fatalf("after first engine: %+v", s)
	}
	if s := e1.Stats(); s.PlanCacheMiss != 1 || s.PlanCacheHits != 0 {
		t.Fatalf("first engine stats: hits=%d misses=%d", s.PlanCacheHits, s.PlanCacheMiss)
	}

	e2 := runEngine(t, Options{Workers: 1, PlanCache: cache})
	if s := cache.Stats(); s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("after second engine: %+v", s)
	}
	if s := e2.Stats(); s.PlanCacheHits != 1 || s.PlanCacheMiss != 0 {
		t.Fatalf("second engine stats: hits=%d misses=%d", s.PlanCacheHits, s.PlanCacheMiss)
	}
	if rate := cache.Stats().HitRate(); rate != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", rate)
	}

	// The cached compilation must be observationally identical — same
	// derived relations, tuple for tuple (symbol replay included).
	for _, rel := range []string{"path", "tagged"} {
		a, b := dumpRel(t, e1, rel), dumpRel(t, e2, rel)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Errorf("relation %s diverged across cache hit:\n miss: %v\n hit:  %v", rel, a, b)
		}
	}
	if len(dumpRel(t, e2, "tagged")) == 0 {
		t.Error("tagged is empty; the symbolic filter matched nothing")
	}
}

// TestPlanCacheKeyedByProgram: a different program text must miss.
func TestPlanCacheKeyedByProgram(t *testing.T) {
	cache := NewPlanCache(8)
	runEngine(t, Options{Workers: 1, PlanCache: cache})
	other := `
.decl edge(x: number, y: number)
.decl path(x: number, y: number)
.output path
edge(1, 2).
path(X, Y) :- edge(X, Y).
`
	eng, err := New(mustParse(t, other), Options{Workers: 1, PlanCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	_ = eng
	if s := cache.Stats(); s.Misses != 2 || s.Hits != 0 || s.Entries != 2 {
		t.Fatalf("distinct programs should both miss: %+v", s)
	}
}

// TestPlanCacheInvalidation: an entry whose recorded index signatures no
// longer match its skeletons (an index-set change) is dropped, counted,
// and recompiled — and the recompiled engine still evaluates correctly.
func TestPlanCacheInvalidation(t *testing.T) {
	cache := NewPlanCache(8)
	key := programKey(mustParse(t, cacheTestSrc))
	e1 := runEngine(t, Options{Workers: 1, PlanCache: cache})
	want := dumpRel(t, e1, "path")

	// Tamper with the stored entry the way an index-set change would
	// manifest: the recorded signatures disagree with the skeleton.
	cache.mu.Lock()
	entry, ok := cache.entries[key]
	if !ok {
		cache.mu.Unlock()
		t.Fatalf("entry not stored under programKey; keys=%d", len(cache.entries))
	}
	entry.sigs["edge"] = []string{"1,0", "0,1,2"}
	cache.mu.Unlock()

	e2 := runEngine(t, Options{Workers: 1, PlanCache: cache})
	s := cache.Stats()
	if s.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1 (%+v)", s.Invalidations, s)
	}
	if s.Misses != 2 {
		t.Fatalf("the invalidated lookup must count as a miss: %+v", s)
	}
	if got := dumpRel(t, e2, "path"); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("recompiled engine diverged: %v want %v", got, want)
	}

	// The recompile restored a valid entry: next lookup hits again.
	runEngine(t, Options{Workers: 1, PlanCache: cache})
	if s := cache.Stats(); s.Hits != 1 {
		t.Fatalf("expected a hit after recompile: %+v", s)
	}
}

// TestPlanCacheLRUEviction: a capacity-1 cache keeps only the most
// recent program.
func TestPlanCacheLRUEviction(t *testing.T) {
	cache := NewPlanCache(1)
	runEngine(t, Options{Workers: 1, PlanCache: cache})
	other := `
.decl a(x: number)
.decl b(x: number)
.output b
a(1). a(2).
b(X) :- a(X), X > 1.
`
	if _, err := New(mustParse(t, other), Options{PlanCache: cache}); err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Entries != 1 {
		t.Fatalf("capacity 1 holds %d entries", s.Entries)
	}
	// The first program was evicted: compiling it again misses.
	runEngine(t, Options{Workers: 1, PlanCache: cache})
	if s := cache.Stats(); s.Hits != 0 || s.Misses != 3 {
		t.Fatalf("evicted program should miss: %+v", s)
	}
}

// TestPlanCacheInvalidateAll: explicit invalidation empties the cache.
func TestPlanCacheInvalidateAll(t *testing.T) {
	cache := NewPlanCache(8)
	runEngine(t, Options{Workers: 1, PlanCache: cache})
	cache.Invalidate()
	if s := cache.Stats(); s.Entries != 0 {
		t.Fatalf("Invalidate left %d entries", s.Entries)
	}
	runEngine(t, Options{Workers: 1, PlanCache: cache})
	if s := cache.Stats(); s.Hits != 0 || s.Misses != 2 {
		t.Fatalf("post-Invalidate lookup should miss: %+v", s)
	}
}

// TestPlanCacheOptOut: NoPlanCache compiles from scratch and leaves the
// default cache untouched.
func TestPlanCacheOptOut(t *testing.T) {
	cache := NewPlanCache(8)
	eng, err := New(mustParse(t, cacheTestSrc), Options{PlanCache: cache, NoPlanCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Hits != 0 || s.Misses != 0 || s.Entries != 0 {
		t.Fatalf("NoPlanCache touched the cache: %+v", s)
	}
	if s := eng.Stats(); s.PlanCacheHits != 0 || s.PlanCacheMiss != 0 {
		t.Fatalf("NoPlanCache engine reports cache traffic: %+v", s)
	}
}

// TestPlanCacheConcurrentSharing: engines binding the same entry from
// several goroutines must not interfere (the clone-on-bind guarantee).
func TestPlanCacheConcurrentSharing(t *testing.T) {
	cache := NewPlanCache(8)
	want := dumpRel(t, runEngine(t, Options{Workers: 1, PlanCache: cache}), "path")
	done := make(chan []string, 4)
	for i := 0; i < 4; i++ {
		go func() {
			eng, err := New(mustParse(t, cacheTestSrc), Options{Workers: 2, PlanCache: cache})
			if err != nil {
				done <- []string{fmt.Sprintf("error: %v", err)}
				return
			}
			if err := eng.Run(); err != nil {
				done <- []string{fmt.Sprintf("error: %v", err)}
				return
			}
			var rows []string
			eng.Scan("path", func(tp tuple.Tuple) bool {
				rows = append(rows, fmt.Sprint([]uint64(tp)))
				return true
			})
			done <- rows
		}()
	}
	for i := 0; i < 4; i++ {
		got := <-done
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("concurrent engine %d diverged: %v want %v", i, got, want)
		}
	}
}
