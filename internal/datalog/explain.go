package datalog

// Explain renders the compiled evaluation plan for inspection (the
// -explain flag of cmd/datalog). It is a compile-time view: valid after
// New, before Run.

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Explain writes a human-readable rendering of every compiled rule
// version: the index assigned to each positive atom, the bound prefix
// pushed into it, the comparisons absorbed into its scan bounds, and
// the residual suffix actions. The trailing summary reports whether the
// compilation was served from the plan cache.
func (e *Engine) Explain() string { return e.explain(false) }

// ExplainAnalyze renders the compiled plan annotated with the actual
// execution counts of the completed run (the -analyze flag of
// cmd/datalog). Each rule version reports its evaluation count and
// accumulated time; each scan node its exact actuals — scans opened,
// rows pulled through the iterator, rows emitted past the residual
// actions. A trailing totals line cross-checks the per-node sums
// against the aggregate Stats: both are fed by the same always-on
// accumulators (never the sampled span ring), so the numbers agree
// exactly. Valid after Run; the actuals are maintained by the streaming
// strategies, so EvalMaterialize reports zeros.
func (e *Engine) ExplainAnalyze() string { return e.explain(true) }

func (e *Engine) explain(analyze bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "strategy: %s\n", e.strategy)
	if analyze && !e.ran {
		sb.WriteString("explain analyze: engine has not run; actuals are all zero\n")
	}

	// Index inventories first, in relation-name order.
	names := make([]string, 0, len(e.rels))
	for name := range e.rels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := e.rels[name]
		fmt.Fprintf(&sb, "relation %s/%d: %d index(es)", name, r.arity, len(r.indexes))
		for i, d := range r.indexes {
			if i == 0 {
				sb.WriteString("  [")
			} else {
				sb.WriteString(" [")
			}
			sb.WriteString(d.signature())
			sb.WriteString("]")
		}
		sb.WriteByte('\n')
	}

	var totScans, totRows, totEmitted uint64
	for si := 0; si < len(e.strata); si++ {
		for _, p := range e.plans[si] {
			if analyze {
				fmt.Fprintf(&sb, "stratum %d: %s  (evals=%d total=%v)\n", si, p.label, p.evalCount, p.evalTime)
			} else {
				fmt.Fprintf(&sb, "stratum %d: %s\n", si, p.label)
			}
			for li := range p.body {
				l := &p.body[li]
				sb.WriteString("  ")
				sb.WriteString(e.explainLit(p, l))
				if analyze && l.kind == LitAtom {
					scans := atomic.LoadUint64(&l.actScans)
					rows := atomic.LoadUint64(&l.actRows)
					emitted := atomic.LoadUint64(&l.actEmitted)
					totScans += scans
					totRows += rows
					totEmitted += emitted
					fmt.Fprintf(&sb, "  | actual scans=%d rows=%d emitted=%d", scans, rows, emitted)
				}
				sb.WriteByte('\n')
			}
		}
	}
	if analyze {
		fmt.Fprintf(&sb, "actual totals: scans=%d rows=%d emitted=%d (stats: stream_scans=%d stream_rows=%d)\n",
			totScans, totRows, totEmitted, e.stats.StreamScans, e.stats.StreamRows)
	}

	switch {
	case e.stats.PlanCacheHits > 0:
		sb.WriteString("plan cache: hit (compilation reused)\n")
	case e.stats.PlanCacheMiss > 0:
		sb.WriteString("plan cache: miss (compiled and stored)\n")
	default:
		sb.WriteString("plan cache: disabled\n")
	}
	return sb.String()
}

// explainVal renders a value source: the variable's source name or the
// constant (symbolic constants resolve through the engine's table).
func (e *Engine) explainVal(p *rulePlan, s valSrc) string {
	if !s.isConst {
		if int(s.v) < len(p.varNames) && p.varNames[s.v] != "" {
			return p.varNames[s.v]
		}
		return fmt.Sprintf("$%d", s.v)
	}
	if int(s.c) < len(e.syms.names) {
		return fmt.Sprintf("%q", e.syms.names[s.c])
	}
	return fmt.Sprintf("%d", s.c)
}

func (e *Engine) explainLit(p *rulePlan, l *litPlan) string {
	switch l.kind {
	case LitAtom:
		var sb strings.Builder
		version := "full"
		if l.useDelta {
			version = "delta"
		}
		fmt.Fprintf(&sb, "scan %s(%s) index[%s]", l.rel.name, version, l.rel.indexes[l.index].signature())
		if len(l.prefix) > 0 {
			parts := make([]string, len(l.prefix))
			for i, s := range l.prefix {
				parts[i] = e.explainVal(p, s)
			}
			fmt.Fprintf(&sb, " prefix=(%s)", strings.Join(parts, ","))
		}
		for _, pb := range l.push {
			fmt.Fprintf(&sb, " pushdown[col%d %s %s]", len(l.prefix), pb.op, e.explainVal(p, pb.val))
		}
		var residual []string
		perm := l.rel.indexes[l.index].Perm
		for i, a := range l.rest {
			col := perm[len(l.prefix)+i]
			switch a.kind {
			case actBind:
				residual = append(residual, fmt.Sprintf("bind col%d->%s", col, e.explainVal(p, valSrc{v: a.v})))
			case actCheck:
				residual = append(residual, fmt.Sprintf("check col%d==%s", col, e.explainVal(p, valSrc{v: a.v})))
			}
		}
		if len(residual) > 0 {
			fmt.Fprintf(&sb, " %s", strings.Join(residual, " "))
		}
		return sb.String()
	case LitNegAtom:
		parts := make([]string, len(l.ground))
		for i, s := range l.ground {
			parts[i] = e.explainVal(p, s)
		}
		return fmt.Sprintf("probe !%s(%s)", l.rel.name, strings.Join(parts, ","))
	case LitCmp:
		suffix := ""
		if l.pushed {
			suffix = "  [pushed into scan bounds]"
		}
		return fmt.Sprintf("filter %s %s %s%s", e.explainVal(p, l.l), l.op, e.explainVal(p, l.r), suffix)
	}
	return "?"
}
