package datalog

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// TestParseNeverPanics feeds quasi-random program-shaped text to the
// parser; it must return an error or a program, never panic.
func TestParseNeverPanics(t *testing.T) {
	fragments := []string{
		".decl ", ".input ", ".output ", "p", "q", "(", ")", ",", ".",
		":-", "!", "X", "42", `"sym"`, "_", "<", "<=", "=", "!=", " ",
		"\n", "//c\n", "/*c*/", ":", "number", `"unterminated`,
	}
	f := func(picks []uint8) bool {
		var sb strings.Builder
		for _, p := range picks {
			sb.WriteString(fragments[int(p)%len(fragments)])
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("parser panicked on %q: %v", sb.String(), r)
				}
			}()
			_, _ = Parse(sb.String())
		}()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParseGarbageBytes: raw bytes must never hang or panic the lexer.
func TestParseGarbageBytes(t *testing.T) {
	f := func(raw []byte) bool {
		done := make(chan struct{})
		go func() {
			defer close(done)
			defer func() { recover() }()
			_, _ = Parse(string(raw))
		}()
		select {
		case <-done:
			return true
		case <-time.After(2 * time.Second):
			t.Fatalf("parser hung on %q", raw)
			return false
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestProfileOrderedByCost checks the profiling surface.
func TestProfileOrderedByCost(t *testing.T) {
	e, err := New(MustParse(tcProgram), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		e.AddFact("edge", []uint64{uint64(i), uint64(i + 1)})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	prof := e.Profile()
	if len(prof) != 2 { // one non-recursive + one delta version
		t.Fatalf("profile has %d entries, want 2", len(prof))
	}
	for i := 1; i < len(prof); i++ {
		if prof[i].Total > prof[i-1].Total {
			t.Error("profile not sorted by cost")
		}
	}
	for _, rt := range prof {
		if rt.Evaluations == 0 {
			t.Errorf("rule %q never evaluated", rt.Rule)
		}
		if !strings.Contains(rt.Rule, "path") {
			t.Errorf("unexpected rule label %q", rt.Rule)
		}
	}
	// The recursive delta version runs once per iteration and must
	// dominate the evaluation count.
	if prof[0].Evaluations < 100 && prof[1].Evaluations < 100 {
		t.Errorf("no rule shows per-iteration evaluation counts: %+v", prof)
	}
}
