package datalog

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"specbtree/internal/relation"
	"specbtree/internal/tuple"
)

func TestParseStrategy(t *testing.T) {
	for _, name := range Strategies() {
		s, err := ParseStrategy(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.String() != name {
			t.Errorf("round trip %q -> %q", name, s)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
}

func TestPrefixUpperInto(t *testing.T) {
	max := ^uint64(0)
	cases := []struct {
		prefix tuple.Tuple
		arity  int
		want   tuple.Tuple // nil = no upper bound
	}{
		{tuple.Tuple{}, 2, nil},
		{tuple.Tuple{5}, 2, tuple.Tuple{6, 0}},
		{tuple.Tuple{5, 7}, 2, tuple.Tuple{5, 8}},
		{tuple.Tuple{5, max}, 2, tuple.Tuple{6, 0}},
		{tuple.Tuple{max, max}, 2, nil},
		{tuple.Tuple{max, 1}, 3, tuple.Tuple{max, 2, 0}},
	}
	for _, c := range cases {
		got := prefixUpperInto(nil, c.prefix, c.arity)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("prefixUpperInto(%v, %d) = %v, want %v", c.prefix, c.arity, got, c.want)
		}
		// Must agree with the allocating original.
		if ref := tuple.PrefixUpperBound(c.prefix, c.arity); fmt.Sprint(got) != fmt.Sprint(ref) {
			t.Errorf("prefixUpperInto(%v) = %v diverges from PrefixUpperBound = %v", c.prefix, got, ref)
		}
	}
}

// newFallback builds a fallbackIter over a cursor-less hashset relation.
func newFallback(t *testing.T, rows []tuple.Tuple, nPrefix int) *fallbackIter {
	t.Helper()
	r := relation.MustLookup("hashset").New(2)
	ops := r.NewOps()
	if _, ok := ops.(relation.CursorOps); ok {
		t.Fatal("hashset grew a cursor; pick another cursor-less provider")
	}
	for _, row := range rows {
		ops.Insert(row)
	}
	return &fallbackIter{ops: ops, nPrefix: nPrefix, arity: 2}
}

// TestFallbackIter: the materialising adapter honours the same
// Seek/Next contract as the native cursors — bounds, rewind,
// exhaustion.
func TestFallbackIter(t *testing.T) {
	rows := []tuple.Tuple{{1, 10}, {1, 20}, {1, 30}, {2, 5}}
	it := newFallback(t, rows, 1)

	it.Seek(tuple.Tuple{1, 15}, tuple.Tuple{1, 30})
	var got []uint64
	for it.Next() {
		got = append(got, it.Tuple()[1])
	}
	if len(got) != 1 || got[0] != 20 {
		t.Fatalf("bounded scan: %v", got)
	}
	if it.Next() {
		t.Fatal("Next after exhaustion")
	}

	// Rewind with nil hi: the whole prefix group.
	it.Seek(tuple.Tuple{1, 0}, nil)
	n := 0
	for it.Next() {
		n++
	}
	if n != 3 {
		t.Fatalf("prefix scan saw %d rows", n)
	}

	// Empty and inverted ranges.
	it.Seek(tuple.Tuple{1, 30}, tuple.Tuple{1, 30})
	if it.Next() {
		t.Fatal("lo==hi yielded")
	}
	it.Seek(tuple.Tuple{1, 30}, tuple.Tuple{1, 10})
	if it.Next() {
		t.Fatal("inverted range yielded")
	}
}

// evalStrategyOutputs runs src under every strategy on the given
// provider/worker grid and asserts identical relation dumps.
func evalStrategyOutputs(t *testing.T, src string, outputs []string, provider string, workers int) {
	t.Helper()
	var ref map[string][]string
	for _, strat := range []EvalStrategy{EvalMaterialize, EvalStream, EvalStreamNoPushdown} {
		prog := mustParse(t, src)
		p, err := relation.Lookup(provider)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(prog, Options{Provider: p, Workers: workers, Strategy: strat, NoPlanCache: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		got := map[string][]string{}
		for _, o := range outputs {
			rows := dumpRel(t, eng, o)
			sort.Strings(rows) // hash providers scan in arbitrary order
			got[o] = rows
		}
		if ref == nil {
			ref = got
			continue
		}
		for _, o := range outputs {
			if fmt.Sprint(got[o]) != fmt.Sprint(ref[o]) {
				t.Errorf("%s/%dw strategy %s diverged on %s:\n got %v\nwant %v",
					provider, workers, strat, o, got[o], ref[o])
			}
		}
	}
}

// TestStreamBoundaryConstants drives the pushdown bounds math at the
// edges of the key space: > max (provably empty), >= max, <= 0, < 0
// (empty), = max — under every strategy, which must agree.
func TestStreamBoundaryConstants(t *testing.T) {
	max := ^uint64(0)
	src := fmt.Sprintf(`
.decl s(x: number)
.decl r(x: number, y: number)
.decl gtmax(x: number, y: number)
.decl gemax(x: number, y: number)
.decl lezero(x: number, y: number)
.decl ltzero(x: number, y: number)
.decl eqmax(x: number, y: number)
.output gtmax
.output gemax
.output lezero
.output ltzero
.output eqmax
s(1). s(2).
r(1, 0). r(1, 7). r(1, %d). r(2, 0). r(2, %d).
gtmax(X, Y) :- s(X), r(X, Y), Y > %d.
gemax(X, Y) :- s(X), r(X, Y), Y >= %d.
lezero(X, Y) :- s(X), r(X, Y), Y <= 0.
ltzero(X, Y) :- s(X), r(X, Y), Y < 0.
eqmax(X, Y) :- s(X), r(X, Y), Y = %d.
`, max, max-1, max, max, max)
	outputs := []string{"gtmax", "gemax", "lezero", "ltzero", "eqmax"}
	for _, workers := range []int{1, 3} {
		evalStrategyOutputs(t, src, outputs, "btree", workers)
	}

	// Spot-check the absolute counts under streaming.
	eng, err := New(mustParse(t, src), Options{Workers: 1, NoPlanCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for rel, want := range map[string]int{"gtmax": 0, "gemax": 1, "lezero": 2, "ltzero": 0, "eqmax": 1} {
		if got := eng.Count(rel); got != want {
			t.Errorf("%s: %d tuples, want %d", rel, got, want)
		}
	}
}

// TestStreamChunkedOuterPath covers the non-splittable multi-worker
// path (materialised outer scan, chunked across workers) and the
// fallback iterator inside the chain, via the hash provider.
func TestStreamChunkedOuterPath(t *testing.T) {
	src := `
.decl e(x: number, y: number)
.decl p(x: number, y: number)
.output p
e(1, 2). e(2, 3). e(3, 4). e(4, 5). e(5, 6). e(2, 6).
p(X, Y) :- e(X, Y).
p(X, Z) :- p(X, Y), e(Y, Z), Z > X.
`
	for _, provider := range []string{"btree", "hashset", "tbbhash"} {
		for _, workers := range []int{1, 4} {
			evalStrategyOutputs(t, src, []string{"p"}, provider, workers)
		}
	}
}

// TestStreamStatsAccounting: the streaming counters must add up — every
// pulled row either bound its variables or was counted residual, and
// pushed scans are a subset of opened scans.
func TestStreamStatsAccounting(t *testing.T) {
	src := `
.decl s(x: number)
.decl r(x: number, y: number)
.decl q(x: number, y: number)
.output q
s(1). s(2). s(3).
r(1, 1). r(1, 5). r(1, 9). r(2, 4). r(2, 8). r(3, 2).
q(X, Y) :- s(X), r(X, Y), Y >= 4, Y < 9.
`
	eng, err := New(mustParse(t, src), Options{Workers: 1, NoPlanCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.StreamScans == 0 {
		t.Fatalf("no streaming scans: %+v", s)
	}
	if s.PushdownScans == 0 || s.PushdownScans > s.StreamScans {
		t.Fatalf("pushdown scans out of range: %+v", s)
	}
	if s.ResidualRows > s.StreamRows {
		t.Fatalf("residual rows exceed pulled rows: %+v", s)
	}
	if got, want := eng.Count("q"), 3; got != want {
		t.Fatalf("q has %d tuples, want %d", got, want)
	}
	// With the window pushed into the bounds, the streaming evaluator
	// must pull exactly the matching rows from r — no residual rejects
	// on the pushed column.
	if s.ResidualRows != 0 {
		t.Errorf("pushed scan rejected %d rows residually; bounds not applied", s.ResidualRows)
	}
}

// TestExplain pins the plan rendering the README walks through: index
// assignment, pushdown annotation, cache status.
func TestExplain(t *testing.T) {
	cache := NewPlanCache(4)
	src := `
.decl s(x: number)
.decl r(x: number, y: number)
.decl q(x: number, y: number)
.output q
q(X, Y) :- s(X), r(X, Y), Y >= 10, Y < 20.
`
	eng, err := New(mustParse(t, src), Options{PlanCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	out := eng.Explain()
	for _, want := range []string{
		"strategy: stream",
		"pushdown[col1 >= 10]",
		"pushdown[col1 < 20]",
		"[pushed into scan bounds]",
		"plan cache: miss (compiled and stored)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output lacks %q:\n%s", want, out)
		}
	}
	eng2, err := New(mustParse(t, src), Options{PlanCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eng2.Explain(), "plan cache: hit (compilation reused)") {
		t.Errorf("second Explain lacks hit marker:\n%s", eng2.Explain())
	}
}
