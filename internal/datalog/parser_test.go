package datalog

import (
	"strings"
	"testing"
)

func TestParseTransitiveClosure(t *testing.T) {
	prog, err := Parse(`
// The paper's running example (§2).
.decl edge(x: number, y: number)
.decl path(x: number, y: number)
.input edge
.output path

path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.NumRelations() != 2 || prog.NumRules() != 2 {
		t.Fatalf("got %d relations, %d rules", prog.NumRelations(), prog.NumRules())
	}
	if len(prog.Inputs) != 1 || prog.Inputs[0] != "edge" {
		t.Errorf("inputs = %v", prog.Inputs)
	}
	if len(prog.Outputs) != 1 || prog.Outputs[0] != "path" {
		t.Errorf("outputs = %v", prog.Outputs)
	}
	r := prog.Rules[1]
	if r.Head.Pred != "path" || len(r.Body) != 2 {
		t.Errorf("rule 1 = %v", r)
	}
	if got := r.String(); got != "path(X, Z) :- path(X, Y), edge(Y, Z)." {
		t.Errorf("String() = %q", got)
	}
}

func TestParseFactsConstantsStrings(t *testing.T) {
	prog, err := Parse(`
.decl call(caller: symbol, callee: symbol, site: number)
call("main", "helper", 1).
call("main", "util", 2).
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 2 {
		t.Fatalf("got %d facts", len(prog.Rules))
	}
	f := prog.Rules[0]
	if len(f.Body) != 0 {
		t.Error("fact has a body")
	}
	if f.Head.Terms[0].Kind != TermSym || f.Head.Terms[0].Sym != "main" {
		t.Errorf("term 0 = %v", f.Head.Terms[0])
	}
	if f.Head.Terms[2].Kind != TermNum || f.Head.Terms[2].Num != 1 {
		t.Errorf("term 2 = %v", f.Head.Terms[2])
	}
}

func TestParseNegationAndComparison(t *testing.T) {
	prog, err := Parse(`
.decl node(x: number)
.decl edge(x: number, y: number)
.decl unreachable(x: number, y: number)
.decl reach(x: number, y: number)
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
unreachable(X, Y) :- node(X), node(Y), !reach(X, Y), X != Y.
`)
	if err != nil {
		t.Fatal(err)
	}
	r := prog.Rules[2]
	if r.Body[2].Kind != LitNegAtom || r.Body[2].Atom.Pred != "reach" {
		t.Errorf("negated literal = %v", r.Body[2])
	}
	if r.Body[3].Kind != LitCmp || r.Body[3].Op != CmpNe {
		t.Errorf("comparison literal = %v", r.Body[3])
	}
}

func TestParseWildcardAndComments(t *testing.T) {
	prog, err := Parse(`
.decl e(x: number, y: number)
.decl p(x: number)
/* block
   comment */
p(X) :- e(X, _). // project first column
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Rules[0].Body[0].Atom.Terms[1].Kind != TermWildcard {
		t.Error("wildcard not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"undeclared relation": `p(1).`,
		"arity mismatch": `
.decl p(x: number)
p(1, 2).`,
		"duplicate decl": `
.decl p(x: number)
.decl p(x: number)`,
		"nullary atom": `
.decl p(x: number)
p() .`,
		"unterminated string": `
.decl p(x: symbol)
p("abc).`,
		"missing period": `
.decl p(x: number)
p(1)`,
		"bad directive":    `.frobnicate p`,
		"undeclared input": `.input q`,
		"unterminated rule": `
.decl p(x: number)
p(X) :- `,
		"zero arity decl": `.decl p()`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: no error for %q", name, strings.TrimSpace(src))
		}
	}
}

func TestParseAllComparisonOps(t *testing.T) {
	prog, err := Parse(`
.decl e(x: number, y: number)
.decl p(x: number, y: number)
p(X, Y) :- e(X, Y), X < Y, X <= Y, Y > X, Y >= X, X = X, X != Y.
`)
	if err != nil {
		t.Fatal(err)
	}
	ops := []CmpOp{CmpLt, CmpLe, CmpGt, CmpGe, CmpEq, CmpNe}
	body := prog.Rules[0].Body
	if len(body) != 7 {
		t.Fatalf("body has %d literals", len(body))
	}
	for i, want := range ops {
		if body[i+1].Op != want {
			t.Errorf("op %d = %v, want %v", i, body[i+1].Op, want)
		}
	}
}

func TestCmpOpEval(t *testing.T) {
	cases := []struct {
		op   CmpOp
		a, b uint64
		want bool
	}{
		{CmpEq, 3, 3, true}, {CmpEq, 3, 4, false},
		{CmpNe, 3, 4, true}, {CmpNe, 3, 3, false},
		{CmpLt, 3, 4, true}, {CmpLt, 4, 3, false}, {CmpLt, 3, 3, false},
		{CmpLe, 3, 3, true}, {CmpLe, 4, 3, false},
		{CmpGt, 4, 3, true}, {CmpGt, 3, 3, false},
		{CmpGe, 3, 3, true}, {CmpGe, 2, 3, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.want {
			t.Errorf("%d %s %d = %v", c.a, c.op, c.b, got)
		}
	}
}

func TestSafetyErrors(t *testing.T) {
	cases := map[string]string{
		"unbound head var": `
.decl p(x: number)
.decl q(x: number)
p(Y) :- q(X).`,
		"unbound negation var": `
.decl p(x: number)
.decl q(x: number)
.decl r(x: number)
p(X) :- q(X), !r(Y).`,
		"unbound comparison var": `
.decl p(x: number)
.decl q(x: number)
p(X) :- q(X), Y < 3.`,
		"wildcard in head": `
.decl p(x: number)
.decl q(x: number)
p(_) :- q(_).`,
	}
	for name, src := range cases {
		prog, err := Parse(src)
		if err != nil {
			t.Errorf("%s: parse failed: %v", name, err)
			continue
		}
		if err := CheckSafety(prog); err == nil {
			t.Errorf("%s: safety check passed", name)
		}
	}
}

func TestStratification(t *testing.T) {
	prog := MustParse(`
.decl e(x: number, y: number)
.decl r(x: number, y: number)
.decl nr(x: number, y: number)
.decl n(x: number)
r(X, Y) :- e(X, Y).
r(X, Z) :- r(X, Y), e(Y, Z).
nr(X, Y) :- n(X), n(Y), !r(X, Y).
`)
	strata, err := Stratify(prog)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, s := range strata {
		for _, p := range s.Preds {
			pos[p] = i
		}
	}
	if !(pos["e"] < pos["r"] && pos["r"] < pos["nr"]) {
		t.Errorf("stratum order wrong: %v", pos)
	}
	for _, s := range strata {
		if len(s.Preds) == 1 && s.Preds[0] == "r" && !s.Recursive {
			t.Error("r's stratum not marked recursive")
		}
		if len(s.Preds) == 1 && s.Preds[0] == "nr" && s.Recursive {
			t.Error("nr's stratum wrongly recursive")
		}
	}
}

func TestUnstratifiableRejected(t *testing.T) {
	prog := MustParse(`
.decl p(x: number)
.decl q(x: number)
p(X) :- q(X), !p(X).
`)
	if _, err := Stratify(prog); err == nil {
		t.Error("unstratifiable program accepted")
	}
}

func TestMutualRecursionOneStratum(t *testing.T) {
	prog := MustParse(`
.decl e(x: number, y: number)
.decl odd(x: number, y: number)
.decl even(x: number, y: number)
even(X, X) :- e(X, _).
odd(X, Y) :- even(X, Z), e(Z, Y).
even(X, Y) :- odd(X, Z), e(Z, Y).
`)
	strata, err := Stratify(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range strata {
		if len(s.Preds) == 2 {
			if !(s.Preds[0] == "even" && s.Preds[1] == "odd") {
				t.Errorf("mutual SCC = %v", s.Preds)
			}
			if !s.Recursive {
				t.Error("mutual SCC not recursive")
			}
			return
		}
	}
	t.Error("even/odd not grouped into one stratum")
}

func TestSymbolTable(t *testing.T) {
	st := NewSymbolTable()
	a := st.Intern("alpha")
	b := st.Intern("beta")
	if a == b {
		t.Error("distinct symbols share an id")
	}
	if st.Intern("alpha") != a {
		t.Error("re-interning changed the id")
	}
	if st.Name(a) != "alpha" || st.Name(b) != "beta" {
		t.Error("Name round trip failed")
	}
	if st.Len() != 2 {
		t.Errorf("Len = %d", st.Len())
	}
	if st.Name(999) == "" {
		t.Error("unknown id should render, not vanish")
	}
}
