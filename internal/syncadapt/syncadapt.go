// Package syncadapt provides the two externally synchronised baselines of
// the paper's parallel evaluation (§4.2): a global-lock wrapper around a
// sequential set, and a parallel-reduction set in which every thread
// inserts into a private tree before a concluding merge. Both are built on
// the "google btree" baseline (package gbtree), the fastest sequential
// external option — exactly the choice the paper made.
package syncadapt

import (
	"sync"

	"specbtree/internal/gbtree"
	"specbtree/internal/tuple"
)

// Locked wraps a sequential B-tree with one global mutex around mutation.
// Reads are left unsynchronised: under the semi-naïve phase discipline a
// relation is never queried while it is being written, so only writers
// need mutual exclusion. This is the paper's "google btree" configuration
// of Figure 4 — correct, and predictably unable to scale.
type Locked struct {
	mu sync.Mutex
	t  *gbtree.Tree
}

// NewLocked creates an empty globally locked tree.
func NewLocked(arity int, capacity ...int) *Locked {
	return &Locked{t: gbtree.New(arity, capacity...)}
}

// Arity returns the tuple width.
func (l *Locked) Arity() int { return l.t.Arity() }

// Len returns the element count (read phase only).
func (l *Locked) Len() int { return l.t.Len() }

// Empty reports whether the set has no elements (read phase only).
func (l *Locked) Empty() bool { return l.t.Empty() }

// Insert adds v under the global lock.
func (l *Locked) Insert(v tuple.Tuple) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.t.Insert(v)
}

// Contains reports membership. Unsynchronised: phase-concurrent use only.
func (l *Locked) Contains(v tuple.Tuple) bool { return l.t.Contains(v) }

// Scan iterates in ascending order (read phase only).
func (l *Locked) Scan(yield func(tuple.Tuple) bool) { l.t.Scan(yield) }

// ScanRange iterates over [from, to) in order (read phase only).
func (l *Locked) ScanRange(from, to tuple.Tuple, yield func(tuple.Tuple) bool) {
	l.t.ScanRange(from, to, yield)
}

// Reduction is the parallel-reduction set: each worker owns a private
// sequential B-tree; Merge combines the parts in a parallel tournament
// reduction (the OpenMP user-defined-reduction pattern of the paper).
//
// During the insertion phase there is no shared state at all — and
// consequently no global duplicate detection and no global queries until
// Merge has run. That trade-off is what the paper's Figure 4 evaluates.
type Reduction struct {
	arity    int
	capacity int

	mu     sync.Mutex
	parts  []*gbtree.Tree
	merged *gbtree.Tree
}

// NewReduction creates an empty reduction set.
func NewReduction(arity int, capacity ...int) *Reduction {
	c := 0
	if len(capacity) > 0 {
		c = capacity[0]
	}
	return &Reduction{arity: arity, capacity: c}
}

// Arity returns the tuple width.
func (r *Reduction) Arity() int { return r.arity }

// Worker is a private insertion handle owned by exactly one goroutine.
type Worker struct {
	t *gbtree.Tree
}

// NewWorker registers and returns a private insertion handle. Safe to call
// concurrently.
func (r *Reduction) NewWorker() *Worker {
	t := gbtree.New(r.arity, r.capacity)
	r.mu.Lock()
	r.parts = append(r.parts, t)
	r.mu.Unlock()
	return &Worker{t: t}
}

// Insert adds v to the worker's private tree. The duplicate report is
// local: another worker may hold the same tuple until Merge deduplicates.
func (w *Worker) Insert(v tuple.Tuple) bool { return w.t.Insert(v) }

// Len returns the private element count.
func (w *Worker) Len() int { return w.t.Len() }

// Merge combines all worker parts into the final set using a parallel
// tournament: pairs of parts merge concurrently until one remains. Must be
// called after all workers have finished inserting.
func (r *Reduction) Merge() {
	r.mu.Lock()
	parts := r.parts
	r.parts = nil
	r.mu.Unlock()

	if r.merged != nil {
		parts = append(parts, r.merged)
		r.merged = nil
	}
	switch len(parts) {
	case 0:
		r.merged = gbtree.New(r.arity, r.capacity)
		return
	case 1:
		r.merged = parts[0]
		return
	}
	for len(parts) > 1 {
		half := len(parts) / 2
		var wg sync.WaitGroup
		for i := 0; i < half; i++ {
			wg.Add(1)
			go func(dst, src *gbtree.Tree) {
				defer wg.Done()
				// Merge the smaller tree into the larger one.
				if src.Len() > dst.Len() {
					dst, src = src, dst
				}
				dst.InsertAll(src)
			}(parts[i], parts[len(parts)-1-i])
		}
		wg.Wait()
		// Keep the merge targets; drop the consumed sources. Because the
		// closure may have swapped roles, keep whichever is larger.
		next := parts[:0]
		for i := 0; i < half; i++ {
			a, b := parts[i], parts[len(parts)-1-i]
			if b.Len() > a.Len() {
				a = b
			}
			next = append(next, a)
		}
		if len(parts)%2 == 1 {
			next = append(next, parts[half])
		}
		parts = next
	}
	r.merged = parts[0]
}

// Result returns the merged set; nil before Merge.
func (r *Reduction) Result() *gbtree.Tree { return r.merged }

// Len returns the merged element count; 0 before Merge.
func (r *Reduction) Len() int {
	if r.merged == nil {
		return 0
	}
	return r.merged.Len()
}
