package syncadapt

import (
	"sync"
	"testing"

	"specbtree/internal/tuple"
)

func TestLockedConcurrentInserts(t *testing.T) {
	l := NewLocked(2)
	workers, perW := 8, 2000
	if testing.Short() {
		perW = 300
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				l.Insert(tuple.Tuple{uint64(w), uint64(i)})
				l.Insert(tuple.Tuple{999, uint64(i)}) // contended duplicates
			}
		}(w)
	}
	wg.Wait()
	want := workers*perW + perW
	if l.Len() != want {
		t.Fatalf("Len = %d, want %d", l.Len(), want)
	}
	if !l.Contains(tuple.Tuple{999, 0}) {
		t.Error("shared element missing")
	}
	count := 0
	l.Scan(func(tuple.Tuple) bool { count++; return true })
	if count != want {
		t.Fatalf("scan visited %d", count)
	}
}

func TestLockedScanRange(t *testing.T) {
	l := NewLocked(1)
	for i := 0; i < 100; i++ {
		l.Insert(tuple.Tuple{uint64(i)})
	}
	count := 0
	l.ScanRange(tuple.Tuple{10}, tuple.Tuple{20}, func(tuple.Tuple) bool {
		count++
		return true
	})
	if count != 10 {
		t.Fatalf("range yielded %d", count)
	}
	if l.Empty() {
		t.Error("Empty on filled set")
	}
}

func TestReductionMergeDeduplicates(t *testing.T) {
	r := NewReduction(2)
	workers, perW := 6, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := r.NewWorker()
			for j := 0; j < perW; j++ {
				w.Insert(tuple.Tuple{uint64(j), 0})          // full overlap
				w.Insert(tuple.Tuple{uint64(id), uint64(j)}) // disjoint
			}
			if w.Len() == 0 {
				t.Error("worker tree empty")
			}
		}(i)
	}
	wg.Wait()
	if r.Len() != 0 {
		t.Error("Len nonzero before Merge")
	}
	r.Merge()
	// perW shared + workers*perW disjoint, minus the overlap where id<perW
	// collides with (j, 0) at j==id... disjoint tuples are (id, j); shared
	// are (j, 0). Overlap: (id, 0) appears in both when id < perW.
	want := perW + workers*perW - workers
	if got := r.Len(); got != want {
		t.Fatalf("merged Len = %d, want %d", got, want)
	}
	if err := r.Result().Check(); err != nil {
		t.Fatal(err)
	}
}

func TestReductionSingleWorker(t *testing.T) {
	r := NewReduction(1)
	w := r.NewWorker()
	for i := 0; i < 100; i++ {
		w.Insert(tuple.Tuple{uint64(i)})
	}
	r.Merge()
	if r.Len() != 100 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestReductionNoWorkers(t *testing.T) {
	r := NewReduction(1)
	r.Merge()
	if r.Len() != 0 || r.Result() == nil {
		t.Error("empty merge should yield an empty result tree")
	}
}

func TestReductionOddWorkerCount(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 5, 7, 9} {
		r := NewReduction(1)
		for w := 0; w < workers; w++ {
			h := r.NewWorker()
			for i := 0; i < 200; i++ {
				h.Insert(tuple.Tuple{uint64(w*200 + i)})
			}
		}
		r.Merge()
		if got := r.Len(); got != workers*200 {
			t.Fatalf("workers=%d: Len = %d, want %d", workers, got, workers*200)
		}
		if err := r.Result().Check(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

func TestReductionIncrementalMerge(t *testing.T) {
	// A second round of workers after a Merge folds into the prior result.
	r := NewReduction(1)
	w := r.NewWorker()
	for i := 0; i < 50; i++ {
		w.Insert(tuple.Tuple{uint64(i)})
	}
	r.Merge()
	w2 := r.NewWorker()
	for i := 25; i < 75; i++ {
		w2.Insert(tuple.Tuple{uint64(i)})
	}
	r.Merge()
	if got := r.Len(); got != 75 {
		t.Fatalf("incremental merge Len = %d, want 75", got)
	}
}
