// Package masstree is a simplified Masstree (Mao, Kohler, Morris —
// EuroSys 2012), one of the paper's §4.4 comparison structures. Masstree
// is a trie of B+ trees: each trie layer indexes an 8-byte key slice with
// a B+ tree whose nodes carry version counters for optimistic reads and
// per-node spinlocks for writes.
//
// Simplifications relative to the original (documented in DESIGN.md):
// the client/server persistence machinery is dropped (the paper itself
// notes Masstree "is not optimized for use in an in-memory Datalog
// engine"); keys are single uint64 values, which occupy exactly one trie
// layer, so the structure is one B+ tree; and writer synchronisation uses
// per-node mutexes with lock coupling instead of hand-crafted spinlocks.
// Reads are optimistic via node version counters, as in the original.
package masstree

import (
	"sync"
	"sync/atomic"
)

// fanout is the B+ tree node width (Masstree uses 15-key nodes).
const fanout = 15

// Tree is a concurrent ordered set of uint64 keys.
type Tree struct {
	mu   sync.Mutex // root replacement
	root atomic.Pointer[node]
	size atomic.Int64
}

type node struct {
	mu      sync.Mutex
	version atomic.Uint64 // bumped on every mutation
	leaf    bool

	nkeys    atomic.Int32
	keys     [fanout]atomic.Uint64
	children [fanout + 1]atomic.Pointer[node]
	next     atomic.Pointer[node] // leaf chain
}

// New creates an empty tree.
func New() *Tree {
	t := &Tree{}
	t.root.Store(&node{leaf: true})
	return t
}

// Len returns the number of keys.
func (t *Tree) Len() int { return int(t.size.Load()) }

// findLeaf descends optimistically to the leaf covering k, retrying if a
// node version changes mid-read (the Masstree read protocol).
func (t *Tree) findLeaf(k uint64) *node {
retry:
	for {
		n := t.root.Load()
		for !n.leaf {
			v1 := n.version.Load()
			cnt := int(n.nkeys.Load())
			if cnt > fanout {
				continue retry
			}
			idx := 0
			for idx < cnt && n.keys[idx].Load() <= k {
				idx++
			}
			child := n.children[idx].Load()
			if n.version.Load() != v1 || child == nil {
				continue retry
			}
			n = child
		}
		return n
	}
}

// Contains reports whether k is in the set.
func (t *Tree) Contains(k uint64) bool {
	for {
		leaf := t.findLeaf(k)
		v1 := leaf.version.Load()
		cnt := int(leaf.nkeys.Load())
		if cnt > fanout {
			continue
		}
		found := false
		for i := 0; i < cnt; i++ {
			if leaf.keys[i].Load() == k {
				found = true
				break
			}
		}
		if leaf.version.Load() == v1 {
			// The leaf may have split since the descent; if k now belongs
			// to the new right sibling, retry from the root.
			if !found && cnt > 0 && leaf.keys[cnt-1].Load() < k {
				if nxt := leaf.next.Load(); nxt != nil &&
					nxt.nkeys.Load() > 0 && nxt.keys[0].Load() <= k {
					continue
				}
			}
			return found
		}
	}
}

// Insert adds k, returning false if already present.
func (t *Tree) Insert(k uint64) bool {
	for {
		leaf := t.findLeaf(k)
		leaf.mu.Lock()
		// Validate the leaf still covers k: after a split, k may belong to
		// a successor leaf.
		cnt := int(leaf.nkeys.Load())
		if cnt > 0 && leaf.keys[cnt-1].Load() < k {
			if nxt := leaf.next.Load(); nxt != nil {
				// k might belong to the new sibling; retry from the top.
				first := nxt.keys[0].Load()
				if nxt.nkeys.Load() > 0 && first <= k {
					leaf.mu.Unlock()
					continue
				}
			}
		}
		idx := 0
		for idx < cnt && leaf.keys[idx].Load() < k {
			idx++
		}
		if idx < cnt && leaf.keys[idx].Load() == k {
			leaf.mu.Unlock()
			return false
		}
		if cnt < fanout {
			for i := cnt; i > idx; i-- {
				leaf.keys[i].Store(leaf.keys[i-1].Load())
			}
			leaf.keys[idx].Store(k)
			leaf.nkeys.Store(int32(cnt + 1))
			leaf.version.Add(1)
			leaf.mu.Unlock()
			t.size.Add(1)
			return true
		}
		// Full leaf: split under the global structural lock (simplified
		// from Masstree's hand-over-hand ancestor locking).
		leaf.mu.Unlock()
		t.mu.Lock()
		fresh := t.splitAndInsertLocked(k)
		t.mu.Unlock()
		return fresh
	}
}

// splitAndInsertLocked performs a pre-emptive split descent: any full node
// on the path (including the root) is split before entering it, so every
// parent receiving a separator has room. Caller holds t.mu; readers keep
// running optimistically, so all node mutations still bump versions under
// the node locks.
func (t *Tree) splitAndInsertLocked(k uint64) bool {
	root := t.root.Load()
	if int(root.nkeys.Load()) >= fanout {
		newRoot := &node{}
		newRoot.children[0].Store(root)
		sep, right := t.splitChild(root)
		newRoot.keys[0].Store(sep)
		newRoot.children[1].Store(right)
		newRoot.nkeys.Store(1)
		t.root.Store(newRoot)
	}
	n := t.root.Load()
	for !n.leaf {
		cnt := int(n.nkeys.Load())
		idx := 0
		for idx < cnt && n.keys[idx].Load() <= k {
			idx++
		}
		child := n.children[idx].Load()
		if int(child.nkeys.Load()) >= fanout {
			sep, right := t.splitChild(child)
			// Insert sep/right into n (which has room by construction).
			n.mu.Lock()
			cnt = int(n.nkeys.Load())
			idx = 0
			for idx < cnt && n.keys[idx].Load() <= sep {
				idx++
			}
			for j := cnt; j > idx; j-- {
				n.keys[j].Store(n.keys[j-1].Load())
			}
			for j := cnt + 1; j > idx+1; j-- {
				n.children[j].Store(n.children[j-1].Load())
			}
			n.keys[idx].Store(sep)
			n.children[idx+1].Store(right)
			n.nkeys.Store(int32(cnt + 1))
			n.version.Add(1)
			n.mu.Unlock()
			if k >= sep {
				child = right
			}
		}
		n = child
	}
	// The leaf has room for at least one key (it was split if full).
	leaf := n
	leaf.mu.Lock()
	cnt := int(leaf.nkeys.Load())
	if cnt >= fanout {
		// A racing fast-path insert refilled the leaf; start over.
		leaf.mu.Unlock()
		return t.splitAndInsertLocked(k)
	}
	idx := 0
	for idx < cnt && leaf.keys[idx].Load() < k {
		idx++
	}
	if idx < cnt && leaf.keys[idx].Load() == k {
		leaf.mu.Unlock()
		return false
	}
	for i := cnt; i > idx; i-- {
		leaf.keys[i].Store(leaf.keys[i-1].Load())
	}
	leaf.keys[idx].Store(k)
	leaf.nkeys.Store(int32(cnt + 1))
	leaf.version.Add(1)
	leaf.mu.Unlock()
	t.size.Add(1)
	return true
}

// splitChild splits the full node n, returning the separator and the new
// right sibling. Caller holds t.mu and links the sibling into the parent.
func (t *Tree) splitChild(n *node) (uint64, *node) {
	n.mu.Lock()
	cnt := int(n.nkeys.Load())
	mid := cnt / 2

	right := &node{leaf: n.leaf}
	var sep uint64
	if n.leaf {
		// B+ leaf split: the separator is copied, not moved.
		sep = n.keys[mid].Load()
		for j := mid; j < cnt; j++ {
			right.keys[j-mid].Store(n.keys[j].Load())
		}
		right.nkeys.Store(int32(cnt - mid))
		n.nkeys.Store(int32(mid))
		right.next.Store(n.next.Load())
		n.next.Store(right)
	} else {
		sep = n.keys[mid].Load()
		for j := mid + 1; j < cnt; j++ {
			right.keys[j-mid-1].Store(n.keys[j].Load())
		}
		for j := mid + 1; j <= cnt; j++ {
			right.children[j-mid-1].Store(n.children[j].Load())
		}
		right.nkeys.Store(int32(cnt - mid - 1))
		n.nkeys.Store(int32(mid))
	}
	n.version.Add(1)
	n.mu.Unlock()
	return sep, right
}

// Scan iterates over all keys in ascending order via the leaf chain.
// Intended for quiescent (read-phase) use.
func (t *Tree) Scan(yield func(uint64) bool) {
	n := t.root.Load()
	for !n.leaf {
		n = n.children[0].Load()
	}
	for n != nil {
		cnt := int(n.nkeys.Load())
		for i := 0; i < cnt; i++ {
			if !yield(n.keys[i].Load()) {
				return
			}
		}
		n = n.next.Load()
	}
}

// Check validates ordering via a full scan (quiescent use only).
func (t *Tree) Check() error {
	var prev uint64
	first := true
	count := 0
	bad := false
	t.Scan(func(k uint64) bool {
		if !first && k <= prev {
			bad = true
			return false
		}
		first = false
		prev = k
		count++
		return true
	})
	if bad {
		return errOutOfOrder
	}
	if count != t.Len() {
		return errSizeMismatch
	}
	return nil
}

type checkError string

func (e checkError) Error() string { return string(e) }

const (
	errOutOfOrder   = checkError("masstree: keys out of order")
	errSizeMismatch = checkError("masstree: size mismatch")
)
