package masstree

import (
	"math/rand"
	"sync"
	"testing"
)

func TestInsertContainsModel(t *testing.T) {
	tr := New()
	model := map[uint64]bool{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30000; i++ {
		k := uint64(rng.Intn(8000))
		if tr.Insert(k) == model[k] {
			t.Fatalf("insert disagreement on %d", k)
		}
		model[k] = true
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", tr.Len(), len(model))
	}
	for k := range model {
		if !tr.Contains(k) {
			t.Fatalf("%d missing", k)
		}
	}
	for i := 0; i < 100; i++ {
		k := uint64(8000 + rng.Intn(1000))
		if tr.Contains(k) {
			t.Fatalf("phantom key %d", k)
		}
	}
}

func TestOrderedAndDescending(t *testing.T) {
	asc, desc := New(), New()
	const n = 30000
	for i := 0; i < n; i++ {
		asc.Insert(uint64(i))
		desc.Insert(uint64(n - i))
	}
	if err := asc.Check(); err != nil {
		t.Fatalf("ascending: %v", err)
	}
	if err := desc.Check(); err != nil {
		t.Fatalf("descending: %v", err)
	}
	if asc.Len() != n || desc.Len() != n {
		t.Fatalf("sizes %d/%d", asc.Len(), desc.Len())
	}
}

func TestAbsentKeyBetweenLeaves(t *testing.T) {
	tr := New()
	// Spread keys so absent probes fall between leaves.
	for i := 0; i < 10000; i++ {
		tr.Insert(uint64(i * 10))
	}
	for i := 0; i < 10000; i += 7 {
		if tr.Contains(uint64(i*10 + 5)) {
			t.Fatalf("phantom key %d", i*10+5)
		}
		if !tr.Contains(uint64(i * 10)) {
			t.Fatalf("key %d missing", i*10)
		}
	}
}

func TestConcurrentDisjointInserts(t *testing.T) {
	tr := New()
	workers, perW := 8, 4000
	if testing.Short() {
		perW = 500
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w * perW)
			for i := 0; i < perW; i++ {
				if !tr.Insert(base + uint64(i)) {
					t.Errorf("disjoint insert reported duplicate")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != workers*perW {
		t.Fatalf("Len = %d, want %d", tr.Len(), workers*perW)
	}
}

func TestConcurrentOverlappingInserts(t *testing.T) {
	tr := New()
	workers, n := 8, 3000
	if testing.Short() {
		n = 500
	}
	fresh := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if tr.Insert(uint64(i)) {
					fresh[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, f := range fresh {
		total += f
	}
	if total != n {
		t.Fatalf("exactly-once violated: %d fresh of %d", total, n)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadersDuringWrites(t *testing.T) {
	tr := New()
	const stable = 5000
	for i := 0; i < stable; i++ {
		tr.Insert(uint64(i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4000; i++ {
				tr.Insert(uint64(stable + i*3 + w))
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 2; pass++ {
				for i := 0; i < stable; i += 5 {
					if !tr.Contains(uint64(i)) {
						t.Errorf("stable key %d vanished", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Insert(uint64(i))
	}
	count := 0
	tr.Scan(func(uint64) bool { count++; return count < 10 })
	if count != 10 {
		t.Fatalf("visited %d", count)
	}
}
