//go:build !lockinject

package optlock

// Injecting reports whether the fault-injection shim is compiled in.
// False in default builds: every probe call sits behind an
// `if Injecting` constant branch and compiles away entirely.
const Injecting = false

// probe is the no-op stand-in for the fault injector in default builds.
func probe(l *Lock, s Site) Action { return ActNone }
