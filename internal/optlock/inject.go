package optlock

// Fault-injection probe points for the correctness harness
// (internal/check). The optimistic protocol's interesting behaviour —
// retries, aborts, hint re-entry after a failed validation — lives on
// paths that organic interleavings reach rarely and unpredictably. The
// probes defined here let a test force those paths deterministically:
// every probe site can fail an operation outright (ActFail) or run
// arbitrary test code (delays, scheduler yields, rendezvous with a
// concurrent writer) before the lock proceeds.
//
// The shim follows the obsoff pattern: it is compiled in only under the
// "lockinject" build tag. In default builds Injecting is a false
// constant, every probe call sits behind an `if Injecting` branch, and
// the whole mechanism folds away to nothing — the hot path carries zero
// cost. Tests that need injection are themselves gated on the tag and
// run via `make check-harness`.

// Site identifies one probe point inside the lock protocol.
type Site uint8

// The probe sites. Each names the operation about to be performed when
// the probe fires; SiteValidated alone fires after its operation.
const (
	// SiteStartRead fires on entry to StartRead, before the version is
	// loaded. ActFail is ignored here; the probe is a delay/yield point.
	SiteStartRead Site = iota
	// SiteValidate fires on entry to Valid (and, through it, EndRead),
	// before the version is loaded. ActFail forces the validation to
	// report failure without reading the version — a spurious conflict,
	// which the protocol must treat exactly like a real one.
	SiteValidate
	// SiteValidated fires after a validation succeeded, before Valid
	// returns true. Test code running here executes inside the window
	// between a reader's validation and its next use of the data read
	// under the lease — the window of the PR 3 load-after-validate race.
	// ActFail is ignored (the validation already succeeded).
	SiteValidated
	// SiteUpgrade fires on entry to TryUpgradeToWrite, before the CAS.
	// ActFail forces the upgrade to fail as if a writer had intervened.
	SiteUpgrade
	// SiteTryWrite fires on entry to TryStartWrite, before the CAS.
	// ActFail forces the acquisition attempt to fail. StartWrite loops
	// over TryStartWrite, so an injector that fails this site
	// unconditionally deadlocks blocking writers — fail it selectively.
	SiteTryWrite
	// SiteEndWrite fires on entry to EndWrite, before the version is
	// advanced — delaying here delays the publication of the new even
	// version, stretching the window in which readers spin or fail
	// validation. ActFail is ignored (the write must complete).
	SiteEndWrite
	// SiteAbortWrite fires on entry to AbortWrite, before the version
	// rolls back. ActFail is ignored.
	SiteAbortWrite

	// NumSites is the number of probe sites.
	NumSites
)

// siteNames maps each Site to a short stable name for test diagnostics.
var siteNames = [NumSites]string{
	SiteStartRead:  "start_read",
	SiteValidate:   "validate",
	SiteValidated:  "validated",
	SiteUpgrade:    "upgrade",
	SiteTryWrite:   "try_write",
	SiteEndWrite:   "end_write",
	SiteAbortWrite: "abort_write",
}

// String returns the site's name.
func (s Site) String() string {
	if s < NumSites {
		return siteNames[s]
	}
	return "unknown"
}

// Action is an injector's verdict for one probe firing.
type Action uint8

const (
	// ActNone lets the operation proceed normally.
	ActNone Action = iota
	// ActFail forces the operation to fail where failure is meaningful
	// (SiteValidate, SiteUpgrade, SiteTryWrite); elsewhere it is ignored.
	ActFail
)
