package optlock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestReadValidWithoutWriter(t *testing.T) {
	var l Lock
	lease := l.StartRead()
	if !l.Valid(lease) {
		t.Error("fresh lease invalid")
	}
	if !l.EndRead(lease) {
		t.Error("EndRead failed without concurrent writer")
	}
	if l.Version() != 0 {
		t.Errorf("reads must not modify the version, got %d", l.Version())
	}
}

func TestWriteInvalidatesLease(t *testing.T) {
	var l Lock
	lease := l.StartRead()
	if !l.TryStartWrite() {
		t.Fatal("TryStartWrite failed on unlocked lock")
	}
	if l.Valid(lease) {
		t.Error("lease valid while writer active")
	}
	l.EndWrite()
	if l.Valid(lease) {
		t.Error("lease valid after completed write")
	}
	if l.EndRead(lease) {
		t.Error("EndRead succeeded across a write")
	}
}

func TestAbortWritePreservesLeases(t *testing.T) {
	var l Lock
	lease := l.StartRead()
	if !l.TryStartWrite() {
		t.Fatal("TryStartWrite failed")
	}
	l.AbortWrite()
	if !l.Valid(lease) {
		t.Error("aborted write must not invalidate outstanding leases")
	}
	if l.Version() != 0 {
		t.Errorf("version after abort = %d, want 0", l.Version())
	}
}

func TestUpgrade(t *testing.T) {
	var l Lock
	lease := l.StartRead()
	if !l.TryUpgradeToWrite(lease) {
		t.Fatal("upgrade failed without contention")
	}
	if !l.IsWriteLocked() {
		t.Error("not write-locked after upgrade")
	}
	l.EndWrite()

	// A lease from before a write cannot upgrade.
	stale := Lease{}
	if l.TryUpgradeToWrite(stale) {
		t.Error("stale lease upgraded")
	}
}

func TestUpgradeRaceSingleWinner(t *testing.T) {
	var l Lock
	lease := l.StartRead()
	const n = 16
	var wins atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if l.TryUpgradeToWrite(lease) {
				wins.Add(1)
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 1 {
		t.Errorf("%d upgrades succeeded from the same lease, want exactly 1", wins.Load())
	}
	l.EndWrite()
}

func TestTryStartWriteExcludesWriters(t *testing.T) {
	var l Lock
	if !l.TryStartWrite() {
		t.Fatal("first TryStartWrite failed")
	}
	if l.TryStartWrite() {
		t.Error("second TryStartWrite succeeded while locked")
	}
	l.EndWrite()
	if !l.TryStartWrite() {
		t.Error("TryStartWrite failed after unlock")
	}
	l.EndWrite()
}

func TestStartWriteBlocksUntilUnlock(t *testing.T) {
	var l Lock
	l.StartWrite()
	acquired := make(chan struct{})
	go func() {
		l.StartWrite()
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("StartWrite acquired while another writer holds the lock")
	case <-time.After(20 * time.Millisecond):
	}
	l.EndWrite()
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("StartWrite never acquired after unlock")
	}
	l.EndWrite()
}

func TestStartReadSpinsDuringWrite(t *testing.T) {
	var l Lock
	l.StartWrite()
	got := make(chan Lease)
	go func() { got <- l.StartRead() }()
	select {
	case <-got:
		t.Fatal("StartRead returned during a write phase")
	case <-time.After(20 * time.Millisecond):
	}
	l.EndWrite()
	select {
	case lease := <-got:
		if !l.Valid(lease) {
			t.Error("lease obtained after write is invalid")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("StartRead never returned after unlock")
	}
}

// TestSeqlockProtectsData runs the classic seqlock correctness experiment:
// a writer repeatedly updates two words that must stay equal; readers
// that successfully validate must never observe them unequal.
func TestSeqlockProtectsData(t *testing.T) {
	var l Lock
	var a, b atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			l.StartWrite()
			a.Store(i)
			b.Store(i)
			l.EndWrite()
		}
	}()

	const readers = 4
	var torn atomic.Int64
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			deadline := time.Now().Add(100 * time.Millisecond)
			for time.Now().Before(deadline) {
				lease := l.StartRead()
				x := a.Load()
				y := b.Load()
				if l.EndRead(lease) && x != y {
					torn.Add(1)
				}
			}
		}()
	}

	time.Sleep(120 * time.Millisecond)
	close(stop)
	wg.Wait()
	if torn.Load() != 0 {
		t.Errorf("%d validated reads observed torn data", torn.Load())
	}
}

// TestWritersMutualExclusion hammers the write path from many goroutines
// incrementing a plain counter; mutual exclusion makes the sum exact.
func TestWritersMutualExclusion(t *testing.T) {
	var l Lock
	var counter int // deliberately unsynchronised; protected by l
	const (
		goroutines = 8
		perG       = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.StartWrite()
				counter++
				l.EndWrite()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*perG {
		t.Errorf("counter = %d, want %d", counter, goroutines*perG)
	}
	if l.IsWriteLocked() {
		t.Error("lock left write-locked")
	}
}

// TestUpgradeContention exercises the read-inspect-upgrade pattern the
// B-tree insert uses, validating that failed upgrades imply a concurrent
// modification and never lose updates.
func TestUpgradeContention(t *testing.T) {
	var l Lock
	var value int
	const target = 4000
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lease := l.StartRead()
				v := value
				if !l.Valid(lease) {
					continue
				}
				if v >= target {
					return
				}
				if !l.TryUpgradeToWrite(lease) {
					continue // lost the race; retry
				}
				value = v + 1
				l.EndWrite()
			}
		}()
	}
	wg.Wait()
	if value != target {
		t.Errorf("value = %d, want %d (lost or duplicated updates)", value, target)
	}
}

func TestVersionParity(t *testing.T) {
	var l Lock
	for i := 0; i < 5; i++ {
		if l.Version()%2 != 0 {
			t.Fatalf("unlocked version odd at round %d", i)
		}
		l.StartWrite()
		if l.Version()%2 != 1 {
			t.Fatalf("locked version even at round %d", i)
		}
		l.EndWrite()
	}
	if l.Version() != 10 {
		t.Errorf("version = %d after 5 write phases, want 10", l.Version())
	}
}

func BenchmarkStartReadValid(b *testing.B) {
	var l Lock
	for i := 0; i < b.N; i++ {
		lease := l.StartRead()
		if !l.EndRead(lease) {
			b.Fatal("invalid")
		}
	}
}

func BenchmarkWritePhase(b *testing.B) {
	var l Lock
	for i := 0; i < b.N; i++ {
		l.StartWrite()
		l.EndWrite()
	}
}

func BenchmarkReadersParallel(b *testing.B) {
	var l Lock
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			lease := l.StartRead()
			_ = l.EndRead(lease)
		}
	})
}
