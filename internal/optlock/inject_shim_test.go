//go:build lockinject

package optlock

import (
	"testing"
)

// These tests run only under the lockinject build tag and verify the
// fault-injection shim itself: that every probe site fires where the
// site documentation says it does, and that injected actions force the
// exact failure the production code must tolerate.

// TestInjectingEnabled pins the build-tag plumbing: under the tag the
// shim must be compiled in.
func TestInjectingEnabled(t *testing.T) {
	if !Injecting {
		t.Fatal("Injecting = false under the lockinject build tag")
	}
}

// TestProbeSiteSequence records every probe firing through one scripted
// walk of the lock and asserts the exact site order — the contract the
// injection tests of internal/check rely on when they target a site.
func TestProbeSiteSequence(t *testing.T) {
	var l Lock
	var got []Site
	SetInjector(func(pl *Lock, s Site) Action {
		if pl == &l {
			got = append(got, s)
		}
		return ActNone
	})
	defer ClearInjector()

	lease := l.StartRead()     // SiteStartRead
	l.Valid(lease)             // SiteValidate, then SiteValidated (success)
	l.TryUpgradeToWrite(lease) // SiteUpgrade (succeeds)
	l.EndWrite()               // SiteEndWrite
	l.TryStartWrite()          // SiteTryWrite (succeeds)
	l.AbortWrite()             // SiteAbortWrite
	stale := Lease{}           // version 0; current version is 2
	l.Valid(stale)             // SiteValidate only — failed validation
	want := []Site{
		SiteStartRead,
		SiteValidate, SiteValidated,
		SiteUpgrade,
		SiteEndWrite,
		SiteTryWrite,
		SiteAbortWrite,
		SiteValidate,
	}
	if len(got) != len(want) {
		t.Fatalf("probe sequence %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("probe %d = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestInjectedFailuresForceEachPath: an ActFail at each failable site
// must force that operation to report failure even though the lock state
// would let it succeed — and the lock must be left untouched, so the
// caller's retry path (the thing the harness wants to execute) runs.
func TestInjectedFailuresForceEachPath(t *testing.T) {
	cases := []struct {
		site Site
		op   func(l *Lock, lease Lease) bool
	}{
		{SiteValidate, func(l *Lock, lease Lease) bool { return l.Valid(lease) }},
		{SiteUpgrade, func(l *Lock, lease Lease) bool { return l.TryUpgradeToWrite(lease) }},
		{SiteTryWrite, func(l *Lock, lease Lease) bool { return l.TryStartWrite() }},
	}
	for _, c := range cases {
		var l Lock
		lease := l.StartRead()

		fail := c.site
		SetInjector(func(pl *Lock, s Site) Action {
			if s == fail {
				return ActFail
			}
			return ActNone
		})
		if c.op(&l, lease) {
			t.Errorf("%v: operation succeeded despite injected failure", c.site)
		}
		if l.IsWriteLocked() {
			t.Errorf("%v: injected failure left the lock write-locked", c.site)
		}
		if got := l.Version(); got != 0 {
			t.Errorf("%v: injected failure moved the version to %d", c.site, got)
		}

		// Uninstall: the same operation must now succeed — injected
		// failures are spurious, not sticky.
		ClearInjector()
		if !c.op(&l, lease) {
			t.Errorf("%v: operation failed after injector removal", c.site)
		}
	}
	ClearInjector()
}

// TestSiteStrings keeps the site names stable; they appear in test logs
// and the harness documentation.
func TestSiteStrings(t *testing.T) {
	want := map[Site]string{
		SiteStartRead:  "start_read",
		SiteValidate:   "validate",
		SiteValidated:  "validated",
		SiteUpgrade:    "upgrade",
		SiteTryWrite:   "try_write",
		SiteEndWrite:   "end_write",
		SiteAbortWrite: "abort_write",
	}
	for s, name := range want {
		if got := s.String(); got != name {
			t.Errorf("Site(%d).String() = %q, want %q", s, got, name)
		}
	}
}
