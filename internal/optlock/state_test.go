package optlock

import "testing"

// TestStateMachineSequentialWalk drives all eight operations of the lock
// (StartRead, Valid, EndRead, TryUpgradeToWrite, TryStartWrite,
// StartWrite/StartWriteTimed, EndWrite, AbortWrite) through their legal
// transitions in one deterministic, single-threaded sequence, tracking
// the version word at every step. The concurrency properties have their
// own tests (optlock_test.go) and the fault-injection variants theirs
// (inject_shim_test.go, lockinject builds); this is the ground-truth map
// of the state machine the others assume.
func TestStateMachineSequentialWalk(t *testing.T) {
	var l Lock
	assertVersion := func(step string, want uint64) {
		t.Helper()
		if got := l.Version(); got != want {
			t.Fatalf("%s: version = %d, want %d", step, got, want)
		}
	}

	// Optimistic read: lease at 0, validate, end; version untouched.
	lease0 := l.StartRead()
	if !l.Valid(lease0) || !l.EndRead(lease0) {
		t.Fatal("undisturbed read phase failed validation")
	}
	assertVersion("after read", 0)

	// Upgrade the (still current) lease: version goes odd.
	if !l.TryUpgradeToWrite(lease0) {
		t.Fatal("upgrade of current lease failed")
	}
	if !l.IsWriteLocked() {
		t.Fatal("not write-locked after upgrade")
	}
	assertVersion("after upgrade", 1)

	// Writers exclude writers and upgrades while active.
	if l.TryStartWrite() {
		t.Fatal("TryStartWrite succeeded during a write phase")
	}
	if l.TryUpgradeToWrite(lease0) {
		t.Fatal("upgrade succeeded during a write phase")
	}
	if l.Valid(lease0) {
		t.Fatal("lease valid during a write phase")
	}

	// EndWrite publishes: next even version, old lease dead.
	l.EndWrite()
	assertVersion("after EndWrite", 2)
	if l.Valid(lease0) {
		t.Fatal("pre-write lease valid after a completed write")
	}

	// The defining upgrade guarantee: a lease with an intervening
	// completed writer must never upgrade, while a fresh lease must.
	stale := l.StartRead() // version 2
	if !l.TryStartWrite() {
		t.Fatal("TryStartWrite failed on unlocked lock")
	}
	l.EndWrite() // version 4: the intervening writer
	if l.TryUpgradeToWrite(stale) {
		t.Fatal("stale lease upgraded after an intervening writer — lost update possible")
	}
	if l.IsWriteLocked() {
		t.Fatal("failed upgrade must not take the lock")
	}
	fresh := l.StartRead()
	if !l.TryUpgradeToWrite(fresh) {
		t.Fatal("fresh lease failed to upgrade")
	}
	assertVersion("after fresh upgrade", 5)

	// AbortWrite rolls back: version returns to 4, and a lease from
	// before the aborted write is still valid.
	l.AbortWrite()
	assertVersion("after abort", 4)
	if !l.Valid(fresh) {
		t.Fatal("aborted write invalidated an overlapping lease")
	}

	// Uncontended blocking acquisition reports zero contention.
	if spins, wait := l.StartWriteTimed(); spins != 0 || wait != 0 {
		t.Fatalf("uncontended StartWriteTimed reported spins=%d wait=%d", spins, wait)
	}
	l.EndWrite()
	assertVersion("final", 6)
}
