//go:build lockinject

package optlock

import "sync/atomic"

// Injecting reports whether the fault-injection shim is compiled in.
// True only under the "lockinject" build tag.
const Injecting = true

// Probe is a fault injector: it receives the lock and the site about to
// execute and decides whether the operation proceeds or fails. The
// injector runs on the goroutine performing the lock operation and may
// sleep, yield, or rendezvous with other goroutines — but it must not
// re-enter the lock it was called for, and if it performs operations on
// other locks (or tree operations that use them) it must guard against
// its own recursive invocation.
type Probe func(l *Lock, s Site) Action

// injector is the installed probe; nil means injection is inert.
var injector atomic.Pointer[Probe]

// SetInjector installs p as the process-wide fault injector; p == nil
// uninstalls. Installation is atomic but not synchronised with in-flight
// lock operations: install before starting the workload under test and
// clear after it fully drains.
func SetInjector(p Probe) {
	if p == nil {
		injector.Store(nil)
		return
	}
	injector.Store(&p)
}

// ClearInjector uninstalls the fault injector.
func ClearInjector() { injector.Store(nil) }

// probe consults the installed injector, defaulting to ActNone.
func probe(l *Lock, s Site) Action {
	if p := injector.Load(); p != nil {
		return (*p)(l, s)
	}
	return ActNone
}
