// Package optlock implements the paper's optimistic read-write lock, an
// extension of Linux seqlocks (§3.1, Figure 2).
//
// The lock is a single version word. An even version means "unlocked", an
// odd version means "a writer is active". Readers never modify the word:
// they record the version (the lease), read the protected data, and then
// validate that the version is unchanged and even. Writers flip the
// version to odd with an atomic exchange, mutate, and bump it back to
// even. The crucial specialisation over a classic seqlock is the
// read-potential-write role: a thread holding a read lease may attempt to
// upgrade it to a write lock with a single compare-and-swap, which
// succeeds only if no other writer intervened since the lease was taken.
//
// Because readers leave the cache line untouched, the hot path of a B-tree
// descent (reading inner nodes) causes no cache-line invalidation and no
// bus traffic — the property the paper identifies as decisive on
// multi-socket machines.
//
// The C++ original relies on acquire fences and relaxed loads. Go exposes
// no relaxed atomics, so every protected word is accessed through
// sync/atomic operations; these are at least acquire/release, which keeps
// the protocol sound under the Go memory model and clean under the race
// detector at a small cost in raw read bandwidth (documented in
// DESIGN.md).
package optlock

import (
	"runtime"
	"sync/atomic"

	"specbtree/internal/obs"
)

// Lease is a snapshot of the lock version obtained by StartRead. It
// validates reads performed since it was taken and is the ticket for
// upgrading to a write lock.
type Lease struct {
	version uint64
}

// Lock is the optimistic read-write lock. The zero value is an unlocked
// lock, ready for use. A Lock must not be copied after first use.
type Lock struct {
	version atomic.Uint64
}

// spinWait yields the processor between spin iterations. Progressive
// backoff: a few busy spins, then yield to the scheduler so single-core
// environments make progress.
func spinWait(attempt int) {
	if attempt < 8 {
		return // busy spin: writer sections are a handful of stores
	}
	runtime.Gosched()
}

// StartRead initiates an optimistic read phase and returns the lease.
// It blocks (spinning) while a writer is active, since a lease taken at an
// odd version could never validate.
func (l *Lock) StartRead() Lease {
	if Injecting {
		probe(l, SiteStartRead)
	}
	for attempt := 0; ; attempt++ {
		v := l.version.Load()
		if v&1 == 0 {
			return Lease{version: v}
		}
		spinWait(attempt)
	}
}

// Valid reports whether the data read under the lease is still consistent,
// i.e. no writer has started since the lease was taken.
func (l *Lock) Valid(lease Lease) bool {
	if Injecting && probe(l, SiteValidate) == ActFail {
		return false // injected spurious conflict
	}
	ok := l.version.Load() == lease.version
	if Injecting && ok {
		// Injection point inside the window between a successful
		// validation and the caller's next load — see SiteValidated.
		probe(l, SiteValidated)
	}
	return ok
}

// EndRead terminates a read phase. It returns true if the entire phase was
// free of concurrent updates; on false the caller must discard everything
// it read and restart.
func (l *Lock) EndRead(lease Lease) bool {
	return l.Valid(lease)
}

// TryUpgradeToWrite attempts to convert a read lease into an exclusive
// write lock. It succeeds — atomically, via compare-and-swap — only if no
// write began since the lease was taken, so the data inspected under the
// lease is guaranteed to still be current when the write lock is granted.
func (l *Lock) TryUpgradeToWrite(lease Lease) bool {
	if Injecting && probe(l, SiteUpgrade) == ActFail {
		return false // injected lost CAS
	}
	return l.version.CompareAndSwap(lease.version, lease.version+1)
}

// TryStartWrite attempts to enter a write phase directly without a prior
// read phase. It is non-blocking: false means a writer is active or the
// CAS was lost to a competitor.
func (l *Lock) TryStartWrite() bool {
	if Injecting && probe(l, SiteTryWrite) == ActFail {
		return false // injected lost CAS
	}
	v := l.version.Load()
	if v&1 != 0 {
		return false
	}
	return l.version.CompareAndSwap(v, v+1)
}

// StartWrite blocks until the write lock is acquired. This is the only
// blocking operation of the lock; the B-tree uses it exclusively in the
// bottom-up split path (Algorithm 2), where lock ordering guarantees
// deadlock freedom. Contention is recorded as documented on
// StartWriteTimed.
func (l *Lock) StartWrite() {
	l.StartWriteTimed()
}

// StartWriteTimed blocks until the write lock is acquired, like
// StartWrite, and reports the contention experienced: the spin
// iterations and the wall-clock nanoseconds spent waiting, both zero
// for uncontended acquisitions. Contended acquisitions record their
// spins under "optlock.write.spins" and their wait duration under
// "hist.optlock.write.wait.ns" (package obs), one update per
// acquisition; uncontended acquisitions record nothing and read no
// clock. Callers that know the contended lock's context (which tree
// level, which operation) feed the returned values to the contention
// flight recorder — this package cannot, so it does not.
func (l *Lock) StartWriteTimed() (spins uint64, waitNanos int64) {
	if l.TryStartWrite() {
		return 0, 0
	}
	start := obs.Clock()
	for attempt := 0; ; attempt++ {
		spinWait(attempt)
		spins++
		if l.TryStartWrite() {
			waitNanos = obs.Clock() - start
			obs.Add(obs.LockWriteSpins, spins)
			obs.Observe(obs.HistWriteWaitNanos, uint64(waitNanos))
			return spins, waitNanos
		}
	}
}

// EndWrite marks the end of a write phase after a modification took place.
// The version advances to the next even number, invalidating every lease
// issued before or during the write.
func (l *Lock) EndWrite() {
	if Injecting {
		// Delaying here delays version publication: the lock stays odd.
		probe(l, SiteEndWrite)
	}
	l.version.Add(1)
}

// AbortWrite terminates a write phase during which no modification took
// place. The version rolls back to its pre-write value, so outstanding
// read leases remain valid — readers that overlapped the aborted write
// need not restart.
func (l *Lock) AbortWrite() {
	if Injecting {
		probe(l, SiteAbortWrite)
	}
	l.version.Add(^uint64(0)) // decrement
}

// IsWriteLocked reports whether a writer currently holds the lock. It is
// inherently racy and intended for assertions and tests only.
func (l *Lock) IsWriteLocked() bool {
	return l.version.Load()&1 != 0
}

// Version exposes the raw version counter for tests and diagnostics.
func (l *Lock) Version() uint64 { return l.version.Load() }
