package replica_test

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"specbtree/internal/cluster"
	"specbtree/internal/obs"
	"specbtree/internal/replica"
	"specbtree/internal/serve"
	"specbtree/internal/tuple"
)

// testLeader is a standalone leader: a server over a shard log with
// replication enabled, heartbeating fast so tests converge quickly.
type testLeader struct {
	srv *serve.Server
	log *cluster.ShardLog
}

func startLeader(t *testing.T, path string) *testLeader {
	t.Helper()
	log, rec, err := cluster.OpenShardLog(path, 2)
	if err != nil {
		t.Fatalf("OpenShardLog: %v", err)
	}
	srv, err := serve.Start("127.0.0.1:0", serve.Options{
		Arity:          2,
		Tree:           cluster.BuildTree(rec.Tuples, 2),
		EpochLog:       log,
		Replica:        log.ReplicaSource(),
		HeartbeatEvery: 20 * time.Millisecond,
	})
	if err != nil {
		log.Close()
		t.Fatalf("serve.Start: %v", err)
	}
	l := &testLeader{srv: srv, log: log}
	t.Cleanup(func() { srv.Close(); log.Close() })
	return l
}

func startFollower(t *testing.T, leaderAddr, logPath string) *replica.Follower {
	t.Helper()
	return startFollowerOpts(t, replica.Options{Leader: leaderAddr, LogPath: logPath})
}

// startShardFollower replicates a cluster shard: the shard identity is
// verified on every hello, stream and data plane alike.
func startShardFollower(t *testing.T, leaderAddr, logPath string, shard uint32) *replica.Follower {
	t.Helper()
	return startFollowerOpts(t, replica.Options{
		Leader: leaderAddr, LogPath: logPath, Sharded: true, Shard: shard,
	})
}

func startFollowerOpts(t *testing.T, o replica.Options) *replica.Follower {
	t.Helper()
	o.Arity = 2
	o.StaleAfter = 200 * time.Millisecond
	o.ReconnectEvery = 20 * time.Millisecond
	f, err := replica.Start(o)
	if err != nil {
		t.Fatalf("replica.Start: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// apply pushes one batch through the leader's scheduler (one epoch).
func (l *testLeader) apply(t *testing.T, batch []tuple.Tuple) {
	t.Helper()
	if _, err := l.srv.Apply(batch); err != nil {
		t.Fatalf("Apply: %v", err)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func epochs(n int, tuplesPer int, start uint64) [][]tuple.Tuple {
	out := make([][]tuple.Tuple, n)
	k := start
	for i := range out {
		b := make([]tuple.Tuple, tuplesPer)
		for j := range b {
			b[j] = tuple.Tuple{k, k * 10}
			k++
		}
		out[i] = b
	}
	return out
}

// TestFollowerBootstrapAndStream: a follower joining after the leader
// already committed epochs bootstraps from a snapshot, then applies
// the live stream; its stamp converges to the leader's head and its
// reads serve the replicated tuples.
func TestFollowerBootstrapAndStream(t *testing.T) {
	dir := t.TempDir()
	l := startLeader(t, filepath.Join(dir, "leader.log"))
	pre := epochs(3, 50, 0)
	for _, b := range pre {
		l.apply(t, b)
	}

	f := startFollower(t, l.srv.Addr(), filepath.Join(dir, "follower.log"))
	waitFor(t, "bootstrap to epoch 3", func() bool { return f.Applied() == 3 })

	// Live epochs after the bootstrap.
	for _, b := range epochs(2, 50, 1000) {
		l.apply(t, b)
	}
	waitFor(t, "stream to epoch 5", func() bool { return f.Applied() == 5 })
	waitFor(t, "healthy stream", f.Healthy)

	cl, err := serve.Dial(f.Addr(), serve.ClientOptions{Arity: 2})
	if err != nil {
		t.Fatalf("Dial follower: %v", err)
	}
	defer cl.Close()
	for _, k := range []uint64{0, 49, 1000, 1099} {
		ok, err := cl.Contains(tuple.Tuple{k, k * 10})
		if err != nil || !ok {
			t.Fatalf("Contains(%d) = %v, %v; want true", k, ok, err)
		}
	}
	if n, err := cl.Len(); err != nil || n != 250 {
		t.Fatalf("Len = %d, %v; want 250", n, err)
	}
	st, err := cl.Stamp()
	if err != nil {
		t.Fatalf("Stamp: %v", err)
	}
	if st.Applied != 5 || st.Head < 5 || !st.Healthy {
		t.Fatalf("stamp = %+v, want applied=5 head>=5 healthy", st)
	}

	// The follower refuses writes.
	if _, err := cl.Insert([]tuple.Tuple{{9, 9}}); err == nil {
		t.Fatal("Insert on a follower succeeded, want refusal")
	}
}

// TestFollowerRestartResumesFromWatermark: a restarted follower
// recovers its applied watermark from its own log and resumes the
// stream from there instead of bootstrapping again.
func TestFollowerRestartResumesFromWatermark(t *testing.T) {
	dir := t.TempDir()
	l := startLeader(t, filepath.Join(dir, "leader.log"))
	for _, b := range epochs(3, 20, 0) {
		l.apply(t, b)
	}
	fpath := filepath.Join(dir, "follower.log")
	f := startFollower(t, l.srv.Addr(), fpath)
	waitFor(t, "first catch-up", func() bool { return f.Applied() == 3 })
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// More epochs while the follower is down.
	for _, b := range epochs(2, 20, 500) {
		l.apply(t, b)
	}

	boot := obs.Value(obs.ReplicaBootstrapTuples)
	f2 := startFollower(t, l.srv.Addr(), fpath)
	if got := f2.Applied(); got != 3 {
		t.Fatalf("recovered watermark = %d, want 3", got)
	}
	waitFor(t, "resume to epoch 5", func() bool { return f2.Applied() == 5 })
	if got := obs.Value(obs.ReplicaBootstrapTuples); got != boot {
		t.Fatalf("restart bootstrapped %d tuples, want a stream resume", got-boot)
	}

	cl, err := serve.Dial(f2.Addr(), serve.ClientOptions{Arity: 2})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	if n, err := cl.Len(); err != nil || n != 100 {
		t.Fatalf("Len = %d, %v; want 100", n, err)
	}
}

// TestFollowerUnhealthyWhenLeaderDies: with the leader gone, the
// follower's stamp turns unhealthy once StaleAfter passes without a
// frame — the signal routing clients use to stop trusting its reads.
func TestFollowerUnhealthyWhenLeaderDies(t *testing.T) {
	dir := t.TempDir()
	l := startLeader(t, filepath.Join(dir, "leader.log"))
	for _, b := range epochs(1, 10, 0) {
		l.apply(t, b)
	}
	f := startFollower(t, l.srv.Addr(), filepath.Join(dir, "follower.log"))
	waitFor(t, "catch-up", func() bool { return f.Applied() == 1 })
	waitFor(t, "healthy", f.Healthy)

	l.srv.Close()
	l.log.Close()
	waitFor(t, "unhealthy after leader death", func() bool { return !f.Healthy() })
	if f.Applied() != 1 {
		t.Fatalf("applied moved to %d after leader death", f.Applied())
	}
}

// TestFenceRetiresMovedRangeOnFollower (satellite): a fence record in
// the stream retires the moved leading-column range from the replica —
// exactly once in effect — and a restart replaying the same fence from
// the follower's own log converges to the same state (idempotent).
func TestFenceRetiresMovedRangeOnFollower(t *testing.T) {
	dir := t.TempDir()
	l := startLeader(t, filepath.Join(dir, "leader.log"))

	// Epoch 1: keys 0..99. Epoch 2 (fence): range [25, 74] moves away.
	batch := make([]tuple.Tuple, 100)
	for i := range batch {
		batch[i] = tuple.Tuple{uint64(i), uint64(i)}
	}
	l.apply(t, batch)

	fpath := filepath.Join(dir, "follower.log")
	f := startFollower(t, l.srv.Addr(), fpath)
	waitFor(t, "pre-fence catch-up", func() bool { return f.Applied() == 1 })

	fenced := obs.Value(obs.ReplicaFencesApplied)
	if err := l.log.AppendFence(25, 74, 1); err != nil {
		t.Fatalf("AppendFence: %v", err)
	}
	waitFor(t, "fence epoch", func() bool { return f.Applied() == 2 })
	if got := obs.Value(obs.ReplicaFencesApplied) - fenced; obs.Enabled && got != 1 {
		t.Fatalf("fences applied = %d, want exactly 1", got)
	}

	check := func(f *replica.Follower, when string) {
		t.Helper()
		cl, err := serve.Dial(f.Addr(), serve.ClientOptions{Arity: 2})
		if err != nil {
			t.Fatalf("%s: Dial: %v", when, err)
		}
		defer cl.Close()
		if n, err := cl.Len(); err != nil || n != 50 {
			t.Fatalf("%s: Len = %d, %v; want 50 after retiring [25,74]", when, n, err)
		}
		for _, k := range []uint64{24, 75} {
			if ok, _ := cl.Contains(tuple.Tuple{k, k}); !ok {
				t.Fatalf("%s: kept key %d missing", when, k)
			}
		}
		for _, k := range []uint64{25, 50, 74} {
			if ok, _ := cl.Contains(tuple.Tuple{k, k}); ok {
				t.Fatalf("%s: moved key %d still served", when, k)
			}
		}
	}
	check(f, "after fence")

	// Restart: the fence replays from the follower's own log; the
	// recovered state must be identical, not doubly-retired or revived.
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	f2 := startFollower(t, l.srv.Addr(), fpath)
	if got := f2.Applied(); got != 2 {
		t.Fatalf("recovered watermark = %d, want 2", got)
	}
	check(f2, "after replay")
}

// TestClusterPromoteOnFailure: the full failover path. A cluster shard
// with an attached follower is killed; Promote replays the leader log
// tail into the follower (writes acked after the follower's last
// applied epoch included), flips it writable, and repoints the
// directory — the routing client keeps working without a restart, and
// no acknowledged write is lost.
func TestClusterPromoteOnFailure(t *testing.T) {
	dir := t.TempDir()
	c, err := cluster.StartCluster(cluster.Options{
		Shards: 1,
		LogDir: dir,
		Serve:  serve.Options{HeartbeatEvery: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer c.Close()

	f := startShardFollower(t, c.Addrs()[0], filepath.Join(dir, "follower-0.log"), 0)
	if err := c.AttachFollower(0, f); err != nil {
		t.Fatalf("AttachFollower: %v", err)
	}

	cl, err := c.Client(cluster.ClientOptions{})
	if err != nil {
		t.Fatalf("Client: %v", err)
	}
	defer cl.Close()

	var acked []tuple.Tuple
	for i := uint64(0); i < 5; i++ {
		b := []tuple.Tuple{{i, i}, {i + 100, i}}
		if _, err := cl.Insert(b); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		acked = append(acked, b...)
	}
	waitFor(t, "follower catch-up", func() bool { return f.Applied() >= 3 })

	// Writes the follower may not have streamed yet, then the kill.
	late := []tuple.Tuple{{999, 1}, {998, 2}}
	if _, err := cl.Insert(late); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	acked = append(acked, late...)
	if err := c.KillShard(0); err != nil {
		t.Fatalf("KillShard: %v", err)
	}

	addr, err := c.Promote(0)
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if addr != f.Addr() {
		t.Fatalf("promoted to %s, want follower %s", addr, f.Addr())
	}
	if !f.Promoted() {
		t.Fatal("follower does not report promoted")
	}

	// Every acknowledged write must be served by the new leader.
	for _, tp := range acked {
		ok, err := cl.Contains(tp)
		if err != nil {
			t.Fatalf("Contains(%v) after promote: %v", tp, err)
		}
		if !ok {
			t.Fatalf("acked write %v lost across failover", tp)
		}
	}
	// And it accepts new writes, routed through the directory.
	if _, err := cl.Insert([]tuple.Tuple{{5000, 5}}); err != nil {
		t.Fatalf("Insert after promote: %v", err)
	}
	if ok, err := cl.Contains(tuple.Tuple{5000, 5}); err != nil || !ok {
		t.Fatalf("post-promote write not served: %v %v", ok, err)
	}

	// The old leader is fenced out for good.
	if err := c.RestartShard(0); err == nil {
		t.Fatal("RestartShard of a failed-over shard succeeded, want refusal")
	}
}

// TestFollowerReadOffload: a routing client with a staleness budget
// serves reads from the follower while it is fresh, and falls back to
// the leader when the budget is zero-tolerance and the follower lags.
func TestFollowerReadOffload(t *testing.T) {
	dir := t.TempDir()
	c, err := cluster.StartCluster(cluster.Options{
		Shards: 1,
		LogDir: dir,
		Serve:  serve.Options{HeartbeatEvery: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer c.Close()

	f := startShardFollower(t, c.Addrs()[0], filepath.Join(dir, "follower-0.log"), 0)
	if err := c.AttachFollower(0, f); err != nil {
		t.Fatalf("AttachFollower: %v", err)
	}

	cl, err := c.Client(cluster.ClientOptions{MaxStaleEpochs: 8})
	if err != nil {
		t.Fatalf("Client: %v", err)
	}
	defer cl.Close()

	for i := uint64(0); i < 4; i++ {
		if _, err := cl.Insert([]tuple.Tuple{{i, i}}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	waitFor(t, "follower catch-up", func() bool { return f.Applied() == 4 && f.Healthy() })

	follower := obs.Value(obs.ReplicaFollowerReads)
	for i := uint64(0); i < 4; i++ {
		ok, err := cl.Contains(tuple.Tuple{i, i})
		if err != nil || !ok {
			t.Fatalf("Contains(%d) = %v, %v", i, ok, err)
		}
	}
	if got := obs.Value(obs.ReplicaFollowerReads) - follower; obs.Enabled && got != 4 {
		t.Fatalf("follower served %d reads, want 4", got)
	}

	// Kill the follower: reads must fall back to the leader and stay
	// correct — offload is an optimisation, never a availability or
	// correctness dependency.
	fallback := obs.Value(obs.ReplicaFallbackReads)
	if err := f.Close(); err != nil {
		t.Fatalf("follower Close: %v", err)
	}
	for i := uint64(0); i < 4; i++ {
		ok, err := cl.Contains(tuple.Tuple{i, i})
		if err != nil || !ok {
			t.Fatalf("Contains(%d) after follower death = %v, %v", i, ok, err)
		}
	}
	// Only the read that catches the dead connection counts as a
	// fallback; during the dial backoff the follower is skipped and
	// reads are plain leader reads.
	if got := obs.Value(obs.ReplicaFallbackReads) - fallback; obs.Enabled && got == 0 {
		t.Fatal("no fallback read recorded after follower death")
	}
}

// TestManyFollowersPromoteMostCaughtUp: Promote picks the follower
// with the highest applied watermark.
func TestManyFollowersPromoteMostCaughtUp(t *testing.T) {
	dir := t.TempDir()
	c, err := cluster.StartCluster(cluster.Options{
		Shards: 1,
		LogDir: dir,
		Serve:  serve.Options{HeartbeatEvery: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer c.Close()

	cl, err := c.Client(cluster.ClientOptions{})
	if err != nil {
		t.Fatalf("Client: %v", err)
	}
	defer cl.Close()
	for i := uint64(0); i < 6; i++ {
		if _, err := cl.Insert([]tuple.Tuple{{i, i}}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}

	// laggard stops streaming at its current position; fresh keeps up.
	laggard := startShardFollower(t, c.Addrs()[0], filepath.Join(dir, "f-lag.log"), 0)
	waitFor(t, "laggard partial catch-up", func() bool { return laggard.Applied() >= 1 })
	if _, err := laggard.CatchUpFromLog(c.Shard(0).Addr()); err == nil {
		t.Fatal("CatchUpFromLog on a bogus path succeeded")
	} // side effect: stops the laggard's stream at its watermark
	lagAt := laggard.Applied()

	fresh := startShardFollower(t, c.Addrs()[0], filepath.Join(dir, "f-fresh.log"), 0)
	waitFor(t, "fresh catch-up", func() bool { return fresh.Applied() == 6 })
	if lagAt >= 6 {
		t.Skipf("laggard caught all the way up (applied=%d); cannot distinguish", lagAt)
	}

	if err := c.AttachFollower(0, laggard); err != nil {
		t.Fatalf("AttachFollower: %v", err)
	}
	if err := c.AttachFollower(0, fresh); err != nil {
		t.Fatalf("AttachFollower: %v", err)
	}
	if err := c.KillShard(0); err != nil {
		t.Fatalf("KillShard: %v", err)
	}
	addr, err := c.Promote(0)
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if addr != fresh.Addr() {
		t.Fatalf("promoted %s, want the most caught-up follower %s", addr, fresh.Addr())
	}
}

// TestFollowerBootstrapEmptyLeader: subscribing to a leader that has
// committed nothing completes the (empty) bootstrap and goes healthy.
func TestFollowerBootstrapEmptyLeader(t *testing.T) {
	dir := t.TempDir()
	l := startLeader(t, filepath.Join(dir, "leader.log"))
	f := startFollower(t, l.srv.Addr(), filepath.Join(dir, "follower.log"))
	waitFor(t, "healthy on empty leader", f.Healthy)
	if f.Applied() != 0 {
		t.Fatalf("applied = %d, want 0", f.Applied())
	}
	l.apply(t, []tuple.Tuple{{1, 2}})
	waitFor(t, "first epoch", func() bool { return f.Applied() == 1 })
}

var _ = fmt.Sprintf // keep fmt for debugging edits
