// Package replica implements streaming read replicas of cluster
// shards (DESIGN.md §16). A Follower bootstraps from a leader
// snapshot, subscribes to the leader's committed epoch stream
// (internal/serve's replication frames over the shard insert log), and
// applies whole epochs in order through its own phase scheduler — so
// the replica is always at a state the leader actually passed through.
// Every applied epoch is re-logged into the follower's own durable log
// with the leader's sequence number as a watermark, making the
// follower restartable (replay, then resume the stream from the
// watermark) and promotable (replay the dead leader's committed log
// tail past the watermark, then turn writable).
//
// The follower serves reads over the ordinary wire protocol; its
// answers carry a replication stamp (applied watermark, known
// committed head, stream health) so routing clients can enforce a
// bounded-staleness contract per read and fall back to the leader when
// the bound is violated. Fence records in the stream — rebalance cuts
// — retire the moved range from the replica at the epoch boundary that
// cut them, by exchanging the served tree for a rebuilt complement:
// exactly once per cut in effect, and idempotent under replay, since a
// replayed epoch's batches re-insert at most what its fences drop
// again.
package replica

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"specbtree/internal/cluster"
	"specbtree/internal/core"
	"specbtree/internal/obs"
	"specbtree/internal/serve"
	"specbtree/internal/tuple"
)

// Options configures a Follower.
type Options struct {
	// Leader is the leader shard's address.
	Leader string
	// Shard is the shard number this follower replicates; with Sharded
	// set, every hello (stream and data-plane) verifies it.
	Shard   uint32
	Sharded bool
	// Arity is the tuple width of the replicated relation (default 2).
	Arity int
	// LogPath is the follower's own durable log: applied epochs are
	// re-logged there, restarts replay it, promotion keeps writing it.
	LogPath string
	// Addr is the follower's listen address (default "127.0.0.1:0").
	Addr string
	// StaleAfter is how long the stream may be silent — no epoch, no
	// heartbeat — before the follower reports unhealthy and its reads
	// stop passing the staleness gate (default 1s; leaders heartbeat
	// every 100ms by default).
	StaleAfter time.Duration
	// ReconnectEvery paces stream reconnect attempts after a broken
	// subscription (default 100ms).
	ReconnectEvery time.Duration
	// Serve tunes the follower's server; Arity, Tree, EpochLog,
	// Follower, Stamp, Sharded and ShardID are overwritten.
	Serve serve.Options
}

func (o Options) withDefaults() Options {
	if o.Arity <= 0 {
		o.Arity = 2
	}
	if o.Addr == "" {
		o.Addr = "127.0.0.1:0"
	}
	if o.StaleAfter <= 0 {
		o.StaleAfter = time.Second
	}
	if o.ReconnectEvery <= 0 {
		o.ReconnectEvery = 100 * time.Millisecond
	}
	return o
}

// Follower is one running read replica. It implements
// cluster.FollowerHandle, so a Cluster can attach it for read offload
// and promote it on leader failure.
type Follower struct {
	opts Options
	srv  *serve.Server
	log  *cluster.ShardLog

	// applied is the leader epoch watermark: every epoch <= applied is
	// applied to the tree AND durable in the follower's own log.
	applied atomic.Uint64
	// head is the highest leader epoch known committed (epoch frames,
	// heartbeats, and the subscribe ack all carry it).
	head atomic.Uint64
	// healthy reports a live stream: frames arriving within StaleAfter.
	healthy  atomic.Bool
	promoted atomic.Bool

	mu sync.Mutex
	rc *serve.ReplicaConn // live subscription, for teardown

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// Start opens (replaying) the follower's own log, serves the recovered
// tree read-only, and begins streaming from the leader in the
// background: a snapshot bootstrap when the log held nothing applied,
// a resume from the recovered watermark otherwise.
func Start(opts Options) (*Follower, error) {
	opts = opts.withDefaults()
	if opts.LogPath == "" {
		return nil, fmt.Errorf("replica: follower needs a log path")
	}
	log, rec, err := cluster.OpenShardLog(opts.LogPath, opts.Arity)
	if err != nil {
		return nil, fmt.Errorf("replica: follower log: %w", err)
	}
	f := &Follower{
		opts: opts,
		log:  log,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	f.applied.Store(rec.Watermark)
	f.head.Store(rec.Watermark)

	sopts := opts.Serve
	sopts.Arity = opts.Arity
	sopts.Tree = cluster.BuildTree(rec.Tuples, opts.Arity)
	sopts.EpochLog = nil // replication logs explicitly, per applied epoch
	sopts.Follower = true
	sopts.Stamp = f.stamp
	sopts.Sharded = opts.Sharded
	sopts.ShardID = opts.Shard
	srv, err := serve.Start(opts.Addr, sopts)
	if err != nil {
		log.Close()
		return nil, fmt.Errorf("replica: follower server: %w", err)
	}
	f.srv = srv
	go f.run()
	return f, nil
}

// stamp is the follower's serve.Options.Stamp: the replication
// position its read frames answer opStamp with.
func (f *Follower) stamp() (applied, head uint64, healthy bool) {
	applied = f.applied.Load()
	head = f.head.Load()
	if head < applied {
		head = applied
	}
	return applied, head, f.healthy.Load()
}

// Addr returns the follower's serving address.
func (f *Follower) Addr() string { return f.srv.Addr() }

// Applied returns the follower's applied-epoch watermark.
func (f *Follower) Applied() uint64 { return f.applied.Load() }

// Head returns the highest leader epoch the follower knows committed.
func (f *Follower) Head() uint64 { _, h, _ := f.stamp(); return h }

// Healthy reports whether the replication stream is live.
func (f *Follower) Healthy() bool { return f.healthy.Load() }

// Server returns the follower's serving surface.
func (f *Follower) Server() *serve.Server { return f.srv }

// Log returns the follower's own durable log.
func (f *Follower) Log() *cluster.ShardLog { return f.log }

// run is the stream loop: subscribe, apply until the subscription
// breaks, back off, resubscribe from the current watermark. Exits on
// Close or promotion.
func (f *Follower) run() {
	defer close(f.done)
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		f.streamOnce()
		f.healthy.Store(false)
		select {
		case <-f.stop:
			return
		case <-time.After(f.opts.ReconnectEvery):
		}
	}
}

// streamOnce runs one subscription to completion (error or stop). A
// zero watermark requests a snapshot bootstrap; anything else resumes
// the epoch stream right after the watermark.
func (f *Follower) streamOnce() {
	after := f.applied.Load()
	rc, err := serve.DialReplica(f.opts.Leader, serve.ReplicaDialOptions{
		Arity:    f.opts.Arity,
		Shard:    f.opts.Shard,
		Sharded:  f.opts.Sharded,
		Snapshot: after == 0,
		After:    after,
	})
	if err != nil {
		return
	}
	f.mu.Lock()
	f.rc = rc
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		if f.rc == rc {
			f.rc = nil
		}
		f.mu.Unlock()
		rc.Close()
	}()
	f.observeHead(rc.Head)

	for {
		select {
		case <-f.stop:
			return
		default:
		}
		m, err := rc.Recv(f.opts.StaleAfter)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				// The leader went quiet past the staleness window: report
				// unhealthy (reads fall back to the leader — or fail with
				// it, which is what promotion is for) but keep listening;
				// the subscription may simply be stalled, not dead.
				f.healthy.Store(false)
				continue
			}
			return
		}
		switch m.Type {
		case serve.ReplicaSnapPage:
			if err := f.applyBootstrapPage(m); err != nil {
				return
			}
		case serve.ReplicaEpochMsg:
			seq := m.Epoch.Seq
			cur := f.applied.Load()
			if seq <= cur {
				continue // bootstrap overlap: already applied, idempotent to skip
			}
			if seq != cur+1 {
				return // gap: resubscribe from the watermark
			}
			fences := make([]cluster.Fence, 0, len(m.Epoch.Fences))
			for _, fc := range m.Epoch.Fences {
				fences = append(fences, cluster.Fence{Lo: fc.Lo, Hi: fc.Hi, Dst: fc.Dst})
			}
			if err := f.applyEpoch(seq, m.Epoch.Batches, fences); err != nil {
				return
			}
			f.observeHead(m.Head)
			f.healthy.Store(true)
			obs.Observe(obs.HistReplicaLagEpochs, f.lag())
		case serve.ReplicaHeartbeat:
			f.observeHead(m.Head)
			f.healthy.Store(true)
			obs.Observe(obs.HistReplicaLagEpochs, f.lag())
		}
	}
}

// applyBootstrapPage applies one snapshot page: into the tree through
// the scheduler, then durably into the follower's log — with mark 0
// until the final page, whose mark is the bootstrap base. A crash
// mid-bootstrap therefore recovers with watermark 0 and bootstraps
// again (re-applied tuples are idempotent set additions).
func (f *Follower) applyBootstrapPage(m serve.ReplicaMsg) error {
	if len(m.Tuples) > 0 {
		if _, err := f.srv.Apply(m.Tuples); err != nil {
			return err
		}
		if err := f.log.LogReplicatedEpoch([][]tuple.Tuple{m.Tuples}, nil, 0); err != nil {
			return err
		}
		obs.Add(obs.ReplicaBootstrapTuples, uint64(len(m.Tuples)))
	}
	if m.Last {
		if err := f.log.LogReplicatedEpoch(nil, nil, m.Base); err != nil {
			return err
		}
		f.applied.Store(m.Base)
		f.observeHead(m.Base)
		f.healthy.Store(true)
	}
	return nil
}

// applyEpoch applies one committed leader epoch atomically from the
// readers' point of view: insert batches through the scheduler, fence
// retirements as tree exchanges at the quiescent point, then the whole
// epoch into the follower's own log, and only then the watermark —
// reads stamped `applied` never overstate what is both served and
// durable. A crash between apply and log recovers to the previous
// watermark and re-applies this epoch from the stream; its batches
// re-insert at most what its fences drop again, so fence retirement
// stays effectively exactly-once.
func (f *Follower) applyEpoch(seq uint64, batches [][]tuple.Tuple, fences []cluster.Fence) error {
	tuples := uint64(0)
	for _, b := range batches {
		if len(b) == 0 {
			continue
		}
		if _, err := f.srv.Apply(b); err != nil {
			return err
		}
		tuples += uint64(len(b))
	}
	for _, fc := range fences {
		if err := f.retire(fc); err != nil {
			return err
		}
		obs.Inc(obs.ReplicaFencesApplied)
	}
	if err := f.log.LogReplicatedEpoch(batches, fences, seq); err != nil {
		return err
	}
	f.applied.Store(seq)
	obs.Inc(obs.ReplicaApplyEpochs)
	obs.Add(obs.ReplicaApplyTuples, tuples)
	return nil
}

// retire drops the fenced leading-column range [Lo, Hi] from the
// replica without a restart: snapshot the served tree, export the
// complement of the range, bulk-load it into a fresh tree, and
// exchange it in at an epoch boundary. O(kept) work, but fences are
// rare (one per rebalance) and the replica must not serve a range the
// leader no longer owns.
func (f *Follower) retire(fc cluster.Fence) error {
	snap, err := f.srv.SnapshotNow()
	if err != nil {
		return err
	}
	arity := f.opts.Arity
	from := tuple.PrefixLowerBound(tuple.Tuple{fc.Lo}, arity)
	keep := snap.ExportRange(nil, from)
	if to := tuple.PrefixUpperBound(tuple.Tuple{fc.Hi}, arity); to != nil {
		keep = append(keep, snap.ExportRange(to, nil)...)
	}
	t := core.New(arity)
	if len(keep) > 0 {
		t.BuildFromSorted(keep)
	}
	return f.srv.Exchange(t)
}

// observeHead raises the known committed head (it never goes back).
func (f *Follower) observeHead(h uint64) {
	for {
		cur := f.head.Load()
		if h <= cur || f.head.CompareAndSwap(cur, h) {
			return
		}
	}
}

// lag is the current staleness in epochs (head - applied).
func (f *Follower) lag() uint64 {
	a, h, _ := f.stamp()
	return h - a
}

// stopStream stops the background stream loop and waits it out.
// Idempotent.
func (f *Follower) stopStream() {
	f.stopOnce.Do(func() {
		close(f.stop)
		f.mu.Lock()
		if f.rc != nil {
			f.rc.Close() // unblock a Recv in flight
		}
		f.mu.Unlock()
	})
	<-f.done
}

// CatchUpFromLog replays the committed tail of a (dead) leader's
// durable log past the follower's watermark — promotion's catch-up.
// The stream loop is stopped first; a torn tail in the log is the end
// of the committed prefix (those bytes were never acknowledged), while
// corruption inside it is a real error. Returns the new watermark.
func (f *Follower) CatchUpFromLog(path string) (uint64, error) {
	f.stopStream()
	tail, err := cluster.TailShardLog(path, f.opts.Arity, f.applied.Load())
	if err != nil {
		return f.applied.Load(), fmt.Errorf("replica: catch-up open: %w", err)
	}
	defer tail.Close()
	for {
		ep, ok, err := tail.Next()
		if err != nil {
			return f.applied.Load(), fmt.Errorf("replica: catch-up replay: %w", err)
		}
		if !ok {
			return f.applied.Load(), nil
		}
		if ep.Seq != f.applied.Load()+1 {
			return f.applied.Load(), fmt.Errorf("replica: catch-up epoch %d does not extend watermark %d", ep.Seq, f.applied.Load())
		}
		if err := f.applyEpoch(ep.Seq, ep.Batches, ep.Fences); err != nil {
			return f.applied.Load(), fmt.Errorf("replica: catch-up apply: %w", err)
		}
	}
}

// Promote flips the follower into a writable leader: the stream loop
// stops, the follower's own log becomes the scheduler's epoch log, and
// insert frames are accepted from then on. The follower then answers
// stamps as a leader (applied == head, healthy) — it defines the head
// now. Call CatchUpFromLog first; cluster.Promote does both.
func (f *Follower) Promote() error {
	f.stopStream()
	f.srv.PromoteToLeader(f.log)
	f.promoted.Store(true)
	f.healthy.Store(true)
	obs.Inc(obs.ReplicaPromotions)
	return nil
}

// Promoted reports whether the follower has been promoted.
func (f *Follower) Promoted() bool { return f.promoted.Load() }

// Close stops the stream and — unless the follower was promoted, in
// which case the cluster took ownership of its server and log — shuts
// the server down and closes the log.
func (f *Follower) Close() error {
	f.stopStream()
	if f.promoted.Load() {
		return nil
	}
	err := f.srv.Close()
	if lerr := f.log.Close(); err == nil {
		err = lerr
	}
	return err
}
