package workload

import (
	"fmt"
	"math/rand"

	"specbtree/internal/tuple"
)

// DatalogWorkload is a generated Datalog benchmark: a program plus its
// input facts, standing in for the proprietary real-world inputs of the
// paper's §4.3 (Doop on DaCapo; Amazon EC2 network snapshots). The
// generators reproduce the *shape* of those workloads — rule structure,
// recursion pattern, read/write balance and data ordering — at
// laptop-adjustable sizes; see DESIGN.md for the substitution rationale.
type DatalogWorkload struct {
	Name   string
	Source string
	Facts  map[string][]tuple.Tuple
	// Outputs lists the relations whose size is the workload's result,
	// for sanity checks and reporting.
	Outputs []string
}

// PointsTo generates a field-sensitive Andersen-style var-points-to
// analysis — the insert-heavy workload class of the Doop experiment
// (Figure 5a). The program's two mutually recursive relations (variable
// and heap points-to) make evaluation dominated by insertions into large
// B-trees, like the paper's context-sensitive var-points-to.
//
// size scales the synthetic program under analysis (number of allocation
// sites); the fact counts grow linearly with it while the derived
// relations grow super-linearly.
func PointsTo(size int, seed int64) DatalogWorkload {
	if size < 4 {
		size = 4
	}
	rng := rand.New(rand.NewSource(seed))
	nObjects := size
	nVars := 4 * size
	nFields := 4 + size/16

	src := `
// Andersen-style field-sensitive points-to analysis (Doop-like shape).
.decl new(v: number, o: number)
.decl assign(v: number, w: number)
.decl load(v: number, w: number, f: number)
.decl store(v: number, f: number, w: number)
.decl vpt(v: number, o: number)
.decl heapPt(o: number, f: number, p: number)
.input new
.input assign
.input load
.input store
.output vpt
.output heapPt

vpt(V, O) :- new(V, O).
vpt(V, O) :- assign(V, W), vpt(W, O).
heapPt(O, F, P) :- store(V, F, W), vpt(V, O), vpt(W, P).
vpt(V, P) :- load(V, W, F), vpt(W, O), heapPt(O, F, P).
`
	facts := map[string][]tuple.Tuple{}
	// Allocation sites: variables receive distinct objects; ordered ids
	// give the B-trees the data locality real extracted facts exhibit.
	for o := 0; o < nObjects; o++ {
		v := uint64(rng.Intn(nVars))
		facts["new"] = append(facts["new"], tuple.Tuple{v, uint64(o)})
	}
	// Assignments: mostly local chains (v -> v+1) with occasional long
	// jumps, mimicking copy propagation through methods.
	for i := 0; i < 3*size; i++ {
		v := uint64(rng.Intn(nVars))
		w := v + 1
		if rng.Intn(8) == 0 || w >= uint64(nVars) {
			w = uint64(rng.Intn(nVars))
		}
		facts["assign"] = append(facts["assign"], tuple.Tuple{w, v})
	}
	// Field loads and stores.
	for i := 0; i < size; i++ {
		facts["store"] = append(facts["store"], tuple.Tuple{
			uint64(rng.Intn(nVars)), uint64(rng.Intn(nFields)), uint64(rng.Intn(nVars)),
		})
		facts["load"] = append(facts["load"], tuple.Tuple{
			uint64(rng.Intn(nVars)), uint64(rng.Intn(nVars)), uint64(rng.Intn(nFields)),
		})
	}
	return DatalogWorkload{
		Name:    "pointsto",
		Source:  src,
		Facts:   facts,
		Outputs: []string{"vpt", "heapPt"},
	}
}

// Security generates a network reachability / security-vulnerability
// analysis — the read-heavy workload class of the Amazon EC2 experiment
// (Figure 5b). Its signature properties, mirrored from the paper's
// description: membership tests vastly outnumber insertions (negation and
// filtering dominate), most produced tuples concentrate in one relation
// (reach), and the data is highly ordered (chain-structured links), which
// is why operation hints pay off most here.
//
// size is the number of network instances.
func Security(size int, seed int64) DatalogWorkload {
	if size < 8 {
		size = 8
	}
	rng := rand.New(rand.NewSource(seed))
	nGroups := 2 + size/8
	nPorts := 64

	src := `
// Network security vulnerability analysis (EC2-like shape).
.decl instance(i: number)
.decl link(i: number, j: number)
.decl sg(i: number, g: number)
.decl allow(g: number, h: number, p: number)
.decl internet(g: number)
.decl vulnPort(p: number)
.decl patched(i: number, p: number)
.decl conn(i: number, j: number, p: number)
.decl reach(i: number, j: number)
.decl exposed(i: number, p: number)
.decl vulnerable(i: number, p: number)
.decl atRisk(i: number, j: number)
.input instance
.input link
.input sg
.input allow
.input internet
.input vulnPort
.input patched
.output reach
.output vulnerable
.output atRisk

conn(I, J, P) :- link(I, J), sg(I, G), sg(J, H), allow(G, H, P).
reach(I, J) :- conn(I, J, _).
reach(I, K) :- reach(I, J), conn(J, K, _).
exposed(I, P) :- internet(G), allow(G, H, P), sg(I, H).
vulnerable(I, P) :- exposed(I, P), vulnPort(P), !patched(I, P).
atRisk(I, J) :- reach(I, J), vulnerable(J, P), !patched(I, P).
`
	facts := map[string][]tuple.Tuple{}
	for i := 0; i < size; i++ {
		facts["instance"] = append(facts["instance"], tuple.Tuple{uint64(i)})
		// Chain links within subnets of 32 instances; every other subnet
		// boundary is bridged, giving long, highly ordered connectivity
		// runs (the "heavily ordered data" the paper reports for this
		// workload).
		if i+1 < size {
			boundary := (i+1)%32 == 0
			if !boundary || (i/32)%2 == 0 {
				facts["link"] = append(facts["link"], tuple.Tuple{uint64(i), uint64(i + 1)})
			}
		}
		if rng.Intn(32) == 0 {
			facts["link"] = append(facts["link"], tuple.Tuple{uint64(i), uint64(rng.Intn(size))})
		}
		// Group membership: clustered by address, occasionally doubled.
		g := uint64((i / 8) % nGroups)
		facts["sg"] = append(facts["sg"], tuple.Tuple{uint64(i), g})
		if rng.Intn(4) == 0 {
			facts["sg"] = append(facts["sg"], tuple.Tuple{uint64(i), uint64(rng.Intn(nGroups))})
		}
	}
	// ACL rules: every group talks to itself and its neighbour on a
	// handful of ports (dense enough that most links carry several allowed
	// ports — the source of the read amplification: each port multiplies
	// the duplicate-checking membership tests of the reach recursion
	// without adding reach tuples), plus sparse random rules.
	seenAllow := map[[3]uint64]bool{}
	addAllow := func(g, h, p uint64) {
		r := [3]uint64{g, h, p}
		if !seenAllow[r] {
			seenAllow[r] = true
			facts["allow"] = append(facts["allow"], tuple.Tuple{g, h, p})
		}
	}
	for g := 0; g < nGroups; g++ {
		for k := 0; k < 8; k++ {
			p := uint64(rng.Intn(nPorts))
			addAllow(uint64(g), uint64(g), p)
			addAllow(uint64(g), uint64((g+1)%nGroups), p)
		}
	}
	for i := 0; i < nGroups*2; i++ {
		addAllow(uint64(rng.Intn(nGroups)), uint64(rng.Intn(nGroups)), uint64(rng.Intn(nPorts)))
	}
	// The internet-facing group, vulnerable ports, and patch state. A few
	// internet-facing rules on vulnerable ports are planted across the
	// group range so the vulnerability surface never degenerates to empty
	// as the network grows.
	facts["internet"] = append(facts["internet"], tuple.Tuple{0})
	for k := 0; k < 8; k++ {
		g := uint64(k*nGroups/8) % uint64(nGroups)
		addAllow(0, g, uint64(7*(k%9)))
	}
	for p := 0; p < nPorts; p += 7 {
		facts["vulnPort"] = append(facts["vulnPort"], tuple.Tuple{uint64(p)})
	}
	for i := 0; i < size; i += 3 {
		facts["patched"] = append(facts["patched"], tuple.Tuple{uint64(i), uint64(rng.Intn(nPorts))})
	}
	return DatalogWorkload{
		Name:    "security",
		Source:  src,
		Facts:   facts,
		Outputs: []string{"reach", "vulnerable", "atRisk"},
	}
}

// Selective generates the selective-join workload: a filtered scan feeds
// a high-fanout join whose output is narrowed by range comparisons on
// the joined column. It is the showcase for comparison pushdown
// (DESIGN.md §12): the comparisons select a small window of each
// B-tree's key range, so an evaluator that folds them into the cursor's
// [lo, hi) bounds touches a fraction of the tuples a scan-then-filter
// evaluator visits. The windows are baked into the program text as
// constants — exactly the shape pushdown targets.
//
// size is the number of src tuples; every src key fans out to ~64 link
// tuples, of which the pushed window keeps ~1/16.
func Selective(size int, seed int64) DatalogWorkload {
	if size < 16 {
		size = 16
	}
	rng := rand.New(rand.NewSource(seed))
	nKeys := size / 4 // join-key space: src.y and link.y
	if nKeys < 4 {
		nKeys = 4
	}
	const (
		xSpace = 4096 // src.x domain
		zSpace = 4096 // link.z domain
		fanout = 64   // link tuples per join key
	)
	// Window [xLo, xHi) keeps ~1/4 of src; [zLo, zHi) keeps ~1/16 of each
	// key's link fanout.
	xLo, xHi := uint64(xSpace/4), uint64(xSpace/2)
	zLo, zHi := uint64(zSpace/2), uint64(zSpace/2+zSpace/16)

	src := fmt.Sprintf(`
// Selective join: range windows on scanned columns (pushdown showcase).
.decl src(x: number, y: number)
.decl link(y: number, z: number)
.decl sel(x: number, y: number)
.decl out(x: number, z: number)
.input src
.input link
.output sel
.output out

sel(X, Y) :- src(X, Y), X >= %d, X < %d.
out(X, Z) :- sel(X, Y), link(Y, Z), Z >= %d, Z < %d.
`, xLo, xHi, zLo, zHi)

	facts := map[string][]tuple.Tuple{}
	for i := 0; i < size; i++ {
		facts["src"] = append(facts["src"], tuple.Tuple{
			uint64(rng.Intn(xSpace)), uint64(rng.Intn(nKeys)),
		})
	}
	for y := 0; y < nKeys; y++ {
		for k := 0; k < fanout; k++ {
			facts["link"] = append(facts["link"], tuple.Tuple{
				uint64(y), uint64(rng.Intn(zSpace)),
			})
		}
	}
	return DatalogWorkload{
		Name:    "selective",
		Source:  src,
		Facts:   facts,
		Outputs: []string{"sel", "out"},
	}
}

// FactCount returns the total number of input tuples of the workload.
func (w DatalogWorkload) FactCount() int {
	total := 0
	for _, fs := range w.Facts {
		total += len(fs)
	}
	return total
}
