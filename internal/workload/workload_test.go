package workload

import (
	"testing"

	"specbtree/internal/datalog"
	"specbtree/internal/tuple"
)

func TestPoints2DGridOrdered(t *testing.T) {
	pts := Points2D(10000)
	if len(pts) != 10000 {
		t.Fatalf("got %d points", len(pts))
	}
	seen := map[[2]uint64]bool{}
	for i, p := range pts {
		if i > 0 && tuple.Compare(pts[i-1], p) >= 0 {
			t.Fatalf("points not strictly ascending at %d", i)
		}
		seen[[2]uint64{p[0], p[1]}] = true
	}
	if len(seen) != len(pts) {
		t.Error("duplicate points")
	}
}

func TestPoints2DRoundsToGrid(t *testing.T) {
	pts := Points2D(10)
	if len(pts) != 9 { // 3x3
		t.Fatalf("Points2D(10) = %d points, want 9", len(pts))
	}
}

func TestPointsND(t *testing.T) {
	for _, tc := range []struct {
		n, arity, want int
	}{
		{1000, 2, 961},  // 31^2
		{1000, 3, 1000}, // 10^3
		{64, 1, 64},
		{100, 4, 81}, // 3^4
	} {
		pts := PointsND(tc.n, tc.arity)
		if len(pts) != tc.want {
			t.Errorf("PointsND(%d, %d) = %d points, want %d", tc.n, tc.arity, len(pts), tc.want)
			continue
		}
		for i := 1; i < len(pts); i++ {
			if len(pts[i]) != tc.arity {
				t.Fatalf("arity mismatch at %d", i)
			}
			if tuple.Compare(pts[i-1], pts[i]) >= 0 {
				t.Fatalf("PointsND(%d, %d) not strictly ascending at %d", tc.n, tc.arity, i)
			}
		}
	}
	// 2-D agrees with the original generator.
	a, b := Points2D(2500), PointsND(2500, 2)
	if len(a) != len(b) {
		t.Fatalf("Points2D %d vs PointsND %d", len(a), len(b))
	}
	for i := range a {
		if !tuple.Equal(a[i], b[i]) {
			t.Fatalf("generators disagree at %d", i)
		}
	}
}

func TestShuffleDeterministicPermutation(t *testing.T) {
	pts := Points2D(2500)
	a := Shuffle(pts, 1)
	b := Shuffle(pts, 1)
	c := Shuffle(pts, 2)
	if len(a) != len(pts) {
		t.Fatal("shuffle changed length")
	}
	sameAsInput, sameAB, sameAC := true, true, true
	for i := range a {
		if !tuple.Equal(a[i], pts[i]) {
			sameAsInput = false
		}
		if !tuple.Equal(a[i], b[i]) {
			sameAB = false
		}
		if !tuple.Equal(a[i], c[i]) {
			sameAC = false
		}
	}
	if sameAsInput {
		t.Error("shuffle is the identity")
	}
	if !sameAB {
		t.Error("same seed produced different shuffles")
	}
	if sameAC {
		t.Error("different seeds produced identical shuffles")
	}
	// Same multiset.
	seen := map[[2]uint64]bool{}
	for _, p := range a {
		seen[[2]uint64{p[0], p[1]}] = true
	}
	if len(seen) != len(pts) {
		t.Error("shuffle lost elements")
	}
}

func TestPartition(t *testing.T) {
	pts := Points2D(1000) // 31*31 = 961
	parts := Partition(pts, 7)
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != len(pts) {
		t.Fatalf("partition covers %d of %d", total, len(pts))
	}
	if len(parts) > 7 {
		t.Fatalf("got %d parts", len(parts))
	}
	if got := Partition(pts, 0); len(got) != 1 {
		t.Error("k=0 should yield one part")
	}
}

func TestScalars(t *testing.T) {
	s := Scalars(100)
	for i, v := range s {
		if len(v) != 1 || v[0] != uint64(i) {
			t.Fatalf("scalar %d = %v", i, v)
		}
	}
}

func TestRandomGraphDistinctEdges(t *testing.T) {
	es := RandomGraph(50, 400, 3)
	if len(es) != 400 {
		t.Fatalf("got %d edges", len(es))
	}
	seen := map[[2]uint64]bool{}
	for _, e := range es {
		k := [2]uint64{e[0], e[1]}
		if seen[k] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[k] = true
		if e[0] >= 50 || e[1] >= 50 {
			t.Fatalf("edge out of range %v", e)
		}
	}
}

func TestChainGraph(t *testing.T) {
	es := ChainGraph(5)
	if len(es) != 5 || es[4][0] != 4 || es[4][1] != 5 {
		t.Fatalf("chain = %v", es)
	}
}

func runWorkload(t *testing.T, w DatalogWorkload, workers int) *datalog.Engine {
	t.Helper()
	prog, err := datalog.Parse(w.Source)
	if err != nil {
		t.Fatalf("%s: program does not parse: %v", w.Name, err)
	}
	e, err := datalog.New(prog, datalog.Options{Workers: workers})
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	for rel, facts := range w.Facts {
		if err := e.AddFacts(rel, facts); err != nil {
			t.Fatalf("%s: facts for %s: %v", w.Name, rel, err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	return e
}

func TestPointsToWorkloadEvaluates(t *testing.T) {
	w := PointsTo(64, 1)
	if w.FactCount() == 0 {
		t.Fatal("no facts generated")
	}
	e := runWorkload(t, w, 2)
	if e.Count("vpt") == 0 {
		t.Error("vpt is empty")
	}
	s := e.Stats()
	// Insert-heavy shape: inserts should be a significant share of ops.
	if s.Inserts == 0 || s.ProducedTuples == 0 {
		t.Errorf("degenerate stats %+v", s)
	}
}

func TestPointsToDeterministic(t *testing.T) {
	a := runWorkload(t, PointsTo(48, 7), 1)
	b := runWorkload(t, PointsTo(48, 7), 4)
	if a.Count("vpt") != b.Count("vpt") || a.Count("heapPt") != b.Count("heapPt") {
		t.Errorf("parallel run diverged: vpt %d/%d heapPt %d/%d",
			a.Count("vpt"), b.Count("vpt"), a.Count("heapPt"), b.Count("heapPt"))
	}
}

func TestSecurityWorkloadEvaluates(t *testing.T) {
	w := Security(128, 1)
	e := runWorkload(t, w, 2)
	if e.Count("reach") == 0 {
		t.Error("reach is empty")
	}
	s := e.Stats()
	// Read-heavy shape: membership tests should outnumber inserts, as in
	// the paper's Table 2 for the EC2 analysis.
	if s.MembershipTests <= s.Inserts/2 {
		t.Errorf("expected read-heavy profile, got %d membership tests vs %d inserts",
			s.MembershipTests, s.Inserts)
	}
	// The dominant-relation property: reach holds most produced tuples.
	if e.Count("reach")*2 < int(s.ProducedTuples) {
		t.Errorf("reach (%d) is not the dominant relation of %d produced",
			e.Count("reach"), s.ProducedTuples)
	}
}

func TestSecurityDeterministic(t *testing.T) {
	a := runWorkload(t, Security(96, 9), 1)
	b := runWorkload(t, Security(96, 9), 4)
	for _, rel := range []string{"reach", "vulnerable", "atRisk"} {
		if a.Count(rel) != b.Count(rel) {
			t.Errorf("%s diverges: %d vs %d", rel, a.Count(rel), b.Count(rel))
		}
	}
}

func TestWorkloadSeedsVaryFacts(t *testing.T) {
	a, b := PointsTo(32, 1), PointsTo(32, 2)
	same := a.FactCount() == b.FactCount()
	if same {
		// Counts can coincide; compare content of one relation.
		eq := len(a.Facts["assign"]) == len(b.Facts["assign"])
		if eq {
			identical := true
			for i := range a.Facts["assign"] {
				if !tuple.Equal(a.Facts["assign"][i], b.Facts["assign"][i]) {
					identical = false
					break
				}
			}
			if identical {
				t.Error("different seeds produced identical assign facts")
			}
		}
	}
}
