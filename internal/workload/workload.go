// Package workload generates the benchmark inputs of the paper's
// evaluation (§4): 2-D point sets for the micro-benchmarks, scalar key
// sets for the concurrent-tree comparison, and synthetic Datalog workloads
// standing in for the proprietary Doop/DaCapo and Amazon EC2 inputs.
package workload

import (
	"math/rand"

	"specbtree/internal/tuple"
)

// Points2D generates n 2-D points forming a dense square grid of side
// ~sqrt(n), in lexicographic order — the "ordered" insertion workload of
// Figure 3/4. The paper's sizes are squares (1000², 2000², ...), so n is
// rounded down to a full grid.
func Points2D(n int) []tuple.Tuple {
	side := 1
	for (side+1)*(side+1) <= n {
		side++
	}
	pts := make([]tuple.Tuple, 0, side*side)
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			pts = append(pts, tuple.Tuple{uint64(x), uint64(y)})
		}
	}
	return pts
}

// PointsND generates ~n points of the given arity forming a dense
// hypercube grid, in lexicographic order — the paper's footnote notes
// that "results remain similar for other dimensions"; this generator
// makes that claim testable. n is rounded down to a full grid.
func PointsND(n, arity int) []tuple.Tuple {
	if arity <= 0 {
		panic("workload: arity must be positive")
	}
	side := 1
	for pow(side+1, arity) <= n {
		side++
	}
	total := pow(side, arity)
	pts := make([]tuple.Tuple, 0, total)
	cur := make([]int, arity)
	for {
		t := make(tuple.Tuple, arity)
		for i, v := range cur {
			t[i] = uint64(v)
		}
		pts = append(pts, t)
		// Odometer increment.
		i := arity - 1
		for ; i >= 0; i-- {
			cur[i]++
			if cur[i] < side {
				break
			}
			cur[i] = 0
		}
		if i < 0 {
			return pts
		}
	}
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		if r > 1<<40/b {
			return 1 << 40 // saturate well above any workload size
		}
		r *= b
	}
	return r
}

// Shuffle returns a seeded pseudo-random permutation of pts — the "random
// order" variant of the same workload. The input is not modified.
func Shuffle(pts []tuple.Tuple, seed int64) []tuple.Tuple {
	out := make([]tuple.Tuple, len(pts))
	copy(out, pts)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Partition splits pts into k contiguous chunks of near-equal size (the
// benchmark's per-thread partitioning, which under ordered insertion keeps
// most operations within one NUMA domain, cf. Figure 4c).
func Partition(pts []tuple.Tuple, k int) [][]tuple.Tuple {
	if k <= 0 {
		k = 1
	}
	parts := make([][]tuple.Tuple, 0, k)
	chunk := (len(pts) + k - 1) / k
	for lo := 0; lo < len(pts); lo += chunk {
		hi := lo + chunk
		if hi > len(pts) {
			hi = len(pts)
		}
		parts = append(parts, pts[lo:hi])
	}
	return parts
}

// Scalars generates n distinct 1-column tuples in ascending order — the
// 32-bit integer key workload of Table 3.
func Scalars(n int) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	for i := range out {
		out[i] = tuple.Tuple{uint64(i)}
	}
	return out
}

// RandomGraph generates m distinct edges over nodes 0..n-1, seeded.
func RandomGraph(n, m int, seed int64) []tuple.Tuple {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[[2]uint64]bool, m)
	out := make([]tuple.Tuple, 0, m)
	for len(out) < m && len(out) < n*n-1 {
		e := [2]uint64{uint64(rng.Intn(n)), uint64(rng.Intn(n))}
		if seen[e] {
			continue
		}
		seen[e] = true
		out = append(out, tuple.Tuple{e[0], e[1]})
	}
	return out
}

// ChainGraph generates the n-edge chain 0->1->...->n.
func ChainGraph(n int) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	for i := range out {
		out[i] = tuple.Tuple{uint64(i), uint64(i + 1)}
	}
	return out
}
