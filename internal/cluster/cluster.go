package cluster

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"specbtree/internal/serve"
)

// Options configures a Cluster.
type Options struct {
	// Shards is the number of shards (default 1).
	Shards int
	// Arity is the tuple width of the clustered relation (default 2).
	Arity int
	// LogDir, when non-empty, gives every shard a durable insert log at
	// LogDir/shard-<i>.log, replayed on start and restart. Empty runs
	// the cluster without persistence (crash-restart then loses data —
	// tests of the routing layer alone use this).
	LogDir string
	// Addrs optionally pins the shard listen addresses (len must equal
	// Shards); empty picks a free localhost port per shard.
	Addrs []string
	// InitialMap overrides the uniform starting shard map — workloads
	// whose keys occupy a small prefix of the axis partition it so the
	// shards actually share the data. Must be valid and reference at
	// most Shards shards.
	InitialMap *ShardMap
	// Serve is the per-shard serving configuration; Arity, Tree,
	// EpochLog, Sharded and ShardID are overwritten per shard.
	Serve serve.Options
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Arity <= 0 {
		o.Arity = 2
	}
	return o
}

// Cluster is the in-process control plane of a sharded relation: it
// owns the shard servers and their insert logs, publishes the shard
// map, and drives restarts (crash recovery) and range moves (online
// rebalancing). Production deployments run shards as separate
// processes (cmd/servebtree -shard-id); Cluster exists for tests, the
// differential check harness, and single-process serving.
type Cluster struct {
	opts Options
	src  *StaticMap

	mu        sync.Mutex
	shards    []*shardState
	followers map[int][]FollowerHandle

	// dir is the live address table routing clients re-resolve from;
	// promotion repoints entries at promoted followers.
	dir *Directory

	// moveMu serialises rebalances: at most one range moves at a time
	// (the map's single-Moving invariant).
	moveMu sync.Mutex
}

// shardState is one shard's runtime: its server, its log, and the
// address it is pinned to across restarts.
type shardState struct {
	addr string
	srv  *serve.Server
	log  *ShardLog
	rec  *Recovery // what the last (re)start replayed
	// promoted marks a shard whose leadership moved to a promoted
	// follower; the old leader's address must never be rebound
	// (split-brain fence — see Promote).
	promoted bool
}

// StartCluster opens every shard's log (replaying any prior state),
// starts the shard servers, and publishes the uniform shard map. The
// returned cluster is serving.
func StartCluster(opts Options) (*Cluster, error) {
	opts = opts.withDefaults()
	if opts.Addrs != nil && len(opts.Addrs) != opts.Shards {
		return nil, fmt.Errorf("cluster: %d addresses for %d shards", len(opts.Addrs), opts.Shards)
	}
	m := opts.InitialMap
	if m == nil {
		m = UniformMap(opts.Shards)
	} else {
		if err := m.Validate(); err != nil {
			return nil, err
		}
		if n := m.Shards(); n > opts.Shards {
			return nil, fmt.Errorf("cluster: initial map references %d shards, cluster has %d", n, opts.Shards)
		}
	}
	c := &Cluster{
		opts:      opts,
		src:       NewStaticMap(m),
		shards:    make([]*shardState, opts.Shards),
		followers: make(map[int][]FollowerHandle),
	}
	for i := range c.shards {
		addr := "127.0.0.1:0"
		if opts.Addrs != nil {
			addr = opts.Addrs[i]
		}
		st, err := c.startShard(i, addr)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.shards[i] = st
	}
	c.dir = NewDirectory(c.Addrs())
	return c, nil
}

// startShard recovers shard i's log (when persistence is on) and
// starts its server on addr.
func (c *Cluster) startShard(i int, addr string) (*shardState, error) {
	st := &shardState{}
	if c.opts.LogDir != "" {
		log, rec, err := OpenShardLog(c.logPath(i), c.opts.Arity)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d log: %w", i, err)
		}
		st.log, st.rec = log, rec
	}
	sopts := c.opts.Serve
	sopts.Arity = c.opts.Arity
	sopts.Tree = nil
	sopts.Sharded = true
	sopts.ShardID = uint32(i)
	if st.log != nil {
		sopts.EpochLog = st.log
		sopts.Tree = BuildTree(st.rec.Tuples, c.opts.Arity)
		// Every logged shard is a replication source: followers may
		// subscribe to its committed epoch stream.
		sopts.Replica = st.log.ReplicaSource()
	}
	srv, err := serve.Start(addr, sopts)
	if err != nil {
		if st.log != nil {
			st.log.Close()
		}
		return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
	}
	st.srv = srv
	st.addr = srv.Addr()
	return st, nil
}

// logPath returns shard i's insert log path.
func (c *Cluster) logPath(i int) string {
	return filepath.Join(c.opts.LogDir, fmt.Sprintf("shard-%d.log", i))
}

// Map returns the cluster's map source for routing clients.
func (c *Cluster) Map() MapSource { return c.src }

// Addrs returns the shard address table (addrs[i] serves shard i).
// Addresses are stable across restarts.
func (c *Cluster) Addrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.shards))
	for i, st := range c.shards {
		out[i] = st.addr
	}
	return out
}

// Shard returns shard i's server — the control-plane surface
// (Barrier, Apply, SnapshotNow) the rebalancer and tests use.
func (c *Cluster) Shard(i int) *serve.Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shards[i].srv
}

// Recovered returns what shard i's last (re)start replayed from its
// log, or nil when the cluster runs without persistence.
func (c *Cluster) Recovered(i int) *Recovery {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shards[i].rec
}

// Client dials a routing client over the cluster: addresses re-resolve
// through the cluster's directory (so a promotion repoints it without
// a redial storm), and — unless the caller pinned its own table — the
// followers attached so far become its bounded-staleness read
// offload targets (ClientOptions.MaxStaleEpochs).
func (c *Cluster) Client(opts ClientOptions) (*Client, error) {
	opts.Arity = c.opts.Arity
	opts.Directory = c.dir
	if opts.Followers == nil {
		opts.Followers = c.FollowerAddrs()
	}
	return NewClient(c.src, c.dir.Addrs(), opts)
}

// KillShard terminates shard i abruptly — connections dropped, no
// drain, the log file abandoned mid-stream — simulating a process
// kill. The shard's address stays reserved for RestartShard. Requires
// persistence (a kill without a log would silently lose data).
func (c *Cluster) KillShard(i int) error {
	c.mu.Lock()
	st := c.shards[i]
	c.mu.Unlock()
	if st.log == nil {
		return fmt.Errorf("cluster: shard %d has no log; refusing a lossy kill", i)
	}
	if err := st.srv.Close(); err != nil {
		return err
	}
	st.log.Close() // release the fd; recovery reopens from disk
	return nil
}

// RestartShard recovers shard i from its insert log and serves it
// again on the same address. The bind is retried briefly: the killed
// listener's port can linger a moment after Close.
func (c *Cluster) RestartShard(i int) error {
	c.mu.Lock()
	old := c.shards[i]
	promoted := old.promoted
	c.mu.Unlock()
	if promoted {
		return fmt.Errorf("cluster: shard %d leadership moved to a promoted follower; restarting the old leader would split the brain", i)
	}
	var st *shardState
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err = c.startShard(i, old.addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.mu.Lock()
	c.shards[i] = st
	c.mu.Unlock()
	return nil
}

// Close shuts every shard down (abruptly — use the serve layer's
// drain directly for graceful per-shard shutdown).
func (c *Cluster) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, st := range c.shards {
		if st == nil {
			continue
		}
		if st.srv != nil {
			if err := st.srv.Close(); err != nil && first == nil {
				first = err
			}
		}
		if st.log != nil {
			if err := st.log.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
