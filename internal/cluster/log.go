// Package cluster shards one relation across N relation servers
// (internal/serve), each backed by the paper's concurrent specialised
// B-tree. A ShardMap partitions the key space by range on the leading
// tuple column; a shard-aware Client routes inserts and point reads to
// the owning shard and fans range scans across shards with an ordered
// k-way merge. Each shard persists a per-epoch append-only insert log
// (this file) replayed through core.BuildFromSorted on restart, and
// ranges move between shards online via core.Snapshot handoff
// (rebalance.go). DESIGN.md §15 specifies the protocols.
//
// The log exploits the paper's insert-only contract: a relation is
// reconstructed exactly by re-inserting every acknowledged tuple, so
// durability is one append-only file of insert records — no undo, no
// page images, no checkpointing beyond the log itself.
package cluster

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"

	"specbtree/internal/core"
	"specbtree/internal/obs"
	"specbtree/internal/tuple"
)

// Log file format (DESIGN.md §15):
//
//	file   := record*
//	record := bodyLen:u32 body crc:u32     (big-endian, crc32-IEEE of body)
//	body   := kind:u8 seq:u64 payload
//
// Record kinds:
//
//	recInsert (1): payload = count:u32 (count × arity) u64 words —
//	    the tuples of one insert batch, in batch order.
//	recCommit (2): no payload — ends epoch seq; every record of an
//	    epoch carries the same seq, and consecutive epochs are
//	    numbered 1, 2, 3, … with no gaps.
//	recFence  (3): payload = lo:u64 hi:u64 dst:u32 — the leading-column
//	    range [lo, hi] was handed to shard dst at this point; replay
//	    drops earlier committed tuples inside it (the destination
//	    logged them durably before the fence was written).
//	recMark   (4): payload = mark:u64 — the replication watermark: this
//	    epoch applied leader-log epoch `mark`. Written only by follower
//	    logs (LogReplicatedEpoch); replay surfaces the highest committed
//	    mark so a restarted follower resumes its stream after it.
//
// One write epoch is composed in memory — insert record(s) followed by
// a commit marker — then written with a single Write and fsynced
// BEFORE the server delivers the epoch's acknowledgements, so the set
// of acknowledged tuples is always a prefix of the committed log.
// Replay applies committed epochs only: an incomplete trailing record
// or a trailing epoch with no commit marker is a crash artifact past
// the last durable flush, never acknowledged, and is truncated
// silently; a complete record that fails its checksum, carries an
// unknown kind, an out-of-sequence epoch number, or an implausible
// length is ErrLogCorrupt.
const (
	recInsert = 1
	recCommit = 2
	recFence  = 3
	recMark   = 4

	// maxRecordBody bounds a single record body (64 MiB). A length
	// field above it cannot come from this writer and marks the record
	// complete-but-corrupt rather than torn.
	maxRecordBody = 1 << 26
)

// ErrLogCorrupt is the pinned error for a shard insert log whose
// committed prefix is damaged: a checksum mismatch, an unknown record
// kind, an out-of-sequence epoch number, or an implausible record
// length. Torn trailing bytes from a crash are NOT corruption — they
// are truncated silently, because the flush-before-ack protocol
// guarantees nothing torn was ever acknowledged.
var ErrLogCorrupt = errors.New("cluster: insert log corrupt")

// ErrCrashed is returned by ShardLog operations after the log has been
// poisoned — by an injected crash (logcrash builds) or by an earlier
// flush that failed with a real write or sync error. Either way the
// file's tail state is untrustworthy, so the log refuses further
// appends until reopened (replay truncates any torn tail).
var ErrCrashed = errors.New("cluster: log writer crashed")

// ShardLog is the append-only per-epoch insert log of one shard. It
// implements serve.EpochLog: the shard's scheduler calls LogEpoch with
// the applied batches of each write epoch after application and before
// acknowledgement delivery. Appends are mutex-serialised so the
// rebalance control plane can interleave AppendFence with the
// scheduler's epoch flushes.
type ShardLog struct {
	arity int
	path  string

	mu      sync.Mutex
	f       *os.File
	nextSeq uint64
	buf     []byte
	crashed bool
	// pulse is closed and replaced after every successful flush, so
	// tailing streamers can block on Pulse instead of polling.
	pulse chan struct{}
}

// Recovery describes what OpenShardLog replayed from an existing log.
type Recovery struct {
	// Tuples are the committed tuples in log order, fence-dropped
	// ranges excluded; duplicates possible (re-inserts are logged as
	// acknowledged). Build a tree with BuildTree.
	Tuples []tuple.Tuple
	// Epochs is the number of committed epochs replayed.
	Epochs uint64
	// TornTail reports that trailing bytes past the last committed
	// epoch were discarded (crash artifact, never acknowledged).
	TornTail bool
	// Dropped is the number of committed tuples discarded because a
	// later fence moved their range to another shard.
	Dropped int
	// Watermark is the highest replication watermark (recMark) among
	// the committed epochs — the last leader-log epoch this follower
	// log applied. Zero for leader logs, which carry no marks.
	Watermark uint64
}

// OpenShardLog opens (or creates) the insert log at path for a shard
// of the given arity, replays its committed prefix, truncates any
// trailing crash artifact, and returns the log positioned to append
// the next epoch. The returned Recovery holds the replayed tuples.
func OpenShardLog(path string, arity int) (*ShardLog, *Recovery, error) {
	if arity < 1 {
		return nil, nil, fmt.Errorf("cluster: arity %d out of range", arity)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	rec, validLen, err := replay(data, arity)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if validLen < int64(len(data)) {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	obs.Add(obs.ClusterLogReplayTuples, uint64(len(rec.Tuples)))
	if rec.TornTail {
		obs.Inc(obs.ClusterLogTornTails)
	}
	l := &ShardLog{arity: arity, f: f, path: path, nextSeq: rec.Epochs + 1, pulse: make(chan struct{})}
	return l, rec, nil
}

// Path returns the log's file path.
func (l *ShardLog) Path() string { return l.path }

// CommittedSeq returns the sequence number of the last durably
// committed epoch (0 before the first).
func (l *ShardLog) CommittedSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// Pulse returns a channel closed at the next successful epoch flush.
// Tailing streamers block on it instead of polling; after it fires,
// call Pulse again for the next edge.
func (l *ShardLog) Pulse() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pulse
}

// beat wakes Pulse waiters after a successful flush. Caller holds mu.
func (l *ShardLog) beat() {
	close(l.pulse)
	l.pulse = make(chan struct{})
}

// Close closes the underlying file. The log must not be used after.
func (l *ShardLog) Close() error { return l.f.Close() }

// LogEpoch durably appends one write epoch — the applied insert
// batches followed by a commit marker — as a single write + fsync.
// The serving layer calls it after batch application and before
// acknowledgement delivery (serve.EpochLog); an error fails the
// epoch's acknowledgements.
func (l *ShardLog) LogEpoch(batches [][]tuple.Tuple) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return ErrCrashed
	}
	n := 0
	for _, b := range batches {
		n += len(b)
	}
	if n == 0 {
		return nil // empty epoch (barrier): nothing to make durable
	}
	start := obs.Clock()
	l.buf = l.buf[:0]
	records := uint64(0)
	for _, b := range batches {
		if len(b) == 0 {
			continue
		}
		l.buf = appendInsertRecord(l.buf, l.nextSeq, b)
		records++
	}
	l.buf = appendRecord(l.buf, recCommit, l.nextSeq, nil)
	records++
	if err := l.flush(crashSiteEpoch); err != nil {
		return err
	}
	obs.Add(obs.ClusterLogRecords, records)
	obs.Add(obs.ClusterLogBytes, uint64(len(l.buf)))
	obs.Observe(obs.HistClusterLogFlushNanos, uint64(obs.Clock()-start))
	l.nextSeq++
	l.beat()
	return nil
}

// LogReplicatedEpoch durably appends one applied replication epoch to a
// follower's own log: the epoch's insert batches and fences exactly as
// streamed from the leader, plus a watermark record carrying the leader
// epoch number, all under one commit marker and one flush. On restart,
// replay reconstructs the follower tree and Recovery.Watermark tells the
// follower where to resume its subscription; re-applying an epoch the
// leader also streams again is idempotent (set inserts, re-fenced empty
// ranges).
func (l *ShardLog) LogReplicatedEpoch(batches [][]tuple.Tuple, fences []Fence, mark uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return ErrCrashed
	}
	start := obs.Clock()
	l.buf = l.buf[:0]
	records := uint64(0)
	for _, b := range batches {
		if len(b) == 0 {
			continue
		}
		l.buf = appendInsertRecord(l.buf, l.nextSeq, b)
		records++
	}
	for _, fc := range fences {
		if fc.Lo > fc.Hi {
			return fmt.Errorf("cluster: fence range [%d, %d] inverted", fc.Lo, fc.Hi)
		}
		payload := make([]byte, 0, 20)
		payload = be64(payload, fc.Lo)
		payload = be64(payload, fc.Hi)
		payload = be32(payload, fc.Dst)
		l.buf = appendRecord(l.buf, recFence, l.nextSeq, payload)
		records++
	}
	if records == 0 && mark == 0 {
		return nil // nothing applied, nothing to make durable
	}
	if mark > 0 {
		l.buf = appendRecord(l.buf, recMark, l.nextSeq, be64(nil, mark))
		records++
	}
	l.buf = appendRecord(l.buf, recCommit, l.nextSeq, nil)
	records++
	if err := l.flush(crashSiteEpoch); err != nil {
		return err
	}
	obs.Add(obs.ClusterLogRecords, records)
	obs.Add(obs.ClusterLogBytes, uint64(len(l.buf)))
	obs.Observe(obs.HistClusterLogFlushNanos, uint64(obs.Clock()-start))
	l.nextSeq++
	l.beat()
	return nil
}

// AppendFence durably appends a fence epoch recording that the
// leading-column range [lo, hi] now lives on shard dst: on replay,
// committed tuples inside the range from earlier epochs are dropped
// (the destination shard logged them before this fence was written).
func (l *ShardLog) AppendFence(lo, hi uint64, dst uint32) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return ErrCrashed
	}
	if lo > hi {
		return fmt.Errorf("cluster: fence range [%d, %d] inverted", lo, hi)
	}
	start := obs.Clock()
	payload := make([]byte, 0, 20)
	payload = be64(payload, lo)
	payload = be64(payload, hi)
	payload = be32(payload, dst)
	l.buf = l.buf[:0]
	l.buf = appendRecord(l.buf, recFence, l.nextSeq, payload)
	l.buf = appendRecord(l.buf, recCommit, l.nextSeq, nil)
	if err := l.flush(crashSiteFence); err != nil {
		return err
	}
	obs.Add(obs.ClusterLogRecords, 2)
	obs.Add(obs.ClusterLogBytes, uint64(len(l.buf)))
	obs.Observe(obs.HistClusterLogFlushNanos, uint64(obs.Clock()-start))
	l.nextSeq++
	l.beat()
	return nil
}

// flush writes the composed epoch buffer and fsyncs. In logcrash
// builds an installed injector may cut the write short at the given
// site, simulating a process kill mid-flush; the log then refuses
// further use until reopened. A real write or sync error poisons the
// log the same way: the tail may be torn (a short write) or of unknown
// durability (a failed sync), and appending after it would frame the
// next epoch into garbage — turning a recoverable torn tail into
// ErrLogCorrupt on replay. Only a reopen, which replays and truncates,
// may append again.
func (l *ShardLog) flush(site CrashSite) error {
	b := l.buf
	if CrashInjecting {
		if cut, ok := crashCut(site, len(b)); ok {
			if cut > 0 {
				l.f.Write(b[:cut])
				l.f.Sync()
			}
			l.crashed = true
			return ErrCrashed
		}
	}
	if _, err := l.f.Write(b); err != nil {
		l.crashed = true
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.crashed = true
		return err
	}
	return nil
}

// appendInsertRecord frames one insert batch as a recInsert record.
func appendInsertRecord(buf []byte, seq uint64, batch []tuple.Tuple) []byte {
	payload := make([]byte, 0, 4+len(batch)*len(batch[0])*8)
	payload = be32(payload, uint32(len(batch)))
	for _, t := range batch {
		for _, w := range t {
			payload = be64(payload, w)
		}
	}
	return appendRecord(buf, recInsert, seq, payload)
}

// appendRecord frames one record: bodyLen, body (kind + seq + payload),
// crc32 of the body.
func appendRecord(buf []byte, kind byte, seq uint64, payload []byte) []byte {
	bodyLen := 1 + 8 + len(payload)
	buf = be32(buf, uint32(bodyLen))
	bodyStart := len(buf)
	buf = append(buf, kind)
	buf = be64(buf, seq)
	buf = append(buf, payload...)
	return be32(buf, crc32.ChecksumIEEE(buf[bodyStart:]))
}

func be32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func be64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func rd32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func rd64(b []byte) uint64 {
	return uint64(rd32(b))<<32 | uint64(rd32(b[4:]))
}

// Fence is one replayed recFence: committed tuples with leading column
// in [Lo, Hi] from epochs before it belong to shard Dst. Followers
// receiving a fence in their epoch stream retire the range from their
// tree (the destination shard's followers stream it independently).
type Fence struct {
	// Lo and Hi bound the moved leading-column range, inclusive.
	Lo, Hi uint64
	// Dst is the shard the range was handed to.
	Dst uint32
}

// Epoch is one committed log epoch as decoded by the shared decode path
// (replay and LogTailer alike): the insert batches and fences in log
// order, plus the replication watermark if the epoch carried one.
type Epoch struct {
	// Seq is the epoch's sequence number (consecutive from 1).
	Seq uint64
	// Batches holds one tuple slice per insert record, in record order.
	Batches [][]tuple.Tuple
	// Fences holds the epoch's fence records, applied at commit to all
	// tuples committed so far (this epoch's batches included).
	Fences []Fence
	// Mark is the epoch's replication watermark (0 if none): the
	// leader-log epoch a follower applied when it logged this epoch.
	Mark uint64
}

// decodeEpoch decodes one committed epoch from the front of data. It
// returns (nil, 0, nil) when data holds no complete committed epoch yet
// — an incomplete record or a missing commit marker, i.e. a (possibly
// still in-flight) torn tail the caller may retry after more bytes
// arrive. Complete-but-invalid records are ErrLogCorrupt. base is the
// file offset of data[0], used only in error messages. This is the one
// decode path: crash-recovery replay and the replication tailer both
// call it.
func decodeEpoch(data []byte, base int64, wantSeq uint64, arity int) (*Epoch, int, error) {
	ep := &Epoch{Seq: wantSeq}
	off := 0
	for {
		if len(data)-off < 4 {
			return nil, 0, nil
		}
		bodyLen := int(rd32(data[off:]))
		if bodyLen < 9 || bodyLen > maxRecordBody {
			return nil, 0, fmt.Errorf("%w: record at offset %d has implausible length %d", ErrLogCorrupt, base+int64(off), bodyLen)
		}
		if len(data)-off < 4+bodyLen+4 {
			return nil, 0, nil
		}
		body := data[off+4 : off+4+bodyLen]
		wantCRC := rd32(data[off+4+bodyLen:])
		if crc32.ChecksumIEEE(body) != wantCRC {
			return nil, 0, fmt.Errorf("%w: record at offset %d fails its checksum", ErrLogCorrupt, base+int64(off))
		}
		kind, recSeq, payload := body[0], rd64(body[1:]), body[9:]
		if recSeq != wantSeq {
			// Covers epoch 0 too: the writer numbers epochs from 1, so
			// wantSeq is always >= 1 and a record claiming 0 cannot match.
			return nil, 0, fmt.Errorf("%w: record at offset %d carries epoch %d, want %d", ErrLogCorrupt, base+int64(off), recSeq, wantSeq)
		}
		switch kind {
		case recInsert:
			if len(payload) < 4 {
				return nil, 0, fmt.Errorf("%w: insert record at offset %d truncated", ErrLogCorrupt, base+int64(off))
			}
			count := int(rd32(payload))
			payload = payload[4:]
			if len(payload) != count*arity*8 {
				return nil, 0, fmt.Errorf("%w: insert record at offset %d declares %d tuples but carries %d bytes", ErrLogCorrupt, base+int64(off), count, len(payload))
			}
			batch := make([]tuple.Tuple, 0, count)
			for i := 0; i < count; i++ {
				t := make(tuple.Tuple, arity)
				for j := 0; j < arity; j++ {
					t[j] = rd64(payload[(i*arity+j)*8:])
				}
				batch = append(batch, t)
			}
			ep.Batches = append(ep.Batches, batch)
		case recFence:
			if len(payload) != 20 {
				return nil, 0, fmt.Errorf("%w: fence record at offset %d malformed", ErrLogCorrupt, base+int64(off))
			}
			ep.Fences = append(ep.Fences, Fence{Lo: rd64(payload), Hi: rd64(payload[8:]), Dst: rd32(payload[16:])})
		case recMark:
			if len(payload) != 8 {
				return nil, 0, fmt.Errorf("%w: mark record at offset %d malformed", ErrLogCorrupt, base+int64(off))
			}
			ep.Mark = rd64(payload)
		case recCommit:
			if len(payload) != 0 {
				return nil, 0, fmt.Errorf("%w: commit marker at offset %d carries payload", ErrLogCorrupt, base+int64(off))
			}
			return ep, off + 4 + bodyLen + 4, nil
		default:
			return nil, 0, fmt.Errorf("%w: record at offset %d has unknown kind %d", ErrLogCorrupt, base+int64(off), kind)
		}
		off += 4 + bodyLen + 4
	}
}

// replay decodes data, applying the committed prefix, and returns the
// recovery plus the byte length of the valid prefix (the truncation
// point for trailing crash artifacts). Complete-but-invalid records
// inside the file are ErrLogCorrupt; an incomplete trailing record or
// uncommitted trailing epoch is silently dropped.
func replay(data []byte, arity int) (*Recovery, int64, error) {
	rec := &Recovery{}
	var committed []tuple.Tuple
	off := 0
	for off < len(data) {
		ep, n, err := decodeEpoch(data[off:], int64(off), rec.Epochs+1, arity)
		if err != nil {
			return nil, 0, err
		}
		if ep == nil {
			// Trailing bytes with no commit marker: the flush was cut
			// mid-epoch, nothing in it was acked.
			rec.TornTail = true
			break
		}
		for _, b := range ep.Batches {
			committed = append(committed, b...)
		}
		for _, fc := range ep.Fences {
			kept := committed[:0]
			for _, t := range committed {
				if t[0] >= fc.Lo && t[0] <= fc.Hi {
					rec.Dropped++
					continue
				}
				kept = append(kept, t)
			}
			committed = kept
		}
		if ep.Mark > rec.Watermark {
			rec.Watermark = ep.Mark
		}
		rec.Epochs++
		off += n
	}
	rec.Tuples = committed
	return rec, int64(off), nil
}

// BuildTree sorts and deduplicates the replayed tuples and bulk-loads
// them into a fresh tree via core.BuildFromSorted — the recovery path
// the paper's insert-only contract makes exact: re-inserting every
// acknowledged tuple reconstructs the relation.
func BuildTree(tuples []tuple.Tuple, arity int) *core.Tree {
	t := core.New(arity)
	if len(tuples) == 0 {
		return t
	}
	sorted := make([]tuple.Tuple, len(tuples))
	copy(sorted, tuples)
	sort.Slice(sorted, func(i, j int) bool { return tuple.Less(sorted[i], sorted[j]) })
	dedup := sorted[:1]
	for _, tt := range sorted[1:] {
		if !tuple.Equal(tt, dedup[len(dedup)-1]) {
			dedup = append(dedup, tt)
		}
	}
	t.BuildFromSorted(dedup)
	return t
}
