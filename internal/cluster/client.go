package cluster

import (
	"fmt"
	"sync"
	"time"

	"specbtree/internal/obs"
	"specbtree/internal/serve"
	"specbtree/internal/tuple"
)

// ClientOptions configures a routing Client.
type ClientOptions struct {
	// Arity is the tuple width of the clustered relation (default 2).
	Arity int
	// Timeout and DialTimeout are passed through to every per-shard
	// connection (serve.ClientOptions defaults apply).
	Timeout     time.Duration
	DialTimeout time.Duration
	// PageLimit caps the tuples fetched per shard scan page during
	// fan-out merges (0 = the server's cap). Tests shrink it to force
	// resumption across pages and shard boundaries.
	PageLimit int
	// RetryBackoff is slept between resubmissions of an insert batch
	// the shard answered RETRY to (default 200µs).
	RetryBackoff time.Duration
	// RetryFor bounds the total time one insert chunk keeps absorbing
	// RETRY backpressure before the RETRY surfaces as an error
	// (default 5s) — a persistently stuck shard must not hang Insert
	// forever.
	RetryFor time.Duration
	// MaxBatch caps the tuples per wire insert frame; Insert chunks
	// larger per-shard sub-batches to it (default 4096, the serve
	// layer's own default cap — lower it when the shards run with a
	// smaller one).
	MaxBatch int
	// Directory, when non-nil, is the live shard address table: every
	// operation re-resolves its shard's address through it, so a
	// promotion (Cluster.Promote) repoints this client without a
	// restart. Nil pins the NewClient address table forever.
	Directory *Directory
	// Followers[i] lists shard i's read-replica addresses. When a shard
	// has followers, its point reads and scan pages are offloaded to
	// one, under the staleness bound below: each follower read carries
	// the follower's replication stamp, and an answer from an unhealthy
	// or too-stale follower is discarded and re-asked of the leader.
	Followers [][]string
	// MaxStaleEpochs bounds how many committed leader epochs a follower
	// may trail by and still answer reads (0 = it must be fully caught
	// up). Only meaningful with Followers set; reads offloaded under
	// this bound trade read-your-writes for leader offload, by exactly
	// this many epochs at most.
	MaxStaleEpochs uint64
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.Arity <= 0 {
		o.Arity = 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 200 * time.Microsecond
	}
	if o.RetryFor <= 0 {
		o.RetryFor = 5 * time.Second
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 4096 // serve.Options' default MaxBatch
	}
	return o
}

// Client routes operations over a sharded relation: inserts and point
// reads go to the shard owning the tuple's leading column per the
// current ShardMap, range scans fan out across the owning shards and
// are stitched back into one globally sorted stream by an ordered
// merge. Safe for concurrent use; per-shard connections are lazily
// dialed, shared, and re-established on demand (serve.Client's
// reconnection), each handshake pinned to its shard number so a stale
// address can never silently reach the wrong shard.
type Client struct {
	src   MapSource
	addrs []string
	opts  ClientOptions
	dir   *Directory

	mu        sync.Mutex
	conns     map[int]*serve.Client
	connAddrs map[int]string // address each leader conn was dialed to
	fconns    map[int]*serve.Client
	fFailed   map[int]time.Time // last follower dial failure, for backoff
}

// NewClient builds a routing client over the given map source and
// shard address table (addrs[i] serves shard i). No connection is made
// until the first operation.
func NewClient(src MapSource, addrs []string, opts ClientOptions) (*Client, error) {
	opts = opts.withDefaults()
	m := src.Map()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if n := m.Shards(); n > len(addrs) {
		return nil, fmt.Errorf("cluster: map references %d shards, %d addresses given", n, len(addrs))
	}
	dir := opts.Directory
	if dir == nil {
		dir = NewDirectory(addrs)
	}
	return &Client{
		src: src, addrs: addrs, opts: opts, dir: dir,
		conns:     make(map[int]*serve.Client),
		connAddrs: make(map[int]string),
		fconns:    make(map[int]*serve.Client),
		fFailed:   make(map[int]time.Time),
	}, nil
}

// Arity returns the tuple width of the clustered relation.
func (c *Client) Arity() int { return c.opts.Arity }

// Close tears down every per-shard connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for shard, cl := range c.conns {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
		delete(c.conns, shard)
	}
	for shard, cl := range c.fconns {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
		delete(c.fconns, shard)
	}
	return first
}

// shard returns the connection to one shard's leader, dialing lazily
// and re-resolving through the directory: when a promotion repointed
// the shard's address, the stale connection is dropped and the new
// leader dialed — the shard-verified hello makes a wrong address fail
// loudly rather than answer.
func (c *Client) shard(i int) (*serve.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.addrs) {
		return nil, fmt.Errorf("cluster: no address for shard %d", i)
	}
	addr := c.dir.Addr(i)
	if addr == "" {
		addr = c.addrs[i]
	}
	if cl, ok := c.conns[i]; ok {
		if c.connAddrs[i] == addr {
			return cl, nil
		}
		cl.Close()
		delete(c.conns, i)
	}
	cl, err := serve.Dial(addr, serve.ClientOptions{
		Arity:       c.opts.Arity,
		Timeout:     c.opts.Timeout,
		DialTimeout: c.opts.DialTimeout,
		ExpectShard: true,
		ShardID:     uint32(i),
	})
	if err != nil {
		return nil, err
	}
	c.conns[i] = cl
	c.connAddrs[i] = addr
	return cl, nil
}

// followerDialBackoff is how long a failed follower dial suppresses
// redial attempts (reads fall back to the leader meanwhile).
const followerDialBackoff = time.Second

// follower returns a connection to one of shard i's read replicas, or
// nil when the shard has none configured or none is reachable right
// now — the caller then reads from the leader.
func (c *Client) follower(i int) *serve.Client {
	if i < 0 || i >= len(c.opts.Followers) || len(c.opts.Followers[i]) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cl, ok := c.fconns[i]; ok {
		return cl
	}
	if t, ok := c.fFailed[i]; ok && time.Since(t) < followerDialBackoff {
		return nil
	}
	for _, addr := range c.opts.Followers[i] {
		cl, err := serve.Dial(addr, serve.ClientOptions{
			Arity:       c.opts.Arity,
			Timeout:     c.opts.Timeout,
			DialTimeout: c.opts.DialTimeout,
			ExpectShard: true,
			ShardID:     uint32(i),
		})
		if err == nil {
			delete(c.fFailed, i)
			c.fconns[i] = cl
			return cl
		}
	}
	c.fFailed[i] = time.Now()
	return nil
}

// dropFollower discards shard i's follower connection after a failed
// read, arming the dial backoff so the next reads go to the leader.
func (c *Client) dropFollower(i int, cl *serve.Client) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fconns[i] == cl {
		cl.Close()
		delete(c.fconns, i)
		c.fFailed[i] = time.Now()
	}
}

// fresh decides whether a follower's stamp admits its answer: the
// replication stream must be healthy and the follower may trail the
// committed head by at most MaxStaleEpochs.
func (c *Client) fresh(st serve.Stamp) bool {
	return st.Healthy && st.Head >= st.Applied && st.Head-st.Applied <= c.opts.MaxStaleEpochs
}

// checkArity validates one argument tuple's width.
func (c *Client) checkArity(t tuple.Tuple) error {
	if len(t) != c.opts.Arity {
		return fmt.Errorf("cluster: arity-%d tuple for arity-%d relation", len(t), c.opts.Arity)
	}
	return nil
}

// Insert adds the batch to the clustered relation, splitting it by
// routing shard, and returns how many tuples were new. Shard-level
// RETRY backpressure is absorbed here (bounded backoff and resubmit —
// set inserts are idempotent). If the shard map changes while a
// sub-batch is in flight, tuples whose route moved are resubmitted to
// their new shard: an insert acknowledged by a shard that lost the
// range mid-flight would otherwise land in the leftover region scans
// never read (the freshness count of such a resubmitted tuple may be
// double-reported in that rare window; visibility is never lost).
func (c *Client) Insert(batch []tuple.Tuple) (fresh int, err error) {
	for _, t := range batch {
		if err := c.checkArity(t); err != nil {
			return 0, err
		}
	}
	pendingMap := c.src.Map()
	pending := batch
	for len(pending) > 0 {
		m := pendingMap
		byShard := make(map[int][]tuple.Tuple)
		for _, t := range pending {
			s := m.RouteInsert(t[0])
			byShard[s] = append(byShard[s], t)
		}
		pending = nil
		for s, sub := range byShard {
			n, err := c.insertShard(s, sub)
			if err != nil {
				return fresh, err
			}
			fresh += n
			// Revalidate against the map as of after the ack: tuples
			// whose route changed mid-flight are resent to the new owner.
			now := c.src.Map()
			if now.Version != m.Version {
				for _, t := range sub {
					if now.RouteInsert(t[0]) != s {
						pending = append(pending, t)
					}
				}
				pendingMap = now
			}
		}
	}
	return fresh, nil
}

// insertShard submits one sub-batch to one shard, chunked to the wire
// insert cap (a single-shard share larger than the server's MaxBatch
// would otherwise be refused as a protocol error), absorbing RETRY
// per chunk.
func (c *Client) insertShard(shard int, sub []tuple.Tuple) (int, error) {
	cl, err := c.shard(shard)
	if err != nil {
		return 0, err
	}
	fresh := 0
	for off := 0; off < len(sub); off += c.opts.MaxBatch {
		end := off + c.opts.MaxBatch
		if end > len(sub) {
			end = len(sub)
		}
		n, err := c.insertChunk(cl, shard, sub[off:end])
		if err != nil {
			return fresh, err
		}
		fresh += n
	}
	return fresh, nil
}

// insertChunk submits one wire-sized chunk, absorbing RETRY
// backpressure with bounded backoff: RetryBackoff between attempts,
// RetryFor in total before the RETRY surfaces (errors.Is-able as
// serve.ErrRetry).
func (c *Client) insertChunk(cl *serve.Client, shard int, chunk []tuple.Tuple) (int, error) {
	var deadline time.Time
	for {
		n, err := cl.Insert(chunk)
		if err == nil {
			return n, nil
		}
		if err != serve.ErrRetry {
			return 0, fmt.Errorf("cluster: shard %d: %w", shard, err)
		}
		now := time.Now()
		if deadline.IsZero() {
			deadline = now.Add(c.opts.RetryFor)
		} else if now.After(deadline) {
			return 0, fmt.Errorf("cluster: shard %d: backpressured for %v: %w", shard, c.opts.RetryFor, err)
		}
		time.Sleep(c.opts.RetryBackoff)
	}
}

// Contains reports whether t is in the clustered relation, consulting
// both sides of an in-flight move when t's range is moving. A miss is
// trusted only if the map generation did not change while probing: a
// move finalizing (and its source restarting) mid-probe could misroute
// the lookup, so a raced miss retries under the fresh map.
func (c *Client) Contains(t tuple.Tuple) (bool, error) {
	if err := c.checkArity(t); err != nil {
		return false, err
	}
	var shards []int
	for {
		m := c.src.Map()
		shards = m.ReadShards(shards[:0], t[0])
		for _, s := range shards {
			ok, err := c.containsShard(s, t)
			if err != nil {
				return false, fmt.Errorf("cluster: shard %d: %w", s, err)
			}
			if ok {
				return true, nil
			}
		}
		if c.src.Map().Version == m.Version {
			return false, nil
		}
	}
}

// containsShard probes one shard, preferring a follower whose stamp
// passes the staleness bound; a stale, unhealthy or failed follower
// answer falls back to the leader.
func (c *Client) containsShard(s int, t tuple.Tuple) (bool, error) {
	if fc := c.follower(s); fc != nil {
		ok, st, err := fc.ContainsStamped(t)
		if err == nil && c.fresh(st) {
			obs.Inc(obs.ReplicaFollowerReads)
			return ok, nil
		}
		if err != nil {
			c.dropFollower(s, fc)
		}
		obs.Inc(obs.ReplicaFallbackReads)
	}
	cl, err := c.shard(s)
	if err != nil {
		return false, err
	}
	return cl.Contains(t)
}

// boundShard asks one shard for a local bound, preferring a follower
// under the staleness bound like containsShard.
func (c *Client) boundShard(s int, v tuple.Tuple, strict bool) (tuple.Tuple, bool, error) {
	if fc := c.follower(s); fc != nil {
		var t tuple.Tuple
		var ok bool
		var st serve.Stamp
		var err error
		if strict {
			t, ok, st, err = fc.UpperBoundStamped(v)
		} else {
			t, ok, st, err = fc.LowerBoundStamped(v)
		}
		if err == nil && c.fresh(st) {
			obs.Inc(obs.ReplicaFollowerReads)
			return t, ok, nil
		}
		if err != nil {
			c.dropFollower(s, fc)
		}
		obs.Inc(obs.ReplicaFallbackReads)
	}
	cl, err := c.shard(s)
	if err != nil {
		return nil, false, err
	}
	if strict {
		return cl.UpperBound(v)
	}
	return cl.LowerBound(v)
}

// scanPageShard fetches one scan page from one shard, preferring a
// follower under the staleness bound like containsShard.
func (c *Client) scanPageShard(s int, lo, hi tuple.Tuple, loStrict bool, limit int) ([]tuple.Tuple, bool, error) {
	if fc := c.follower(s); fc != nil {
		page, truncated, st, err := fc.ScanPageStamped(lo, hi, loStrict, limit)
		if err == nil && c.fresh(st) {
			obs.Inc(obs.ReplicaFollowerReads)
			return page, truncated, nil
		}
		if err != nil {
			c.dropFollower(s, fc)
		}
		obs.Inc(obs.ReplicaFallbackReads)
	}
	cl, err := c.shard(s)
	if err != nil {
		return nil, false, err
	}
	return cl.ScanPage(lo, hi, loStrict, limit)
}

// Len returns the clustered relation's element count: the length of
// the merged global stream. Counting through the merge — rather than
// summing shard lengths — keeps it exact in the presence of rebalance
// leftovers (tuples a completed move left behind outside their
// source's owned ranges) and mid-move duplicates.
func (c *Client) Len() (int, error) {
	n := 0
	err := c.ScanAll(nil, nil, func(tuple.Tuple) bool {
		n++
		return true
	})
	return n, err
}

// LowerBound returns the smallest stored tuple >= v.
func (c *Client) LowerBound(v tuple.Tuple) (tuple.Tuple, bool, error) {
	return c.bound(v, false)
}

// UpperBound returns the smallest stored tuple > v.
func (c *Client) UpperBound(v tuple.Tuple) (tuple.Tuple, bool, error) {
	return c.bound(v, true)
}

// bound walks the scan runs in key order from v's run onward, asking
// each run's shard(s) for their local bound, and returns the first
// (smallest) hit — runs are key-ordered and disjoint, so the first
// run with a hit holds the global bound. Like Contains, a result is
// trusted only if the map generation held still for the whole walk;
// a raced walk retries under the fresh map.
func (c *Client) bound(v tuple.Tuple, strict bool) (tuple.Tuple, bool, error) {
	if err := c.checkArity(v); err != nil {
		return nil, false, err
	}
	for {
		m := c.src.Map()
		t, ok, err := c.boundGeneration(m, v, strict)
		if err != nil {
			return nil, false, err
		}
		if c.src.Map().Version == m.Version {
			return t, ok, nil
		}
	}
}

// boundGeneration is one bound walk under a pinned map generation.
func (c *Client) boundGeneration(m *ShardMap, v tuple.Tuple, strict bool) (tuple.Tuple, bool, error) {
	for _, r := range m.runs() {
		if r.hi < v[0] {
			continue
		}
		var best tuple.Tuple
		for _, s := range []int{r.shards[0], r.shards[1]} {
			if s < 0 {
				continue
			}
			t, ok, err := c.boundShard(s, v, strict)
			if err != nil {
				return nil, false, fmt.Errorf("cluster: shard %d: %w", s, err)
			}
			// Discard hits past the run: they belong to leftover regions
			// or to later runs, which will answer for themselves.
			if ok && t[0] <= r.hi && (best == nil || tuple.Less(t, best)) {
				best = t
			}
		}
		if best != nil {
			return best, true, nil
		}
	}
	return nil, false, nil
}

// Scan returns stored tuples t with lo <= t < hi in global order (nil
// bounds are open), at most limit of them (0 = no cap); truncated
// reports a cut-off result. The scan fans out across the owning shards
// run by run and merges the streams in order.
func (c *Client) Scan(lo, hi tuple.Tuple, limit int) (ts []tuple.Tuple, truncated bool, err error) {
	if limit < 0 {
		return nil, false, fmt.Errorf("cluster: negative scan limit %d", limit)
	}
	err = c.scanMerge(lo, hi, func(t tuple.Tuple) bool {
		if limit > 0 && len(ts) == limit {
			truncated = true
			return false
		}
		ts = append(ts, t.Clone())
		return true
	})
	return ts, truncated, err
}

// ScanAll streams the whole range [lo, hi) through yield in global
// order, paginating past every shard's per-scan cap; returning false
// from yield stops early. The yielded tuple is transient — clone to
// retain.
func (c *Client) ScanAll(lo, hi tuple.Tuple, yield func(tuple.Tuple) bool) error {
	return c.scanMerge(lo, hi, yield)
}

// scanMerge is the fan-out merge: the map decomposes into key-ordered
// runs, each run streamed from its owning shard — or, for the moving
// range, 2-way merged from source and destination with equal-head
// duplicates elided — so the concatenation is the exact global sorted
// sequence. Each shard stream paginates with ScanPage resumption
// tokens (last tuple + strict), which carry across page and run
// boundaries by construction.
//
// The map generation is revalidated before every emission: pinning one
// generation for a whole paginated scan would misroute its tail if a
// move finalizes mid-scan and the source shard then restarts (the
// fence replay drops the moved range from the source while the stale
// map still directs that run's pages at it — silently omitting
// acknowledged tuples). When the version moves, the scan restarts from
// its first unemitted position under the fresh map; emitted tuples are
// strictly below the resume point and acknowledged tuples are never
// deleted, so the restart neither duplicates nor skips.
func (c *Client) scanMerge(lo, hi tuple.Tuple, yield func(tuple.Tuple) bool) error {
	if lo != nil {
		if err := c.checkArity(lo); err != nil {
			return err
		}
	}
	if hi != nil {
		if err := c.checkArity(hi); err != nil {
			return err
		}
	}
	cur := lo
	fanned := false
	for {
		resume, err := c.scanGeneration(c.src.Map(), cur, hi, yield, &fanned)
		if err != nil || resume == nil {
			return err
		}
		cur = resume
		obs.Inc(obs.ClusterScanRestarts)
	}
}

// scanGeneration streams [lo, hi) under one pinned map generation. A
// nil resume means the scan completed (or yield stopped it); a non-nil
// resume means the map version changed and the caller must rescan from
// resume (inclusive — it was never emitted) under the current map.
func (c *Client) scanGeneration(m *ShardMap, lo, hi tuple.Tuple, yield func(tuple.Tuple) bool, fanned *bool) (tuple.Tuple, error) {
	arity := c.opts.Arity
	fanout := 0
	// emit yields t unless the map generation moved, in which case it
	// hands t back as the resume point. ok=false stops the generation
	// either way; resume distinguishes done from restart.
	var resume tuple.Tuple
	emit := func(t tuple.Tuple) bool {
		if c.src.Map().Version != m.Version {
			resume = t.Clone()
			return false
		}
		return yield(t)
	}
	for _, r := range m.runs() {
		// Clip the run against the requested bounds.
		runLo := tuple.PrefixLowerBound(tuple.Tuple{r.lo}, arity)
		runHi := tuple.PrefixUpperBound(tuple.Tuple{r.hi}, arity) // nil when r.hi = MaxUint64
		if lo != nil && tuple.Compare(lo, runLo) > 0 {
			runLo = lo
		}
		if hi != nil && (runHi == nil || tuple.Compare(hi, runHi) < 0) {
			runHi = hi
		}
		if runHi != nil && tuple.Compare(runLo, runHi) >= 0 {
			if hi != nil && tuple.Compare(hi, runLo) <= 0 {
				return resume, nil // past the requested range: done
			}
			continue // empty clip: next run
		}
		fanout++
		if fanout == 2 && !*fanned {
			*fanned = true // count once per logical scan, restarts included
			obs.Inc(obs.ClusterScanFanouts)
		}
		a, err := c.newStream(r.shards[0], runLo, runHi)
		if err != nil {
			return nil, err
		}
		if r.shards[1] < 0 {
			for {
				t, ok, err := a.next()
				if err != nil {
					return nil, err
				}
				if !ok {
					break
				}
				if !emit(t) {
					return resume, nil
				}
			}
			continue
		}
		// Moving-range run: 2-way merge with duplicate elision.
		b, err := c.newStream(r.shards[1], runLo, runHi)
		if err != nil {
			return nil, err
		}
		ta, aok, err := a.next()
		if err != nil {
			return nil, err
		}
		tb, bok, err := b.next()
		if err != nil {
			return nil, err
		}
		for aok || bok {
			var out tuple.Tuple
			switch {
			case !bok:
				out = ta
				if ta, aok, err = a.next(); err != nil {
					return nil, err
				}
			case !aok:
				out = tb
				if tb, bok, err = b.next(); err != nil {
					return nil, err
				}
			default:
				switch cmp := tuple.Compare(ta, tb); {
				case cmp < 0:
					out = ta
					if ta, aok, err = a.next(); err != nil {
						return nil, err
					}
				case cmp > 0:
					out = tb
					if tb, bok, err = b.next(); err != nil {
						return nil, err
					}
				default:
					// The same tuple on both sides of the move: emit once.
					obs.Inc(obs.ClusterScanDupes)
					out = ta
					if ta, aok, err = a.next(); err != nil {
						return nil, err
					}
					if tb, bok, err = b.next(); err != nil {
						return nil, err
					}
				}
			}
			if !emit(out) {
				return resume, nil
			}
		}
	}
	return resume, nil
}

// shardStream pulls one shard's tuples in [lo, hi) page by page. Pages
// fetch through Client.scanPageShard, so each page independently
// offloads to a follower or falls back to the leader — the resumption
// token (last tuple + strict) is position, not connection, state.
type shardStream struct {
	c      *Client
	hi     tuple.Tuple
	cur    tuple.Tuple
	strict bool
	limit  int
	page   []tuple.Tuple
	i      int
	more   bool // the last page was truncated: fetch another
	shard  int
}

// newStream opens a paginated stream over one shard's [lo, hi) range.
func (c *Client) newStream(shard int, lo, hi tuple.Tuple) (*shardStream, error) {
	s := &shardStream{c: c, hi: hi, cur: lo, strict: false, limit: c.opts.PageLimit, more: true, shard: shard}
	return s, nil
}

// next returns the stream's next tuple in order, fetching pages on
// demand; ok=false means the range is exhausted.
func (s *shardStream) next() (tuple.Tuple, bool, error) {
	for s.i >= len(s.page) {
		if !s.more {
			return nil, false, nil
		}
		page, truncated, err := s.c.scanPageShard(s.shard, s.cur, s.hi, s.strict, s.limit)
		if err != nil {
			return nil, false, fmt.Errorf("cluster: shard %d: %w", s.shard, err)
		}
		if truncated && len(page) == 0 {
			return nil, false, fmt.Errorf("cluster: shard %d: truncated scan page carries no tuples", s.shard)
		}
		s.page, s.i, s.more = page, 0, truncated
		if len(page) > 0 {
			// Resumption token: the page's last tuple, strictly after.
			s.cur, s.strict = page[len(page)-1], true
		}
	}
	t := s.page[s.i]
	s.i++
	return t, true, nil
}
