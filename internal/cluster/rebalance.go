package cluster

import (
	"fmt"
	"time"

	"specbtree/internal/core"
	"specbtree/internal/obs"
	"specbtree/internal/tuple"
)

// MoveOptions tunes one online range move.
type MoveOptions struct {
	// ChunkSize bounds the tuples per Apply submission on the
	// destination (default 2048, clamped to the destination's MaxBatch
	// by the serve layer contract — keep it under serve MaxBatch).
	ChunkSize int
	// Pace, when non-zero, is slept between chunk submissions, bounding
	// the move's write pressure on the destination while readers run.
	Pace time.Duration

	// hookBeforeFence, when set, runs after the import and before the
	// fence; a non-nil return forces the abort path. Tests inject
	// failures (and concurrent inserts) here — there is no exported
	// surface for it.
	hookBeforeFence func() error
}

func (o MoveOptions) withDefaults() MoveOptions {
	if o.ChunkSize <= 0 {
		o.ChunkSize = 2048
	}
	return o
}

// MoveRange hands the leading-column range [lo, hi] (inclusive) to
// shard dst online, without stopping reads or inserts (DESIGN.md §15):
//
//  1. Cut: publish the map with the range Moving. From here inserts
//     into the range route to dst and reads consult both sides.
//  2. Barrier on the source: an empty write epoch flushes every insert
//     admitted under the old map, so the snapshot below contains all
//     source-routed tuples.
//  3. Snapshot + export: an O(1) epoch snapshot of the source, the
//     range materialised from it — readers keep running.
//  4. Import: the exported tuples stream into dst in chunks through
//     the write scheduler (logged, phase-disciplined, idempotent).
//  5. Fence: the source's log records the handoff, so a source replay
//     no longer resurrects the moved range (dst holds it durably).
//  6. Finalize: publish the map with dst owning the range.
//
// The moved tuples linger in the source's in-memory tree as a leftover
// region until its next restart replays the fence; scans never read
// them because routing is map-driven. Moves are serialised — at most
// one range moves at a time.
//
// Failure handling never republishes an old map generation (versions
// only move forward) and never hides an acknowledged write:
//
//   - A failure before the fence (steps 2–4) aborts through a draining
//     overlay: inserts route back to the source, reads keep consulting
//     both shards, and the destination's range tuples are copied back
//     to the source before the overlay clears. If that copy-back
//     itself fails, the draining map stays published — reads stay
//     exact at the cost of double-probing the range — and the next
//     MoveRange completes the drain before anything else.
//   - A fence failure (step 5) does NOT restore source ownership: the
//     fence bytes may be partially durable, and a source restart that
//     replays them would drop the range while a source-owning map
//     still routed reads at it. The destination holds the range
//     durably (every imported chunk was logged before its ack), so
//     the move finalizes to dst regardless; the failed fence only
//     means the source keeps its leftover region across restarts.
//     The source's log is poisoned by the failed flush and rejects
//     further epochs until the shard restarts, so the condition
//     surfaces on the shard's own write path.
func (c *Cluster) MoveRange(lo, hi uint64, dst int, opts MoveOptions) error {
	opts = opts.withDefaults()
	c.moveMu.Lock()
	defer c.moveMu.Unlock()

	m := c.src.Map()
	if m.Moving.Active {
		if !m.Moving.Draining {
			return fmt.Errorf("cluster: a move of [%d, %d] is already in flight", m.Moving.Lo, m.Moving.Hi)
		}
		// A previous abort's reconciliation failed and left the range
		// draining: finish pulling the destination's tuples back before
		// routing can change again.
		if err := c.reconcile(m, opts.ChunkSize); err != nil {
			return fmt.Errorf("cluster: completing aborted move of [%d, %d] first: %w", m.Moving.Lo, m.Moving.Hi, err)
		}
		m = c.src.Map()
	}
	src := m.Owner(lo)
	if m.Owner(hi) != src {
		return fmt.Errorf("cluster: range [%d, %d] spans shards; move one owned range at a time", lo, hi)
	}
	if dst == src {
		return fmt.Errorf("cluster: range [%d, %d] already on shard %d", lo, hi, dst)
	}
	if dst < 0 || dst >= len(c.shards) {
		return fmt.Errorf("cluster: no shard %d", dst)
	}

	// 1. Cut: announce the move. The new generation routes range
	// inserts to dst and fans range reads across both shards.
	cut := m.withMoving(lo, hi, src, dst)
	if err := cut.Validate(); err != nil {
		return err
	}
	c.src.Set(cut)

	srcSrv, dstSrv := c.Shard(src), c.Shard(dst)

	// 2. Barrier: flush the source's write pipeline so the snapshot
	// holds every insert routed to it before the cut was visible.
	if err := srcSrv.Barrier(); err != nil {
		return c.abort(cut, opts.ChunkSize, fmt.Errorf("cluster: move barrier on shard %d: %w", src, err))
	}

	// 3. Snapshot the source and export the moving range.
	snap, err := srcSrv.SnapshotNow()
	if err != nil {
		return c.abort(cut, opts.ChunkSize, fmt.Errorf("cluster: move snapshot on shard %d: %w", src, err))
	}
	moved := exportRange(snap, lo, hi)

	// 4. Import into the destination in chunks, through its write
	// scheduler: logged before acknowledgement, phase-disciplined
	// against concurrent readers, idempotent under re-import.
	for off := 0; off < len(moved); off += opts.ChunkSize {
		end := off + opts.ChunkSize
		if end > len(moved) {
			end = len(moved)
		}
		if _, err := dstSrv.Apply(moved[off:end]); err != nil {
			return c.abort(cut, opts.ChunkSize, fmt.Errorf("cluster: move import into shard %d: %w", dst, err))
		}
		if opts.Pace > 0 && end < len(moved) {
			time.Sleep(opts.Pace)
		}
	}

	if opts.hookBeforeFence != nil {
		if err := opts.hookBeforeFence(); err != nil {
			return c.abort(cut, opts.ChunkSize, fmt.Errorf("cluster: move aborted: %w", err))
		}
	}

	// 5. Fence the source's log: from here a source replay drops the
	// range — the destination has it durably. Without a log (ephemeral
	// cluster) there is nothing to fence.
	c.mu.Lock()
	srcLog := c.shards[src].log
	c.mu.Unlock()
	if srcLog != nil {
		if err := srcLog.AppendFence(lo, hi, uint32(dst)); err != nil {
			// The fence may be partially durable, so source ownership is
			// unrecoverable (see the contract above): finalize to dst,
			// which holds the range durably, and count the failed fence.
			obs.Inc(obs.ClusterRebalanceFenceFailures)
			c.src.Set(cut.finalized())
			obs.Inc(obs.ClusterRebalanceMoves)
			obs.Add(obs.ClusterRebalanceTuples, uint64(len(moved)))
			return nil
		}
	}

	// 6. Finalize: dst owns the range; the overlay clears.
	fin := cut.finalized()
	if err := fin.Validate(); err != nil {
		return err
	}
	c.src.Set(fin)
	obs.Inc(obs.ClusterRebalanceMoves)
	obs.Add(obs.ClusterRebalanceTuples, uint64(len(moved)))
	return nil
}

// abort unwinds a move that failed before its fence. Inserts acked by
// the destination while the cut was live exist only there, so the
// pre-move map cannot simply be republished — reads would consult the
// source alone and acknowledged writes would silently vanish. Instead
// the overlay flips to draining (a new generation: inserts route back
// to the source, reads keep fanning over both shards), the
// destination's range tuples are reconciled back to the source, and
// only then does the overlay clear. The returned error always reports
// cause; a failed reconciliation is appended and leaves the draining
// map published.
func (c *Cluster) abort(cut *ShardMap, chunkSize int, cause error) error {
	drain := cut.draining()
	c.src.Set(drain)
	obs.Inc(obs.ClusterRebalanceAborts)
	if err := c.reconcile(drain, chunkSize); err != nil {
		return fmt.Errorf("%w (reconciliation also failed: %v; the range stays draining — reads consult both shards until a later MoveRange completes the drain)", cause, err)
	}
	return cause
}

// reconcile completes a published draining overlay: the destination's
// tuples in the draining range are copied back to the source (barrier,
// snapshot, chunked logged import — the forward move mirrored), then
// the overlay clears with another version bump. Inserts acked by the
// destination after its barrier here were necessarily submitted under
// the pre-drain cut map, so the routing client's version revalidation
// resubmits them to the source; the source's copy converges either way.
func (c *Cluster) reconcile(m *ShardMap, chunkSize int) error {
	mv := m.Moving
	srcSrv, dstSrv := c.Shard(mv.Src), c.Shard(mv.Dst)
	if err := dstSrv.Barrier(); err != nil {
		return fmt.Errorf("cluster: drain barrier on shard %d: %w", mv.Dst, err)
	}
	snap, err := dstSrv.SnapshotNow()
	if err != nil {
		return fmt.Errorf("cluster: drain snapshot on shard %d: %w", mv.Dst, err)
	}
	back := exportRange(snap, mv.Lo, mv.Hi)
	for off := 0; off < len(back); off += chunkSize {
		end := off + chunkSize
		if end > len(back) {
			end = len(back)
		}
		if _, err := srcSrv.Apply(back[off:end]); err != nil {
			return fmt.Errorf("cluster: drain import into shard %d: %w", mv.Src, err)
		}
	}
	c.src.Set(m.withoutMoving())
	return nil
}

// exportRange materialises the leading-column range [lo, hi]
// (inclusive) from a shard snapshot.
func exportRange(snap core.Snapshot, lo, hi uint64) []tuple.Tuple {
	arity := snap.Arity()
	from := tuple.PrefixLowerBound(tuple.Tuple{lo}, arity)
	to := tuple.PrefixUpperBound(tuple.Tuple{hi}, arity) // nil when hi = MaxUint64
	return snap.ExportRange(from, to)
}
