package cluster

import (
	"fmt"
	"time"

	"specbtree/internal/obs"
	"specbtree/internal/tuple"
)

// MoveOptions tunes one online range move.
type MoveOptions struct {
	// ChunkSize bounds the tuples per Apply submission on the
	// destination (default 2048, clamped to the destination's MaxBatch
	// by the serve layer contract — keep it under serve MaxBatch).
	ChunkSize int
	// Pace, when non-zero, is slept between chunk submissions, bounding
	// the move's write pressure on the destination while readers run.
	Pace time.Duration
}

func (o MoveOptions) withDefaults() MoveOptions {
	if o.ChunkSize <= 0 {
		o.ChunkSize = 2048
	}
	return o
}

// MoveRange hands the leading-column range [lo, hi] (inclusive) to
// shard dst online, without stopping reads or inserts (DESIGN.md §15):
//
//  1. Cut: publish the map with the range Moving. From here inserts
//     into the range route to dst and reads consult both sides.
//  2. Barrier on the source: an empty write epoch flushes every insert
//     admitted under the old map, so the snapshot below contains all
//     source-routed tuples.
//  3. Snapshot + export: an O(1) epoch snapshot of the source, the
//     range materialised from it — readers keep running.
//  4. Import: the exported tuples stream into dst in chunks through
//     the write scheduler (logged, phase-disciplined, idempotent).
//  5. Fence: the source's log records the handoff, so a source replay
//     no longer resurrects the moved range (dst holds it durably).
//  6. Finalize: publish the map with dst owning the range.
//
// The moved tuples linger in the source's in-memory tree as a leftover
// region until its next restart replays the fence; scans never read
// them because routing is map-driven. Moves are serialised — at most
// one range moves at a time.
func (c *Cluster) MoveRange(lo, hi uint64, dst int, opts MoveOptions) error {
	opts = opts.withDefaults()
	c.moveMu.Lock()
	defer c.moveMu.Unlock()

	m := c.src.Map()
	src := m.Owner(lo)
	if m.Owner(hi) != src {
		return fmt.Errorf("cluster: range [%d, %d] spans shards; move one owned range at a time", lo, hi)
	}
	if dst == src {
		return fmt.Errorf("cluster: range [%d, %d] already on shard %d", lo, hi, dst)
	}
	if dst < 0 || dst >= len(c.shards) {
		return fmt.Errorf("cluster: no shard %d", dst)
	}

	// 1. Cut: announce the move. The new generation routes range
	// inserts to dst and fans range reads across both shards.
	cut := m.withMoving(lo, hi, src, dst)
	if err := cut.Validate(); err != nil {
		return err
	}
	c.src.Set(cut)

	srcSrv, dstSrv := c.Shard(src), c.Shard(dst)

	// 2. Barrier: flush the source's write pipeline so the snapshot
	// holds every insert routed to it before the cut was visible.
	if err := srcSrv.Barrier(); err != nil {
		c.src.Set(m) // abort: restore the pre-move map
		return fmt.Errorf("cluster: move barrier on shard %d: %w", src, err)
	}

	// 3. Snapshot the source and export the moving range.
	snap, err := srcSrv.SnapshotNow()
	if err != nil {
		c.src.Set(m)
		return fmt.Errorf("cluster: move snapshot on shard %d: %w", src, err)
	}
	arity := snap.Arity()
	from := tuple.PrefixLowerBound(tuple.Tuple{lo}, arity)
	to := tuple.PrefixUpperBound(tuple.Tuple{hi}, arity) // nil when hi = MaxUint64
	moved := snap.ExportRange(from, to)

	// 4. Import into the destination in chunks, through its write
	// scheduler: logged before acknowledgement, phase-disciplined
	// against concurrent readers, idempotent under re-import.
	for off := 0; off < len(moved); off += opts.ChunkSize {
		end := off + opts.ChunkSize
		if end > len(moved) {
			end = len(moved)
		}
		if _, err := dstSrv.Apply(moved[off:end]); err != nil {
			c.src.Set(m)
			return fmt.Errorf("cluster: move import into shard %d: %w", dst, err)
		}
		if opts.Pace > 0 && end < len(moved) {
			time.Sleep(opts.Pace)
		}
	}

	// 5. Fence the source's log: from here a source replay drops the
	// range — the destination has it durably. Without a log (ephemeral
	// cluster) there is nothing to fence.
	c.mu.Lock()
	srcLog := c.shards[src].log
	c.mu.Unlock()
	if srcLog != nil {
		if err := srcLog.AppendFence(lo, hi, uint32(dst)); err != nil {
			c.src.Set(m)
			return fmt.Errorf("cluster: move fence on shard %d: %w", src, err)
		}
	}

	// 6. Finalize: dst owns the range; the overlay clears.
	fin := cut.finalized()
	if err := fin.Validate(); err != nil {
		return err
	}
	c.src.Set(fin)
	obs.Inc(obs.ClusterRebalanceMoves)
	obs.Add(obs.ClusterRebalanceTuples, uint64(len(moved)))
	return nil
}
