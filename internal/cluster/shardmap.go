package cluster

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// ShardMap partitions the key space by range on the leading tuple
// column: Entries are sorted, disjoint, and cover every leading key in
// [0, MaxUint64]. A map value is immutable once published — routing
// changes swap in a fresh map with a higher Version through a
// MapSource — so routing reads need no locks.
//
// At most one range is Moving at a time: during a rebalance the moving
// range's tuples may exist on both its source and destination shard,
// so inserts route to the destination (which will survive the move)
// and reads consult both, the scan merge eliding duplicates
// (DESIGN.md §15).
type ShardMap struct {
	// Version orders map generations; every routing change increments
	// it.
	Version uint64
	// Entries are the owned ranges, sorted by Lo, disjoint, covering
	// the whole leading-column axis.
	Entries []MapEntry
	// Moving is the at-most-one range in flight between shards; Active
	// false means no move is in progress.
	Moving Moving
}

// MapEntry is one contiguous owned range: leading keys k with
// Lo <= k <= Hi (inclusive on both ends, so MaxUint64 is coverable)
// are owned by Shard.
type MapEntry struct {
	// Lo and Hi bound the range's leading keys, both inclusive.
	Lo, Hi uint64
	// Shard is the owning shard number.
	Shard int
}

// Moving describes a range mid-handoff: leading keys in [Lo, Hi] are
// moving from shard Src to shard Dst.
type Moving struct {
	// Lo and Hi bound the moving range's leading keys, both inclusive.
	Lo, Hi uint64
	// Src and Dst are the shards the range is leaving and joining.
	Src, Dst int
	// Active reports a move in progress; the zero Moving is inactive.
	Active bool
	// Draining marks an aborted move being unwound: inserts acked by
	// Dst while the cut was live may exist only there, so reads keep
	// consulting both shards, but new inserts route back to the owner
	// (Src). The overlay clears once Dst's range tuples have been
	// reconciled back to Src (Cluster.reconcile).
	Draining bool
}

// MapSource supplies the current shard map; implementations publish
// fresh maps atomically (Cluster does, and StaticMap wraps a fixed
// one). Routing code reads the map once per operation, so one
// operation always sees one consistent generation.
type MapSource interface {
	Map() *ShardMap
}

// StaticMap is a MapSource frozen at construction — the client-only
// deployments' source (loadgen's multi-shard mode), and the property
// tests' harness.
type StaticMap struct{ m atomic.Pointer[ShardMap] }

// NewStaticMap wraps m; the map must be valid (see Validate).
func NewStaticMap(m *ShardMap) *StaticMap {
	s := &StaticMap{}
	s.m.Store(m)
	return s
}

// Map returns the wrapped map.
func (s *StaticMap) Map() *ShardMap { return s.m.Load() }

// Set publishes a replacement map (tests use it to flip generations).
func (s *StaticMap) Set(m *ShardMap) { s.m.Store(m) }

// UniformMap builds the canonical starting map for n shards: the
// leading-column axis split into n near-equal contiguous ranges, shard
// i owning the i-th.
func UniformMap(n int) *ShardMap {
	if n < 1 {
		panic("cluster: UniformMap needs at least one shard")
	}
	width := ^uint64(0)/uint64(n) + 1 // per-shard span, rounding up
	entries := make([]MapEntry, n)
	lo := uint64(0)
	for i := 0; i < n; i++ {
		hi := lo + width - 1
		if i == n-1 || hi < lo { // overflow on the last stripe
			hi = ^uint64(0)
		}
		entries[i] = MapEntry{Lo: lo, Hi: hi, Shard: i}
		lo = hi + 1
	}
	return &ShardMap{Version: 1, Entries: entries}
}

// BandMap partitions [0, keySpace) into equal bands, one per shard in
// order, the last shard keeping the rest of the axis — the right
// starting map for workloads whose leading keys occupy a small prefix
// of the axis, where UniformMap would put everything on shard 0.
func BandMap(shards int, keySpace uint64) *ShardMap {
	if shards < 1 {
		panic("cluster: BandMap needs at least one shard")
	}
	band := keySpace / uint64(shards)
	if band == 0 {
		band = 1
	}
	entries := make([]MapEntry, shards)
	lo := uint64(0)
	for i := 0; i < shards; i++ {
		hi := lo + band - 1
		if i == shards-1 || hi < lo {
			hi = ^uint64(0)
		}
		entries[i] = MapEntry{Lo: lo, Hi: hi, Shard: i}
		lo = hi + 1
	}
	return &ShardMap{Version: 1, Entries: entries}
}

// Validate checks the map's structural invariants: entries sorted,
// disjoint, gap-free, covering [0, MaxUint64], and an active Moving
// range lying inside a single source entry.
func (m *ShardMap) Validate() error {
	if len(m.Entries) == 0 {
		return fmt.Errorf("cluster: shard map has no entries")
	}
	want := uint64(0)
	for i, e := range m.Entries {
		if e.Lo != want {
			return fmt.Errorf("cluster: shard map entry %d starts at %d, want %d", i, e.Lo, want)
		}
		if e.Hi < e.Lo {
			return fmt.Errorf("cluster: shard map entry %d inverted [%d, %d]", i, e.Lo, e.Hi)
		}
		if i == len(m.Entries)-1 {
			if e.Hi != ^uint64(0) {
				return fmt.Errorf("cluster: shard map ends at %d, leaving a gap", e.Hi)
			}
		} else {
			want = e.Hi + 1
		}
	}
	if m.Moving.Active {
		mv := m.Moving
		if mv.Lo > mv.Hi {
			return fmt.Errorf("cluster: moving range [%d, %d] inverted", mv.Lo, mv.Hi)
		}
		i := m.find(mv.Lo)
		e := m.Entries[i]
		if e.Shard != mv.Src || mv.Hi > e.Hi {
			return fmt.Errorf("cluster: moving range [%d, %d] not inside one entry of shard %d", mv.Lo, mv.Hi, mv.Src)
		}
	}
	return nil
}

// find returns the index of the entry owning leading key k.
func (m *ShardMap) find(k uint64) int {
	// First entry whose Hi >= k; the covering invariant guarantees one.
	return sort.Search(len(m.Entries), func(i int) bool { return m.Entries[i].Hi >= k })
}

// Owner returns the shard owning leading key k per the entry table,
// ignoring any active move.
func (m *ShardMap) Owner(k uint64) int { return m.Entries[m.find(k)].Shard }

// RouteInsert returns the shard an insert of leading key k must go to:
// the destination while k is in an active moving range (the shard that
// survives the move), the owner otherwise — including while the range
// is draining after an abort, when the owner is again where new data
// must land.
func (m *ShardMap) RouteInsert(k uint64) int {
	if m.Moving.Active && !m.Moving.Draining && k >= m.Moving.Lo && k <= m.Moving.Hi {
		return m.Moving.Dst
	}
	return m.Owner(k)
}

// ReadShards appends to dst the shards a read of leading key k must
// consult: normally just the owner; during a move of k's range — or
// its drain-back after an aborted move — both sides, source first (the
// merge elides duplicates). The append-style API keeps the hot read
// path allocation-free.
func (m *ShardMap) ReadShards(dst []int, k uint64) []int {
	if m.Moving.Active && k >= m.Moving.Lo && k <= m.Moving.Hi {
		return append(dst, m.Moving.Src, m.Moving.Dst)
	}
	return append(dst, m.Owner(k))
}

// Shards returns the highest shard number referenced by the map plus
// one — the size of the address table a router needs.
func (m *ShardMap) Shards() int {
	n := 0
	for _, e := range m.Entries {
		if e.Shard >= n {
			n = e.Shard + 1
		}
	}
	if m.Moving.Active && m.Moving.Dst >= n {
		n = m.Moving.Dst + 1
	}
	return n
}

// run is one maximal stretch of leading keys [lo, hi] (inclusive) that
// a scan reads from a fixed shard set: one shard normally, the moving
// range's source and destination pair during a rebalance. Scans
// iterate runs in key order, so the global sorted order is the
// concatenation of per-run sorted streams.
type run struct {
	lo, hi uint64
	shards [2]int // shards[1] = -1 when the run has a single shard
}

// runs decomposes the map into scan runs in key order: entry
// boundaries split the axis, and an active moving range further splits
// its entry into before/overlap/after.
func (m *ShardMap) runs() []run {
	out := make([]run, 0, len(m.Entries)+2)
	for _, e := range m.Entries {
		segs := [][2]uint64{{e.Lo, e.Hi}}
		if m.Moving.Active && m.Moving.Lo <= e.Hi && m.Moving.Hi >= e.Lo {
			mv := m.Moving
			segs = segs[:0]
			if e.Lo < mv.Lo {
				segs = append(segs, [2]uint64{e.Lo, mv.Lo - 1})
			}
			olo, ohi := max64(e.Lo, mv.Lo), min64(e.Hi, mv.Hi)
			segs = append(segs, [2]uint64{olo, ohi})
			if e.Hi > mv.Hi {
				segs = append(segs, [2]uint64{mv.Hi + 1, e.Hi})
			}
		}
		for _, sg := range segs {
			r := run{lo: sg[0], hi: sg[1], shards: [2]int{e.Shard, -1}}
			if m.Moving.Active && sg[0] >= m.Moving.Lo && sg[1] <= m.Moving.Hi {
				r.shards = [2]int{m.Moving.Src, m.Moving.Dst}
			}
			out = append(out, r)
		}
	}
	return out
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// withMoving returns a copy of m with the moving overlay installed and
// the version bumped — the map cut that starts a rebalance.
func (m *ShardMap) withMoving(lo, hi uint64, src, dst int) *ShardMap {
	return &ShardMap{
		Version: m.Version + 1,
		Entries: m.Entries, // entries are immutable; sharing is safe
		Moving:  Moving{Lo: lo, Hi: hi, Src: src, Dst: dst, Active: true},
	}
}

// draining returns a copy of m with its active moving overlay flipped
// to draining and the version bumped — the abort cut: inserts route
// back to the source (the range's owner per the entry table), reads
// keep fanning over both shards until the destination's range tuples
// are reconciled back. Versions only ever move forward: an abort never
// republishes an old generation, so in-flight routing revalidation can
// never mistake it for the map it raced against.
func (m *ShardMap) draining() *ShardMap {
	mv := m.Moving
	mv.Draining = true
	return &ShardMap{Version: m.Version + 1, Entries: m.Entries, Moving: mv}
}

// withoutMoving returns a copy of m with the overlay cleared and the
// version bumped — the end of an aborted move's reconciliation.
func (m *ShardMap) withoutMoving() *ShardMap {
	return &ShardMap{Version: m.Version + 1, Entries: m.Entries}
}

// finalized returns a copy of m with the active move applied to the
// entry table — the moving range carved out of its source entry and
// owned by the destination — and the overlay cleared. Adjacent
// same-shard entries are coalesced.
func (m *ShardMap) finalized() *ShardMap {
	mv := m.Moving
	var entries []MapEntry
	for _, e := range m.Entries {
		if mv.Lo > e.Hi || mv.Hi < e.Lo {
			entries = append(entries, e)
			continue
		}
		if e.Lo < mv.Lo {
			entries = append(entries, MapEntry{Lo: e.Lo, Hi: mv.Lo - 1, Shard: e.Shard})
		}
		entries = append(entries, MapEntry{Lo: max64(e.Lo, mv.Lo), Hi: min64(e.Hi, mv.Hi), Shard: mv.Dst})
		if e.Hi > mv.Hi {
			entries = append(entries, MapEntry{Lo: mv.Hi + 1, Hi: e.Hi, Shard: e.Shard})
		}
	}
	coalesced := entries[:1]
	for _, e := range entries[1:] {
		last := &coalesced[len(coalesced)-1]
		if e.Shard == last.Shard {
			last.Hi = e.Hi
			continue
		}
		coalesced = append(coalesced, e)
	}
	return &ShardMap{Version: m.Version + 1, Entries: coalesced}
}
