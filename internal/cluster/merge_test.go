package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"specbtree/internal/serve"
	"specbtree/internal/tuple"
)

// randomMap builds a valid random shard map over nShards shards with
// nEntries ranges and, with probability ½, one active moving range —
// including degenerate shapes (single-key ranges, moves at entry
// edges, moves spanning a whole entry).
func randomMap(rng *rand.Rand, nShards, nEntries int) *ShardMap {
	cuts := map[uint64]bool{}
	for len(cuts) < nEntries-1 {
		cuts[1+uint64(rng.Intn(200))] = true
	}
	var bounds []uint64
	for c := range cuts {
		bounds = append(bounds, c)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	entries := make([]MapEntry, 0, nEntries)
	lo := uint64(0)
	for _, b := range bounds {
		entries = append(entries, MapEntry{Lo: lo, Hi: b - 1, Shard: rng.Intn(nShards)})
		lo = b
	}
	entries = append(entries, MapEntry{Lo: lo, Hi: ^uint64(0), Shard: rng.Intn(nShards)})
	m := &ShardMap{Version: 1, Entries: entries}
	if rng.Intn(2) == 0 && nShards > 1 {
		e := entries[rng.Intn(len(entries))]
		span := e.Hi - e.Lo
		if span > 220 {
			span = 220 // keep moving bounds inside the populated key region
		}
		mlo := e.Lo + uint64(rng.Int63n(int64(span+1)))
		mhi := mlo + uint64(rng.Int63n(int64(e.Lo+span-mlo+1)))
		dst := rng.Intn(nShards - 1)
		if dst >= e.Shard {
			dst++
		}
		m.Moving = Moving{Lo: mlo, Hi: mhi, Src: e.Shard, Dst: dst, Active: true}
	}
	return m
}

// TestScanMergeProperty drives the fan-out merge against a sorted
// model over seeded random shard maps and tuple placements: shards are
// real servers with a tiny scan cap (forcing pagination mid-run),
// tuples in a moving range land on the source, the destination, or
// both (forcing duplicate elision), and every full and windowed scan
// must reproduce the model's exact global sorted sequence.
func TestScanMergeProperty(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			nShards := 2 + rng.Intn(3)
			m := randomMap(rng, nShards, 2+rng.Intn(5))
			if err := m.Validate(); err != nil {
				t.Fatalf("randomMap produced an invalid map: %v", err)
			}

			// Real shard servers with a tiny per-scan cap so every run
			// paginates through several resumption tokens.
			addrs := make([]string, nShards)
			srvs := make([]*serve.Server, nShards)
			for i := range srvs {
				srv, err := serve.Start("127.0.0.1:0", serve.Options{
					Arity: 2, MaxScan: 1 + rng.Intn(7), Sharded: true, ShardID: uint32(i),
				})
				if err != nil {
					t.Fatal(err)
				}
				defer srv.Close()
				srvs[i] = srv
				addrs[i] = srv.Addr()
			}

			// Place random tuples per the map: owned keys on their owner,
			// moving-range keys on src, dst, or both.
			model := map[[2]uint64]bool{}
			byShard := make([][]tuple.Tuple, nShards)
			for n := 0; n < 400; n++ {
				tp := tuple.Tuple{uint64(rng.Intn(230)), uint64(rng.Intn(8))}
				model[[2]uint64{tp[0], tp[1]}] = true
				mv := m.Moving
				if mv.Active && tp[0] >= mv.Lo && tp[0] <= mv.Hi {
					switch rng.Intn(3) {
					case 0:
						byShard[mv.Src] = append(byShard[mv.Src], tp)
					case 1:
						byShard[mv.Dst] = append(byShard[mv.Dst], tp)
					default:
						byShard[mv.Src] = append(byShard[mv.Src], tp)
						byShard[mv.Dst] = append(byShard[mv.Dst], tp)
					}
				} else {
					s := m.Owner(tp[0])
					byShard[s] = append(byShard[s], tp)
				}
			}
			for i, ts := range byShard {
				if len(ts) == 0 {
					continue
				}
				if _, err := srvs[i].Apply(ts); err != nil {
					t.Fatal(err)
				}
			}
			var ref []tuple.Tuple
			for k := range model {
				ref = append(ref, tuple.Tuple{k[0], k[1]})
			}
			sortTuples(ref)

			cl, err := NewClient(NewStaticMap(m), addrs, ClientOptions{
				Arity: 2, PageLimit: 1 + rng.Intn(5),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			// Full merged stream == the model, exactly and in order.
			var got []tuple.Tuple
			if err := cl.ScanAll(nil, nil, func(tp tuple.Tuple) bool {
				got = append(got, tp.Clone())
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if !equalTuples(got, ref) {
				t.Fatalf("merged stream diverges from model: got %d tuples, want %d", len(got), len(ref))
			}

			// Len counts through the merge.
			if n, err := cl.Len(); err != nil || n != len(ref) {
				t.Fatalf("Len = %d (err %v), want %d", n, err, len(ref))
			}

			// Random windows and limits, including windows straddling
			// shard and moving-range boundaries.
			for probe := 0; probe < 25; probe++ {
				lo := tuple.Tuple{uint64(rng.Intn(240)), uint64(rng.Intn(9))}
				hi := tuple.Tuple{uint64(rng.Intn(240)), uint64(rng.Intn(9))}
				if tuple.Compare(lo, hi) > 0 {
					lo, hi = hi, lo
				}
				limit := rng.Intn(30)
				var want []tuple.Tuple
				for _, tp := range ref {
					if tuple.Compare(tp, lo) >= 0 && tuple.Compare(tp, hi) < 0 {
						want = append(want, tp)
					}
				}
				wantTrunc := limit > 0 && len(want) > limit
				if wantTrunc {
					want = want[:limit]
				}
				gotW, truncated, err := cl.Scan(lo, hi, limit)
				if err != nil {
					t.Fatal(err)
				}
				if truncated != wantTrunc || !equalTuples(gotW, want) {
					t.Fatalf("Scan(%v, %v, %d): %d tuples truncated=%v; want %d truncated=%v",
						lo, hi, limit, len(gotW), truncated, len(want), wantTrunc)
				}
			}

			// Point reads and bounds against the model.
			for probe := 0; probe < 40; probe++ {
				tp := tuple.Tuple{uint64(rng.Intn(240)), uint64(rng.Intn(9))}
				ok, err := cl.Contains(tp)
				if err != nil {
					t.Fatal(err)
				}
				if ok != model[[2]uint64{tp[0], tp[1]}] {
					t.Fatalf("Contains(%v) = %v, model says %v", tp, ok, !ok)
				}
				idx := sort.Search(len(ref), func(i int) bool { return tuple.Compare(ref[i], tp) >= 0 })
				gotB, ok, err := cl.LowerBound(tp)
				if err != nil {
					t.Fatal(err)
				}
				if ok != (idx < len(ref)) || (ok && !tuple.Equal(gotB, ref[idx])) {
					t.Fatalf("LowerBound(%v) = %v ok=%v; model idx %d", tp, gotB, ok, idx)
				}
				idx = sort.Search(len(ref), func(i int) bool { return tuple.Compare(ref[i], tp) > 0 })
				gotB, ok, err = cl.UpperBound(tp)
				if err != nil {
					t.Fatal(err)
				}
				if ok != (idx < len(ref)) || (ok && !tuple.Equal(gotB, ref[idx])) {
					t.Fatalf("UpperBound(%v) = %v ok=%v; model idx %d", tp, gotB, ok, idx)
				}
			}

			// Early stop respects yield.
			n := 0
			if err := cl.ScanAll(nil, nil, func(tuple.Tuple) bool { n++; return n < 3 }); err != nil {
				t.Fatal(err)
			}
			if len(ref) >= 3 && n != 3 {
				t.Fatalf("early stop yielded %d", n)
			}
		})
	}
}
