package cluster

import (
	"errors"
	"path/filepath"
	"sort"
	"testing"

	"specbtree/internal/serve"
	"specbtree/internal/tuple"
)

// startTestCluster boots n logged shards in a temp dir.
func startTestCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	c, err := StartCluster(Options{Shards: n, Arity: 2, LogDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// spread builds count arity-2 tuples spread across the whole
// leading-column axis (so a uniform map splits them over every shard).
func spread(count int) []tuple.Tuple {
	out := make([]tuple.Tuple, count)
	step := ^uint64(0) / uint64(count)
	for i := range out {
		out[i] = tuple.Tuple{uint64(i) * step, uint64(i)}
	}
	return out
}

// checkContents asserts the client sees exactly want (sorted, deduped)
// through Len, ScanAll, Contains, and the bounds.
func checkContents(t *testing.T, cl *Client, want []tuple.Tuple) {
	t.Helper()
	want = canon(want)
	n, err := cl.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("Len = %d, want %d", n, len(want))
	}
	var got []tuple.Tuple
	if err := cl.ScanAll(nil, nil, func(tp tuple.Tuple) bool {
		got = append(got, tp.Clone())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !equalTuples(got, want) {
		t.Fatalf("ScanAll: got %d tuples, want %d (or order/content mismatch)", len(got), len(want))
	}
	for _, tp := range want {
		ok, err := cl.Contains(tp)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("Contains(%v) = false", tp)
		}
	}
}

func TestClusterInsertRouteScan(t *testing.T) {
	c := startTestCluster(t, 3)
	cl, err := c.Client(ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tuples := spread(300)
	fresh, err := cl.Insert(tuples)
	if err != nil {
		t.Fatal(err)
	}
	if fresh != len(tuples) {
		t.Fatalf("fresh = %d, want %d", fresh, len(tuples))
	}
	// Re-insert is idempotent across the split.
	fresh, err = cl.Insert(tuples[:50])
	if err != nil {
		t.Fatal(err)
	}
	if fresh != 0 {
		t.Fatalf("re-insert fresh = %d, want 0", fresh)
	}
	checkContents(t, cl, tuples)

	// Every shard actually holds a slice of the data (the map spread it).
	for i := 0; i < 3; i++ {
		if n := c.Shard(i).Tree().Len(); n == 0 {
			t.Fatalf("shard %d is empty; routing did not spread", i)
		}
	}

	// Windowed scan with a limit.
	lo, hi := tuples[40], tuples[90]
	got, truncated, err := cl.Scan(lo, hi, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated || len(got) != 20 {
		t.Fatalf("limited scan: %d tuples, truncated=%v; want 20, true", len(got), truncated)
	}
	for i := range got {
		if !tuple.Equal(got[i], tuples[40+i]) {
			t.Fatalf("scan[%d] = %v, want %v", i, got[i], tuples[40+i])
		}
	}

	// Bounds walk across shard boundaries.
	for _, i := range []int{0, 99, 100, 101, 250} {
		got, ok, err := cl.LowerBound(tuples[i])
		if err != nil {
			t.Fatal(err)
		}
		if !ok || !tuple.Equal(got, tuples[i]) {
			t.Fatalf("LowerBound(%v) = %v, %v", tuples[i], got, ok)
		}
		gotU, ok, err := cl.UpperBound(tuples[i])
		if err != nil {
			t.Fatal(err)
		}
		if i == len(tuples)-1 {
			continue
		}
		if !ok || !tuple.Equal(gotU, tuples[i+1]) {
			t.Fatalf("UpperBound(%v) = %v, %v; want %v", tuples[i], gotU, ok, tuples[i+1])
		}
	}
	if _, ok, err := cl.UpperBound(tuples[len(tuples)-1]); err != nil || ok {
		t.Fatalf("UpperBound(last) = ok=%v err=%v, want miss", ok, err)
	}
}

func TestClusterKillRecover(t *testing.T) {
	c := startTestCluster(t, 3)
	cl, err := c.Client(ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tuples := spread(240)
	if _, err := cl.Insert(tuples); err != nil {
		t.Fatal(err)
	}

	// Kill shard 1 abruptly and bring it back from its log.
	if err := c.KillShard(1); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartShard(1); err != nil {
		t.Fatal(err)
	}
	rec := c.Recovered(1)
	if rec == nil || len(rec.Tuples) == 0 {
		t.Fatalf("restart replayed nothing: %+v", rec)
	}

	// The routing client reconnects transparently (same address, shard
	// identity re-verified in the hello) and the data is all there.
	checkContents(t, cl, tuples)

	// The recovered shard keeps accepting logged inserts.
	extra := []tuple.Tuple{{tuples[100][0] + 1, 7777}}
	if _, err := cl.Insert(extra); err != nil {
		t.Fatal(err)
	}
	checkContents(t, cl, append(append([]tuple.Tuple{}, tuples...), extra...))
}

func TestClusterMoveRange(t *testing.T) {
	c := startTestCluster(t, 3)
	cl, err := c.Client(ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tuples := spread(300)
	if _, err := cl.Insert(tuples); err != nil {
		t.Fatal(err)
	}

	// Move the first half of shard 0's range onto shard 2.
	m := c.Map().Map()
	e0 := m.Entries[0]
	mid := e0.Lo + (e0.Hi-e0.Lo)/2
	srcLen := c.Shard(0).Tree().Len()
	dstBefore := c.Shard(2).Tree().Len()
	if err := c.MoveRange(e0.Lo, mid, 2, MoveOptions{ChunkSize: 16}); err != nil {
		t.Fatal(err)
	}

	fin := c.Map().Map()
	if fin.Moving.Active {
		t.Fatal("move left the overlay active")
	}
	if got := fin.Owner(e0.Lo); got != 2 {
		t.Fatalf("Owner(%d) = %d after move, want 2", e0.Lo, got)
	}
	if got := fin.Owner(mid + 1); got != 0 {
		t.Fatalf("Owner(%d) = %d after move, want 0", mid+1, got)
	}
	if got := c.Shard(2).Tree().Len(); got <= dstBefore {
		t.Fatalf("destination grew %d -> %d; move imported nothing", dstBefore, got)
	}

	// Globally nothing changed: the leftover region on shard 0 is
	// invisible to map-driven scans.
	checkContents(t, cl, tuples)

	// New inserts into the moved range land on the new owner.
	moved := []tuple.Tuple{{e0.Lo + 5, 4242}}
	if _, err := cl.Insert(moved); err != nil {
		t.Fatal(err)
	}
	if !c.Shard(2).Tree().Contains(moved[0]) {
		t.Fatal("post-move insert missed the new owner")
	}
	checkContents(t, cl, append(append([]tuple.Tuple{}, tuples...), moved...))

	// Restarting the source replays the fence: the leftover region is
	// gone from its tree, and the global view still holds.
	if err := c.KillShard(0); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartShard(0); err != nil {
		t.Fatal(err)
	}
	rec := c.Recovered(0)
	if rec.Dropped == 0 {
		t.Fatalf("source replay dropped nothing; fence not honoured: %+v", rec)
	}
	if got := c.Shard(0).Tree().Len(); got >= srcLen {
		t.Fatalf("source still holds %d tuples after fenced replay (had %d)", got, srcLen)
	}
	checkContents(t, cl, append(append([]tuple.Tuple{}, tuples...), moved...))
}

func TestClusterShardIdentityPinned(t *testing.T) {
	c := startTestCluster(t, 2)
	addrs := c.Addrs()

	// Dialing shard 0's address while expecting shard 1 must refuse.
	if _, err := serve.Dial(addrs[0], serve.ClientOptions{
		Arity: 2, ExpectShard: true, ShardID: 1,
	}); err == nil {
		t.Fatal("cross-shard dial succeeded; hello shard check missing")
	}
	// A shard-unaware dial to a shard still works (ops tooling).
	scl, err := serve.Dial(addrs[0], serve.ClientOptions{Arity: 2})
	if err != nil {
		t.Fatal(err)
	}
	scl.Close()
}

func TestClusterEphemeralRefusesKill(t *testing.T) {
	c, err := StartCluster(Options{Shards: 2, Arity: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.KillShard(0); err == nil {
		t.Fatal("lossy kill of an unlogged shard was allowed")
	}
}

func TestClusterLogPaths(t *testing.T) {
	dir := t.TempDir()
	c, err := StartCluster(Options{Shards: 2, Arity: 2, LogDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 2; i++ {
		want := filepath.Join(dir, "shard-"+string(rune('0'+i))+".log")
		if got := c.logPath(i); got != want {
			t.Fatalf("logPath(%d) = %q, want %q", i, got, want)
		}
	}
}

// TestClusterLenCountsThroughMerge pins Len to the merged stream: sum
// of shard lengths over-counts after a move (leftovers) and during one
// (duplicates); the client's Len must not.
func TestClusterLenCountsThroughMerge(t *testing.T) {
	c := startTestCluster(t, 2)
	cl, err := c.Client(ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tuples := spread(100)
	if _, err := cl.Insert(tuples); err != nil {
		t.Fatal(err)
	}
	m := c.Map().Map()
	e0 := m.Entries[0]
	if err := c.MoveRange(e0.Lo, e0.Lo+(e0.Hi-e0.Lo)/2, 1, MoveOptions{}); err != nil {
		t.Fatal(err)
	}
	sum := c.Shard(0).Tree().Len() + c.Shard(1).Tree().Len()
	if sum <= len(tuples) {
		t.Fatalf("shard length sum %d; expected leftover over-count past %d", sum, len(tuples))
	}
	n, err := cl.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(tuples) {
		t.Fatalf("Len = %d, want %d (must see through leftovers)", n, len(tuples))
	}
}

// TestClusterMoveAbortKeepsAckedWritesVisible regresses the abort
// path: an insert acknowledged by the destination while the cut was
// live must stay visible after the move fails — republishing the
// pre-move map verbatim (the old behaviour) hid it, because reads then
// consulted only the source, which never saw it.
func TestClusterMoveAbortKeepsAckedWritesVisible(t *testing.T) {
	c := startTestCluster(t, 2)
	cl, err := c.Client(ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tuples := spread(100)
	if _, err := cl.Insert(tuples); err != nil {
		t.Fatal(err)
	}
	m0 := c.Map().Map()
	e0 := m0.Entries[0]
	mid := e0.Lo + (e0.Hi-e0.Lo)/2
	inFlight := tuple.Tuple{e0.Lo + 3, 9999}

	err = c.MoveRange(e0.Lo, mid, 1, MoveOptions{
		ChunkSize: 16,
		hookBeforeFence: func() error {
			// Insert while the cut is live: routes to the destination and
			// is acknowledged there before the move fails.
			if _, err := cl.Insert([]tuple.Tuple{inFlight}); err != nil {
				t.Errorf("cut-window insert: %v", err)
			}
			if !c.Shard(1).Tree().Contains(inFlight) {
				t.Error("cut-window insert missed the destination")
			}
			return errors.New("injected move failure")
		},
	})
	if err == nil {
		t.Fatal("injected failure did not surface from MoveRange")
	}

	fin := c.Map().Map()
	if fin.Moving.Active {
		t.Fatalf("abort left the overlay active: %+v", fin.Moving)
	}
	// cut, draining and cleared generations each bump the version — an
	// abort must never republish an old generation.
	if fin.Version != m0.Version+3 {
		t.Fatalf("map version %d after abort, want %d (no version reuse)", fin.Version, m0.Version+3)
	}
	if got := fin.Owner(e0.Lo); got != 0 {
		t.Fatalf("Owner(%d) = %d after abort, want 0", e0.Lo, got)
	}
	// The acknowledged cut-window insert was reconciled back to the
	// source, so the source-only reads of the aborted map still see it.
	if !c.Shard(0).Tree().Contains(inFlight) {
		t.Fatal("acked cut-window insert not reconciled back to the source")
	}
	all := append(append([]tuple.Tuple{}, tuples...), inFlight)
	checkContents(t, cl, all)

	// A retried move of the same range completes.
	if err := c.MoveRange(e0.Lo, mid, 1, MoveOptions{ChunkSize: 16}); err != nil {
		t.Fatal(err)
	}
	if got := c.Map().Map().Owner(e0.Lo); got != 1 {
		t.Fatalf("Owner(%d) = %d after retried move, want 1", e0.Lo, got)
	}
	checkContents(t, cl, all)
}

// TestClusterMoveAbortDrainFailureRetries drives the worst abort: the
// destination dies before the aborted cut can reconcile. The draining
// overlay must stay published (reads keep consulting both shards), and
// the next MoveRange must finish the drain before moving anything.
func TestClusterMoveAbortDrainFailureRetries(t *testing.T) {
	c := startTestCluster(t, 2)
	cl, err := c.Client(ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tuples := spread(100)
	if _, err := cl.Insert(tuples); err != nil {
		t.Fatal(err)
	}
	m0 := c.Map().Map()
	e0 := m0.Entries[0]
	mid := e0.Lo + (e0.Hi-e0.Lo)/2
	inFlight := tuple.Tuple{e0.Lo + 7, 4242}

	err = c.MoveRange(e0.Lo, mid, 1, MoveOptions{
		ChunkSize: 16,
		hookBeforeFence: func() error {
			if _, err := cl.Insert([]tuple.Tuple{inFlight}); err != nil {
				t.Errorf("cut-window insert: %v", err)
			}
			// Kill the destination: the abort's reconciliation cannot run.
			if err := c.KillShard(1); err != nil {
				t.Errorf("kill destination: %v", err)
			}
			return errors.New("injected move failure")
		},
	})
	if err == nil {
		t.Fatal("injected failure did not surface from MoveRange")
	}
	drain := c.Map().Map()
	if !drain.Moving.Active || !drain.Moving.Draining {
		t.Fatalf("failed reconciliation did not leave the range draining: %+v", drain.Moving)
	}

	// Recover the destination; the draining overlay keeps reads fanning
	// over both shards, so the acked cut-window insert (replayed from
	// the destination's log) is visible even before the drain finishes.
	if err := c.RestartShard(1); err != nil {
		t.Fatal(err)
	}
	all := append(append([]tuple.Tuple{}, tuples...), inFlight)
	checkContents(t, cl, all)

	// The retried move completes: drain first, then the actual move.
	if err := c.MoveRange(e0.Lo, mid, 1, MoveOptions{ChunkSize: 16}); err != nil {
		t.Fatal(err)
	}
	fin := c.Map().Map()
	if fin.Moving.Active {
		t.Fatalf("retried move left an overlay: %+v", fin.Moving)
	}
	if got := fin.Owner(e0.Lo); got != 1 {
		t.Fatalf("Owner(%d) = %d after retried move, want 1", e0.Lo, got)
	}
	// The drain reconciled the cut-window insert to the source before
	// the retried move re-exported it, so it survives a source restart
	// that replays the new fence.
	if err := c.KillShard(0); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartShard(0); err != nil {
		t.Fatal(err)
	}
	checkContents(t, cl, all)
}

// TestClusterMoveRefusesSecondInFlight pins the moveMu-independent
// guard: a map whose overlay is actively moving (not draining) refuses
// a new move instead of stomping the overlay.
func TestClusterMoveRefusesSecondInFlight(t *testing.T) {
	c := startTestCluster(t, 3)
	m := c.Map().Map()
	e0 := m.Entries[0]
	c.src.Set(m.withMoving(e0.Lo, e0.Lo+10, e0.Shard, 1))
	if err := c.MoveRange(e0.Lo+20, e0.Lo+30, 2, MoveOptions{}); err == nil {
		t.Fatal("second move started while one was in flight")
	}
}

// TestClusterScanRevalidatesMapMidScan regresses the stale-map scan
// hazard: a move finalizes and the source shard is killed and
// restarted (replaying the fence) while a paginated scan is mid-run.
// A scan pinned to the pre-move map would direct the run's remaining
// pages at the source, which no longer holds the range, silently
// omitting acknowledged tuples; the merge must notice the generation
// change and restart from its first unemitted position.
func TestClusterScanRevalidatesMapMidScan(t *testing.T) {
	c := startTestCluster(t, 2)
	// A small page limit keeps the hazard inside a run's pagination.
	cl, err := c.Client(ClientOptions{PageLimit: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tuples := spread(200)
	if _, err := cl.Insert(tuples); err != nil {
		t.Fatal(err)
	}
	m := c.Map().Map()
	e0 := m.Entries[0]
	mid := e0.Lo + (e0.Hi-e0.Lo)/2

	var got []tuple.Tuple
	fired := false
	if err := cl.ScanAll(nil, nil, func(tp tuple.Tuple) bool {
		got = append(got, tp.Clone())
		if len(got) == 10 && !fired {
			fired = true
			// Move the range the scan is inside of, then crash-cycle the
			// source so its fence replay drops the moved tuples.
			if err := c.MoveRange(e0.Lo, mid, 1, MoveOptions{ChunkSize: 32}); err != nil {
				t.Errorf("mid-scan move: %v", err)
			}
			if err := c.KillShard(0); err != nil {
				t.Errorf("mid-scan kill: %v", err)
			}
			if err := c.RestartShard(0); err != nil {
				t.Errorf("mid-scan restart: %v", err)
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("hazard never fired")
	}
	if !equalTuples(got, canon(tuples)) {
		t.Fatalf("mid-scan rebalance lost tuples: got %d, want %d", len(got), len(tuples))
	}
}

// TestClusterInsertChunksToServerCap regresses the unchunked sub-batch
// path: a single-shard share larger than the server's MaxBatch must be
// split client-side, not refused as a protocol error.
func TestClusterInsertChunksToServerCap(t *testing.T) {
	c, err := StartCluster(Options{
		Shards: 2, Arity: 2, LogDir: t.TempDir(),
		Serve: serve.Options{MaxBatch: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	cl, err := c.Client(ClientOptions{MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tuples := spread(100) // ~50 per shard, far above the 16-tuple cap
	fresh, err := cl.Insert(tuples)
	if err != nil {
		t.Fatal(err)
	}
	if fresh != len(tuples) {
		t.Fatalf("fresh = %d, want %d", fresh, len(tuples))
	}
	checkContents(t, cl, tuples)
}

// sortTuples is a test convenience.
func sortTuples(ts []tuple.Tuple) {
	sort.Slice(ts, func(i, j int) bool { return tuple.Less(ts[i], ts[j]) })
}

// equalTuples reports element-wise equality in order.
func equalTuples(a, b []tuple.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !tuple.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}
