//go:build !logcrash

package cluster

// CrashInjecting reports whether the log crash-injection shim is
// compiled in. False in default builds: every crashCut call sits
// behind an `if CrashInjecting` constant branch and compiles away
// entirely.
const CrashInjecting = false

// CrashSite identifies a log flush an injector may cut short. Inert in
// default builds.
type CrashSite uint8

// The crash sites, mirrored in logcrash_on.go.
const (
	crashSiteEpoch CrashSite = iota
	crashSiteFence
)

// crashCut is the no-op stand-in for the crash injector in default
// builds.
func crashCut(CrashSite, int) (int, bool) { return 0, false }
