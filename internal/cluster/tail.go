package cluster

import (
	"fmt"
	"io"
	"os"
)

// LogTailer is a read-only cursor over a shard insert log that decodes
// committed epochs in order, sharing the decode path of crash-recovery
// replay (decodeEpoch). Unlike replay it never truncates: an incomplete
// tail — a flush the writer has not finished, or a crash artifact at the
// end of a dead leader's log — makes Next report "nothing yet" and the
// tailer retries from the same offset once more bytes arrive. This is
// what the leader-side replication streamer runs on (a single write(2)
// is not atomic for concurrent readers, so a tailer may observe a
// prefix of an in-flight epoch), and what promotion catch-up uses to
// drain a dead leader's log.
//
// A tailer holds its own file descriptor and may run concurrently with
// the writing ShardLog. It must NOT outlive a reopen of the same path:
// reopening truncates torn tails, which can rewrite offsets a live
// tailer has already buffered.
type LogTailer struct {
	f     *os.File
	arity int
	off   int64  // file offset of the first undecoded byte
	seq   uint64 // last epoch sequence returned
	buf   []byte // bytes [off, off+len(buf)) of the file
}

// tailChunk is the read granularity of LogTailer.fill.
const tailChunk = 1 << 16

// TailShardLog opens a read-only tailer over the log at path and
// fast-forwards it past epoch `after` (0 starts from the beginning), so
// the first Next returns epoch after+1. Fast-forwarding decodes from the
// start of the file — the log has no index — but discards the decoded
// epochs without materialising their tuples beyond one epoch at a time.
func TailShardLog(path string, arity int, after uint64) (*LogTailer, error) {
	if arity < 1 {
		return nil, fmt.Errorf("cluster: arity %d out of range", arity)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	t := &LogTailer{f: f, arity: arity}
	for t.seq < after {
		ep, ok, err := t.Next()
		if err != nil {
			f.Close()
			return nil, err
		}
		if !ok {
			// The log ends before the requested epoch; position at its
			// committed end and let the caller retry as it grows.
			break
		}
		_ = ep
	}
	return t, nil
}

// ResumeShardLog opens a read-only tailer positioned at a known
// (offset, seq) pair previously captured via Offset and Seq — the
// resume-from-offset path, which skips the fast-forward decode. The pair
// must name a committed epoch boundary of the same log; anything else
// surfaces as ErrLogCorrupt on the next decode.
func ResumeShardLog(path string, arity int, offset int64, seq uint64) (*LogTailer, error) {
	if arity < 1 {
		return nil, fmt.Errorf("cluster: arity %d out of range", arity)
	}
	if offset < 0 {
		return nil, fmt.Errorf("cluster: negative resume offset %d", offset)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &LogTailer{f: f, arity: arity, off: offset, seq: seq}, nil
}

// Next returns the next committed epoch. ok is false when the log holds
// no further complete epoch yet — end of file or a torn/in-flight tail —
// in which case the tailer stays put and the caller retries later (block
// on the writer's Pulse, or poll for an unwatched file). Errors are
// permanent: ErrLogCorrupt for a damaged committed prefix, or an I/O
// error from the underlying file.
func (t *LogTailer) Next() (*Epoch, bool, error) {
	for {
		ep, n, err := decodeEpoch(t.buf, t.off, t.seq+1, t.arity)
		if err != nil {
			return nil, false, err
		}
		if ep != nil {
			// Slide the remainder to the front of the backing array so the
			// buffer's footprint stays bounded by one epoch plus one chunk.
			t.buf = append(t.buf[:0], t.buf[n:]...)
			t.off += int64(n)
			t.seq = ep.Seq
			return ep, true, nil
		}
		got, err := t.fill()
		if err != nil {
			return nil, false, err
		}
		if got == 0 {
			return nil, false, nil
		}
	}
}

// fill reads more bytes from the file into the decode buffer, returning
// how many arrived (0 at end of file).
func (t *LogTailer) fill() (int, error) {
	chunk := make([]byte, tailChunk)
	n, err := t.f.ReadAt(chunk, t.off+int64(len(t.buf)))
	if n > 0 {
		t.buf = append(t.buf, chunk[:n]...)
	}
	if err != nil && err != io.EOF {
		return n, err
	}
	return n, nil
}

// Offset returns the file offset of the first undecoded byte — a
// committed epoch boundary usable with ResumeShardLog.
func (t *LogTailer) Offset() int64 { return t.off }

// Seq returns the sequence number of the last epoch Next returned.
func (t *LogTailer) Seq() uint64 { return t.seq }

// Close releases the tailer's file descriptor.
func (t *LogTailer) Close() error { return t.f.Close() }
