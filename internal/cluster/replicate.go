package cluster

import (
	"fmt"
	"sync"
	"time"

	"specbtree/internal/serve"
)

// This file wires the shard insert log into the serve layer's
// replication stream (the leader side) and gives the cluster control
// plane its follower surface: attach read replicas to a shard, and
// promote the most caught-up one when the leader dies (DESIGN.md §16).
// The follower runtime itself lives in internal/replica; the cluster
// commands it through the FollowerHandle interface so the import
// direction stays replica -> cluster -> serve.

// ReplicaSource adapts the shard log to serve.ReplicaSource: committed
// epochs are read back through a tailing reader (LogTailer) sharing
// recovery's decode path, and idle streamers block on the log's flush
// pulse. Wired into serve.Options.Replica on every leader with a log.
func (l *ShardLog) ReplicaSource() serve.ReplicaSource { return logSource{l} }

type logSource struct{ l *ShardLog }

func (s logSource) CommittedSeq() uint64 { return s.l.CommittedSeq() }

func (s logSource) TailEpochs(after uint64) (serve.EpochTailer, error) {
	t, err := TailShardLog(s.l.path, s.l.arity, after)
	if err != nil {
		return nil, err
	}
	return &logEpochTailer{t: t, l: s.l}, nil
}

// logEpochTailer adapts LogTailer to serve.EpochTailer.
type logEpochTailer struct {
	t *LogTailer
	l *ShardLog
}

func (lt *logEpochTailer) Next() (serve.ReplEpoch, bool, error) {
	ep, ok, err := lt.t.Next()
	if err != nil || !ok {
		return serve.ReplEpoch{}, false, err
	}
	out := serve.ReplEpoch{Seq: ep.Seq, Batches: ep.Batches}
	for _, f := range ep.Fences {
		out.Fences = append(out.Fences, serve.ReplFence{Lo: f.Lo, Hi: f.Hi, Dst: f.Dst})
	}
	return out, true, nil
}

// Wait blocks until the log pulses a flush, stop closes, or max
// elapses. The pulse channel is grabbed after Next already reported
// "nothing yet", so a flush racing the two calls is noticed at worst
// one max later — which is why streamers keep max at their heartbeat
// interval.
func (lt *logEpochTailer) Wait(stop <-chan struct{}, max time.Duration) {
	p := lt.l.Pulse()
	timer := time.NewTimer(max)
	defer timer.Stop()
	select {
	case <-p:
	case <-stop:
	case <-timer.C:
	}
}

func (lt *logEpochTailer) Close() error { return lt.t.Close() }

// Directory publishes the live shard address table to routing clients.
// Promotion repoints a shard's address at the promoted follower; a
// client holding the directory re-resolves on its next operation — no
// client restart. Addresses otherwise stay stable (RestartShard rebinds
// the same one).
type Directory struct {
	mu    sync.Mutex
	addrs []string
}

// NewDirectory builds a directory over a fixed initial table.
func NewDirectory(addrs []string) *Directory {
	d := &Directory{addrs: make([]string, len(addrs))}
	copy(d.addrs, addrs)
	return d
}

// Addr returns shard i's current address ("" when out of range).
func (d *Directory) Addr(i int) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if i < 0 || i >= len(d.addrs) {
		return ""
	}
	return d.addrs[i]
}

// Addrs returns a copy of the current table.
func (d *Directory) Addrs() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, len(d.addrs))
	copy(out, d.addrs)
	return out
}

// Set repoints shard i's address.
func (d *Directory) Set(i int, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if i >= 0 && i < len(d.addrs) {
		d.addrs[i] = addr
	}
}

// FollowerHandle is the cluster's command surface over one attached
// read replica (implemented by replica.Follower). The cluster never
// imports the replica package; promotion drives the follower through
// this interface.
type FollowerHandle interface {
	// Addr is the follower's serving address.
	Addr() string
	// Applied is the follower's applied-epoch watermark.
	Applied() uint64
	// CatchUpFromLog replays the committed tail of the (dead) leader's
	// durable log past the follower's watermark, returning the new
	// watermark. A torn tail in that log is the end of the committed
	// prefix — those bytes were never acknowledged.
	CatchUpFromLog(path string) (uint64, error)
	// Promote flips the follower into a writable leader serving from
	// its own durable log.
	Promote() error
	// Server is the follower's serving surface; after promotion the
	// cluster uses it as the shard's control plane.
	Server() *serve.Server
	// Log is the follower's own durable log; after promotion it is the
	// shard's log (fences and epochs append to it).
	Log() *ShardLog
}

// AttachFollower registers a follower as a read replica of shard i.
// Routing clients created afterwards offload bounded-staleness reads
// to it, and Promote considers it for failover.
func (c *Cluster) AttachFollower(i int, h FollowerHandle) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.shards) {
		return fmt.Errorf("cluster: no shard %d", i)
	}
	c.followers[i] = append(c.followers[i], h)
	return nil
}

// Promote fails shard i over to its most caught-up follower. The
// caller must have stopped the old leader first (KillShard); promotion
// then replays the committed tail of the leader's durable log into the
// follower — every acknowledged write is in that prefix, so none is
// lost — flips the follower writable, and repoints the shard's
// directory entry. The old leader stays fenced out: RestartShard
// refuses a promoted shard, because rebinding the old address would
// put two writable leaders behind one shard number (split-brain).
// Returns the new leader's address.
func (c *Cluster) Promote(i int) (string, error) {
	if c.opts.LogDir == "" {
		return "", fmt.Errorf("cluster: promotion needs durable logs; cluster runs without persistence")
	}
	c.mu.Lock()
	if i < 0 || i >= len(c.shards) {
		c.mu.Unlock()
		return "", fmt.Errorf("cluster: no shard %d", i)
	}
	st := c.shards[i]
	if st.promoted {
		c.mu.Unlock()
		return "", fmt.Errorf("cluster: shard %d already failed over once; chained promotion not supported", i)
	}
	followers := append([]FollowerHandle(nil), c.followers[i]...)
	c.mu.Unlock()
	if len(followers) == 0 {
		return "", fmt.Errorf("cluster: shard %d has no followers to promote", i)
	}

	best := followers[0]
	for _, h := range followers[1:] {
		if h.Applied() > best.Applied() {
			best = h
		}
	}
	if _, err := best.CatchUpFromLog(c.logPath(i)); err != nil {
		return "", fmt.Errorf("cluster: shard %d catch-up: %w", i, err)
	}
	if err := best.Promote(); err != nil {
		return "", fmt.Errorf("cluster: shard %d promote: %w", i, err)
	}

	c.mu.Lock()
	st.promoted = true
	st.srv = best.Server()
	st.log = best.Log()
	st.rec = nil
	st.addr = best.Addr()
	// The promoted follower stops being a follower of this shard.
	keep := c.followers[i][:0]
	for _, h := range c.followers[i] {
		if h != best {
			keep = append(keep, h)
		}
	}
	c.followers[i] = keep
	c.mu.Unlock()
	c.dir.Set(i, best.Addr())
	return best.Addr(), nil
}

// FollowerAddrs returns the attached follower address table
// (addrs[i] = shard i's followers) — what Cluster.Client seeds its
// follower routing with.
func (c *Cluster) FollowerAddrs() [][]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]string, len(c.shards))
	for i, hs := range c.followers {
		for _, h := range hs {
			out[i] = append(out[i], h.Addr())
		}
	}
	return out
}

// Directory returns the cluster's live shard address directory.
func (c *Cluster) Directory() *Directory { return c.dir }
