//go:build logcrash

package cluster

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"specbtree/internal/tuple"
)

// The kill-point regression tests: each one cuts the log flush at a
// byte-precise point a real SIGKILL could produce, then asserts the
// hardened replay recovers EXACTLY the acknowledged prefix — and that
// the unhardened reference replay (naiveReplay below) does not, so
// each test fails on pre-hardening replay code.
//
// The acked set is what LogEpoch returned nil for; the crashed epoch's
// LogEpoch returned ErrCrashed, so its tuples were never acknowledged
// and must not reappear.

// naiveReplay is the unhardened replay these tests regress against: no
// checksum verification, no commit-marker gating (insert records apply
// immediately), no epoch-sequence check, and torn trailing records are
// decoded tuple-by-tuple as far as the bytes reach instead of being
// truncated. Every kill point makes it disagree with the hardened
// replay in log.go.
func naiveReplay(data []byte, arity int) []tuple.Tuple {
	var out []tuple.Tuple
	off := 0
	for off < len(data) {
		if len(data)-off < 4 {
			break
		}
		bodyLen := int(rd32(data[off:]))
		end := off + 4 + bodyLen
		if end > len(data) {
			end = len(data)
		}
		body := data[off+4 : end]
		if len(body) >= 9 {
			kind, payload := body[0], body[9:]
			switch kind {
			case recInsert:
				if len(payload) >= 4 {
					count := int(rd32(payload))
					payload = payload[4:]
					if avail := len(payload) / (arity * 8); avail < count {
						count = avail // decode the torn record's partial tuples
					}
					for i := 0; i < count; i++ {
						tt := make(tuple.Tuple, arity)
						for j := 0; j < arity; j++ {
							tt[j] = rd64(payload[(i*arity+j)*8:])
						}
						out = append(out, tt)
					}
				}
			case recFence:
				if len(payload) >= 16 {
					lo, hi := rd64(payload), rd64(payload[8:])
					kept := out[:0]
					for _, tt := range out {
						if tt[0] >= lo && tt[0] <= hi {
							continue
						}
						kept = append(kept, tt)
					}
					out = kept
				}
			}
		}
		off = end + 4
	}
	return out
}

// crashScenario drives a log through two acked epochs, then a third
// whose flush is cut after `cut` bytes (cut < 0 means cut = total-cut
// from the end). It returns the acked tuples, the crashed epoch's
// tuples, and the log path.
func crashScenario(t *testing.T, cutAt func(n int) int) (acked, lost []tuple.Tuple, path string) {
	t.Helper()
	path = filepath.Join(t.TempDir(), "shard.log")
	l, _, err := OpenShardLog(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 2; e++ {
		b := mkTuples(uint64(e*100), 6)
		if err := l.LogEpoch([][]tuple.Tuple{b}); err != nil {
			t.Fatal(err)
		}
		acked = append(acked, b...)
	}
	lost = mkTuples(500, 6)
	SetCrashInjector(func(site CrashSite, n int) (int, bool) {
		if site != CrashSiteEpoch {
			return 0, false
		}
		return cutAt(n), true
	})
	defer ClearCrashInjector()
	if err := l.LogEpoch([][]tuple.Tuple{lost}); err == nil {
		t.Fatal("cut flush did not fail the epoch")
	} else if !errors.Is(err, ErrCrashed) {
		t.Fatalf("cut flush failed with %v, want ErrCrashed", err)
	}
	// The crashed writer refuses further work until reopened.
	if err := l.LogEpoch([][]tuple.Tuple{mkTuples(900, 1)}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash append returned %v, want ErrCrashed", err)
	}
	l.Close()
	return acked, lost, path
}

// checkKillPoint reopens the cut log and asserts hardened replay =
// acked prefix exactly, while naive replay diverges.
func checkKillPoint(t *testing.T, acked []tuple.Tuple, path string, wantTorn bool) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	l, rec, err := OpenShardLog(path, 2)
	if err != nil {
		t.Fatalf("hardened replay failed: %v", err)
	}
	defer l.Close()
	sameTuples(t, rec.Tuples, acked)
	if rec.Epochs != 2 {
		t.Fatalf("recovered %d epochs, want 2", rec.Epochs)
	}
	if rec.TornTail != wantTorn {
		t.Fatalf("TornTail = %v, want %v", rec.TornTail, wantTorn)
	}
	// The recovered log accepts new epochs on the truncated prefix.
	if err := l.LogEpoch([][]tuple.Tuple{mkTuples(700, 2)}); err != nil {
		t.Fatal(err)
	}

	naive := canon(naiveReplay(data, 2))
	want := canon(acked)
	diverges := len(naive) != len(want)
	for i := 0; !diverges && i < len(naive); i++ {
		diverges = !tuple.Equal(naive[i], want[i])
	}
	if !diverges {
		t.Fatal("naive replay recovered the exact acked prefix — kill point does not regress unhardened replay")
	}
}

// TestKillMidRecord cuts the flush inside the insert record's tuple
// payload: some whole tuples of the crashed epoch are on disk.
// Hardened replay truncates them (no commit marker); naive replay
// resurrects never-acked tuples.
func TestKillMidRecord(t *testing.T) {
	acked, _, path := crashScenario(t, func(n int) int {
		return 4 + 9 + 4 + 3*2*8 // len + head + count + three whole tuples
	})
	checkKillPoint(t, acked, path, true)
}

// TestKillTornTuple cuts the flush mid-tuple — not even a whole row of
// the crashed record is decodable past the cut.
func TestKillTornTuple(t *testing.T) {
	acked, _, path := crashScenario(t, func(n int) int {
		return 4 + 9 + 4 + 2*2*8 + 5 // two whole tuples, then 5 bytes of the third
	})
	checkKillPoint(t, acked, path, true)
}

// TestKillMissingCommitMarker cuts the flush exactly after the
// complete, checksummed insert record and before the commit marker:
// the subtlest point, because every byte on disk verifies. Hardened
// replay still drops the epoch — no commit marker, never acked; naive
// replay applies it.
func TestKillMissingCommitMarker(t *testing.T) {
	insertLen := 4 + (9 + 4 + 6*2*8) + 4
	acked, _, path := crashScenario(t, func(n int) int {
		return insertLen
	})
	checkKillPoint(t, acked, path, true)
}

// TestKillTornLengthPrefix cuts inside the commit marker's 4-byte
// length field, leaving a complete insert record plus a 2-byte stub.
func TestKillTornLengthPrefix(t *testing.T) {
	insertLen := 4 + (9 + 4 + 6*2*8) + 4
	acked, _, path := crashScenario(t, func(n int) int {
		return insertLen + 2
	})
	checkKillPoint(t, acked, path, true)
}

// TestKillFenceFlush cuts AppendFence after the fence record but
// before its commit marker. The move was not acknowledged, so hardened
// replay keeps the range on this shard; naive replay applies the
// uncommitted fence and loses the range's tuples.
func TestKillFenceFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.log")
	l, _, err := OpenShardLog(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	acked := []tuple.Tuple{{10, 1}, {20, 2}, {30, 3}}
	if err := l.LogEpoch([][]tuple.Tuple{acked}); err != nil {
		t.Fatal(err)
	}
	fenceLen := 4 + (9 + 20) + 4
	SetCrashInjector(func(site CrashSite, n int) (int, bool) {
		if site != CrashSiteFence {
			return 0, false
		}
		return fenceLen, true
	})
	defer ClearCrashInjector()
	if err := l.AppendFence(15, 35, 1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("cut fence flush returned %v, want ErrCrashed", err)
	}
	l.Close()
	ClearCrashInjector()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, rec, err := OpenShardLog(path, 2)
	if err != nil {
		t.Fatalf("hardened replay failed: %v", err)
	}
	if !rec.TornTail {
		t.Fatal("uncommitted fence not reported as torn tail")
	}
	sameTuples(t, rec.Tuples, acked) // fence not applied: range stays
	naive := naiveReplay(data, 2)
	if len(naive) == len(acked) {
		t.Fatal("naive replay kept the fenced range — kill point does not regress unhardened replay")
	}
}

// TestClusterFenceFailureFinalizesToDestination pins the move
// protocol's fence-failure contract: once the import is durable on the
// destination, a failed source fence must finalize ownership to the
// destination — never restore it to the source. The dangerous variant
// is a fence that reached disk before the failure surfaced: a source
// that later restarts replays it and drops the range, so a map still
// routing reads at the source would silently hide acknowledged writes.
// Both variants (fence fully durable, fence torn) are exercised; in
// both the cluster stays exact through a source crash-cycle.
func TestClusterFenceFailureFinalizesToDestination(t *testing.T) {
	fenceLen := 4 + (9 + 20) + 4
	for _, tc := range []struct {
		name string
		cut  func(n int) int
	}{
		{"fence durable", func(n int) int { return n }},
		{"fence torn", func(n int) int { return fenceLen / 2 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := startTestCluster(t, 2)
			cl, err := c.Client(ClientOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			tuples := spread(100)
			if _, err := cl.Insert(tuples); err != nil {
				t.Fatal(err)
			}
			m0 := c.Map().Map()
			e0 := m0.Entries[0]
			mid := e0.Lo + (e0.Hi-e0.Lo)/2

			SetCrashInjector(func(site CrashSite, n int) (int, bool) {
				if site != CrashSiteFence {
					return 0, false
				}
				return tc.cut(n), true
			})
			defer ClearCrashInjector()
			if err := c.MoveRange(e0.Lo, mid, 1, MoveOptions{ChunkSize: 32}); err != nil {
				t.Fatalf("fence-failed move surfaced an error: %v", err)
			}
			ClearCrashInjector()

			fin := c.Map().Map()
			if fin.Moving.Active {
				t.Fatalf("fence-failed move left the overlay active: %+v", fin.Moving)
			}
			if got := fin.Owner(e0.Lo); got != 1 {
				t.Fatalf("Owner(%d) = %d after fence-failed move, want 1 (destination)", e0.Lo, got)
			}
			checkContents(t, cl, tuples)

			// Crash-cycle the source: a durable fence replays (dropping
			// the range's leftovers), a torn one truncates (keeping
			// them) — either way the destination-owning map stays exact.
			if err := c.KillShard(0); err != nil {
				t.Fatal(err)
			}
			if err := c.RestartShard(0); err != nil {
				t.Fatal(err)
			}
			checkContents(t, cl, tuples)
		})
	}
}

// TestNaiveNonTruncationCorruptsAppends demonstrates why recovery MUST
// truncate the torn tail: an unhardened recovery that leaves the torn
// bytes in place and appends the next epoch after them produces a log
// whose torn record now frames into the fresh epoch's bytes — the
// hardened replay correctly refuses it as corrupt, and the acked
// post-recovery epoch is unrecoverable.
func TestNaiveNonTruncationCorruptsAppends(t *testing.T) {
	acked, _, path := crashScenario(t, func(n int) int {
		return n - 7 // all but the tail of the commit marker
	})
	// Unhardened recovery: no truncation, append straight after the
	// torn bytes.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var epoch []byte
	epoch = appendInsertRecord(epoch, 3, mkTuples(700, 2))
	epoch = appendRecord(epoch, recCommit, 3, nil)
	if _, err := f.Write(epoch); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, _, err := OpenShardLog(path, 2); !errors.Is(err, ErrLogCorrupt) {
		t.Fatalf("append-after-torn-tail recovered with err=%v, want ErrLogCorrupt", err)
	}
	_ = acked
}
