//go:build logcrash

package cluster

import "sync/atomic"

// CrashInjecting reports whether the log crash-injection shim is
// compiled in. True only under the "logcrash" build tag.
const CrashInjecting = true

// CrashSite identifies a log flush an injector may cut short.
type CrashSite uint8

// The crash sites: one per durable append path. The injector sees
// which protocol step is flushing and the exact size of the composed
// epoch buffer, so a test can compute byte-precise kill points —
// mid-record, between a record and its commit marker, or after a
// complete but checksum-less prefix.
const (
	crashSiteEpoch CrashSite = iota
	crashSiteFence
)

// CrashSiteEpoch is LogEpoch's single flush of insert record(s) plus
// commit marker.
const CrashSiteEpoch = crashSiteEpoch

// CrashSiteFence is AppendFence's flush of fence plus commit marker.
const CrashSiteFence = crashSiteFence

// CrashProbe is a crash injector: it receives the flush site and the
// byte length of the composed epoch buffer, and returns how many bytes
// reach the file before the simulated kill. Return ok=false to let the
// flush complete normally. After a cut the ShardLog behaves like a
// killed process: the partial bytes are synced, and every further
// operation returns ErrCrashed until the log is reopened.
type CrashProbe func(site CrashSite, n int) (cut int, ok bool)

// crashInjector is the installed probe; nil means injection is inert.
var crashInjector atomic.Pointer[CrashProbe]

// SetCrashInjector installs p as the process-wide crash injector;
// p == nil uninstalls. Install before the flush under test and clear
// after — installation is atomic but not synchronised with in-flight
// flushes.
func SetCrashInjector(p CrashProbe) {
	if p == nil {
		crashInjector.Store(nil)
		return
	}
	crashInjector.Store(&p)
}

// ClearCrashInjector uninstalls the crash injector.
func ClearCrashInjector() { crashInjector.Store(nil) }

// crashCut consults the installed injector, defaulting to no cut.
func crashCut(site CrashSite, n int) (int, bool) {
	if p := crashInjector.Load(); p != nil {
		return (*p)(site, n)
	}
	return 0, false
}
