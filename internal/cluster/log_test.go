package cluster

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"specbtree/internal/tuple"
)

// mkTuples builds n arity-2 tuples (base+i, i).
func mkTuples(base uint64, n int) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	for i := range out {
		out[i] = tuple.Tuple{base + uint64(i), uint64(i)}
	}
	return out
}

// canon sorts and deduplicates a tuple slice for order-insensitive
// comparison.
func canon(ts []tuple.Tuple) []tuple.Tuple {
	c := make([]tuple.Tuple, len(ts))
	copy(c, ts)
	sort.Slice(c, func(i, j int) bool { return tuple.Less(c[i], c[j]) })
	out := c[:0]
	for _, t := range c {
		if len(out) == 0 || !tuple.Equal(t, out[len(out)-1]) {
			out = append(out, t)
		}
	}
	return out
}

func sameTuples(t *testing.T, got, want []tuple.Tuple) {
	t.Helper()
	g, w := canon(got), canon(want)
	if len(g) != len(w) {
		t.Fatalf("recovered %d distinct tuples, want %d", len(g), len(w))
	}
	for i := range g {
		if !tuple.Equal(g[i], w[i]) {
			t.Fatalf("recovered tuple %d = %v, want %v", i, g[i], w[i])
		}
	}
}

func TestShardLogRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard0.log")
	l, rec, err := OpenShardLog(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tuples) != 0 || rec.Epochs != 0 {
		t.Fatalf("fresh log recovered %d tuples, %d epochs", len(rec.Tuples), rec.Epochs)
	}
	var acked []tuple.Tuple
	for e := 0; e < 5; e++ {
		b1 := mkTuples(uint64(e*100), 7)
		b2 := mkTuples(uint64(e*100+50), 3)
		if err := l.LogEpoch([][]tuple.Tuple{b1, b2}); err != nil {
			t.Fatal(err)
		}
		acked = append(acked, b1...)
		acked = append(acked, b2...)
	}
	// Barrier epochs carry no tuples and are not logged.
	if err := l.LogEpoch(nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2, err := OpenShardLog(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec2.Epochs != 5 {
		t.Fatalf("recovered %d epochs, want 5", rec2.Epochs)
	}
	if rec2.TornTail {
		t.Fatal("clean log reported a torn tail")
	}
	sameTuples(t, rec2.Tuples, acked)
	tree := BuildTree(rec2.Tuples, 2)
	if tree.Len() != len(canon(acked)) {
		t.Fatalf("rebuilt tree has %d tuples, want %d", tree.Len(), len(canon(acked)))
	}
	for _, tt := range acked {
		if !tree.Contains(tt) {
			t.Fatalf("rebuilt tree missing %v", tt)
		}
	}
	// The reopened log continues the epoch sequence.
	extra := mkTuples(9000, 4)
	if err := l2.LogEpoch([][]tuple.Tuple{extra}); err != nil {
		t.Fatal(err)
	}
	_, rec3, err := OpenShardLog(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rec3.Epochs != 6 {
		t.Fatalf("after append, recovered %d epochs, want 6", rec3.Epochs)
	}
	sameTuples(t, rec3.Tuples, append(append([]tuple.Tuple{}, acked...), extra...))
}

func TestShardLogFenceDropsRange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard0.log")
	l, _, err := OpenShardLog(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.LogEpoch([][]tuple.Tuple{{{10, 1}, {20, 2}, {30, 3}, {40, 4}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendFence(15, 35, 1); err != nil {
		t.Fatal(err)
	}
	// Tuples logged after the fence stay, even inside the old range:
	// the shard map routed them here on purpose.
	if err := l.LogEpoch([][]tuple.Tuple{{{25, 9}}}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, rec, err := OpenShardLog(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	sameTuples(t, rec.Tuples, []tuple.Tuple{{10, 1}, {40, 4}, {25, 9}})
	if rec.Dropped != 2 {
		t.Fatalf("fence dropped %d tuples, want 2", rec.Dropped)
	}
}

func TestShardLogTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard0.log")
	l, _, err := OpenShardLog(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	acked := mkTuples(0, 8)
	if err := l.LogEpoch([][]tuple.Tuple{acked}); err != nil {
		t.Fatal(err)
	}
	if err := l.LogEpoch([][]tuple.Tuple{mkTuples(1000, 8)}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Tear the file mid-way through the second epoch, as a crash during
	// its flush would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstEnd := epochEnd(t, data, 1)
	if err := os.WriteFile(path, data[:firstEnd+10], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec, err := OpenShardLog(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.TornTail {
		t.Fatal("torn tail not reported")
	}
	if rec.Epochs != 1 {
		t.Fatalf("recovered %d epochs, want 1", rec.Epochs)
	}
	sameTuples(t, rec.Tuples, acked)
	// The artifact was truncated: appending and replaying again works.
	extra := mkTuples(2000, 3)
	if err := l2.LogEpoch([][]tuple.Tuple{extra}); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, rec2, err := OpenShardLog(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.TornTail {
		t.Fatal("tail still torn after recovery truncation")
	}
	sameTuples(t, rec2.Tuples, append(append([]tuple.Tuple{}, acked...), extra...))
}

func TestShardLogRejectsTrailingGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard0.log")
	l, _, err := OpenShardLog(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.LogEpoch([][]tuple.Tuple{mkTuples(0, 4)}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("GARBAGE GARBAGE GARBAGE")
	f.Close()

	if _, _, err := OpenShardLog(path, 2); !errors.Is(err, ErrLogCorrupt) {
		t.Fatalf("garbage tail recovered with err=%v, want ErrLogCorrupt", err)
	}
}

func TestShardLogRejectsBitrot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard0.log")
	l, _, err := OpenShardLog(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.LogEpoch([][]tuple.Tuple{mkTuples(0, 4)}); err != nil {
		t.Fatal(err)
	}
	if err := l.LogEpoch([][]tuple.Tuple{mkTuples(100, 4)}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Flip one payload byte inside the first (committed, non-trailing)
	// epoch: the checksum must catch it.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[12] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenShardLog(path, 2); !errors.Is(err, ErrLogCorrupt) {
		t.Fatalf("bit-rotted log recovered with err=%v, want ErrLogCorrupt", err)
	}
}

// TestShardLogRejectsEpochZero pins the sequence check's lower edge:
// the writer numbers epochs from 1, so a log whose first epoch claims
// seq 0 is corrupt by definition — without the explicit rejection it
// would slip through (no epoch open, and 0 == the zero epochSeq) and
// replay as committed.
func TestShardLogRejectsEpochZero(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard0.log")
	var raw []byte
	raw = appendInsertRecord(raw, 0, mkTuples(0, 3))
	raw = appendRecord(raw, recCommit, 0, nil)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenShardLog(path, 2); !errors.Is(err, ErrLogCorrupt) {
		t.Fatalf("epoch-0 log recovered with err=%v, want ErrLogCorrupt", err)
	}
}

// TestShardLogPoisonedAfterFailedFlush pins the append-after-torn-write
// hardening: once a flush fails, the file's tail is untrustworthy (a
// short write would make the next epoch frame into garbage and turn a
// recoverable tail into ErrLogCorrupt), so the log must refuse every
// further append until reopened.
func TestShardLogPoisonedAfterFailedFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard0.log")
	l, _, err := OpenShardLog(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	acked := mkTuples(0, 4)
	if err := l.LogEpoch([][]tuple.Tuple{acked}); err != nil {
		t.Fatal(err)
	}
	// Close the fd underneath the writer: the next flush's write fails
	// like any real I/O error would.
	l.f.Close()
	if err := l.LogEpoch([][]tuple.Tuple{mkTuples(100, 4)}); err == nil {
		t.Fatal("flush on a closed file reported success")
	}
	if err := l.LogEpoch([][]tuple.Tuple{mkTuples(200, 4)}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append after failed flush returned %v, want ErrCrashed", err)
	}
	if err := l.AppendFence(0, 10, 1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("fence after failed flush returned %v, want ErrCrashed", err)
	}
	// A reopen replays the intact committed prefix and appends again.
	l2, rec, err := OpenShardLog(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	sameTuples(t, rec.Tuples, acked)
	if err := l2.LogEpoch([][]tuple.Tuple{mkTuples(300, 2)}); err != nil {
		t.Fatal(err)
	}
}

// epochEnd returns the byte offset just past the n-th committed epoch
// by walking the record framing.
func epochEnd(t *testing.T, data []byte, n int) int {
	t.Helper()
	off, epochs := 0, 0
	for off < len(data) {
		bodyLen := int(rd32(data[off:]))
		kind := data[off+4]
		off += 4 + bodyLen + 4
		if kind == recCommit {
			epochs++
			if epochs == n {
				return off
			}
		}
	}
	t.Fatalf("log holds only %d epochs, want %d", epochs, n)
	return 0
}
