package cluster

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"specbtree/internal/tuple"
)

// TestTailerFollowsLiveLog tails a log while the writer appends,
// checking that epochs arrive in order with the logged batches intact
// and that Next reports "nothing yet" at the committed end.
func TestTailerFollowsLiveLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard0.log")
	l, _, err := OpenShardLog(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	tail, err := TailShardLog(path, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	if _, ok, err := tail.Next(); err != nil || ok {
		t.Fatalf("empty log: Next = ok=%v err=%v, want no epoch", ok, err)
	}

	for e := 0; e < 4; e++ {
		batch := mkTuples(uint64(e*100), 5)
		if err := l.LogEpoch([][]tuple.Tuple{batch}); err != nil {
			t.Fatal(err)
		}
		ep, ok, err := tail.Next()
		if err != nil || !ok {
			t.Fatalf("epoch %d: Next = ok=%v err=%v", e+1, ok, err)
		}
		if ep.Seq != uint64(e+1) {
			t.Fatalf("tailed epoch %d, want %d", ep.Seq, e+1)
		}
		if len(ep.Batches) != 1 {
			t.Fatalf("epoch %d carries %d batches, want 1", ep.Seq, len(ep.Batches))
		}
		sameTuples(t, ep.Batches[0], batch)
		// No further epoch yet.
		if _, ok, err := tail.Next(); err != nil || ok {
			t.Fatalf("after epoch %d: Next = ok=%v err=%v, want no epoch", e+1, ok, err)
		}
	}
	if tail.Seq() != 4 {
		t.Fatalf("tailer at seq %d, want 4", tail.Seq())
	}
}

// TestTailerFences checks fence epochs decode with their ranges and
// that fence-only epochs count in the sequence.
func TestTailerFences(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard0.log")
	l, _, err := OpenShardLog(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.LogEpoch([][]tuple.Tuple{mkTuples(0, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendFence(10, 20, 7); err != nil {
		t.Fatal(err)
	}

	tail, err := TailShardLog(path, 2, 1) // skip the insert epoch
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	ep, ok, err := tail.Next()
	if err != nil || !ok {
		t.Fatalf("Next = ok=%v err=%v", ok, err)
	}
	if ep.Seq != 2 || len(ep.Fences) != 1 || len(ep.Batches) != 0 {
		t.Fatalf("fence epoch decoded as %+v", ep)
	}
	if fc := ep.Fences[0]; fc.Lo != 10 || fc.Hi != 20 || fc.Dst != 7 {
		t.Fatalf("fence = %+v, want [10, 20] -> 7", fc)
	}
}

// TestTailerTornTailRetry writes an epoch byte-by-byte under the tailer:
// every prefix must read as "nothing yet" — never corruption, never a
// truncation — and the epoch must decode once the last byte lands. This
// is the property that lets a streamer race the writer's write(2).
func TestTailerTornTailRetry(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.log")
	l, _, err := OpenShardLog(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	batch := mkTuples(100, 6)
	if err := l.LogEpoch([][]tuple.Tuple{batch}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	whole, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "torn.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tail, err := TailShardLog(path, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	for i := range whole {
		if _, ok, err := tail.Next(); err != nil || ok {
			t.Fatalf("prefix of %d bytes: Next = ok=%v err=%v, want retry", i, ok, err)
		}
		if _, err := f.Write(whole[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}
	ep, ok, err := tail.Next()
	if err != nil || !ok {
		t.Fatalf("complete epoch: Next = ok=%v err=%v", ok, err)
	}
	if ep.Seq != 1 {
		t.Fatalf("tailed epoch %d, want 1", ep.Seq)
	}
	sameTuples(t, ep.Batches[0], batch)
}

// TestTailerResumeFromOffset captures (Offset, Seq) mid-log and resumes
// a fresh tailer there, skipping the fast-forward decode.
func TestTailerResumeFromOffset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard0.log")
	l, _, err := OpenShardLog(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for e := 0; e < 6; e++ {
		if err := l.LogEpoch([][]tuple.Tuple{mkTuples(uint64(e*10), 2)}); err != nil {
			t.Fatal(err)
		}
	}

	tail, err := TailShardLog(path, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok, err := tail.Next(); err != nil || !ok {
			t.Fatalf("Next = ok=%v err=%v", ok, err)
		}
	}
	off, seq := tail.Offset(), tail.Seq()
	tail.Close()

	resumed, err := ResumeShardLog(path, 2, off, seq)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	for want := seq + 1; want <= 6; want++ {
		ep, ok, err := resumed.Next()
		if err != nil || !ok {
			t.Fatalf("resumed Next = ok=%v err=%v", ok, err)
		}
		if ep.Seq != want {
			t.Fatalf("resumed epoch %d, want %d", ep.Seq, want)
		}
	}
	if _, ok, err := resumed.Next(); err != nil || ok {
		t.Fatalf("past end: Next = ok=%v err=%v, want no epoch", ok, err)
	}
}

// TestTailerCorruptionIsPermanent flips a byte inside a committed
// epoch's body: the tailer must surface ErrLogCorrupt, not retry.
func TestTailerCorruptionIsPermanent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard0.log")
	l, _, err := OpenShardLog(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.LogEpoch([][]tuple.Tuple{mkTuples(0, 4)}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	tail, err := TailShardLog(path, 2, 0)
	if err != nil {
		if !errors.Is(err, ErrLogCorrupt) {
			t.Fatalf("TailShardLog = %v, want ErrLogCorrupt", err)
		}
		return
	}
	defer tail.Close()
	if _, _, err := tail.Next(); !errors.Is(err, ErrLogCorrupt) {
		t.Fatalf("Next = %v, want ErrLogCorrupt", err)
	}
}

// TestReplicatedEpochRoundtrip writes follower-style epochs (batches +
// fence + watermark) and checks both replay and the tailer reconstruct
// them, including Recovery.Watermark for resume.
func TestReplicatedEpochRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "follower0.log")
	l, rec, err := OpenShardLog(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Watermark != 0 {
		t.Fatalf("fresh log watermark %d, want 0", rec.Watermark)
	}
	keep := mkTuples(1000, 4)
	moved := mkTuples(10, 3) // leading columns 10..12, retired below
	if err := l.LogReplicatedEpoch([][]tuple.Tuple{moved}, nil, 7); err != nil {
		t.Fatal(err)
	}
	if err := l.LogReplicatedEpoch([][]tuple.Tuple{keep}, []Fence{{Lo: 0, Hi: 99, Dst: 1}}, 9); err != nil {
		t.Fatal(err)
	}
	// Nothing applied: nothing logged, sequence unchanged.
	if err := l.LogReplicatedEpoch(nil, nil, 0); err != nil {
		t.Fatal(err)
	}
	if got := l.CommittedSeq(); got != 2 {
		t.Fatalf("CommittedSeq = %d, want 2", got)
	}
	l.Close()

	_, rec2, err := OpenShardLog(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Watermark != 9 {
		t.Fatalf("replayed watermark %d, want 9", rec2.Watermark)
	}
	if rec2.Epochs != 2 {
		t.Fatalf("replayed %d epochs, want 2", rec2.Epochs)
	}
	if rec2.Dropped != len(moved) {
		t.Fatalf("fence dropped %d tuples, want %d", rec2.Dropped, len(moved))
	}
	sameTuples(t, rec2.Tuples, keep)

	tail, err := TailShardLog(path, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	ep1, ok, err := tail.Next()
	if err != nil || !ok || ep1.Mark != 7 {
		t.Fatalf("epoch 1: ok=%v err=%v mark=%d, want mark 7", ok, err, ep1.Mark)
	}
	ep2, ok, err := tail.Next()
	if err != nil || !ok || ep2.Mark != 9 || len(ep2.Fences) != 1 {
		t.Fatalf("epoch 2: ok=%v err=%v %+v", ok, err, ep2)
	}
}

// TestLogPulse checks Pulse fires on flush so tailing streamers can
// block instead of polling.
func TestLogPulse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard0.log")
	l, _, err := OpenShardLog(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	p := l.Pulse()
	select {
	case <-p:
		t.Fatal("pulse fired before any flush")
	default:
	}
	if err := l.LogEpoch([][]tuple.Tuple{mkTuples(0, 1)}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-p:
	default:
		t.Fatal("pulse did not fire after flush")
	}
}
