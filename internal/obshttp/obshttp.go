// Package obshttp serves the observability state of package obs over
// HTTP: a Prometheus-compatible /metrics endpoint (with a JSON variant
// carrying the specbtree.metrics.v2 document), debug views of the
// latency histograms, the contention flight recorder, the retained
// trace spans (as Chrome trace_event JSON) and live tree shapes, the
// expvar page, and the standard pprof profiles. The five commands mount
// it behind their -serve flag; examples/liveserver shows the endpoints
// against a live Datalog run.
//
// The handlers only read the sharded registries — they never reset or
// otherwise mutate observability state — so scraping a live run is safe
// and does not perturb the measured workload beyond the atomic loads of
// a snapshot.
package obshttp

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"

	"specbtree/internal/core"
	"specbtree/internal/obs"
)

// Options configures the debug handler.
type Options struct {
	// Shapes, when non-nil, supplies the live tree shapes served by
	// /debug/treeshape, keyed by a caller-chosen name (relation name,
	// benchmark tree label). The callback runs on every request and must
	// be safe against whatever concurrency the process has going — the
	// core tree's walker is.
	Shapes func() map[string]core.Shape
}

// Handler returns the debug mux:
//
//	/metrics              Prometheus text exposition; ?format=json for
//	                      the specbtree.metrics.v2 JSON snapshot
//	/debug/histograms     latency histograms as JSON
//	/debug/flightrecorder sampled lock-contention events as JSON
//	/debug/trace          retained trace spans as Chrome trace_event JSON
//	/debug/treeshape      live tree shapes as JSON (needs Options.Shapes)
//	/debug/vars           expvar, including the "specbtree" map
//	/debug/pprof/         standard pprof index and profiles
func Handler(opts Options) http.Handler {
	obs.Publish() // idempotent; makes /debug/vars carry the snapshot
	mux := http.NewServeMux()
	mux.HandleFunc("/", serveIndex)
	mux.HandleFunc("/metrics", serveMetrics)
	mux.HandleFunc("/debug/histograms", serveHistograms)
	mux.HandleFunc("/debug/flightrecorder", serveFlightRecorder)
	mux.HandleFunc("/debug/trace", serveTrace)
	mux.HandleFunc("/debug/treeshape", func(w http.ResponseWriter, r *http.Request) {
		serveTreeShape(w, opts.Shapes)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a live debug server started by Start.
type Server struct {
	// Addr is the resolved listen address (host:port), useful when the
	// caller asked for port 0.
	Addr string

	lis net.Listener
	srv *http.Server
}

// Start listens on addr and serves the debug handler in a background
// goroutine. Close shuts the server down.
func Start(addr string, opts Options) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obshttp: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(opts)}
	go srv.Serve(lis) //nolint:errcheck // Serve always returns on Close
	return &Server{Addr: lis.Addr().String(), lis: lis, srv: srv}, nil
}

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }

func serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, `specbtree debug server

/metrics               Prometheus text exposition (?format=json for JSON)
/debug/histograms      latency histograms (JSON)
/debug/flightrecorder  sampled lock-contention events (JSON)
/debug/trace           retained trace spans (Chrome trace_event JSON)
/debug/treeshape       live tree shapes (JSON)
/debug/vars            expvar
/debug/pprof/          pprof profiles
`)
}

func serveMetrics(w http.ResponseWriter, r *http.Request) {
	snap := obs.Take()
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writePrometheus(w, snap)
}

func serveHistograms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, obs.TakeHistograms())
}

// flightDoc is the JSON document of /debug/flightrecorder. Field names
// are part of the metrics contract (DESIGN.md §9).
type flightDoc struct {
	SampleRate uint64            `json:"sample_rate"`
	Events     []obs.FlightEvent `json:"events"`
}

func serveFlightRecorder(w http.ResponseWriter, r *http.Request) {
	events := obs.FlightEvents()
	if events == nil {
		events = []obs.FlightEvent{}
	}
	writeJSON(w, flightDoc{SampleRate: obs.FlightSampleRate(), Events: events})
}

// serveTrace dumps the retained trace spans in Chrome trace_event
// format — load into chrome://tracing or Perfetto, or post-process the
// args (trace/span/parent IDs, DESIGN.md §13). Under obsoff, or before
// any trace has been sampled, the document is empty but well-formed.
func serveTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	obs.WriteChromeTrace(w) //nolint:errcheck // client went away
}

func serveTreeShape(w http.ResponseWriter, shapes func() map[string]core.Shape) {
	out := map[string]core.Shape{}
	if shapes != nil {
		if m := shapes(); m != nil {
			out = m
		}
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

// promName maps a dotted metric name of the obs registry to a
// Prometheus-legal name: prefixed with "specbtree_", dots and dashes
// become underscores.
func promName(name string) string {
	return "specbtree_" + strings.NewReplacer(".", "_", "-", "_").Replace(name)
}

// writePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). Counters become counter metrics, histograms
// become native Prometheus histograms with cumulative le buckets derived
// from the log2 bucket bounds, and a specbtree_obs_enabled gauge tells a
// scraper whether the process was built with observability compiled in.
func writePrometheus(w io.Writer, snap obs.Snapshot) {
	enabled := 0
	if snap.Enabled {
		enabled = 1
	}
	fmt.Fprintf(w, "# HELP specbtree_obs_enabled Whether observability is compiled in (0 under the obsoff build tag).\n")
	fmt.Fprintf(w, "# TYPE specbtree_obs_enabled gauge\n")
	fmt.Fprintf(w, "specbtree_obs_enabled %d\n", enabled)

	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n", pn)
		fmt.Fprintf(w, "%s %d\n", pn, snap.Counters[name])
	}

	hnames := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := snap.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(w, "# HELP %s Log2-bucketed histogram, unit %s.\n", pn, h.Unit)
		fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
		var cum uint64
		for b, n := range h.Buckets {
			cum += n
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, obs.BucketUpperBound(b), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n", pn, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", pn, h.Count)
	}
}
