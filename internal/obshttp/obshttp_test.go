package obshttp

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"specbtree/internal/core"
	"specbtree/internal/obs"
	"specbtree/internal/tuple"
)

func get(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return res, string(body)
}

// TestMetricsPrometheus checks the text exposition: the enabled gauge,
// counter samples, and well-formed cumulative histogram buckets.
func TestMetricsPrometheus(t *testing.T) {
	if obs.Enabled {
		obs.Reset()
		tr := core.New(1)
		for i := 0; i < 1000; i++ {
			tr.Insert(tuple.Tuple{uint64(i)})
		}
	}
	h := Handler(Options{})
	res, body := get(t, h, "/metrics")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, "specbtree_obs_enabled") {
		t.Fatal("missing specbtree_obs_enabled gauge")
	}
	if !obs.Enabled {
		if !strings.Contains(body, "specbtree_obs_enabled 0") {
			t.Fatal("obsoff build must report specbtree_obs_enabled 0")
		}
		return
	}
	for _, want := range []string{
		"# TYPE specbtree_core_descents counter",
		"# TYPE specbtree_hist_op_insert_ns histogram",
		"specbtree_hist_op_insert_ns_sum",
		"specbtree_hist_op_insert_ns_count",
		`_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Cumulative buckets must be monotonically non-decreasing and end at
	// the count.
	var prev, count, inf uint64
	var sawBucket bool
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "specbtree_hist_op_insert_ns_bucket{") {
			n := lastUint(t, line)
			if n < prev {
				t.Fatalf("bucket counts decrease at %q", line)
			}
			prev = n
			sawBucket = true
			if strings.Contains(line, `le="+Inf"`) {
				inf = n
			}
		}
		if strings.HasPrefix(line, "specbtree_hist_op_insert_ns_count ") {
			count = lastUint(t, line)
		}
	}
	if !sawBucket {
		t.Fatal("no insert histogram buckets rendered")
	}
	if inf != count {
		t.Fatalf("+Inf bucket %d != count %d", inf, count)
	}
}

// lastUint parses the sample value (the last space-separated field) of a
// Prometheus text line.
func lastUint(t *testing.T, line string) uint64 {
	t.Helper()
	v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", line, err)
	}
	return v
}

// TestMetricsJSON checks the JSON variant: schema specbtree.metrics.v2
// with the v1 keys (schema, enabled, counters) unchanged and the
// histograms key added.
func TestMetricsJSON(t *testing.T) {
	h := Handler(Options{})
	res, body := get(t, h, "/metrics?format=json")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, key := range []string{"schema", "enabled", "counters", "histograms"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("JSON snapshot missing key %q", key)
		}
	}
	var schema string
	if err := json.Unmarshal(doc["schema"], &schema); err != nil || schema != obs.SchemaVersion {
		t.Fatalf("schema = %q, want %q", schema, obs.SchemaVersion)
	}
}

// TestHistogramsEndpoint checks that every registered histogram appears.
func TestHistogramsEndpoint(t *testing.T) {
	_, body := get(t, Handler(Options{}), "/debug/histograms")
	var doc map[string]obs.HistogramSnapshot
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, name := range obs.HistogramNames() {
		if _, ok := doc[name]; !ok {
			t.Errorf("missing histogram %q", name)
		}
	}
}

// TestFlightRecorderEndpoint records one contention event and checks the
// JSON dump carries it with the documented field names.
func TestFlightRecorderEndpoint(t *testing.T) {
	if !obs.Enabled {
		t.Skip("observability compiled out (obsoff)")
	}
	prev := obs.SetFlightSampleRate(1)
	defer obs.SetFlightSampleRate(prev)
	defer obs.ResetFlight()
	obs.ResetFlight()
	obs.RecordContention(obs.SiteSplitParent, 2, 7, 12345)

	_, body := get(t, Handler(Options{}), "/debug/flightrecorder")
	var doc struct {
		SampleRate uint64 `json:"sample_rate"`
		Events     []struct {
			Seq       uint64 `json:"seq"`
			Site      string `json:"site"`
			Level     int32  `json:"level"`
			Spins     uint64 `json:"spins"`
			WaitNanos int64  `json:"wait_ns"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.SampleRate != 1 {
		t.Fatalf("sample_rate = %d, want 1", doc.SampleRate)
	}
	if len(doc.Events) != 1 {
		t.Fatalf("got %d events, want 1", len(doc.Events))
	}
	ev := doc.Events[0]
	if ev.Site != obs.SiteSplitParent.Name() || ev.Level != 2 || ev.Spins != 7 || ev.WaitNanos != 12345 {
		t.Fatalf("event = %+v", ev)
	}
}

// TestTraceEndpoint checks /debug/trace in both build flavours: always
// 200 with a well-formed Chrome trace_event document; with
// observability compiled in a recorded span shows up with the
// documented args, and under obsoff the document degrades to an empty
// traceEvents array rather than an error.
func TestTraceEndpoint(t *testing.T) {
	var trace obs.TraceID
	if obs.Enabled {
		obs.ResetTrace()
		defer obs.ResetTrace()
		trace = obs.ForceTrace()
		obs.RecordSpan(trace, 0, 0, obs.SpanEngineRound, 100, 50, 3, 7)
	}
	res, body := get(t, Handler(Options{}), "/debug/trace")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/debug/trace content type %q", ct)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Args struct {
				Trace uint64 `json:"trace"`
				Arg0  uint64 `json:"arg0"`
				Arg1  uint64 `json:"arg1"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if !obs.Enabled {
		if len(doc.TraceEvents) != 0 {
			t.Fatalf("obsoff build served %d trace events", len(doc.TraceEvents))
		}
		return
	}
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("got %d trace events, want 1", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Name != "engine.round" || ev.Ph != "X" ||
		ev.Args.Trace != uint64(trace) || ev.Args.Arg0 != 3 || ev.Args.Arg1 != 7 {
		t.Fatalf("event = %+v", ev)
	}
}

// TestJSONEndpointsContentType sweeps every JSON debug endpoint: 200,
// an explicit application/json content type, and a parseable body —
// under both build flavours.
func TestJSONEndpointsContentType(t *testing.T) {
	h := Handler(Options{})
	for _, path := range []string{
		"/metrics?format=json",
		"/debug/histograms",
		"/debug/flightrecorder",
		"/debug/trace",
		"/debug/treeshape",
		"/debug/vars",
	} {
		res, body := get(t, h, path)
		if res.StatusCode != http.StatusOK {
			t.Errorf("%s status %d", path, res.StatusCode)
			continue
		}
		if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s content type %q, want application/json", path, ct)
		}
		var v any
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Errorf("%s body is not valid JSON: %v", path, err)
		}
	}
}

// TestTreeShapeEndpoint serves a live tree's shape through the Shapes
// callback.
func TestTreeShapeEndpoint(t *testing.T) {
	tr := core.New(2, core.Options{Capacity: 4})
	for i := 0; i < 500; i++ {
		tr.Insert(tuple.Tuple{uint64(i), 0})
	}
	h := Handler(Options{Shapes: func() map[string]core.Shape {
		return map[string]core.Shape{"edge": tr.Shape()}
	}})
	_, body := get(t, h, "/debug/treeshape")
	var doc map[string]core.Shape
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	s, ok := doc["edge"]
	if !ok {
		t.Fatalf("missing tree %q in %v", "edge", doc)
	}
	if s.Elements != 500 || s.Depth < 2 || len(s.Levels) != s.Depth {
		t.Fatalf("shape = %+v", s)
	}

	// Without a Shapes callback the endpoint serves an empty object, not
	// an error.
	_, body = get(t, Handler(Options{}), "/debug/treeshape")
	if strings.TrimSpace(body) != "{}" {
		t.Fatalf("no-shapes body = %q, want {}", body)
	}
}

// TestAuxiliaryEndpoints covers the index page, expvar and pprof routes.
func TestAuxiliaryEndpoints(t *testing.T) {
	h := Handler(Options{})
	for _, path := range []string{"/", "/debug/vars", "/debug/pprof/"} {
		res, body := get(t, h, path)
		if res.StatusCode != http.StatusOK {
			t.Errorf("%s status %d", path, res.StatusCode)
		}
		if len(body) == 0 {
			t.Errorf("%s empty body", path)
		}
	}
	if res, _ := get(t, h, "/no/such/path"); res.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status %d, want 404", res.StatusCode)
	}
	// /debug/vars must expose the published specbtree snapshot.
	_, body := get(t, h, "/debug/vars")
	if !strings.Contains(body, `"specbtree"`) {
		t.Error("/debug/vars missing specbtree expvar")
	}
}

// TestStartAndScrape exercises the real listener path end to end.
func TestStartAndScrape(t *testing.T) {
	srv, err := Start("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !strings.Contains(string(body), "specbtree_obs_enabled") {
		t.Fatalf("scrape failed: status %d body %q", res.StatusCode, body)
	}
}

// TestTreeShapeNilCallbackResult checks that a Shapes callback returning
// nil (no live tree yet) still serves an empty object, not null.
func TestTreeShapeNilCallbackResult(t *testing.T) {
	h := Handler(Options{Shapes: func() map[string]core.Shape { return nil }})
	_, body := get(t, h, "/debug/treeshape")
	if strings.TrimSpace(body) != "{}" {
		t.Fatalf("nil-result body = %q, want {}", body)
	}
}
