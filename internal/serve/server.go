package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"specbtree/internal/core"
	"specbtree/internal/obs"
	"specbtree/internal/tuple"
)

// Options configures a Server. The zero value of every field selects a
// sensible default.
type Options struct {
	// Arity is the tuple width of the served relation (default 2).
	// Ignored when Tree is set.
	Arity int
	// Capacity is the per-node element capacity of the served tree
	// (0 = core.DefaultCapacity). Ignored when Tree is set.
	Capacity int
	// Tree, when non-nil, is served instead of a fresh tree — e.g. a
	// relation pre-loaded by the caller.
	Tree *core.Tree
	// WriteQueue bounds the number of admitted-but-unexecuted insert
	// batches (default 64). A full queue answers RETRY.
	WriteQueue int
	// OutboundQueue bounds the per-connection response queue (default
	// 128). A client that cannot keep up with its responses overflows it
	// and is disconnected.
	OutboundQueue int
	// MaxBatch bounds the tuples of one insert frame (default 4096).
	MaxBatch int
	// MaxScan caps the tuples returned by one scan operation (default
	// 1024); longer results set the truncated flag and the client
	// paginates.
	MaxScan int
	// WriteTimeout bounds one response write to a connection (default
	// 10s); a blocked write disconnects the slow client.
	WriteTimeout time.Duration
	// DisableSnapshotReads restores the blocking read gate: readers
	// arriving during a write epoch wait for it instead of being served
	// from the last-epoch snapshot. The default (false) enables the
	// snapshot bypass — reads then never block behind writes, at the
	// cost of answers lagging at most one epoch while a write epoch is
	// in flight (DESIGN.md §14). Kept as an option so benchmarks can
	// compare against the gate-blocking baseline.
	DisableSnapshotReads bool
	// EpochLog, when non-nil, makes every write epoch durable: the
	// scheduler calls LogEpoch with the epoch's applied batches after
	// application and BEFORE the acknowledgements are delivered, so an
	// acknowledged insert is always on stable storage (the cluster
	// shard log, DESIGN.md §15). A log error fails the epoch's
	// acknowledgements with a server error.
	EpochLog EpochLog
	// Sharded marks this server as one shard of a cluster. The shard
	// identity is verified in the hello handshake: a shard-aware client
	// states which shard it expects (ShardID) and the server refuses
	// the connection on a mismatch — the guard against a stale shard
	// map routing to a rebound address.
	Sharded bool
	// ShardID is this server's shard number; meaningful only with
	// Sharded set (shard 0 is a valid shard).
	ShardID uint32
	// Follower makes the server read-only: insert frames are refused
	// with a server error directing the client to the leader, until
	// PromoteToLeader flips the server into a writable leader. The
	// in-process Apply path stays open — it is how the replication
	// apply loop feeds the tree (internal/replica).
	Follower bool
	// Replica, when non-nil, enables replication subscriptions
	// (DESIGN.md §16): a version 3 client may send kindReplSubscribe
	// and the server streams the source's committed epochs to it. Set
	// on leaders to the shard's insert log.
	Replica ReplicaSource
	// Stamp, when non-nil, supplies the replication stamp answered to
	// opStamp reads: the server's applied epoch watermark, the highest
	// leader epoch it knows committed, and whether its replication
	// stream is healthy. Followers set it; when nil, opStamp reports
	// the server's own epoch count for both positions and healthy=true
	// (a leader is never stale against itself).
	Stamp func() (applied, head uint64, healthy bool)
	// HeartbeatEvery bounds the idle gap between replication frames on
	// a subscription (default 100ms): with no fresh epoch to ship, the
	// streamer sends a heartbeat carrying the committed head, so
	// followers can judge staleness while the log is quiet.
	HeartbeatEvery time.Duration
}

// EpochLog receives every write epoch's applied insert batches, in
// application order, and must make them durable before returning: the
// scheduler delivers the epoch's acknowledgements only after LogEpoch
// returns nil. Called from the single epoch goroutine, never
// concurrently.
type EpochLog interface {
	LogEpoch(batches [][]tuple.Tuple) error
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.Arity <= 0 {
		o.Arity = 2
	}
	if o.WriteQueue <= 0 {
		o.WriteQueue = 64
	}
	if o.OutboundQueue <= 0 {
		o.OutboundQueue = 128
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 4096
	}
	if o.MaxScan <= 0 {
		o.MaxScan = 1024
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 100 * time.Millisecond
	}
	return o
}

// Server is a TCP relation server: one concurrent B-tree behind the
// phase scheduler, speaking the package's wire protocol. Start it with
// Start; stop it with Shutdown (graceful drain) or Close.
type Server struct {
	opts  Options
	sched *scheduler
	lis   net.Listener

	mu     sync.Mutex
	conns  map[*serverConn]struct{}
	closed bool

	wg sync.WaitGroup // accept loop + per-conn goroutines

	accepted atomic.Uint64
	dropped  atomic.Uint64
	// promoted flips a follower into a leader (PromoteToLeader): insert
	// frames are accepted from then on.
	promoted atomic.Bool
}

// Stats is a point-in-time reading of the server's serving-layer state,
// available in every build flavour (unlike the obs counters, which
// compile out under obsoff). Monotonic fields mirror their obs
// counterparts; depth and connection counts are instantaneous gauges.
type Stats struct {
	// Conns is the number of currently attached connections.
	Conns int
	// WriteQueueDepth is the current write-queue occupancy (gauge).
	WriteQueueDepth int
	// Epochs counts write epochs executed so far.
	Epochs uint64
	// WriteOps counts tuples applied by write epochs.
	WriteOps uint64
	// ReadOps counts read operations executed.
	ReadOps uint64
	// SnapshotReads counts read frames answered from the last-epoch
	// snapshot because a write epoch held the gate closed.
	SnapshotReads uint64
	// Retries counts RETRY responses sent on a full write queue.
	Retries uint64
	// ConnsAccepted and ConnsDropped count accepted connections and
	// slow-client disconnects.
	ConnsAccepted, ConnsDropped uint64
	// PhaseViolations counts detected read/write-epoch overlaps; any
	// non-zero value is a scheduler bug.
	PhaseViolations uint64
}

// Start listens on addr (host:port; port 0 picks a free port) and serves
// the relation in background goroutines until Shutdown or Close.
func Start(addr string, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	tree := opts.Tree
	if tree == nil {
		var copts []core.Options
		if opts.Capacity != 0 {
			copts = append(copts, core.Options{Capacity: opts.Capacity})
		}
		tree = core.New(opts.Arity, copts...)
	}
	opts.Arity = tree.Arity()
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s := &Server{
		opts:  opts,
		sched: newScheduler(tree, opts.WriteQueue, !opts.DisableSnapshotReads, opts.EpochLog),
		lis:   lis,
		conns: make(map[*serverConn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the resolved listen address (useful with port 0).
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Arity returns the tuple width of the served relation.
func (s *Server) Arity() int { return s.opts.Arity }

// Tree returns the served tree; between write epochs it is safe to read
// (the usual phase discipline applies to direct access too). On a
// follower the served tree can be exchanged by a fence retirement
// (Exchange), so callers must not cache the pointer across epochs.
func (s *Server) Tree() *core.Tree { return s.sched.tree.Load() }

// Shard returns this server's shard identity: its shard number, and
// whether the server is a cluster shard at all.
func (s *Server) Shard() (uint32, bool) { return s.opts.ShardID, s.opts.Sharded }

// Barrier submits an empty write batch through the scheduler and waits
// for its epoch: when it returns, every insert admitted before the
// call has been applied, logged and acknowledged. Used by the
// rebalance protocol to drain in-flight epochs after a shard-map cut.
// A full write queue is waited out; ErrShutdown reports drain.
func (s *Server) Barrier() error {
	for {
		b := &writeBatch{done: make(chan writeResult, 1)}
		err := s.sched.submit(b)
		if err == nil {
			return (<-b.done).err
		}
		if !errors.Is(err, errBusy) {
			return err
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// Exchange replaces the served tree with t at an epoch boundary: the
// swap is submitted through the write scheduler like a batch, so it
// installs at a quiescent point (live readers drained, snapshot readers
// on the immutable old snapshot) and every cached hint set is
// invalidated. This is the follower fence-retirement path (DESIGN.md
// §16): the replication apply loop rebuilds the kept complement of a
// fenced range into a fresh tree and exchanges it in, retiring the
// moved range without a restart. A full write queue is waited out.
func (s *Server) Exchange(t *core.Tree) error {
	if t.Arity() != s.opts.Arity {
		return fmt.Errorf("serve: arity-%d tree for arity-%d relation", t.Arity(), s.opts.Arity)
	}
	for {
		b := &writeBatch{swap: t, done: make(chan writeResult, 1)}
		err := s.sched.submit(b)
		if err == nil {
			return (<-b.done).err
		}
		if !errors.Is(err, errBusy) {
			return err
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// PromoteToLeader flips a follower into a writable leader: the given
// log becomes the scheduler's epoch log (installed before writes are
// admitted, so no accepted insert misses durability) and insert frames
// are accepted from then on. One-way; used by cluster failover after
// the follower has drained the dead leader's stream tail.
func (s *Server) PromoteToLeader(log EpochLog) {
	s.sched.setLog(log)
	s.promoted.Store(true)
}

// Promoted reports whether a follower server has been promoted to
// leader.
func (s *Server) Promoted() bool { return s.promoted.Load() }

// stamp answers opStamp reads: the replication watermark of a follower
// (Options.Stamp), or the server's own epoch count on a leader — a
// leader is never stale against itself. A promoted follower answers as
// a leader: its stream is gone, and it now defines the head.
func (s *Server) stamp() (applied, head uint64, healthy bool) {
	if s.opts.Stamp != nil && !s.promoted.Load() {
		return s.opts.Stamp()
	}
	e := s.sched.epochs.Load()
	return e, e, true
}

// Apply submits one insert batch through the write scheduler
// in-process — the same admission, epoch application, durable logging
// and phase discipline as a network insert, without a connection. The
// rebalance import path uses it so handed-off tuples reach the
// destination's log before the source fences them. A full write queue
// is waited out rather than surfaced as RETRY.
func (s *Server) Apply(batch []tuple.Tuple) (fresh int, err error) {
	for _, t := range batch {
		if len(t) != s.opts.Arity {
			return 0, fmt.Errorf("serve: arity-%d tuple for arity-%d relation", len(t), s.opts.Arity)
		}
	}
	for {
		b := &writeBatch{tuples: batch, done: make(chan writeResult, 1)}
		err := s.sched.submit(b)
		if err == nil {
			res := <-b.done
			return res.fresh, res.err
		}
		if !errors.Is(err, errBusy) {
			return 0, err
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// SnapshotNow captures an immutable snapshot of the served tree at a
// quiescent point: it admits itself as a live reader (which excludes
// write epochs by the phase discipline) and captures under that
// admission. While the gate is closed it waits the epoch out rather
// than settling for the possibly stale last-epoch snapshot — the
// rebalance export needs every acknowledged tuple, not a lagging view.
func (s *Server) SnapshotNow() (core.Snapshot, error) {
	for {
		mode, _, _ := s.sched.beginRead()
		switch mode {
		case readRefused:
			return core.Snapshot{}, ErrShutdown
		case readLive:
			sp := s.sched.tree.Load().Snapshot()
			s.sched.endRead()
			return sp, nil
		default:
			// Gate closed (snapshot bypass active): wait out the write
			// epoch and retry — control-plane path, a brief spin is fine.
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// Stats returns a point-in-time serving-layer snapshot.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	conns := len(s.conns)
	s.mu.Unlock()
	return Stats{
		Conns:           conns,
		WriteQueueDepth: s.sched.queueDepth(),
		Epochs:          s.sched.epochs.Load(),
		WriteOps:        s.sched.writeOps.Load(),
		ReadOps:         s.sched.readOps.Load(),
		SnapshotReads:   s.sched.snapshotReads.Load(),
		Retries:         s.sched.retries.Load(),
		ConnsAccepted:   s.accepted.Load(),
		ConnsDropped:    s.dropped.Load(),
		PhaseViolations: s.sched.violations.Load(),
	}
}

// Shutdown gracefully stops the server: stop accepting, drain every
// admitted write batch (their responses are still delivered), then close
// connections and wait for the per-connection goroutines, bounded by
// ctx. It returns ctx.Err() if the deadline expired before quiescence.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	s.lis.Close()
	// Drain: already-admitted writes execute and answer before the
	// connections go away.
	s.sched.drain()

	// Unblock every connection reader; in-flight operations finish, the
	// next frame read fails and the connection tears down.
	s.mu.Lock()
	for c := range s.conns {
		c.nc.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Close stops the server immediately (a Shutdown with a short drain
// bound).
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.accepted.Add(1)
		obs.Inc(obs.ServeConnsAccepted)
		c := &serverConn{
			s:        s,
			nc:       nc,
			out:      make(chan outFrame, s.opts.OutboundQueue),
			rdClosed: make(chan struct{}),
			closed:   make(chan struct{}),
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(2)
		go c.readLoop()
		go c.writeLoop()
	}
}

// outFrame is one queued response. version and trace echo the request
// frame's (version 1 responses for version 1 requests, the request's
// trace ID for traced ones); they ride in the frame rather than on the
// connection because readLoop enqueues while writeLoop drains
// concurrently.
type outFrame struct {
	kind    byte
	version byte
	id      uint64
	trace   obs.TraceID
	payload []byte
}

// serverConn is one attached client connection: a reader goroutine that
// decodes, classifies and executes frames, and a writer goroutine that
// flushes the bounded outbound queue.
type serverConn struct {
	s  *Server
	nc net.Conn

	out chan outFrame
	// rdClosed is closed when the reader goroutine exits; the writer
	// then flushes whatever responses are still queued (the graceful
	// half of teardown) before closing the socket.
	rdClosed  chan struct{}
	rdOnce    sync.Once
	closed    chan struct{}
	closeOnce sync.Once
	// inflight counts insert helper goroutines that still owe the
	// connection a response. The writer's graceful teardown waits for
	// them before its final flush: an insert acknowledged by a drained
	// epoch must reach the outbound queue before the queue is emptied
	// for the last time, or the acknowledgement would be lost in a race
	// the client cannot distinguish from a failed write.
	inflight sync.WaitGroup

	hints *core.Hints // read-path hints; owned by readLoop
	// hintGen is the tree generation the hint set was built for; a tree
	// exchange (scheduler.treeGen) invalidates it — cached leaves of the
	// replaced tree could still pass lease+coverage validation.
	hintGen uint64
}

// close tears the connection down once: the net.Conn is closed (which
// unblocks both loops) and the outbound queue is abandoned.
func (c *serverConn) close() {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.nc.Close()
		c.s.mu.Lock()
		delete(c.s.conns, c)
		c.s.mu.Unlock()
	})
}

// dropSlow disconnects a client that fell behind its responses.
func (c *serverConn) dropSlow() {
	c.s.dropped.Add(1)
	obs.Inc(obs.ServeConnsDropped)
	c.close()
}

// send enqueues a response without blocking; an overflowing outbound
// queue means the client is not draining responses and is disconnected.
func (c *serverConn) send(f outFrame) {
	select {
	case c.out <- f:
	case <-c.closed:
	default:
		c.dropSlow()
	}
}

// sendBlocking enqueues a frame, blocking while the outbound queue is
// full instead of dropping the connection — the replication streamer's
// backpressure: a follower that falls behind slows the stream down
// rather than losing it (it would only have to re-bootstrap).
// WriteTimeout still disconnects a dead peer. Reports false once the
// connection is closed.
func (c *serverConn) sendBlocking(f outFrame) bool {
	select {
	case c.out <- f:
		return true
	case <-c.closed:
		return false
	}
}

func (c *serverConn) writeLoop() {
	defer c.s.wg.Done()
	bw := bufio.NewWriter(c.nc)
	write := func(f outFrame) error {
		c.nc.SetWriteDeadline(time.Now().Add(c.s.opts.WriteTimeout))
		err := writeFrame(bw, f.version, f.kind, f.id, f.trace, f.payload)
		// Flush eagerly when the queue is empty so pipelined clients are
		// not stalled behind buffering.
		if err == nil && len(c.out) == 0 {
			err = bw.Flush()
		}
		return err
	}
	for {
		select {
		case f := <-c.out:
			if write(f) != nil {
				c.writeFailed()
				return
			}
		case <-c.rdClosed:
			// Reader gone (disconnect or shutdown): wait out the insert
			// helpers still owed to this connection (their epochs execute
			// during the drain; the wait is bounded by epoch completion),
			// then flush the queued responses and tear the connection
			// down.
			c.inflight.Wait()
			for {
				select {
				case f := <-c.out:
					if write(f) != nil {
						c.writeFailed()
						return
					}
				default:
					bw.Flush()
					c.close()
					return
				}
			}
		case <-c.closed:
			return
		}
	}
}

// writeFailed tears down after a failed response write, counting it as a
// slow-client drop unless the connection was already closing.
func (c *serverConn) writeFailed() {
	select {
	case <-c.closed:
		c.close()
	default:
		c.dropSlow()
	}
}

func (c *serverConn) readLoop() {
	defer c.s.wg.Done()
	defer c.rdOnce.Do(func() { close(c.rdClosed) })
	defer func() {
		if c.hints != nil {
			c.hints.FlushObs()
		}
	}()
	c.hints = core.NewHints()
	br := bufio.NewReader(c.nc)
	arity := c.s.opts.Arity
	for {
		ver, kind, id, trace, payload, err := readFrame(br)
		if err != nil {
			return // disconnect, protocol error or shutdown deadline
		}
		switch kind {
		case kindHello:
			c.handleHello(ver, id, trace, payload)
		case kindRequest:
			if trace == 0 {
				// An untraced frame may still start a server-side trace
				// (sampling gate; off by default) so server-only
				// investigations need no client cooperation.
				trace = obs.StartTrace()
			}
			var frameStart int64
			if trace != 0 {
				frameStart = obs.Clock()
			}
			req, err := decodeRequest(id, payload, arity, c.s.opts.MaxBatch)
			if err != nil {
				c.send(outFrame{kind: kindResponse, version: ver, id: id, trace: trace, payload: encodeErr(err.Error())})
				return
			}
			if req.insert != nil {
				c.handleInsert(req, ver, trace, frameStart)
			} else {
				c.handleReads(req, ver, trace, frameStart)
			}
		case kindReplSubscribe:
			if err := c.handleSubscribe(ver, id, trace, payload); err != nil {
				c.send(outFrame{kind: kindResponse, version: ver, id: id, trace: trace, payload: encodeErr(err.Error())})
				return
			}
		default:
			// A response frame from a client is a protocol error.
			c.send(outFrame{kind: kindResponse, version: ver, id: id, trace: trace, payload: encodeErr("serve: unexpected frame kind")})
			return
		}
	}
}

// handleHello answers the arity handshake. A client arity of 0 adopts
// the server's; any other mismatch is refused. The payload is
// length-dispatched, each extension appending to the last: a 2-byte
// payload is a version 1 client (arity only); a 3-byte payload adds
// the client's maximum protocol version, answered with the negotiated
// version (min of the two sides'); a 7-byte payload additionally
// carries the shard number the client expects, answered — after
// verification against Options.ShardID — with the server's shard
// number, so a shard-aware client can never ingest data from a shard a
// stale map misrouted it to.
func (c *serverConn) handleHello(ver byte, id uint64, trace obs.TraceID, payload []byte) {
	refuse := func(msg string) {
		c.send(outFrame{kind: kindResponse, version: ver, id: id, trace: trace, payload: encodeErr(msg)})
	}
	r := &rbuf{b: payload}
	clientArity := int(r.u16())
	negotiated := byte(protocolV1)
	withVersion := len(payload) > 2
	if withVersion {
		clientMax := r.u8()
		negotiated = clientMax
		if negotiated > ProtocolVersion {
			negotiated = ProtocolVersion
		}
		if negotiated < protocolV1 {
			negotiated = protocolV1
		}
	}
	withShard := len(payload) > 3
	var wantShard uint32
	if withShard {
		wantShard = r.u32()
	}
	if err := r.done(); err != nil {
		refuse(err.Error())
		return
	}
	if withShard {
		if !c.s.opts.Sharded {
			refuse(fmt.Sprintf("serve: client expects shard %d but server is not a cluster shard", wantShard))
			return
		}
		if wantShard != c.s.opts.ShardID {
			refuse(fmt.Sprintf("serve: shard mismatch: client expects shard %d, server is shard %d", wantShard, c.s.opts.ShardID))
			return
		}
	}
	if clientArity != 0 && clientArity != c.s.opts.Arity {
		refuse(fmt.Sprintf("serve: arity mismatch: client %d, server %d", clientArity, c.s.opts.Arity))
		return
	}
	w := &wbuf{}
	w.u8(statusOK)
	w.u16(uint16(c.s.opts.Arity))
	if withVersion {
		w.u8(negotiated)
	}
	if withShard {
		w.u32(c.s.opts.ShardID)
	}
	c.send(outFrame{kind: kindHello, version: negotiated, id: id, trace: trace, payload: w.b})
}

// handleInsert submits the write batch and hands the epoch wait to a
// helper goroutine, so the connection keeps reading pipelined frames
// while the batch waits for its epoch. Responses may therefore overtake
// each other; clients match by id. A traced frame records one
// serve.frame.insert span spanning admission to epoch acknowledgement,
// and its trace rides on the batch so the executing epoch can adopt it.
func (c *serverConn) handleInsert(req request, ver byte, trace obs.TraceID, frameStart int64) {
	if c.s.opts.Follower && !c.s.promoted.Load() {
		c.send(outFrame{kind: kindResponse, version: ver, id: req.id, trace: trace,
			payload: encodeErr("serve: shard is a read-only follower; write to the leader")})
		return
	}
	b := &writeBatch{tuples: req.insert, done: make(chan writeResult, 1), trace: trace}
	if err := c.s.sched.submit(b); err != nil {
		if errors.Is(err, errBusy) {
			c.send(outFrame{kind: kindResponse, version: ver, id: req.id, trace: trace, payload: []byte{statusRetry}})
			return
		}
		c.send(outFrame{kind: kindResponse, version: ver, id: req.id, trace: trace, payload: encodeErr(err.Error())})
		return
	}
	c.s.wg.Add(1)
	c.inflight.Add(1)
	go func() {
		defer c.s.wg.Done()
		defer c.inflight.Done()
		res := <-b.done
		if res.err != nil {
			c.send(outFrame{kind: kindResponse, version: ver, id: req.id, trace: trace, payload: encodeErr(res.err.Error())})
			return
		}
		w := &wbuf{}
		w.u8(statusOK)
		w.u32(uint32(res.fresh))
		c.send(outFrame{kind: kindResponse, version: ver, id: req.id, trace: trace, payload: w.b})
		if trace != 0 {
			obs.RecordSpan(trace, 0, 0, obs.SpanServeFrameInsert, frameStart, obs.Clock()-frameStart,
				uint64(len(req.insert)), uint64(res.fresh))
		}
	}()
}

// handleReads executes a read frame inline under read admission: all
// attached connections' read frames run concurrently between write
// epochs, and frames arriving while a write epoch holds the gate closed
// are answered from the last-epoch snapshot instead of blocking (unless
// Options.DisableSnapshotReads). A traced frame records a
// serve.frame.read span from decode to response enqueue, and — when the
// phase gate actually blocked it — a serve.phase.wait child span
// covering the wait. Every snapshot-served frame records its duration
// into "hist.serve.gate.bypass.ns" (the time a blocking gate would have
// added a wait to).
func (c *serverConn) handleReads(req request, ver byte, trace obs.TraceID, frameStart int64) {
	if g := c.s.sched.treeGen.Load(); g != c.hintGen {
		// A tree exchange retired the tree these hints index; start over.
		c.hints.FlushObs()
		c.hints = core.NewHints()
		c.hintGen = g
	}
	var frameSpan obs.SpanID
	var waitStart int64
	if trace != 0 {
		frameSpan = obs.NewSpanID(trace)
		waitStart = obs.Clock()
	}
	mode, snap, blocked := c.s.sched.beginRead()
	if mode == readRefused {
		c.send(outFrame{kind: kindResponse, version: ver, id: req.id, trace: trace, payload: encodeErr(ErrShutdown.Error())})
		return
	}
	if trace != 0 && blocked {
		obs.RecordSpan(trace, 0, frameSpan, obs.SpanServePhaseWait, waitStart, obs.Clock()-waitStart, 0, 0)
	}
	start := obs.SampleClock()
	var bypassStart int64
	if mode == readSnapshot {
		bypassStart = obs.Clock()
	}
	w := &wbuf{}
	w.u8(statusOK)
	for i := range req.reads {
		if mode == readSnapshot {
			c.execSnapRead(&req.reads[i], snap, w)
		} else {
			c.execRead(&req.reads[i], w)
		}
	}
	if mode == readLive {
		c.s.sched.endRead()
	} else {
		obs.Observe(obs.HistServeGateBypassNanos, uint64(obs.Clock()-bypassStart))
	}
	c.s.sched.readOps.Add(uint64(len(req.reads)))
	obs.Add(obs.ServeReadOps, uint64(len(req.reads)))
	if start != 0 {
		obs.Observe(obs.HistServeReadNanos, uint64(obs.Clock()-start))
	}
	c.send(outFrame{kind: kindResponse, version: ver, id: req.id, trace: trace, payload: w.b})
	if trace != 0 {
		obs.RecordSpan(trace, frameSpan, 0, obs.SpanServeFrameRead, frameStart, obs.Clock()-frameStart,
			uint64(len(req.reads)), uint64(len(w.b)))
	}
}

// execRead evaluates one read operation against the tree and appends its
// result to the response.
func (c *serverConn) execRead(op *readOp, w *wbuf) {
	t := c.s.sched.tree.Load()
	switch op.code {
	case opContains:
		w.bool(t.ContainsHint(op.arg, c.hints))
	case opLower, opUpper:
		var cur core.Cursor
		if op.code == opLower {
			cur = t.LowerBoundHint(op.arg, c.hints)
		} else {
			cur = t.UpperBoundHint(op.arg, c.hints)
		}
		if cur.Valid() {
			w.bool(true)
			w.tuple(cur.Tuple())
		} else {
			w.bool(false)
		}
	case opScan:
		c.execScan(op, w)
	case opLen:
		w.u64(uint64(t.Len()))
	case opStamp:
		applied, head, healthy := c.s.stamp()
		w.u64(applied)
		w.u64(head)
		w.bool(healthy)
	}
}

// execScan runs one bounded range scan: from lo (or the tree start; lo
// itself skipped when loStrict) up to hi exclusive, capped at the
// effective limit with a truncation flag.
func (c *serverConn) execScan(op *readOp, w *wbuf) {
	limit := int(op.limit)
	if limit <= 0 || limit > c.s.opts.MaxScan {
		limit = c.s.opts.MaxScan
	}
	t := c.s.sched.tree.Load()
	var cur core.Cursor
	if op.lo != nil {
		if op.loStrict {
			cur = t.UpperBoundHint(op.lo, c.hints)
		} else {
			cur = t.LowerBoundHint(op.lo, c.hints)
		}
	} else {
		cur = t.Begin()
	}
	countAt := len(w.b)
	w.u32(0) // patched below
	n := 0
	truncated := false
	buf := make(tuple.Tuple, c.s.opts.Arity)
	for cur.Valid() {
		if op.hi != nil && cur.Compare(op.hi) >= 0 {
			break
		}
		if n == limit {
			truncated = true
			break
		}
		cur.CopyTo(buf)
		w.tuple(buf)
		n++
		cur.Next()
	}
	patchU32(w.b[countAt:], uint32(n))
	w.bool(truncated)
}

// execSnapRead evaluates one read operation against the last-epoch
// snapshot — the gate-bypass twin of execRead. Snapshot descents take no
// leases (the subtree is frozen), so there are no hints to consult.
func (c *serverConn) execSnapRead(op *readOp, snap *core.Snapshot, w *wbuf) {
	switch op.code {
	case opContains:
		w.bool(snap.Contains(op.arg))
	case opLower, opUpper:
		var cur core.SnapCursor
		if op.code == opLower {
			cur = snap.LowerBound(op.arg)
		} else {
			cur = snap.UpperBound(op.arg)
		}
		if cur.Valid() {
			w.bool(true)
			w.tuple(cur.Tuple())
		} else {
			w.bool(false)
		}
	case opScan:
		c.execSnapScan(op, snap, w)
	case opLen:
		w.u64(uint64(snap.Len()))
	case opStamp:
		// Safe from the snapshot path too: a handed-out snapshot is never
		// stale (scheduler.snapStale blocks instead), so the stamp cannot
		// overstate what the frame's other reads observed.
		applied, head, healthy := c.s.stamp()
		w.u64(applied)
		w.u64(head)
		w.bool(healthy)
	}
}

// execSnapScan is execScan against the last-epoch snapshot: same bounds,
// cap and truncation contract, over the frozen subtree's stack cursor.
func (c *serverConn) execSnapScan(op *readOp, snap *core.Snapshot, w *wbuf) {
	limit := int(op.limit)
	if limit <= 0 || limit > c.s.opts.MaxScan {
		limit = c.s.opts.MaxScan
	}
	var cur core.SnapCursor
	if op.lo != nil {
		if op.loStrict {
			cur = snap.UpperBound(op.lo)
		} else {
			cur = snap.LowerBound(op.lo)
		}
	} else {
		cur = snap.Cursor()
	}
	countAt := len(w.b)
	w.u32(0) // patched below
	n := 0
	truncated := false
	buf := make(tuple.Tuple, c.s.opts.Arity)
	for cur.Valid() {
		if op.hi != nil && cur.Compare(op.hi) >= 0 {
			break
		}
		if n == limit {
			truncated = true
			break
		}
		cur.CopyTo(buf)
		w.tuple(buf)
		n++
		cur.Next()
	}
	patchU32(w.b[countAt:], uint32(n))
	w.bool(truncated)
}

// patchU32 overwrites a previously appended big-endian uint32 in place.
func patchU32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}
