package serve

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"specbtree/internal/obs"
	"specbtree/internal/tuple"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xab}, 1000)}
	for _, version := range []byte{protocolV1, ProtocolVersion} {
		wantTrace := obs.TraceID(0)
		if version >= ProtocolVersion {
			wantTrace = 77
		}
		for _, p := range payloads {
			var buf bytes.Buffer
			if err := writeFrame(&buf, version, kindRequest, 42, wantTrace, p); err != nil {
				t.Fatalf("writeFrame v%d: %v", version, err)
			}
			ver, kind, id, trace, got, err := readFrame(&buf)
			if err != nil {
				t.Fatalf("readFrame v%d: %v", version, err)
			}
			if ver != version || kind != kindRequest || id != 42 || trace != wantTrace {
				t.Fatalf("ver=%d kind=%d id=%d trace=%d, want ver=%d kind=%d id=42 trace=%d",
					ver, kind, id, trace, version, kindRequest, wantTrace)
			}
			if !bytes.Equal(got, p) {
				t.Fatalf("payload %x, want %x", got, p)
			}
		}
	}
}

// TestFrameV1DropsTrace pins the downgrade rule: a version 1 frame has
// no trace field, so a trace written through it does not survive.
func TestFrameV1DropsTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, protocolV1, kindRequest, 7, 99, []byte{1}); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	if buf.Len() != headerSize+1 {
		t.Fatalf("v1 frame is %d bytes, want %d", buf.Len(), headerSize+1)
	}
	_, _, _, trace, _, err := readFrame(&buf)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if trace != 0 {
		t.Fatalf("trace = %d, want 0 through a v1 frame", trace)
	}
}

func TestFrameRejectsMalformedHeaders(t *testing.T) {
	good := func() []byte {
		var buf bytes.Buffer
		writeFrame(&buf, ProtocolVersion, kindHello, 1, 0, []byte{0, 0})
		return buf.Bytes()
	}
	cases := []struct {
		name    string
		corrupt func(b []byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] = 'x'; return b }},
		{"bad version", func(b []byte) []byte { b[2] = 99; return b }},
		{"bad kind", func(b []byte) []byte { b[3] = 77; return b }},
		{"oversized payload", func(b []byte) []byte {
			b[12], b[13], b[14], b[15] = 0xff, 0xff, 0xff, 0xff
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.corrupt(good())
			_, _, _, _, _, err := readFrame(bytes.NewReader(b))
			if !errors.Is(err, errProtocol) {
				t.Fatalf("err = %v, want errProtocol", err)
			}
		})
	}
}

func TestWriteFrameRejectsOversizedPayload(t *testing.T) {
	err := writeFrame(&bytes.Buffer{}, ProtocolVersion, kindRequest, 1, 0, make([]byte, MaxPayload+1))
	if !errors.Is(err, errProtocol) {
		t.Fatalf("err = %v, want errProtocol", err)
	}
}

func TestWriteFrameRejectsUnknownVersion(t *testing.T) {
	err := writeFrame(&bytes.Buffer{}, ProtocolVersion+1, kindRequest, 1, 0, nil)
	if !errors.Is(err, errProtocol) {
		t.Fatalf("err = %v, want errProtocol", err)
	}
}

func TestDecodeRequestReads(t *testing.T) {
	w := &wbuf{}
	w.u16(4)
	w.u8(opContains)
	w.tuple(tuple.Tuple{1, 2})
	w.u8(opLower)
	w.tuple(tuple.Tuple{3, 4})
	w.u8(opScan)
	w.u8(scanLoPresent | scanLoStrict)
	w.tuple(tuple.Tuple{5, 6})
	w.u32(7)
	w.u8(opLen)
	req, err := decodeRequest(9, w.b, 2, 100)
	if err != nil {
		t.Fatalf("decodeRequest: %v", err)
	}
	if req.id != 9 || len(req.reads) != 4 || req.insert != nil {
		t.Fatalf("req = %+v", req)
	}
	scan := req.reads[2]
	if scan.code != opScan || !scan.loStrict || scan.hi != nil || scan.limit != 7 {
		t.Fatalf("scan op = %+v", scan)
	}
	if scan.lo[0] != 5 || scan.lo[1] != 6 {
		t.Fatalf("scan lo = %v", scan.lo)
	}
}

func TestDecodeRequestInsert(t *testing.T) {
	w := &wbuf{}
	w.u16(1)
	w.u8(opInsert)
	w.u32(2)
	w.tuple(tuple.Tuple{1, 2})
	w.tuple(tuple.Tuple{3, 4})
	req, err := decodeRequest(1, w.b, 2, 100)
	if err != nil {
		t.Fatalf("decodeRequest: %v", err)
	}
	if len(req.insert) != 2 || req.reads != nil {
		t.Fatalf("req = %+v", req)
	}
}

func TestDecodeRequestRejects(t *testing.T) {
	mixed := &wbuf{}
	mixed.u16(2)
	mixed.u8(opContains)
	mixed.tuple(tuple.Tuple{1, 2})
	mixed.u8(opInsert)
	mixed.u32(1)
	mixed.tuple(tuple.Tuple{3, 4})

	unknown := &wbuf{}
	unknown.u16(1)
	unknown.u8(200)

	oversize := &wbuf{}
	oversize.u16(1)
	oversize.u8(opInsert)
	oversize.u32(101)

	truncated := &wbuf{}
	truncated.u16(1)
	truncated.u8(opContains)
	truncated.u64(7) // half a tuple

	trailing := &wbuf{}
	trailing.u16(1)
	trailing.u8(opLen)
	trailing.u8(0xff)

	cases := []struct {
		name string
		b    []byte
		want string
	}{
		{"insert mixed with reads", mixed.b, "mixed"},
		{"unknown opcode", unknown.b, "opcode"},
		{"batch above cap", oversize.b, "cap"},
		{"truncated tuple", truncated.b, "truncated"},
		{"trailing bytes", trailing.b, "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := decodeRequest(1, tc.b, 2, 100)
			if !errors.Is(err, errProtocol) || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want errProtocol mentioning %q", err, tc.want)
			}
		})
	}
}

func TestRbufLatchesError(t *testing.T) {
	r := &rbuf{b: []byte{1}}
	r.u64() // fails
	if got := r.u8(); got != 0 {
		t.Fatalf("read after failure = %d, want 0", got)
	}
	if err := r.done(); !errors.Is(err, errProtocol) {
		t.Fatalf("done = %v, want errProtocol", err)
	}
}

func TestEncodeErrTruncatesLongMessages(t *testing.T) {
	b := encodeErr(strings.Repeat("x", 1<<16))
	r := &rbuf{b: b}
	if s := r.u8(); s != statusErr {
		t.Fatalf("status = %d", s)
	}
	n := int(r.u16())
	if n != 1<<15 || len(b) != 3+n {
		t.Fatalf("len = %d, payload = %d", n, len(b))
	}
}
