package serve

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"specbtree/internal/core"
	"specbtree/internal/obs"
	"specbtree/internal/tuple"
)

// This file is the replication stream (DESIGN.md §16): the server side
// of a subscription — a follower sends one kindReplSubscribe frame and
// the leader pushes an optional bootstrap snapshot followed by its
// committed epochs and idle heartbeats — and the follower-side stream
// client (DialReplica / ReplicaConn). The unit of shipment is the
// *committed epoch*, exactly as the shard insert log frames it: a
// follower that applies whole epochs in sequence is always at a state
// the leader actually passed through, which is what makes bounded
// staleness a meaningful promise and promotion a log-replay rather
// than a reconciliation.

// ReplFence is one rebalance cut carried by the stream: the leader
// stopped owning leading-column values in [Lo, Hi] (inclusive), which
// moved to shard Dst. A follower applies it like crash-recovery replay
// does — drop the range — keeping its replica inside the leader's
// ownership without a restart.
type ReplFence struct {
	Lo, Hi uint64
	Dst    uint32
}

// ReplEpoch is one committed write epoch as shipped to followers: its
// sequence number in the leader's log, the insert batches applied in
// order, and any fences cut at its boundary.
type ReplEpoch struct {
	Seq     uint64
	Batches [][]tuple.Tuple
	Fences  []ReplFence
}

// EpochTailer is a cursor over a source's committed epochs, in
// sequence order. Next reports ok=false when no further epoch is
// committed yet; Wait blocks until the source signals progress, stop
// closes, or max elapses — the streamer's idle loop. Implemented by
// the shard log's tailing reader (cluster.LogTailer).
type EpochTailer interface {
	Next() (ReplEpoch, bool, error)
	Wait(stop <-chan struct{}, max time.Duration)
	Close() error
}

// ReplicaSource is what a leader streams from: its durable epoch
// sequence. CommittedSeq is the highest committed epoch (the head
// carried by epoch and heartbeat frames); TailEpochs opens a cursor
// positioned after the given epoch. Implemented by the cluster shard
// log (Options.Replica wires it in).
type ReplicaSource interface {
	CommittedSeq() uint64
	TailEpochs(after uint64) (EpochTailer, error)
}

// replSubSnapshot is the subscribe-flags bit requesting a bootstrap
// snapshot before the epoch stream.
const replSubSnapshot = 1 << 0

// replSnapPageTuples bounds one bootstrap snapshot page.
const replSnapPageTuples = 4096

// handleSubscribe validates a kindReplSubscribe frame, acknowledges it
// (statusOK + the committed head), and hands the connection's outbound
// side to a streamer goroutine. The reader keeps running so a follower
// disconnect is noticed; a returned error tears the connection down.
func (c *serverConn) handleSubscribe(ver byte, id uint64, trace obs.TraceID, payload []byte) error {
	if c.s.opts.Replica == nil {
		return fmt.Errorf("serve: replication not enabled on this server")
	}
	r := &rbuf{b: payload}
	flags := r.u8()
	after := r.u64()
	if err := r.done(); err != nil {
		return err
	}
	w := &wbuf{}
	w.u8(statusOK)
	w.u64(c.s.opts.Replica.CommittedSeq())
	c.send(outFrame{kind: kindResponse, version: ver, id: id, trace: trace, payload: w.b})
	c.s.wg.Add(1)
	go c.streamReplica(ver, id, flags&replSubSnapshot != 0, after)
	return nil
}

// streamReplica is the per-subscription push loop. With wantSnap set it
// first pages out a bootstrap snapshot; the ordering is load-bearing:
// the base epoch is read BEFORE the snapshot is captured, so the
// snapshot contains every epoch <= base and the stream starts at
// base+1 — a tuple landing between the two reads is simply replayed
// onto itself (inserts are idempotent set additions). Epoch frames are
// enqueued with blocking backpressure (sendBlocking): a slow follower
// slows the stream, it is not dropped; WriteTimeout still disconnects
// a dead one. With the default knobs one epoch frame cannot exceed
// MaxPayload (WriteQueue batches of MaxBatch tuples stay well under
// it); a deployment raising both past ~16M tuple-words per epoch would
// have to split epochs first.
func (c *serverConn) streamReplica(ver byte, id uint64, wantSnap bool, after uint64) {
	defer c.s.wg.Done()
	src := c.s.opts.Replica
	start := after
	if wantSnap {
		base := src.CommittedSeq() // before the capture: snapshot ⊇ epochs <= base
		snap, err := c.s.SnapshotNow()
		if err != nil {
			c.close()
			return
		}
		if !c.sendSnapshot(ver, id, base, &snap) {
			return
		}
		start = base
	}
	tailer, err := src.TailEpochs(start)
	if err != nil {
		c.close()
		return
	}
	defer tailer.Close()
	for {
		select {
		case <-c.closed:
			return
		default:
		}
		ep, ok, err := tailer.Next()
		if err != nil {
			// Permanent (log corruption past the committed prefix): the
			// follower re-bootstraps elsewhere or alerts; nothing to stream.
			c.close()
			return
		}
		if !ok {
			w := &wbuf{}
			w.u64(src.CommittedSeq())
			if !c.sendBlocking(outFrame{kind: kindReplHeartbeat, version: ver, id: id, payload: w.b}) {
				return
			}
			tailer.Wait(c.closed, c.s.opts.HeartbeatEvery)
			continue
		}
		w := &wbuf{}
		w.u64(ep.Seq)
		w.u64(src.CommittedSeq())
		w.u32(uint32(len(ep.Batches)))
		for _, b := range ep.Batches {
			w.u32(uint32(len(b)))
			for _, t := range b {
				w.tuple(t)
			}
		}
		w.u32(uint32(len(ep.Fences)))
		for _, f := range ep.Fences {
			w.u64(f.Lo)
			w.u64(f.Hi)
			w.u32(f.Dst)
		}
		if !c.sendBlocking(outFrame{kind: kindReplEpoch, version: ver, id: id, payload: w.b}) {
			return
		}
		obs.Inc(obs.ReplicaStreamEpochs)
	}
}

// sendSnapshot pages a bootstrap snapshot to the subscriber; every page
// carries the base epoch and the final one is flagged last (an empty
// relation ships one empty last page). Reports false when the
// connection closed mid-transfer.
func (c *serverConn) sendSnapshot(ver byte, id uint64, base uint64, snap *core.Snapshot) bool {
	send := func(page []tuple.Tuple, last bool) bool {
		w := &wbuf{}
		w.u64(base)
		w.bool(last)
		w.u32(uint32(len(page)))
		for _, t := range page {
			w.tuple(t)
		}
		return c.sendBlocking(outFrame{kind: kindReplSnapPage, version: ver, id: id, payload: w.b})
	}
	page := make([]tuple.Tuple, 0, replSnapPageTuples)
	for cur := snap.Cursor(); cur.Valid(); cur.Next() {
		t := make(tuple.Tuple, c.s.opts.Arity)
		cur.CopyTo(t)
		page = append(page, t)
		if len(page) == replSnapPageTuples {
			if !send(page, false) {
				return false
			}
			page = page[:0]
		}
	}
	return send(page, true)
}

// ReplicaDialOptions configures DialReplica.
type ReplicaDialOptions struct {
	// Arity is the tuple width the follower expects (must match the
	// leader's; 0 adopts it).
	Arity int
	// Shard, with Sharded set, makes the hello verify the leader's shard
	// identity — same guard as the data-plane client's ExpectShard.
	Shard   uint32
	Sharded bool
	// Snapshot requests a bootstrap snapshot before the epoch stream
	// (fresh follower). Without it the stream resumes after After
	// (restarting follower replaying its own log first).
	Snapshot bool
	// After is the resume position: the stream starts at epoch After+1.
	// Ignored when Snapshot is set (the leader streams from its
	// snapshot's base instead).
	After uint64
	// DialTimeout bounds connection establishment and the handshake
	// (default 5s).
	DialTimeout time.Duration
}

// ReplicaMsgType discriminates ReplicaMsg.
type ReplicaMsgType uint8

const (
	// ReplicaSnapPage carries Base, Last and Tuples.
	ReplicaSnapPage ReplicaMsgType = iota + 1
	// ReplicaEpochMsg carries Epoch and Head.
	ReplicaEpochMsg
	// ReplicaHeartbeat carries Head only.
	ReplicaHeartbeat
)

// ReplicaMsg is one received replication stream message.
type ReplicaMsg struct {
	Type ReplicaMsgType
	// Base is the bootstrap base epoch: the snapshot contains every
	// epoch <= Base and the stream will start at Base+1.
	Base uint64
	// Last flags the final snapshot page.
	Last bool
	// Tuples is one snapshot page's contents.
	Tuples []tuple.Tuple
	// Epoch is one committed leader epoch, to apply atomically.
	Epoch ReplEpoch
	// Head is the leader's committed head when the frame was built —
	// the staleness yardstick (applied vs Head).
	Head uint64
}

// ReplicaConn is the follower side of a replication subscription: a
// dedicated connection that performed the hello and subscribe
// handshakes and now receives the server's push frames via Recv. Not
// safe for concurrent use; the replication apply loop owns it.
type ReplicaConn struct {
	nc    net.Conn
	br    *bufio.Reader
	arity int
	// Head is the leader's committed head at subscribe time.
	Head uint64
}

// DialReplica connects to a leader and opens a replication
// subscription. The hello is the standard one (arity, protocol
// version, optional shard verification), but the negotiated version
// must be 3 — older servers have no replication frames to push.
func DialReplica(addr string, o ReplicaDialOptions) (*ReplicaConn, error) {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, o.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("serve: dial replica source %s: %w", addr, err)
	}
	rc := &ReplicaConn{nc: nc, br: bufio.NewReader(nc), arity: o.Arity}
	if err := rc.handshake(o); err != nil {
		nc.Close()
		return nil, err
	}
	return rc, nil
}

// handshake performs hello + subscribe synchronously under the dial
// deadline.
func (rc *ReplicaConn) handshake(o ReplicaDialOptions) error {
	rc.nc.SetDeadline(time.Now().Add(o.DialTimeout))
	defer rc.nc.SetDeadline(time.Time{})

	w := &wbuf{}
	w.u16(uint16(o.Arity))
	w.u8(ProtocolVersion)
	if o.Sharded {
		w.u32(o.Shard)
	}
	if err := writeFrame(rc.nc, ProtocolVersion, kindHello, 0, 0, w.b); err != nil {
		return fmt.Errorf("serve: replica hello: %w", err)
	}
	_, kind, _, _, payload, err := readFrame(rc.br)
	if err != nil {
		return fmt.Errorf("serve: replica hello: %w", err)
	}
	r := &rbuf{b: payload}
	if kind != kindHello {
		if err := decodeStatus(r); err != nil {
			return fmt.Errorf("serve: replica hello refused: %w", err)
		}
		return fmt.Errorf("%w: hello answered with frame kind %d", errProtocol, kind)
	}
	if status := r.u8(); status != statusOK {
		return fmt.Errorf("serve: replica hello refused with status %d", status)
	}
	arity := int(r.u16())
	negotiated := byte(protocolV1)
	if r.off < len(r.b) {
		negotiated = r.u8()
	}
	if o.Sharded {
		if r.off >= len(r.b) {
			return fmt.Errorf("%w: hello answer carries no shard number", errProtocol)
		}
		if shard := r.u32(); shard != o.Shard {
			return fmt.Errorf("serve: shard mismatch: want shard %d, server is shard %d", o.Shard, shard)
		}
	}
	if err := r.done(); err != nil {
		return err
	}
	if negotiated < ProtocolVersion {
		return fmt.Errorf("serve: source speaks protocol %d; replication needs %d", negotiated, ProtocolVersion)
	}
	if o.Arity != 0 && arity != o.Arity {
		return fmt.Errorf("serve: arity mismatch: want %d, server %d", o.Arity, arity)
	}
	rc.arity = arity

	sub := &wbuf{}
	var flags byte
	if o.Snapshot {
		flags |= replSubSnapshot
	}
	sub.u8(flags)
	sub.u64(o.After)
	if err := writeFrame(rc.nc, ProtocolVersion, kindReplSubscribe, 1, 0, sub.b); err != nil {
		return fmt.Errorf("serve: subscribe: %w", err)
	}
	_, kind, _, _, payload, err = readFrame(rc.br)
	if err != nil {
		return fmt.Errorf("serve: subscribe: %w", err)
	}
	if kind != kindResponse {
		return fmt.Errorf("%w: subscribe answered with frame kind %d", errProtocol, kind)
	}
	r = &rbuf{b: payload}
	if err := decodeStatus(r); err != nil {
		return fmt.Errorf("serve: subscribe refused: %w", err)
	}
	rc.Head = r.u64()
	return r.done()
}

// Arity returns the negotiated tuple width.
func (rc *ReplicaConn) Arity() int { return rc.arity }

// Recv blocks for the next stream message, at most timeout (0 blocks
// indefinitely). A deadline expiry surfaces as a net.Error with
// Timeout() true — the apply loop's cue that the leader went quiet
// past its heartbeat interval and the follower should report
// unhealthy.
func (rc *ReplicaConn) Recv(timeout time.Duration) (ReplicaMsg, error) {
	if timeout > 0 {
		rc.nc.SetReadDeadline(time.Now().Add(timeout))
	} else {
		rc.nc.SetReadDeadline(time.Time{})
	}
	_, kind, _, _, payload, err := readFrame(rc.br)
	if err != nil {
		return ReplicaMsg{}, err
	}
	r := &rbuf{b: payload}
	var m ReplicaMsg
	switch kind {
	case kindReplSnapPage:
		m.Type = ReplicaSnapPage
		m.Base = r.u64()
		m.Last = r.bool()
		n := int(r.u32())
		rem := len(r.b) - r.off
		if n < 0 || rc.arity <= 0 || n > rem/(8*rc.arity) {
			return ReplicaMsg{}, fmt.Errorf("%w: snapshot page overruns payload", errProtocol)
		}
		m.Tuples = make([]tuple.Tuple, 0, n)
		for i := 0; i < n; i++ {
			m.Tuples = append(m.Tuples, r.tuple(rc.arity))
		}
	case kindReplEpoch:
		m.Type = ReplicaEpochMsg
		m.Epoch.Seq = r.u64()
		m.Head = r.u64()
		nb := int(r.u32())
		for i := 0; i < nb && r.err == nil; i++ {
			cnt := int(r.u32())
			rem := len(r.b) - r.off
			if cnt < 0 || rc.arity <= 0 || cnt > rem/(8*rc.arity) {
				return ReplicaMsg{}, fmt.Errorf("%w: epoch batch overruns payload", errProtocol)
			}
			batch := make([]tuple.Tuple, 0, cnt)
			for j := 0; j < cnt; j++ {
				batch = append(batch, r.tuple(rc.arity))
			}
			m.Epoch.Batches = append(m.Epoch.Batches, batch)
		}
		nf := int(r.u32())
		rem := len(r.b) - r.off
		if nf < 0 || nf > rem/20 {
			return ReplicaMsg{}, fmt.Errorf("%w: epoch fences overrun payload", errProtocol)
		}
		for i := 0; i < nf; i++ {
			m.Epoch.Fences = append(m.Epoch.Fences, ReplFence{Lo: r.u64(), Hi: r.u64(), Dst: r.u32()})
		}
	case kindReplHeartbeat:
		m.Type = ReplicaHeartbeat
		m.Head = r.u64()
	default:
		return ReplicaMsg{}, fmt.Errorf("%w: unexpected frame kind %d on replication stream", errProtocol, kind)
	}
	if err := r.done(); err != nil {
		return ReplicaMsg{}, err
	}
	return m, nil
}

// Close tears the subscription down.
func (rc *ReplicaConn) Close() error { return rc.nc.Close() }
