package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"specbtree/internal/obs"
	"specbtree/internal/tuple"
)

// ErrRetry reports server-side write backpressure: the write queue was
// full and the insert batch was NOT applied. The caller owns the backoff
// and resend policy (the batch is safe to resubmit verbatim — inserts
// are idempotent set additions, RETRY means nothing was executed).
var ErrRetry = errors.New("serve: server busy, retry")

// ErrTimeout reports that a request's per-call timeout expired before
// its response arrived. For inserts the batch may or may not have been
// applied; tuple-set inserts are idempotent, so resubmitting after an
// application-level decision is safe.
var ErrTimeout = errors.New("serve: request timed out")

// ErrClosed reports use of a closed client.
var ErrClosed = errors.New("serve: client closed")

// ClientOptions configures Dial.
type ClientOptions struct {
	// Arity is the tuple width the client expects; 0 adopts the
	// server's, any other value must match it or Dial fails.
	Arity int
	// Timeout bounds each request round-trip (default 10s).
	Timeout time.Duration
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// Trace, when non-zero, stamps every request of this client with the
	// given trace ID (obs.ForceTrace issues one) and records a
	// client.request span per round trip. When zero, each request
	// consults the obs sampling gate (obs.SetTraceSampleRate) instead —
	// off by default. Traced requests require a protocol-version-2
	// server; against a version 1 server the trace stays client-side.
	Trace obs.TraceID
	// ExpectShard makes every hello (initial dial and reconnect) state
	// which cluster shard the client expects: the server must be a
	// shard and its number must equal ShardID, or the connection is
	// refused. Cluster routing sets it so a stale shard map can never
	// silently read or write the wrong shard behind a rebound address.
	ExpectShard bool
	// ShardID is the expected shard number; meaningful only with
	// ExpectShard set (shard 0 is a valid shard).
	ShardID uint32
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	return o
}

// Client is a pipelined wire-protocol client. It is safe for concurrent
// use: calls from many goroutines share one connection, their requests
// are pipelined (written back to back, matched to responses by id), and
// each call waits only for its own response.
//
// The client re-establishes its connection on demand: a broken
// connection fails the calls in flight, and the next call redials.
// Idempotent reads are additionally retried once transparently after a
// connection reset; inserts never are (a reset insert's fate is unknown
// — the caller decides, see Insert).
type Client struct {
	addr string
	opts ClientOptions

	// connMu guards connection (re)establishment and frame writes.
	connMu sync.Mutex
	conn   net.Conn
	bw     *bufio.Writer
	gen    uint64 // connection generation, for targeted teardown
	arity  int
	ver    byte // negotiated protocol version of the live connection

	pendMu  sync.Mutex
	pending map[uint64]*call

	nextID     atomic.Uint64
	reconnects atomic.Uint64
	closed     atomic.Bool
}

// call is one in-flight request.
type call struct {
	gen uint64
	ch  chan callResult
}

type callResult struct {
	kind    byte
	payload []byte
	err     error
}

// Dial connects to a relation server and performs the arity handshake.
func Dial(addr string, opts ClientOptions) (*Client, error) {
	c := &Client{addr: addr, opts: opts.withDefaults(), pending: make(map[uint64]*call)}
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if err := c.connectLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// Arity returns the negotiated tuple width.
func (c *Client) Arity() int {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.arity
}

// Reconnects returns how many times the client re-established its
// connection (the initial dial not counted).
func (c *Client) Reconnects() uint64 { return c.reconnects.Load() }

// Close tears the connection down; in-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	c.closed.Store(true)
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// connectLocked dials and performs the hello handshake; connMu held.
func (c *Client) connectLocked() error {
	if c.closed.Load() {
		return ErrClosed
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return fmt.Errorf("serve: dial %s: %w", c.addr, err)
	}
	// Handshake synchronously, before the reader goroutine exists: no
	// other frame can be in flight on this connection yet. The hello
	// offers the client's maximum protocol version; the answer carries
	// the negotiation result (absent from a version 1 server's answer,
	// which predates the version byte — negotiated down to 1).
	w := &wbuf{}
	w.u16(uint16(c.opts.Arity))
	w.u8(ProtocolVersion)
	if c.opts.ExpectShard {
		w.u32(c.opts.ShardID)
	}
	conn.SetDeadline(time.Now().Add(c.opts.Timeout))
	if err := writeFrame(conn, ProtocolVersion, kindHello, 0, 0, w.b); err != nil {
		conn.Close()
		return fmt.Errorf("serve: hello: %w", err)
	}
	_, kind, _, _, payload, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return fmt.Errorf("serve: hello: %w", err)
	}
	r := &rbuf{b: payload}
	if kind != kindHello {
		// Refusals (arity mismatch, malformed hello) arrive as response
		// frames carrying statusErr.
		conn.Close()
		if err := decodeStatus(r); err != nil {
			return fmt.Errorf("serve: hello refused: %w", err)
		}
		return fmt.Errorf("%w: hello answered with frame kind %d", errProtocol, kind)
	}
	if status := r.u8(); status != statusOK {
		conn.Close()
		return fmt.Errorf("serve: hello refused with status %d", status)
	}
	arity := int(r.u16())
	if arity == 0 {
		conn.Close()
		return fmt.Errorf("%w: hello advertises arity 0", errProtocol)
	}
	negotiated := byte(protocolV1)
	if r.off < len(r.b) {
		negotiated = r.u8()
		if negotiated > ProtocolVersion || negotiated < protocolV1 {
			conn.Close()
			return fmt.Errorf("%w: negotiated version %d", errProtocol, negotiated)
		}
	}
	if c.opts.ExpectShard {
		// A server that verified the shard echoes its number; an answer
		// without it comes from a server that ignored the extension and
		// cannot be trusted to be the right shard.
		if r.off >= len(r.b) {
			conn.Close()
			return fmt.Errorf("%w: hello answer carries no shard number", errProtocol)
		}
		if shard := r.u32(); shard != c.opts.ShardID {
			conn.Close()
			return fmt.Errorf("serve: shard mismatch: want shard %d, server is shard %d", c.opts.ShardID, shard)
		}
	}
	if err := r.done(); err != nil {
		conn.Close()
		return err
	}
	if c.opts.Arity != 0 && arity != c.opts.Arity {
		conn.Close()
		return fmt.Errorf("serve: arity mismatch: want %d, server %d", c.opts.Arity, arity)
	}
	conn.SetDeadline(time.Time{})
	c.arity = arity
	c.ver = negotiated
	c.conn = conn
	c.bw = bufio.NewWriter(conn)
	c.gen++
	go c.readLoop(conn, c.gen)
	return nil
}

// ensureConnLocked returns the live connection, redialing if needed.
func (c *Client) ensureConnLocked() (uint64, error) {
	if c.conn != nil {
		return c.gen, nil
	}
	if err := c.connectLocked(); err != nil {
		return 0, err
	}
	c.reconnects.Add(1)
	return c.gen, nil
}

// readLoop dispatches response frames to their waiting calls. On a read
// error it tears down this connection generation: the socket is closed,
// and every call sent on it fails with the connection error so its
// caller can decide whether to retry.
func (c *Client) readLoop(conn net.Conn, gen uint64) {
	br := bufio.NewReader(conn)
	for {
		_, kind, id, _, payload, err := readFrame(br)
		if err != nil {
			c.teardown(conn, gen, err)
			return
		}
		c.pendMu.Lock()
		ca := c.pending[id]
		if ca != nil && ca.gen == gen {
			delete(c.pending, id)
		} else {
			ca = nil // stale or timed-out request; drop the frame
		}
		c.pendMu.Unlock()
		if ca != nil {
			ca.ch <- callResult{kind: kind, payload: payload}
		}
	}
}

// teardown closes one connection generation and fails its in-flight
// calls.
func (c *Client) teardown(conn net.Conn, gen uint64, err error) {
	c.connMu.Lock()
	if c.gen == gen && c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.bw = nil
	}
	c.connMu.Unlock()
	if c.closed.Load() {
		err = ErrClosed
	}
	c.pendMu.Lock()
	for id, ca := range c.pending {
		if ca.gen == gen {
			delete(c.pending, id)
			ca.ch <- callResult{err: fmt.Errorf("serve: connection lost: %w", err)}
		}
	}
	c.pendMu.Unlock()
}

// roundTrip sends one request payload and waits for its response.
// idempotent requests are retried once on a fresh connection after a
// connection-level failure; non-idempotent ones (inserts) never are.
// A traced request (ClientOptions.Trace, or the obs sampling gate)
// carries its trace ID in the frame header and records one
// client.request span covering the whole round trip, retry included.
func (c *Client) roundTrip(payload []byte, idempotent bool) ([]byte, error) {
	trace := c.opts.Trace
	if trace == 0 {
		trace = obs.StartTrace()
	}
	var spanStart int64
	if trace != 0 {
		spanStart = obs.Clock()
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if c.closed.Load() {
			return nil, ErrClosed
		}
		res, connErr, err := c.attempt(payload, trace)
		if err != nil {
			return nil, err // application-level or timeout: no retry
		}
		if connErr == nil {
			if trace != 0 {
				obs.RecordSpan(trace, 0, 0, obs.SpanClientRequest, spanStart, obs.Clock()-spanStart,
					uint64(len(payload)), uint64(attempt+1))
			}
			return res, nil
		}
		lastErr = connErr
		if !idempotent || attempt >= 1 {
			return nil, lastErr
		}
		// Idempotent read on a reset connection: redial (inside the next
		// attempt) and retry exactly once.
	}
}

// attempt performs one send/receive. The error split matters for retry
// policy: connErr reports a connection-level failure (dial, write,
// reset) where the request may simply be resent; err reports a
// definitive outcome (timeout with unknown fate, client closed) that
// roundTrip must not paper over.
func (c *Client) attempt(payload []byte, trace obs.TraceID) (resp []byte, connErr, err error) {
	c.connMu.Lock()
	gen, cerr := c.ensureConnLocked()
	if cerr != nil {
		c.connMu.Unlock()
		return nil, cerr, nil
	}
	id := c.nextID.Add(1)
	ca := &call{gen: gen, ch: make(chan callResult, 1)}
	c.pendMu.Lock()
	c.pending[id] = ca
	c.pendMu.Unlock()

	ver := c.ver
	if ver < ProtocolVersion {
		trace = 0 // a version 1 server has no header field to carry it
	}
	c.conn.SetWriteDeadline(time.Now().Add(c.opts.Timeout))
	werr := writeFrame(c.bw, ver, kindRequest, id, trace, payload)
	if werr == nil {
		werr = c.bw.Flush()
	}
	conn := c.conn
	c.connMu.Unlock()
	if werr != nil {
		c.unregister(id)
		c.teardown(conn, gen, werr)
		return nil, werr, nil
	}

	timer := time.NewTimer(c.opts.Timeout)
	defer timer.Stop()
	select {
	case r := <-ca.ch:
		if r.err != nil {
			return nil, r.err, nil
		}
		return r.payload, nil, nil
	case <-timer.C:
		c.unregister(id)
		return nil, nil, ErrTimeout
	}
}

// unregister removes a pending call (send failure or timeout); a late
// response for it is discarded by the read loop.
func (c *Client) unregister(id uint64) {
	c.pendMu.Lock()
	delete(c.pending, id)
	c.pendMu.Unlock()
}

// decodeStatus consumes the response status byte, mapping RETRY and ERR
// to errors.
func decodeStatus(r *rbuf) error {
	switch status := r.u8(); status {
	case statusOK:
		return nil
	case statusRetry:
		return ErrRetry
	case statusErr:
		n := int(r.u16())
		if r.err != nil || r.off+n > len(r.b) {
			return fmt.Errorf("%w: truncated error response", errProtocol)
		}
		msg := string(r.b[r.off : r.off+n])
		r.off += n
		return fmt.Errorf("serve: server error: %s", msg)
	default:
		return fmt.Errorf("%w: unknown response status %d", errProtocol, status)
	}
}

// checkArity validates an argument tuple's width before serialising.
func (c *Client) checkArity(t tuple.Tuple) error {
	if len(t) != c.arity {
		return fmt.Errorf("serve: arity-%d tuple for arity-%d relation", len(t), c.arity)
	}
	return nil
}

// Contains reports whether t is in the served relation.
func (c *Client) Contains(t tuple.Tuple) (bool, error) {
	if err := c.checkArity(t); err != nil {
		return false, err
	}
	w := &wbuf{}
	w.u16(1)
	w.u8(opContains)
	w.tuple(t)
	payload, err := c.roundTrip(w.b, true)
	if err != nil {
		return false, err
	}
	r := &rbuf{b: payload}
	if err := decodeStatus(r); err != nil {
		return false, err
	}
	v := r.bool()
	if err := r.done(); err != nil {
		return false, err
	}
	return v, nil
}

// bound issues a lower/upper-bound query.
func (c *Client) bound(code byte, v tuple.Tuple) (tuple.Tuple, bool, error) {
	if err := c.checkArity(v); err != nil {
		return nil, false, err
	}
	w := &wbuf{}
	w.u16(1)
	w.u8(code)
	w.tuple(v)
	payload, err := c.roundTrip(w.b, true)
	if err != nil {
		return nil, false, err
	}
	r := &rbuf{b: payload}
	if err := decodeStatus(r); err != nil {
		return nil, false, err
	}
	ok := r.bool()
	var t tuple.Tuple
	if ok {
		t = r.tuple(c.arity)
	}
	if err := r.done(); err != nil {
		return nil, false, err
	}
	return t, ok, nil
}

// LowerBound returns the smallest stored tuple >= v.
func (c *Client) LowerBound(v tuple.Tuple) (tuple.Tuple, bool, error) {
	return c.bound(opLower, v)
}

// UpperBound returns the smallest stored tuple > v.
func (c *Client) UpperBound(v tuple.Tuple) (tuple.Tuple, bool, error) {
	return c.bound(opUpper, v)
}

// Len returns the relation's element count.
func (c *Client) Len() (int, error) {
	w := &wbuf{}
	w.u16(1)
	w.u8(opLen)
	payload, err := c.roundTrip(w.b, true)
	if err != nil {
		return 0, err
	}
	r := &rbuf{b: payload}
	if err := decodeStatus(r); err != nil {
		return 0, err
	}
	n := r.u64()
	if err := r.done(); err != nil {
		return 0, err
	}
	return int(n), nil
}

// Scan returns stored tuples t with lo <= t < hi in order (nil bounds
// are open), at most limit of them (0 = the server's cap). truncated
// reports that the server cut the result off; ScanAll paginates instead.
func (c *Client) Scan(lo, hi tuple.Tuple, limit int) (ts []tuple.Tuple, truncated bool, err error) {
	// Reject before encoding: the wire carries limit as u32, so a
	// negative value would wrap into a huge positive cap.
	if limit < 0 {
		return nil, false, fmt.Errorf("serve: negative scan limit %d", limit)
	}
	return c.scan(lo, hi, false, limit)
}

// ScanPage fetches one page of a resumable range scan: tuples t with
// lo <= t < hi in order (nil bounds are open; lo itself is excluded
// when loStrict), at most limit of them (0 = the server's cap).
// truncated reports more tuples remain; resume with lo = the last
// returned tuple and loStrict = true — the resumption-token surface
// the cluster router's fan-out merge paginates each shard with.
func (c *Client) ScanPage(lo, hi tuple.Tuple, loStrict bool, limit int) (ts []tuple.Tuple, truncated bool, err error) {
	if limit < 0 {
		return nil, false, fmt.Errorf("serve: negative scan limit %d", limit)
	}
	return c.scan(lo, hi, loStrict, limit)
}

func (c *Client) scan(lo, hi tuple.Tuple, loStrict bool, limit int) ([]tuple.Tuple, bool, error) {
	if lo != nil {
		if err := c.checkArity(lo); err != nil {
			return nil, false, err
		}
	}
	if hi != nil {
		if err := c.checkArity(hi); err != nil {
			return nil, false, err
		}
	}
	w := &wbuf{}
	w.u16(1)
	w.u8(opScan)
	var flags byte
	if lo != nil {
		flags |= scanLoPresent
	}
	if hi != nil {
		flags |= scanHiPresent
	}
	if loStrict {
		flags |= scanLoStrict
	}
	w.u8(flags)
	if lo != nil {
		w.tuple(lo)
	}
	if hi != nil {
		w.tuple(hi)
	}
	w.u32(uint32(limit))
	payload, err := c.roundTrip(w.b, true)
	if err != nil {
		return nil, false, err
	}
	r := &rbuf{b: payload}
	if err := decodeStatus(r); err != nil {
		return nil, false, err
	}
	n := int(r.u32())
	// Compare against the remaining bytes by division: the product form
	// (r.off + 8*arity*n > len) overflows int on 32-bit platforms for a
	// hostile count, wrapping negative and slipping past the check.
	rem := len(r.b) - r.off
	if n < 0 || c.arity <= 0 || n > rem/(8*c.arity) {
		return nil, false, fmt.Errorf("%w: scan result overruns payload", errProtocol)
	}
	out := make([]tuple.Tuple, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.tuple(c.arity))
	}
	truncated := r.bool()
	if err := r.done(); err != nil {
		return nil, false, err
	}
	return out, truncated, nil
}

// ScanAll streams the whole range [lo, hi) through yield in order,
// paginating past the server's per-scan cap; returning false from yield
// stops early.
func (c *Client) ScanAll(lo, hi tuple.Tuple, yield func(tuple.Tuple) bool) error {
	cur, strict := lo, false
	for {
		page, truncated, err := c.scan(cur, hi, strict, 0)
		if err != nil {
			return err
		}
		for _, t := range page {
			if !yield(t) {
				return nil
			}
		}
		if !truncated {
			return nil
		}
		// A truncated page must carry at least one tuple to resume after;
		// an empty one means the server can make no progress claim, and
		// trusting it would loop forever (and indexing it would panic).
		if len(page) == 0 {
			return fmt.Errorf("%w: truncated scan page carries no tuples", errProtocol)
		}
		cur, strict = page[len(page)-1], true
	}
}

// Stamp is a server's replication position, answered by opStamp under
// the same read admission as the rest of its frame: Applied is the
// server's applied-epoch watermark, Head the highest leader epoch it
// knows committed, Healthy whether its replication stream is live. On
// a leader Applied == Head always (a leader is never stale against
// itself), so Head-Applied is the follower's lag in epochs.
type Stamp struct {
	Applied, Head uint64
	Healthy       bool
}

// decodeStamp consumes one opStamp result.
func decodeStamp(r *rbuf) Stamp {
	return Stamp{Applied: r.u64(), Head: r.u64(), Healthy: r.bool()}
}

// stamped prepends opStamp to a single-op read frame so the response
// carries the server's replication position evaluated atomically with
// the read — the cluster router's staleness check costs no extra round
// trip.
func stampedFrame(encode func(w *wbuf)) []byte {
	w := &wbuf{}
	w.u16(2)
	w.u8(opStamp)
	encode(w)
	return w.b
}

// Stamp fetches the server's replication position alone — the health
// and lag probe promotion and routing decisions poll.
func (c *Client) Stamp() (Stamp, error) {
	w := &wbuf{}
	w.u16(1)
	w.u8(opStamp)
	payload, err := c.roundTrip(w.b, true)
	if err != nil {
		return Stamp{}, err
	}
	r := &rbuf{b: payload}
	if err := decodeStatus(r); err != nil {
		return Stamp{}, err
	}
	st := decodeStamp(r)
	if err := r.done(); err != nil {
		return Stamp{}, err
	}
	return st, nil
}

// ContainsStamped is Contains plus the server's replication stamp,
// evaluated in the same frame (requires a protocol-version-3 server).
func (c *Client) ContainsStamped(t tuple.Tuple) (bool, Stamp, error) {
	if err := c.checkArity(t); err != nil {
		return false, Stamp{}, err
	}
	payload, err := c.roundTrip(stampedFrame(func(w *wbuf) {
		w.u8(opContains)
		w.tuple(t)
	}), true)
	if err != nil {
		return false, Stamp{}, err
	}
	r := &rbuf{b: payload}
	if err := decodeStatus(r); err != nil {
		return false, Stamp{}, err
	}
	st := decodeStamp(r)
	v := r.bool()
	if err := r.done(); err != nil {
		return false, Stamp{}, err
	}
	return v, st, nil
}

// boundStamped is bound plus the server's replication stamp.
func (c *Client) boundStamped(code byte, v tuple.Tuple) (tuple.Tuple, bool, Stamp, error) {
	if err := c.checkArity(v); err != nil {
		return nil, false, Stamp{}, err
	}
	payload, err := c.roundTrip(stampedFrame(func(w *wbuf) {
		w.u8(code)
		w.tuple(v)
	}), true)
	if err != nil {
		return nil, false, Stamp{}, err
	}
	r := &rbuf{b: payload}
	if err := decodeStatus(r); err != nil {
		return nil, false, Stamp{}, err
	}
	st := decodeStamp(r)
	ok := r.bool()
	var t tuple.Tuple
	if ok {
		t = r.tuple(c.arity)
	}
	if err := r.done(); err != nil {
		return nil, false, Stamp{}, err
	}
	return t, ok, st, nil
}

// LowerBoundStamped is LowerBound plus the server's replication stamp.
func (c *Client) LowerBoundStamped(v tuple.Tuple) (tuple.Tuple, bool, Stamp, error) {
	return c.boundStamped(opLower, v)
}

// UpperBoundStamped is UpperBound plus the server's replication stamp.
func (c *Client) UpperBoundStamped(v tuple.Tuple) (tuple.Tuple, bool, Stamp, error) {
	return c.boundStamped(opUpper, v)
}

// ScanPageStamped is ScanPage plus the server's replication stamp.
func (c *Client) ScanPageStamped(lo, hi tuple.Tuple, loStrict bool, limit int) (ts []tuple.Tuple, truncated bool, st Stamp, err error) {
	if limit < 0 {
		return nil, false, Stamp{}, fmt.Errorf("serve: negative scan limit %d", limit)
	}
	if lo != nil {
		if err := c.checkArity(lo); err != nil {
			return nil, false, Stamp{}, err
		}
	}
	if hi != nil {
		if err := c.checkArity(hi); err != nil {
			return nil, false, Stamp{}, err
		}
	}
	payload, err := c.roundTrip(stampedFrame(func(w *wbuf) {
		w.u8(opScan)
		var flags byte
		if lo != nil {
			flags |= scanLoPresent
		}
		if hi != nil {
			flags |= scanHiPresent
		}
		if loStrict {
			flags |= scanLoStrict
		}
		w.u8(flags)
		if lo != nil {
			w.tuple(lo)
		}
		if hi != nil {
			w.tuple(hi)
		}
		w.u32(uint32(limit))
	}), true)
	if err != nil {
		return nil, false, Stamp{}, err
	}
	r := &rbuf{b: payload}
	if err := decodeStatus(r); err != nil {
		return nil, false, Stamp{}, err
	}
	st = decodeStamp(r)
	n := int(r.u32())
	rem := len(r.b) - r.off
	if n < 0 || c.arity <= 0 || n > rem/(8*c.arity) {
		return nil, false, Stamp{}, fmt.Errorf("%w: scan result overruns payload", errProtocol)
	}
	out := make([]tuple.Tuple, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.tuple(c.arity))
	}
	truncated = r.bool()
	if err := r.done(); err != nil {
		return nil, false, Stamp{}, err
	}
	return out, truncated, st, nil
}

// Insert adds the batch to the relation, returning how many tuples were
// new. On ErrRetry the server's write queue was full and nothing was
// applied: back off and resubmit. Inserts are never retried internally —
// a connection failure mid-insert returns the error with the batch's
// fate unknown (set inserts are idempotent, so callers with a fresh
// connection may safely resubmit; the fresh count of a resubmitted batch
// counts only genuinely new tuples).
func (c *Client) Insert(batch []tuple.Tuple) (fresh int, err error) {
	w := &wbuf{}
	w.u16(1)
	w.u8(opInsert)
	w.u32(uint32(len(batch)))
	for _, t := range batch {
		if err := c.checkArity(t); err != nil {
			return 0, err
		}
		w.tuple(t)
	}
	payload, err := c.roundTrip(w.b, false)
	if err != nil {
		return 0, err
	}
	r := &rbuf{b: payload}
	if err := decodeStatus(r); err != nil {
		return 0, err
	}
	n := r.u32()
	if err := r.done(); err != nil {
		return 0, err
	}
	return int(n), nil
}
