package serve

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"specbtree/internal/tuple"
)

func startServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := Start("127.0.0.1:0", opts)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func dialClient(t *testing.T, s *Server, opts ClientOptions) *Client {
	t.Helper()
	c, err := Dial(s.Addr(), opts)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServerBasicOps(t *testing.T) {
	s := startServer(t, Options{Arity: 2})
	c := dialClient(t, s, ClientOptions{})
	if c.Arity() != 2 {
		t.Fatalf("negotiated arity = %d, want 2", c.Arity())
	}

	fresh, err := c.Insert([]tuple.Tuple{{1, 10}, {2, 20}, {3, 30}, {1, 10}})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if fresh != 3 {
		t.Fatalf("fresh = %d, want 3", fresh)
	}

	for _, tc := range []struct {
		t    tuple.Tuple
		want bool
	}{{tuple.Tuple{1, 10}, true}, {tuple.Tuple{2, 20}, true}, {tuple.Tuple{9, 9}, false}} {
		got, err := c.Contains(tc.t)
		if err != nil {
			t.Fatalf("Contains(%v): %v", tc.t, err)
		}
		if got != tc.want {
			t.Fatalf("Contains(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}

	lb, ok, err := c.LowerBound(tuple.Tuple{2, 0})
	if err != nil || !ok || lb[0] != 2 || lb[1] != 20 {
		t.Fatalf("LowerBound = %v, %v, %v; want {2 20}", lb, ok, err)
	}
	ub, ok, err := c.UpperBound(tuple.Tuple{2, 20})
	if err != nil || !ok || ub[0] != 3 || ub[1] != 30 {
		t.Fatalf("UpperBound = %v, %v, %v; want {3 30}", ub, ok, err)
	}
	if _, ok, err := c.LowerBound(tuple.Tuple{9, 9}); err != nil || ok {
		t.Fatalf("LowerBound past end = %v, %v; want miss", ok, err)
	}

	n, err := c.Len()
	if err != nil || n != 3 {
		t.Fatalf("Len = %d, %v; want 3", n, err)
	}

	ts, truncated, err := c.Scan(tuple.Tuple{1, 10}, tuple.Tuple{3, 30}, 0)
	if err != nil || truncated {
		t.Fatalf("Scan: truncated=%v err=%v", truncated, err)
	}
	if len(ts) != 2 || ts[0][0] != 1 || ts[1][0] != 2 {
		t.Fatalf("Scan = %v, want [{1 10} {2 20}]", ts)
	}

	ts, truncated, err = c.Scan(nil, nil, 2)
	if err != nil || !truncated || len(ts) != 2 {
		t.Fatalf("limited Scan = %v, truncated=%v, err=%v", ts, truncated, err)
	}
}

func TestClientScanAllPaginates(t *testing.T) {
	s := startServer(t, Options{Arity: 1, MaxScan: 10})
	c := dialClient(t, s, ClientOptions{Arity: 1})
	const n = 35
	var batch []tuple.Tuple
	for i := 0; i < n; i++ {
		batch = append(batch, tuple.Tuple{uint64(i)})
	}
	if _, err := c.Insert(batch); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	var got []uint64
	if err := c.ScanAll(nil, nil, func(t tuple.Tuple) bool {
		got = append(got, t[0])
		return true
	}); err != nil {
		t.Fatalf("ScanAll: %v", err)
	}
	if len(got) != n {
		t.Fatalf("ScanAll yielded %d tuples, want %d", len(got), n)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("got[%d] = %d, want %d", i, v, i)
		}
	}
	// Early stop.
	count := 0
	if err := c.ScanAll(nil, nil, func(tuple.Tuple) bool { count++; return count < 5 }); err != nil {
		t.Fatalf("ScanAll early stop: %v", err)
	}
	if count != 5 {
		t.Fatalf("early stop yielded %d, want 5", count)
	}
}

func TestDialArityMismatch(t *testing.T) {
	s := startServer(t, Options{Arity: 2})
	_, err := Dial(s.Addr(), ClientOptions{Arity: 3})
	if err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("Dial with wrong arity = %v, want arity-mismatch error", err)
	}
}

// TestServerBackpressureRetry deterministically forces a full write
// queue (a held reader blocks the epoch) and checks that the overflowing
// insert surfaces as ErrRetry and succeeds after backoff.
func TestServerBackpressureRetry(t *testing.T) {
	s := startServer(t, Options{Arity: 2, WriteQueue: 1})
	c := dialClient(t, s, ClientOptions{})

	if mode, _, _ := s.sched.beginRead(); mode != readLive {
		t.Fatalf("beginRead mode = %v, want readLive", mode)
	}
	readHeld := true
	defer func() {
		if readHeld {
			s.sched.endRead() // never leave Close() deadlocked on a failure path
		}
	}()
	results := make(chan error, 2)
	insert := func(v uint64) {
		_, err := c.Insert([]tuple.Tuple{{v, v}})
		results <- err
	}
	go insert(1) // picked up by the epoch goroutine, which blocks on the reader
	waitUntil(t, "epoch to start waiting", func() bool { return epochPending(s.sched) })
	go insert(2) // fills the queue (cap 1)
	waitUntil(t, "queue to fill", func() bool { return s.sched.queueDepth() == 1 })

	if _, err := c.Insert([]tuple.Tuple{{3, 3}}); !errors.Is(err, ErrRetry) {
		t.Fatalf("overflowing insert = %v, want ErrRetry", err)
	}

	s.sched.endRead()
	readHeld = false
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("queued insert %d: %v", i, err)
		}
	}
	if _, err := c.Insert([]tuple.Tuple{{3, 3}}); err != nil {
		t.Fatalf("insert after backoff: %v", err)
	}
	st := s.Stats()
	if st.Retries == 0 {
		t.Fatal("no retries recorded")
	}
	if st.PhaseViolations != 0 {
		t.Fatalf("phase violations = %d", st.PhaseViolations)
	}
}

// TestServerGracefulShutdownDeliversPendingInserts checks the drain
// contract: an insert admitted before Shutdown gets its response even
// though its epoch runs during the drain.
func TestServerGracefulShutdownDeliversPendingInserts(t *testing.T) {
	s := startServer(t, Options{Arity: 2})
	c := dialClient(t, s, ClientOptions{})

	if mode, _, _ := s.sched.beginRead(); mode != readLive {
		t.Fatalf("beginRead mode = %v, want readLive", mode)
	}
	readHeld := true
	defer func() {
		if readHeld {
			s.sched.endRead()
		}
	}()
	type res struct {
		fresh int
		err   error
	}
	insertDone := make(chan res, 1)
	go func() {
		fresh, err := c.Insert([]tuple.Tuple{{7, 7}, {8, 8}})
		insertDone <- res{fresh, err}
	}()
	waitUntil(t, "epoch to start waiting", func() bool { return epochPending(s.sched) })

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Close() }()
	time.Sleep(10 * time.Millisecond) // let Shutdown reach the drain
	s.sched.endRead()
	readHeld = false

	r := <-insertDone
	if r.err != nil || r.fresh != 2 {
		t.Fatalf("pending insert = fresh %d, err %v; want 2, nil", r.fresh, r.err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if s.Tree().Len() != 2 {
		t.Fatalf("tree.Len = %d, want 2", s.Tree().Len())
	}
}

// TestServerDropsSlowClient overflows a tiny outbound queue with large
// pipelined scan responses that the client never reads.
func TestServerDropsSlowClient(t *testing.T) {
	s := startServer(t, Options{Arity: 2, OutboundQueue: 1, WriteTimeout: 200 * time.Millisecond})
	seed := dialClient(t, s, ClientOptions{})
	var batch []tuple.Tuple
	for i := 0; i < 1000; i++ {
		batch = append(batch, tuple.Tuple{uint64(i), uint64(i)})
	}
	if _, err := seed.Insert(batch); err != nil {
		t.Fatalf("seed insert: %v", err)
	}

	// Raw connection: handshake, then blast full-table scans without ever
	// reading a response.
	nc, err := netDial(s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	hello := &wbuf{}
	hello.u16(0)
	if err := writeFrame(nc, protocolV1, kindHello, 0, 0, hello.b); err != nil {
		t.Fatalf("hello: %v", err)
	}
	scan := &wbuf{}
	scan.u16(1)
	scan.u8(opScan)
	scan.u8(0)
	scan.u32(0)
	for i := 0; i < 5000; i++ {
		if err := writeFrame(nc, protocolV1, kindRequest, uint64(i+1), 0, scan.b); err != nil {
			break // server closed the connection
		}
	}
	waitUntil(t, "slow client to be dropped", func() bool { return s.Stats().ConnsDropped >= 1 })
}

// TestServerConcurrentClients runs mixed traffic from 8 pipelined
// clients and asserts the counted phase invariant plus exact contents.
func TestServerConcurrentClients(t *testing.T) {
	s := startServer(t, Options{Arity: 2, WriteQueue: 4})
	const (
		clients   = 8
		perClient = 40
		batchSize = 4
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := Dial(s.Addr(), ClientOptions{})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < perClient; i++ {
				var batch []tuple.Tuple
				for j := 0; j < batchSize; j++ {
					v := uint64(ci*perClient*batchSize + i*batchSize + j)
					batch = append(batch, tuple.Tuple{v, v + 1})
				}
				for {
					if _, err := c.Insert(batch); err == nil {
						break
					} else if !errors.Is(err, ErrRetry) {
						errs <- fmt.Errorf("client %d insert: %w", ci, err)
						return
					}
					time.Sleep(time.Millisecond)
				}
				if _, err := c.Contains(batch[0]); err != nil {
					errs <- fmt.Errorf("client %d contains: %w", ci, err)
					return
				}
				if _, _, err := c.LowerBound(batch[0]); err != nil {
					errs <- fmt.Errorf("client %d lower: %w", ci, err)
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.PhaseViolations != 0 {
		t.Fatalf("phase violations = %d, want 0", st.PhaseViolations)
	}
	if st.Epochs == 0 {
		t.Fatal("no write epochs recorded")
	}
	want := clients * perClient * batchSize
	if st.WriteOps == 0 || s.Tree().Len() != want {
		t.Fatalf("tree.Len = %d (writeOps %d), want %d", s.Tree().Len(), st.WriteOps, want)
	}
}

// TestServerRejectsMalformedFrame checks that a protocol error earns an
// error response and a closed connection.
func TestServerRejectsMalformedFrame(t *testing.T) {
	s := startServer(t, Options{Arity: 2})
	nc, err := netDial(s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	hello := &wbuf{}
	hello.u16(0)
	if err := writeFrame(nc, protocolV1, kindHello, 0, 0, hello.b); err != nil {
		t.Fatalf("hello: %v", err)
	}
	if _, _, _, _, _, err := readFrame(nc); err != nil {
		t.Fatalf("hello response: %v", err)
	}
	bad := &wbuf{}
	bad.u16(1)
	bad.u8(250) // unknown opcode
	if err := writeFrame(nc, protocolV1, kindRequest, 1, 0, bad.b); err != nil {
		t.Fatalf("write: %v", err)
	}
	_, kind, _, _, payload, err := readFrame(nc)
	if err != nil {
		t.Fatalf("read error response: %v", err)
	}
	r := &rbuf{b: payload}
	if kind != kindResponse || r.u8() != statusErr {
		t.Fatalf("kind=%d payload=%x, want statusErr response", kind, payload)
	}
	// The server closes the connection after a protocol error.
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, _, _, _, _, err := readFrame(nc); err == nil {
		t.Fatal("connection still open after protocol error")
	}
}

// TestServerSnapshotReadsDuringEpoch is the end-to-end gate bypass: a
// held live reader keeps an insert's epoch pending, and a client read
// arriving then is answered immediately from the last-epoch snapshot —
// with pre-epoch contents — instead of waiting out the epoch.
func TestServerSnapshotReadsDuringEpoch(t *testing.T) {
	s := startServer(t, Options{Arity: 2})
	c := dialClient(t, s, ClientOptions{Timeout: 5 * time.Second})

	if _, err := c.Insert([]tuple.Tuple{{1, 1}, {2, 2}}); err != nil {
		t.Fatalf("seed insert: %v", err)
	}
	waitUntil(t, "seed epoch to retire", func() bool { return !epochPending(s.sched) })

	// Hold the gate: the next insert's epoch stays pending.
	if mode, _, _ := s.sched.beginRead(); mode != readLive {
		t.Fatalf("beginRead mode = %v, want readLive", mode)
	}
	readHeld := true
	defer func() {
		if readHeld {
			s.sched.endRead()
		}
	}()
	insDone := make(chan error, 1)
	go func() {
		_, err := c.Insert([]tuple.Tuple{{3, 3}})
		insDone <- err
	}()
	waitUntil(t, "epoch pending", func() bool { return epochPending(s.sched) })

	// Reads served now must come from the pre-epoch snapshot, promptly.
	if got, err := c.Contains(tuple.Tuple{1, 1}); err != nil || !got {
		t.Fatalf("snapshot Contains(1,1) = (%v, %v), want true", got, err)
	}
	if got, err := c.Contains(tuple.Tuple{3, 3}); err != nil || got {
		t.Fatalf("snapshot Contains(3,3) = (%v, %v), want false (in-flight epoch)", got, err)
	}
	if bt, ok, err := c.LowerBound(tuple.Tuple{2, 0}); err != nil || !ok || bt[0] != 2 || bt[1] != 2 {
		t.Fatalf("snapshot LowerBound(2,0) = (%v, %v, %v), want (2,2)", bt, ok, err)
	}
	if n, err := c.Len(); err != nil || n != 2 {
		t.Fatalf("snapshot Len = (%d, %v), want 2", n, err)
	}
	var scanned []tuple.Tuple
	if err := c.ScanAll(nil, nil, func(tp tuple.Tuple) bool {
		scanned = append(scanned, tp.Clone())
		return true
	}); err != nil {
		t.Fatalf("snapshot ScanAll: %v", err)
	}
	if len(scanned) != 2 {
		t.Fatalf("snapshot ScanAll yielded %d tuples, want 2", len(scanned))
	}
	if st := s.Stats(); st.SnapshotReads == 0 {
		t.Fatal("no snapshot reads recorded")
	}

	// Release the gate; read-your-writes: once the insert is ACKed, a
	// read must see it (live or from the refreshed snapshot).
	s.sched.endRead()
	readHeld = false
	if err := <-insDone; err != nil {
		t.Fatalf("insert: %v", err)
	}
	if got, err := c.Contains(tuple.Tuple{3, 3}); err != nil || !got {
		t.Fatalf("post-ACK Contains(3,3) = (%v, %v), want true", got, err)
	}
	if st := s.Stats(); st.PhaseViolations != 0 {
		t.Fatalf("phase violations = %d", st.PhaseViolations)
	}
}

// TestServerDisableSnapshotReads pins the baseline configuration: with
// the bypass off, a read arriving during a pending epoch waits at the
// gate (and no snapshot reads are counted).
func TestServerDisableSnapshotReads(t *testing.T) {
	s := startServer(t, Options{Arity: 2, DisableSnapshotReads: true})
	c := dialClient(t, s, ClientOptions{Timeout: 5 * time.Second})

	if mode, _, _ := s.sched.beginRead(); mode != readLive {
		t.Fatalf("beginRead mode = %v, want readLive", mode)
	}
	readHeld := true
	defer func() {
		if readHeld {
			s.sched.endRead()
		}
	}()
	insDone := make(chan error, 1)
	go func() {
		_, err := c.Insert([]tuple.Tuple{{1, 1}})
		insDone <- err
	}()
	waitUntil(t, "epoch pending", func() bool { return epochPending(s.sched) })

	readDone := make(chan struct{})
	go func() {
		c.Contains(tuple.Tuple{1, 1})
		close(readDone)
	}()
	select {
	case <-readDone:
		t.Fatal("read completed while the epoch was pending with snapshots disabled")
	case <-time.After(30 * time.Millisecond):
	}

	s.sched.endRead()
	readHeld = false
	<-readDone
	if err := <-insDone; err != nil {
		t.Fatalf("insert: %v", err)
	}
	if st := s.Stats(); st.SnapshotReads != 0 {
		t.Fatalf("SnapshotReads = %d with bypass disabled", st.SnapshotReads)
	}
}
