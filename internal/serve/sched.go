package serve

import (
	"errors"
	"sync"
	"sync/atomic"

	"specbtree/internal/core"
	"specbtree/internal/obs"
	"specbtree/internal/tuple"
)

// This file is the phase scheduler: the admission controller that turns
// open-world network traffic back into the paper's phase-concurrency
// discipline. The rules, in order of authority:
//
//  1. A write epoch never overlaps a read *of the live tree*. The epoch
//     goroutine closes the read gate (epochPending), waits for active
//     readers to drain to zero, executes every admitted batch
//     single-handedly, and reopens the gate. Between epochs, reads run
//     fully concurrently on the tree's optimistic read path.
//     Readers arriving while the gate is closed are not blocked: they
//     are routed to the last-epoch snapshot (core.Tree.Snapshot,
//     DESIGN.md §14), which is immutable and safe to read while the
//     epoch writes — the MVCC-lite bypass. Snapshot readers are
//     uncounted by design: they never touch current-epoch state, so the
//     counted no-overlap invariant below concerns live readers only.
//     Options.DisableSnapshotReads restores the blocking gate (the
//     pre-snapshot baseline, kept for comparison benchmarks).
//  2. Writes are admitted through a bounded queue. A full queue is
//     backpressure, not blocking: submit fails fast and the server
//     answers RETRY, pushing the wait onto the client where it cannot
//     hold server resources.
//  3. Writers cannot be starved: once an epoch is pending, newly
//     arriving readers queue behind it rather than extending the current
//     read phase indefinitely.
//  4. Shutdown drains: batches already admitted to the queue execute
//     before the scheduler stops; new submissions fail with ErrShutdown.
//
// The invariant of rule 1 is not merely structural — it is *counted*.
// Readers and the epoch executor each publish their activity in atomic
// cells, and both sides cross-check the other on every operation; any
// observed overlap increments a violation counter surfaced through
// Stats and obs ("serve.phase.violations"). The differential harness
// (internal/check) asserts the counter stays zero under concurrent
// socket traffic in every build flavour.

// ErrShutdown is returned for work submitted after drain began.
var ErrShutdown = errors.New("serve: server shutting down")

// errBusy reports a full write queue; the conn layer turns it into a
// RETRY response.
var errBusy = errors.New("serve: write queue full")

// writeBatch is one admitted insert batch and its completion channel.
// trace carries the originating frame's trace ID (0 = untraced) so the
// epoch that applies the batch can attribute itself to it. A batch with
// swap set is a tree exchange instead of an insert: the epoch installs
// the replacement tree at its quiescent point (Server.Exchange — the
// follower fence-retirement path) and resets every hint set, since
// cached leaves of the old tree could still pass their lease+coverage
// checks and answer from retired data.
type writeBatch struct {
	tuples []tuple.Tuple
	swap   *core.Tree
	done   chan writeResult
	trace  obs.TraceID
}

// writeResult reports an executed batch: the number of tuples not
// previously present, or the error that failed the epoch's durability
// (the batch was applied in memory but could not be logged; the
// acknowledgement becomes a server error so the client cannot count on
// it surviving a restart).
type writeResult struct {
	fresh int
	err   error
}

// readMode classifies a beginRead admission.
type readMode uint8

const (
	// readRefused: the scheduler is draining; answer ErrShutdown.
	readRefused readMode = iota
	// readLive: the reader was admitted to the live tree between epochs
	// and must call endRead when done.
	readLive
	// readSnapshot: a write epoch holds the gate closed; the reader was
	// handed the last-epoch snapshot instead and must NOT call endRead
	// (snapshot readers are uncounted — they never touch the live tree).
	readSnapshot
)

// scheduler implements the epoch-batched phase admission for one tree.
type scheduler struct {
	// tree is the served tree. It is a pointer cell because a follower
	// retiring a fenced range exchanges the whole tree at an epoch
	// boundary (writeBatch.swap); readers load it once per operation.
	tree  atomic.Pointer[core.Tree]
	arity int
	// treeGen counts tree exchanges. Connections compare it against the
	// generation their hint set was built for and discard stale hints —
	// a cached leaf of a replaced tree can still pass lease+coverage
	// validation and would answer from retired data.
	treeGen atomic.Uint64

	// snapshots enables the gate-bypass path: gated readers get the
	// last-epoch snapshot instead of blocking. Disabled, the scheduler
	// behaves exactly like the pre-snapshot blocking gate.
	snapshots bool
	// snap is the last-epoch snapshot. Refreshing it is demand-driven:
	// the epoch goroutine recaptures at an epoch boundary (a quiescent
	// point by construction — the gate is closed and live readers have
	// drained) only while bypass traffic is consuming snapshots, because
	// each capture freezes the whole tree and taxes every later insert
	// with a copy-on-write clone per first-touched node (DESIGN.md §14).
	// With no demand the boundary marks the snapshot stale instead, and
	// a write-only stream pays nothing. Handout happens under mu so
	// drain can fence it (see beginRead).
	snap atomic.Pointer[core.Snapshot]

	mu   sync.Mutex
	cond *sync.Cond
	// readers is the number of admitted, still-active readers.
	readers int
	// epochPending closes the read gate: it is set from the moment an
	// epoch starts waiting for readers to drain until its batches have
	// been applied.
	epochPending bool
	draining     bool
	// snapStale marks the stored snapshot as missing acknowledged epochs:
	// handing it out would break read-your-writes, so a gated reader
	// blocks instead (and sets snapDemand). snapUsed records a handout
	// since the last refresh decision; either signal makes the next epoch
	// boundary refresh.
	snapStale  bool
	snapUsed   bool
	snapDemand bool

	// log, when non-nil, makes epochs durable: runEpoch appends every
	// applied batch to it before delivering acknowledgements
	// (Options.EpochLog). Guarded by logMu: promotion installs a log
	// into a follower's scheduler while the epoch goroutine runs.
	logMu sync.Mutex
	log   EpochLog

	queue  chan *writeBatch
	stopCh chan struct{}
	doneCh chan struct{}

	// Atomic mirrors of the phase state, used only for invariant
	// cross-checking (they deliberately do not feed scheduling
	// decisions, so a bug in the mutex protocol cannot hide itself).
	atomicReaders atomic.Int64
	epochActive   atomic.Bool

	// Local counters mirroring the obs registry so Stats (and the
	// harness's invariant assertion) work under the obsoff build tag too.
	epochs        atomic.Uint64
	readOps       atomic.Uint64
	writeOps      atomic.Uint64
	retries       atomic.Uint64
	violations    atomic.Uint64
	snapshotReads atomic.Uint64

	hints *core.Hints // epoch executor's insert hints; owned by run()
}

// newScheduler builds and starts the scheduler. snapshots enables the
// gate-bypass path; the construction point is quiescent, so the initial
// snapshot (of the possibly pre-loaded tree) is taken right here.
func newScheduler(tree *core.Tree, queueCap int, snapshots bool, log EpochLog) *scheduler {
	s := &scheduler{
		arity:     tree.Arity(),
		snapshots: snapshots,
		log:       log,
		queue:     make(chan *writeBatch, queueCap),
		stopCh:    make(chan struct{}),
		doneCh:    make(chan struct{}),
		hints:     core.NewHints(),
	}
	s.tree.Store(tree)
	if snapshots {
		sp := tree.Snapshot()
		s.snap.Store(&sp)
	}
	s.cond = sync.NewCond(&s.mu)
	go s.run()
	return s
}

// setLog installs (or replaces) the scheduler's epoch log. The
// promotion path calls it on a follower's scheduler, which until then
// ran without durability — its tree was a replica of an elsewhere-
// durable log — and from the next epoch on must log its own writes.
func (s *scheduler) setLog(l EpochLog) {
	s.logMu.Lock()
	s.log = l
	s.logMu.Unlock()
}

// violation records one observed overlap of a read with a write epoch.
func (s *scheduler) violation() {
	s.violations.Add(1)
	obs.Inc(obs.ServePhaseViolations)
}

// beginRead admits one reader. With the gate open it admits to the live
// tree (mode readLive; the caller must endRead). With a write epoch
// pending it hands out the last-epoch snapshot instead of blocking
// (mode readSnapshot; snap is non-nil, no endRead) — unless snapshots
// are disabled, in which case it blocks at the gate like the original
// scheduler. mode readRefused means the scheduler is draining and the
// read must be refused. blocked reports whether the gate actually made
// the caller wait (feeding the serve.phase.wait span — an unblocked
// admission records nothing; a snapshot bypass never blocks).
//
// Snapshot handout is fenced behind draining *under mu*: drain sets
// draining under the same mutex before executing the final epochs, so a
// reader that passed the fence holds a snapshot from before drain began
// and a reader arriving after it is refused — it can never be handed a
// view of a tree the server has logically closed.
func (s *scheduler) beginRead() (mode readMode, snap *core.Snapshot, blocked bool) {
	s.mu.Lock()
	if s.epochPending && !s.draining && s.snapshots {
		if sp := s.snap.Load(); sp != nil && !s.snapStale {
			s.snapUsed = true
			s.mu.Unlock()
			s.snapshotReads.Add(1)
			obs.Inc(obs.ServeSnapshotReads)
			return readSnapshot, sp, false
		}
		// The snapshot lapsed while bypass demand was idle (it misses
		// acknowledged epochs, so handing it out would break
		// read-your-writes). Block this reader like the baseline gate and
		// signal the epoch goroutine to resume refreshing.
		s.snapDemand = true
	}
	for s.epochPending && !s.draining {
		blocked = true
		s.cond.Wait()
	}
	if s.draining && s.epochPending {
		// Drain has priority over late readers; refuse rather than race
		// the final epochs.
		s.mu.Unlock()
		return readRefused, nil, blocked
	}
	s.readers++
	s.mu.Unlock()
	s.atomicReaders.Add(1)
	// Cross-check rule 1 from the reader's side: no epoch may be
	// executing while this live reader is admitted.
	if s.epochActive.Load() {
		s.violation()
	}
	return readLive, nil, blocked
}

// endRead retires one live reader (readLive admissions only — snapshot
// readers are uncounted), waking a drain-waiting epoch when the last
// reader leaves.
func (s *scheduler) endRead() {
	s.atomicReaders.Add(-1)
	s.mu.Lock()
	s.readers--
	if s.readers == 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// submit admits an insert batch to the write queue. It fails fast with
// errBusy on a full queue (backpressure) and ErrShutdown once drain
// began. On success the result is delivered on b.done after the batch's
// epoch executed.
func (s *scheduler) submit(b *writeBatch) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrShutdown
	}
	select {
	case s.queue <- b:
		depth := len(s.queue)
		s.mu.Unlock()
		obs.Observe(obs.HistServeQueueDepth, uint64(depth))
		return nil
	default:
		s.mu.Unlock()
		s.retries.Add(1)
		obs.Inc(obs.ServeRetries)
		return errBusy
	}
}

// run is the epoch goroutine: it blocks for the first queued batch,
// greedily collects everything else already admitted, and executes the
// collection as one write epoch. On stop it drains the queue (graceful
// shutdown) before exiting.
func (s *scheduler) run() {
	defer close(s.doneCh)
	for {
		select {
		case first := <-s.queue:
			s.runEpoch(s.collect(first))
		case <-s.stopCh:
			for {
				select {
				case b := <-s.queue:
					s.runEpoch(s.collect(b))
				default:
					return
				}
			}
		}
	}
}

// collect greedily gathers every batch already sitting in the queue, so
// one epoch absorbs all concurrently arrived writes (the flat-combining
// analogue: one drain pays for the whole backlog).
func (s *scheduler) collect(first *writeBatch) []*writeBatch {
	batch := []*writeBatch{first}
	for {
		select {
		case b := <-s.queue:
			batch = append(batch, b)
		default:
			return batch
		}
	}
}

// runEpoch executes one write epoch: close the read gate, wait for
// readers to drain, apply every batch, reopen the gate and deliver the
// results. When any batch is traced, the whole epoch — reader drain
// included — is recorded as one serve.epoch span under the first
// traced batch's trace.
func (s *scheduler) runEpoch(batches []*writeBatch) {
	var etrace obs.TraceID
	var espanStart int64
	for _, b := range batches {
		if b.trace != 0 {
			etrace = b.trace
			espanStart = obs.Clock()
			break
		}
	}

	s.mu.Lock()
	s.epochPending = true
	for s.readers > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()

	start := obs.Clock()
	s.epochActive.Store(true)
	results := make([]writeResult, len(batches))
	swapped := false
	for bi, b := range batches {
		// Cross-check rule 1 from the writer's side, per batch: no
		// reader may be active while the epoch executes.
		if s.atomicReaders.Load() != 0 {
			s.violation()
		}
		if b.swap != nil {
			// Tree exchange at the quiescent point: live readers are
			// drained, snapshot readers hold the immutable old snapshot.
			// The epoch executor's hints and every connection's hints
			// (via treeGen) are reset — old-tree leaves could still pass
			// their coverage checks and answer from retired data.
			s.tree.Store(b.swap)
			s.hints = core.NewHints()
			s.treeGen.Add(1)
			swapped = true
			results[bi] = writeResult{}
			continue
		}
		bstart := obs.Clock()
		fresh := 0
		tree := s.tree.Load()
		for _, words := range b.tuples {
			if tree.InsertHint(words, s.hints) {
				fresh++
			}
		}
		obs.Observe(obs.HistServeWriteBatchNanos, uint64(obs.Clock()-bstart))
		obs.Add(obs.ServeWriteOps, uint64(len(b.tuples)))
		obs.Inc(obs.ServeWriteBatches)
		s.writeOps.Add(uint64(len(b.tuples)))
		results[bi] = writeResult{fresh: fresh}
	}
	s.hints.FlushObs()
	s.epochActive.Store(false)

	// Durability point: the applied batches hit the insert log as one
	// flush before any acknowledgement is delivered, so the set of acked
	// tuples is always a prefix of the committed log. A log failure
	// fails every batch of the epoch — the tuples are in memory but not
	// durable, and the clients must not be told otherwise. (Swap batches
	// carry no tuples and contribute nothing to the flush.)
	s.logMu.Lock()
	log := s.log
	s.logMu.Unlock()
	if log != nil {
		applied := make([][]tuple.Tuple, len(batches))
		for bi, b := range batches {
			applied[bi] = b.tuples
		}
		if err := log.LogEpoch(applied); err != nil {
			for bi := range results {
				results[bi] = writeResult{err: err}
			}
		}
	}

	// Epoch-boundary snapshot decision, before the gate reopens: the gate
	// is still closed and live readers are drained, so this is a
	// quiescent point by construction. Refresh only on demand — a
	// handout since the last refresh, a gated reader that found the
	// snapshot stale, or the very first epoch (so the bypass is warm for
	// tests and freshly started servers). Each refresh freezes the whole
	// tree (every later insert copy-on-writes its first touch of a
	// frozen node), so an idle bypass must not pay it per epoch: with no
	// demand the snapshot is marked stale instead, and the next gated
	// reader blocks once to re-arm the refreshes.
	if s.snapshots {
		s.mu.Lock()
		// A tree exchange forces the refresh: the stored snapshot views
		// the replaced tree, and serving it would resurrect the retired
		// range past the epoch that dropped it.
		refresh := s.snapUsed || s.snapDemand || swapped || s.epochs.Load() == 0
		s.mu.Unlock()
		if refresh {
			sp := s.tree.Load().Snapshot()
			s.snap.Store(&sp)
		}
		s.mu.Lock()
		if refresh {
			s.snapStale, s.snapUsed, s.snapDemand = false, false, false
		} else {
			s.snapStale = true
		}
		s.mu.Unlock()
	}

	// Deliver the acknowledgements only after the snapshot refresh:
	// otherwise a client could see its insert ACKed and immediately issue
	// a read that the still-closed gate routes to the pre-epoch snapshot,
	// losing read-your-writes. done is buffered; a departed connection
	// cannot block the epoch.
	for bi, b := range batches {
		b.done <- results[bi]
	}

	s.mu.Lock()
	s.epochPending = false
	s.cond.Broadcast()
	s.mu.Unlock()

	s.epochs.Add(1)
	obs.Inc(obs.ServeEpochs)
	obs.Observe(obs.HistServeEpochNanos, uint64(obs.Clock()-start))
	if etrace != 0 {
		tuples := uint64(0)
		for _, b := range batches {
			tuples += uint64(len(b.tuples))
		}
		obs.RecordSpan(etrace, 0, 0, obs.SpanServeEpoch, espanStart, obs.Clock()-espanStart,
			uint64(len(batches)), tuples)
	}
}

// drain stops admission and waits until every already-admitted batch has
// executed. Idempotent.
func (s *scheduler) drain() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()
	if !already {
		close(s.stopCh)
	}
	<-s.doneCh
}

// queueDepth reports the current write-queue occupancy.
func (s *scheduler) queueDepth() int { return len(s.queue) }
