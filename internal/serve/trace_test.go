package serve

import (
	"testing"
	"time"

	"specbtree/internal/datalog"
	"specbtree/internal/obs"
	"specbtree/internal/tuple"
)

// traceTestProg gives the engine side of the journey a recursive rule,
// so the forced trace picks up engine.round and iter.scan spans.
const traceTestProg = `
.decl edge(x: number, y: number)
.decl path(x: number, y: number)
.output path
edge(1, 2). edge(2, 3). edge(3, 4).
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
`

// TestTraceLinksAllLayers is the end-to-end attribution check: one
// forced trace ID follows a request over a real socket — client send,
// server frame, scheduler phase wait, write epoch — and then drives an
// engine evaluation, and every layer's spans come back under that same
// ID. The phase wait is scripted deterministically: snapshot reads are
// disabled so the gate blocks, and a held reader keeps an insert's epoch
// pending, so a read frame arriving then must wait at the gate (with the
// default snapshot bypass it would be served immediately and record no
// wait).
func TestTraceLinksAllLayers(t *testing.T) {
	if !obs.Enabled {
		t.Skip("observability compiled out")
	}
	obs.ResetTrace()
	trace := obs.ForceTrace()

	s, err := Start("127.0.0.1:0", Options{Arity: 2, DisableSnapshotReads: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr(), ClientOptions{Trace: trace, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Hold the read gate open so the insert's epoch stays pending.
	if mode, _, _ := s.sched.beginRead(); mode != readLive {
		t.Fatalf("beginRead mode = %v, want readLive", mode)
	}
	insErr := make(chan error, 1)
	go func() {
		_, err := c.Insert([]tuple.Tuple{{1, 2}, {3, 4}})
		insErr <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.sched.mu.Lock()
		pending := s.sched.epochPending
		s.sched.mu.Unlock()
		if pending {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("insert epoch never became pending")
		}
		time.Sleep(time.Millisecond)
	}

	// A traced read arriving now must wait out the epoch at the gate.
	rdErr := make(chan error, 1)
	go func() {
		_, err := c.Contains(tuple.Tuple{1, 2})
		rdErr <- err
	}()
	// Give the read frame time to reach the gate; the epoch cannot
	// complete meanwhile — we still hold a reader.
	time.Sleep(100 * time.Millisecond)
	s.sched.endRead()
	if err := <-insErr; err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := <-rdErr; err != nil {
		t.Fatalf("contains: %v", err)
	}

	// The same trace drives an engine evaluation.
	prog, err := datalog.Parse(traceTestProg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := datalog.New(prog, datalog.Options{Workers: 2, TraceID: trace, NoPlanCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	spans := obs.Spans()
	bySite := map[string][]obs.Span{}
	ids := map[obs.SpanID]obs.Span{}
	for _, sp := range spans {
		if sp.Trace != trace {
			t.Fatalf("span %+v carries trace %d, want %d", sp, sp.Trace, trace)
		}
		bySite[sp.Site] = append(bySite[sp.Site], sp)
		ids[sp.Span] = sp
	}
	for _, site := range []string{
		"client.request", "serve.frame.read", "serve.frame.insert",
		"serve.phase.wait", "serve.epoch", "engine.round", "engine.rule", "iter.scan",
	} {
		if len(bySite[site]) == 0 {
			t.Errorf("trace %d has no %s span", trace, site)
		}
	}
	// The phase wait hangs off the read frame that suffered it.
	for _, w := range bySite["serve.phase.wait"] {
		p, ok := ids[w.Parent]
		if !ok || p.Site != "serve.frame.read" {
			t.Errorf("serve.phase.wait parent %d is not a retained serve.frame.read span", w.Parent)
		}
	}
}
