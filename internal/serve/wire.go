// Package serve exposes one relation — a concurrent specialised B-tree
// (package core) — over TCP, while preserving the paper's central engine
// assumption under open-world traffic: a relation is either read by many
// threads or written by many threads, never both (phase concurrency,
// paper §2). Independent network clients do not arrive in phases, so the
// server manufactures them: a phase scheduler (sched.go) classifies every
// request as read (contains, lower/upper bound, scan, len) or write
// (insert batch), queues writes into a bounded admission queue, and
// executes them in *write epochs* — the scheduler closes the read gate,
// waits for in-flight reads to drain, applies every queued batch with no
// reader active, and reopens the gate. Reads between epochs run fully
// concurrently on the optimistic read path, exactly as inside the
// evaluation engine. Epoch-batched admission is the serving-layer
// analogue of flat-combining batched updates (see PAPERS.md on
// elimination (a,b)-trees); the read path stays optimistic as in
// FB+-tree.
//
// Backpressure is explicit and bounded everywhere: a full write queue
// answers RETRY (the client backs off and resends), a slow client whose
// bounded outbound queue overflows is disconnected, and shutdown drains
// admitted work before closing connections.
//
// This file defines the wire protocol. It is a length-prefixed binary
// framing with no dependencies outside the standard library:
//
//	offset  size  field
//	0       2     magic "sb"
//	2       1     protocol version (1, 2 or 3)
//	3       1     frame kind (hello / request / response / replication)
//	4       8     request id, big-endian (echoed by the response)
//	12      4     payload length, big-endian (at most MaxPayload)
//	16      8     trace id, big-endian (version >= 2 frames only)
//	16/24   —     payload (offset 24 in version >= 2 frames)
//
// Version 2 extends the version 1 header by one field: an 8-byte trace
// ID linking the frame to the observability layer's span tracer
// (internal/obs, DESIGN.md §13). A zero trace ID means "not traced";
// responses echo the request's trace ID. Version 3 (the current
// ProtocolVersion) keeps the version 2 header and adds the replication
// frame family (subscribe / snapshot page / epoch / heartbeat,
// replica.go) and the opStamp read opcode — a follower's applied-epoch
// watermark, answered atomically with the other reads of its frame. All
// versions are accepted on the read side, and each frame is answered in
// the version it arrived in, so old clients interoperate unchanged.
//
// A connection starts with a hello exchange (client states its tuple
// arity, or 0 to adopt the server's; the server answers with the served
// arity). A version 2 hello appends the client's maximum protocol
// version to the arity, and the server's answer appends the negotiated
// version; a 2-byte hello payload is a version 1 client and the answer
// omits the version byte. After the hello, request frames carry a batch
// of operations and may be pipelined: the server may answer frames out
// of order, and responses are matched to requests by id. A request
// frame is *homogeneous*: either a batch of read operations or a single
// insert batch — never both, so its phase classification is
// unambiguous.
//
// Request payload: uint16 operation count, then operations in order.
// Each operation is an opcode byte followed by its arguments; tuples are
// arity × 8 bytes, big-endian words.
//
//	opContains  tuple
//	opLower     tuple
//	opUpper     tuple
//	opScan      flags byte (bit0 lo present, bit1 hi present, bit2 lo
//	            strict), [lo tuple], [hi tuple], uint32 limit (0 = server
//	            cap; hi is exclusive)
//	opLen       (no arguments)
//	opInsert    uint32 tuple count, tuples (write; must be the frame's
//	            only operation)
//	opStamp     (no arguments; version 3) — the server's replication
//	            stamp, evaluated under the same read admission as the
//	            frame's other operations
//
// Response payload: status byte, then per-operation results in request
// order (statusOK), nothing (statusRetry — write queue full, resend
// later), or uint16 length + message (statusErr).
//
//	opContains  bool byte
//	opLower     bool byte, [tuple]
//	opUpper     bool byte, [tuple]
//	opScan      uint32 count, tuples, truncated bool byte
//	opLen       uint64
//	opInsert    uint32 fresh (tuples not previously present)
//	opStamp     uint64 applied, uint64 head, healthy bool byte
//
// Integers are big-endian throughout. Unknown versions, kinds, opcodes,
// oversized payloads and truncated frames are protocol errors; the
// server answers statusErr where it can and closes the connection.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"specbtree/internal/obs"
	"specbtree/internal/tuple"
)

// ProtocolVersion is the current wire-protocol version: version 3 adds
// the replication frame family and the opStamp opcode to the version 2
// header (which carries an 8-byte trace ID). Versions 1 and 2 are still
// accepted and negotiated down to during hello.
const ProtocolVersion = 3

// protocolV1 is the pre-tracing wire version, kept readable and
// writable for old peers.
const protocolV1 = 1

// protocolV2 introduced the trace-ID header field; every version >= 2
// frame carries it.
const protocolV2 = 2

// MaxPayload bounds a frame payload; larger length prefixes are protocol
// errors, protecting both sides from corrupt or hostile peers.
const MaxPayload = 1 << 24

// headerSize is the fixed frame-header length common to both versions;
// version 2 headers carry traceFieldSize more bytes after it.
const headerSize = 16

// traceFieldSize is the size of the version 2 header's trace-ID field.
const traceFieldSize = 8

// Frame kinds. The replication kinds (version 3) are a server-push
// family: a follower sends one kindReplSubscribe, the server answers it
// with a kindResponse and then pushes snapshot pages, epochs and
// heartbeats carrying the subscribe frame's id (replica.go).
const (
	kindHello    = 1
	kindRequest  = 2
	kindResponse = 3
	// kindReplSubscribe (client -> server) opens an epoch stream:
	// payload = flags u8 (bit0: bootstrap snapshot wanted), after u64.
	kindReplSubscribe = 4
	// kindReplSnapPage (server -> client) carries one bootstrap
	// snapshot page: base u64, last bool u8, count u32, tuples.
	kindReplSnapPage = 5
	// kindReplEpoch (server -> client) carries one committed epoch:
	// seq u64, head u64, batch count u32 (each: count u32, tuples),
	// fence count u32 (each: lo u64, hi u64, dst u32).
	kindReplEpoch = 6
	// kindReplHeartbeat (server -> client) refreshes the leader's
	// committed head while the log is idle: head u64.
	kindReplHeartbeat = 7
)

// Operation codes.
const (
	opContains = 1
	opLower    = 2
	opUpper    = 3
	opScan     = 4
	opLen      = 5
	opInsert   = 6
	opStamp    = 7
)

// Response status codes.
const (
	statusOK    = 0
	statusRetry = 1
	statusErr   = 2
)

// Scan flag bits.
const (
	scanLoPresent = 1 << 0
	scanHiPresent = 1 << 1
	scanLoStrict  = 1 << 2
)

// errProtocol wraps malformed-frame conditions; connections observing it
// are torn down.
var errProtocol = errors.New("serve: protocol error")

// writeFrame writes one frame in the given protocol version (a version
// 1 frame drops the trace field; its trace must be zero by then). The
// caller serialises writers.
func writeFrame(w io.Writer, version, kind byte, id uint64, trace obs.TraceID, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("%w: payload %d exceeds MaxPayload", errProtocol, len(payload))
	}
	if version < protocolV1 || version > ProtocolVersion {
		return fmt.Errorf("%w: cannot write version %d", errProtocol, version)
	}
	var hdr [headerSize + traceFieldSize]byte
	hdr[0], hdr[1] = 's', 'b'
	hdr[2] = version
	hdr[3] = kind
	binary.BigEndian.PutUint64(hdr[4:12], id)
	binary.BigEndian.PutUint32(hdr[12:16], uint32(len(payload)))
	n := headerSize
	if version >= protocolV2 {
		binary.BigEndian.PutUint64(hdr[16:24], uint64(trace))
		n += traceFieldSize
	}
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame of either protocol version, bounding the
// payload at MaxPayload. Version 1 frames report trace 0.
func readFrame(r io.Reader) (version, kind byte, id uint64, trace obs.TraceID, payload []byte, err error) {
	var hdr [headerSize]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, 0, 0, nil, err
	}
	if hdr[0] != 's' || hdr[1] != 'b' {
		return 0, 0, 0, 0, nil, fmt.Errorf("%w: bad magic %q", errProtocol, hdr[0:2])
	}
	version = hdr[2]
	if version < protocolV1 || version > ProtocolVersion {
		return 0, 0, 0, 0, nil, fmt.Errorf("%w: version %d, want %d..%d", errProtocol, version, protocolV1, ProtocolVersion)
	}
	kind = hdr[3]
	switch {
	case kind == kindHello || kind == kindRequest || kind == kindResponse:
	case kind >= kindReplSubscribe && kind <= kindReplHeartbeat && version >= ProtocolVersion:
		// Replication frames exist only from version 3 on.
	default:
		return 0, 0, 0, 0, nil, fmt.Errorf("%w: unknown frame kind %d for version %d", errProtocol, kind, version)
	}
	id = binary.BigEndian.Uint64(hdr[4:12])
	n := binary.BigEndian.Uint32(hdr[12:16])
	if n > MaxPayload {
		return 0, 0, 0, 0, nil, fmt.Errorf("%w: payload %d exceeds MaxPayload", errProtocol, n)
	}
	if version >= protocolV2 {
		var tr [traceFieldSize]byte
		if _, err = io.ReadFull(r, tr[:]); err != nil {
			return 0, 0, 0, 0, nil, err
		}
		trace = obs.TraceID(binary.BigEndian.Uint64(tr[:]))
	}
	if n > 0 {
		payload = make([]byte, n)
		if _, err = io.ReadFull(r, payload); err != nil {
			return 0, 0, 0, 0, nil, err
		}
	}
	return version, kind, id, trace, payload, nil
}

// wbuf is an append-only payload encoder.
type wbuf struct{ b []byte }

func (w *wbuf) u8(v byte)    { w.b = append(w.b, v) }
func (w *wbuf) u16(v uint16) { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *wbuf) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64) { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *wbuf) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *wbuf) tuple(t tuple.Tuple) {
	for _, v := range t {
		w.u64(v)
	}
}

// rbuf is a cursor-based payload decoder. The first failed read latches
// err; subsequent reads return zero values, so decode sequences need a
// single error check at the end.
type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated payload", errProtocol)
	}
}

func (r *rbuf) u8() byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *rbuf) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *rbuf) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *rbuf) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *rbuf) bool() bool { return r.u8() != 0 }

func (r *rbuf) tuple(arity int) tuple.Tuple {
	if r.err != nil || r.off+8*arity > len(r.b) {
		r.fail()
		return nil
	}
	t := make(tuple.Tuple, arity)
	for i := range t {
		t[i] = binary.BigEndian.Uint64(r.b[r.off:])
		r.off += 8
	}
	return t
}

// done reports decoding success: no latched error and no trailing bytes.
func (r *rbuf) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing payload bytes", errProtocol, len(r.b)-r.off)
	}
	return nil
}

// readOp is one decoded read operation of a request frame.
type readOp struct {
	code     byte
	arg      tuple.Tuple // contains/lower/upper probe
	lo, hi   tuple.Tuple // scan range (nil = open end)
	loStrict bool        // scan: skip elements equal to lo
	limit    uint32      // scan: result cap (0 = server cap)
}

// request is one decoded request frame: either read ops or one insert
// batch, never both (see the package comment on homogeneous frames).
type request struct {
	id     uint64
	reads  []readOp
	insert []tuple.Tuple
}

// decodeRequest decodes and classifies a request payload for tuples of
// the given arity, enforcing frame homogeneity and batch bounds.
func decodeRequest(id uint64, payload []byte, arity, maxBatch int) (request, error) {
	req := request{id: id}
	r := &rbuf{b: payload}
	n := int(r.u16())
	for i := 0; i < n && r.err == nil; i++ {
		code := r.u8()
		switch code {
		case opContains, opLower, opUpper:
			req.reads = append(req.reads, readOp{code: code, arg: r.tuple(arity)})
		case opScan:
			var op readOp
			op.code = code
			flags := r.u8()
			if flags&scanLoPresent != 0 {
				op.lo = r.tuple(arity)
			}
			if flags&scanHiPresent != 0 {
				op.hi = r.tuple(arity)
			}
			op.loStrict = flags&scanLoStrict != 0
			op.limit = r.u32()
			req.reads = append(req.reads, op)
		case opLen, opStamp:
			req.reads = append(req.reads, readOp{code: code})
		case opInsert:
			if n != 1 {
				return req, fmt.Errorf("%w: insert mixed with other operations", errProtocol)
			}
			cnt := int(r.u32())
			if cnt > maxBatch {
				return req, fmt.Errorf("%w: insert batch %d exceeds server cap %d", errProtocol, cnt, maxBatch)
			}
			req.insert = make([]tuple.Tuple, 0, cnt)
			for j := 0; j < cnt && r.err == nil; j++ {
				req.insert = append(req.insert, r.tuple(arity))
			}
		default:
			return req, fmt.Errorf("%w: unknown opcode %d", errProtocol, code)
		}
	}
	if err := r.done(); err != nil {
		return req, err
	}
	return req, nil
}

// encodeErr renders a statusErr response payload.
func encodeErr(msg string) []byte {
	if len(msg) > 1<<15 {
		msg = msg[:1<<15]
	}
	w := &wbuf{}
	w.u8(statusErr)
	w.u16(uint16(len(msg)))
	w.b = append(w.b, msg...)
	return w.b
}
