package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"specbtree/internal/core"
	"specbtree/internal/tuple"
)

// waitUntil polls cond for up to two seconds.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func submitBatch(s *scheduler, tuples ...tuple.Tuple) (*writeBatch, error) {
	b := &writeBatch{tuples: tuples, done: make(chan writeResult, 1)}
	return b, s.submit(b)
}

// epochPending reports whether an epoch has closed the read gate —
// i.e. run() has collected its batches and is waiting or executing.
func epochPending(s *scheduler) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epochPending
}

func TestSchedulerEpochExecutesBatch(t *testing.T) {
	tree := core.New(2)
	s := newScheduler(tree, 4)
	defer s.drain()
	b, err := submitBatch(s, tuple.Tuple{1, 2}, tuple.Tuple{3, 4}, tuple.Tuple{1, 2})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	res := <-b.done
	if res.fresh != 2 {
		t.Fatalf("fresh = %d, want 2", res.fresh)
	}
	if tree.Len() != 2 {
		t.Fatalf("tree.Len = %d, want 2", tree.Len())
	}
	if s.epochs.Load() == 0 {
		t.Fatal("no epoch recorded")
	}
}

// TestSchedulerBackpressure deterministically fills the write queue: an
// active reader blocks the epoch executor, so admitted batches pile up
// until submit hits the bound and fails fast with errBusy.
func TestSchedulerBackpressure(t *testing.T) {
	tree := core.New(2)
	s := newScheduler(tree, 1)
	if ok, _ := s.beginRead(); !ok {
		t.Fatal("beginRead refused")
	}

	// First batch: picked up by run(), which then blocks in runEpoch
	// waiting for the reader to leave.
	b1, err := submitBatch(s, tuple.Tuple{1, 1})
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	waitUntil(t, "epoch to start waiting", func() bool { return s.queueDepth() == 0 })

	// Second batch sits in the queue (cap 1); the third must be refused.
	b2, err := submitBatch(s, tuple.Tuple{2, 2})
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if _, err := submitBatch(s, tuple.Tuple{3, 3}); !errors.Is(err, errBusy) {
		t.Fatalf("submit 3 = %v, want errBusy", err)
	}
	if s.retries.Load() != 1 {
		t.Fatalf("retries = %d, want 1", s.retries.Load())
	}

	s.endRead()
	<-b1.done
	<-b2.done
	s.drain()
	if got := s.violations.Load(); got != 0 {
		t.Fatalf("violations = %d, want 0", got)
	}
	if tree.Len() != 2 {
		t.Fatalf("tree.Len = %d, want 2", tree.Len())
	}
}

// TestSchedulerReaderBlocksDuringEpoch checks rule 3 (no writer
// starvation): a reader arriving while an epoch is pending queues behind
// it instead of extending the read phase.
func TestSchedulerReaderBlocksDuringEpoch(t *testing.T) {
	tree := core.New(2)
	s := newScheduler(tree, 4)
	defer s.drain()
	if ok, _ := s.beginRead(); !ok {
		t.Fatal("beginRead refused")
	}
	b, err := submitBatch(s, tuple.Tuple{1, 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitUntil(t, "epoch pending", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.epochPending
	})

	admitted := make(chan struct{})
	go func() {
		s.beginRead()
		close(admitted)
		s.endRead()
	}()
	select {
	case <-admitted:
		t.Fatal("late reader admitted while an epoch was pending")
	case <-time.After(20 * time.Millisecond):
	}

	s.endRead() // epoch runs, gate reopens, late reader proceeds
	<-b.done
	<-admitted
}

func TestSchedulerDrain(t *testing.T) {
	tree := core.New(2)
	s := newScheduler(tree, 8)
	var batches []*writeBatch
	for i := 0; i < 5; i++ {
		b, err := submitBatch(s, tuple.Tuple{uint64(i), uint64(i)})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		batches = append(batches, b)
	}
	s.drain()
	s.drain() // idempotent
	for i, b := range batches {
		select {
		case <-b.done:
		default:
			t.Fatalf("batch %d not executed by drain", i)
		}
	}
	if tree.Len() != 5 {
		t.Fatalf("tree.Len = %d, want 5", tree.Len())
	}
	if _, err := submitBatch(s, tuple.Tuple{9, 9}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("submit after drain = %v, want ErrShutdown", err)
	}
}

// TestSchedulerPhaseInvariant hammers the scheduler with concurrent
// readers and writers and asserts the counted invariant: no read ever
// overlapped a write epoch.
func TestSchedulerPhaseInvariant(t *testing.T) {
	tree := core.New(2)
	s := newScheduler(tree, 4)
	const (
		writers       = 4
		readers       = 4
		perWriter     = 50
		batchSize     = 8
		readsPerIter  = 4
		readerRetries = 400
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				var ts []tuple.Tuple
				for j := 0; j < batchSize; j++ {
					v := uint64(w*perWriter*batchSize + i*batchSize + j)
					ts = append(ts, tuple.Tuple{v, v})
				}
				for {
					b := &writeBatch{tuples: ts, done: make(chan writeResult, 1)}
					if err := s.submit(b); err == nil {
						<-b.done
						break
					}
					time.Sleep(time.Millisecond) // errBusy: back off and retry
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hints := core.NewHints()
			for i := 0; i < readerRetries; i++ {
				if ok, _ := s.beginRead(); !ok {
					return
				}
				for j := 0; j < readsPerIter; j++ {
					v := uint64(i * j)
					tree.ContainsHint(tuple.Tuple{v, v}, hints)
				}
				s.endRead()
			}
		}()
	}
	wg.Wait()
	s.drain()

	if got := s.violations.Load(); got != 0 {
		t.Fatalf("phase violations = %d, want 0", got)
	}
	want := writers * perWriter * batchSize
	if tree.Len() != want {
		t.Fatalf("tree.Len = %d, want %d", tree.Len(), want)
	}
	if s.epochs.Load() == 0 {
		t.Fatal("no epochs recorded")
	}
}
