package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"specbtree/internal/core"
	"specbtree/internal/tuple"
)

// waitUntil polls cond for up to two seconds.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func submitBatch(s *scheduler, tuples ...tuple.Tuple) (*writeBatch, error) {
	b := &writeBatch{tuples: tuples, done: make(chan writeResult, 1)}
	return b, s.submit(b)
}

// epochPending reports whether an epoch has closed the read gate —
// i.e. run() has collected its batches and is waiting or executing.
func epochPending(s *scheduler) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epochPending
}

func TestSchedulerEpochExecutesBatch(t *testing.T) {
	tree := core.New(2)
	s := newScheduler(tree, 4, true, nil)
	defer s.drain()
	b, err := submitBatch(s, tuple.Tuple{1, 2}, tuple.Tuple{3, 4}, tuple.Tuple{1, 2})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	res := <-b.done
	if res.fresh != 2 {
		t.Fatalf("fresh = %d, want 2", res.fresh)
	}
	if tree.Len() != 2 {
		t.Fatalf("tree.Len = %d, want 2", tree.Len())
	}
	if s.epochs.Load() == 0 {
		t.Fatal("no epoch recorded")
	}
}

// TestSchedulerBackpressure deterministically fills the write queue: an
// active reader blocks the epoch executor, so admitted batches pile up
// until submit hits the bound and fails fast with errBusy.
func TestSchedulerBackpressure(t *testing.T) {
	tree := core.New(2)
	s := newScheduler(tree, 1, true, nil)
	if mode, _, _ := s.beginRead(); mode != readLive {
		t.Fatalf("beginRead mode = %v, want readLive", mode)
	}

	// First batch: picked up by run(), which then blocks in runEpoch
	// waiting for the reader to leave.
	b1, err := submitBatch(s, tuple.Tuple{1, 1})
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	waitUntil(t, "epoch to start waiting", func() bool { return s.queueDepth() == 0 })

	// Second batch sits in the queue (cap 1); the third must be refused.
	b2, err := submitBatch(s, tuple.Tuple{2, 2})
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if _, err := submitBatch(s, tuple.Tuple{3, 3}); !errors.Is(err, errBusy) {
		t.Fatalf("submit 3 = %v, want errBusy", err)
	}
	if s.retries.Load() != 1 {
		t.Fatalf("retries = %d, want 1", s.retries.Load())
	}

	s.endRead()
	<-b1.done
	<-b2.done
	s.drain()
	if got := s.violations.Load(); got != 0 {
		t.Fatalf("violations = %d, want 0", got)
	}
	if tree.Len() != 2 {
		t.Fatalf("tree.Len = %d, want 2", tree.Len())
	}
}

// TestSchedulerReaderBlocksDuringEpoch checks rule 3 (no writer
// starvation) in the gate-blocking configuration (snapshots disabled): a
// reader arriving while an epoch is pending queues behind it instead of
// extending the read phase. With snapshots enabled the same arrival is
// routed to the last-epoch snapshot — see TestSchedulerSnapshotBypass.
func TestSchedulerReaderBlocksDuringEpoch(t *testing.T) {
	tree := core.New(2)
	s := newScheduler(tree, 4, false, nil)
	defer s.drain()
	if mode, _, _ := s.beginRead(); mode != readLive {
		t.Fatalf("beginRead mode = %v, want readLive", mode)
	}
	b, err := submitBatch(s, tuple.Tuple{1, 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitUntil(t, "epoch pending", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.epochPending
	})

	admitted := make(chan struct{})
	go func() {
		s.beginRead()
		close(admitted)
		s.endRead()
	}()
	select {
	case <-admitted:
		t.Fatal("late reader admitted while an epoch was pending")
	case <-time.After(20 * time.Millisecond):
	}

	s.endRead() // epoch runs, gate reopens, late reader proceeds
	<-b.done
	<-admitted
}

func TestSchedulerDrain(t *testing.T) {
	tree := core.New(2)
	s := newScheduler(tree, 8, true, nil)
	var batches []*writeBatch
	for i := 0; i < 5; i++ {
		b, err := submitBatch(s, tuple.Tuple{uint64(i), uint64(i)})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		batches = append(batches, b)
	}
	s.drain()
	s.drain() // idempotent
	for i, b := range batches {
		select {
		case <-b.done:
		default:
			t.Fatalf("batch %d not executed by drain", i)
		}
	}
	if tree.Len() != 5 {
		t.Fatalf("tree.Len = %d, want 5", tree.Len())
	}
	if _, err := submitBatch(s, tuple.Tuple{9, 9}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("submit after drain = %v, want ErrShutdown", err)
	}
}

// TestSchedulerPhaseInvariant hammers the scheduler with concurrent
// readers and writers and asserts the counted invariant: no read ever
// overlapped a write epoch.
func TestSchedulerPhaseInvariant(t *testing.T) {
	tree := core.New(2)
	s := newScheduler(tree, 4, true, nil)
	const (
		writers       = 4
		readers       = 4
		perWriter     = 50
		batchSize     = 8
		readsPerIter  = 4
		readerRetries = 400
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				var ts []tuple.Tuple
				for j := 0; j < batchSize; j++ {
					v := uint64(w*perWriter*batchSize + i*batchSize + j)
					ts = append(ts, tuple.Tuple{v, v})
				}
				for {
					b := &writeBatch{tuples: ts, done: make(chan writeResult, 1)}
					if err := s.submit(b); err == nil {
						<-b.done
						break
					}
					time.Sleep(time.Millisecond) // errBusy: back off and retry
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hints := core.NewHints()
			for i := 0; i < readerRetries; i++ {
				mode, snap, _ := s.beginRead()
				switch mode {
				case readRefused:
					return
				case readSnapshot:
					// Gate closed: read the frozen snapshot, no endRead.
					for j := 0; j < readsPerIter; j++ {
						v := uint64(i * j)
						snap.Contains(tuple.Tuple{v, v})
					}
				default:
					for j := 0; j < readsPerIter; j++ {
						v := uint64(i * j)
						tree.ContainsHint(tuple.Tuple{v, v}, hints)
					}
					s.endRead()
				}
			}
		}()
	}
	wg.Wait()
	s.drain()

	if got := s.violations.Load(); got != 0 {
		t.Fatalf("phase violations = %d, want 0", got)
	}
	want := writers * perWriter * batchSize
	if tree.Len() != want {
		t.Fatalf("tree.Len = %d, want %d", tree.Len(), want)
	}
	if s.epochs.Load() == 0 {
		t.Fatal("no epochs recorded")
	}
}

// TestSchedulerSnapshotBypass checks the MVCC-lite read gate: a reader
// arriving while an epoch is pending is handed the last-epoch snapshot
// without blocking, and that snapshot holds exactly the pre-epoch tuple
// set — nothing from the in-flight epoch.
func TestSchedulerSnapshotBypass(t *testing.T) {
	tree := core.New(2)
	s := newScheduler(tree, 4, true, nil)
	defer s.drain()

	// Epoch 1: establish pre-epoch contents; its boundary refreshes the
	// bypass snapshot.
	b, err := submitBatch(s, tuple.Tuple{1, 1}, tuple.Tuple{2, 2})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-b.done
	waitUntil(t, "gate to reopen", func() bool { return !epochPending(s) })

	// Hold a live reader so the next epoch stays pending at the gate.
	if mode, _, _ := s.beginRead(); mode != readLive {
		t.Fatalf("beginRead mode = %v, want readLive", mode)
	}
	if _, err := submitBatch(s, tuple.Tuple{3, 3}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitUntil(t, "epoch pending", func() bool { return epochPending(s) })

	mode, snap, blocked := s.beginRead()
	if mode != readSnapshot || snap == nil {
		t.Fatalf("gated beginRead = (%v, %v), want readSnapshot with snapshot", mode, snap)
	}
	if blocked {
		t.Fatal("snapshot bypass reported a gate wait")
	}
	if !snap.Contains(tuple.Tuple{1, 1}) || !snap.Contains(tuple.Tuple{2, 2}) {
		t.Fatal("snapshot lost pre-epoch tuples")
	}
	if snap.Contains(tuple.Tuple{3, 3}) {
		t.Fatal("snapshot sees the in-flight epoch's tuple")
	}
	if got := snap.Len(); got != 2 {
		t.Fatalf("snapshot Len = %d, want 2", got)
	}
	if got := s.snapshotReads.Load(); got != 1 {
		t.Fatalf("snapshotReads = %d, want 1", got)
	}

	s.endRead() // release the held live reader; the epoch completes
}

// TestSchedulerDrainFencesSnapshot checks the shutdown-ordering audit:
// once drain began, a gated reader is refused rather than handed a
// snapshot — the handout is fenced behind draining under the same mutex
// drain takes, so no reader can receive a view of a logically closed
// tree.
func TestSchedulerDrainFencesSnapshot(t *testing.T) {
	tree := core.New(2)
	s := newScheduler(tree, 4, true, nil)

	if mode, _, _ := s.beginRead(); mode != readLive {
		t.Fatalf("beginRead mode = %v, want readLive", mode)
	}
	if _, err := submitBatch(s, tuple.Tuple{1, 1}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitUntil(t, "epoch pending", func() bool { return epochPending(s) })

	drained := make(chan struct{})
	go func() {
		s.drain()
		close(drained)
	}()
	waitUntil(t, "drain to begin", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.draining
	})

	if mode, snap, _ := s.beginRead(); mode != readRefused || snap != nil {
		t.Fatalf("gated beginRead during drain = (%v, %v), want readRefused", mode, snap)
	}

	s.endRead() // the final epoch runs, drain completes
	<-drained
}

// TestSchedulerCloseRacesSnapshotReads races drain against a crowd of
// readers taking both admission paths while writers keep epochs coming —
// the -race leg of the shutdown-ordering audit. A reader observing
// refusal stops; the rest are stopped once drain returns (drain does not
// end read service — it only fences the write side), and the counted
// invariant must hold throughout.
func TestSchedulerCloseRacesSnapshotReads(t *testing.T) {
	tree := core.New(2)
	s := newScheduler(tree, 4, true, nil)

	var wg sync.WaitGroup
	stopWriters := make(chan struct{})
	stopReaders := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopWriters:
					return
				default:
				}
				v := uint64(w*1_000_000 + i)
				b := &writeBatch{tuples: []tuple.Tuple{{v, v}}, done: make(chan writeResult, 1)}
				if err := s.submit(b); err != nil {
					if errors.Is(err, ErrShutdown) {
						return
					}
					time.Sleep(50 * time.Microsecond)
					continue
				}
				<-b.done
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			hints := core.NewHints()
			for i := 0; ; i++ {
				select {
				case <-stopReaders:
					return
				default:
				}
				mode, snap, _ := s.beginRead()
				switch mode {
				case readRefused:
					return
				case readSnapshot:
					snap.Contains(tuple.Tuple{uint64(i), uint64(i)})
					snap.LowerBound(tuple.Tuple{uint64(i), 0})
				default:
					tree.ContainsHint(tuple.Tuple{uint64(i), uint64(i)}, hints)
					s.endRead()
				}
			}
		}(r)
	}

	time.Sleep(20 * time.Millisecond)
	close(stopWriters) // writers stop feeding
	s.drain()          // races the readers' snapshot handouts
	close(stopReaders)
	wg.Wait()

	if got := s.violations.Load(); got != 0 {
		t.Fatalf("phase violations = %d, want 0", got)
	}
}
