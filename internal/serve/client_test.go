package serve

import (
	"errors"
	"net"
	"testing"
	"time"

	"specbtree/internal/tuple"
)

func netDial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 2*time.Second)
}

// fakeServer accepts connections and hands each, with its 0-based
// accept index, to handle. It lets the client tests script connection
// resets precisely.
type fakeServer struct {
	lis net.Listener
}

func startFake(t *testing.T, handle func(i int, nc net.Conn)) *fakeServer {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for i := 0; ; i++ {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			go handle(i, nc)
		}
	}()
	return &fakeServer{lis: lis}
}

func (f *fakeServer) addr() string { return f.lis.Addr().String() }

// fakeHello answers the handshake with arity 2.
func fakeHello(t *testing.T, nc net.Conn) bool {
	t.Helper()
	_, kind, id, _, _, err := readFrame(nc)
	if err != nil || kind != kindHello {
		return false
	}
	// Answer as a version 1 server (no version byte): the client must
	// negotiate down and keep working.
	w := &wbuf{}
	w.u8(statusOK)
	w.u16(2)
	return writeFrame(nc, protocolV1, kindHello, id, 0, w.b) == nil
}

// TestClientRetriesIdempotentReadOnce scripts a reset: the first
// connection dies after reading the request, the second answers it. The
// read succeeds transparently over one reconnect.
func TestClientRetriesIdempotentReadOnce(t *testing.T) {
	fake := startFake(t, func(i int, nc net.Conn) {
		defer nc.Close()
		if !fakeHello(t, nc) {
			return
		}
		_, _, id, _, _, err := readFrame(nc)
		if err != nil {
			return
		}
		if i == 0 {
			return // reset before answering
		}
		w := &wbuf{}
		w.u8(statusOK)
		w.bool(true)
		writeFrame(nc, protocolV1, kindResponse, id, 0, w.b)
		readFrame(nc) // hold the conn open until the client closes
	})
	c, err := Dial(fake.addr(), ClientOptions{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	got, err := c.Contains(tuple.Tuple{1, 2})
	if err != nil || !got {
		t.Fatalf("Contains over reset = %v, %v; want true, nil", got, err)
	}
	if c.Reconnects() != 1 {
		t.Fatalf("reconnects = %d, want 1", c.Reconnects())
	}
}

// TestClientReadGivesUpAfterSecondReset: both connections reset, so the
// single retry is spent and the error surfaces.
func TestClientReadGivesUpAfterSecondReset(t *testing.T) {
	fake := startFake(t, func(i int, nc net.Conn) {
		defer nc.Close()
		if !fakeHello(t, nc) {
			return
		}
		readFrame(nc) // swallow the request, then reset
	})
	c, err := Dial(fake.addr(), ClientOptions{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Contains(tuple.Tuple{1, 2}); err == nil {
		t.Fatal("Contains succeeded over two resets")
	}
	if c.Reconnects() != 1 {
		t.Fatalf("reconnects = %d, want 1 (exactly one retry)", c.Reconnects())
	}
}

// TestClientNeverRetriesInsert: an insert whose connection resets
// surfaces the error without any transparent retry — its fate is the
// caller's decision.
func TestClientNeverRetriesInsert(t *testing.T) {
	requests := make(chan struct{}, 8)
	fake := startFake(t, func(i int, nc net.Conn) {
		defer nc.Close()
		if !fakeHello(t, nc) {
			return
		}
		if _, _, _, _, _, err := readFrame(nc); err == nil {
			requests <- struct{}{}
		}
	})
	c, err := Dial(fake.addr(), ClientOptions{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Insert([]tuple.Tuple{{1, 2}}); err == nil {
		t.Fatal("Insert succeeded over a reset")
	}
	if c.Reconnects() != 0 {
		t.Fatalf("reconnects = %d, want 0 (insert must not retry)", c.Reconnects())
	}
	if len(requests) != 1 {
		t.Fatalf("server saw %d insert requests, want exactly 1", len(requests))
	}
}

// TestClientTimeout: a server that never answers trips the per-request
// timeout, and the stale response id is discarded on arrival.
func TestClientTimeout(t *testing.T) {
	release := make(chan struct{})
	fake := startFake(t, func(i int, nc net.Conn) {
		defer nc.Close()
		if !fakeHello(t, nc) {
			return
		}
		_, _, id, _, _, err := readFrame(nc)
		if err != nil {
			return
		}
		<-release // answer only after the client timed out
		w := &wbuf{}
		w.u8(statusOK)
		w.bool(true)
		writeFrame(nc, protocolV1, kindResponse, id, 0, w.b)
		readFrame(nc)
	})
	c, err := Dial(fake.addr(), ClientOptions{Timeout: 80 * time.Millisecond})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Contains(tuple.Tuple{1, 2}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Contains = %v, want ErrTimeout", err)
	}
	close(release)
	// The late response must not poison the next call on the same
	// connection: it is dropped by id lookup, and the next request gets a
	// fresh id.
	time.Sleep(20 * time.Millisecond)
}

// TestClientReconnectsAfterServerRestart: the client re-establishes its
// connection on the next call after the server came back.
func TestClientReconnectsAfterServerRestart(t *testing.T) {
	s := startServer(t, Options{Arity: 2})
	c := dialClient(t, s, ClientOptions{Timeout: 2 * time.Second})
	if _, err := c.Insert([]tuple.Tuple{{1, 2}}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	addr := s.Addr()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Restart on the same port. The old conn is dead; the idempotent read
	// redials transparently.
	s2, err := Start(addr, Options{Arity: 2})
	if err != nil {
		t.Skipf("port %s not immediately reusable: %v", addr, err)
	}
	defer s2.Close()
	got, err := c.Contains(tuple.Tuple{1, 2})
	if err != nil {
		t.Fatalf("Contains after restart: %v", err)
	}
	if got {
		t.Fatal("fresh server claims to contain the old tuple")
	}
	if c.Reconnects() == 0 {
		t.Fatal("no reconnect recorded")
	}
}

func TestClientClosedErrors(t *testing.T) {
	s := startServer(t, Options{Arity: 2})
	c := dialClient(t, s, ClientOptions{})
	c.Close()
	if _, err := c.Contains(tuple.Tuple{1, 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Contains after Close = %v, want ErrClosed", err)
	}
	if _, err := c.Insert([]tuple.Tuple{{1, 2}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert after Close = %v, want ErrClosed", err)
	}
}

// scanResponder answers the handshake and then every request frame with
// the same scripted scan response body.
func scanResponder(t *testing.T, body func(w *wbuf)) *fakeServer {
	t.Helper()
	return startFake(t, func(i int, nc net.Conn) {
		defer nc.Close()
		if !fakeHello(t, nc) {
			return
		}
		for {
			_, _, id, _, _, err := readFrame(nc)
			if err != nil {
				return
			}
			w := &wbuf{}
			body(w)
			if writeFrame(nc, protocolV1, kindResponse, id, 0, w.b) != nil {
				return
			}
		}
	})
}

// TestClientScanAllEmptyTruncatedPage: a malicious or buggy server
// claiming "truncated" on a page with zero tuples gives ScanAll nothing
// to resume after. The pre-fix client indexed page[len(page)-1] and
// panicked; it must surface a protocol error instead (and must not spin
// re-issuing the same scan forever).
func TestClientScanAllEmptyTruncatedPage(t *testing.T) {
	fake := scanResponder(t, func(w *wbuf) {
		w.u8(statusOK)
		w.u32(0)     // zero tuples...
		w.bool(true) // ...yet truncated
	})
	c, err := Dial(fake.addr(), ClientOptions{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	err = c.ScanAll(nil, nil, func(tuple.Tuple) bool { return true })
	if !errors.Is(err, errProtocol) {
		t.Fatalf("ScanAll on empty truncated page = %v, want errProtocol", err)
	}
}

// TestClientScanHostileCount: a scan response claiming 2^29 tuples in a
// near-empty payload must be rejected by the bounds check. The pre-fix
// product form (off + 8*arity*count) wraps negative on 32-bit ints for
// this count (8*2*2^29 = 2^33), slipping past the check and sending the
// decode loop chasing half a billion phantom tuples; the division form
// rejects it on every platform.
func TestClientScanHostileCount(t *testing.T) {
	fake := scanResponder(t, func(w *wbuf) {
		w.u8(statusOK)
		w.u32(1 << 29)
		w.bool(false)
	})
	c, err := Dial(fake.addr(), ClientOptions{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, _, err := c.Scan(nil, nil, 0); !errors.Is(err, errProtocol) {
		t.Fatalf("Scan with hostile count = %v, want errProtocol", err)
	}
}

// TestClientScanNegativeLimit: limit travels as u32, so -1 would reach
// the server as 4294967295. The client must refuse it locally — the
// server never sees a request.
func TestClientScanNegativeLimit(t *testing.T) {
	requests := make(chan struct{}, 8)
	fake := startFake(t, func(i int, nc net.Conn) {
		defer nc.Close()
		if !fakeHello(t, nc) {
			return
		}
		if _, _, _, _, _, err := readFrame(nc); err == nil {
			requests <- struct{}{}
		}
	})
	c, err := Dial(fake.addr(), ClientOptions{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, _, err := c.Scan(nil, nil, -1); err == nil {
		t.Fatal("Scan(limit=-1) succeeded, want local rejection")
	}
	if len(requests) != 0 {
		t.Fatalf("server saw %d requests for a rejected scan, want 0", len(requests))
	}
}

// TestClientRejectsZeroArityHello: a hello advertising arity 0 must fail
// the dial. The pre-fix client accepted it, poisoning every later scan
// bounds computation (division by 8*arity) and tuple decode.
func TestClientRejectsZeroArityHello(t *testing.T) {
	fake := startFake(t, func(i int, nc net.Conn) {
		defer nc.Close()
		_, kind, id, _, _, err := readFrame(nc)
		if err != nil || kind != kindHello {
			return
		}
		w := &wbuf{}
		w.u8(statusOK)
		w.u16(0)
		writeFrame(nc, protocolV1, kindHello, id, 0, w.b)
		readFrame(nc)
	})
	if _, err := Dial(fake.addr(), ClientOptions{Timeout: 2 * time.Second}); !errors.Is(err, errProtocol) {
		t.Fatalf("Dial against arity-0 hello = %v, want errProtocol", err)
	}
}
