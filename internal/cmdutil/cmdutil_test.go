package cmdutil

import "testing"

// TestCleanupOrderAndRelease drives the registry directly: the signal
// path itself exits the process and is exercised by the serve-smoke
// make target instead.
func TestCleanupOrderAndRelease(t *testing.T) {
	var order []int
	r1 := OnSignal(func() { order = append(order, 1) })
	r2 := OnSignal(func() { order = append(order, 2) })
	r3 := OnSignal(func() { order = append(order, 3) })
	r2()
	r2() // idempotent
	runCleanups()
	if len(order) != 2 || order[0] != 3 || order[1] != 1 {
		t.Fatalf("cleanup order = %v, want [3 1]", order)
	}
	runCleanups() // registry empty: no-op
	if len(order) != 2 {
		t.Fatalf("cleanups ran twice: %v", order)
	}
	r1() // releasing after the run is a no-op
	r3()
}

func TestStartDebugEmptyAddr(t *testing.T) {
	stop, err := StartDebug("", nil)
	if err != nil {
		t.Fatalf("StartDebug(\"\") = %v", err)
	}
	stop()
	stop() // idempotent
}
