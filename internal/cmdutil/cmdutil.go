// Package cmdutil holds lifecycle helpers shared by the command-line
// executables: a signal-driven cleanup registry and the standard debug
// server setup, so every cmd tears its obshttp endpoint (and whatever
// else it registers) down the same way on SIGINT/SIGTERM instead of
// dying with the listener still attached.
package cmdutil

import (
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"specbtree/internal/core"
	"specbtree/internal/obs"
	"specbtree/internal/obshttp"
)

// SetTraceSample validates and installs a -trace-sample flag value: n
// must be 0 (tracing disabled, the default) or a power of two, matching
// the obs sampling-gate contract (DESIGN.md §13). The returned error is
// ready to print; the caller decides the exit status.
func SetTraceSample(n uint64) error {
	if n&(n-1) != 0 {
		return fmt.Errorf("-trace-sample %d: sample rate must be 0 or a power of two", n)
	}
	obs.SetTraceSampleRate(n)
	return nil
}

var (
	mu        sync.Mutex
	installed bool
	nextID    uint64
	cleanups  []cleanup // registration order; run in reverse
)

type cleanup struct {
	id uint64
	fn func()
}

// OnSignal registers fn to run when the process receives its first
// SIGINT or SIGTERM. All registered functions run in reverse
// registration order (most recent first, like defers), then the process
// exits with the conventional 128+signal status. Long-running commands
// register their graceful teardown here instead of installing a second
// handler. The returned release unregisters fn for the normal-return
// path; it never calls fn and is safe to call more than once.
func OnSignal(fn func()) (release func()) {
	mu.Lock()
	defer mu.Unlock()
	nextID++
	id := nextID
	cleanups = append(cleanups, cleanup{id: id, fn: fn})
	if !installed {
		installed = true
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		go func() {
			sig := <-ch
			signal.Stop(ch) // a second signal kills the process the default way
			runCleanups()
			code := 128 + 15
			if sig == os.Interrupt {
				code = 128 + 2
			}
			os.Exit(code)
		}()
	}
	return func() {
		mu.Lock()
		defer mu.Unlock()
		for i, c := range cleanups {
			if c.id == id {
				cleanups = append(cleanups[:i], cleanups[i+1:]...)
				return
			}
		}
	}
}

// runCleanups pops and runs every registered cleanup, most recent first.
// Popping under the lock (rather than iterating a snapshot) keeps a
// cleanup that itself calls release from double-running.
func runCleanups() {
	for {
		mu.Lock()
		if len(cleanups) == 0 {
			mu.Unlock()
			return
		}
		c := cleanups[len(cleanups)-1]
		cleanups = cleanups[:len(cleanups)-1]
		mu.Unlock()
		c.fn()
	}
}

// StartDebug starts the obshttp debug server when addr is non-empty
// (no-op stop otherwise), announces it on stderr, and registers its
// shutdown with OnSignal. The returned stop closes the server and
// releases the registration; call it on the normal-return path (it is
// idempotent).
func StartDebug(addr string, shapes func() map[string]core.Shape) (stop func(), err error) {
	if addr == "" {
		return func() {}, nil
	}
	srv, err := obshttp.Start(addr, obshttp.Options{Shapes: shapes})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "debug server listening on http://%s/\n", srv.Addr)
	release := OnSignal(func() { srv.Close() })
	var once sync.Once
	return func() {
		once.Do(func() {
			release()
			srv.Close()
		})
	}, nil
}
