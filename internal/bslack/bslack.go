// Package bslack is a B-slack-style tree (Brown, SWAT 2014) — one of the
// paper's §4.4 comparison structures. B-slack trees constrain the total
// slack (free slots) across the children of every inner node, yielding
// better worst-case space usage; they reach that constraint by
// redistributing elements between siblings before resorting to splits.
//
// The original publication "does not specify the locking scheme" (paper
// §4.4), so — like the paper's own benchmark — this implementation picks a
// straightforward one: a single readers-writer lock. The measured effect
// matches the paper's Table 3: decent sequential insert throughput, very
// limited parallel scaling.
//
// Keys are single uint64 values, which is all Table 3 exercises.
package bslack

import (
	"sync"
)

// DefaultCapacity is the default slot count per node.
const DefaultCapacity = 16

// Tree is a B-slack-style set of uint64 keys, safe for concurrent use via
// a coarse readers-writer lock.
type Tree struct {
	mu       sync.RWMutex
	capacity int
	root     *node
	size     int
}

type node struct {
	keys     []uint64
	children []*node // nil for leaves
}

// New creates an empty tree. An optional capacity overrides the default.
func New(capacity ...int) *Tree {
	c := DefaultCapacity
	if len(capacity) > 0 && capacity[0] != 0 {
		c = capacity[0]
	}
	if c < 4 {
		panic("bslack: capacity must be at least 4")
	}
	return &Tree{capacity: c}
}

// Len returns the number of keys.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Contains reports whether k is in the set.
func (t *Tree) Contains(k uint64) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for n != nil {
		idx, found := search(n.keys, k)
		if found {
			return true
		}
		if n.children == nil {
			return false
		}
		n = n.children[idx]
	}
	return false
}

func search(keys []uint64, k uint64) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		switch {
		case keys[mid] < k:
			lo = mid + 1
		case keys[mid] > k:
			hi = mid
		default:
			return mid, true
		}
	}
	return lo, false
}

// Insert adds k, returning false if already present.
func (t *Tree) Insert(k uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root == nil {
		t.root = &node{keys: []uint64{k}}
		t.size = 1
		return true
	}
	if len(t.root.keys) >= t.capacity {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.splitChild(t.root, 0)
	}
	if t.insert(t.root, k) {
		t.size++
		return true
	}
	return false
}

// insert adds k below n, which is guaranteed non-full on entry.
func (t *Tree) insert(n *node, k uint64) bool {
	for {
		idx, found := search(n.keys, k)
		if found {
			return false
		}
		if n.children == nil {
			n.keys = append(n.keys, 0)
			copy(n.keys[idx+1:], n.keys[idx:])
			n.keys[idx] = k
			return true
		}
		child := n.children[idx]
		if len(child.keys) >= t.capacity {
			// The slack discipline: try to shift load into a sibling
			// before splitting (this is what keeps overall fill high).
			if t.shareWithSibling(n, idx) {
				// Re-position: the separators moved.
				continue
			}
			t.splitChild(n, idx)
			switch {
			case n.keys[idx] == k:
				return false
			case n.keys[idx] < k:
				child = n.children[idx+1]
			default:
				child = n.children[idx]
			}
		}
		n = child
	}
}

// shareWithSibling tries to rotate one element from the full child at idx
// into an adjacent sibling with slack, through the parent separator.
func (t *Tree) shareWithSibling(p *node, idx int) bool {
	child := p.children[idx]
	// Rotate right.
	if idx+1 < len(p.children) {
		right := p.children[idx+1]
		if len(right.keys) < t.capacity-1 {
			sep := p.keys[idx]
			last := child.keys[len(child.keys)-1]
			child.keys = child.keys[:len(child.keys)-1]
			p.keys[idx] = last
			right.keys = append(right.keys, 0)
			copy(right.keys[1:], right.keys)
			right.keys[0] = sep
			if child.children != nil {
				moved := child.children[len(child.children)-1]
				child.children = child.children[:len(child.children)-1]
				right.children = append(right.children, nil)
				copy(right.children[1:], right.children)
				right.children[0] = moved
			}
			return true
		}
	}
	// Rotate left.
	if idx > 0 {
		left := p.children[idx-1]
		if len(left.keys) < t.capacity-1 {
			sep := p.keys[idx-1]
			first := child.keys[0]
			copy(child.keys, child.keys[1:])
			child.keys = child.keys[:len(child.keys)-1]
			p.keys[idx-1] = first
			left.keys = append(left.keys, sep)
			if child.children != nil {
				moved := child.children[0]
				copy(child.children, child.children[1:])
				child.children = child.children[:len(child.children)-1]
				left.children = append(left.children, moved)
			}
			return true
		}
	}
	return false
}

func (t *Tree) splitChild(p *node, idx int) {
	child := p.children[idx]
	mid := len(child.keys) / 2
	median := child.keys[mid]
	right := &node{keys: append([]uint64(nil), child.keys[mid+1:]...)}
	if child.children != nil {
		right.children = append([]*node(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.keys = child.keys[:mid]

	p.keys = append(p.keys, 0)
	copy(p.keys[idx+1:], p.keys[idx:])
	p.keys[idx] = median
	p.children = append(p.children, nil)
	copy(p.children[idx+2:], p.children[idx+1:])
	p.children[idx+1] = right
}

// Scan iterates over all keys in ascending order.
func (t *Tree) Scan(yield func(uint64) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.scan(t.root, yield)
}

func (t *Tree) scan(n *node, yield func(uint64) bool) bool {
	if n == nil {
		return true
	}
	for i, k := range n.keys {
		if n.children != nil && !t.scan(n.children[i], yield) {
			return false
		}
		if !yield(k) {
			return false
		}
	}
	if n.children != nil {
		return t.scan(n.children[len(n.keys)], yield)
	}
	return true
}

// Check validates ordering and structural invariants for tests.
func (t *Tree) Check() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.root == nil {
		return nil
	}
	count := 0
	var prev uint64
	first := true
	ok := true
	t.scan(t.root, func(k uint64) bool {
		if !first && k <= prev {
			ok = false
			return false
		}
		first = false
		prev = k
		count++
		return true
	})
	if !ok {
		return errOutOfOrder
	}
	if count != t.size {
		return errSizeMismatch
	}
	return nil
}

type checkError string

func (e checkError) Error() string { return string(e) }

const (
	errOutOfOrder   = checkError("bslack: keys out of order")
	errSizeMismatch = checkError("bslack: size mismatch")
)
