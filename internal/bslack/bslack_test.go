package bslack

import (
	"math/rand"
	"sync"
	"testing"
)

func TestInsertContainsModel(t *testing.T) {
	tr := New()
	model := map[uint64]bool{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(5000))
		if tr.Insert(k) == model[k] {
			t.Fatalf("insert disagreement on %d", k)
		}
		model[k] = true
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", tr.Len(), len(model))
	}
	for k := range model {
		if !tr.Contains(k) {
			t.Fatalf("%d missing", k)
		}
	}
	if tr.Contains(999999) {
		t.Error("phantom key")
	}
}

func TestOrderedInsertHighFill(t *testing.T) {
	// The slack discipline (share before split) should keep ordered
	// insertion correct across deep trees.
	tr := New(8)
	const n = 20000
	for i := 0; i < n; i++ {
		if !tr.Insert(uint64(i)) {
			t.Fatalf("duplicate at %d", i)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestDescendingInsert(t *testing.T) {
	tr := New(5)
	for i := 10000; i > 0; i-- {
		tr.Insert(uint64(i))
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 10000 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestScanSortedEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 500; i++ {
		tr.Insert(uint64(i * 3))
	}
	count := 0
	prev := int64(-1)
	tr.Scan(func(k uint64) bool {
		if int64(k) <= prev {
			t.Fatalf("scan out of order at %d", k)
		}
		prev = int64(k)
		count++
		return count < 100
	})
	if count != 100 {
		t.Fatalf("visited %d", count)
	}
}

func TestConcurrentInserts(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	workers, perW := 8, 3000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				tr.Insert(uint64(w*perW + i))
				tr.Insert(uint64(i)) // contended duplicates
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != workers*perW {
		t.Fatalf("Len = %d, want %d", tr.Len(), workers*perW)
	}
}

func TestConcurrentReadersWriters(t *testing.T) {
	tr := New()
	for i := 0; i < 5000; i++ {
		tr.Insert(uint64(i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				tr.Insert(uint64(5000 + i*2 + w))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i += 3 {
				if !tr.Contains(uint64(i)) {
					t.Errorf("stable key %d vanished", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestTinyCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("capacity 2 accepted")
		}
	}()
	New(2)
}
