package palm

import (
	"math/rand"
	"sync"
	"testing"
)

func TestInsertContainsModel(t *testing.T) {
	tr := New(16)
	model := map[uint64]bool{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(6000))
		if tr.Insert(k) == model[k] {
			t.Fatalf("insert %d disagreement", k)
		}
		model[k] = true
	}
	tr.Flush()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", tr.Len(), len(model))
	}
	for k := range model {
		if !tr.Contains(k) {
			t.Fatalf("%d missing", k)
		}
	}
}

func TestOrderedInsertLargeBatches(t *testing.T) {
	tr := New(512)
	const n = 30000
	for i := 0; i < n; i++ {
		if !tr.Insert(uint64(i)) {
			t.Fatalf("duplicate at %d", i)
		}
	}
	tr.Flush()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestDescendingInsert(t *testing.T) {
	tr := New(64)
	for i := 20000; i > 0; i-- {
		tr.Insert(uint64(i))
	}
	tr.Flush()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 20000 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestBatchWiderThanLeaf(t *testing.T) {
	// A single batch inserting far more keys than one leaf holds forces
	// multi-way splits of one leaf (the splitResult chaining path).
	tr := New(4096)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Insert(uint64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	tr.Flush()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 4000 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestConcurrentOverlappingInserts(t *testing.T) {
	tr := New(32)
	workers, n := 8, 2000
	fresh := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if tr.Insert(uint64(i)) {
					fresh[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	tr.Flush()
	total := 0
	for _, f := range fresh {
		total += f
	}
	if total != n {
		t.Fatalf("exactly-once violated: %d fresh of %d", total, n)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestFlushEmpty(t *testing.T) {
	tr := New()
	tr.Flush() // no-op
	if tr.Len() != 0 {
		t.Error("empty tree has elements")
	}
	if tr.Contains(1) {
		t.Error("phantom in empty tree")
	}
}

func TestScanSorted(t *testing.T) {
	tr := New(8)
	rng := rand.New(rand.NewSource(5))
	n := 0
	for i := 0; i < 5000; i++ {
		if tr.Insert(uint64(rng.Intn(100000))) {
			n++
		}
	}
	tr.Flush()
	prev := int64(-1)
	count := 0
	tr.Scan(func(k uint64) bool {
		if int64(k) <= prev {
			t.Fatalf("out of order at %d", k)
		}
		prev = int64(k)
		count++
		return true
	})
	if count != n {
		t.Fatalf("scan visited %d of %d", count, n)
	}
}
