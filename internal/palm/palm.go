// Package palm is a PALM-style batch-synchronous B+ tree (Sewall et al.,
// VLDB 2011) — one of the paper's §4.4 comparison structures. PALM avoids
// locks entirely by processing modifications in batches: client threads
// enqueue operations; the tree sorts each batch, partitions it by target
// leaf, applies the per-leaf groups independently, and propagates splits
// level by level in a bulk-synchronous sweep.
//
// Simplifications relative to the original (documented in DESIGN.md): no
// AVX key comparisons (Go has no intrinsics; like the original, keys are
// single integers), and the internal worker pool uses goroutines with
// channel hand-off rather than pinned threads. The architectural property
// the paper measures survives: single-key insert throughput is dominated
// by the enqueue/sort/batch latency, which is why PALM trails purpose-
// built concurrent trees by orders of magnitude on this workload.
package palm

import (
	"sort"
	"sync"
)

// fanout is the B+ tree node width.
const fanout = 16

// DefaultBatch is the default batch size.
const DefaultBatch = 256

// Tree is a batch-processing B+ tree set of uint64 keys. All methods are
// safe for concurrent use; Insert blocks until the batch containing the
// key has been applied.
type Tree struct {
	mu      sync.Mutex
	pending []op
	batch   int

	treeMu sync.RWMutex // guards the structure between batch applications
	root   *node
	size   int
}

type op struct {
	key  uint64
	done chan bool // receives "was fresh"
}

type node struct {
	leaf     bool
	keys     []uint64
	children []*node
	next     *node
}

// New creates an empty tree. An optional batch size overrides the default.
func New(batch ...int) *Tree {
	b := DefaultBatch
	if len(batch) > 0 && batch[0] != 0 {
		b = batch[0]
	}
	return &Tree{batch: b, root: &node{leaf: true}}
}

// Len returns the number of keys.
func (t *Tree) Len() int {
	t.treeMu.RLock()
	defer t.treeMu.RUnlock()
	return t.size
}

// Contains reports whether k is in the set. Pending (un-flushed) inserts
// are not visible, mirroring PALM's batch-synchronous semantics.
func (t *Tree) Contains(k uint64) bool {
	t.treeMu.RLock()
	defer t.treeMu.RUnlock()
	n := t.root
	for !n.leaf {
		idx := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > k })
		n = n.children[idx]
	}
	idx := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= k })
	return idx < len(n.keys) && n.keys[idx] == k
}

// Insert adds k, returning false if it was already present. The operation
// is queued and the calling goroutine blocks until its batch is applied —
// the client-visible cost of PALM's internal queueing.
func (t *Tree) Insert(k uint64) bool {
	o := op{key: k, done: make(chan bool, 1)}
	t.mu.Lock()
	t.pending = append(t.pending, o)
	var toApply []op
	if len(t.pending) >= t.batch {
		toApply = t.pending
		t.pending = nil
	}
	t.mu.Unlock()
	if toApply != nil {
		t.apply(toApply)
	} else {
		// Ensure progress even if no one else fills the batch: apply
		// whatever is queued once the queue stalls. A real PALM deployment
		// has a dedicated coordinator; here the inserting goroutine doubles
		// as one when it observes an undersized queue, so both standalone
		// use and saturated benchmarks terminate.
		t.mu.Lock()
		toApply = t.pending
		t.pending = nil
		t.mu.Unlock()
		if toApply != nil {
			t.apply(toApply)
		}
	}
	return <-o.done
}

// Flush applies all pending operations.
func (t *Tree) Flush() {
	t.mu.Lock()
	toApply := t.pending
	t.pending = nil
	t.mu.Unlock()
	if len(toApply) > 0 {
		t.apply(toApply)
	}
}

// apply runs one PALM batch: sort, deduplicate, partition by leaf, modify
// leaves, and propagate splits level by level.
func (t *Tree) apply(batch []op) {
	t.treeMu.Lock()
	defer t.treeMu.Unlock()

	// Stage 1: sort the batch by key.
	sort.Slice(batch, func(i, j int) bool { return batch[i].key < batch[j].key })

	// Stage 2: walk the sorted batch, grouping by target leaf and
	// deduplicating within the batch (later duplicates report stale).
	type group struct {
		leaf *node
		keys []uint64
	}
	var groups []group
	var curLeaf *node
	for i := 0; i < len(batch); i++ {
		o := batch[i]
		if i > 0 && batch[i-1].key == o.key {
			o.done <- false
			continue
		}
		leaf := t.findLeaf(o.key)
		if idx := sort.Search(len(leaf.keys), func(j int) bool { return leaf.keys[j] >= o.key }); idx < len(leaf.keys) && leaf.keys[idx] == o.key {
			o.done <- false
			continue
		}
		if leaf != curLeaf {
			groups = append(groups, group{leaf: leaf})
			curLeaf = leaf
		}
		g := &groups[len(groups)-1]
		g.keys = append(g.keys, o.key)
		t.size++
		o.done <- true
	}

	// Stage 3: apply per-leaf groups (independent; parallel for large
	// batches, which is PALM's intra-batch parallelism).
	splits := make([][]splitResult, len(groups))
	run := func(gi int) {
		splits[gi] = applyToLeaf(groups[gi].leaf, groups[gi].keys)
	}
	if len(groups) >= 8 {
		var wg sync.WaitGroup
		for gi := range groups {
			wg.Add(1)
			go func(gi int) {
				defer wg.Done()
				run(gi)
			}(gi)
		}
		wg.Wait()
	} else {
		for gi := range groups {
			run(gi)
		}
	}

	// Stage 4: propagate splits bottom-up, level by level. Each new
	// sibling is linked to the right of the previously linked one.
	for gi := range groups {
		left := groups[gi].leaf
		for _, s := range splits[gi] {
			t.insertIntoParent(left, s.sep, s.right)
			left = s.right
		}
	}
}

type splitResult struct {
	sep   uint64
	right *node
}

// applyToLeaf merges keys (sorted, fresh) into the leaf and splits it into
// as many pieces as needed, returning the new siblings right of it.
func applyToLeaf(leaf *node, keys []uint64) []splitResult {
	merged := make([]uint64, 0, len(leaf.keys)+len(keys))
	i, j := 0, 0
	for i < len(leaf.keys) || j < len(keys) {
		switch {
		case i == len(leaf.keys):
			merged = append(merged, keys[j])
			j++
		case j == len(keys):
			merged = append(merged, leaf.keys[i])
			i++
		case leaf.keys[i] < keys[j]:
			merged = append(merged, leaf.keys[i])
			i++
		default:
			merged = append(merged, keys[j])
			j++
		}
	}
	if len(merged) <= fanout {
		leaf.keys = merged
		return nil
	}
	// Split into chunks of at most fanout, biased to stay half full.
	half := (fanout + 1) / 2
	nChunks := (len(merged) + fanout - 1) / fanout
	per := (len(merged) + nChunks - 1) / nChunks
	if per < half {
		per = half
	}
	leaf.keys = append(leaf.keys[:0], merged[:per]...)
	var out []splitResult
	prev := leaf
	for off := per; off < len(merged); off += per {
		end := off + per
		if end > len(merged) {
			end = len(merged)
		}
		right := &node{leaf: true, keys: append([]uint64(nil), merged[off:end]...)}
		right.next = prev.next
		prev.next = right
		out = append(out, splitResult{sep: merged[off], right: right})
		prev = right
	}
	return out
}

// findLeaf returns the leaf covering k. Caller holds treeMu.
func (t *Tree) findLeaf(k uint64) *node {
	n := t.root
	for !n.leaf {
		idx := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > k })
		n = n.children[idx]
	}
	return n
}

// insertIntoParent links (sep, right) next to the child on the path from
// the root, splitting full ancestors on the way down (pre-emptive).
func (t *Tree) insertIntoParent(child *node, sep uint64, right *node) {
	if t.root == child {
		t.root = &node{keys: []uint64{sep}, children: []*node{child, right}}
		return
	}
	if len(t.root.keys) >= fanout {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.splitInner(t.root, 0)
	}
	n := t.root
	for {
		idx := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > sep })
		c := n.children[idx]
		if c == child {
			n.keys = append(n.keys, 0)
			copy(n.keys[idx+1:], n.keys[idx:])
			n.keys[idx] = sep
			n.children = append(n.children, nil)
			copy(n.children[idx+2:], n.children[idx+1:])
			n.children[idx+1] = right
			return
		}
		if !c.leaf && len(c.keys) >= fanout {
			t.splitInner(n, idx)
			continue
		}
		n = c
	}
}

// splitInner splits the full inner child at idx of p.
func (t *Tree) splitInner(p *node, idx int) {
	c := p.children[idx]
	mid := len(c.keys) / 2
	sep := c.keys[mid]
	right := &node{
		keys:     append([]uint64(nil), c.keys[mid+1:]...),
		children: append([]*node(nil), c.children[mid+1:]...),
	}
	c.keys = c.keys[:mid]
	c.children = c.children[:mid+1]
	p.keys = append(p.keys, 0)
	copy(p.keys[idx+1:], p.keys[idx:])
	p.keys[idx] = sep
	p.children = append(p.children, nil)
	copy(p.children[idx+2:], p.children[idx+1:])
	p.children[idx+1] = right
}

// Scan iterates over all keys in ascending order (quiescent use).
func (t *Tree) Scan(yield func(uint64) bool) {
	t.treeMu.RLock()
	defer t.treeMu.RUnlock()
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	for n != nil {
		for _, k := range n.keys {
			if !yield(k) {
				return
			}
		}
		n = n.next
	}
}

// Check validates ordering and size via a full scan (quiescent use).
func (t *Tree) Check() error {
	var prev uint64
	first := true
	count := 0
	bad := false
	t.Scan(func(k uint64) bool {
		if !first && k <= prev {
			bad = true
			return false
		}
		first = false
		prev = k
		count++
		return true
	})
	if bad {
		return errOutOfOrder
	}
	if count != t.Len() {
		return errSizeMismatch
	}
	return nil
}

type checkError string

func (e checkError) Error() string { return string(e) }

const (
	errOutOfOrder   = checkError("palm: keys out of order")
	errSizeMismatch = checkError("palm: size mismatch")
)
