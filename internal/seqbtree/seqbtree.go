// Package seqbtree is the sequential version of the specialised B-tree —
// the paper's "seq btree" baseline (Table 1). It runs the same algorithms
// as package core (classic B-tree, linear in-node search, operation hints,
// bottom-up splits via parent pointers) but stores plain words with no
// atomics and no locks, quantifying the price of synchronisation
// ("the necessary wrapping of key elements into atomic types is causing a
// performance deficit for our optimistic B-tree compared to its
// sequential equivalent", paper §4.1).
package seqbtree

import (
	"fmt"

	"specbtree/internal/obs"
	"specbtree/internal/tuple"
)

// DefaultCapacity matches the concurrent tree's node sizing.
const DefaultCapacity = 16

// Tree is a single-threaded B-tree set of fixed-arity tuples.
type Tree struct {
	arity    int
	capacity int
	root     *node
	size     int
}

type node struct {
	inner  bool
	parent *node
	pos    int
	count  int
	keys   []uint64 // capacity*arity words
	child  []*node  // capacity+1 for inner nodes
}

// Hints caches the last leaf accessed per operation class, mirroring
// core.Hints for the sequential tree. A hinted operation always counts
// exactly one of Hits/Misses (a cold hint is a miss), and mirrors the
// outcome into the global hint.* counters of package obs.
type Hints struct {
	insertLeaf *node
	findLeaf   *node
	lowerLeaf  *node
	upperLeaf  *node

	Hits, Misses uint64

	obs obs.Batch
}

// NewHints returns an empty hint set.
func NewHints() *Hints { return &Hints{} }

// FlushObs settles the hint set's batched observability counters into the
// global registry (package obs); call it at measurement boundaries, as
// with core.Hints.FlushObs.
func (h *Hints) FlushObs() {
	h.obs.Flush()
}

// hinted records a hint outcome in both the local tallies and the global
// registry batch, and closes the operation's batch window.
func (h *Hints) hinted(hit bool, hitC, missC obs.Counter) {
	if hit {
		h.Hits++
		h.obs.Counts().Inc(hitC)
	} else {
		h.Misses++
		h.obs.Counts().Inc(missC)
	}
	h.obs.EndOp()
}

// New creates an empty tree for tuples with the given number of columns.
func New(arity int, capacity ...int) *Tree {
	c := DefaultCapacity
	if len(capacity) > 0 && capacity[0] != 0 {
		c = capacity[0]
	}
	if arity <= 0 || c < 3 {
		panic(fmt.Sprintf("seqbtree: invalid arity %d or capacity %d", arity, c))
	}
	return &Tree{arity: arity, capacity: c}
}

// Arity returns the tuple width.
func (t *Tree) Arity() int { return t.arity }

// Len returns the number of elements.
func (t *Tree) Len() int { return t.size }

// Empty reports whether the set has no elements.
func (t *Tree) Empty() bool { return t.size == 0 }

func (t *Tree) newNode(inner bool) *node {
	n := &node{inner: inner, keys: make([]uint64, t.capacity*t.arity)}
	if inner {
		n.child = make([]*node, t.capacity+1)
	}
	return n
}

func (n *node) row(i, arity int) tuple.Tuple {
	return tuple.Tuple(n.keys[i*arity : (i+1)*arity])
}

// search returns the index of the first element >= v and equality, using
// a linear scan with the 3-way comparator (nodes are cache-line sized).
func (n *node) search(arity int, v tuple.Tuple) (int, bool) {
	for i := 0; i < n.count; i++ {
		c := tuple.CompareWords(n.keys[i*arity:(i+1)*arity], v)
		if c >= 0 {
			return i, c == 0
		}
	}
	return n.count, false
}

func (n *node) searchBound(arity int, v tuple.Tuple, strict bool) int {
	want := 0
	if strict {
		want = 1
	}
	for i := 0; i < n.count; i++ {
		if tuple.CompareWords(n.keys[i*arity:(i+1)*arity], v) >= want {
			return i
		}
	}
	return n.count
}

func (t *Tree) checkArity(v tuple.Tuple) {
	if len(v) != t.arity {
		panic(fmt.Sprintf("seqbtree: arity-%d tuple in arity-%d tree", len(v), t.arity))
	}
}

// covers reports whether leaf's own key range contains v.
func (t *Tree) covers(leaf *node, v tuple.Tuple) bool {
	if leaf == nil || leaf.inner || leaf.count == 0 {
		return false
	}
	return tuple.Compare(leaf.row(0, t.arity), v) <= 0 &&
		tuple.Compare(leaf.row(leaf.count-1, t.arity), v) >= 0
}

// Insert adds v, returning false if already present.
func (t *Tree) Insert(v tuple.Tuple) bool { return t.InsertHint(v, nil) }

// InsertHint adds v consulting the hint: if the remembered leaf covers v
// the descent is skipped and, on a split, the tree is walked bottom-up
// through parent pointers — the structure that motivates the paper's
// bottom-up lock acquisition.
func (t *Tree) InsertHint(v tuple.Tuple, h *Hints) bool {
	t.checkArity(v)
	var hintLeaf *node
	if h != nil {
		if t.covers(h.insertLeaf, v) {
			hintLeaf = h.insertLeaf
		}
		h.hinted(hintLeaf != nil, obs.HintInsertHits, obs.HintInsertMisses)
	}
	return t.insert(v, h, hintLeaf)
}

// insert performs the descent and insertion proper. hintLeaf, when
// non-nil, is a leaf already known to cover v (hint accounting happened
// in InsertHint); the post-split re-descent recurses here so one logical
// insertion never counts two hint outcomes.
func (t *Tree) insert(v tuple.Tuple, h *Hints, hintLeaf *node) bool {
	if t.root == nil {
		t.root = t.newNode(false)
	}

	leaf := hintLeaf
	if leaf == nil {
		n := t.root
		for {
			idx, found := n.search(t.arity, v)
			if found {
				return false
			}
			if !n.inner {
				leaf = n
				break
			}
			n = n.child[idx]
		}
	}

	idx, found := leaf.search(t.arity, v)
	if found {
		return false
	}
	if leaf.count == t.capacity {
		t.split(leaf)
		// Re-descend from the (possibly new) parent of the split halves;
		// restarting from the root keeps the code identical to Alg. 1.
		if h != nil {
			h.insertLeaf = nil
		}
		return t.insert(v, h, nil)
	}
	t.insertAt(leaf, idx, v, nil)
	t.size++
	if h != nil {
		h.insertLeaf = leaf
	}
	return true
}

func (t *Tree) insertAt(n *node, idx int, v tuple.Tuple, right *node) {
	arity := t.arity
	copy(n.keys[(idx+1)*arity:(n.count+1)*arity], n.keys[idx*arity:n.count*arity])
	copy(n.keys[idx*arity:(idx+1)*arity], v)
	if n.inner {
		copy(n.child[idx+2:n.count+2], n.child[idx+1:n.count+1])
		for i := idx + 2; i <= n.count+1; i++ {
			n.child[i].pos = i
		}
		n.child[idx+1] = right
		right.parent = n
		right.pos = idx + 1
	}
	n.count++
}

// split splits the full node n, propagating upward as needed.
func (t *Tree) split(n *node) {
	parent := n.parent
	if parent != nil && parent.count == t.capacity {
		t.split(parent)
		parent = n.parent
	}

	arity := t.arity
	mid := n.count / 2
	median := append(tuple.Tuple(nil), n.row(mid, arity)...)

	sibling := t.newNode(n.inner)
	moved := n.count - mid - 1
	copy(sibling.keys, n.keys[(mid+1)*arity:n.count*arity])
	if n.inner {
		for i := 0; i <= moved; i++ {
			c := n.child[mid+1+i]
			sibling.child[i] = c
			c.parent = sibling
			c.pos = i
		}
	}
	sibling.count = moved
	n.count = mid

	if parent == nil {
		root := t.newNode(true)
		copy(root.keys[:arity], median)
		root.child[0] = n
		root.child[1] = sibling
		root.count = 1
		n.parent, n.pos = root, 0
		sibling.parent, sibling.pos = root, 1
		t.root = root
		return
	}
	t.insertAt(parent, n.pos, median, sibling)
}

// Contains reports whether v is in the set.
func (t *Tree) Contains(v tuple.Tuple) bool { return t.ContainsHint(v, nil) }

// ContainsHint is Contains with an operation hint.
func (t *Tree) ContainsHint(v tuple.Tuple, h *Hints) bool {
	t.checkArity(v)
	if h != nil {
		if t.covers(h.findLeaf, v) {
			h.hinted(true, obs.HintFindHits, obs.HintFindMisses)
			_, found := h.findLeaf.search(t.arity, v)
			return found
		}
		h.hinted(false, obs.HintFindHits, obs.HintFindMisses)
	}
	n := t.root
	for n != nil {
		idx, found := n.search(t.arity, v)
		if found {
			if h != nil && !n.inner {
				h.findLeaf = n
			}
			return true
		}
		if !n.inner {
			if h != nil {
				h.findLeaf = n
			}
			return false
		}
		n = n.child[idx]
	}
	return false
}

// Cursor is an ordered position in the tree; the zero value is the end.
type Cursor struct {
	t   *Tree
	n   *node
	idx int
}

// Valid reports whether the cursor designates an element.
func (c *Cursor) Valid() bool { return c.n != nil }

// Tuple returns the current element (aliasing the tree's storage; callers
// must not modify it and must copy it to retain it past Next).
func (c *Cursor) Tuple() tuple.Tuple { return c.n.row(c.idx, c.t.arity) }

// Next advances to the in-order successor.
func (c *Cursor) Next() {
	n := c.n
	if n.inner {
		x := n.child[c.idx+1]
		for x.inner {
			x = x.child[0]
		}
		c.n, c.idx = x, 0
		return
	}
	if c.idx+1 < n.count {
		c.idx++
		return
	}
	for {
		p := n.parent
		if p == nil {
			c.n, c.idx = nil, 0
			return
		}
		if n.pos < p.count {
			c.n, c.idx = p, n.pos
			return
		}
		n = p
	}
}

// Begin returns a cursor at the smallest element.
func (t *Tree) Begin() Cursor {
	n := t.root
	if n == nil || t.size == 0 {
		return Cursor{}
	}
	for n.inner {
		n = n.child[0]
	}
	return Cursor{t: t, n: n, idx: 0}
}

// LowerBound returns a cursor at the first element >= v.
func (t *Tree) LowerBound(v tuple.Tuple) Cursor { return t.bound(v, false, nil) }

// UpperBound returns a cursor at the first element > v.
func (t *Tree) UpperBound(v tuple.Tuple) Cursor { return t.bound(v, true, nil) }

// LowerBoundHint is LowerBound with an operation hint.
func (t *Tree) LowerBoundHint(v tuple.Tuple, h *Hints) Cursor { return t.bound(v, false, h) }

// UpperBoundHint is UpperBound with an operation hint.
func (t *Tree) UpperBoundHint(v tuple.Tuple, h *Hints) Cursor { return t.bound(v, true, h) }

func (t *Tree) bound(v tuple.Tuple, strict bool, h *Hints) Cursor {
	t.checkArity(v)
	if h != nil {
		leaf := h.lowerLeaf
		hitC, missC := obs.HintLowerHits, obs.HintLowerMisses
		if strict {
			leaf = h.upperLeaf
			hitC, missC = obs.HintUpperHits, obs.HintUpperMisses
		}
		if t.covers(leaf, v) {
			lastCmp := tuple.Compare(leaf.row(leaf.count-1, t.arity), v)
			if !(strict && lastCmp == 0) {
				if idx := leaf.searchBound(t.arity, v, strict); idx < leaf.count {
					h.hinted(true, hitC, missC)
					return Cursor{t: t, n: leaf, idx: idx}
				}
			}
		}
		h.hinted(false, hitC, missC)
	}
	n := t.root
	candidate := Cursor{}
	for n != nil {
		idx := n.searchBound(t.arity, v, strict)
		if !n.inner {
			var res Cursor
			if idx < n.count {
				res = Cursor{t: t, n: n, idx: idx}
			} else {
				res = candidate
			}
			if h != nil {
				if strict {
					h.upperLeaf = n
				} else {
					h.lowerLeaf = n
				}
			}
			return res
		}
		if idx < n.count {
			candidate = Cursor{t: t, n: n, idx: idx}
		}
		n = n.child[idx]
	}
	return candidate
}

// Scan iterates over all elements in ascending order.
func (t *Tree) Scan(yield func(tuple.Tuple) bool) {
	for c := t.Begin(); c.Valid(); c.Next() {
		if !yield(c.Tuple()) {
			return
		}
	}
}

// ScanRange iterates over elements x with from <= x < to (to == nil means
// to the end).
func (t *Tree) ScanRange(from, to tuple.Tuple, yield func(tuple.Tuple) bool) {
	for c := t.LowerBound(from); c.Valid(); c.Next() {
		x := c.Tuple()
		if to != nil && tuple.Compare(x, to) >= 0 {
			return
		}
		if !yield(x) {
			return
		}
	}
}

// InsertAll merges src into t, reusing one insert hint across the ordered
// stream (the specialised merge of the paper's implementation notes).
func (t *Tree) InsertAll(src *Tree) {
	h := NewHints()
	src.Scan(func(tp tuple.Tuple) bool {
		t.InsertHint(tp, h)
		return true
	})
}

// Check validates structural invariants for tests.
func (t *Tree) Check() error {
	if t.root == nil {
		return nil
	}
	depth := -1
	total, err := t.checkNode(t.root, nil, nil, 0, &depth)
	if err != nil {
		return err
	}
	if total != t.size {
		return fmt.Errorf("seqbtree: size %d but %d elements found", t.size, total)
	}
	return nil
}

func (t *Tree) checkNode(n *node, lo, hi tuple.Tuple, level int, leafDepth *int) (int, error) {
	if n.count > t.capacity || (n.count == 0 && level > 0) {
		return 0, fmt.Errorf("seqbtree: bad count %d at level %d", n.count, level)
	}
	total := n.count
	for i := 0; i < n.count; i++ {
		key := n.row(i, t.arity)
		if i > 0 && tuple.Compare(n.row(i-1, t.arity), key) >= 0 {
			return 0, fmt.Errorf("seqbtree: out of order at level %d", level)
		}
		if lo != nil && tuple.Compare(key, lo) <= 0 {
			return 0, fmt.Errorf("seqbtree: key below separator")
		}
		if hi != nil && tuple.Compare(key, hi) >= 0 {
			return 0, fmt.Errorf("seqbtree: key above separator")
		}
	}
	if !n.inner {
		if *leafDepth == -1 {
			*leafDepth = level
		} else if *leafDepth != level {
			return 0, fmt.Errorf("seqbtree: uneven leaf depth")
		}
		return total, nil
	}
	for i := 0; i <= n.count; i++ {
		c := n.child[i]
		if c == nil {
			return 0, fmt.Errorf("seqbtree: nil child")
		}
		if c.parent != n || c.pos != i {
			return 0, fmt.Errorf("seqbtree: bad parent/pos at level %d child %d", level, i)
		}
		var clo, chi tuple.Tuple
		clo, chi = lo, hi
		if i > 0 {
			clo = n.row(i-1, t.arity)
		}
		if i < n.count {
			chi = n.row(i, t.arity)
		}
		sub, err := t.checkNode(c, clo, chi, level+1, leafDepth)
		if err != nil {
			return 0, err
		}
		total += sub
	}
	return total, nil
}
