package seqbtree

import (
	"math/rand"
	"sort"
	"testing"

	"specbtree/internal/tuple"
)

func randTuples(n int, domain uint64, seed int64) []tuple.Tuple {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]tuple.Tuple, n)
	for i := range ts {
		ts[i] = tuple.Tuple{uint64(rng.Int63n(int64(domain))), uint64(rng.Int63n(int64(domain)))}
	}
	return ts
}

func TestInsertContainsModel(t *testing.T) {
	for _, capacity := range []int{3, 4, 16} {
		tr := New(2, capacity)
		model := map[[2]uint64]bool{}
		for _, tp := range randTuples(5000, 120, int64(capacity)) {
			k := [2]uint64{tp[0], tp[1]}
			if tr.Insert(tp) == model[k] {
				t.Fatalf("capacity %d: insert disagreement on %v", capacity, tp)
			}
			model[k] = true
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("capacity %d: %v", capacity, err)
		}
		if tr.Len() != len(model) {
			t.Fatalf("capacity %d: Len %d != %d", capacity, tr.Len(), len(model))
		}
		for k := range model {
			if !tr.Contains(tuple.Tuple{k[0], k[1]}) {
				t.Fatalf("capacity %d: %v missing", capacity, k)
			}
		}
	}
}

func TestHintedInsertEquivalence(t *testing.T) {
	// A hinted and an unhinted tree fed the same stream must agree.
	plain := New(2, 4)
	hinted := New(2, 4)
	h := NewHints()
	rng := rand.New(rand.NewSource(5))
	cur := uint64(100)
	for i := 0; i < 8000; i++ {
		if rng.Intn(8) == 0 {
			cur = uint64(rng.Intn(500))
		}
		tp := tuple.Tuple{cur, uint64(rng.Intn(50))}
		a := plain.Insert(tp)
		b := hinted.InsertHint(tp, h)
		if a != b {
			t.Fatalf("insert %v: plain=%v hinted=%v", tp, a, b)
		}
	}
	if err := hinted.Check(); err != nil {
		t.Fatal(err)
	}
	if plain.Len() != hinted.Len() {
		t.Fatalf("sizes diverge: %d vs %d", plain.Len(), hinted.Len())
	}
	if h.Hits == 0 {
		t.Error("clustered stream produced no hint hits")
	}
	// Element-wise agreement.
	pc, hc := plain.Begin(), hinted.Begin()
	for pc.Valid() && hc.Valid() {
		if !tuple.Equal(pc.Tuple(), hc.Tuple()) {
			t.Fatalf("content diverges: %v vs %v", pc.Tuple(), hc.Tuple())
		}
		pc.Next()
		hc.Next()
	}
	if pc.Valid() != hc.Valid() {
		t.Fatal("trees have different lengths in iteration")
	}
}

func TestHintedLookups(t *testing.T) {
	tr := New(2, 8)
	for i := 0; i < 3000; i++ {
		tr.Insert(tuple.Tuple{uint64(i / 30), uint64(i % 30)})
	}
	h := NewHints()
	for i := 0; i < 3000; i++ {
		tp := tuple.Tuple{uint64(i / 30), uint64(i % 30)}
		if !tr.ContainsHint(tp, h) {
			t.Fatalf("%v missing", tp)
		}
	}
	if h.Hits == 0 {
		t.Error("ordered lookups produced no hint hits")
	}
}

func TestBoundsMatchModel(t *testing.T) {
	tr := New(2, 5)
	ts := randTuples(3000, 70, 21)
	for _, tp := range ts {
		tr.Insert(tp)
	}
	var all []tuple.Tuple
	tr.Scan(func(tp tuple.Tuple) bool {
		all = append(all, tp.Clone())
		return true
	})
	if !sort.SliceIsSorted(all, func(i, j int) bool { return tuple.Less(all[i], all[j]) }) {
		t.Fatal("scan not sorted")
	}
	h := NewHints()
	for _, p := range randTuples(800, 72, 22) {
		wantL := sort.Search(len(all), func(i int) bool { return tuple.Compare(all[i], p) >= 0 })
		lb := tr.LowerBound(p)
		lbh := tr.LowerBoundHint(p, h)
		if wantL == len(all) {
			if lb.Valid() || lbh.Valid() {
				t.Fatalf("LowerBound(%v) should be end", p)
			}
		} else {
			if !lb.Valid() || !tuple.Equal(lb.Tuple(), all[wantL]) {
				t.Fatalf("LowerBound(%v) mismatch", p)
			}
			if !lbh.Valid() || !tuple.Equal(lbh.Tuple(), all[wantL]) {
				t.Fatalf("LowerBoundHint(%v) mismatch", p)
			}
		}
		wantU := sort.Search(len(all), func(i int) bool { return tuple.Compare(all[i], p) > 0 })
		ub := tr.UpperBoundHint(p, h)
		if wantU == len(all) {
			if ub.Valid() {
				t.Fatalf("UpperBound(%v) should be end", p)
			}
		} else if !ub.Valid() || !tuple.Equal(ub.Tuple(), all[wantU]) {
			t.Fatalf("UpperBound(%v) mismatch", p)
		}
	}
}

func TestScanRange(t *testing.T) {
	tr := New(2, 4)
	for x := uint64(0); x < 40; x++ {
		for y := uint64(0); y < 6; y++ {
			tr.Insert(tuple.Tuple{x, y})
		}
	}
	count := 0
	tr.ScanRange(tuple.Tuple{7, 0}, tuple.Tuple{8, 0}, func(tp tuple.Tuple) bool {
		if tp[0] != 7 {
			t.Fatalf("out-of-range %v", tp)
		}
		count++
		return true
	})
	if count != 6 {
		t.Fatalf("range yielded %d, want 6", count)
	}
}

func TestInsertAll(t *testing.T) {
	a, b := New(1, 4), New(1, 4)
	for i := 0; i < 800; i++ {
		a.Insert(tuple.Tuple{uint64(2 * i)})
		b.Insert(tuple.Tuple{uint64(3 * i)})
	}
	a.InsertAll(b)
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	model := map[uint64]bool{}
	for i := 0; i < 800; i++ {
		model[uint64(2*i)] = true
		model[uint64(3*i)] = true
	}
	if a.Len() != len(model) {
		t.Fatalf("Len = %d, want %d", a.Len(), len(model))
	}
}

func TestDescendingWithHints(t *testing.T) {
	tr := New(1, 3)
	h := NewHints()
	for i := 3000; i > 0; i-- {
		if !tr.InsertHint(tuple.Tuple{uint64(i)}, h) {
			t.Fatalf("duplicate at %d", i)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3000 {
		t.Fatalf("Len = %d", tr.Len())
	}
}
