// Package chashset is a concurrent hash set of tuples standing in for
// Intel TBB's concurrent_unordered_set — the paper's "TBB hashset"
// baseline. It shards the key space over many independently locked
// open-addressing tables selected by the high hash bits. This reproduces
// the baseline's role and characteristics: thread-safe O(1) inserts and
// lookups, random memory access patterns (poor cache behaviour relative to
// B-trees), no ordered range queries, and insert scalability bounded by
// shard-lock and memory-bandwidth contention.
package chashset

import (
	"fmt"
	"sync"

	"specbtree/internal/tuple"
)

// DefaultShards is the default shard count; a few shards per core keeps
// lock contention low without destroying locality entirely.
const DefaultShards = 64

// Set is a sharded concurrent hash set of fixed-arity tuples. All methods
// are safe for concurrent use.
type Set struct {
	arity  int
	shards []shard
	shift  uint // hash bits consumed for shard selection
}

type shard struct {
	mu   sync.Mutex
	rows []uint64
	used []bool
	size int
	mask uint64
	_    [24]byte // pad towards a cache line to limit false sharing
}

const initialSlots = 16

// New creates an empty set for tuples with the given number of columns.
// An optional shard count (power of two) can be supplied.
func New(arity int, shards ...int) *Set {
	ns := DefaultShards
	if len(shards) > 0 && shards[0] != 0 {
		ns = shards[0]
	}
	if arity <= 0 || ns <= 0 || ns&(ns-1) != 0 {
		panic(fmt.Sprintf("chashset: invalid arity %d or shard count %d", arity, ns))
	}
	s := &Set{arity: arity, shards: make([]shard, ns)}
	bits := 0
	for 1<<bits < ns {
		bits++
	}
	s.shift = 64 - uint(bits)
	for i := range s.shards {
		s.shards[i].rows = make([]uint64, initialSlots*arity)
		s.shards[i].used = make([]bool, initialSlots)
		s.shards[i].mask = initialSlots - 1
	}
	return s
}

// Arity returns the tuple width.
func (s *Set) Arity() int { return s.arity }

// Len returns the number of elements. It locks shard by shard; the result
// is a consistent total only when no writers are active (read phase).
func (s *Set) Len() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += sh.size
		sh.mu.Unlock()
	}
	return total
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool { return s.Len() == 0 }

func (s *Set) checkArity(v tuple.Tuple) {
	if len(v) != s.arity {
		panic(fmt.Sprintf("chashset: arity-%d tuple in arity-%d set", len(v), s.arity))
	}
}

func (s *Set) locate(v tuple.Tuple) (*shard, uint64) {
	h := tuple.Hash(v)
	return &s.shards[h>>s.shift], h
}

func (sh *shard) slotEquals(slot uint64, arity int, v tuple.Tuple) bool {
	base := slot * uint64(arity)
	for i := 0; i < arity; i++ {
		if sh.rows[base+uint64(i)] != v[i] {
			return false
		}
	}
	return true
}

// Contains reports whether v is in the set.
func (s *Set) Contains(v tuple.Tuple) bool {
	s.checkArity(v)
	sh, h := s.locate(v)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	slot := h & sh.mask
	for sh.used[slot] {
		if sh.slotEquals(slot, s.arity, v) {
			return true
		}
		slot = (slot + 1) & sh.mask
	}
	return false
}

// Insert adds v, returning false if already present.
func (s *Set) Insert(v tuple.Tuple) bool {
	s.checkArity(v)
	sh, h := s.locate(v)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if uint64(sh.size+1)*4 > uint64(len(sh.used))*3 {
		sh.grow(s.arity)
	}
	slot := h & sh.mask
	for sh.used[slot] {
		if sh.slotEquals(slot, s.arity, v) {
			return false
		}
		slot = (slot + 1) & sh.mask
	}
	base := slot * uint64(s.arity)
	copy(sh.rows[base:base+uint64(s.arity)], v)
	sh.used[slot] = true
	sh.size++
	return true
}

func (sh *shard) grow(arity int) {
	oldRows, oldUsed := sh.rows, sh.used
	slots := uint64(len(oldUsed)) * 2
	sh.rows = make([]uint64, slots*uint64(arity))
	sh.used = make([]bool, slots)
	sh.mask = slots - 1
	a := uint64(arity)
	for i, u := range oldUsed {
		if !u {
			continue
		}
		row := oldRows[uint64(i)*a : (uint64(i)+1)*a]
		slot := tuple.HashWords(row) & sh.mask
		for sh.used[slot] {
			slot = (slot + 1) & sh.mask
		}
		copy(sh.rows[slot*a:(slot+1)*a], row)
		sh.used[slot] = true
	}
}

// Scan iterates over all elements in unspecified order. Like TBB's
// unordered-set iteration, it is not synchronised against concurrent
// modification: it must only run while no writer is active (the read
// phase of the evaluation). Taking the shard locks here would deadlock
// nested scans over the same set, which the join loops of Datalog
// evaluation perform routinely.
func (s *Set) Scan(yield func(tuple.Tuple) bool) {
	a := uint64(s.arity)
	for i := range s.shards {
		sh := &s.shards[i]
		for j, u := range sh.used {
			if !u {
				continue
			}
			if !yield(tuple.Tuple(sh.rows[uint64(j)*a : (uint64(j)+1)*a])) {
				return
			}
		}
	}
}

// ScanRange iterates over elements x with from <= x < to via a filtered
// full scan (hash sets keep no order). Results are in storage order.
func (s *Set) ScanRange(from, to tuple.Tuple, yield func(tuple.Tuple) bool) {
	s.Scan(func(x tuple.Tuple) bool {
		if from != nil && tuple.Compare(x, from) < 0 {
			return true
		}
		if to != nil && tuple.Compare(x, to) >= 0 {
			return true
		}
		return yield(x)
	})
}
