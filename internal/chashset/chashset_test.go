package chashset

import (
	"math/rand"
	"sync"
	"testing"

	"specbtree/internal/tuple"
)

func TestSequentialModel(t *testing.T) {
	s := New(2)
	model := map[[2]uint64]bool{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 8000; i++ {
		tp := tuple.Tuple{uint64(rng.Intn(300)), uint64(rng.Intn(300))}
		k := [2]uint64{tp[0], tp[1]}
		if s.Insert(tp) == model[k] {
			t.Fatalf("insert disagreement on %v", tp)
		}
		model[k] = true
	}
	if s.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", s.Len(), len(model))
	}
	for k := range model {
		if !s.Contains(tuple.Tuple{k[0], k[1]}) {
			t.Fatalf("%v missing", k)
		}
	}
}

func TestConcurrentDisjointInserts(t *testing.T) {
	s := New(2)
	workers, perW := 8, 5000
	if testing.Short() {
		perW = 500
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w * perW)
			for i := 0; i < perW; i++ {
				if !s.Insert(tuple.Tuple{base + uint64(i), uint64(w)}) {
					t.Errorf("disjoint insert reported duplicate")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != workers*perW {
		t.Fatalf("Len = %d, want %d", s.Len(), workers*perW)
	}
}

func TestConcurrentOverlappingInserts(t *testing.T) {
	s := New(1)
	workers, n := 8, 3000
	if testing.Short() {
		n = 400
	}
	fresh := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if s.Insert(tuple.Tuple{uint64(i)}) {
					fresh[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, f := range fresh {
		total += f
	}
	if total != n {
		t.Fatalf("exactly-once violated: %d fresh of %d distinct", total, n)
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s := New(1)
	const stable = 3000
	for i := 0; i < stable; i++ {
		s.Insert(tuple.Tuple{uint64(i)})
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				s.Insert(tuple.Tuple{uint64(stable + i*3 + w)})
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 3; pass++ {
				for i := 0; i < stable; i += 7 {
					if !s.Contains(tuple.Tuple{uint64(i)}) {
						t.Errorf("stable element %d vanished", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestScanAndRange(t *testing.T) {
	s := New(2)
	for x := uint64(0); x < 100; x++ {
		s.Insert(tuple.Tuple{x, x + 1})
	}
	seen := 0
	s.Scan(func(tp tuple.Tuple) bool {
		if tp[1] != tp[0]+1 {
			t.Fatalf("corrupted tuple %v", tp)
		}
		seen++
		return true
	})
	if seen != 100 {
		t.Fatalf("scan saw %d", seen)
	}
	count := 0
	s.ScanRange(tuple.Tuple{50, 0}, tuple.Tuple{60, 0}, func(tuple.Tuple) bool {
		count++
		return true
	})
	if count != 10 {
		t.Fatalf("range yielded %d, want 10", count)
	}
}

func TestShardValidation(t *testing.T) {
	for _, bad := range []int{-1, 3, 48} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("shard count %d did not panic", bad)
				}
			}()
			New(1, bad)
		}()
	}
	// Power-of-two shard counts are accepted.
	for _, ok := range []int{1, 2, 8, 256} {
		s := New(1, ok)
		s.Insert(tuple.Tuple{42})
		if !s.Contains(tuple.Tuple{42}) {
			t.Errorf("shards=%d lost an element", ok)
		}
	}
}
