package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the span tracer: a sampled, fixed-capacity ring of
// evaluation spans linking one request's journey across every layer —
// client send, wire frame, scheduler phase wait, write epoch, engine
// round, rule evaluation, iterator scan. Counters say *that* tails
// exist; the tracer says *why* a particular request was slow, in the
// spirit of per-query executor instrumentation.
//
// The contract mirrors the flight recorder (flight.go): recording is
// zero-allocation, passes a power-of-two sampling gate at trace *start*
// (spans of a sampled trace are always recorded — a trace with holes in
// it cannot be attributed), and compiles out entirely under obsoff.
// Unlike contention sampling, tracing defaults to OFF (rate 0): the
// trace ID travels in wire frames and through evaluation plumbing, so
// an unsampled request must cost nothing beyond comparing one uint64
// against zero.

// TraceID identifies one end-to-end request or evaluation; every span
// of the same journey carries the same TraceID. Zero means "not
// traced" and makes every recording call a no-op.
type TraceID uint64

// SpanID identifies one span within the process; zero means "no span"
// (used for a root span's parent).
type SpanID uint64

// SpanSite identifies the instrumented code path a span was recorded
// on.
type SpanSite uint8

// The span-site registry. DESIGN.md §13 documents each site; site
// names, once published, are append-only like counter names.
const (
	// SpanClientRequest covers one serve.Client round trip
	// ("client.request"): from enqueueing the request frame to decoding
	// its response. arg0 is the request payload length, arg1 the attempt
	// number (1, or 2 after a reconnect retry).
	SpanClientRequest SpanSite = iota
	// SpanServeFrameRead covers one read-request frame on the server
	// ("serve.frame.read"): from decode to the response being queued.
	// arg0 is the number of read operations in the frame, arg1 the
	// response payload length.
	SpanServeFrameRead
	// SpanServeFrameInsert covers one insert frame on the server
	// ("serve.frame.insert"): from decode to the epoch acknowledging it.
	// arg0 is the batch's tuple count, arg1 the number applied fresh.
	SpanServeFrameInsert
	// SpanServePhaseWait is the time a read frame spent blocked on the
	// phase gate waiting for a write epoch to finish
	// ("serve.phase.wait"). Recorded only when the gate actually
	// blocked. arg0 and arg1 are zero.
	SpanServePhaseWait
	// SpanServeEpoch covers one write epoch ("serve.epoch"): drain
	// readers, apply queued batches, reopen the gate. arg0 is the number
	// of batches applied, arg1 the total tuples. The epoch adopts the
	// trace of the first traced batch it applies.
	SpanServeEpoch
	// SpanEngineRound covers one semi-naïve fixpoint round of a stratum
	// ("engine.round"). arg0 is the round number within the stratum,
	// arg1 the tuples promoted into the new delta.
	SpanEngineRound
	// SpanEngineRule covers one evaluation of one compiled rule version
	// ("engine.rule"). arg0 is the stratum index, arg1 the rule's
	// position in the program's rule list.
	SpanEngineRule
	// SpanIterScan covers one iterator scan opened by the streaming
	// evaluator ("iter.scan"): Seek to exhaustion. arg0 is rows pulled
	// from the cursor, arg1 rows that passed the residual actions.
	SpanIterScan
	// SpanIterScanPush is an iterator scan whose bounds were tightened
	// by compile-time pushdown ("iter.scan.push"); args as SpanIterScan.
	SpanIterScanPush

	// NumSpanSites is the number of registered sites; valid SpanSite
	// values are [0, NumSpanSites).
	NumSpanSites
)

// spanSiteNames maps every SpanSite to its stable published name.
var spanSiteNames = [NumSpanSites]string{
	SpanClientRequest:    "client.request",
	SpanServeFrameRead:   "serve.frame.read",
	SpanServeFrameInsert: "serve.frame.insert",
	SpanServePhaseWait:   "serve.phase.wait",
	SpanServeEpoch:       "serve.epoch",
	SpanEngineRound:      "engine.round",
	SpanEngineRule:       "engine.rule",
	SpanIterScan:         "iter.scan",
	SpanIterScanPush:     "iter.scan.push",
}

// Name returns the site's stable published name, used in trace dumps
// and documented in DESIGN.md §13.
func (s SpanSite) Name() string { return spanSiteNames[s] }

// SpanSiteNames lists all span-site names in registry order.
func SpanSiteNames() []string {
	out := make([]string, NumSpanSites)
	for s := SpanSite(0); s < NumSpanSites; s++ {
		out[s] = spanSiteNames[s]
	}
	return out
}

// Span is one recorded span. The JSON field names are part of the
// tracing contract documented in DESIGN.md §13.
type Span struct {
	// Trace is the trace this span belongs to.
	Trace TraceID `json:"trace"`
	// Span is this span's process-unique ID.
	Span SpanID `json:"span"`
	// Parent is the enclosing span's ID, 0 for a root span.
	Parent SpanID `json:"parent"`
	// Site is the span-site name (SpanSiteNames).
	Site string `json:"site"`
	// StartNanos is the span's start on the process-relative Clock().
	StartNanos int64 `json:"start_ns"`
	// DurNanos is the span's duration in nanoseconds.
	DurNanos int64 `json:"dur_ns"`
	// Arg0 is the site-specific first argument (see the site registry).
	Arg0 uint64 `json:"arg0"`
	// Arg1 is the site-specific second argument (see the site registry).
	Arg1 uint64 `json:"arg1"`
}

// spanEntry is the in-ring representation of a span (site as enum).
type spanEntry struct {
	trace      TraceID
	span       SpanID
	parent     SpanID
	startNanos int64
	durNanos   int64
	arg0       uint64
	arg1       uint64
	site       SpanSite
}

const (
	// traceNumShards is the number of span-ring shards (power of two,
	// masked like counter shards).
	traceNumShards = 16
	// traceRingLen is the per-shard ring capacity; the tracer retains at
	// most traceNumShards*traceRingLen spans.
	traceRingLen = 256
)

// traceShard is one span ring. The mutex is taken only for spans of
// sampled traces and by dump readers; untraced requests never touch it.
type traceShard struct {
	mu   sync.Mutex
	pos  uint64
	ring [traceRingLen]spanEntry
	_    [cacheLine]byte
}

// traceShards is the global span ring array.
var traceShards [traceNumShards]traceShard

// traceIDSeq issues trace IDs; spanIDSeq issues span IDs. Both start at
// 1 (zero is the "none" sentinel).
var (
	traceIDSeq atomic.Uint64
	spanIDSeq  atomic.Uint64
)

// traceTick is the sampling gate's counter; traceMask is rate-1, or
// ^0 when tracing is disabled (the default — the gate then never
// passes).
var (
	traceTick atomic.Uint64
	traceMask atomic.Uint64
)

// traceDisabledMask is the traceMask value meaning "sampling off"; no
// tick count ever masks to zero against it.
const traceDisabledMask = ^uint64(0)

func init() { traceMask.Store(traceDisabledMask) }

// SetTraceSampleRate sets the trace sampling rate to one in rate new
// traces (1 samples every trace, 0 disables sampling — the default).
// rate must be zero or a power of two. It returns the previous rate.
func SetTraceSampleRate(rate uint64) uint64 {
	if rate&(rate-1) != 0 {
		panic("obs: trace sample rate must be zero or a power of two")
	}
	mask := traceDisabledMask
	if rate != 0 {
		mask = rate - 1
	}
	prev := traceMask.Swap(mask)
	if prev == traceDisabledMask {
		return 0
	}
	return prev + 1
}

// TraceSampleRate returns the current sampling rate (0 when tracing is
// disabled).
func TraceSampleRate() uint64 {
	m := traceMask.Load()
	if m == traceDisabledMask {
		return 0
	}
	return m + 1
}

// StartTrace passes the sampling gate and, if this request is sampled,
// issues a fresh TraceID. It returns 0 — "don't trace" — when sampling
// is off, the gate rejects, or the build is obsoff; every recording
// call downstream of a zero TraceID is a no-op, so callers thread the
// result unconditionally.
func StartTrace() TraceID {
	if !Enabled {
		return 0
	}
	mask := traceMask.Load()
	if mask == traceDisabledMask || traceTick.Add(1)&mask != 0 {
		return 0
	}
	return TraceID(traceIDSeq.Add(1))
}

// ForceTrace issues a TraceID bypassing the sampling gate (still 0
// under obsoff). For tests and explicit per-run tracing (datalog
// -trace), where the caller has decided the run is interesting.
func ForceTrace() TraceID {
	if !Enabled {
		return 0
	}
	return TraceID(traceIDSeq.Add(1))
}

// NewSpanID pre-issues a span ID so a parent span can be referenced by
// its children before the parent's duration is known (the parent is
// recorded later via RecordSpan with this ID). Returns 0 when trace is
// 0 or under obsoff.
func NewSpanID(trace TraceID) SpanID {
	if !Enabled || trace == 0 {
		return 0
	}
	return SpanID(spanIDSeq.Add(1))
}

// RecordSpan writes one span into the ring and returns its ID. A zero
// trace is a no-op returning 0 — the universal "not traced" fast path,
// one comparison. id 0 issues a fresh span ID; pass a NewSpanID result
// to record a span whose ID was handed to children earlier. The record
// path does not allocate.
func RecordSpan(trace TraceID, id SpanID, parent SpanID, site SpanSite, startNanos, durNanos int64, arg0, arg1 uint64) SpanID {
	if !Enabled || trace == 0 {
		return 0
	}
	if id == 0 {
		id = SpanID(spanIDSeq.Add(1))
	}
	s := &traceShards[shardIndex()&(traceNumShards-1)]
	s.mu.Lock()
	e := &s.ring[s.pos&(traceRingLen-1)]
	s.pos++
	e.trace = trace
	e.span = id
	e.parent = parent
	e.site = site
	e.startNanos = startNanos
	e.durNanos = durNanos
	e.arg0 = arg0
	e.arg1 = arg1
	s.mu.Unlock()
	return id
}

// Spans returns every span currently retained, ordered by start time
// (ties broken by span ID, which is issue-ordered). The dump is a
// recent consistent-enough view, not a linearisation point; it
// allocates and is meant for debug endpoints and tests, not hot paths.
func Spans() []Span {
	var out []Span
	for i := range traceShards {
		s := &traceShards[i]
		s.mu.Lock()
		n := s.pos
		if n > traceRingLen {
			n = traceRingLen
		}
		for j := uint64(0); j < n; j++ {
			e := s.ring[j]
			out = append(out, Span{
				Trace:      e.trace,
				Span:       e.span,
				Parent:     e.parent,
				Site:       e.site.Name(),
				StartNanos: e.startNanos,
				DurNanos:   e.durNanos,
				Arg0:       e.arg0,
				Arg1:       e.arg1,
			})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNanos != out[j].StartNanos {
			return out[i].StartNanos < out[j].StartNanos
		}
		return out[i].Span < out[j].Span
	})
	return out
}

// ResetTrace discards all retained spans and restarts the sampling
// phase (trace and span IDs keep counting — IDs are never reused
// within a process). Do not call it concurrently with traced
// operations you intend to keep.
func ResetTrace() {
	for i := range traceShards {
		s := &traceShards[i]
		s.mu.Lock()
		s.pos = 0
		s.ring = [traceRingLen]spanEntry{}
		s.mu.Unlock()
	}
	traceTick.Store(0)
}

// chromeEvent is one Chrome trace_event object ("X" complete events;
// timestamps in microseconds). Spans of the same trace share a tid, so
// chrome://tracing and Perfetto lay each trace out as one row.
type chromeEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Ts   float64         `json:"ts"`
	Dur  float64         `json:"dur"`
	Pid  int             `json:"pid"`
	Tid  uint64          `json:"tid"`
	Args chromeEventArgs `json:"args"`
}

// chromeEventArgs carries the span identity and site args into the
// trace viewer's per-event detail pane.
type chromeEventArgs struct {
	Trace  TraceID `json:"trace"`
	Span   SpanID  `json:"span"`
	Parent SpanID  `json:"parent"`
	Arg0   uint64  `json:"arg0"`
	Arg1   uint64  `json:"arg1"`
}

// chromeTraceDoc is the trace_event envelope.
type chromeTraceDoc struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace writes every retained span as Chrome trace_event
// JSON (the chrome://tracing / Perfetto "complete event" format, one
// timeline row per trace ID). Under obsoff it writes an empty but
// well-formed document.
func WriteChromeTrace(w io.Writer) error {
	spans := Spans()
	doc := chromeTraceDoc{TraceEvents: make([]chromeEvent, 0, len(spans))}
	for _, s := range spans {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: s.Site,
			Ph:   "X",
			Ts:   float64(s.StartNanos) / 1e3,
			Dur:  float64(s.DurNanos) / 1e3,
			Pid:  1,
			Tid:  uint64(s.Trace),
			Args: chromeEventArgs{
				Trace:  s.Trace,
				Span:   s.Span,
				Parent: s.Parent,
				Arg0:   s.Arg0,
				Arg1:   s.Arg1,
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
