package obs

import (
	"encoding/json"
	"expvar"
	"sync"
	"testing"
)

func TestCounterNamesCompleteAndUnique(t *testing.T) {
	seen := map[string]Counter{}
	for c := Counter(0); c < NumCounters; c++ {
		name := c.Name()
		if name == "" {
			t.Fatalf("counter %d has no name", c)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("counters %d and %d share name %q", prev, c, name)
		}
		seen[name] = c
	}
	if got := len(Names()); got != int(NumCounters) {
		t.Fatalf("Names() returned %d names, want %d", got, NumCounters)
	}
}

func TestIncMergesAcrossGoroutines(t *testing.T) {
	Reset()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				Inc(TreeDescents)
				Add(EngineDeltaTuples, 3)
			}
		}()
	}
	wg.Wait()
	if !Enabled {
		if Value(TreeDescents) != 0 {
			t.Fatal("disabled build must count nothing")
		}
		return
	}
	if got := Value(TreeDescents); got != workers*perWorker {
		t.Errorf("TreeDescents = %d, want %d", got, workers*perWorker)
	}
	if got := Value(EngineDeltaTuples); got != 3*workers*perWorker {
		t.Errorf("EngineDeltaTuples = %d, want %d", got, 3*workers*perWorker)
	}
}

func TestIncAllocatesNothing(t *testing.T) {
	if avg := testing.AllocsPerRun(1000, func() { Inc(LockReadValidations) }); avg != 0 {
		t.Errorf("Inc allocates %.1f objects per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() { Add(EngineDeltaTuples, 7) }); avg != 0 {
		t.Errorf("Add allocates %.1f objects per call, want 0", avg)
	}
}

func TestSnapshotJSONContract(t *testing.T) {
	Reset()
	Inc(HintInsertHits)
	s := Take()
	if s.Schema != SchemaVersion {
		t.Errorf("schema %q, want %q", s.Schema, SchemaVersion)
	}
	if s.Enabled != Enabled {
		t.Errorf("snapshot Enabled = %v, build Enabled = %v", s.Enabled, Enabled)
	}
	if len(s.Counters) != int(NumCounters) {
		t.Fatalf("snapshot has %d counters, want %d", len(s.Counters), NumCounters)
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	for _, name := range Names() {
		if _, ok := back.Counters[name]; !ok {
			t.Errorf("counter %q missing from JSON round trip", name)
		}
	}
	if Enabled && back.Counters[HintInsertHits.Name()] != 1 {
		t.Errorf("hint.insert.hits = %d after one Inc", back.Counters[HintInsertHits.Name()])
	}
}

func TestResetZeroesEverything(t *testing.T) {
	Inc(TreeLeafSplits)
	Reset()
	for c := Counter(0); c < NumCounters; c++ {
		if v := Value(c); v != 0 {
			t.Errorf("%s = %d after Reset", c.Name(), v)
		}
	}
}

func TestPublishIdempotent(t *testing.T) {
	Publish()
	Publish() // second call must not panic on duplicate registration
	v := expvar.Get("specbtree")
	if v == nil {
		t.Fatal("expvar variable \"specbtree\" not registered")
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(v.String()), &s); err != nil {
		t.Fatalf("expvar value is not a Snapshot: %v", err)
	}
	if s.Schema != SchemaVersion {
		t.Errorf("expvar snapshot schema %q", s.Schema)
	}
}

func TestBatchMergesIntoValue(t *testing.T) {
	Reset()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var b Batch
			for i := 0; i < perWorker; i++ {
				b.Counts().Inc(HintFindHits)
				b.Counts().Add(EngineDeltaTuples, 2)
				b.EndOp()
			}
			b.Flush()
		}()
	}
	wg.Wait()
	if !Enabled {
		if Value(HintFindHits) != 0 {
			t.Fatal("disabled build must count nothing")
		}
		return
	}
	if got := Value(HintFindHits); got != workers*perWorker {
		t.Errorf("hint.find.hits = %d, want %d", got, workers*perWorker)
	}
	if got := Value(EngineDeltaTuples); got != 2*workers*perWorker {
		t.Errorf("datalog.delta_tuples = %d, want %d", got, 2*workers*perWorker)
	}
}

func TestBatchDefersUntilFlush(t *testing.T) {
	if !Enabled {
		t.Skip("counters compiled out")
	}
	Reset()
	var b Batch
	b.Counts().Inc(TreeDescents)
	b.EndOp() // one op: below the settlement period, nothing visible yet
	if got := Value(TreeDescents); got != 0 {
		t.Errorf("core.descents = %d before Flush, want 0 (deferred)", got)
	}
	b.Flush()
	if got := Value(TreeDescents); got != 1 {
		t.Errorf("core.descents = %d after Flush, want 1", got)
	}
	b.Flush() // empty batch: must not double-count
	if got := Value(TreeDescents); got != 1 {
		t.Errorf("core.descents = %d after re-Flush, want 1", got)
	}
}

func TestOpCountsFlushExact(t *testing.T) {
	if !Enabled {
		t.Skip("counters compiled out")
	}
	Reset()
	var oc OpCounts
	oc.Inc(LockReadValidations)
	oc.Inc(LockReadValidations)
	oc.Add(TreeDescents, 4)
	oc.Flush()
	if got := Value(LockReadValidations); got != 2 {
		t.Errorf("optlock.read.validations = %d, want 2", got)
	}
	if got := Value(TreeDescents); got != 4 {
		t.Errorf("core.descents = %d, want 4", got)
	}
	oc.Inc(LockUpgradeSuccesses)
	oc.Flush()
	if got := Value(LockReadValidations); got != 2 {
		t.Errorf("first batch leaked into second flush: validations = %d", got)
	}
	if got := Value(LockUpgradeSuccesses); got != 1 {
		t.Errorf("optlock.upgrade.successes = %d, want 1", got)
	}
}

func TestCounterFitsOpCountsMask(t *testing.T) {
	if NumCounters > 64 {
		t.Fatalf("NumCounters = %d exceeds the 64-counter OpCounts mask", NumCounters)
	}
}

func TestBatchedPathsAllocateNothing(t *testing.T) {
	var b Batch
	if avg := testing.AllocsPerRun(1000, func() {
		oc := b.Counts()
		oc.Inc(LockReadValidations)
		oc.Inc(TreeDescents)
		b.EndOp()
	}); avg != 0 {
		t.Errorf("Batch op allocates %.1f objects, want 0", avg)
	}
	b.Flush()
	if avg := testing.AllocsPerRun(1000, func() {
		var oc OpCounts
		oc.Inc(LockReadValidations)
		oc.Flush()
	}); avg != 0 {
		t.Errorf("OpCounts flush allocates %.1f objects per op, want 0", avg)
	}
}

func BenchmarkInc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Inc(LockReadValidations)
	}
}

func BenchmarkIncParallel(b *testing.B) {
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			Inc(LockReadValidations)
		}
	})
}

func BenchmarkBatchOp(b *testing.B) {
	var batch Batch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oc := batch.Counts()
		oc.Inc(TreeDescents)
		oc.Inc(LockReadValidations)
		oc.Inc(LockReadValidations)
		oc.Inc(LockUpgradeSuccesses)
		oc.Inc(HintInsertHits)
		batch.EndOp()
	}
}

func BenchmarkOpCountsFlush(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var oc OpCounts
		oc.Inc(TreeDescents)
		oc.Inc(LockReadValidations)
		oc.Inc(LockReadValidations)
		oc.Flush()
	}
}
