package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// This file is the distribution tier of the observability layer:
// zero-allocation, log2-bucketed latency and count histograms. Counters
// (obs.go) say how often an event happened; histograms say how it was
// distributed — the paper's scaling argument rests on a few long
// lock-acquisition stalls costing more than many short ones, which an
// average hides entirely.
//
// Storage mirrors the counter registry: numShards cache-line-padded
// blocks of atomic bucket cells, merged on read. Recording follows the
// same two tiers — rare control-plane events call Observe directly
// (one atomic add), hot-path events accumulate into the histogram area
// of an OpCounts with plain increments and settle on Flush.
//
// Duration histograms are *sampled*: reading the clock twice per
// operation would cost more than the rest of the instrumentation
// combined, so only one in SamplePeriod operations is timed (Batch.
// SampleOp for hinted operations, SampleClock for hint-less ones).
// Count histograms (restarts per operation) need no clock and record
// every operation. Under the obsoff build tag every recording call is
// behind the constant-false Enabled branch and compiles out.

// Histogram identifies one log2-bucketed distribution. The constants
// below are the complete registry; histograms whose value is below
// numBatchedHistograms may be recorded through an OpCounts batch, the
// rest are control-plane-only and must go straight through Observe.
type Histogram uint32

// The histogram registry. DESIGN.md §9 documents unit, sampling policy
// and recording code path for each; names, once published, are
// append-only like counter names.
const (
	// HistInsertNanos records sampled wall-clock durations of tree insert
	// operations ("hist.op.insert.ns").
	HistInsertNanos Histogram = iota
	// HistContainsNanos records sampled durations of membership tests
	// ("hist.op.contains.ns").
	HistContainsNanos
	// HistLowerNanos records sampled durations of lower-bound queries
	// ("hist.op.lower_bound.ns").
	HistLowerNanos
	// HistUpperNanos records sampled durations of upper-bound queries
	// ("hist.op.upper_bound.ns").
	HistUpperNanos
	// HistRestartsPerOp records, for every operation that performed at
	// least one root-to-leaf descent, how many of its descents were
	// abandoned after a failed lease validation
	// ("hist.core.restarts_per_op"). Not sampled: every descent-performing
	// operation contributes one sample, so the histogram count equals the
	// number of such operations.
	HistRestartsPerOp

	// HistWriteWaitNanos records the spin-wait duration of contended
	// blocking write-lock acquisitions ("hist.optlock.write.wait.ns");
	// uncontended acquisitions record nothing.
	HistWriteWaitNanos
	// HistRoundNanos records the wall-clock duration of each semi-naïve
	// fixpoint round ("hist.datalog.round.ns").
	HistRoundNanos
	// HistRuleNanos records the wall-clock duration of each rule-version
	// evaluation ("hist.datalog.rule.ns").
	HistRuleNanos
	// HistMergeNanos records the wall-clock duration of each engine merge
	// phase — one sample per round-end full<-new merge and per delta
	// snapshot initialisation, covering all of the phase's jobs
	// ("hist.datalog.merge.ns").
	HistMergeNanos
	// HistServeReadNanos records sampled server-side durations of read
	// operations executed by the relation server, admission wait included
	// ("hist.serve.read.ns").
	HistServeReadNanos
	// HistServeWriteBatchNanos records the execution duration of each
	// insert batch inside a write epoch ("hist.serve.write_batch.ns").
	HistServeWriteBatchNanos
	// HistServeEpochNanos records the duration of each write epoch, from
	// reader drain to readmission ("hist.serve.epoch.ns").
	HistServeEpochNanos
	// HistServeQueueDepth records the write-queue depth observed at each
	// batch admission — the queue-depth gauge of the serving layer, as a
	// distribution ("hist.serve.queue.depth").
	HistServeQueueDepth
	// HistPushdownSelectivity records, for a 1-in-16 sample of streaming
	// scans whose range was tightened by a pushed-down comparison, the
	// number of tuples the tightened cursor yielded — the result
	// cardinality the pushdown narrowed the scan to; compare against
	// datalog.iter.rows per scan to judge how much filtering moved from
	// post-scan checks into the tree ("hist.datalog.pushdown.selectivity").
	HistPushdownSelectivity
	// HistServeGateBypassNanos records the server-side duration of each
	// read frame the phase gate routed to the last-epoch snapshot instead
	// of blocking ("hist.serve.gate.bypass.ns"). Control-plane recorded
	// (direct Observe) on the bypass path only; compare against
	// hist.serve.read.ns to see what the bypass saved.
	HistServeGateBypassNanos
	// HistClusterLogFlushNanos records the duration of each shard
	// insert-log epoch flush — compose records, single write, fsync —
	// on the epoch path before acknowledgements are delivered
	// ("hist.cluster.log.flush.ns"). Control-plane recorded (direct
	// Observe).
	HistClusterLogFlushNanos
	// HistReplicaLagEpochs records, at each epoch a follower applies, how
	// many committed leader epochs it still trailed by afterwards (leader
	// head minus applied watermark) — the replication-lag distribution
	// the staleness bound is judged against ("hist.replica.lag.epochs").
	// Control-plane recorded (direct Observe) on the follower apply path.
	HistReplicaLagEpochs

	// NumHistograms is the number of registered histograms; valid
	// Histogram values are [0, NumHistograms).
	NumHistograms
)

// numBatchedHistograms is the number of leading Histogram values that an
// OpCounts can batch (its per-histogram arrays are sized by it). The
// control-plane histograms after the cutoff are recorded directly.
const numBatchedHistograms = int(HistRestartsPerOp) + 1

// HistBuckets is the number of log2 buckets per histogram. Bucket 0
// counts zero values; bucket i (i >= 1) counts values v with
// 2^(i-1) <= v < 2^i; the last bucket additionally absorbs everything
// larger. 40 buckets track nanosecond durations up to ~9 minutes.
const HistBuckets = 40

// histogramNames maps every Histogram to its stable published name.
var histogramNames = [NumHistograms]string{
	HistInsertNanos:    "hist.op.insert.ns",
	HistContainsNanos:  "hist.op.contains.ns",
	HistLowerNanos:     "hist.op.lower_bound.ns",
	HistUpperNanos:     "hist.op.upper_bound.ns",
	HistRestartsPerOp:  "hist.core.restarts_per_op",
	HistWriteWaitNanos: "hist.optlock.write.wait.ns",
	HistRoundNanos:     "hist.datalog.round.ns",
	HistRuleNanos:      "hist.datalog.rule.ns",
	HistMergeNanos:     "hist.datalog.merge.ns",

	HistServeReadNanos:       "hist.serve.read.ns",
	HistServeWriteBatchNanos: "hist.serve.write_batch.ns",
	HistServeEpochNanos:      "hist.serve.epoch.ns",
	HistServeQueueDepth:      "hist.serve.queue.depth",
	HistPushdownSelectivity:  "hist.datalog.pushdown.selectivity",
	HistServeGateBypassNanos: "hist.serve.gate.bypass.ns",
	HistClusterLogFlushNanos: "hist.cluster.log.flush.ns",
	HistReplicaLagEpochs:     "hist.replica.lag.epochs",
}

// histogramUnits maps every Histogram to the unit of its recorded values.
var histogramUnits = [NumHistograms]string{
	HistInsertNanos:    "ns",
	HistContainsNanos:  "ns",
	HistLowerNanos:     "ns",
	HistUpperNanos:     "ns",
	HistRestartsPerOp:  "restarts",
	HistWriteWaitNanos: "ns",
	HistRoundNanos:     "ns",
	HistRuleNanos:      "ns",
	HistMergeNanos:     "ns",

	HistServeReadNanos:       "ns",
	HistServeWriteBatchNanos: "ns",
	HistServeEpochNanos:      "ns",
	HistServeQueueDepth:      "batches",
	HistPushdownSelectivity:  "rows",
	HistServeGateBypassNanos: "ns",
	HistClusterLogFlushNanos: "ns",
	HistReplicaLagEpochs:     "epochs",
}

// Name returns the histogram's stable published name, the key used in
// the JSON snapshot and documented in DESIGN.md §9.
func (h Histogram) Name() string { return histogramNames[h] }

// Unit returns the unit of the histogram's recorded values ("ns" or an
// event name).
func (h Histogram) Unit() string { return histogramUnits[h] }

// HistogramNames lists all histogram names in registry order.
func HistogramNames() []string {
	out := make([]string, NumHistograms)
	for h := Histogram(0); h < NumHistograms; h++ {
		out[h] = histogramNames[h]
	}
	return out
}

// bucketOf maps a recorded value to its log2 bucket.
func bucketOf(v uint64) int {
	b := bits.Len64(v)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// BucketUpperBound returns the largest value bucket b can hold (the
// inclusive Prometheus `le` bound): 0 for bucket 0, 2^b - 1 otherwise.
// The last bucket is unbounded in practice (it absorbs larger values);
// exporters render it together with the +Inf bucket.
func BucketUpperBound(b int) uint64 {
	if b <= 0 {
		return 0
	}
	return 1<<uint(b) - 1
}

// histShardPad rounds the histogram shard block up to a cache-line
// multiple so blocks never share a line.
const histShardPad = (cacheLine - (int(NumHistograms)*(HistBuckets+1)*8)%cacheLine) % cacheLine

// histShard is one padded block of histogram cells. Like counter
// shards, a histShard may be hit by several goroutines, so its cells
// take true atomic adds.
type histShard struct {
	buckets [NumHistograms][HistBuckets]atomic.Uint64
	sum     [NumHistograms]atomic.Uint64
	_       [histShardPad]byte
}

// histShards is the global histogram cell array, indexed like shards.
var histShards [numShards]histShard

// Observe records value v into histogram h through the shards.
// Zero-allocation and safe from any goroutine, but lock-prefixed:
// reserve it for control-plane and slow-path events (round boundaries,
// contended lock waits) and batch hot-path observations through
// OpCounts.Observe instead.
func Observe(h Histogram, v uint64) {
	if !Enabled {
		return
	}
	s := &histShards[shardIndex()]
	s.buckets[h][bucketOf(v)].Add(1)
	s.sum[h].Add(v)
}

// HistogramValue returns the merged (count, sum, buckets) of histogram h
// across all shards. Like counter reads, the result is a valid recent
// value, not a linearisation point, and deltas pending in unsettled
// batches are not visible yet.
func HistogramValue(h Histogram) (count, sum uint64, buckets [HistBuckets]uint64) {
	for i := range histShards {
		for b := 0; b < HistBuckets; b++ {
			buckets[b] += histShards[i].buckets[h][b].Load()
		}
		sum += histShards[i].sum[h].Load()
	}
	for b := 0; b < HistBuckets; b++ {
		count += buckets[b]
	}
	return count, sum, buckets
}

// resetHistograms zeroes every histogram (called from Reset).
func resetHistograms() {
	for i := range histShards {
		for h := range histShards[i].buckets {
			for b := range histShards[i].buckets[h] {
				histShards[i].buckets[h][b].Store(0)
			}
			histShards[i].sum[h].Store(0)
		}
	}
}

// HistogramSnapshot is one merged reading of a single histogram, the
// per-histogram JSON object of the metrics contract (schema
// specbtree.metrics.v2). Buckets are log2: Buckets[0] counts zero
// values, Buckets[i] counts values v with 2^(i-1) <= v < 2^i, and the
// final bucket absorbs larger values; trailing zero buckets are elided.
type HistogramSnapshot struct {
	// Unit is the unit of recorded values ("ns" or an event name).
	Unit string `json:"unit"`
	// Count is the total number of recorded samples.
	Count uint64 `json:"count"`
	// Sum is the exact sum of all recorded values.
	Sum uint64 `json:"sum"`
	// Buckets holds the per-log2-bucket sample counts, trailing zeros
	// elided (never longer than HistBuckets).
	Buckets []uint64 `json:"buckets"`
}

// TakeHistograms returns a merged snapshot of every histogram, keyed by
// stable name. See Take for the consistency caveats.
func TakeHistograms() map[string]HistogramSnapshot {
	out := make(map[string]HistogramSnapshot, NumHistograms)
	for h := Histogram(0); h < NumHistograms; h++ {
		count, sum, buckets := HistogramValue(h)
		hi := HistBuckets
		for hi > 0 && buckets[hi-1] == 0 {
			hi--
		}
		bs := make([]uint64, hi)
		copy(bs, buckets[:hi])
		out[histogramNames[h]] = HistogramSnapshot{
			Unit:    histogramUnits[h],
			Count:   count,
			Sum:     sum,
			Buckets: bs,
		}
	}
	return out
}

// SamplePeriod is the power-of-two operation sampling period for
// duration histograms: one in SamplePeriod operations is timed. It
// bounds the clock-read overhead to a small fraction of an operation
// while leaving the recorded distribution statistically representative
// (operations are sampled by position, not by duration).
const SamplePeriod = 16

// procStart anchors Clock; time.Since reads the monotonic clock.
var procStart = time.Now()

// Clock returns a monotonic nanosecond timestamp for duration
// observations (0 in obsoff builds, where all timing compiles out).
func Clock() int64 {
	if !Enabled {
		return 0
	}
	return int64(time.Since(procStart))
}

// SampleClock returns a start timestamp for one in SamplePeriod calls
// and 0 for the rest — the sampling gate for hint-less operations,
// which carry no Batch to count operations in. The gate is a single
// atomic increment on the goroutine's counter shard; hint-less
// operations already settle a batch atomically per operation, so the
// relative cost is small. Callers time the operation only when the
// result is non-zero.
func SampleClock() int64 {
	if !Enabled {
		return 0
	}
	if shardFor().tick.Add(1)&(SamplePeriod-1) != 0 {
		return 0
	}
	return Clock()
}
