//go:build obsoff

package obs

// OpCounts is a batch of counter deltas accumulated with plain non-atomic
// increments. In this (obsoff) build it is an empty struct whose methods
// compile to nothing, so instrumented operations carry zero cost.
type OpCounts struct{}

// Inc adds 1 to counter c in the batch. No-op in this build.
func (o *OpCounts) Inc(c Counter) {}

// Add adds n to counter c in the batch. No-op in this build.
func (o *OpCounts) Add(c Counter, n uint32) {}

// Observe records value v into batchable histogram h. No-op in this
// build.
func (o *OpCounts) Observe(h Histogram, v uint64) {}

// Flush settles the batch into the goroutine's shard. No-op in this
// build.
func (o *OpCounts) Flush() {}

// Batch couples an OpCounts with an operation countdown for amortised
// settlement. No-op empty struct in this build.
type Batch struct{}

// Counts returns the batch's accumulator for the current operation.
func (b *Batch) Counts() *OpCounts { return &OpCounts{} }

// SampleOp reports whether the current operation should be timed.
// Constant false in this build, so operation timing compiles out.
func (b *Batch) SampleOp() bool { return false }

// EndOp marks one operation complete. No-op in this build.
func (b *Batch) EndOp() {}

// Flush settles any pending deltas immediately. No-op in this build.
func (b *Batch) Flush() {}
