//go:build !obsoff

package obs

import "math/bits"

// OpCounts is a batch of counter deltas accumulated with plain non-atomic
// increments (tier 2 of the package's sharding scheme). It must be owned
// by one goroutine at a time — a tree operation's stack frame, or a
// goroutine-owned hint set via Batch — and settled with Flush. In obsoff
// builds OpCounts is an empty struct and its methods compile to nothing.
//
// The limit NumCounters <= 64 keeps the touched-counter set in one mask
// word, so Flush walks only the counters the batch actually hit. The
// histogram area works the same way one level down: hmask tracks the
// touched batchable histograms, hbuckets[h] the touched buckets of each,
// so settlement stays proportional to what was recorded.
type OpCounts struct {
	mask uint64
	n    [NumCounters]uint32

	hmask    uint32
	hbuckets [numBatchedHistograms]uint64
	hsum     [numBatchedHistograms]uint64
	hn       [numBatchedHistograms][HistBuckets]uint16
}

// Inc adds 1 to counter c in the batch.
func (o *OpCounts) Inc(c Counter) {
	o.mask |= 1 << c
	o.n[c]++
}

// Add adds n to counter c in the batch.
func (o *OpCounts) Add(c Counter, n uint32) {
	o.mask |= 1 << c
	o.n[c] += n
}

// Observe records value v into batchable histogram h with plain
// non-atomic increments (one bucket count, one touched-bucket bit, the
// pending raw-value sum). h must be below numBatchedHistograms; the
// control-plane histograms go through the package-level Observe. Counts
// are uint16, so a batch must be flushed at least every 2^16
// observations per bucket — Batch settles every flushEvery operations
// and stack batches settle per operation, both orders of magnitude
// below the limit.
func (o *OpCounts) Observe(h Histogram, v uint64) {
	b := bucketOf(v)
	o.hmask |= 1 << h
	o.hbuckets[h] |= 1 << uint(b)
	o.hsum[h] += v
	o.hn[h][b]++
}

// Flush settles the batch into the goroutine's shards and resets it for
// reuse. One atomic add per touched counter and per touched histogram
// bucket.
func (o *OpCounts) Flush() {
	idx := shardIndex()
	if m := o.mask; m != 0 {
		s := &shards[idx]
		for ; m != 0; m &= m - 1 {
			c := uint(bits.TrailingZeros64(m))
			s.cells[c].Add(uint64(o.n[c]))
			o.n[c] = 0
		}
		o.mask = 0
	}
	if hm := o.hmask; hm != 0 {
		hs := &histShards[idx]
		for ; hm != 0; hm &= hm - 1 {
			h := uint(bits.TrailingZeros32(hm))
			for bm := o.hbuckets[h]; bm != 0; bm &= bm - 1 {
				b := uint(bits.TrailingZeros64(bm))
				hs.buckets[h][b].Add(uint64(o.hn[h][b]))
				o.hn[h][b] = 0
			}
			o.hbuckets[h] = 0
			hs.sum[h].Add(o.hsum[h])
			o.hsum[h] = 0
		}
		o.hmask = 0
	}
}

// flushEvery is the operation period at which a Batch settles into the
// shards. It bounds both the amortised settlement cost (a few atomic adds
// per flushEvery operations) and the staleness of a mid-run snapshot.
const flushEvery = 64

// Batch couples an OpCounts with an operation countdown for amortised
// settlement. A long-lived, goroutine-owned structure (such as a hint
// set) embeds one; each operation records events via Counts and calls
// EndOp once, and the batch settles into the shards every flushEvery
// operations. Call Flush at measurement boundaries so snapshots are
// exact. In obsoff builds Batch is an empty struct and its methods
// compile to nothing.
type Batch struct {
	pend OpCounts
	ops  uint32
}

// Counts returns the batch's accumulator for the current operation.
func (b *Batch) Counts() *OpCounts { return &b.pend }

// SampleOp reports whether the current operation should have its
// duration recorded: one in SamplePeriod operations, gated by the
// batch's own operation countdown so the check is a masked compare with
// no shared-memory traffic. Always false in obsoff builds.
func (b *Batch) SampleOp() bool { return b.ops&(SamplePeriod-1) == 0 }

// EndOp marks one operation complete, settling the batch into the shards
// every flushEvery calls. Amortised cost: a register increment.
func (b *Batch) EndOp() {
	b.ops++
	if b.ops >= flushEvery {
		b.pend.Flush()
		b.ops = 0
	}
}

// Flush settles any pending deltas immediately. Owner goroutine only (or
// a goroutine that happens-after the owner's last operation).
func (b *Batch) Flush() {
	b.pend.Flush()
	b.ops = 0
}
