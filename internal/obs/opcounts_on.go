//go:build !obsoff

package obs

import "math/bits"

// OpCounts is a batch of counter deltas accumulated with plain non-atomic
// increments (tier 2 of the package's sharding scheme). It must be owned
// by one goroutine at a time — a tree operation's stack frame, or a
// goroutine-owned hint set via Batch — and settled with Flush. In obsoff
// builds OpCounts is an empty struct and its methods compile to nothing.
//
// The limit NumCounters <= 64 keeps the touched-counter set in one mask
// word, so Flush walks only the counters the batch actually hit.
type OpCounts struct {
	mask uint64
	n    [NumCounters]uint32
}

// Inc adds 1 to counter c in the batch.
func (o *OpCounts) Inc(c Counter) {
	o.mask |= 1 << c
	o.n[c]++
}

// Add adds n to counter c in the batch.
func (o *OpCounts) Add(c Counter, n uint32) {
	o.mask |= 1 << c
	o.n[c] += n
}

// Flush settles the batch into the goroutine's shard and resets it for
// reuse. One atomic add per touched counter.
func (o *OpCounts) Flush() {
	m := o.mask
	if m == 0 {
		return
	}
	s := shardFor()
	for ; m != 0; m &= m - 1 {
		c := uint(bits.TrailingZeros64(m))
		s.cells[c].Add(uint64(o.n[c]))
		o.n[c] = 0
	}
	o.mask = 0
}

// flushEvery is the operation period at which a Batch settles into the
// shards. It bounds both the amortised settlement cost (a few atomic adds
// per flushEvery operations) and the staleness of a mid-run snapshot.
const flushEvery = 64

// Batch couples an OpCounts with an operation countdown for amortised
// settlement. A long-lived, goroutine-owned structure (such as a hint
// set) embeds one; each operation records events via Counts and calls
// EndOp once, and the batch settles into the shards every flushEvery
// operations. Call Flush at measurement boundaries so snapshots are
// exact. In obsoff builds Batch is an empty struct and its methods
// compile to nothing.
type Batch struct {
	pend OpCounts
	ops  uint32
}

// Counts returns the batch's accumulator for the current operation.
func (b *Batch) Counts() *OpCounts { return &b.pend }

// EndOp marks one operation complete, settling the batch into the shards
// every flushEvery calls. Amortised cost: a register increment.
func (b *Batch) EndOp() {
	b.ops++
	if b.ops >= flushEvery {
		b.pend.Flush()
		b.ops = 0
	}
}

// Flush settles any pending deltas immediately. Owner goroutine only (or
// a goroutine that happens-after the owner's last operation).
func (b *Batch) Flush() {
	b.pend.Flush()
	b.ops = 0
}
