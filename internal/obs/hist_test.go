package obs

import (
	"math"
	"sync"
	"testing"
)

// TestBucketBoundaries pins the log2 bucketing scheme: bucket 0 holds
// zero, bucket i holds [2^(i-1), 2^i), the last bucket absorbs
// everything larger, and BucketUpperBound is the inclusive le bound of
// each bucket.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11},
		{1 << 38, HistBuckets - 1},
		{1<<39 - 1, HistBuckets - 1},
		{1 << 39, HistBuckets - 1}, // clamped into the final bucket
		{math.MaxUint64, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	if got := BucketUpperBound(0); got != 0 {
		t.Errorf("BucketUpperBound(0) = %d, want 0", got)
	}
	for b := 1; b < HistBuckets; b++ {
		ub := BucketUpperBound(b)
		if want := uint64(1)<<uint(b) - 1; ub != want {
			t.Errorf("BucketUpperBound(%d) = %d, want %d", b, ub, want)
		}
		// The bound must be the largest value mapping into the bucket (the
		// final bucket aside, which absorbs larger values too).
		if bucketOf(ub) != b {
			t.Errorf("bucketOf(BucketUpperBound(%d)) = %d", b, bucketOf(ub))
		}
		if b < HistBuckets-1 && bucketOf(ub+1) != b+1 {
			t.Errorf("bucketOf(%d) = %d, want %d", ub+1, bucketOf(ub+1), b+1)
		}
	}
}

// TestSamplePeriodsArePowersOfTwo guards the masked sampling gates.
func TestSamplePeriodsArePowersOfTwo(t *testing.T) {
	if SamplePeriod <= 0 || SamplePeriod&(SamplePeriod-1) != 0 {
		t.Errorf("SamplePeriod = %d, not a power of two", SamplePeriod)
	}
	if DefaultFlightSampleRate <= 0 || DefaultFlightSampleRate&(DefaultFlightSampleRate-1) != 0 {
		t.Errorf("DefaultFlightSampleRate = %d, not a power of two", DefaultFlightSampleRate)
	}
}

// TestHistogramNamesCompleteAndUnique mirrors the counter-name test:
// every histogram has a distinct non-empty published name and unit.
func TestHistogramNamesCompleteAndUnique(t *testing.T) {
	seen := map[string]Histogram{}
	for h := Histogram(0); h < NumHistograms; h++ {
		name := h.Name()
		if name == "" {
			t.Errorf("histogram %d has no name", h)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("histograms %d and %d share name %q", prev, h, name)
		}
		seen[name] = h
		if h.Unit() == "" {
			t.Errorf("histogram %s has no unit", name)
		}
	}
	if names := HistogramNames(); len(names) != int(NumHistograms) {
		t.Errorf("HistogramNames returned %d names, want %d", len(names), NumHistograms)
	}
}

// TestObserveMergesAcrossGoroutines drives the direct (control-plane)
// recording path from several goroutines and checks the merged reading.
func TestObserveMergesAcrossGoroutines(t *testing.T) {
	if !Enabled {
		t.Skip("observability compiled out (obsoff)")
	}
	Reset()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); i < perWorker; i++ {
				Observe(HistRoundNanos, i)
			}
		}()
	}
	wg.Wait()
	count, sum, buckets := HistogramValue(HistRoundNanos)
	if count != workers*perWorker {
		t.Errorf("count = %d, want %d", count, workers*perWorker)
	}
	if want := uint64(workers) * (perWorker * (perWorker - 1) / 2); sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
	if buckets[0] != workers { // the i == 0 observations
		t.Errorf("zero bucket = %d, want %d", buckets[0], workers)
	}
	Reset()
	if count, sum, _ := HistogramValue(HistRoundNanos); count != 0 || sum != 0 {
		t.Errorf("after Reset: count %d sum %d", count, sum)
	}
}

// TestOpCountsObserveDefersUntilFlush checks the batched recording path:
// observations stay invisible in the batch until Flush settles them, and
// settle exactly.
func TestOpCountsObserveDefersUntilFlush(t *testing.T) {
	if !Enabled {
		t.Skip("observability compiled out (obsoff)")
	}
	Reset()
	var o OpCounts
	var wantSum uint64
	for i := uint64(1); i <= 100; i++ {
		o.Observe(HistInsertNanos, i)
		wantSum += i
	}
	if count, _, _ := HistogramValue(HistInsertNanos); count != 0 {
		t.Fatalf("unflushed batch already visible: count %d", count)
	}
	o.Flush()
	count, sum, _ := HistogramValue(HistInsertNanos)
	if count != 100 || sum != wantSum {
		t.Errorf("after flush: count %d sum %d, want 100 %d", count, sum, wantSum)
	}
	// A second flush of the now-empty batch must not double-count.
	o.Flush()
	if count2, sum2, _ := HistogramValue(HistInsertNanos); count2 != count || sum2 != sum {
		t.Errorf("idempotent flush violated: count %d sum %d", count2, sum2)
	}
	Reset()
}

// TestTakeHistogramsSnapshot checks the snapshot document: units, exact
// count and sum, and trailing-zero bucket elision.
func TestTakeHistogramsSnapshot(t *testing.T) {
	if !Enabled {
		t.Skip("observability compiled out (obsoff)")
	}
	Reset()
	Observe(HistContainsNanos, 0)
	Observe(HistContainsNanos, 5) // bucket 3
	Observe(HistContainsNanos, 5)
	snap := TakeHistograms()
	if len(snap) != int(NumHistograms) {
		t.Fatalf("snapshot has %d histograms, want %d", len(snap), NumHistograms)
	}
	h := snap[HistContainsNanos.Name()]
	if h.Unit != "ns" || h.Count != 3 || h.Sum != 10 {
		t.Errorf("snapshot = %+v", h)
	}
	if len(h.Buckets) != 4 { // trailing zeros elided after bucket 3
		t.Fatalf("buckets = %v, want length 4", h.Buckets)
	}
	if h.Buckets[0] != 1 || h.Buckets[3] != 2 {
		t.Errorf("buckets = %v", h.Buckets)
	}
	// Untouched histograms report empty bucket slices, not nil-vs-zero
	// surprises downstream.
	if e := snap[HistUpperNanos.Name()]; e.Count != 0 || len(e.Buckets) != 0 {
		t.Errorf("untouched histogram = %+v", e)
	}
	Reset()
}

// TestSampleClockGate checks the hint-less sampling gate: exactly one in
// SamplePeriod calls returns a timestamp.
func TestSampleClockGate(t *testing.T) {
	if !Enabled {
		t.Skip("observability compiled out (obsoff)")
	}
	sampled := 0
	const calls = 10 * SamplePeriod
	for i := 0; i < calls; i++ {
		if SampleClock() != 0 {
			sampled++
		}
	}
	if sampled != calls/SamplePeriod {
		t.Errorf("sampled %d of %d calls, want %d", sampled, calls, calls/SamplePeriod)
	}
}

// TestFlightSampleRateValidation checks the power-of-two contract and
// that SetFlightSampleRate returns the previous rate.
func TestFlightSampleRateValidation(t *testing.T) {
	for _, bad := range []uint64{0, 3, 6, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetFlightSampleRate(%d) did not panic", bad)
				}
			}()
			SetFlightSampleRate(bad)
		}()
	}
	prev := SetFlightSampleRate(4)
	defer SetFlightSampleRate(prev)
	if got := FlightSampleRate(); got != 4 {
		t.Errorf("FlightSampleRate = %d, want 4", got)
	}
	if back := SetFlightSampleRate(prev); back != 4 {
		t.Errorf("SetFlightSampleRate returned %d, want 4", back)
	}
}

// TestFlightRecorderRing records more events than one shard's ring holds
// and checks retention, ordering and field fidelity.
func TestFlightRecorderRing(t *testing.T) {
	if !Enabled {
		t.Skip("observability compiled out (obsoff)")
	}
	prev := SetFlightSampleRate(1)
	defer SetFlightSampleRate(prev)
	defer ResetFlight()
	ResetFlight()

	// One goroutine maps to one shard, so this overflows that shard's
	// ring several times over.
	const recorded = 5 * flightRingLen
	for i := 0; i < recorded; i++ {
		RecordContention(SiteSplitParent, 1, uint64(i), int64(2*i))
	}
	events := FlightEvents()
	if len(events) != flightRingLen {
		t.Fatalf("retained %d events, want ring capacity %d", len(events), flightRingLen)
	}
	for i, ev := range events {
		if i > 0 && ev.Seq <= events[i-1].Seq {
			t.Fatalf("events not in sequence order at %d: %d after %d", i, ev.Seq, events[i-1].Seq)
		}
		if ev.Site != SiteSplitParent.Name() || ev.Level != 1 || ev.WaitNanos != 2*int64(ev.Spins) {
			t.Fatalf("event %d corrupted: %+v", i, ev)
		}
	}
	// The ring keeps the newest events: the retained spins must be the
	// last flightRingLen recorded values.
	if events[len(events)-1].Spins != recorded-1 {
		t.Errorf("newest retained spins = %d, want %d", events[len(events)-1].Spins, recorded-1)
	}

	ResetFlight()
	if left := FlightEvents(); len(left) != 0 {
		t.Errorf("ResetFlight left %d events", len(left))
	}
}

// TestFlightRecorderSamplingGate checks that a rate of R records one in
// R contention events.
func TestFlightRecorderSamplingGate(t *testing.T) {
	if !Enabled {
		t.Skip("observability compiled out (obsoff)")
	}
	prev := SetFlightSampleRate(8)
	defer SetFlightSampleRate(prev)
	defer ResetFlight()
	ResetFlight()
	const recorded = 8 * 16
	for i := 0; i < recorded; i++ {
		RecordContention(SiteLeafUpgrade, 0, 1, 0)
	}
	if got := len(FlightEvents()); got != recorded/8 {
		t.Errorf("sampled %d events of %d, want %d", got, recorded, recorded/8)
	}
}

// TestObserveCompiledOut pins the obsoff contract for the distribution
// tier: recording is a no-op and snapshots are empty but well-formed.
func TestObserveCompiledOut(t *testing.T) {
	if Enabled {
		t.Skip("observability compiled in")
	}
	Observe(HistInsertNanos, 123)
	RecordContention(SiteSplitRoot, 2, 9, 99)
	if count, sum, _ := HistogramValue(HistInsertNanos); count != 0 || sum != 0 {
		t.Errorf("obsoff histogram recorded: count %d sum %d", count, sum)
	}
	if events := FlightEvents(); len(events) != 0 {
		t.Errorf("obsoff flight recorder recorded %d events", len(events))
	}
	if Clock() != 0 || SampleClock() != 0 {
		t.Error("obsoff clock must read 0")
	}
	var b Batch
	if b.SampleOp() {
		t.Error("obsoff SampleOp must be false")
	}
}
