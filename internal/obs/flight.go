package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the contention flight recorder: a fixed-size, sharded
// ring of individually sampled lock-contention events. Histograms
// (hist.go) aggregate contention into distributions; the flight
// recorder keeps the last few thousand concrete events — which lock
// site, how deep in the tree, how many spin iterations, how long — so
// a contention hot spot can be localised, in the spirit of the
// elimination-tree observation that contention concentrates on a few
// nodes.
//
// Recording happens only on contended write paths (a failed upgrade
// CAS, a spinning ancestor lock during a split), which are already
// slow, so the ring costs the hot read path nothing — the
// reader-silence property of the optimistic scheme is untouched. Each
// contention event first passes a power-of-two sampling gate (one
// atomic add on a per-shard tick); only sampled events take the
// per-shard mutex and write a ring slot. In obsoff builds Enabled is
// constant false and every recording call compiles out.

// ContentionSite identifies the lock-protocol code path on which a
// contention event was recorded.
type ContentionSite uint8

// The contention-site registry. DESIGN.md §9 documents each site; site
// names, once published, are append-only like counter names.
const (
	// SiteLeafUpgrade is a failed read-lease-to-write-lock upgrade on a
	// leaf during an insert ("insert.leaf_upgrade"). Upgrade failures
	// are CAS losses, not waits, so their spin count is 1 and their wait
	// duration 0.
	SiteLeafUpgrade ContentionSite = iota
	// SiteSplitParent is a contended blocking write-lock acquisition of
	// an ancestor node during a bottom-up split ("insert.split_parent").
	SiteSplitParent
	// SiteSplitRoot is a contended acquisition of the tree's root lock
	// during a split reaching the root ("insert.split_root").
	SiteSplitRoot
	// SiteCowParent is a contended blocking write-lock acquisition of an
	// ancestor node while copy-on-writing a frozen path after a snapshot
	// ("insert.cow_parent").
	SiteCowParent
	// SiteCowRoot is a contended acquisition of the tree's root lock
	// while a copy-on-write chain reaches the root ("insert.cow_root").
	SiteCowRoot

	// NumContentionSites is the number of registered sites; valid
	// ContentionSite values are [0, NumContentionSites).
	NumContentionSites
)

// contentionSiteNames maps every ContentionSite to its stable published
// name.
var contentionSiteNames = [NumContentionSites]string{
	SiteLeafUpgrade: "insert.leaf_upgrade",
	SiteSplitParent: "insert.split_parent",
	SiteSplitRoot:   "insert.split_root",
	SiteCowParent:   "insert.cow_parent",
	SiteCowRoot:     "insert.cow_root",
}

// Name returns the site's stable published name, used in the flight
// recorder dump and documented in DESIGN.md §9.
func (s ContentionSite) Name() string { return contentionSiteNames[s] }

// ContentionSiteNames lists all site names in registry order.
func ContentionSiteNames() []string {
	out := make([]string, NumContentionSites)
	for s := ContentionSite(0); s < NumContentionSites; s++ {
		out[s] = contentionSiteNames[s]
	}
	return out
}

// FlightEvent is one sampled lock-contention event. The JSON field
// names are part of the metrics contract documented in DESIGN.md §9.
type FlightEvent struct {
	// Seq is the event's global sample sequence number; events with
	// higher Seq were recorded later. Dumps are sorted by Seq.
	Seq uint64 `json:"seq"`
	// Site is the contention site name (ContentionSiteNames).
	Site string `json:"site"`
	// Level is the tree level of the contended lock: 0 for a leaf,
	// counting up toward the root; the tree's root lock is one past the
	// root node's level. -1 when the recording site has no tree context.
	Level int32 `json:"level"`
	// Spins is the number of spin iterations spent on the contended
	// acquisition (1 for a lost upgrade CAS).
	Spins uint64 `json:"spins"`
	// WaitNanos is the wall-clock wait in nanoseconds (0 for a lost
	// upgrade CAS, which fails instantly instead of waiting).
	WaitNanos int64 `json:"wait_ns"`
}

// flightEntry is the in-ring representation of an event (site as enum).
type flightEntry struct {
	seq       uint64
	waitNanos int64
	spins     uint64
	level     int32
	site      ContentionSite
}

const (
	// flightNumShards is the number of flight-recorder shards (power of
	// two, masked like counter shards).
	flightNumShards = 16
	// flightRingLen is the per-shard ring capacity; the recorder retains
	// at most flightNumShards*flightRingLen sampled events.
	flightRingLen = 64
	// DefaultFlightSampleRate is the default power-of-two sampling rate:
	// one in this many contention events is recorded.
	DefaultFlightSampleRate = 8
)

// flightShard is one sampled event ring. The mutex is taken only for
// sampled events and by dump readers; the sampling gate itself is a
// single atomic add on tick.
type flightShard struct {
	tick atomic.Uint64
	mu   sync.Mutex
	pos  uint64
	ring [flightRingLen]flightEntry
	_    [cacheLine]byte
}

// flightShards is the global event ring array.
var flightShards [flightNumShards]flightShard

// flightSeq issues global sequence numbers to sampled events.
var flightSeq atomic.Uint64

// flightMask is the current sampling mask (rate - 1).
var flightMask atomic.Uint64

func init() { flightMask.Store(DefaultFlightSampleRate - 1) }

// SetFlightSampleRate sets the contention sampling rate to one in rate
// events; rate must be a power of two (1 records every contention
// event). It returns the previous rate. Intended for tests and for
// raising the resolution of a live investigation; the default is
// DefaultFlightSampleRate.
func SetFlightSampleRate(rate uint64) uint64 {
	if rate == 0 || rate&(rate-1) != 0 {
		panic("obs: flight sample rate must be a power of two")
	}
	return flightMask.Swap(rate-1) + 1
}

// FlightSampleRate returns the current power-of-two sampling rate.
func FlightSampleRate() uint64 { return flightMask.Load() + 1 }

// RecordContention feeds one lock-contention event through the sampling
// gate and, if sampled, into the flight recorder. Call it from
// contended (slow) paths only: the gate is an atomic add, and a sampled
// event takes a short per-shard mutex. Compiled out under obsoff.
func RecordContention(site ContentionSite, level int32, spins uint64, waitNanos int64) {
	if !Enabled {
		return
	}
	s := &flightShards[shardIndex()&(flightNumShards-1)]
	if s.tick.Add(1)&flightMask.Load() != 0 {
		return
	}
	seq := flightSeq.Add(1)
	s.mu.Lock()
	e := &s.ring[s.pos&(flightRingLen-1)]
	s.pos++
	e.seq = seq
	e.site = site
	e.level = level
	e.spins = spins
	e.waitNanos = waitNanos
	s.mu.Unlock()
}

// FlightEvents returns every event currently retained in the recorder,
// oldest first (sorted by sequence number). The dump is a recent
// consistent-enough view, not a linearisation point; it allocates and
// is meant for debug endpoints and tests, not hot paths.
func FlightEvents() []FlightEvent {
	var out []FlightEvent
	for i := range flightShards {
		s := &flightShards[i]
		s.mu.Lock()
		n := s.pos
		if n > flightRingLen {
			n = flightRingLen
		}
		for j := uint64(0); j < n; j++ {
			e := s.ring[j]
			out = append(out, FlightEvent{
				Seq:       e.seq,
				Site:      e.site.Name(),
				Level:     e.level,
				Spins:     e.spins,
				WaitNanos: e.waitNanos,
			})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// ResetFlight discards all retained events and restarts the sampling
// phase. Do not call it concurrently with contended operations you
// intend to record.
func ResetFlight() {
	for i := range flightShards {
		s := &flightShards[i]
		s.mu.Lock()
		s.pos = 0
		s.ring = [flightRingLen]flightEntry{}
		s.mu.Unlock()
		s.tick.Store(0)
	}
}
